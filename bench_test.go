// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per table and figure of the paper's evaluation (regenerating
// the corresponding experiment and reporting its headline metric), the
// solver and substrate kernel benchmarks, and the ablation benchmarks
// for the design choices called out in DESIGN.md §7.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report simulated platform seconds via ReportMetric;
// kernel benchmarks report real host throughput.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Tables.

// BenchmarkTable1 regenerates Table 1 (application characteristics) from
// a real instrumented parallel run.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := study.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].StartupsPerProc), "NS-startups/proc")
			b.ReportMetric(rows[0].VolumePerProcMB, "NS-MB/proc")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (computation-communication ratios).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := study.Table2Report()
		if len(t.Rows) != 5 {
			b.Fatal("table 2 shape")
		}
	}
	ns := trace.PaperNS()
	b.ReportMetric(ns.TotalFlops()/8/float64(ns.RankBytes()), "NS-FPs/byte@P8")
}

// ---------------------------------------------------------------------
// Figures.

// BenchmarkFig1 runs the excited-jet flow field (reduced grid).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := study.Fig1(64, 32, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates the single-processor version study.
func BenchmarkFig2(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		ss := study.Fig2()
		last = ss[0].Y
	}
	b.ReportMetric(last[0], "NS-V1-seconds")
	b.ReportMetric(last[4], "NS-V5-seconds")
}

// figBench wraps a figure driver returning series.
func figBench(b *testing.B, f func() error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3LACENavierStokes(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLACE(true); return err })
}

func BenchmarkFig4LACEEuler(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLACE(false); return err })
}

func BenchmarkFig5ComponentsNavierStokes(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLACEComponents(true); return err })
}

func BenchmarkFig6ComponentsEuler(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLACEComponents(false); return err })
}

func BenchmarkFig7CommVersionsNavierStokes(b *testing.B) {
	figBench(b, func() error { _, err := study.FigCommVersions(true); return err })
}

func BenchmarkFig8CommVersionsEuler(b *testing.B) {
	figBench(b, func() error { _, err := study.FigCommVersions(false); return err })
}

func BenchmarkFig9PlatformsNavierStokes(b *testing.B) {
	var ss []float64
	for i := 0; i < b.N; i++ {
		series, err := study.FigPlatforms(true)
		if err != nil {
			b.Fatal(err)
		}
		if y, ok := series[0].YAt(8); ok {
			ss = append(ss[:0], y)
		}
	}
	if len(ss) > 0 {
		b.ReportMetric(ss[0], "YMP@8-seconds")
	}
}

func BenchmarkFig10PlatformsEuler(b *testing.B) {
	figBench(b, func() error { _, err := study.FigPlatforms(false); return err })
}

func BenchmarkFig11LibrariesNavierStokes(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLibraries(true); return err })
}

func BenchmarkFig12LibrariesEuler(b *testing.B) {
	figBench(b, func() error { _, err := study.FigLibraries(false); return err })
}

func BenchmarkFig13LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := study.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Solver kernels (real host performance).

func benchGrid() *grid.Grid { return grid.MustNew(128, 64, 50, 5) }

// BenchmarkSolverStepSerial measures one composite time step of the
// Navier-Stokes solver; the per-op metric is grid points per step.
func BenchmarkSolverStepSerial(b *testing.B) {
	s, err := solver.NewSerial(jet.Paper(), benchGrid())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance()
	}
	b.ReportMetric(float64(128*64*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
}

func BenchmarkSolverStepSerialEuler(b *testing.B) {
	s, err := solver.NewSerial(jet.Euler(), benchGrid())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance()
	}
}

// benchBackend measures composite steps through the solver-backend
// registry: the backend is resolved by name, exactly as cmd/jetsim
// does, so the harness covers the same code path users run. Because
// Backend.Run is one-shot, the timed region includes solver
// construction and the final state gather — amortized at real
// benchtimes, dominant at -benchtime=1x. Compare against the
// construction-free BenchmarkSolverStepSerial accordingly.
func benchBackend(b *testing.B, name string, opts backend.Options) backend.Result {
	b.Helper()
	be, err := backend.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := be.Run(jet.Paper(), benchGrid(), opts, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(128*64*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
	if res.Diag.HasNaN {
		b.Fatal("diverged")
	}
	return res
}

// BenchmarkBackends sweeps every registered backend on the same
// workload at a representative parallel width.
func BenchmarkBackends(b *testing.B) {
	for _, name := range backend.Names() {
		if name == "parareal" {
			// The time axis needs steps >= TimeSlices, which b.N=1
			// cannot honor; BenchmarkAblationParareal measures the
			// coordinator with a fixed per-iteration step count.
			continue
		}
		opts := backend.Options{Procs: 4, Workers: 2, Policy: solver.Lagged}
		b.Run(name, func(b *testing.B) { benchBackend(b, name, opts) })
	}
}

// scenarioSolver builds the serial solver of a registered scenario on
// the benchmark grid, exactly as the backend layer would.
func scenarioSolver(b *testing.B, name string) *solver.Serial {
	b.Helper()
	sc, err := scenario.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sc.Config(jet.Paper())
	g, err := sc.Grid(128, 64)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := sc.Problem(cfg, g)
	if err != nil {
		b.Fatal(err)
	}
	s, err := solver.NewSerialProblem(cfg, prob, g)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSolverStep sweeps every registered scenario on the serial
// solver, one composite step per iteration, construction and inflow
// memoization outside the timer. The per-scenario Mpoints/s rows let
// bench_compare.sh gate the wall-mirror and inflow-hook paths the same
// way BenchmarkSolverStepSerial gates the jet kernels; 0 allocs/op is
// part of the contract (ReportAllocs).
func BenchmarkSolverStep(b *testing.B) {
	for _, name := range scenario.Names() {
		b.Run(name, func(b *testing.B) {
			s := scenarioSolver(b, name)
			s.Advance()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Advance()
			}
			b.ReportMetric(float64(128*64*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
		})
	}
}

// BenchmarkScenarioBackends runs the wall-bounded scenarios through the
// parallel backends whose halo schedules the wall edges reshape: the
// 2-D rank grid (wall ranks skip the mirror-owned edges) and the
// hybrid ranks-x-DOALL backend. Fresh policy, so each iteration is
// also a bitwise-parity workload. These double as the race-instrumented
// CI smoke of the wall-edge exchange schedule.
func BenchmarkScenarioBackends(b *testing.B) {
	for _, scen := range []string{"cavity", "channel"} {
		for _, c := range []struct {
			backend string
			opts    backend.Options
		}{
			{"mp2d", backend.Options{Px: 2, Pr: 2, Policy: solver.Fresh}},
			{"hybrid", backend.Options{Procs: 2, Workers: 2, Policy: solver.Fresh}},
		} {
			b.Run(scen+"/"+c.backend, func(b *testing.B) {
				sc, err := scenario.Get(scen)
				if err != nil {
					b.Fatal(err)
				}
				cfg := sc.Config(jet.Paper())
				g, err := sc.Grid(128, 64)
				if err != nil {
					b.Fatal(err)
				}
				be, err := backend.Get(c.backend)
				if err != nil {
					b.Fatal(err)
				}
				opts := c.opts
				opts.Scenario = scen
				res, err := be.Run(cfg, g, opts, b.N)
				if err != nil {
					b.Fatal(err)
				}
				if res.Diag.HasNaN {
					b.Fatal("diverged")
				}
				b.ReportMetric(float64(128*64*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
			})
		}
	}
}

func BenchmarkSolverStepParallel2(b *testing.B) {
	benchBackend(b, "mp:v5", backend.Options{Procs: 2})
}
func BenchmarkSolverStepParallel8(b *testing.B) {
	benchBackend(b, "mp:v5", backend.Options{Procs: 8})
}

// BenchmarkSolverStepLarge is the big-grid tier: composite steps on
// grids far past last-level cache (2000x1000 is ~0.5 GB of state,
// 4000x2000 four times that), where the fused cache-blocked kernels do
// the work the paper sized its Table 2 grids for. Construction and the
// first step (inflow memoization) run outside the timer, so the loop
// measures the steady state — expected 0 allocs/op. The shm case pins
// the best parallel backend on the same grid: the DOALL pool shares the
// arena, so it adds no message traffic.
func BenchmarkSolverStepLarge(b *testing.B) {
	sizes := [][2]int{{2000, 1000}, {4000, 2000}}
	for _, sz := range sizes {
		nx, nr := sz[0], sz[1]
		b.Run(fmt.Sprintf("serial-%dx%d", nx, nr), func(b *testing.B) {
			if testing.Short() {
				b.Skip("large grid")
			}
			s, err := solver.NewSerial(jet.Paper(), grid.MustNew(nx, nr, 50, 5))
			if err != nil {
				b.Fatal(err)
			}
			s.Advance()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Advance()
			}
			b.ReportMetric(float64(nx*nr*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
		})
	}
	b.Run("shm-2000x1000", func(b *testing.B) {
		if testing.Short() {
			b.Skip("large grid")
		}
		s, err := shm.NewSolver(jet.Paper(), grid.MustNew(2000, 1000, 50, 5), runtime.NumCPU())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		s.Advance()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Advance()
		}
		b.ReportMetric(float64(2000*1000*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
	})
}

// Benchmark2DShapes sweeps rank-grid shapes of the 2-D decomposition at
// a fixed rank count, axial-only through square: the halo-surface
// trade the mp2d backend exists to make (per-rank perimeter
// 2*(nx/px + nr/pr) shrinks toward the square shape, message count
// grows).
func Benchmark2DShapes(b *testing.B) {
	for _, sh := range [][2]int{{8, 1}, {4, 2}, {2, 4}} {
		b.Run(fmt.Sprintf("%dx%d", sh[0], sh[1]), func(b *testing.B) {
			benchBackend(b, "mp2d", backend.Options{Px: sh[0], Pr: sh[1], Policy: solver.Lagged})
		})
	}
}

// BenchmarkFluxKernel measures the axial flux evaluation alone.
func BenchmarkFluxKernel(b *testing.B) {
	gm := jet.Paper().Gas()
	nx, nr := 128, 64
	q := flux.NewState(nx, nr)
	w := flux.NewState(nx, nr)
	s := flux.NewStress(nx, nr)
	f := flux.NewState(nx, nr)
	for k := range q {
		q[k].FillAll(1)
	}
	flux.Primitives(gm, q, w, 0, nx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flux.FluxX(gm, q, w, s, f, 0, nx, true)
	}
	b.SetBytes(int64(nx * nr * 8 * flux.NVar))
}

// BenchmarkStressKernel measures the viscous stress tensor evaluation.
func BenchmarkStressKernel(b *testing.B) {
	gm := jet.Paper().Gas()
	g := benchGrid()
	q := flux.NewState(g.Nx, g.Nr)
	w := flux.NewState(g.Nx, g.Nr)
	s := flux.NewStress(g.Nx, g.Nr)
	for k := range q {
		q[k].FillAll(1)
	}
	flux.Primitives(gm, q, w, 0, g.Nx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flux.ComputeStress(gm, g.Dx, g.Dr, g.R, w, s, 0, g.Nx)
	}
}

// BenchmarkHaloExchange measures one grouped neighbour exchange through
// the message layer (pack, send, receive, unpack on both sides).
func BenchmarkHaloExchange(b *testing.B) {
	w := msg.NewWorld(2)
	a, c := w.Comm(0), w.Comm(1)
	fa := field.New(32, 100)
	fb := field.New(32, 100)
	buf := make([]float64, 2*100)
	// Prime the world's payload free list so the measured loop exercises
	// the steady state (the first send allocates the recycled payload).
	a.Send(1, 0, buf)
	c.Recv(0, 0, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa.PackCols(30, 2, buf)
		a.Send(1, 0, buf)
		c.Recv(0, 0, buf)
		fb.UnpackCols(-2, 2, buf)
	}
	b.SetBytes(int64(len(buf) * 8))
}

// ---------------------------------------------------------------------
// Substrate kernels.

func BenchmarkCacheSimSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernels.V(5).SimulateSweep(cache.RS560, 250, 100)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.RS560)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*8) % (1 << 22))
	}
}

func BenchmarkEventEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				e.Schedule(1, tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
	}
	b.ReportMetric(1000, "events/op")
}

func BenchmarkPlatformCosim(b *testing.B) {
	ch := trace.PaperNS()
	for i := 0; i < b.N; i++ {
		if _, err := machine.LACE560AllnodeS.Simulate(ch, 16, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §7): each reports the simulated or
// measured effect of one design choice.

// BenchmarkAblationLaggedVsFresh compares the paper's message budget
// (Lagged) against the exact-halo policy on the real parallel solver.
func BenchmarkAblationLaggedVsFresh(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    solver.HaloPolicy
	}{{"Lagged", solver.Lagged}, {"Fresh", solver.Fresh}} {
		b.Run(pol.name, func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: 4, Policy: pol.p})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.Run(b.N)
			b.ReportMetric(float64(res.Ranks[1].Comm.Startups)/float64(b.N), "startups/step")
		})
	}
}

// BenchmarkAblationGroupedVsSplit compares Version 5 (grouped) against
// Version 7 (de-burst) on the shared Ethernet and the ALLNODE switch.
func BenchmarkAblationGroupedVsSplit(b *testing.B) {
	ch := trace.PaperNS()
	cases := []struct {
		name string
		p    machine.Platform
		v    int
	}{
		{"Ethernet/V5", machine.LACE560Ethernet, 5},
		{"Ethernet/V7", machine.LACE560Ethernet, 7},
		{"ALLNODE-S/V5", machine.LACE560AllnodeS, 5},
		{"ALLNODE-S/V7", machine.LACE560AllnodeS, 7},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				o, err := c.p.Simulate(ch, 12, c.v)
				if err != nil {
					b.Fatal(err)
				}
				sec = o.Seconds
			}
			b.ReportMetric(sec, "sim-seconds@P12")
		})
	}
}

// reportCommWait attaches the communication profile of a parallel run:
// the slowest rank's receive-blocked time per step (the
// "non-overlapped communication time" the Version-6 restructuring
// exists to hide) and the startup count per step.
func reportCommWait(b *testing.B, res *par.Result) {
	b.Helper()
	maxWait := time.Duration(0)
	for _, rs := range res.Ranks {
		if rs.Wait > maxWait {
			maxWait = rs.Wait
		}
	}
	b.ReportMetric(float64(maxWait.Nanoseconds())/float64(res.Steps), "wait-ns/step")
	b.ReportMetric(float64(res.TotalComm().Startups)/float64(res.Steps), "startups/step")
}

// BenchmarkAblationOverlap compares Version 5 against Version 6 on the
// real goroutine solver (the overlap restructuring is real code),
// reporting each variant's per-rank wait so the baseline records the
// overlapped vs non-overlapped communication cost of the axial
// decomposition.
func BenchmarkAblationOverlap(b *testing.B) {
	for _, v := range []par.Version{par.V5, par.V6} {
		b.Run(v.String(), func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: 4, Version: v, Policy: solver.Lagged})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.Run(b.N)
			reportCommWait(b, res)
		})
	}
}

// BenchmarkAblationOverlap2D is the same ablation on the 2-D rank
// grid: Version 5 serializes the four-neighbour exchange against the
// sweeps, Version 6 runs each sweep's interior core while the column
// and row messages fly. Identical shape, identical message budget —
// the wait-ns/step metric isolates what the overlap hides.
func BenchmarkAblationOverlap2D(b *testing.B) {
	for _, v := range []par.Version{par.V5, par.V6} {
		b.Run(v.String(), func(b *testing.B) {
			r, err := par.NewRunner2D(jet.Paper(), benchGrid(), par.Options2D{Px: 2, Pr: 2, Version: v, Policy: solver.Lagged})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.Run(b.N)
			reportCommWait(b, res)
		})
	}
}

// BenchmarkAblationBalance compares the decomposition cost models on
// the real solver — uniform point counts against the analytic flops
// profile and the warm-up-measured profile, on the axial and the 2-D
// decomposition — reporting throughput plus the per-rank busy-time
// spread (the Figure 13 metric each mode tries to minimize). The
// measured cases double as the race-instrumented CI smoke: the probe
// runs a full extra runner before the balanced one.
func BenchmarkAblationBalance(b *testing.B) {
	cases := []struct {
		backend, balance string
	}{
		{"mp:v5", "uniform"},
		{"mp:v5", "flops"},
		{"mp:v5", "measured"},
		{"mp2d", "measured"},
		{"hybrid", "measured"},
	}
	for _, c := range cases {
		b.Run(c.backend+"/"+c.balance, func(b *testing.B) {
			res := benchBackend(b, c.backend, backend.Options{Procs: 4, Workers: 2, Policy: solver.Lagged, Balance: c.balance})
			busy := make([]float64, len(res.PerRank))
			for i, r := range res.PerRank {
				busy[i] = r.Busy.Seconds()
			}
			b.ReportMetric(stats.RelSpread(busy), "busy-spread")
		})
	}
}

// BenchmarkAblationReduce is the reduction-cadence ablation: the same
// parallel run with the convergence monitor off and at cadences 1, 2,
// 5, and 10, reporting the collective's startup budget per step and
// the slowest rank's receive-blocked time — the cost the amortized
// cadence exists to shrink (reduce global collectives, the dominant
// scaling term). The cosim cases price the same cadences on the shared
// Ethernet at 12 processors, where log2(P) serialized small-message
// rounds hurt most.
func BenchmarkAblationReduce(b *testing.B) {
	// Each iteration marches a fixed 10 steps, so every cadence in the
	// sweep hits at least one monitored step even at -benchtime=1x and
	// the committed baseline tracks the amortized collective cost.
	const stepsPerIter = 10
	for _, k := range []int{0, 1, 2, 5, 10} {
		b.Run(fmt.Sprintf("mp:v5/every%d", k), func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: 4, Policy: solver.Lagged})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.RunControlled(stepsPerIter*b.N, solver.Control{ReduceEvery: k})
			reportCommWait(b, res)
			b.ReportMetric(float64(res.TotalDir().Reduce.Startups)/float64(res.Steps), "reduce-startups/step")
		})
	}
	ch := trace.PaperNS()
	for _, k := range []int{1, 10} {
		b.Run(fmt.Sprintf("cosim-ethernet/every%d", k), func(b *testing.B) {
			chk := ch
			chk.ReduceEvery = k
			var sec float64
			for i := 0; i < b.N; i++ {
				o, err := machine.LACE560Ethernet.Simulate(chk, 12, 5)
				if err != nil {
					b.Fatal(err)
				}
				sec = o.Seconds
			}
			b.ReportMetric(sec, "sim-seconds@P12")
		})
	}
	// Converged runs through the registry: a full tolerance-stopped run
	// per iteration on the converging-jet scenario, with the collective
	// amortized (ReduceEvery > 1). These double as the race-instrumented
	// CI smoke of the reduce + halo schedule on both decompositions.
	convCfg := study.ConvergedConfig()
	for _, c := range []struct {
		name string
		opts backend.Options
	}{
		{"mp2d", backend.Options{Px: 2, Pr: 2, StopTol: 9e-3, ReduceEvery: 2}},
		{"hybrid", backend.Options{Procs: 2, Workers: 2, StopTol: 9e-3, ReduceEvery: 2}},
	} {
		b.Run(c.name+"/converged", func(b *testing.B) {
			be, err := backend.Get(c.name)
			if err != nil {
				b.Fatal(err)
			}
			g := grid.MustNew(64, 26, 50, 5)
			steps := 0
			for i := 0; i < b.N; i++ {
				res, err := be.Run(convCfg, g, c.opts, 400)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("did not converge within 400 steps")
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "steps-to-tol")
		})
	}
}

// BenchmarkAblationHaloDepth is the communication-avoiding ablation:
// the same two-rank run under Wide(1) (per-stage fresh exchange),
// Wide(2), and Wide(4), reporting the startup budget per step, the
// stages booked as saved, and the slowest rank's receive-blocked time.
// The cosim cases price the identical cadence trade on the shared
// Ethernet at 8 processors with the Euler workload (the exact 4-point
// inviscid shell — the viscous 12-point shell prices Wide out on the
// paper grid, which is itself a finding; see DESIGN.md §5d). The
// converged cases run a full tolerance-stopped Wide(2) run through the
// registry on both decompositions and double as the race-instrumented
// CI smoke of the refresh + exchange + collective interleaving.
func BenchmarkAblationHaloDepth(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("mp:v5/wide%d", k), func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: 2, Policy: solver.Wide(k)})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.Run(b.N)
			reportCommWait(b, res)
			b.ReportMetric(float64(res.TotalDir().Total().SavedStartups)/float64(res.Steps), "saved-startups/step")
		})
	}
	ch := trace.PaperEuler()
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("cosim-ethernet/wide%d", k), func(b *testing.B) {
			chk := ch
			chk.HaloDepth = k
			var sec float64
			for i := 0; i < b.N; i++ {
				o, err := machine.LACE560Ethernet.Simulate(chk, 8, 5)
				if err != nil {
					b.Fatal(err)
				}
				sec = o.Seconds
			}
			b.ReportMetric(sec, "sim-seconds@P8")
		})
	}
	// Converged Wide(2) runs through the registry. The viscous shell is
	// 12 points deep, so the 26-row grid keeps the rank grid one block
	// tall and the hybrid slabs 32 columns wide.
	convCfg := study.ConvergedConfig()
	for _, c := range []struct {
		name string
		opts backend.Options
	}{
		{"mp2d", backend.Options{Px: 2, Pr: 1, Policy: solver.Wide(2), StopTol: 9e-3, ReduceEvery: 2}},
		{"hybrid", backend.Options{Procs: 2, Workers: 2, Policy: solver.Wide(2), StopTol: 9e-3, ReduceEvery: 2}},
	} {
		b.Run(c.name+"/converged-wide", func(b *testing.B) {
			be, err := backend.Get(c.name)
			if err != nil {
				b.Fatal(err)
			}
			g := grid.MustNew(64, 26, 50, 5)
			steps := 0
			for i := 0; i < b.N; i++ {
				res, err := be.Run(convCfg, g, c.opts, 400)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("did not converge within 400 steps")
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "steps-to-tol")
		})
	}
	// The hierarchical collective on the real runner: four ranks reduced
	// every step, flat against 2-wide shared-memory nodes — the member
	// ranks' message traffic drops to zero.
	for _, grp := range []int{1, 2} {
		b.Run(fmt.Sprintf("mp:v5/reduce-group%d", grp), func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: 4, Policy: solver.Lagged, ReduceGroup: grp})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res := r.RunControlled(b.N, solver.Control{ReduceEvery: 1})
			b.ReportMetric(float64(res.TotalDir().Reduce.Startups)/float64(res.Steps), "reduce-startups/step")
		})
	}
}

// BenchmarkAblationParareal is the parallel-in-time ablation: the same
// workload through the parareal coordinator — a serial fine propagator
// and the 2-D rank grid composed under it — reporting the correction
// iterations the adaptive defect control actually paid for alongside
// the effective throughput (parareal repeats fine work per iteration,
// so the Mpoints/s row tracks the redundancy the iteration count
// implies). The mp2d-fine case doubles as the race-instrumented CI
// smoke of the slice handoff + spatial halo interleaving. The cosim
// cases price the K=4 schedule against the pure-spatial run of the
// same 8-processor pool on the shared Ethernet, where the paper's
// spatial scaling flattens — the trade the PARAREAL claim quantifies.
func BenchmarkAblationParareal(b *testing.B) {
	// Each iteration marches a fixed 8 steps so the K=4 slice schedule
	// is always fillable, even at -benchtime=1x.
	const stepsPerIter = 8
	for _, c := range []struct {
		name string
		opts backend.Options
	}{
		{"serial-fine", backend.Options{TimeSlices: 4, CoarseFactor: 2, DefectTol: 1e-2}},
		{"mp2d-fine", backend.Options{TimeSlices: 4, CoarseFactor: 2, DefectTol: 1e-2, Fine: "mp2d", Procs: 2, Policy: solver.Fresh}},
	} {
		b.Run(c.name+"/K4", func(b *testing.B) {
			be, err := backend.Get("parareal")
			if err != nil {
				b.Fatal(err)
			}
			iters := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := be.Run(jet.Paper(), benchGrid(), c.opts, stepsPerIter)
				if err != nil {
					b.Fatal(err)
				}
				if res.Diag.HasNaN {
					b.Fatal("diverged")
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(float64(128*64*stepsPerIter*b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
		})
	}
	ch := trace.PaperNS()
	for _, c := range []struct {
		name   string
		slices int
	}{{"cosim-ethernet/spatial", 0}, {"cosim-ethernet/K4", 4}} {
		b.Run(c.name, func(b *testing.B) {
			chk := ch
			chk.TimeSlices = c.slices
			var sec float64
			for i := 0; i < b.N; i++ {
				o, err := machine.LACE560Ethernet.Simulate(chk, 8, 5)
				if err != nil {
					b.Fatal(err)
				}
				sec = o.Seconds
			}
			b.ReportMetric(sec, "sim-seconds@P8")
		})
	}
}

// BenchmarkAblationCacheGeometry sweeps the T3D node across cache
// geometries — the paper's central "proper cache design" lesson.
func BenchmarkAblationCacheGeometry(b *testing.B) {
	f := trace.PaperFlopsPerPoint(true)
	geoms := []cache.Config{
		cache.T3D,
		{Name: "64KB-4way", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4},
		{Name: "256KB-4way", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4},
	}
	for _, g := range geoms {
		b.Run(g.Name, func(b *testing.B) {
			chip := cpu.AlphaT3D
			chip.DCache = g
			var mf float64
			for i := 0; i < b.N; i++ {
				mf = chip.Evaluate(kernels.V(5), f).EffMFLOPS
			}
			b.ReportMetric(mf, "MFLOPS")
		})
	}
}

// BenchmarkAblationEagerVsRendezvous compares the two library semantics
// on the same switch hardware.
func BenchmarkAblationEagerVsRendezvous(b *testing.B) {
	ch := trace.PaperNS()
	for _, p := range []machine.Platform{machine.SPMPL, machine.SPPVMe} {
		b.Run(p.Lib.Name, func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				o, err := p.Simulate(ch, 8, 5)
				if err != nil {
					b.Fatal(err)
				}
				sec = o.Seconds
			}
			b.ReportMetric(sec, "sim-seconds@P8")
		})
	}
}

// BenchmarkAblationDecomposition sweeps rank counts, reporting the real
// measured speedup of the axial decomposition on the host.
func BenchmarkAblationDecomposition(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(decompName(procs), func(b *testing.B) {
			r, err := par.NewRunner(jet.Paper(), benchGrid(), par.Options{Procs: procs, Policy: solver.Lagged})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			r.Run(b.N)
		})
	}
}

func decompName(p int) string {
	d, _ := decomp.Axial(128, p)
	w := d.Widths()
	return fmt.Sprintf("%dranks-%dcols", p, w[0])
}

// ---------------------------------------------------------------------
// End-to-end: the public API.

func BenchmarkCoreQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := core.NewRun(core.Config{Nx: 64, Nr: 24, Steps: 5})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := run.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Service throughput: the multi-tenant scheduler.

// serviceJobs is the throughput workload: a mixed Reynolds, excitation,
// grid, and scenario sweep with deliberate duplicates, the traffic
// shape the config-hash cache is built for.
func serviceJobs() []serve.Job {
	eps0 := 0.0
	unique := []serve.Job{
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 5},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 5, Reynolds: 500},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 5, Reynolds: 2000},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 5, Eps: &eps0},
		{Scenario: "jet", Backend: "serial", Nx: 96, Nr: 32, Steps: 5},
		{Scenario: "jet", Backend: "shm", Procs: 2, Nx: 64, Nr: 24, Steps: 5},
		{Scenario: "jet", Backend: "mp:v5", Procs: 2, Fresh: true, Nx: 64, Nr: 24, Steps: 5},
		{Scenario: "jet", Backend: "mp2d", Px: 2, Pr: 2, Procs: 4, Fresh: true, Nx: 64, Nr: 24, Steps: 5},
		{Scenario: "jet", Backend: "serial", Euler: true, Nx: 64, Nr: 24, Steps: 5},
		{Scenario: "cavity", Backend: "serial", Nx: 33, Nr: 32, Steps: 5},
		{Scenario: "cavity", Backend: "mp:v5", Procs: 2, Fresh: true, Nx: 33, Nr: 32, Steps: 5},
		{Scenario: "channel", Backend: "serial", Nx: 64, Nr: 16, Steps: 5},
		{Scenario: "channel", Backend: "shm", Procs: 2, Nx: 64, Nr: 16, Steps: 5},
	}
	jobs := make([]serve.Job, 0, 2*len(unique)+4)
	jobs = append(jobs, unique...)
	jobs = append(jobs, unique...) // every job resubmitted once: cache traffic
	jobs = append(jobs, unique[:4]...)
	return jobs
}

// BenchmarkServiceThroughput measures served jobs per hour through the
// multi-tenant scheduler on the mixed duplicate-bearing workload; the
// hit-rate metric records how much of it the config-hash cache
// absorbed. A fresh scheduler per iteration keeps the hit-rate a
// property of the workload, not of accumulated benchmark state.
func BenchmarkServiceThroughput(b *testing.B) {
	jobs := serviceJobs()
	var served, hits uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.New(serve.Options{})
		var wg sync.WaitGroup
		for _, job := range jobs {
			wg.Add(1)
			go func(job serve.Job) {
				defer wg.Done()
				if _, err := s.Submit(job.Config()); err != nil {
					b.Error(err)
				}
			}(job)
		}
		wg.Wait()
		st := s.Stats()
		served += st.Completed + st.CacheHits
		hits += st.CacheHits
		s.Close()
	}
	b.ReportMetric(float64(served)/b.Elapsed().Hours(), "runs/hour")
	b.ReportMetric(float64(hits)/float64(served), "hit-rate")
}
