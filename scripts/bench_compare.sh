#!/bin/sh
# Compare a fresh benchmark run against the committed baseline
# (BENCH_seed.json) and flag throughput regressions.
#
# Usage:
#   ./scripts/bench_compare.sh                     # full harness, 1 iteration
#   BENCH=BenchmarkSolverStep ./scripts/bench_compare.sh   # subset
#   BENCHTIME=2s ./scripts/bench_compare.sh        # steadier numbers
#   THRESHOLD=0.8 ./scripts/bench_compare.sh       # allow 20% drop
#   BASELINE=other.json ./scripts/bench_compare.sh
#
# Only benchmarks that report a Mpoints/s metric are compared — those
# are the real-host solver benchmarks whose trajectory the baseline
# exists to protect; simulated-platform figure benchmarks measure model
# output, not host speed. A benchmark regresses when
# fresh/baseline < THRESHOLD: the fresh run must keep at least that
# fraction of the baseline throughput (default 0.9, i.e. a 10% drop
# budget; lower it — e.g. THRESHOLD=0.8 — on noisy hosts, raise it to
# tighten the gate). Exit status 1 if anything regressed.
#
# Benchmarks present in only one of the two runs are never an error:
# a fresh benchmark with no baseline entry (new in this tree) and a
# baseline entry the fresh run did not produce (renamed/removed, or a
# BENCH subset) are each reported as a warning and skipped, so adding
# or renaming benchmarks cannot fail the gate until the baseline is
# regenerated with scripts/bench_baseline.sh. The summary table lists
# every compared benchmark (baseline -> fresh Mpoints/s and the ratio),
# and the final line counts compared, skipped, and regressed rows.
#
# Absolute numbers are host-dependent: comparisons are only
# meaningful against a baseline recorded on the same machine, and
# 1-iteration runs on a busy host are noisy — rerun with BENCHTIME=2s
# (or higher) before acting on a flagged regression.
set -eu
cd "$(dirname "$0")/.."

baseline="${BASELINE:-BENCH_seed.json}"
benchtime="${BENCHTIME:-1x}"
bench="${BENCH:-.}"
threshold="${THRESHOLD:-0.9}"

[ -f "$baseline" ] || { echo "baseline $baseline not found" >&2; exit 2; }

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run XXX -bench "$bench" -benchtime="$benchtime" . | tee "$tmp" >&2

awk -v baseline="$baseline" -v threshold="$threshold" '
# Pass 1: baseline Mpoints/s per benchmark name from the JSON document
# written by bench_baseline.sh (one {"name": ..., "metrics": {...}}
# object per line).
NR == FNR {
    if (match($0, /"name": "[^"]+"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
        if (match($0, /"Mpoints\/s": [0-9.eE+-]+/))
            base[name] = substr($0, RSTART + 14, RLENGTH - 14)
    }
    next
}
# Pass 2: fresh run in standard bench output format.
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    mp = ""
    for (i = 3; i < NF; i++)
        if ($(i + 1) == "Mpoints/s") mp = $i
    if (mp == "") next
    if (!(name in base)) {
        printf "warning: %s has no baseline entry, skipped (regenerate with scripts/bench_baseline.sh)\n", name
        skipped++
        next
    }
    if (n == 0)
        printf "%-55s %10s    %10s  %s\n", "benchmark", "baseline", "fresh", "ratio"
    seen[name] = 1
    n++
    ratio = mp / base[name]
    status = "ok"
    if (ratio < threshold) { status = "REGRESSED"; bad++ }
    printf "%-55s %10.3f -> %10.3f  (%.2fx) %s\n", name, base[name], mp, ratio, status
}
END {
    for (name in base)
        if (!(name in seen)) {
            printf "warning: baseline entry %s not in this run, skipped\n", name
            skipped++
        }
    if (n == 0) { print "no comparable Mpoints/s benchmarks found"; exit 2 }
    printf "%d compared, %d skipped, %d regressed (threshold %.2fx)\n", n, skipped, bad, threshold
    if (bad > 0) exit 1
}' "$baseline" "$tmp"
