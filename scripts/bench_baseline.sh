#!/bin/sh
# Regenerate BENCH_seed.json, the committed perf-trajectory baseline.
#
# Usage:
#   ./scripts/bench_baseline.sh            # 1-iteration smoke shape (fast)
#   BENCHTIME=2s ./scripts/bench_baseline.sh   # steadier numbers
#
# The baseline captures every benchmark of the root harness (tables,
# figures, solver kernels, backends, ablations) as one JSON document so
# future PRs can diff their bench run against the seed. The overlap
# ablations (BenchmarkAblationOverlap for the axial decomposition,
# BenchmarkAblationOverlap2D for the 2-D rank grid) report
# wait-ns/step and startups/step for Version 5 vs Version 6, so the
# committed baseline records the overlapped vs non-overlapped
# communication cost of both decompositions. The per-scenario
# BenchmarkSolverStep/<scenario> rows (and the parallel
# BenchmarkScenarioBackends sweep) put every registered flow scenario
# under the same Mpoints/s gate as the jet, so bench_compare.sh flags a
# regression on the wall-mirror paths too. BenchmarkAblationHaloDepth
# records the communication-avoiding cadence trajectory: per-depth
# saved-startups/step on the real backends, the simulated Ethernet
# price of the depth-2 schedule at P=8, converged Wide(2) runs of
# mp2d and hybrid, and the hierarchical-reduce startup count per node
# size. BenchmarkAblationParareal records the parallel-in-time
# trajectory: correction iterations and throughput of the parareal
# coordinator over serial and mp2d fine propagators, plus the simulated
# Ethernet price of the K=4 schedule against the pure-spatial run of
# the same pool. BenchmarkServiceThroughput records the multi-tenant service's
# runs/hour and cache hit-rate on a mixed duplicate-bearing workload
# (Reynolds/excitation/grid/scenario sweep) through the jetsimd
# scheduler. Numbers are
# host-dependent: compare trends on the same machine, not absolute
# values across machines.
set -eu
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_seed.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run XXX -bench . -benchtime="$benchtime" -benchmem . | tee "$tmp" >&2

awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n"
    printf "  \"command\": \"go test -run XXX -bench . -benchtime=%s -benchmem .\",\n", benchtime
    n = 0
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    if (n == 0) {
        printf "  \"goos\": \"%s\",\n", goos
        printf "  \"goarch\": \"%s\",\n", goarch
        printf "  \"cpu\": \"%s\",\n", cpu
        printf "  \"benchmarks\": [\n"
    } else {
        printf ",\n"
    }
    printf "    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", $1, $2
    sep = ""
    for (i = 3; i < NF; i += 2) {
        printf "%s\"%s\": %s", sep, $(i+1), $i
        sep = ", "
    }
    printf "}}"
    n++
}
END {
    if (n > 0) printf "\n  ]\n"
    else printf "  \"benchmarks\": []\n"
    printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)" >&2
