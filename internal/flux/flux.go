// Package flux implements the pointwise physics kernels of the paper's
// Section 2: primitive recovery, the viscous stress tensor and heat flux
// in axisymmetric (x, r) coordinates, the axial flux F (stored without
// the metric factor r, which is constant along x), the radial flux
// rG = r*g, and the cylindrical source term S = (0, 0, p - t_theta, 0).
//
// All kernels operate over a contiguous range of columns [c0, c1) of a
// slab so that the same code serves the serial solver and every
// distributed-memory rank.
package flux

import (
	"repro/internal/field"
	"repro/internal/gas"
)

// Vars indexes the conservative and primitive variable bundles.
const (
	IRho = 0 // density           | primitive: density
	IMx  = 1 // axial momentum    | primitive: axial velocity u
	IMr  = 2 // radial momentum   | primitive: radial velocity v
	IE   = 3 // total energy      | primitive: temperature T
	NVar = 4
)

// State is the conservative variable bundle q = (rho, rho*u, rho*v, E).
// The paper's Q = r*q; the factor r is applied inside the radial
// operator where it varies.
type State = [NVar]*field.Field

// NewState allocates a zeroed variable bundle for an nx-by-nr slab. The
// components share one contiguous field.Set arena (SoA layout), so a
// bundle is a single allocation and adjacent components are adjacent in
// memory.
func NewState(nx, nr int) *State {
	set := field.NewSet(NVar, nx, nr)
	var s State
	for k := range s {
		s[k] = set.Field(k)
	}
	return &s
}

// Stress holds the viscous stress tensor components and heat fluxes.
type Stress struct {
	Txx, Trr, Tqq, Txr *field.Field
	Qx, Qr             *field.Field
}

// NewStress allocates stress workspace for an nx-by-nr slab, all six
// components in one contiguous field.Set arena.
func NewStress(nx, nr int) *Stress {
	set := field.NewSet(6, nx, nr)
	return &Stress{
		Txx: set.Field(0), Trr: set.Field(1),
		Tqq: set.Field(2), Txr: set.Field(3),
		Qx: set.Field(4), Qr: set.Field(5),
	}
}

// Primitives fills w = (rho, u, v, T) from q over columns [c0, c1),
// interior rows. Ghost rows/columns are the caller's responsibility
// (halo exchange, axis mirror, or extrapolation).
func Primitives(gm gas.Model, q, w *State, c0, c1 int) {
	gm1 := gm.Gamma - 1
	for i := c0; i < c1; i++ {
		rho := q[IRho].Col(i)
		// Pin every companion column to len(rho) so the compiler proves
		// all eight accesses in bounds once per column (see DESIGN.md,
		// bounds-check elimination).
		n := len(rho)
		mx, mr, e := q[IMx].Col(i)[:n], q[IMr].Col(i)[:n], q[IE].Col(i)[:n]
		wr, wu, wv := w[IRho].Col(i)[:n], w[IMx].Col(i)[:n], w[IMr].Col(i)[:n]
		wt := w[IE].Col(i)[:n]
		for j := range rho {
			r := rho[j]
			u := mx[j] / r
			v := mr[j] / r
			p := gm1 * (e[j] - 0.5*r*(u*u+v*v))
			wr[j] = r
			wu[j] = u
			wv[j] = v
			wt[j] = gm.Gamma * p / r
		}
	}
}

// PrimitivesRect fills w from q over columns [c0, c1), rows [j0, j1),
// with the same per-point arithmetic as Primitives. The solver's fused
// corrector uses it to re-establish the primitive bundle everywhere a
// boundary condition rewrote the state after the full-column pass.
func PrimitivesRect(gm gas.Model, q, w *State, c0, c1, j0, j1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	gm1 := gm.Gamma - 1
	m := j1 - j0
	for i := c0; i < c1; i++ {
		rho := q[IRho].Col(i)[j0 : j0+m]
		mx, mr := q[IMx].Col(i)[j0:j0+m], q[IMr].Col(i)[j0:j0+m]
		e := q[IE].Col(i)[j0 : j0+m]
		wr, wu := w[IRho].Col(i)[j0:j0+m], w[IMx].Col(i)[j0:j0+m]
		wv, wt := w[IMr].Col(i)[j0:j0+m], w[IE].Col(i)[j0:j0+m]
		for j := range rho {
			r := rho[j]
			u := mx[j] / r
			v := mr[j] / r
			p := gm1 * (e[j] - 0.5*r*(u*u+v*v))
			wr[j] = r
			wu[j] = u
			wv[j] = v
			wt[j] = gm.Gamma * p / r
		}
	}
}

// AxisMirrorPrims applies axis symmetry ghosts to the primitive bundle:
// rho, u, T are even in r; v is odd.
func AxisMirrorPrims(w *State) {
	w[IRho].MirrorAxis(1)
	w[IMx].MirrorAxis(1)
	w[IMr].MirrorAxis(-1)
	w[IE].MirrorAxis(1)
}

// TopExtrapolatePrims fills the far-field ghost rows of the primitive
// bundle by cubic extrapolation.
func TopExtrapolatePrims(w *State) {
	for k := range w {
		w[k].ExtrapolateTop()
	}
}

// ComputeStress fills the stress tensor and heat flux over columns
// [c0, c1). Inner derivatives are central second order (the dissipative
// terms need only second-order accuracy in the 2-4 scheme). Requires
// primitives valid on columns [c0-1, c1+1) and on radial ghost rows.
func ComputeStress(gm gas.Model, dx, dr float64, r []float64, w *State, s *Stress, c0, c1 int) {
	ComputeStressRows(gm, dx, dr, r, w, s, c0, c1, 0, s.Txx.Nr)
}

// ComputeStressRows is ComputeStress restricted to rows [j0, j1) —
// the sub-rectangle form the Version-6 overlap uses to compute an
// interior core while ghost rows are still in flight. Requires
// primitives valid on rows [j0-1, j1+1) of columns [c0-1, c1+1).
func ComputeStressRows(gm gas.Model, dx, dr float64, r []float64, w *State, s *Stress, c0, c1, j0, j1 int) {
	if gm.Mu == 0 {
		return
	}
	mu := gm.Mu
	k := gm.HeatConductivity()
	hx := 0.5 / dx
	hr := 0.5 / dr
	twoThird := 2.0 / 3.0
	for i := c0; i < c1; i++ {
		uw, ue := w[IMx].Col(i-1), w[IMx].Col(i+1)
		vw, ve := w[IMr].Col(i-1), w[IMr].Col(i+1)
		tw, te := w[IE].Col(i-1), w[IE].Col(i+1)
		u, v, t := w[IMx], w[IMr], w[IE]
		txx, trr, tqq, txr := s.Txx.Col(i), s.Trr.Col(i), s.Tqq.Col(i), s.Txr.Col(i)
		qx, qr := s.Qx.Col(i), s.Qr.Col(i)
		for j := j0; j < j1; j++ {
			ux := (ue[j] - uw[j]) * hx
			vx := (ve[j] - vw[j]) * hx
			tx := (te[j] - tw[j]) * hx
			ur := (u.At(i, j+1) - u.At(i, j-1)) * hr
			vr := (v.At(i, j+1) - v.At(i, j-1)) * hr
			tr := (t.At(i, j+1) - t.At(i, j-1)) * hr
			vor := v.At(i, j) / r[j]
			div := ux + vr + vor
			txx[j] = mu * (2*ux - twoThird*div)
			trr[j] = mu * (2*vr - twoThird*div)
			tqq[j] = mu * (2*vor - twoThird*div)
			txr[j] = mu * (ur + vx)
			qx[j] = -k * tx
			qr[j] = -k * tr
		}
	}
}

// FluxX fills the axial flux f (without the metric factor r) over
// columns [c0, c1):
//
//	f = (rho*u, rho*u^2 + p - txx, rho*u*v - txr, u*(E+p) - u*txx - v*txr + qx)
func FluxX(gm gas.Model, q, w *State, s *Stress, f *State, c0, c1 int, viscous bool) {
	FluxXRows(gm, q, w, s, f, c0, c1, 0, f[IRho].Nr, viscous)
}

// FluxXRows is FluxX restricted to rows [j0, j1); the stress tensor
// must be valid on the same sub-rectangle.
func FluxXRows(gm gas.Model, q, w *State, s *Stress, f *State, c0, c1, j0, j1 int, viscous bool) {
	for i := c0; i < c1; i++ {
		rho, u, v, t := w[IRho].Col(i), w[IMx].Col(i), w[IMr].Col(i), w[IE].Col(i)
		e := q[IE].Col(i)
		f0, f1, f2, f3 := f[IRho].Col(i), f[IMx].Col(i), f[IMr].Col(i), f[IE].Col(i)
		if viscous {
			txx, txr, qx := s.Txx.Col(i), s.Txr.Col(i), s.Qx.Col(i)
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				m := rho[j] * u[j]
				f0[j] = m
				f1[j] = m*u[j] + p - txx[j]
				f2[j] = m*v[j] - txr[j]
				f3[j] = u[j]*(e[j]+p) - u[j]*txx[j] - v[j]*txr[j] + qx[j]
			}
		} else {
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				m := rho[j] * u[j]
				f0[j] = m
				f1[j] = m*u[j] + p
				f2[j] = m * v[j]
				f3[j] = u[j] * (e[j] + p)
			}
		}
	}
}

// FluxR fills the radial flux rg = r*g over columns [c0, c1):
//
//	g = (rho*v, rho*u*v - txr, rho*v^2 + p - trr, v*(E+p) - u*txr - v*trr + qr)
func FluxR(gm gas.Model, r []float64, q, w *State, s *Stress, f *State, c0, c1 int, viscous bool) {
	FluxRRows(gm, r, q, w, s, f, c0, c1, 0, f[IRho].Nr, viscous)
}

// FluxRRows is FluxR restricted to rows [j0, j1); the stress tensor
// must be valid on the same sub-rectangle.
func FluxRRows(gm gas.Model, r []float64, q, w *State, s *Stress, f *State, c0, c1, j0, j1 int, viscous bool) {
	for i := c0; i < c1; i++ {
		rho, u, v, t := w[IRho].Col(i), w[IMx].Col(i), w[IMr].Col(i), w[IE].Col(i)
		e := q[IE].Col(i)
		f0, f1, f2, f3 := f[IRho].Col(i), f[IMx].Col(i), f[IMr].Col(i), f[IE].Col(i)
		if viscous {
			txr, trr, qr := s.Txr.Col(i), s.Trr.Col(i), s.Qr.Col(i)
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				m := rho[j] * v[j]
				rj := r[j]
				f0[j] = rj * m
				f1[j] = rj * (m*u[j] - txr[j])
				f2[j] = rj * (m*v[j] + p - trr[j])
				f3[j] = rj * (v[j]*(e[j]+p) - u[j]*txr[j] - v[j]*trr[j] + qr[j])
			}
		} else {
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				m := rho[j] * v[j]
				rj := r[j]
				f0[j] = rj * m
				f1[j] = rj * (m * u[j])
				f2[j] = rj * (m*v[j] + p)
				f3[j] = rj * (v[j] * (e[j] + p))
			}
		}
	}
}

// MirrorFluxR applies the axis parity ghosts to the radial flux bundle
// rg: under r -> -r the products r*g have parity (+, +, -, +).
func MirrorFluxR(f *State) {
	f[IRho].MirrorAxis(1)
	f[IMx].MirrorAxis(1)
	f[IMr].MirrorAxis(-1)
	f[IE].MirrorAxis(1)
}

// Source fills src with the cylindrical source term divided by r,
// S/r = (0, 0, (p - tqq)/r, 0), over columns [c0, c1). Only the radial
// momentum component is nonzero; src receives just that component.
func Source(gm gas.Model, r []float64, w *State, s *Stress, src *field.Field, c0, c1 int, viscous bool) {
	SourceRows(gm, r, w, s, src, c0, c1, 0, src.Nr, viscous)
}

// SourceRows is Source restricted to rows [j0, j1).
func SourceRows(gm gas.Model, r []float64, w *State, s *Stress, src *field.Field, c0, c1, j0, j1 int, viscous bool) {
	for i := c0; i < c1; i++ {
		rho, t := w[IRho].Col(i), w[IE].Col(i)
		out := src.Col(i)
		if viscous {
			tqq := s.Tqq.Col(i)
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				out[j] = (p - tqq[j]) / r[j]
			}
		} else {
			for j := j0; j < j1; j++ {
				p := rho[j] * t[j] / gm.Gamma
				out[j] = p / r[j]
			}
		}
	}
}

// Hand-counted floating-point operations per grid point for each kernel,
// used by the trace package for Table 1/2 style accounting. Divisions
// and multiplications count as one FLOP each; the CPU timing model
// additionally weights divisions (see internal/cpu).
const (
	FlopsPrims       = 14 // 2 div, 8 mul/add, p, T
	FlopsStress      = 34 // 6 central diffs, divergence, 4 stresses, 2 heat fluxes
	FlopsFluxXVisc   = 17
	FlopsFluxXInvisc = 11
	FlopsFluxRVisc   = 21
	FlopsFluxRInvisc = 15
	FlopsSource      = 4
	DivsPrims        = 2
	DivsStress       = 1
	DivsSource       = 1
)
