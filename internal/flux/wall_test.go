package flux

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/gas"
)

// TestWallMirrorMaps pins the ghost relations of every wall-mirror map:
// parities about the wall plane for stationary walls, the affine lid
// relations for the moving top wall, and the reduction of the lid maps
// to the stationary parity maps at ulid = 0.
func TestWallMirrorMaps(t *testing.T) {
	const nx, nr = 9, 7
	rng := rand.New(rand.NewSource(42))
	fresh := func() *State {
		s := NewState(nx, nr)
		randState(rng, s)
		return s
	}
	// mirror signs per component: prims (+,-,-,+), flux (-,+,+,-).
	signs := map[bool][4]float64{
		false: {1, -1, -1, 1},
		true:  {-1, 1, 1, -1},
	}

	for _, isFlux := range []bool{false, true} {
		sg := signs[isFlux]
		b := fresh()
		WallMirrorColsLeft(b, isFlux)
		WallMirrorColsRight(b, isFlux)
		for k := 0; k < NVar; k++ {
			for j := -field.Halo; j < nr+field.Halo; j++ {
				for m := 1; m <= field.Halo; m++ {
					// Axial walls are node-centered: ghost -m mirrors
					// column +m about the wall node 0, ghost nx-1+m
					// mirrors nx-1-m about the wall node nx-1.
					if got, want := b[k].At(-m, j), sg[k]*b[k].At(m, j); got != want {
						t.Fatalf("left isFlux=%v k=%d ghost(-%d,%d) = %g, want %g", isFlux, k, m, j, got, want)
					}
					if got, want := b[k].At(nx-1+m, j), sg[k]*b[k].At(nx-1-m, j); got != want {
						t.Fatalf("right isFlux=%v k=%d ghost(%d,%d) = %g, want %g", isFlux, k, nx-1+m, j, got, want)
					}
				}
			}
		}

		b = fresh()
		WallMirrorRowsBottom(b, isFlux)
		for k := 0; k < NVar; k++ {
			for i := -field.Halo; i < nx+field.Halo; i++ {
				for m := 1; m <= field.Halo; m++ {
					// Radial walls are staggered: ghost row -m mirrors
					// row m-1 about the plane half a cell below row 0.
					if got, want := b[k].At(i, -m), sg[k]*b[k].At(i, m-1); got != want {
						t.Fatalf("bottom isFlux=%v k=%d ghost(%d,-%d) = %g, want %g", isFlux, k, i, m, got, want)
					}
				}
			}
		}

		// Stationary top wall: the lid maps must reduce to the parity map.
		b = fresh()
		WallMirrorRowsTop(b, 0, isFlux)
		for k := 0; k < NVar; k++ {
			for i := -field.Halo; i < nx+field.Halo; i++ {
				for m := 0; m < field.Halo; m++ {
					if got, want := b[k].At(i, nr+m), sg[k]*b[k].At(i, nr-1-m); got != want {
						t.Fatalf("top(0) isFlux=%v k=%d ghost(%d,%d) = %g, want %g", isFlux, k, i, nr+m, got, want)
					}
				}
			}
		}
	}

	// Moving lid, primitive bundle: u affine, the rest parity-mapped.
	const ulid = 0.37
	b := fresh()
	WallMirrorRowsTop(b, ulid, false)
	for i := -field.Halo; i < nx+field.Halo; i++ {
		for m := 0; m < field.Halo; m++ {
			if got, want := b[IMx].At(i, nr+m), 2*ulid-b[IMx].At(i, nr-1-m); got != want {
				t.Fatalf("lid prims u ghost(%d,%d) = %g, want %g", i, nr+m, got, want)
			}
			if got, want := b[IMr].At(i, nr+m), -b[IMr].At(i, nr-1-m); got != want {
				t.Fatalf("lid prims v ghost(%d,%d) = %g, want %g", i, nr+m, got, want)
			}
		}
	}

	// Moving lid, flux bundle: the affine map must equal reflecting an
	// analytically constructed inviscid flux column — build g from a
	// primitive state, map it, and compare against g built from the
	// reflected state (u -> 2*ulid-u, v -> -v, rho/T even).
	gm := gas.Air(0)
	prim := gas.Primitive{Rho: 1.2, U: 0.8, V: 0.33, P: 0.9}
	gOf := func(w gas.Primitive) [4]float64 {
		e := w.P/(gm.Gamma-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
		return [4]float64{
			w.Rho * w.V,
			w.Rho * w.U * w.V,
			w.Rho*w.V*w.V + w.P,
			w.V * (e + w.P),
		}
	}
	g := gOf(prim)
	refl := gOf(gas.Primitive{Rho: prim.Rho, U: 2*ulid - prim.U, V: -prim.V, P: prim.P})
	got := [4]float64{
		-g[0],
		g[1] - 2*ulid*g[0],
		g[2],
		-g[3] + 2*ulid*g[1] - 2*ulid*ulid*g[0],
	}
	for k := range got {
		if math.Abs(got[k]-refl[k]) > 1e-14 {
			t.Fatalf("lid flux map component %d: affine %g != reflected %g", k, got[k], refl[k])
		}
	}
}

// wallGhosts overwrites every ghost frame of a bundle with the cavity's
// wall-mirror treatment: walls on all four sides, the top one moving.
func wallGhosts(b *State, ulid float64, isFlux bool) {
	WallMirrorColsLeft(b, isFlux)
	WallMirrorColsRight(b, isFlux)
	WallMirrorRowsBottom(b, isFlux)
	WallMirrorRowsTop(b, ulid, isFlux)
}

// TestFusedWallGhostEquivalence re-runs the fused-vs-reference bitwise
// pin with wall-mirror ghosts instead of random ones, on rectangles
// that touch every boundary — the stencil shapes the wall-bounded
// scenarios feed the fused kernels. Covers both the cavity-style
// offset radial coordinate and the channel-style axis-anchored one.
func TestFusedWallGhostEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		nx := 8 + rng.Intn(13)
		nr := 8 + rng.Intn(13)
		gm := gas.Air(0.001)
		viscous := true
		if seed%3 == 2 {
			gm = gas.Air(0)
			viscous = false
		}
		dx, dr := 0.1+rng.Float64(), 0.1+rng.Float64()
		r0 := 0.0
		if seed%2 == 0 {
			r0 = 1e4 // cavity-style planar-limit offset
		}
		ulid := 0.0
		if seed%2 == 0 {
			ulid = 0.2
		}
		r := make([]float64, nr)
		for j := range r {
			r[j] = r0 + (float64(j)+0.5)*dr
		}
		q, w := NewState(nx, nr), NewState(nx, nr)
		randState(rng, q)
		randState(rng, w)
		// Conserved bundle: stationary-wall parity ghosts (the lid enters
		// through the primitive bundle, matching the solver's edge fill).
		wallGhosts(q, 0, false)
		wallGhosts(w, ulid, false)

		// Boundary-touching rectangle: the stress stencil reads c0-1..c1,
		// so c0=1/c1=nx-1 touches both wall columns; full height spans
		// both radial walls.
		c0, c1 := 1, nx-1
		j0, j1 := 0, nr

		sRef := NewStress(nx, nr)
		fRef, fFast := NewState(nx, nr), NewState(nx, nr)
		srcRef, srcFast := field.New(nx, nr), field.New(nx, nr)

		ComputeStressRows(gm, dx, dr, r, w, sRef, c0, c1, j0, j1)
		FluxXRows(gm, q, w, sRef, fRef, c0, c1, j0, j1, viscous)
		StressFluxX(gm, dx, dr, r, q, w, fFast, c0, c1, j0, j1, viscous)
		for k := range fRef {
			if !fRef[k].Equal(fFast[k]) {
				t.Fatalf("seed %d: StressFluxX component %d differs on wall-ghost %dx%d (r0=%g ulid=%g)",
					seed, k, nx, nr, r0, ulid)
			}
		}

		ComputeStressRows(gm, dx, dr, r, w, sRef, c0, c1, j0, j1)
		FluxRRows(gm, r, q, w, sRef, fRef, c0, c1, j0, j1, viscous)
		SourceRows(gm, r, w, sRef, srcRef, c0, c1, j0, j1, viscous)
		StressFluxRSource(gm, dx, dr, r, q, w, fFast, srcFast, c0, c1, j0, j1, viscous)
		for k := range fRef {
			if !fRef[k].Equal(fFast[k]) {
				t.Fatalf("seed %d: StressFluxRSource component %d differs on wall-ghost %dx%d", seed, k, nx, nr)
			}
		}
		if !srcRef.Equal(srcFast) {
			t.Fatalf("seed %d: fused source differs on wall-ghost %dx%d", seed, nx, nr)
		}
	}
}
