package flux

import (
	"repro/internal/field"
	"repro/internal/gas"
)

// This file holds the fused, cache-blocked fast path of the physics
// kernels. Each routine computes bitwise-identical results to the
// reference kernels in flux.go (same per-point arithmetic, same
// evaluation order) but walks the slab as fused column sweeps: the
// stress tile of a column is produced and immediately consumed by the
// flux (and source) loop while it is still resident in L1, instead of
// streaming the whole stress tensor through memory twice. Radial
// stencils run over field.ColGhost slices with the index arithmetic
// hoisted out of the inner loop.
//
// Every inner loop is written in the bounds-check-elimination idiom:
// slices are cut to exact-length windows of the row range up front and
// indexed by a from-zero counter, so the compiler can prove both index
// bounds and elide the per-point checks (verified with
// -gcflags=-d=ssa/check_bce; see DESIGN.md).
//
// The reference kernels in flux.go are retained as the scalar baseline:
// the boundary treatment and the equivalence tests run them, and the
// fused-kernel equivalence tests pin the fast path to them bitwise.

// BlockRows is the radial tile height of the fused stress+flux sweeps.
// A tile of the six stress components is 6*BlockRows*8 bytes = 12 KiB,
// comfortably inside a 32 KiB L1D alongside the primitive columns being
// read, so the consuming flux loop never waits on L2.
const BlockRows = 256

// stressTile is one column tile of the stress tensor and heat fluxes.
// It lives on the caller's stack (12 KiB), so the stress values never
// round-trip through a full-grid array between being produced and being
// consumed by the flux loop of the same tile — and concurrent pfor
// workers each carry their own tile, keeping the kernels race-free.
type stressTile struct {
	txx, trr, tqq, txr, qx, qr [BlockRows]float64
}

// stressColRowsX computes the stress components the axial flux consumes
// (txx, txr, qx) for column i, rows [j0, j1), with per-point arithmetic
// exactly as ComputeStressRows evaluates those components; the unused
// radial components are simply not materialized. Requires
// j1 - j0 <= BlockRows.
func stressColRowsX(mu, kc, hx, hr float64, r []float64, w *State, st *stressTile, i, j0, j1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	n := j1 - j0
	uw, ue := w[IMx].Col(i-1)[j0:j0+n], w[IMx].Col(i+1)[j0:j0+n]
	vw, ve := w[IMr].Col(i-1)[j0:j0+n], w[IMr].Col(i+1)[j0:j0+n]
	tw, te := w[IE].Col(i-1)[j0:j0+n], w[IE].Col(i+1)[j0:j0+n]
	txx, txr, qx := st.txx[:n], st.txr[:n], st.qx[:n]
	rv := r[j0 : j0+n]
	// One equal-length window per radial stencil offset: index o of the
	// "D"/"C"/"U" windows addresses interior rows j0+o-1 / j0+o / j0+o+1.
	// Equal lengths are what lets the compiler elide the stencil reads'
	// bounds checks (offset indexing into one longer window defeats it).
	b := j0 + field.Halo
	ugD, ugU := w[IMx].ColGhost(i)[b-1:][:n:n], w[IMx].ColGhost(i)[b+1:][:n:n]
	vgD, vgU := w[IMr].ColGhost(i)[b-1:][:n:n], w[IMr].ColGhost(i)[b+1:][:n:n]
	vgC := w[IMr].ColGhost(i)[b:][:n:n]
	twoThird := 2.0 / 3.0
	for o := 0; o < n; o++ {
		ux := (ue[o] - uw[o]) * hx
		vx := (ve[o] - vw[o]) * hx
		tx := (te[o] - tw[o]) * hx
		ur := (ugU[o] - ugD[o]) * hr
		vr := (vgU[o] - vgD[o]) * hr
		vor := vgC[o] / rv[o]
		div := ux + vr + vor
		txx[o] = mu * (2*ux - twoThird*div)
		txr[o] = mu * (ur + vx)
		qx[o] = -kc * tx
	}
}

// stressColRowsR computes the stress components the radial flux and
// source consume (trr, tqq, txr, qr) for column i, rows [j0, j1), with
// per-point arithmetic exactly as ComputeStressRows evaluates them.
// Requires j1 - j0 <= BlockRows.
func stressColRowsR(mu, kc, hx, hr float64, r []float64, w *State, st *stressTile, i, j0, j1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	n := j1 - j0
	uw, ue := w[IMx].Col(i-1)[j0:j0+n], w[IMx].Col(i+1)[j0:j0+n]
	vw, ve := w[IMr].Col(i-1)[j0:j0+n], w[IMr].Col(i+1)[j0:j0+n]
	trr, tqq := st.trr[:n], st.tqq[:n]
	txr, qr := st.txr[:n], st.qr[:n]
	rv := r[j0 : j0+n]
	b := j0 + field.Halo
	ugD, ugU := w[IMx].ColGhost(i)[b-1:][:n:n], w[IMx].ColGhost(i)[b+1:][:n:n]
	vgD, vgU := w[IMr].ColGhost(i)[b-1:][:n:n], w[IMr].ColGhost(i)[b+1:][:n:n]
	tgD, tgU := w[IE].ColGhost(i)[b-1:][:n:n], w[IE].ColGhost(i)[b+1:][:n:n]
	vgC := w[IMr].ColGhost(i)[b:][:n:n]
	twoThird := 2.0 / 3.0
	for o := 0; o < n; o++ {
		ux := (ue[o] - uw[o]) * hx
		vx := (ve[o] - vw[o]) * hx
		ur := (ugU[o] - ugD[o]) * hr
		vr := (vgU[o] - vgD[o]) * hr
		tr := (tgU[o] - tgD[o]) * hr
		vor := vgC[o] / rv[o]
		div := ux + vr + vor
		trr[o] = mu * (2*vr - twoThird*div)
		tqq[o] = mu * (2*vor - twoThird*div)
		txr[o] = mu * (ur + vx)
		qr[o] = -kc * tr
	}
}

// StressFluxX fuses ComputeStressRows and FluxXRows over columns
// [c0, c1), rows [j0, j1): for each column, the stress tile of
// BlockRows rows is computed into stack scratch and immediately
// consumed by the axial flux loop, so the stress tensor never exists as
// a full-grid array. The flux output is bitwise-identical to calling
// the two reference kernels in sequence. Requires primitives valid on
// rows [j0-1, j1+1) of columns [c0-1, c1+1) when viscous.
func StressFluxX(gm gas.Model, dx, dr float64, r []float64, q, w *State, f *State, c0, c1, j0, j1 int, viscous bool) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	stress := viscous && gm.Mu != 0
	mu, kc := gm.Mu, gm.HeatConductivity()
	hx, hr := 0.5/dx, 0.5/dr
	gamma := gm.Gamma
	var st stressTile
	for i := c0; i < c1; i++ {
		for t0 := j0; t0 < j1; t0 += BlockRows {
			t1 := min(t0+BlockRows, j1)
			if stress {
				stressColRowsX(mu, kc, hx, hr, r, w, &st, i, t0, t1)
			}
			m := t1 - t0
			rho, u := w[IRho].Col(i)[t0:t0+m], w[IMx].Col(i)[t0:t0+m]
			v, t := w[IMr].Col(i)[t0:t0+m], w[IE].Col(i)[t0:t0+m]
			e := q[IE].Col(i)[t0 : t0+m]
			f0, f1 := f[IRho].Col(i)[t0:t0+m], f[IMx].Col(i)[t0:t0+m]
			f2, f3 := f[IMr].Col(i)[t0:t0+m], f[IE].Col(i)[t0:t0+m]
			if viscous {
				txx, txr := st.txx[:m], st.txr[:m]
				qx := st.qx[:m]
				for o := 0; o < m; o++ {
					p := rho[o] * t[o] / gamma
					mm := rho[o] * u[o]
					f0[o] = mm
					f1[o] = mm*u[o] + p - txx[o]
					f2[o] = mm*v[o] - txr[o]
					f3[o] = u[o]*(e[o]+p) - u[o]*txx[o] - v[o]*txr[o] + qx[o]
				}
			} else {
				for o := 0; o < m; o++ {
					p := rho[o] * t[o] / gamma
					mm := rho[o] * u[o]
					f0[o] = mm
					f1[o] = mm*u[o] + p
					f2[o] = mm * v[o]
					f3[o] = u[o] * (e[o] + p)
				}
			}
		}
	}
}

// StressFluxRSource fuses ComputeStressRows, FluxRRows and SourceRows
// over columns [c0, c1), rows [j0, j1), tile by tile per column, with
// the stress tile in stack scratch. The flux and source outputs are
// bitwise-identical to the three reference kernels in sequence.
func StressFluxRSource(gm gas.Model, dx, dr float64, r []float64, q, w *State, f *State, src *field.Field, c0, c1, j0, j1 int, viscous bool) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	stress := viscous && gm.Mu != 0
	mu, kc := gm.Mu, gm.HeatConductivity()
	hx, hr := 0.5/dx, 0.5/dr
	gamma := gm.Gamma
	var st stressTile
	for i := c0; i < c1; i++ {
		for t0 := j0; t0 < j1; t0 += BlockRows {
			t1 := min(t0+BlockRows, j1)
			if stress {
				stressColRowsR(mu, kc, hx, hr, r, w, &st, i, t0, t1)
			}
			m := t1 - t0
			rho, u := w[IRho].Col(i)[t0:t0+m], w[IMx].Col(i)[t0:t0+m]
			v, t := w[IMr].Col(i)[t0:t0+m], w[IE].Col(i)[t0:t0+m]
			e := q[IE].Col(i)[t0 : t0+m]
			f0, f1 := f[IRho].Col(i)[t0:t0+m], f[IMx].Col(i)[t0:t0+m]
			f2, f3 := f[IMr].Col(i)[t0:t0+m], f[IE].Col(i)[t0:t0+m]
			rv := r[t0 : t0+m]
			out := src.Col(i)[t0 : t0+m]
			// The source term reuses the flux loop's pressure: p is the
			// same deterministic expression SourceRows evaluates, so one
			// computation feeding both outputs is bitwise-identical to
			// the reference pair of loops.
			if viscous {
				txr, trr := st.txr[:m], st.trr[:m]
				qr, tqq := st.qr[:m], st.tqq[:m]
				for o := 0; o < m; o++ {
					p := rho[o] * t[o] / gamma
					mm := rho[o] * v[o]
					rj := rv[o]
					f0[o] = rj * mm
					f1[o] = rj * (mm*u[o] - txr[o])
					f2[o] = rj * (mm*v[o] + p - trr[o])
					f3[o] = rj * (v[o]*(e[o]+p) - u[o]*txr[o] - v[o]*trr[o] + qr[o])
					out[o] = (p - tqq[o]) / rj
				}
			} else {
				for o := 0; o < m; o++ {
					p := rho[o] * t[o] / gamma
					mm := rho[o] * v[o]
					rj := rv[o]
					f0[o] = rj * mm
					f1[o] = rj * (mm * u[o])
					f2[o] = rj * (mm*v[o] + p)
					f3[o] = rj * (v[o] * (e[o] + p))
					out[o] = p / rj
				}
			}
		}
	}
}
