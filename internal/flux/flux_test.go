package flux

import (
	"math"
	"testing"

	"repro/internal/gas"
)

// uniformState builds a state with constant primitives.
func uniformState(nx, nr int, gm gas.Model, w gas.Primitive) (*State, *State) {
	q := NewState(nx, nr)
	wb := NewState(nx, nr)
	c := gm.ToConserved(w)
	for i := -2; i < nx+2; i++ {
		for j := -2; j < nr+2; j++ {
			q[IRho].Set(i, j, c.Rho)
			q[IMx].Set(i, j, c.Mx)
			q[IMr].Set(i, j, c.Mr)
			q[IE].Set(i, j, c.E)
		}
	}
	return q, wb
}

func TestPrimitivesRecovery(t *testing.T) {
	gm := gas.Air(1e-6)
	w := gas.Primitive{Rho: 0.5, U: 2.12, V: 0.1, P: 1 / 1.4}
	q, wb := uniformState(6, 4, gm, w)
	Primitives(gm, q, wb, 0, 6)
	if got := wb[IRho].At(3, 2); math.Abs(got-0.5) > 1e-14 {
		t.Errorf("rho = %g", got)
	}
	if got := wb[IMx].At(3, 2); math.Abs(got-2.12) > 1e-14 {
		t.Errorf("u = %g", got)
	}
	wantT := gm.Temperature(w.Rho, w.P)
	if got := wb[IE].At(3, 2); math.Abs(got-wantT) > 1e-12 {
		t.Errorf("T = %g, want %g", got, wantT)
	}
}

func TestStressVanishesForUniformFlow(t *testing.T) {
	gm := gas.Air(1e-3)
	// Uniform axial flow has no strain except the v/r cylindrical terms,
	// which vanish with v = 0.
	w := gas.Primitive{Rho: 1, U: 1.5, V: 0, P: 1 / 1.4}
	q, wb := uniformState(8, 6, gm, w)
	Primitives(gm, q, wb, -2, 10)
	AxisMirrorPrims(wb)
	TopExtrapolatePrims(wb)
	s := NewStress(8, 6)
	r := []float64{0.25, 0.75, 1.25, 1.75, 2.25, 2.75}
	ComputeStress(gm, 0.5, 0.5, r, wb, s, 0, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			for _, f := range []float64{s.Txx.At(i, j), s.Trr.At(i, j), s.Tqq.At(i, j), s.Txr.At(i, j), s.Qx.At(i, j), s.Qr.At(i, j)} {
				if math.Abs(f) > 1e-13 {
					t.Fatalf("nonzero stress %g at (%d,%d)", f, i, j)
				}
			}
		}
	}
}

func TestStressLinearShear(t *testing.T) {
	gm := gas.Air(2e-3)
	nx, nr := 6, 8
	q := NewState(nx, nr)
	w := NewState(nx, nr)
	dr := 0.5
	r := make([]float64, nr)
	// u = a*r pure shear: txr = mu * du/dr = mu*a; other stresses from
	// the cylindrical divergence only (v=0 -> div = 0).
	a := 3.0
	for i := -2; i < nx+2; i++ {
		for j := -2; j < nr+2; j++ {
			rr := (float64(j) + 0.5) * dr
			w[IRho].Set(i, j, 1)
			w[IMx].Set(i, j, a*rr)
			w[IMr].Set(i, j, 0)
			w[IE].Set(i, j, 1)
			q[IRho].Set(i, j, 1)
		}
	}
	for j := 0; j < nr; j++ {
		r[j] = (float64(j) + 0.5) * dr
	}
	s := NewStress(nx, nr)
	ComputeStress(gm, 0.5, dr, r, w, s, 0, nx)
	want := gm.Mu * a
	for j := 1; j < nr-1; j++ {
		if got := s.Txr.At(3, j); math.Abs(got-want) > 1e-12 {
			t.Fatalf("txr = %g, want %g at j=%d", got, want, j)
		}
		if got := s.Txx.At(3, j); math.Abs(got) > 1e-12 {
			t.Fatalf("txx = %g, want 0", got)
		}
	}
}

func TestFluxXUniformFlowInviscid(t *testing.T) {
	gm := gas.Air(0)
	w := gas.Primitive{Rho: 0.5, U: 2, V: 0.25, P: 0.6}
	q, wb := uniformState(5, 4, gm, w)
	Primitives(gm, q, wb, 0, 5)
	f := NewState(5, 4)
	FluxX(gm, q, wb, nil, f, 0, 5, false)
	c := gm.ToConserved(w)
	if got, want := f[IRho].At(2, 2), w.Rho*w.U; math.Abs(got-want) > 1e-13 {
		t.Errorf("mass flux %g, want %g", got, want)
	}
	if got, want := f[IMx].At(2, 2), w.Rho*w.U*w.U+w.P; math.Abs(got-want) > 1e-13 {
		t.Errorf("momentum flux %g, want %g", got, want)
	}
	if got, want := f[IE].At(2, 2), w.U*(c.E+w.P); math.Abs(got-want) > 1e-12 {
		t.Errorf("energy flux %g, want %g", got, want)
	}
}

func TestFluxRCarriesMetricFactor(t *testing.T) {
	gm := gas.Air(0)
	w := gas.Primitive{Rho: 1, U: 0, V: 1, P: 1 / 1.4}
	q, wb := uniformState(4, 4, gm, w)
	Primitives(gm, q, wb, 0, 4)
	f := NewState(4, 4)
	r := []float64{0.5, 1.5, 2.5, 3.5}
	FluxR(gm, r, q, wb, nil, f, 0, 4, false)
	for j := 0; j < 4; j++ {
		want := r[j] * w.Rho * w.V
		if got := f[IRho].At(1, j); math.Abs(got-want) > 1e-13 {
			t.Fatalf("rg mass at j=%d: %g, want %g", j, got, want)
		}
	}
}

func TestMirrorFluxRParity(t *testing.T) {
	f := NewState(4, 4)
	for k := 0; k < NVar; k++ {
		for i := -2; i < 6; i++ {
			for j := 0; j < 4; j++ {
				f[k].Set(i, j, float64(k+1)*(float64(j)+1))
			}
		}
	}
	MirrorFluxR(f)
	// Components (rho v, rho u v, rho v^2 + p, energy): parities
	// (+, +, -, +) after multiplication by r.
	signs := []float64{1, 1, -1, 1}
	for k := 0; k < NVar; k++ {
		if got, want := f[k].At(1, -1), signs[k]*f[k].At(1, 0); got != want {
			t.Fatalf("component %d ghost = %g, want %g", k, got, want)
		}
	}
}

func TestSourceTerm(t *testing.T) {
	gm := gas.Air(0)
	w := gas.Primitive{Rho: 1, U: 0, V: 0, P: 1 / 1.4}
	q, wb := uniformState(4, 3, gm, w)
	Primitives(gm, q, wb, 0, 4)
	src := NewState(4, 3)[0]
	r := []float64{0.5, 1.5, 2.5}
	Source(gm, r, wb, nil, src, 0, 4, false)
	for j, rr := range r {
		want := w.P / rr
		if got := src.At(2, j); math.Abs(got-want) > 1e-13 {
			t.Fatalf("source at j=%d: %g, want %g", j, got, want)
		}
	}
}

func TestEulerViscousConsistency(t *testing.T) {
	// With mu = 0 the viscous flux path must equal the inviscid one.
	gm := gas.Air(0)
	w := gas.Primitive{Rho: 0.7, U: 1.2, V: 0.4, P: 0.9}
	q, wb := uniformState(6, 5, gm, w)
	Primitives(gm, q, wb, -2, 8)
	s := NewStress(6, 5)
	r := []float64{0.5, 1.5, 2.5, 3.5, 4.5}
	ComputeStress(gm, 1, 1, r, wb, s, 0, 6) // no-op for mu=0
	fv := NewState(6, 5)
	fi := NewState(6, 5)
	FluxX(gm, q, wb, s, fv, 0, 6, true)
	FluxX(gm, q, wb, s, fi, 0, 6, false)
	for k := 0; k < NVar; k++ {
		if !fv[k].Equal(fi[k]) {
			t.Fatalf("component %d: viscous path differs from inviscid with mu=0", k)
		}
	}
}
