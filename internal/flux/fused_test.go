package flux

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/gas"
)

// randState fills every point of a bundle, ghosts included, with values
// bounded away from zero so divisions stay finite.
func randState(rng *rand.Rand, s *State) {
	for k := range s {
		f := s[k]
		for i := -field.Halo; i < f.Nx+field.Halo; i++ {
			col := f.ColGhost(i)
			for j := range col {
				col[j] = 0.5 + rng.Float64()
			}
		}
	}
}

func randRect(rng *rand.Rand) (nx, nr, c0, c1, j0, j1 int) {
	nx = 4 + rng.Intn(17)
	nr = 4 + rng.Intn(17)
	if rng.Intn(5) == 0 {
		nr += BlockRows + rng.Intn(2*BlockRows) // exercise the j-tiling
	}
	c0 = 1 + rng.Intn(nx-2) // stress reads columns c0-1 .. c1
	c1 = c0 + 1 + rng.Intn(nx-c0-1)
	switch rng.Intn(3) {
	case 0: // boundary-adjacent: full height including both edges
		j0, j1 = 0, nr
	case 1: // axis-adjacent rows only
		j0, j1 = 0, 1+rng.Intn(nr)
	default:
		j0 = rng.Intn(nr)
		j1 = j0 + 1 + rng.Intn(nr-j0)
	}
	return
}

// TestFusedStressFluxEquivalence pins the fused cache-blocked kernels
// to the reference scalar kernels bitwise on random sub-rectangles,
// including boundary-adjacent rows and Euler/Navier-Stokes models.
func TestFusedStressFluxEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nx, nr, c0, c1, j0, j1 := randRect(rng)
		gm := gas.Air(0.001)
		viscous := true
		if seed%3 == 2 {
			gm = gas.Air(0)
			viscous = false
		}
		dx, dr := 0.1+rng.Float64(), 0.1+rng.Float64()
		r := make([]float64, nr)
		for j := range r {
			r[j] = (float64(j) + 0.5) * dr
		}
		q, w := NewState(nx, nr), NewState(nx, nr)
		randState(rng, q)
		randState(rng, w)

		sRef := NewStress(nx, nr)
		fRef, fFast := NewState(nx, nr), NewState(nx, nr)
		srcRef, srcFast := field.New(nx, nr), field.New(nx, nr)

		// Axial: reference pair vs fused kernel. The fused path keeps its
		// stress tile in stack scratch, so the pin is on the flux output.
		ComputeStressRows(gm, dx, dr, r, w, sRef, c0, c1, j0, j1)
		FluxXRows(gm, q, w, sRef, fRef, c0, c1, j0, j1, viscous)
		StressFluxX(gm, dx, dr, r, q, w, fFast, c0, c1, j0, j1, viscous)
		for k := range fRef {
			if !fRef[k].Equal(fFast[k]) {
				t.Fatalf("seed %d: StressFluxX component %d differs on [%d,%d)x[%d,%d) of %dx%d",
					seed, k, c0, c1, j0, j1, nx, nr)
			}
		}

		// Radial: reference triple vs fused kernel.
		ComputeStressRows(gm, dx, dr, r, w, sRef, c0, c1, j0, j1)
		FluxRRows(gm, r, q, w, sRef, fRef, c0, c1, j0, j1, viscous)
		SourceRows(gm, r, w, sRef, srcRef, c0, c1, j0, j1, viscous)
		StressFluxRSource(gm, dx, dr, r, q, w, fFast, srcFast, c0, c1, j0, j1, viscous)
		for k := range fRef {
			if !fRef[k].Equal(fFast[k]) {
				t.Fatalf("seed %d: StressFluxRSource component %d differs", seed, k)
			}
		}
		if !srcRef.Equal(srcFast) {
			t.Fatalf("seed %d: fused source differs", seed)
		}
	}
}
