// Solid-wall ghost treatments for the scenario registry's wall-bounded
// flows (lid-driven cavity, channel). Walls are imposed through mirror
// ghosts, the same mechanism the jet uses for axis symmetry, so the
// interior kernels — including the fused cache-blocked sweeps — run
// unchanged on every scenario.
//
// Geometry conventions follow the grid layout: radial walls are
// staggered (the wall plane lies half a cell beyond the outermost row,
// so ghosts mirror rows 0/1 or Nr-1/Nr-2 about the plane), while axial
// walls sit on node columns 0 and Nx-1 (ghosts mirror about the wall
// node itself, and the solver pins the no-slip state on the wall column
// after each operator stage).
//
// Parities about a stationary no-slip plane: density and temperature
// are even, both velocity components odd. That makes the primitive
// bundle map (+, -, -, +), the axial flux F = (rho*u, rho*u^2+p-txx,
// rho*u*v-txr, u*(E+p)-...) map (-, +, +, -), and the radial flux rows
// map (-, +, +, -) as well. A tangentially moving lid (speed ulid) is
// the same reflection in the wall frame: u' = u - ulid is odd, which
// turns the u and flux maps affine (derived below). The radial-flux
// mirror reuses the mirror row's metric factor r, an O(Dr/r_wall)
// approximation that is negligible for the offset-grid cavity
// (r_wall ~ 1e4) and first-order at the channel's outer wall.
package flux

import "repro/internal/field"

// WallMirrorColsLeft fills ghost columns i=-1,-2 for a stationary
// no-slip wall on the node column i=0. isFlux selects the axial-flux
// parity map; otherwise the primitive-bundle map is applied.
func WallMirrorColsLeft(b *State, isFlux bool) {
	if isFlux {
		b[IRho].MirrorLeft(-1)
		b[IMx].MirrorLeft(1)
		b[IMr].MirrorLeft(1)
		b[IE].MirrorLeft(-1)
		return
	}
	b[IRho].MirrorLeft(1)
	b[IMx].MirrorLeft(-1)
	b[IMr].MirrorLeft(-1)
	b[IE].MirrorLeft(1)
}

// WallMirrorColsRight fills ghost columns i=Nx, Nx+1 for a stationary
// no-slip wall on the node column i=Nx-1.
func WallMirrorColsRight(b *State, isFlux bool) {
	if isFlux {
		b[IRho].MirrorRight(-1)
		b[IMx].MirrorRight(1)
		b[IMr].MirrorRight(1)
		b[IE].MirrorRight(-1)
		return
	}
	b[IRho].MirrorRight(1)
	b[IMx].MirrorRight(-1)
	b[IMr].MirrorRight(-1)
	b[IE].MirrorRight(1)
}

// WallMirrorRowsBottom fills the ghost rows below j=0 for a stationary
// no-slip wall on the staggered plane half a cell below row 0.
func WallMirrorRowsBottom(b *State, isFlux bool) {
	if isFlux {
		b[IRho].MirrorAxis(-1)
		b[IMx].MirrorAxis(1)
		b[IMr].MirrorAxis(1)
		b[IE].MirrorAxis(-1)
		return
	}
	b[IRho].MirrorAxis(1)
	b[IMx].MirrorAxis(-1)
	b[IMr].MirrorAxis(-1)
	b[IE].MirrorAxis(1)
}

// WallMirrorRowsTop fills the ghost rows above j=Nr-1 for a no-slip
// wall on the staggered plane half a cell above the last row, moving
// tangentially (in +x) at speed ulid (0 for a stationary wall).
//
// In the wall frame u' = u - ulid is odd, v odd, rho and T even. For
// the primitive bundle that gives u_ghost = 2*ulid - u_mirror; for the
// radial flux rows g = (rho*v, rho*u*v-txr, rho*v^2+p-trr, v*(E+p)-...)
// substituting u = u' + ulid and reflecting yields the affine map
//
//	g0' = -g0
//	g1' =  g1 - 2*ulid*g0
//	g2' =  g2
//	g3' = -g3 + 2*ulid*g1 - 2*ulid^2*g0
//
// which reduces to the stationary (-, +, +, -) parity map at ulid = 0.
// The viscous contributions are folded through the same map, the
// standard mirror approximation for the mixed-parity shear terms.
func WallMirrorRowsTop(b *State, ulid float64, isFlux bool) {
	nx, nr := b[IRho].Nx, b[IRho].Nr
	if isFlux {
		g0f, g1f, g2f, g3f := b[IRho], b[IMx], b[IMr], b[IE]
		g2f.MirrorTop(1)
		for i := -field.Halo; i < nx+field.Halo; i++ {
			for m := 0; m < field.Halo; m++ {
				g0 := g0f.At(i, nr-1-m)
				g1 := g1f.At(i, nr-1-m)
				g3 := g3f.At(i, nr-1-m)
				g0f.Set(i, nr+m, -g0)
				g1f.Set(i, nr+m, g1-2*ulid*g0)
				g3f.Set(i, nr+m, -g3+2*ulid*g1-2*ulid*ulid*g0)
			}
		}
		return
	}
	b[IRho].MirrorTop(1)
	b[IMr].MirrorTop(-1)
	b[IE].MirrorTop(1)
	u := b[IMx]
	for i := -field.Halo; i < nx+field.Halo; i++ {
		for m := 0; m < field.Halo; m++ {
			u.Set(i, nr+m, 2*ulid-u.At(i, nr-1-m))
		}
	}
}
