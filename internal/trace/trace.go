// Package trace accumulates the workload characterization the paper
// reports in Tables 1 and 2: floating-point operations, communication
// startups, and communication volume, per rank and in aggregate.
package trace

import "fmt"

// Counters accumulates per-rank workload. A Counters value belongs to a
// single goroutine; aggregate with Merge.
type Counters struct {
	Flops    float64 // floating-point operations (analytic kernel counts)
	Startups int64   // message-passing send/receive initiations
	Bytes    int64   // payload bytes communicated
	// RedundantFlops is the share of Flops spent advancing redundant
	// ghost-shell points under a Wide(k) halo policy — work a Fresh run
	// would not do, traded for the startups below. Included in Flops.
	RedundantFlops float64
	// SavedStartups counts the message initiations a per-stage Fresh
	// exchange would have issued on steps a Wide(k) policy skipped — the
	// startup budget the redundant compute buys back.
	SavedStartups int64
}

// AddFlops accumulates floating-point operations.
func (c *Counters) AddFlops(n float64) { c.Flops += n }

// AddMessage accounts one message initiation of n payload bytes.
func (c *Counters) AddMessage(n int) {
	c.Startups++
	c.Bytes += int64(n)
}

// Merge adds other into c.
func (c *Counters) Merge(other Counters) {
	c.Flops += other.Flops
	c.Startups += other.Startups
	c.Bytes += other.Bytes
	c.RedundantFlops += other.RedundantFlops
	c.SavedStartups += other.SavedStartups
}

func (c Counters) String() string {
	return fmt.Sprintf("%.3g flops, %d startups, %.3g MB", c.Flops, c.Startups, float64(c.Bytes)/1e6)
}

// DirCounters splits a rank's message accounting by exchange class,
// extending the paper's Table 1 budget (which is purely axial — the
// decomposition of Section 5 has no radial neighbours) to the 2-D rank
// grid, whose blocks also trade ghost rows with down/up neighbours,
// and to the global-reduction collectives of the convergence
// controller, whose recursive-doubling messages follow the rank
// topology rather than the grid.
type DirCounters struct {
	Axial  Counters // ghost-column exchanges with left/right neighbours
	Radial Counters // ghost-row exchanges with down/up neighbours
	Reduce Counters // allreduce collectives (residual sum, global-dt max)
}

// Merge adds other into d.
func (d *DirCounters) Merge(other DirCounters) {
	d.Axial.Merge(other.Axial)
	d.Radial.Merge(other.Radial)
	d.Reduce.Merge(other.Reduce)
}

// Total returns the class-summed counters.
func (d DirCounters) Total() Counters {
	var t Counters
	t.Merge(d.Axial)
	t.Merge(d.Radial)
	t.Merge(d.Reduce)
	return t
}

func (d DirCounters) String() string {
	return fmt.Sprintf("axial[%v] radial[%v] reduce[%v]", d.Axial, d.Radial, d.Reduce)
}

// WideSpeed returns the conservative per-composite-step corruption
// speed of a stale ghost shell, in grid points per interior side: the
// distance bad boundary data can creep inward during one 2-4 MacCormack
// composite step (both directional operators, predictor + corrector,
// including the viscous stress reach). A Wide(k) policy must carry a
// redundant shell of WideSpeed*(k-1) points so the core stays exact
// across k-1 exchange-free steps. Overestimating the speed costs only
// redundant flops; underestimating it would break bitwise parity, so
// the viscous figure rounds the ~8-point analytic reach up to 12.
func WideSpeed(viscous bool) int {
	if viscous {
		return 12
	}
	return 4
}

// WideExtension returns the redundant-shell width (grid points per
// interior side) a Wide(depth) halo policy needs: WideSpeed*(depth-1).
// Depth <= 1 (Fresh, Lagged) carries no redundant shell.
func WideExtension(viscous bool, depth int) int {
	if depth <= 1 {
		return 0
	}
	return WideSpeed(viscous) * (depth - 1)
}

// PaperFlopsPerPoint returns the paper's Table 1 workload density in
// floating-point operations per grid point per time step: 145,000e6
// total for Navier-Stokes and 77,000e6 for Euler on a 250x100 grid over
// 5000 steps. Our analytic kernel counts are lower (we count arithmetic
// only; the 1995 Fortran measurement includes address and loop
// overhead); the platform simulator uses the paper characterization so
// simulated seconds are comparable with the paper's figures, and
// EXPERIMENTS.md reports both.
func PaperFlopsPerPoint(viscous bool) float64 {
	const points = 250 * 100
	const steps = 5000
	if viscous {
		return 145000e6 / (points * steps) // = 1160
	}
	return 77000e6 / (points * steps) // = 616
}

// Characterization is the application profile consumed by the platform
// simulator: everything Table 1 reports, parameterized.
type Characterization struct {
	Name          string
	Viscous       bool
	Nx, Nr        int
	Steps         int
	FlopsPerPoint float64 // per time step
	// Per internal-rank, per time step, per neighbour direction:
	ExchangesPerStep int // grouped sends to one neighbour (4 N-S, 3 Euler)
	ColVarsPerStep   int // column-variables sent to one neighbour (16 N-S, 12 Euler)
	// ColCost is an optional per-column relative cost profile (len Nx,
	// mean ~1); nil means uniform. The co-simulator scales each rank's
	// flops by its owned share of the profile, and
	// decomp.WeightedAxial consumes the same profile to balance it —
	// the Figure 13 busy-time skew and its cure, driven by one vector.
	ColCost []float64
	// ReduceEvery, when positive, adds the convergence controller's
	// global-reduction collectives every ReduceEvery steps: the
	// co-simulator appends ReducesPerMonitor recursive-doubling
	// allreduces (msg.ReducePlan topology, ReduceBytes payload each) to
	// the monitored steps, so the co-simulated platforms pay the
	// collective-latency term of a residual-controlled run. Zero means
	// a fixed-step run with no collectives.
	ReduceEvery int
	// HaloDepth, when > 1, prices a Wide(k) communication-avoiding
	// exchange: ranks run the per-stage exchange program only every
	// HaloDepth steps (preceded by a redundant-shell refresh of
	// WideExtension columns per interior side) and compute-only steps in
	// between, with per-rank flops inflated by the redundant shell.
	// 0 or 1 means the per-stage Fresh cadence.
	HaloDepth int
	// ReduceGroup, when > 1, prices the hierarchical allreduce: ranks
	// are grouped into contiguous shared-memory nodes of ReduceGroup;
	// only node leaders run the (shorter) cross-node recursive-doubling
	// plan, and the intra-node combine is memory-speed (free at this
	// model's resolution). 0 or 1 means the flat plan.
	ReduceGroup int
	// TimeSlices, when > 1, prices a Parareal parallel-in-time run: the
	// processor pool splits into TimeSlices groups, each propagating one
	// slice of [0, Steps] with the fine (spatial) solver, stitched by a
	// serial coarse sweep and slice-boundary state handoffs per
	// correction iteration. 0 or 1 means the pure spatial run.
	TimeSlices int
	// PararealIters is the correction-iteration count a TimeSlices > 1
	// run pays for; 0 means TimeSlices iterations (the exact, worst-case
	// schedule).
	PararealIters int
	// CoarseFactor is the space-and-time coarsening of the Parareal
	// coarse propagator (0 means the backend default of 2; 1 means the
	// coarse sweep runs the fine operator itself).
	CoarseFactor int
}

// ReducesPerMonitor is the number of allreduce collectives one
// monitored step issues: the residual sum and the global-dt max.
const ReducesPerMonitor = 2

// ReduceBytes is the payload of one allreduce message: a single
// float64 scalar.
const ReduceBytes = 8

// BlockCost returns the summed relative cost of columns [i0, i0+n).
// With a nil profile every column costs 1, so it degenerates to n and
// FlopsPerPoint keeps its uniform per-point meaning.
func (ch Characterization) BlockCost(i0, n int) float64 {
	if ch.ColCost == nil {
		return float64(n)
	}
	c := 0.0
	for _, w := range ch.ColCost[i0 : i0+n] {
		c += w
	}
	return c
}

// RampCost returns a linearly increasing per-column profile from 1 to
// ratio, normalized to mean 1 so the characterization's total flops
// are unchanged — a synthetic Figure 13 stressor.
func RampCost(nx int, ratio float64) []float64 {
	w := make([]float64, nx)
	sum := 0.0
	for i := range w {
		w[i] = 1 + (ratio-1)*float64(i)/float64(nx-1)
		sum += w[i]
	}
	mean := sum / float64(nx)
	for i := range w {
		w[i] /= mean
	}
	return w
}

// PaperNS returns the Navier-Stokes characterization of Table 1.
func PaperNS() Characterization {
	return Characterization{
		Name: "Navier-Stokes", Viscous: true,
		Nx: 250, Nr: 100, Steps: 5000,
		FlopsPerPoint:    PaperFlopsPerPoint(true),
		ExchangesPerStep: 4,  // prims, flux, pred-prims, pred-flux
		ColVarsPerStep:   16, // 4 exchanges x 4 vars x ... columns applied separately
	}
}

// PaperEuler returns the Euler characterization of Table 1.
func PaperEuler() Characterization {
	return Characterization{
		Name: "Euler", Viscous: false,
		Nx: 250, Nr: 100, Steps: 5000,
		FlopsPerPoint:    PaperFlopsPerPoint(false),
		ExchangesPerStep: 3,
		ColVarsPerStep:   12,
	}
}

// TotalFlops returns the whole-run floating-point operation count.
func (ch Characterization) TotalFlops() float64 {
	return ch.FlopsPerPoint * float64(ch.Nx*ch.Nr*ch.Steps)
}

// MessageBytes returns the payload of one grouped exchange to one
// neighbour: vars x 2 halo columns x Nr points x 8 bytes.
func (ch Characterization) MessageBytes() int {
	varsPerExchange := ch.ColVarsPerStep / ch.ExchangesPerStep // 4
	return varsPerExchange * 2 * ch.Nr * 8
}

// RankStartups returns the per-rank startup count over the full run for
// an internal rank (two neighbours), counting sends and receives as the
// paper does.
func (ch Characterization) RankStartups() int64 {
	return int64(ch.ExchangesPerStep) * 2 * 2 * int64(ch.Steps)
}

// RankBytes returns the per-rank communicated payload over the full run
// for an internal rank (send direction only, as Table 1 volume).
func (ch Characterization) RankBytes() int64 {
	return int64(ch.ColVarsPerStep) * 2 * int64(ch.Nr) * 8 * int64(ch.Steps)
}

// PararealHandoffBytes returns the payload of one Parareal
// slice-boundary state handoff: the full-grid conservative state, 4
// variables x Nx x Nr points x 8 bytes.
func (ch Characterization) PararealHandoffBytes() int {
	return 4 * ch.Nx * ch.Nr * 8
}

// RefreshBytes returns the payload of one redundant-shell refresh to
// one neighbour under a Wide policy carrying ext extra columns per
// interior side: vars x ext columns x Nr points x 8 bytes.
func (ch Characterization) RefreshBytes(ext int) int {
	varsPerExchange := ch.ColVarsPerStep / ch.ExchangesPerStep // 4
	return varsPerExchange * ext * ch.Nr * 8
}

// RankStartupsAt returns the per-rank startup count over the full run
// for an internal rank (two neighbours) under a Wide(depth) policy:
// per-stage exchanges (and one shell refresh per exchange step) happen
// only on every depth-th step. depth <= 1 reproduces RankStartups.
func (ch Characterization) RankStartupsAt(depth int) int64 {
	if depth <= 1 {
		return ch.RankStartups()
	}
	exchangeSteps := int64((ch.Steps + depth - 1) / depth)
	perStep := int64(ch.ExchangesPerStep)*2*2 + 2*2 // stage exchanges + refresh
	return perStep * exchangeSteps
}
