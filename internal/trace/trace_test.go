package trace

import (
	"math"
	"testing"
)

func TestCountersAccumulateAndMerge(t *testing.T) {
	var a, b Counters
	a.AddFlops(100)
	a.AddMessage(64)
	b.AddFlops(50)
	b.AddMessage(32)
	b.AddMessage(32)
	a.Merge(b)
	if a.Flops != 150 || a.Startups != 3 || a.Bytes != 128 {
		t.Fatalf("merged: %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestPaperFlopsPerPoint(t *testing.T) {
	// 145,000e6 / (250*100*5000) = 1160; 77,000e6 / same = 616.
	if f := PaperFlopsPerPoint(true); f != 1160 {
		t.Errorf("N-S flops/point = %g", f)
	}
	if f := PaperFlopsPerPoint(false); f != 616 {
		t.Errorf("Euler flops/point = %g", f)
	}
}

func TestCharacterizationMatchesTable1(t *testing.T) {
	ns := PaperNS()
	if w := ns.TotalFlops(); w != 145000e6 {
		t.Errorf("N-S total flops = %g", w)
	}
	// 16 startups/step: 4 exchanges x 2 neighbours x (send+recv).
	if s := ns.RankStartups(); s != 80000 {
		t.Errorf("N-S startups = %d", s)
	}
	// One-neighbour volume: 16 col-vars x 2 cols x 100 x 8 x 5000 = 128 MB,
	// the paper's "125 MB" per-processor figure.
	if b := float64(ns.RankBytes()) / 1e6; math.Abs(b-128) > 0.5 {
		t.Errorf("N-S volume = %g MB", b)
	}
	// Message payload: 4 vars x 2 cols x 100 x 8 = 6.4 KB.
	if m := ns.MessageBytes(); m != 6400 {
		t.Errorf("N-S message bytes = %d", m)
	}

	eu := PaperEuler()
	if w := eu.TotalFlops(); w != 77000e6 {
		t.Errorf("Euler total flops = %g", w)
	}
	if s := eu.RankStartups(); s != 60000 {
		t.Errorf("Euler startups = %d", s)
	}
	if b := float64(eu.RankBytes()) / 1e6; math.Abs(b-96) > 0.5 {
		t.Errorf("Euler volume = %g MB", b)
	}
}

func TestDirCounters(t *testing.T) {
	var d DirCounters
	d.Axial.AddMessage(100)
	d.Axial.AddMessage(100)
	d.Radial.AddMessage(60)
	var e DirCounters
	e.Radial.AddMessage(40)
	e.Radial.Startups++ // a receive initiation: startup, no bytes
	d.Merge(e)
	if d.Axial.Startups != 2 || d.Axial.Bytes != 200 {
		t.Fatalf("axial %+v", d.Axial)
	}
	if d.Radial.Startups != 3 || d.Radial.Bytes != 100 {
		t.Fatalf("radial %+v", d.Radial)
	}
	tot := d.Total()
	if tot.Startups != 5 || tot.Bytes != 300 {
		t.Fatalf("total %+v", tot)
	}
}

// TestDirCountersReduce: the collective class must merge and total
// alongside the grid directions — Total() is what reconciles against
// the message layer's aggregate counters, reduce traffic included.
func TestDirCountersReduce(t *testing.T) {
	var d DirCounters
	d.Axial.AddMessage(100)
	d.Reduce.AddMessage(8)
	d.Reduce.Startups++ // the matching receive
	var e DirCounters
	e.Reduce.AddMessage(8)
	d.Merge(e)
	if d.Reduce.Startups != 3 || d.Reduce.Bytes != 16 {
		t.Fatalf("reduce %+v", d.Reduce)
	}
	tot := d.Total()
	if tot.Startups != 4 || tot.Bytes != 116 {
		t.Fatalf("total %+v", tot)
	}
}
