package scheme

import (
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
)

// This file holds the fast path of the MacCormack stage kernels:
// bitwise-identical arithmetic to the reference kernels in scheme.go,
// restructured for big grids. The radial-stencil loops walk
// field.ColGhost slices (one flat slice per column) instead of calling
// At per point, predictor stages fuse the primitive recovery of the
// predicted state into the same column sweep, and every inner loop is
// written in the bounds-check-elimination idiom — exact-length windows
// indexed from zero (verified with -gcflags=-d=ssa/check_bce; see
// DESIGN.md). The reference kernels remain the scalar baseline that the
// fused-kernel equivalence tests pin these against.

// PredictXPrims applies the predictor stage of the axial operator over
// columns [c0, c1) and, in the same sweep, recovers the primitives of
// the predicted state while its columns are still cache-resident —
// fusing the first pass of the corrector stage into the predictor.
// Equivalent to PredictX followed by flux.Primitives on [c0, c1).
//
// Callers that overwrite a predicted column afterwards (the inflow
// boundary) must recompute that column's primitives.
func PredictXPrims(v Variant, lam float64, gm gas.Model, q, f, qp, wp *flux.State, c0, c1 int) {
	for i := c0; i < c1; i++ {
		for k := 0; k < flux.NVar; k++ {
			out := qp[k].Col(i)
			nr := len(out)
			qc := q[k].Col(i)[:nr]
			if v == L1 { // forward: i, i+1, i+2
				fa := f[k].Col(i)[:nr]
				fb := f[k].Col(i + 1)[:nr]
				fc := f[k].Col(i + 2)[:nr]
				for j := range out {
					out[j] = qc[j] - lam*(7*(fb[j]-fa[j])-(fc[j]-fb[j]))
				}
			} else { // backward: i-2, i-1, i
				fa := f[k].Col(i)[:nr]
				fb := f[k].Col(i - 1)[:nr]
				fc := f[k].Col(i - 2)[:nr]
				for j := range out {
					out[j] = qc[j] - lam*(7*(fa[j]-fb[j])-(fb[j]-fc[j]))
				}
			}
		}
		flux.Primitives(gm, qp, wp, i, i+1)
	}
}

// correctXCol applies the axial corrector to column i, all components.
func correctXCol(v Variant, lam float64, q, qp, fp, qn *flux.State, i int) {
	for k := 0; k < flux.NVar; k++ {
		out := qn[k].Col(i)
		nr := len(out)
		qc, qpc := q[k].Col(i)[:nr], qp[k].Col(i)[:nr]
		if v == L1 { // corrector backward: i-2, i-1, i
			fa := fp[k].Col(i)[:nr]
			fb := fp[k].Col(i - 1)[:nr]
			fc := fp[k].Col(i - 2)[:nr]
			for j := range out {
				out[j] = 0.5 * (qc[j] + qpc[j] - lam*(7*(fa[j]-fb[j])-(fb[j]-fc[j])))
			}
		} else { // corrector forward: i, i+1, i+2
			fa := fp[k].Col(i)[:nr]
			fb := fp[k].Col(i + 1)[:nr]
			fc := fp[k].Col(i + 2)[:nr]
			for j := range out {
				out[j] = 0.5 * (qc[j] + qpc[j] - lam*(7*(fb[j]-fa[j])-(fc[j]-fb[j])))
			}
		}
	}
}

// CorrectXFast is CorrectX restructured column-outer so each column's
// four components are updated in one cache pass. Bitwise-identical to
// CorrectX.
func CorrectXFast(v Variant, lam float64, q, qp, fp, qn *flux.State, c0, c1 int) {
	for i := c0; i < c1; i++ {
		correctXCol(v, lam, q, qp, fp, qn, i)
	}
}

// CorrectXPrims applies the corrector stage of the axial operator over
// columns [c0, c1) and, in the same sweep, recovers the primitives of
// the corrected state into w while each column is still cache-resident.
// Primitives are written only for columns in [wp0, wp1): callers exclude
// the columns a boundary condition rewrites afterwards (and the outflow
// column, whose condition still reads the pre-operator primitives), and
// recompute those columns once the boundary has been applied.
// Equivalent to CorrectXFast followed by flux.Primitives on [wp0, wp1).
func CorrectXPrims(v Variant, lam float64, gm gas.Model, q, qp, fp, qn, w *flux.State, c0, c1, wp0, wp1 int) {
	for i := c0; i < c1; i++ {
		correctXCol(v, lam, q, qp, fp, qn, i)
		if i >= wp0 && i < wp1 {
			flux.Primitives(gm, qn, w, i, i+1)
		}
	}
}

// predictRCol applies the radial predictor to column i, rows [j0, j1),
// walking the flux column as one ColGhost window. Arithmetic matches
// PredictRRows exactly. The ghost window starts two storage rows below
// interior row j0, so index o+k addresses interior row j0+o+k-2 and
// k = 0..4 spans both stencil biases.
func predictRCol(v Variant, lam, dt float64, rinv []float64, q, rg, qp *flux.State, src *field.Field, i, j0, j1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	n := j1 - j0
	b := j0 + field.Halo
	for k := 0; k < flux.NVar; k++ {
		out := qp[k].Col(i)[j0 : j0+n]
		qc := q[k].Col(i)[j0 : j0+n]
		ri := rinv[j0 : j0+n]
		// One equal-length window per stencil offset (index o of gN
		// addresses interior row j0+o+N), the layout the compiler can
		// prove in-bounds and elide the checks for.
		gg := rg[k].ColGhost(i)
		if v == L1 {
			g0, g1, g2 := gg[b:][:n:n], gg[b+1:][:n:n], gg[b+2:][:n:n]
			for o := 0; o < n; o++ {
				d := 7*(g1[o]-g0[o]) - (g2[o] - g1[o])
				out[o] = qc[o] - lam*d*ri[o]
			}
		} else {
			g0, gm1, gm2 := gg[b:][:n:n], gg[b-1:][:n:n], gg[b-2:][:n:n]
			for o := 0; o < n; o++ {
				d := 7*(g0[o]-gm1[o]) - (gm1[o] - gm2[o])
				out[o] = qc[o] - lam*d*ri[o]
			}
		}
	}
	sc := src.Col(i)[j0 : j0+n]
	out := qp[flux.IMr].Col(i)[j0 : j0+n]
	for o := 0; o < n; o++ {
		out[o] += dt * sc[o]
	}
}

// PredictRRowsFast is PredictRRows over ColGhost windows; same
// signature, bitwise-identical results.
func PredictRRowsFast(v Variant, lam, dt float64, rinv []float64, q, rg, qp *flux.State, src *field.Field, c0, c1, j0, j1 int) {
	for i := c0; i < c1; i++ {
		predictRCol(v, lam, dt, rinv, q, rg, qp, src, i, j0, j1)
	}
}

// PredictRPrims applies the radial predictor over columns [c0, c1),
// full rows, and recovers the primitives of the predicted state in the
// same column sweep. Equivalent to PredictR followed by
// flux.Primitives on [c0, c1); the inflow-column caveat of
// PredictXPrims applies.
func PredictRPrims(v Variant, lam, dt float64, gm gas.Model, rinv []float64, q, rg, qp, wp *flux.State, src *field.Field, c0, c1 int) {
	nr := q[0].Nr
	for i := c0; i < c1; i++ {
		predictRCol(v, lam, dt, rinv, q, rg, qp, src, i, 0, nr)
		flux.Primitives(gm, qp, wp, i, i+1)
	}
}

// CorrectRRowsFast is CorrectRRows over ColGhost windows; same
// signature, bitwise-identical results.
func CorrectRRowsFast(v Variant, lam, dt float64, rinv []float64, q, qp, rgp, qn *flux.State, srcp *field.Field, c0, c1, j0, j1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	n := j1 - j0
	b := j0 + field.Halo
	for i := c0; i < c1; i++ {
		correctRCol(v, lam, dt, rinv, q, qp, rgp, qn, srcp, i, j0, n, b)
	}
}

// CorrectRRowsPrims applies the radial corrector over columns [c0, c1),
// rows [j0, j1), and recovers the primitives of the corrected state into
// w in the same column sweep. Primitives are written only for columns in
// [wp0, c1) and rows [0, wj1): callers exclude the inflow column and the
// far-field row their boundary conditions rewrite (the far-field update
// also reads the pre-operator primitives of the top row) and recompute
// those after the boundary has been applied. Equivalent to
// CorrectRRowsFast followed by flux.PrimitivesRect on that sub-rectangle.
func CorrectRRowsPrims(v Variant, lam, dt float64, gm gas.Model, rinv []float64, q, qp, rgp, qn, w *flux.State, srcp *field.Field, c0, c1, j0, j1, wp0, wj1 int) {
	if j0 < 0 || j1 <= j0 {
		return
	}
	n := j1 - j0
	b := j0 + field.Halo
	for i := c0; i < c1; i++ {
		correctRCol(v, lam, dt, rinv, q, qp, rgp, qn, srcp, i, j0, n, b)
		if i >= wp0 {
			flux.PrimitivesRect(gm, qn, w, i, i+1, 0, wj1)
		}
	}
}

// correctRCol applies the radial corrector to column i, rows
// [j0, j0+n), with b the ghost-window base row of j0.
func correctRCol(v Variant, lam, dt float64, rinv []float64, q, qp, rgp, qn *flux.State, srcp *field.Field, i, j0, n, b int) {
	for k := 0; k < flux.NVar; k++ {
		out := qn[k].Col(i)[j0 : j0+n]
		qc := q[k].Col(i)[j0 : j0+n]
		qpc := qp[k].Col(i)[j0 : j0+n]
		ri := rinv[j0 : j0+n]
		gg := rgp[k].ColGhost(i)
		if v == L1 { // backward
			g0, gm1, gm2 := gg[b:][:n:n], gg[b-1:][:n:n], gg[b-2:][:n:n]
			for o := 0; o < n; o++ {
				d := 7*(g0[o]-gm1[o]) - (gm1[o] - gm2[o])
				out[o] = 0.5 * (qc[o] + qpc[o] - lam*d*ri[o])
			}
		} else { // forward
			g0, g1, g2 := gg[b:][:n:n], gg[b+1:][:n:n], gg[b+2:][:n:n]
			for o := 0; o < n; o++ {
				d := 7*(g1[o]-g0[o]) - (g2[o] - g1[o])
				out[o] = 0.5 * (qc[o] + qpc[o] - lam*d*ri[o])
			}
		}
	}
	sc := srcp.Col(i)[j0 : j0+n]
	out := qn[flux.IMr].Col(i)[j0 : j0+n]
	for o := 0; o < n; o++ {
		out[o] += 0.5 * dt * sc[o]
	}
}
