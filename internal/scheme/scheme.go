// Package scheme implements the fourth-order (2-4) MacCormack scheme of
// Gottlieb and Turkel [Math. Comp. 30 (1976), 703-723] used by the
// paper: explicit predictor-corrector with one-sided differences over a
// three-point biased stencil, applied to dimensionally split operators.
//
// For the model equation Q_t + F_x = S the two variants are
//
//	L1 predictor: Qb_i    = Q_i - lam*[7(F_{i+1}-F_i) - (F_{i+2}-F_{i+1})] + dt*S_i
//	L1 corrector: Q^{n+1} = (Q_i + Qb_i - lam*[7(Fb_i-Fb_{i-1}) - (Fb_{i-1}-Fb_{i-2})] + dt*Sb_i)/2
//
// with lam = dt/(6 dx); L2 swaps the forward/backward biases. Alternating
// L1 and L2 yields fourth-order spatial accuracy.
package scheme

import (
	"repro/internal/field"
	"repro/internal/flux"
)

// Variant selects the difference bias: L1 uses a forward predictor and
// backward corrector, L2 the reverse.
type Variant int

const (
	L1 Variant = iota
	L2
)

// Other returns the symmetric variant (L1 <-> L2).
func (v Variant) Other() Variant {
	if v == L1 {
		return L2
	}
	return L1
}

func (v Variant) String() string {
	if v == L1 {
		return "L1"
	}
	return "L2"
}

// diffForward returns the biased forward difference
// [7(F_{i+1}-F_i) - (F_{i+2}-F_{i+1})] at offset d (d=+1 axial, handled
// by the caller through column access).
//
// The x-direction loops below are written with explicit column slices so
// the inner (radial) loop is stride-1, mirroring the paper's Version 3+
// memory layout optimization.

// PredictX applies the predictor stage of the axial operator over
// columns [c0, c1): qp = q - lam*D(f), with D the biased one-sided
// difference chosen by the variant. f must be valid on [c0-2, c1+2).
func PredictX(v Variant, lam float64, q, f, qp *flux.State, c0, c1 int) {
	for k := 0; k < flux.NVar; k++ {
		for i := c0; i < c1; i++ {
			qc, out := q[k].Col(i), qp[k].Col(i)
			var fa, fb, fc []float64
			if v == L1 { // forward: i, i+1, i+2
				fa, fb, fc = f[k].Col(i), f[k].Col(i+1), f[k].Col(i+2)
				for j := range out {
					out[j] = qc[j] - lam*(7*(fb[j]-fa[j])-(fc[j]-fb[j]))
				}
			} else { // backward: i-2, i-1, i
				fa, fb, fc = f[k].Col(i), f[k].Col(i-1), f[k].Col(i-2)
				for j := range out {
					out[j] = qc[j] - lam*(7*(fa[j]-fb[j])-(fb[j]-fc[j]))
				}
			}
		}
	}
}

// CorrectX applies the corrector stage of the axial operator over
// columns [c0, c1): qn = (q + qp - lam*Dbar(fp))/2, with the bias
// opposite to the predictor's. fp must be valid on [c0-2, c1+2).
func CorrectX(v Variant, lam float64, q, qp, fp, qn *flux.State, c0, c1 int) {
	for k := 0; k < flux.NVar; k++ {
		for i := c0; i < c1; i++ {
			qc, qpc, out := q[k].Col(i), qp[k].Col(i), qn[k].Col(i)
			if v == L1 { // corrector backward: i-2, i-1, i
				fa, fb, fc := fp[k].Col(i), fp[k].Col(i-1), fp[k].Col(i-2)
				for j := range out {
					out[j] = 0.5 * (qc[j] + qpc[j] - lam*(7*(fa[j]-fb[j])-(fb[j]-fc[j])))
				}
			} else { // corrector forward: i, i+1, i+2
				fa, fb, fc := fp[k].Col(i), fp[k].Col(i+1), fp[k].Col(i+2)
				for j := range out {
					out[j] = 0.5 * (qc[j] + qpc[j] - lam*(7*(fb[j]-fa[j])-(fc[j]-fb[j])))
				}
			}
		}
	}
}

// PredictR applies the predictor stage of the radial operator over
// columns [c0, c1). rg is the radial flux r*g (valid on radial ghost
// rows), rinv[j] = 1/r_j, src the source term S_r/r (radial momentum
// component only), dt the time step, lam = dt/(6 dr).
func PredictR(v Variant, lam, dt float64, rinv []float64, q, rg, qp *flux.State, src *field.Field, c0, c1 int) {
	PredictRRows(v, lam, dt, rinv, q, rg, qp, src, c0, c1, 0, q[0].Nr)
}

// PredictRRows is PredictR restricted to rows [j0, j1) — the
// sub-rectangle form of the Version-6 overlap, which runs the interior
// rows while radial-flux ghost rows are still in flight. rg must be
// valid on rows [j0-2, j1+2).
func PredictRRows(v Variant, lam, dt float64, rinv []float64, q, rg, qp *flux.State, src *field.Field, c0, c1, j0, j1 int) {
	for k := 0; k < flux.NVar; k++ {
		g := rg[k]
		for i := c0; i < c1; i++ {
			qc, out := q[k].Col(i), qp[k].Col(i)
			if v == L1 {
				for j := j0; j < j1; j++ {
					d := 7*(g.At(i, j+1)-g.At(i, j)) - (g.At(i, j+2) - g.At(i, j+1))
					out[j] = qc[j] - lam*d*rinv[j]
				}
			} else {
				for j := j0; j < j1; j++ {
					d := 7*(g.At(i, j)-g.At(i, j-1)) - (g.At(i, j-1) - g.At(i, j-2))
					out[j] = qc[j] - lam*d*rinv[j]
				}
			}
		}
	}
	// Source term: radial momentum only (S/r already divided by r).
	for i := c0; i < c1; i++ {
		sc, out := src.Col(i), qp[flux.IMr].Col(i)
		for j := j0; j < j1; j++ {
			out[j] += dt * sc[j]
		}
	}
}

// CorrectR applies the corrector stage of the radial operator over
// columns [c0, c1) with the bias opposite to the predictor's. srcp is
// the source term evaluated from the predicted state.
func CorrectR(v Variant, lam, dt float64, rinv []float64, q, qp, rgp, qn *flux.State, srcp *field.Field, c0, c1 int) {
	CorrectRRows(v, lam, dt, rinv, q, qp, rgp, qn, srcp, c0, c1, 0, q[0].Nr)
}

// CorrectRRows is CorrectR restricted to rows [j0, j1). rgp must be
// valid on rows [j0-2, j1+2).
func CorrectRRows(v Variant, lam, dt float64, rinv []float64, q, qp, rgp, qn *flux.State, srcp *field.Field, c0, c1, j0, j1 int) {
	for k := 0; k < flux.NVar; k++ {
		g := rgp[k]
		for i := c0; i < c1; i++ {
			qc, qpc, out := q[k].Col(i), qp[k].Col(i), qn[k].Col(i)
			if v == L1 { // backward
				for j := j0; j < j1; j++ {
					d := 7*(g.At(i, j)-g.At(i, j-1)) - (g.At(i, j-1) - g.At(i, j-2))
					out[j] = 0.5 * (qc[j] + qpc[j] - lam*d*rinv[j])
				}
			} else { // forward
				for j := j0; j < j1; j++ {
					d := 7*(g.At(i, j+1)-g.At(i, j)) - (g.At(i, j+2) - g.At(i, j+1))
					out[j] = 0.5 * (qc[j] + qpc[j] - lam*d*rinv[j])
				}
			}
		}
	}
	for i := c0; i < c1; i++ {
		sc, out := srcp.Col(i), qn[flux.IMr].Col(i)
		for j := j0; j < j1; j++ {
			out[j] += 0.5 * dt * sc[j]
		}
	}
}

// FLOP accounting constants (per grid point, per stage).
const (
	FlopsPredictX = 4 * 7 // 4 components: 3 sub, 2 mul-ish, combine
	FlopsCorrectX = 4 * 9
	FlopsPredictR = 4*8 + 2 // + source add
	FlopsCorrectR = 4*10 + 3
)
