package scheme

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
)

func randBundle(rng *rand.Rand, s *flux.State) {
	for k := range s {
		f := s[k]
		for i := -field.Halo; i < f.Nx+field.Halo; i++ {
			col := f.ColGhost(i)
			for j := range col {
				col[j] = 0.5 + rng.Float64()
			}
		}
	}
}

func randField(rng *rand.Rand, f *field.Field) {
	for i := -field.Halo; i < f.Nx+field.Halo; i++ {
		col := f.ColGhost(i)
		for j := range col {
			col[j] = rng.Float64() - 0.5
		}
	}
}

func statesEqual(t *testing.T, name string, seed int64, a, b *flux.State) {
	t.Helper()
	for k := range a {
		if !a[k].Equal(b[k]) {
			t.Fatalf("seed %d: %s component %d differs", seed, name, k)
		}
	}
}

// TestFusedSchemeEquivalence pins the fast MacCormack stage kernels to
// the reference scalar kernels bitwise on random sub-rectangles (both
// variants, boundary-adjacent rows included) and checks the fused
// predictor+primitives sweeps against the two-pass reference sequence.
func TestFusedSchemeEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		nx := 4 + rng.Intn(17)
		nr := 4 + rng.Intn(17)
		v := Variant(rng.Intn(2))
		gm := gas.Air(0.001)
		lam, dt := 0.01+rng.Float64(), 0.001+0.01*rng.Float64()
		c0 := rng.Intn(nx)
		c1 := c0 + 1 + rng.Intn(nx-c0)
		var j0, j1 int
		switch rng.Intn(3) {
		case 0:
			j0, j1 = 0, nr
		case 1:
			j0, j1 = 0, 1+rng.Intn(nr)
		default:
			j0 = rng.Intn(nr)
			j1 = j0 + 1 + rng.Intn(nr-j0)
		}
		rinv := make([]float64, nr)
		for j := range rinv {
			rinv[j] = 1 / ((float64(j) + 0.5) * 0.1)
		}
		q, f := flux.NewState(nx, nr), flux.NewState(nx, nr)
		randBundle(rng, q)
		randBundle(rng, f)
		src := field.New(nx, nr)
		randField(rng, src)
		qpRef, qpFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		wpRef, wpFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		qnRef, qnFast := flux.NewState(nx, nr), flux.NewState(nx, nr)

		// Axial predictor fused with primitive recovery.
		PredictX(v, lam, q, f, qpRef, c0, c1)
		flux.Primitives(gm, qpRef, wpRef, c0, c1)
		PredictXPrims(v, lam, gm, q, f, qpFast, wpFast, c0, c1)
		statesEqual(t, "PredictXPrims qp", seed, qpRef, qpFast)
		statesEqual(t, "PredictXPrims wp", seed, wpRef, wpFast)

		// Axial corrector.
		CorrectX(v, lam, q, qpRef, f, qnRef, c0, c1)
		CorrectXFast(v, lam, q, qpRef, f, qnFast, c0, c1)
		statesEqual(t, "CorrectXFast", seed, qnRef, qnFast)

		// Radial predictor on the sub-rectangle, then fused with prims.
		PredictRRows(v, lam, dt, rinv, q, f, qpRef, src, c0, c1, j0, j1)
		PredictRRowsFast(v, lam, dt, rinv, q, f, qpFast, src, c0, c1, j0, j1)
		statesEqual(t, "PredictRRowsFast", seed, qpRef, qpFast)

		PredictR(v, lam, dt, rinv, q, f, qpRef, src, c0, c1)
		flux.Primitives(gm, qpRef, wpRef, c0, c1)
		PredictRPrims(v, lam, dt, gm, rinv, q, f, qpFast, wpFast, src, c0, c1)
		statesEqual(t, "PredictRPrims qp", seed, qpRef, qpFast)
		statesEqual(t, "PredictRPrims wp", seed, wpRef, wpFast)

		// Radial corrector on the sub-rectangle.
		CorrectRRows(v, lam, dt, rinv, q, qpRef, f, qnRef, src, c0, c1, j0, j1)
		CorrectRRowsFast(v, lam, dt, rinv, q, qpRef, f, qnFast, src, c0, c1, j0, j1)
		statesEqual(t, "CorrectRRowsFast", seed, qnRef, qnFast)

		// Correctors fused with primitive recovery on a sub-range of the
		// written region (the boundary-skip shape the solver uses).
		wp0 := c0 + rng.Intn(c1-c0+1)
		wp1 := wp0 + rng.Intn(c1-wp0+1)
		wRef, wFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		randBundle(rng, wRef)
		for k := range wRef {
			wFast[k].CopyFrom(wRef[k])
		}
		CorrectX(v, lam, q, qpRef, f, qnRef, c0, c1)
		flux.Primitives(gm, qnRef, wRef, wp0, wp1)
		CorrectXPrims(v, lam, gm, q, qpRef, f, qnFast, wFast, c0, c1, wp0, wp1)
		statesEqual(t, "CorrectXPrims qn", seed, qnRef, qnFast)
		statesEqual(t, "CorrectXPrims w", seed, wRef, wFast)

		wj1 := rng.Intn(j1 + 1)
		CorrectRRows(v, lam, dt, rinv, q, qpRef, f, qnRef, src, c0, c1, j0, j1)
		flux.PrimitivesRect(gm, qnRef, wRef, wp0, c1, 0, wj1)
		CorrectRRowsPrims(v, lam, dt, gm, rinv, q, qpRef, f, qnFast, wFast, src, c0, c1, j0, j1, wp0, wj1)
		statesEqual(t, "CorrectRRowsPrims qn", seed, qnRef, qnFast)
		statesEqual(t, "CorrectRRowsPrims w", seed, wRef, wFast)
	}
}

// TestFusedSchemeWallGhostEquivalence re-pins the fused stage kernels
// on the exact shapes the wall-bounded scenarios drive them with:
// wall-mirror ghosts in the state and flux bundles (instead of the
// random ghosts above), full-width stencils, and the boundary-skip
// write ranges the solver uses next to walls — wp0=1/wp1=nx-1 skipping
// the axial wall nodes and wj1=nr-1 skipping the row under the lid.
// Covers the cavity's planar-offset radii and the channel's
// axis-anchored radii.
func TestFusedSchemeWallGhostEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 7000))
		nx := 6 + rng.Intn(15)
		nr := 6 + rng.Intn(15)
		v := Variant(rng.Intn(2))
		gm := gas.Air(0.001)
		lam, dt := 0.01+rng.Float64(), 0.001+0.01*rng.Float64()
		dr := 0.1 + rng.Float64()
		r0 := 0.0
		ulid := 0.0
		if seed%2 == 0 {
			r0 = 1e4 // cavity-style planar limit
			ulid = 0.2
		}
		rinv := make([]float64, nr)
		for j := range rinv {
			rinv[j] = 1 / (r0 + (float64(j)+0.5)*dr)
		}
		q, f := flux.NewState(nx, nr), flux.NewState(nx, nr)
		randBundle(rng, q)
		randBundle(rng, f)
		// The solver fills conserved ghosts with the stationary parity
		// maps (the lid enters through the primitive bundle) and flux
		// ghosts with the flux-parity maps plus the affine lid rows.
		for _, b := range []*flux.State{q, f} {
			isFlux := b == f
			flux.WallMirrorColsLeft(b, isFlux)
			flux.WallMirrorColsRight(b, isFlux)
			flux.WallMirrorRowsBottom(b, isFlux)
			if isFlux {
				flux.WallMirrorRowsTop(b, ulid, true)
			} else {
				flux.WallMirrorRowsTop(b, 0, false)
			}
		}
		src := field.New(nx, nr)
		randField(rng, src)

		// Full-domain stencil with wall-skip write ranges.
		c0, c1 := 0, nx
		j0, j1 := 0, nr
		wp0, wp1 := 1, nx-1
		wj1 := nr - 1

		qpRef, qpFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		wpRef, wpFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		qnRef, qnFast := flux.NewState(nx, nr), flux.NewState(nx, nr)

		PredictX(v, lam, q, f, qpRef, c0, c1)
		flux.Primitives(gm, qpRef, wpRef, c0, c1)
		PredictXPrims(v, lam, gm, q, f, qpFast, wpFast, c0, c1)
		statesEqual(t, "wall PredictXPrims qp", seed, qpRef, qpFast)
		statesEqual(t, "wall PredictXPrims wp", seed, wpRef, wpFast)

		PredictR(v, lam, dt, rinv, q, f, qpRef, src, c0, c1)
		flux.Primitives(gm, qpRef, wpRef, c0, c1)
		PredictRPrims(v, lam, dt, gm, rinv, q, f, qpFast, wpFast, src, c0, c1)
		statesEqual(t, "wall PredictRPrims qp", seed, qpRef, qpFast)
		statesEqual(t, "wall PredictRPrims wp", seed, wpRef, wpFast)

		wRef, wFast := flux.NewState(nx, nr), flux.NewState(nx, nr)
		randBundle(rng, wRef)
		for k := range wRef {
			wFast[k].CopyFrom(wRef[k])
		}
		CorrectX(v, lam, q, qpRef, f, qnRef, c0, c1)
		flux.Primitives(gm, qnRef, wRef, wp0, wp1)
		CorrectXPrims(v, lam, gm, q, qpRef, f, qnFast, wFast, c0, c1, wp0, wp1)
		statesEqual(t, "wall CorrectXPrims qn", seed, qnRef, qnFast)
		statesEqual(t, "wall CorrectXPrims w", seed, wRef, wFast)

		CorrectRRows(v, lam, dt, rinv, q, qpRef, f, qnRef, src, c0, c1, j0, j1)
		flux.PrimitivesRect(gm, qnRef, wRef, wp0, c1, 0, wj1)
		CorrectRRowsPrims(v, lam, dt, gm, rinv, q, qpRef, f, qnFast, wFast, src, c0, c1, j0, j1, wp0, wj1)
		statesEqual(t, "wall CorrectRRowsPrims qn", seed, qnRef, qnFast)
		statesEqual(t, "wall CorrectRRowsPrims w", seed, wRef, wFast)
	}
}
