package scheme

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/flux"
)

// advect performs linear advection q_t + q_x = 0 on a periodic domain
// using the alternated L1/L2 scheme (the flux is f = q), and returns the
// max error against the exact translated solution.
func advect(nx int, tEnd float64, dtScale float64) float64 {
	dx := 2 * math.Pi / float64(nx)
	dt := dtScale * dx * dx // isolate the spatial order (time error O(dt^2))
	steps := int(math.Ceil(tEnd / dt))
	dt = tEnd / float64(steps)

	q := flux.NewState(nx, 1)
	qp := flux.NewState(nx, 1)
	qn := flux.NewState(nx, 1)
	f := flux.NewState(nx, 1)
	fp := flux.NewState(nx, 1)
	for i := 0; i < nx; i++ {
		q[0].Set(i, 0, math.Sin(float64(i)*dx))
	}
	wrap := func(b *flux.State) {
		for k := 0; k < flux.NVar; k++ {
			b[k].Set(-1, 0, b[k].At(nx-1, 0))
			b[k].Set(-2, 0, b[k].At(nx-2, 0))
			b[k].Set(nx, 0, b[k].At(0, 0))
			b[k].Set(nx+1, 0, b[k].At(1, 0))
		}
	}
	copyF := func(dst, src *flux.State) {
		for i := 0; i < nx; i++ {
			dst[0].Set(i, 0, src[0].At(i, 0))
		}
	}
	lam := dt / (6 * dx)
	v := L1
	for s := 0; s < steps; s++ {
		copyF(f, q)
		wrap(f)
		PredictX(v, lam, q, f, qp, 0, nx)
		copyF(fp, qp)
		wrap(fp)
		CorrectX(v, lam, q, qp, fp, qn, 0, nx)
		q, qn = qn, q
		v = v.Other()
	}
	errMax := 0.0
	tFinal := float64(steps) * dt
	for i := 0; i < nx; i++ {
		exact := math.Sin(float64(i)*dx - tFinal)
		if e := math.Abs(q[0].At(i, 0) - exact); e > errMax {
			errMax = e
		}
	}
	return errMax
}

// TestFourthOrderSpatialAccuracy verifies the Gottlieb-Turkel claim: the
// alternated 2-4 MacCormack scheme is fourth-order accurate in space.
func TestFourthOrderSpatialAccuracy(t *testing.T) {
	e1 := advect(24, 0.5, 0.3)
	e2 := advect(48, 0.5, 0.3)
	order := math.Log2(e1 / e2)
	t.Logf("errors %.3g -> %.3g, observed order %.2f", e1, e2, order)
	if order < 3.5 {
		t.Errorf("observed spatial order %.2f < 3.5 (want ~4)", order)
	}
}

// TestSchemeExactForLinearProfile: the one-sided differences are exact
// for linear f, so a linear flux profile advects without deformation
// error from the difference operator itself.
func TestSchemeExactForLinearFlux(t *testing.T) {
	nx := 16
	q := flux.NewState(nx, 1)
	f := flux.NewState(nx, 1)
	qp := flux.NewState(nx, 1)
	for i := -field.Halo; i < nx+field.Halo; i++ {
		q[0].Set(i, 0, 5)
		f[0].Set(i, 0, 2*float64(i)) // df/dx = 2 everywhere
	}
	lam := 0.01 / 6.0 // dt=0.01, dx=1
	PredictX(L1, lam, q, f, qp, 0, nx)
	want := 5 - 0.01*2
	for i := 0; i < nx; i++ {
		if math.Abs(qp[0].At(i, 0)-want) > 1e-13 {
			t.Fatalf("predictor at %d: %g, want %g", i, qp[0].At(i, 0), want)
		}
	}
	// L2 must give the same answer for a globally linear flux.
	PredictX(L2, lam, q, f, qp, 0, nx)
	for i := 0; i < nx; i++ {
		if math.Abs(qp[0].At(i, 0)-want) > 1e-13 {
			t.Fatalf("L2 predictor at %d: %g", i, qp[0].At(i, 0))
		}
	}
}

func TestConstantStatePreservedX(t *testing.T) {
	// Constant q and constant f: predictor and corrector must be exact
	// no-ops regardless of variant.
	nx := 12
	q := flux.NewState(nx, 3)
	f := flux.NewState(nx, 3)
	qp := flux.NewState(nx, 3)
	qn := flux.NewState(nx, 3)
	for k := 0; k < flux.NVar; k++ {
		q[k].FillAll(3.25)
		f[k].FillAll(7.5)
	}
	for _, v := range []Variant{L1, L2} {
		PredictX(v, 0.123, q, f, qp, 0, nx)
		CorrectX(v, 0.123, q, qp, f, qn, 0, nx)
		for i := 0; i < nx; i++ {
			for j := 0; j < 3; j++ {
				if qn[0].At(i, j) != 3.25 {
					t.Fatalf("%v: constant state not preserved at (%d,%d): %g", v, i, j, qn[0].At(i, j))
				}
			}
		}
	}
}

func TestRadialOperatorSourceOnly(t *testing.T) {
	// With constant rg (zero difference), the radial predictor applies
	// exactly dt*src to the radial momentum and nothing else.
	nx, nr := 6, 5
	q := flux.NewState(nx, nr)
	rg := flux.NewState(nx, nr)
	qp := flux.NewState(nx, nr)
	src := field.New(nx, nr)
	rinv := make([]float64, nr)
	for j := range rinv {
		rinv[j] = 1
	}
	for k := 0; k < flux.NVar; k++ {
		q[k].FillAll(1)
		rg[k].FillAll(4)
	}
	src.Fill(2)
	dt := 0.1
	PredictR(L1, dt/(6*0.5), dt, rinv, q, rg, qp, src, 0, nx)
	for i := 0; i < nx; i++ {
		for j := 0; j < nr; j++ {
			if got := qp[flux.IMr].At(i, j); math.Abs(got-1.2) > 1e-14 {
				t.Fatalf("radial momentum %g, want 1.2", got)
			}
			if got := qp[flux.IRho].At(i, j); got != 1 {
				t.Fatalf("density changed: %g", got)
			}
		}
	}
}

func TestVariantOther(t *testing.T) {
	if L1.Other() != L2 || L2.Other() != L1 {
		t.Fatal("Other() broken")
	}
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Fatal("String() broken")
	}
}
