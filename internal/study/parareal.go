package study

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/machine"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Parallel-in-time: the parareal schedule priced on the 1995 platforms
// and the real coordinator's convergence measured across Reynolds
// numbers.

// PararealSeconds co-simulates the parareal parallel-in-time schedule:
// the processor pool splits into slices groups, each running the fine
// propagator over its slice of the step range, with serial coarse
// sweeps and slice handoffs between correction iterations. iters <= 0
// prices the worst case (slices iterations, the bitwise-exact
// schedule).
func PararealSeconds(p machine.Platform, ch trace.Characterization, slices, iters, procs int) (float64, error) {
	ch.TimeSlices = slices
	ch.PararealIters = iters
	o, err := p.Simulate(ch, procs, 5)
	if err != nil {
		return 0, err
	}
	return o.Seconds, nil
}

// The measured Reynolds sweep below: the unexcited jet marched by the
// real parareal coordinator at a fixed defect tolerance, the
// convergence-rate shape Steiner et al. report (Parareal for unsteady
// flow degrades as Reynolds number grows — the coarse propagator's
// missing advective detail feeds back through the corrections).
const (
	// PararealSweepSlices is the slice count K of the measured sweep.
	PararealSweepSlices = 8
	// PararealSweepTol is the defect tolerance the adaptive runs stop at.
	PararealSweepTol = 3e-3
	// PararealSweepSteps is the marched step budget (2 steps per slice).
	PararealSweepSteps = 16
	// PararealSweepNx/Nr size the grid: large enough that the coarse
	// grid resolves the shear layer and the defect contracts instead of
	// flooring on interpolation error.
	PararealSweepNx = 128
	PararealSweepNr = 48
)

// PararealRePoint is one Reynolds number of the measured sweep.
type PararealRePoint struct {
	Re          float64
	Iterations  int     // adaptive iterations to the defect tolerance (K = cap)
	EarlyDefect float64 // defect after the second correction iteration
}

// PararealReSweep runs the real parareal backend (serial fine
// propagator, defect-adaptive) on the unexcited jet at each Reynolds
// number and reports the iteration count plus the second-iteration
// defect — the convergence-rate probe that is defined even when two
// runs stop at the same iteration.
func PararealReSweep(res []float64) ([]PararealRePoint, error) {
	be, err := backend.Get("parareal")
	if err != nil {
		return nil, err
	}
	g, err := grid.New(PararealSweepNx, PararealSweepNr, 50, 5)
	if err != nil {
		return nil, err
	}
	out := make([]PararealRePoint, 0, len(res))
	for _, re := range res {
		cfg := jet.Paper()
		cfg.Reynolds = re
		cfg.Eps = 0
		r, err := be.Run(cfg, g, backend.Options{
			TimeSlices:   PararealSweepSlices,
			CoarseFactor: 2,
			DefectTol:    PararealSweepTol,
		}, PararealSweepSteps)
		if err != nil {
			return nil, err
		}
		if r.Diag.HasNaN {
			return nil, fmt.Errorf("study: parareal Re=%g run produced NaN", re)
		}
		p := PararealRePoint{Re: re, Iterations: r.Iterations}
		// Residuals[i] is the defect after iteration i+1; the first entry
		// is +Inf (no previous iterate to difference against).
		if len(r.Residuals) >= 2 {
			p.EarlyDefect = r.Residuals[1].Residual
		}
		out = append(out, p)
	}
	return out, nil
}
