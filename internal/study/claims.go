package study

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Claim is one of the paper's findings, checked mechanically against
// the reproduction. EXPERIMENTS.md is generated from these.
type Claim struct {
	ID        string
	Statement string // the paper's claim
	Check     func() (got string, ok bool, err error)
}

// seriesByName finds a series by exact name.
func seriesByName(ss []stats.Series, name string) (stats.Series, error) {
	for _, s := range ss {
		if s.Name == name {
			return s, nil
		}
	}
	return stats.Series{}, fmt.Errorf("study: no series %q", name)
}

// Claims returns every checkable finding.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "T1-compute-ratio",
			Statement: "Euler has roughly 50% of the computation of Navier-Stokes (Table 1)",
			Check: func() (string, bool, error) {
				r := trace.PaperEuler().TotalFlops() / trace.PaperNS().TotalFlops()
				return fmt.Sprintf("Euler/N-S compute = %.2f", r), r > 0.4 && r < 0.65, nil
			},
		},
		{
			ID:        "T1-comm-ratio",
			Statement: "Euler has roughly 75% of the communication volume of Navier-Stokes (Table 1)",
			Check: func() (string, bool, error) {
				r := float64(trace.PaperEuler().RankBytes()) / float64(trace.PaperNS().RankBytes())
				return fmt.Sprintf("Euler/N-S volume = %.2f", r), r == 0.75, nil
			},
		},
		{
			ID:        "T1-startups",
			Statement: "80,000 startups/proc for N-S and 60,000 for Euler over 5000 steps (Table 1)",
			Check: func() (string, bool, error) {
				ns, eu := trace.PaperNS().RankStartups(), trace.PaperEuler().RankStartups()
				return fmt.Sprintf("N-S %d, Euler %d", ns, eu), ns == 80000 && eu == 60000, nil
			},
		},
		{
			ID:        "T1-volume",
			Statement: "about 125 MB/proc for N-S and 95 MB for Euler (Table 1)",
			Check: func() (string, bool, error) {
				ns := float64(trace.PaperNS().RankBytes()) / 1e6
				eu := float64(trace.PaperEuler().RankBytes()) / 1e6
				ok := ns > 115 && ns < 135 && eu > 88 && eu < 102
				return fmt.Sprintf("N-S %.0f MB, Euler %.0f MB", ns, eu), ok, nil
			},
		},
		{
			ID:        "F2-mflops",
			Statement: "single-processor optimizations take the RS6000/560 from 9.3 to 16.0 MFLOPS, roughly 80% (Figure 2)",
			Check: func() (string, bool, error) {
				f := trace.PaperFlopsPerPoint(true)
				v1 := cpu.RS560.Evaluate(kernels.V(1), f).EffMFLOPS
				v5 := cpu.RS560.Evaluate(kernels.V(5), f).EffMFLOPS
				ok := v1 > 8 && v1 < 11.5 && v5 > 14 && v5 < 18 && v5/v1 > 1.5
				return fmt.Sprintf("V1 %.1f -> V5 %.1f MFLOPS (+%.0f%%)", v1, v5, (v5/v1-1)*100), ok, nil
			},
		},
		{
			ID:        "F2-stride",
			Statement: "the stride-1 loop interchange (Version 3) is the dominant single win, ~50% over Version 2 (Figure 2)",
			Check: func() (string, bool, error) {
				f := trace.PaperFlopsPerPoint(true)
				v2 := cpu.RS560.Evaluate(kernels.V(2), f).EffMFLOPS
				v3 := cpu.RS560.Evaluate(kernels.V(3), f).EffMFLOPS
				gain := v3/v2 - 1
				return fmt.Sprintf("V3 over V2: +%.0f%%", gain*100), gain > 0.3 && gain < 0.7, nil
			},
		},
		{
			ID:        "F3-ethernet-knee",
			Statement: "Ethernet performance peaks at ~8 processors for N-S, then communication overwhelms the network (Figure 3)",
			Check: func() (string, bool, error) {
				ss, err := FigLACE(true)
				if err != nil {
					return "", false, err
				}
				eth, err := seriesByName(ss, machine.LACE560Ethernet.Name)
				if err != nil {
					return "", false, err
				}
				x, _ := eth.MinY()
				last := eth.Y[eth.Len()-1]
				min := 0.0
				if _, y := eth.MinY(); true {
					min = y
				}
				ok := x >= 6 && x <= 10 && last > 1.5*min
				return fmt.Sprintf("minimum at P=%.0f, rising to %.2fx the minimum at P=16", x, last/min), ok, nil
			},
		},
		{
			ID:        "F3-allnode-scaling",
			Statement: "execution time falls almost linearly with ALLNODE, sublinear beyond 12 processors (Figure 3)",
			Check: func() (string, bool, error) {
				ss, err := FigLACE(true)
				if err != nil {
					return "", false, err
				}
				an, err := seriesByName(ss, machine.LACE560AllnodeS.Name)
				if err != nil {
					return "", false, err
				}
				if !an.Monotone() {
					return "ALLNODE-S not monotone", false, nil
				}
				sp := an.Speedup()
				s8, _ := sp.YAt(8)
				s16, _ := sp.YAt(16)
				// Near-linear at 8 (>=5x), visibly sublinear by 16.
				ok := s8 >= 5 && s16 < 14 && s16 > s8
				return fmt.Sprintf("speedup %.1fx at P=8, %.1fx at P=16", s8, s16), ok, nil
			},
		},
		{
			ID:        "F3-allnode-f-vs-s",
			Statement: "ALLNODE-F is about 70%-80% faster than ALLNODE-S (network 2x + superior 590 node) (Figure 3)",
			Check: func() (string, bool, error) {
				ss, err := FigLACE(true)
				if err != nil {
					return "", false, err
				}
				f, _ := seriesByName(ss, machine.LACE590AllnodeF.Name)
				s, _ := seriesByName(ss, machine.LACE560AllnodeS.Name)
				f8, _ := f.YAt(8)
				s8, _ := s.YAt(8)
				r := s8/f8 - 1
				return fmt.Sprintf("ALLNODE-F faster by %.0f%% at P=8", r*100), r > 0.4 && r < 0.95, nil
			},
		},
		{
			ID:        "F5-comm-comparable",
			Statement: "for N-S at 16 processors the communication time is comparable to computation plus PVM setup (Figure 5)",
			Check: func() (string, bool, error) {
				_, busy, wait, err := simSeries(machine.LACE560AllnodeS, trace.PaperNS(), 5)
				if err != nil {
					return "", false, err
				}
				b16, _ := busy.YAt(16)
				w16, _ := wait.YAt(16)
				r := w16 / b16
				return fmt.Sprintf("non-overlapped/busy = %.2f at P=16", r), r > 0.25 && r < 1.3, nil
			},
		},
		{
			ID:        "F5-ethernet-superlinear",
			Statement: "with Ethernet the non-overlapped communication time increases superlinearly with processors (Figure 5)",
			Check: func() (string, bool, error) {
				_, _, wait, err := simSeries(machine.LACE560Ethernet, trace.PaperNS(), 5)
				if err != nil {
					return "", false, err
				}
				w8, _ := wait.YAt(8)
				w16, _ := wait.YAt(16)
				return fmt.Sprintf("wait(16)/wait(8) = %.1f", w16/w8), w16 > 2.2*w8, nil
			},
		},
		{
			ID:        "F7-v6-near-v5",
			Statement: "Version 6 (overlap) performs very close to Version 5: overheads offset the overlap gain (Figure 7)",
			Check: func() (string, bool, error) {
				ch := trace.PaperNS()
				o5, err := machine.LACE560AllnodeS.Simulate(ch, 8, 5)
				if err != nil {
					return "", false, err
				}
				o6, err := machine.LACE560AllnodeS.Simulate(ch, 8, 6)
				if err != nil {
					return "", false, err
				}
				r := o6.Seconds / o5.Seconds
				return fmt.Sprintf("V6/V5 = %.3f on ALLNODE-S at P=8", r), r > 0.9 && r < 1.1, nil
			},
		},
		{
			ID:        "F7-v7-tradeoff",
			Statement: "Version 7 (de-burst) helps on Ethernet but hurts on ALLNODE-S, where extra startups only add cost (Figure 7)",
			Check: func() (string, bool, error) {
				ch := trace.PaperNS()
				e5, err := machine.LACE560Ethernet.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				e7, err := machine.LACE560Ethernet.Simulate(ch, 12, 7)
				if err != nil {
					return "", false, err
				}
				a5, err := machine.LACE560AllnodeS.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				a7, err := machine.LACE560AllnodeS.Simulate(ch, 12, 7)
				if err != nil {
					return "", false, err
				}
				got := fmt.Sprintf("Ethernet V7/V5 = %.3f, ALLNODE-S V7/V5 = %.3f", e7.Seconds/e5.Seconds, a7.Seconds/a5.Seconds)
				return got, e7.Seconds < e5.Seconds && a7.Seconds > a5.Seconds, nil
			},
		},
		{
			ID:        "F9-ymp-best",
			Statement: "the Cray Y-MP has by far the best performance; LACE/590 with 16 processors is comparable to a single Y-MP processor (Figure 9)",
			Check: func() (string, bool, error) {
				ss, err := FigPlatforms(true)
				if err != nil {
					return "", false, err
				}
				ymp, _ := seriesByName(ss, machine.YMP.Name)
				af, _ := seriesByName(ss, machine.LACE590AllnodeF.Name)
				y8, _ := ymp.YAt(8)
				y1, _ := ymp.YAt(1)
				af16, _ := af.YAt(16)
				ok := true
				for _, s := range ss {
					if s.Name == machine.YMP.Name {
						continue
					}
					if y, found := s.YAt(8); found && y < y8 {
						ok = false
					}
				}
				ratio := af16 / y1
				return fmt.Sprintf("Y-MP fastest at P=8; LACE/590@16 / Y-MP@1 = %.2f", ratio), ok && ratio > 0.5 && ratio < 1.5, nil
			},
		},
		{
			ID:        "F9-lace-beats-sp",
			Statement: "surprisingly, LACE even with ALLNODE-S outperforms the SP (Figure 9)",
			Check: func() (string, bool, error) {
				ss, err := FigPlatforms(true)
				if err != nil {
					return "", false, err
				}
				an, _ := seriesByName(ss, machine.LACE560AllnodeS.Name)
				sp, _ := seriesByName(ss, machine.SPMPL.Name)
				// Reproduced through P=12; beyond that the ALLNODE
				// flattening the paper itself predicts lets the SP's
				// scalable switch catch up (see EXPERIMENTS.md).
				ok := true
				for i := range an.X {
					if an.X[i] > 12 {
						continue
					}
					if y, found := sp.YAt(an.X[i]); found && y < an.Y[i]*0.99 {
						ok = false
					}
				}
				sp16, _ := sp.YAt(16)
				an16, _ := an.YAt(16)
				return fmt.Sprintf("SP slower for all P <= 12; at P=16 SP/ALLNODE-S = %.2f", sp16/an16), ok, nil
			},
		},
		{
			ID:        "F9-t3d-crossover",
			Statement: "the T3D is consistently worse than ALLNODE-F, worse than ALLNODE-S below 8 processors and better beyond (Figure 9)",
			Check: func() (string, bool, error) {
				ss, err := FigPlatforms(true)
				if err != nil {
					return "", false, err
				}
				t3d, _ := seriesByName(ss, machine.T3D.Name)
				af, _ := seriesByName(ss, machine.LACE590AllnodeF.Name)
				as, _ := seriesByName(ss, machine.LACE560AllnodeS.Name)
				for i := range t3d.X {
					if y, ok := af.YAt(t3d.X[i]); ok && t3d.Y[i] < y {
						return fmt.Sprintf("T3D beats ALLNODE-F at P=%.0f", t3d.X[i]), false, nil
					}
				}
				cross := stats.Crossover(t3d, as)
				return fmt.Sprintf("T3D never beats ALLNODE-F; crosses ALLNODE-S at P=%.0f", cross), cross >= 8 && cross <= 14, nil
			},
		},
		{
			ID:        "F9-t3d-beats-sp",
			Statement: "the T3D is still superior to the IBM SP (Figure 9)",
			Check: func() (string, bool, error) {
				ss, err := FigPlatforms(true)
				if err != nil {
					return "", false, err
				}
				t3d, _ := seriesByName(ss, machine.T3D.Name)
				sp, _ := seriesByName(ss, machine.SPMPL.Name)
				for i := range t3d.X {
					if t3d.X[i] == 1 {
						continue // single node: no network; T3D node is slower than measured via comm-free run
					}
					if y, ok := sp.YAt(t3d.X[i]); ok && t3d.Y[i] > y {
						return fmt.Sprintf("SP beats T3D at P=%.0f", t3d.X[i]), false, nil
					}
				}
				return "T3D at or below SP for all P > 1", true, nil
			},
		},
		{
			ID:        "F11-mpl-vs-pvme",
			Statement: "MPL is consistently faster than PVMe, with the gap growing with processors (Figure 11)",
			Check: func() (string, bool, error) {
				ch := trace.PaperNS()
				var r2, r16 float64
				for _, p := range []int{2, 16} {
					om, err := machine.SPMPL.Simulate(ch, p, 5)
					if err != nil {
						return "", false, err
					}
					ov, err := machine.SPPVMe.Simulate(ch, p, 5)
					if err != nil {
						return "", false, err
					}
					if p == 2 {
						r2 = ov.Seconds / om.Seconds
					} else {
						r16 = ov.Seconds / om.Seconds
					}
				}
				return fmt.Sprintf("PVMe/MPL = %.2f at P=2, %.2f at P=16", r2, r16), r2 > 1 && r16 > r2 && r16 > 1.2, nil
			},
		},
		{
			ID:        "F11-sp-nonoverlap-small",
			Statement: "on the SP the non-overlapped communication is negligibly small (Figure 11)",
			Check: func() (string, bool, error) {
				o, err := machine.SPMPL.Simulate(trace.PaperNS(), 16, 5)
				if err != nil {
					return "", false, err
				}
				r := o.WaitSeconds / o.BusySeconds
				return fmt.Sprintf("non-overlapped/busy = %.3f at P=16", r), r < 0.12, nil
			},
		},
		{
			ID:        "F13-load-balance",
			Statement: "the application achieves almost perfect load balancing (Figure 13)",
			Check: func() (string, bool, error) {
				busy, err := Fig13()
				if err != nil {
					return "", false, err
				}
				spread := stats.RelSpread(busy)
				// Point counts and cost are distinct metrics even here:
				// the paper's near-flat Figure 13 holds because its
				// per-point cost is near-uniform, so both imbalances of
				// the axial split are reported side by side.
				d, err := decomp.Axial(trace.PaperNS().Nx, 16)
				if err != nil {
					return "", false, err
				}
				got := fmt.Sprintf("busy-time spread (max-min)/mean = %.1f%%, point imbalance = %.1f%%, cost imbalance (uniform profile) = %.1f%%",
					spread*100, d.Imbalance()*100, d.CostImbalance(nil)*100)
				return got, spread < 0.08, nil
			},
		},
		{
			ID:        "F13-weighted-balance",
			Statement: "cost-weighted decomposition restores the busy-time balance when per-point cost is skewed (Figure 13 extension)",
			Check: func() (string, bool, error) {
				uniform, weighted, err := Fig13Skewed(16)
				if err != nil {
					return "", false, err
				}
				su, sw := stats.RelSpread(uniform), stats.RelSpread(weighted)
				got := fmt.Sprintf("busy-time spread %.1f%% uniform -> %.1f%% weighted on a %gx cost ramp",
					su*100, sw*100, Fig13SkewRatio)
				// The acceptance bar of the weighted-decomposition work:
				// at least a 2x spread reduction.
				return got, sw*2 <= su, nil
			},
		},
		{
			ID:        "CONV-early-stop",
			Statement: "a residual-stopped run beats the fixed-5000-step schedule on the co-simulated platforms, collectives included (convergence-control extension)",
			Check: func() (string, bool, error) {
				// Measured on the converging-jet scenario; the schedule the
				// co-simulation prices keeps the paper's step count scaled
				// by the measured convergence fraction and pays for a
				// recursive-doubling allreduce pair every ConvergedCadence
				// steps on the SP's switch and library models.
				fixed, conv, steps, err := ConvergedSpeedup(machine.SPMPL, 16)
				if err != nil {
					return "", false, err
				}
				frac := float64(steps) / float64(ConvergedMaxSteps)
				got := fmt.Sprintf("converged at step %d/%d (%.0f%%); SP@16 %.1fs fixed -> %.1fs converged (%.2fx)",
					steps, ConvergedMaxSteps, frac*100, fixed, conv, fixed/conv)
				ok := steps < ConvergedMaxSteps && frac < 0.9 && conv < fixed
				return got, ok, nil
			},
		},
		{
			ID:        "WIDE-startup-budget",
			Statement: "depth-2 wide halos cut the per-rank startup budget to 5/8 for N-S and 2/3 for Euler (communication-avoiding extension)",
			Check: func() (string, bool, error) {
				ns := float64(trace.PaperNS().RankStartupsAt(2)) / float64(trace.PaperNS().RankStartups())
				eu := float64(trace.PaperEuler().RankStartupsAt(2)) / float64(trace.PaperEuler().RankStartups())
				got := fmt.Sprintf("N-S startups x%.3f, Euler x%.3f at depth 2", ns, eu)
				// Below the 0.7 acceptance bar but well above the 1/k
				// asymptote: the refresh itself still costs startups.
				ok := ns <= 0.7 && eu <= 0.7 && ns > 0.5 && eu > 0.5
				return got, ok, nil
			},
		},
		{
			ID:        "WIDE-ethernet-crossover",
			Statement: "on Ethernet the depth-2 exchange cadence loses at small P to its redundant-shell compute but wins once startup contention dominates, and depth 2 beats deeper shells (communication-avoiding extension)",
			Check: func() (string, bool, error) {
				// The Euler workload carries the exact 4-point inviscid
				// shell; the viscous 12-point shell prices Wide out on
				// this grid, which is itself part of the finding.
				ch := trace.PaperEuler()
				eth := machine.LACE560Ethernet
				f2, err := WideHaloSeconds(eth, ch, 1, 2)
				if err != nil {
					return "", false, err
				}
				w2, err := WideHaloSeconds(eth, ch, 2, 2)
				if err != nil {
					return "", false, err
				}
				f8, err := WideHaloSeconds(eth, ch, 1, 8)
				if err != nil {
					return "", false, err
				}
				w8, err := WideHaloSeconds(eth, ch, 2, 8)
				if err != nil {
					return "", false, err
				}
				d8, err := WideHaloSeconds(eth, ch, 4, 8)
				if err != nil {
					return "", false, err
				}
				got := fmt.Sprintf("Euler P=2 fresh %.0fs vs wide(2) %.0fs; P=8 fresh %.0fs vs wide(2) %.0fs, wide(4) %.0fs", f2, w2, f8, w8, d8)
				ok := w2 >= f2 && w8 < 0.95*f8 && w8 < d8
				return got, ok, nil
			},
		},
		{
			ID:        "WIDE-hier-reduce",
			Statement: "a hierarchical allreduce (4-rank nodes, leaders-only cross-node plan) undercuts the flat plan on Ethernet when the residual is monitored every step (communication-avoiding extension)",
			Check: func() (string, bool, error) {
				ch := trace.PaperNS()
				eth := machine.LACE560Ethernet
				flat, err := HierarchicalReduceSeconds(eth, ch, 1, 1, 16)
				if err != nil {
					return "", false, err
				}
				hier, err := HierarchicalReduceSeconds(eth, ch, 1, 4, 16)
				if err != nil {
					return "", false, err
				}
				got := fmt.Sprintf("N-S Ethernet P=16, reduce every step: flat %.0fs vs hierarchical %.0fs (x%.3f)", flat, hier, hier/flat)
				return got, hier < 0.995*flat, nil
			},
		},
		{
			ID:        "PARAREAL-re-sweep",
			Statement: "parareal time-slicing beats pure spatial scaling only where the network has stopped scaling — winning on Ethernet at a 16-processor budget, losing below the knee and on the scalable switch — and its convergence degrades with Reynolds number (Steiner et al. shape) (parallel-in-time extension)",
			Check: func() (string, bool, error) {
				// The cosimulated crossover at a fixed processor budget:
				// K=4 slices, 2 correction iterations (the iteration count
				// the adaptive coordinator measures at the benchmark
				// tolerance — see BenchmarkAblationParareal), default
				// coarsening. Past the Ethernet knee the fine propagators
				// run at P/K ranks each, below the contention collapse;
				// on the SP's scalable switch the redundant corrections
				// only add cost.
				ch := trace.PaperNS()
				eth := machine.LACE560Ethernet
				sp16, err := eth.Simulate(ch, 16, 5)
				if err != nil {
					return "", false, err
				}
				pp16, err := PararealSeconds(eth, ch, 4, 2, 16)
				if err != nil {
					return "", false, err
				}
				sp8, err := eth.Simulate(ch, 8, 5)
				if err != nil {
					return "", false, err
				}
				pp8, err := PararealSeconds(eth, ch, 4, 2, 8)
				if err != nil {
					return "", false, err
				}
				ibm16, err := machine.SPMPL.Simulate(ch, 16, 5)
				if err != nil {
					return "", false, err
				}
				ibmPP16, err := PararealSeconds(machine.SPMPL, ch, 4, 2, 16)
				if err != nil {
					return "", false, err
				}
				// The measured sweep: iterations to the defect tolerance
				// grow from the diffusive to the paper's Reynolds number,
				// and the second-iteration defect grows monotonically.
				pts, err := PararealReSweep([]float64{100, 500, 1.2e6})
				if err != nil {
					return "", false, err
				}
				got := fmt.Sprintf("Ethernet P=16 spatial %.0fs vs parareal K=4 %.0fs (x%.2f), P=8 x%.2f, SP P=16 x%.2f; iters/defect(2): Re=100 %d/%.2g, Re=500 %d/%.2g, Re=1.2e6 %d/%.2g",
					sp16.Seconds, pp16, pp16/sp16.Seconds, pp8/sp8.Seconds, ibmPP16/ibm16.Seconds,
					pts[0].Iterations, pts[0].EarlyDefect, pts[1].Iterations, pts[1].EarlyDefect, pts[2].Iterations, pts[2].EarlyDefect)
				crossover := pp16 < sp16.Seconds && pp8 > sp8.Seconds && ibmPP16 > ibm16.Seconds
				steiner := pts[0].Iterations <= pts[1].Iterations && pts[1].Iterations <= pts[2].Iterations &&
					pts[0].Iterations < pts[2].Iterations &&
					pts[0].EarlyDefect < pts[1].EarlyDefect && pts[1].EarlyDefect < pts[2].EarlyDefect
				return got, crossover && steiner, nil
			},
		},
		{
			ID:        "F3-atm-fddi",
			Statement: "ATM performs almost identically to ALLNODE-F, and FDDI to ALLNODE-S (Section 7.1)",
			Check: func() (string, bool, error) {
				ch := trace.PaperNS()
				atm, err := machine.LACE590ATM.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				af, err := machine.LACE590AllnodeF.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				fddi, err := machine.LACE560FDDI.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				as, err := machine.LACE560AllnodeS.Simulate(ch, 12, 5)
				if err != nil {
					return "", false, err
				}
				r1 := atm.Seconds / af.Seconds
				r2 := fddi.Seconds / as.Seconds
				got := fmt.Sprintf("ATM/ALLNODE-F = %.2f, FDDI/ALLNODE-S = %.2f at P=12", r1, r2)
				return got, r1 > 0.8 && r1 < 1.2 && r2 > 0.75 && r2 < 1.25, nil
			},
		},
	}
}
