package study

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestProcCounts(t *testing.T) {
	if got := ProcCounts(8); len(got) != 5 || got[4] != 8 {
		t.Fatalf("ProcCounts(8) = %v", got)
	}
	if got := ProcCounts(16); got[len(got)-1] != 16 {
		t.Fatalf("ProcCounts(16) = %v", got)
	}
}

func TestTable1RowsMatchCharacterization(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	ns := rows[0]
	if ns.App != "Navier-Stokes" {
		t.Fatalf("row order: %q", ns.App)
	}
	// The measured startup count must equal the paper characterization.
	if ns.StartupsPerProc != trace.PaperNS().RankStartups() {
		t.Errorf("N-S startups %d != %d", ns.StartupsPerProc, trace.PaperNS().RankStartups())
	}
	// Measured volume (scaled to Nr=100) matches the analytic 128 MB.
	if ns.VolumePerProcMB < 120 || ns.VolumePerProcMB > 135 {
		t.Errorf("N-S volume %g MB", ns.VolumePerProcMB)
	}
	if rows[1].StartupsPerProc != trace.PaperEuler().RankStartups() {
		t.Errorf("Euler startups %d", rows[1].StartupsPerProc)
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2Report()
	if len(tb.Rows) != 5 || len(tb.Headers) != 5 {
		t.Fatalf("table 2 shape: %dx%d", len(tb.Rows), len(tb.Headers))
	}
	// FPs/byte halves as P doubles: row P=4 vs P=8.
	if !strings.Contains(tb.Rows[1][1], "566") {
		t.Errorf("P=2 FPs/byte cell %q", tb.Rows[1][1])
	}
}

func TestFig2SeriesStructure(t *testing.T) {
	ss := Fig2()
	if len(ss) != 2 {
		t.Fatalf("%d series", len(ss))
	}
	for _, s := range ss {
		if s.Len() != 6 { // versions 1-5 plus the overlap restructuring
			t.Fatalf("%s has %d points", s.Name, s.Len())
		}
		// Times must be non-increasing through V5 (each optimization helps).
		for i := 1; i < 5; i++ {
			if s.Y[i] > s.Y[i-1]*1.0001 {
				t.Errorf("%s: V%d slower than V%d", s.Name, i+1, i)
			}
		}
	}
	// Euler is roughly half the work of N-S.
	if r := ss[1].Y[4] / ss[0].Y[4]; r < 0.4 || r > 0.7 {
		t.Errorf("Euler/N-S V5 time ratio %g", r)
	}
}

func TestFigureSeriesConsistency(t *testing.T) {
	lace, err := FigLACE(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(lace) != 3 {
		t.Fatalf("Fig3: %d series", len(lace))
	}
	comp, err := FigLACEComponents(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 5 { // 2 busy + 2 wait + ethernet wait
		t.Fatalf("Fig5: %d series", len(comp))
	}
	vers, err := FigCommVersions(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vers) != 6 {
		t.Fatalf("Fig8: %d series", len(vers))
	}
	plats, err := FigPlatforms(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plats) != 5 {
		t.Fatalf("Fig9: %d series", len(plats))
	}
	libs, err := FigLibraries(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(libs) != 4 {
		t.Fatalf("Fig11: %d series", len(libs))
	}
	// Busy series must fall monotonically with P on every platform.
	for _, s := range []int{0, 2} {
		if !libs[s].Monotone() {
			t.Errorf("library busy series %q not monotone", libs[s].Name)
		}
	}
}

func TestFig1ProducesFlowField(t *testing.T) {
	field, err := Fig1(48, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != 48 || len(field[0]) != 16 {
		t.Fatalf("field shape %dx%d", len(field), len(field[0]))
	}
	// Jet core: rho*u ~ rho_c*Uc = 0.5*2.12 ~ 1.06 at the axis.
	if f := field[5][0]; f < 0.8 || f > 1.3 {
		t.Errorf("core momentum %g", f)
	}
	// Ambient: rho*u ~ 0.1 coflow at the top.
	if f := field[5][15]; f < 0.02 || f > 0.3 {
		t.Errorf("ambient momentum %g", f)
	}
	if _, err := Fig1(4, 4, 1); err == nil {
		t.Error("want error for degenerate grid")
	}
}

func TestFig13Shape(t *testing.T) {
	busy, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(busy) != 16 {
		t.Fatalf("%d processors", len(busy))
	}
	for i, b := range busy {
		if b <= 0 {
			t.Fatalf("proc %d busy %g", i, b)
		}
	}
}

// TestFig13SkewedSpread pins the load-balancing acceptance bar: on a
// skewed per-column cost profile at 8 and 16 ranks, the cost-weighted
// decomposition cuts the co-simulated busy-time spread by at least 2x
// against the uniform split (the real gain is closer to 10x; the
// weighted runs themselves stay bitwise-identical to serial, which
// TestBackendParity asserts separately).
func TestFig13SkewedSpread(t *testing.T) {
	for _, procs := range []int{8, 16} {
		uniform, weighted, err := Fig13Skewed(procs)
		if err != nil {
			t.Fatal(err)
		}
		if len(uniform) != procs || len(weighted) != procs {
			t.Fatalf("procs=%d: got %d uniform / %d weighted ranks", procs, len(uniform), len(weighted))
		}
		su, sw := stats.RelSpread(uniform), stats.RelSpread(weighted)
		t.Logf("procs=%d: spread %.1f%% uniform -> %.1f%% weighted", procs, su*100, sw*100)
		if sw*2 > su {
			t.Errorf("procs=%d: weighted spread %.3f not at least 2x below uniform %.3f", procs, sw, su)
		}
	}
}

func TestTable1ReportRenders(t *testing.T) {
	tb, err := Table1Report()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tb.Render(&sb)
	for _, want := range []string{"Navier-Stokes", "Euler", "80,000", "125"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestConvergedScenario pins the convergence-control study: the
// converging-jet scenario stops well before the step cap, and the
// co-simulated converged schedule beats the fixed one on the SP even
// paying for its collectives.
func TestConvergedScenario(t *testing.T) {
	fixed, conv, steps, err := ConvergedSpeedup(machine.SPMPL, 16)
	if err != nil {
		t.Fatal(err)
	}
	if steps >= ConvergedMaxSteps || steps == 0 {
		t.Fatalf("scenario stopped at step %d of %d", steps, ConvergedMaxSteps)
	}
	if conv >= fixed {
		t.Fatalf("converged schedule %.4g s not below fixed %.4g s", conv, fixed)
	}
	// The speedup tracks the convergence fraction to first order; the
	// collective must not eat more than a third of it.
	frac := float64(steps) / float64(ConvergedMaxSteps)
	if conv > fixed*frac*1.33 {
		t.Errorf("collective overhead implausibly large: conv %.4g vs fixed*frac %.4g", conv, fixed*frac)
	}
}
