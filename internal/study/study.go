// Package study drives every experiment of the paper's evaluation:
// Tables 1-2 and Figures 1-13. Each driver returns structured series
// or tables; cmd/figures renders them and the package's Claims list
// checks the paper's qualitative findings mechanically.
package study

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ProcCounts returns the processor counts swept in the paper's figures.
func ProcCounts(maxP int) []int {
	all := []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	var out []int
	for _, p := range all {
		if p <= maxP {
			out = append(out, p)
		}
	}
	return out
}

// Apps returns the two applications of the study.
func Apps() []trace.Characterization {
	return []trace.Characterization{trace.PaperNS(), trace.PaperEuler()}
}

// charFor returns the characterization for an application name.
func charFor(viscous bool) trace.Characterization {
	if viscous {
		return trace.PaperNS()
	}
	return trace.PaperEuler()
}

// ---------------------------------------------------------------------
// Table 1: application characteristics.

// Table1 reproduces the paper's Table 1 from the analytic schedule and a
// real instrumented parallel run (4 ranks, a few steps, scaled).
type Table1Row struct {
	App             string
	TotalFlopsPaper float64 // paper characterization
	TotalFlopsOurs  float64 // analytic kernel counts from a real run
	StartupsPerProc int64   // interior rank, full run
	VolumePerProcMB float64 // interior rank, one-neighbour convention (as the paper reports)
}

// Table1 measures both applications.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, cfg := range []jet.Config{jet.Paper(), jet.Euler()} {
		ch := charFor(cfg.Viscous)
		// Real instrumented run on a reduced grid (message counts per
		// step are grid-size independent; bytes scale with Nr).
		const steps = 4
		g := grid.MustNew(64, 32, 50, 5)
		r, err := par.NewRunner(cfg, g, par.Options{Procs: 4, Policy: solver.Lagged})
		if err != nil {
			return nil, err
		}
		res := r.Run(steps)
		interior := res.Ranks[1]
		startupsPerStep := interior.Comm.Startups / steps
		// One-neighbour volume convention (paper Table 1 / Table 2):
		// bytes sent across one boundary per step, scaled to Nr=100.
		bytesPerStepOne := interior.Comm.Bytes / steps / 2
		bytesFull := float64(bytesPerStepOne) * float64(ch.Nr) / float64(g.Nr) * float64(ch.Steps)
		// Our analytic flops, scaled to the paper grid and step count.
		flopsPerPointStep := res.TotalFlops() / float64(g.NPoints()*steps)
		rows = append(rows, Table1Row{
			App:             ch.Name,
			TotalFlopsPaper: ch.TotalFlops(),
			TotalFlopsOurs:  flopsPerPointStep * float64(ch.Nx*ch.Nr*ch.Steps),
			StartupsPerProc: startupsPerStep * int64(ch.Steps),
			VolumePerProcMB: bytesFull / 1e6,
		})
	}
	return rows, nil
}

// Table1Report renders Table 1 next to the paper's values.
func Table1Report() (report.Table, error) {
	rows, err := Table1()
	if err != nil {
		return report.Table{}, err
	}
	t := report.Table{
		Title:   "Table 1: Application Characteristics (paper values in parentheses)",
		Headers: []string{"Appln", "Total Comp (FP Ops x1e6)", "Comm/Proc Start-ups", "Volume (MB)"},
	}
	paperStart := map[string]string{"Navier-Stokes": "80,000", "Euler": "60,000"}
	paperVol := map[string]string{"Navier-Stokes": "125", "Euler": "95"}
	paperComp := map[string]string{"Navier-Stokes": "145,000", "Euler": "77,000"}
	for _, r := range rows {
		t.AddRow(r.App,
			fmt.Sprintf("%.0f (%s)", r.TotalFlopsOurs/1e6, paperComp[r.App]),
			fmt.Sprintf("%d (%s)", r.StartupsPerProc, paperStart[r.App]),
			fmt.Sprintf("%.0f (%s)", r.VolumePerProcMB, paperVol[r.App]),
		)
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Table 2: computation-communication ratios.

// Table2Report reproduces the paper's Table 2 (idealized per-processor
// convention: total FLOPs split over P, one-neighbour volume/startups).
func Table2Report() report.Table {
	t := report.Table{
		Title:   "Table 2: Computation-Communication Ratios",
		Headers: []string{"No. of Procs", "FPs/Byte N-S", "FPs/Byte Euler", "FPs/Start-up N-S", "FPs/Start-up Euler"},
	}
	ns, eu := trace.PaperNS(), trace.PaperEuler()
	for _, p := range []int{1, 2, 4, 8, 16} {
		if p == 1 {
			t.AddRow("1", "inf", "inf", "inf", "inf")
			continue
		}
		row := []string{fmt.Sprintf("%d", p)}
		for _, ch := range []trace.Characterization{ns, eu} {
			perProcFlops := ch.TotalFlops() / float64(p)
			row = append(row, fmt.Sprintf("%.0f", perProcFlops/float64(ch.RankBytes())))
		}
		for _, ch := range []trace.Characterization{ns, eu} {
			perProcFlops := ch.TotalFlops() / float64(p)
			row = append(row, fmt.Sprintf("%.0fK", perProcFlops/float64(ch.RankStartups())/1e3))
		}
		t.AddRow(row...)
	}
	return t
}

// ---------------------------------------------------------------------
// Figure 1: the excited-jet flow field.

// Fig1 runs the serial solver and returns the axial momentum field
// (rho*u). The paper used 250x100 and 16,000 steps; the defaults here
// are reduced for turnaround, with full fidelity available via flags.
func Fig1(nx, nr, steps int) ([][]float64, error) {
	g, err := grid.New(nx, nr, 50, 5)
	if err != nil {
		return nil, err
	}
	s, err := solver.NewSerial(jet.Paper(), g)
	if err != nil {
		return nil, err
	}
	s.Run(steps)
	d := s.Diagnose()
	if d.HasNaN {
		return nil, fmt.Errorf("study: Fig1 run produced NaN")
	}
	return s.AxialMomentum(), nil
}

// ---------------------------------------------------------------------
// Figure 2: single-processor code versions.

// Fig2 returns execution-time series (seconds on the RS6000/560) versus
// code version for both applications, including Version 6 (overlap
// restructuring, which on one processor only adds loop overhead).
func Fig2() []stats.Series {
	var out []stats.Series
	for _, ch := range Apps() {
		s := stats.Series{Name: ch.Name}
		w := ch.TotalFlops()
		for _, v := range kernels.Versions() {
			p := cpu.RS560.Evaluate(v, ch.FlopsPerPoint)
			s.Add(float64(v.ID), w/(p.EffMFLOPS*1e6))
		}
		// Version 6: Version 5 plus the overlap restructuring overhead.
		v5 := cpu.RS560.Evaluate(kernels.V(5), ch.FlopsPerPoint)
		s.Add(6, w/(v5.EffMFLOPS*1e6)*1.02)
		out = append(out, s)
	}
	return out
}

// ---------------------------------------------------------------------
// Figures 3-6: LACE networks.

// LACEPlatforms returns the three networks of Figures 3-6.
func LACEPlatforms() []machine.Platform {
	return []machine.Platform{
		machine.LACE590AllnodeF,
		machine.LACE560AllnodeS,
		machine.LACE560Ethernet,
	}
}

// simSeries sweeps processor counts on a platform and returns total,
// busy, and wait series.
func simSeries(p machine.Platform, ch trace.Characterization, version int) (total, busy, wait stats.Series, err error) {
	total = stats.Series{Name: p.Name}
	busy = stats.Series{Name: p.Name + " busy"}
	wait = stats.Series{Name: p.Name + " non-overlapped comm"}
	for _, np := range ProcCounts(p.MaxProcs) {
		o, e := p.Simulate(ch, np, version)
		if e != nil {
			return total, busy, wait, e
		}
		total.Add(float64(np), o.Seconds)
		busy.Add(float64(np), o.BusySeconds)
		wait.Add(float64(np), o.WaitSeconds)
	}
	return total, busy, wait, nil
}

// FigLACE produces the Figure 3 (viscous) or Figure 4 (Euler) series.
func FigLACE(viscous bool) ([]stats.Series, error) {
	ch := charFor(viscous)
	var out []stats.Series
	for _, p := range LACEPlatforms() {
		tot, _, _, err := simSeries(p, ch, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, tot)
	}
	return out, nil
}

// FigLACEComponents produces Figure 5/6: busy and non-overlapped
// communication for ALLNODE-F, ALLNODE-S and the Ethernet wait curve.
func FigLACEComponents(viscous bool) ([]stats.Series, error) {
	ch := charFor(viscous)
	var out []stats.Series
	for _, p := range []machine.Platform{machine.LACE590AllnodeF, machine.LACE560AllnodeS} {
		_, busy, wait, err := simSeries(p, ch, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, busy, wait)
	}
	_, _, ethWait, err := simSeries(machine.LACE560Ethernet, ch, 5)
	if err != nil {
		return nil, err
	}
	out = append(out, ethWait)
	return out, nil
}

// ---------------------------------------------------------------------
// Figures 7-8: communication strategy versions.

// FigCommVersions produces the Version 5/6/7 comparison on ALLNODE-S
// and Ethernet (Figures 7 and 8).
func FigCommVersions(viscous bool) ([]stats.Series, error) {
	ch := charFor(viscous)
	var out []stats.Series
	for _, ver := range []int{5, 6, 7} {
		for _, p := range []machine.Platform{machine.LACE560AllnodeS, machine.LACE560Ethernet} {
			tot, _, _, err := simSeries(p, ch, ver)
			if err != nil {
				return nil, err
			}
			tot.Name = fmt.Sprintf("Version %d %s", ver, p.Name)
			out = append(out, tot)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figures 9-10: all platforms.

// ComparePlatforms returns the five platforms of Figures 9-10.
func ComparePlatforms() []machine.Platform {
	return []machine.Platform{
		machine.YMP,
		machine.SPMPL,
		machine.LACE560AllnodeS,
		machine.T3D,
		machine.LACE590AllnodeF,
	}
}

// FigPlatforms produces Figure 9 (viscous) or 10 (Euler).
func FigPlatforms(viscous bool) ([]stats.Series, error) {
	ch := charFor(viscous)
	var out []stats.Series
	for _, p := range ComparePlatforms() {
		tot, _, _, err := simSeries(p, ch, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, tot)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figures 11-12: MPL vs PVMe on the SP.

// FigLibraries produces the busy and non-overlapped curves for MPL and
// PVMe (Figures 11 and 12).
func FigLibraries(viscous bool) ([]stats.Series, error) {
	ch := charFor(viscous)
	var out []stats.Series
	for _, p := range []machine.Platform{machine.SPMPL, machine.SPPVMe} {
		_, busy, wait, err := simSeries(p, ch, 5)
		if err != nil {
			return nil, err
		}
		busy.Name = "Busy " + p.Lib.Name
		wait.Name = "Non-overlapped " + p.Lib.Name
		out = append(out, busy, wait)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Figure 13: load balance.

// Fig13 returns the simulated per-processor busy times on the SP at 16
// processors for Navier-Stokes.
func Fig13() ([]float64, error) {
	o, err := machine.SPMPL.Simulate(trace.PaperNS(), 16, 5)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(o.PerRank))
	for i, r := range o.PerRank {
		out[i] = r.Busy
	}
	return out, nil
}

// Fig13SkewRatio is the per-column cost skew of the weighted-balance
// study: a linear ramp whose last column costs 4x the first — the
// shape a refined shear layer or a boundary-heavy scheme produces.
const Fig13SkewRatio = 4.0

// Fig13Skewed replays the Figure 13 scenario on a skewed per-column
// cost profile at procs processors: the same SP co-simulation run
// twice, once on the paper's uniform point-count decomposition and
// once on the cost-weighted decomposition built from the identical
// profile. Balanced point counts no longer balance busy times; the
// weighted split restores the paper's near-flat Figure 13.
func Fig13Skewed(procs int) (uniform, weighted []float64, err error) {
	ch := trace.PaperNS()
	ch.ColCost = trace.RampCost(ch.Nx, Fig13SkewRatio)
	run := func(d *decomp.Decomposition) ([]float64, error) {
		o, err := machine.SPMPL.SimulateDecomp(ch, d, 5, machine.DefaultSimSteps)
		if err != nil {
			return nil, err
		}
		busy := make([]float64, len(o.PerRank))
		for i, r := range o.PerRank {
			busy[i] = r.Busy
		}
		return busy, nil
	}
	du, err := decomp.Axial(ch.Nx, procs)
	if err != nil {
		return nil, nil, err
	}
	if uniform, err = run(du); err != nil {
		return nil, nil, err
	}
	dw, err := decomp.WeightedAxial(ch.Nx, procs, ch.ColCost)
	if err != nil {
		return nil, nil, err
	}
	if weighted, err = run(dw); err != nil {
		return nil, nil, err
	}
	return uniform, weighted, nil
}

// ---------------------------------------------------------------------
// Convergence-controlled runs.

// Converged-run scenario: the paper marches every production run a
// fixed 5000 steps, converged or not. The convergence controller
// instead monitors the L2 residual every ReduceEvery steps through the
// global-reduction layer and stops at StopTol. The scenario below is a
// genuinely converging flow — the unexcited jet at a viscous Reynolds
// number, which relaxes monotonically to a steady state (the paper's
// Re=1.2e6 excited jet is deliberately unsteady) — measured on a
// reduced grid for turnaround.
const (
	// ConvergedReynolds is the scenario's Reynolds number: viscous
	// enough that the shear layer damps instead of rolling up.
	ConvergedReynolds = 500
	// ConvergedTol is the stop tolerance on the L2 residual.
	ConvergedTol = 3e-3
	// ConvergedCadence is the reduction cadence (steps per collective).
	ConvergedCadence = 40
	// ConvergedMaxSteps caps the measured run.
	ConvergedMaxSteps = 2000
)

// ConvergedConfig returns the converging-jet configuration.
func ConvergedConfig() jet.Config {
	cfg := jet.Paper()
	cfg.Eps = 0
	cfg.Reynolds = ConvergedReynolds
	return cfg
}

// ConvergedSteps measures the scenario on a 64x32 grid: the step the
// residual controller stops at, out of ConvergedMaxSteps.
func ConvergedSteps() (solver.ConvergedRun, error) {
	g, err := grid.New(64, 32, 50, 5)
	if err != nil {
		return solver.ConvergedRun{}, err
	}
	s, err := solver.NewSerial(ConvergedConfig(), g)
	if err != nil {
		return solver.ConvergedRun{}, err
	}
	cr := s.RunControlled(ConvergedMaxSteps, solver.Control{
		StopTol:     ConvergedTol,
		ReduceEvery: ConvergedCadence,
	})
	if s.Diagnose().HasNaN {
		return cr, fmt.Errorf("study: converged-run scenario produced NaN")
	}
	return cr, nil
}

// ConvergedSpeedup co-simulates the fixed-5000-step schedule against
// the residual-stopped schedule on one platform: the converged run
// carries the measured convergence fraction over to the paper's step
// count and pays for its collectives (ReduceEvery cadence, recursive
// doubling over the message library and network models), the fixed run
// marches all 5000 steps collective-free. Returns both times and the
// stopped step count.
func ConvergedSpeedup(p machine.Platform, procs int) (fixedSec, convSec float64, steps int, err error) {
	cr, err := ConvergedSteps()
	if err != nil {
		return 0, 0, 0, err
	}
	ch := trace.PaperNS()
	fixed, err := p.Simulate(ch, procs, 5)
	if err != nil {
		return 0, 0, 0, err
	}
	conv := ch
	conv.Steps = ch.Steps * cr.Steps / ConvergedMaxSteps
	conv.ReduceEvery = ConvergedCadence
	co, err := p.Simulate(conv, procs, 5)
	if err != nil {
		return 0, 0, 0, err
	}
	return fixed.Seconds, co.Seconds, cr.Steps, nil
}

// ---------------------------------------------------------------------
// Communication-avoiding exchange: wide halos and hierarchical
// collectives, priced on the 1995 platforms.

// WideHaloSeconds co-simulates the application under the Wide(depth)
// exchange cadence: ranks carry a (depth-1)-deep redundant ghost shell,
// exchange every depth-th step, and pay for the shell with redundant
// compute. Depth 1 is the per-stage fresh schedule.
func WideHaloSeconds(p machine.Platform, ch trace.Characterization, depth, procs int) (float64, error) {
	ch.HaloDepth = depth
	o, err := p.Simulate(ch, procs, 5)
	if err != nil {
		return 0, err
	}
	return o.Seconds, nil
}

// WideHaloSweep returns one execution-time series per halo depth on a
// platform, sweeping the paper's processor counts. Points whose
// redundant shell does not fit the decomposition (narrow slabs at high
// P and deep shells) are skipped rather than erroring, so a deep-shell
// series simply ends where it stops being feasible.
func WideHaloSweep(p machine.Platform, ch trace.Characterization, depths []int) ([]stats.Series, error) {
	var out []stats.Series
	for _, depth := range depths {
		s := stats.Series{Name: fmt.Sprintf("%s wide(%d)", p.Name, depth)}
		ext := trace.WideExtension(ch.Viscous, depth)
		for _, np := range ProcCounts(p.MaxProcs) {
			if np > 1 && ch.Nx/np < ext+2 {
				continue // shell + exchange window exceed the narrowest slab
			}
			sec, err := WideHaloSeconds(p, ch, depth, np)
			if err != nil {
				return nil, err
			}
			s.Add(float64(np), sec)
		}
		out = append(out, s)
	}
	return out, nil
}

// HierarchicalReduceSeconds co-simulates a convergence-monitored run
// (ReduceEvery cadence) with the allreduce either flat (group 1) or
// hierarchical over shared-memory nodes of the given size: members
// combine locally for free, and only node leaders run the cross-node
// recursive-doubling plan.
func HierarchicalReduceSeconds(p machine.Platform, ch trace.Characterization, every, group, procs int) (float64, error) {
	ch.ReduceEvery = every
	ch.ReduceGroup = group
	o, err := p.Simulate(ch, procs, 5)
	if err != nil {
		return 0, err
	}
	return o.Seconds, nil
}
