package study

import "testing"

// TestClaims checks every mechanically verifiable finding of the paper
// against the reproduction. This is the EXPERIMENTS.md backbone.
func TestClaims(t *testing.T) {
	for _, c := range Claims() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			got, ok, err := c.Check()
			if err != nil {
				t.Fatalf("%s: %v", c.ID, err)
			}
			t.Logf("%s\n  paper: %s\n  ours:  %s", c.ID, c.Statement, got)
			if !ok {
				t.Errorf("claim not reproduced: %s (got %s)", c.Statement, got)
			}
		})
	}
}
