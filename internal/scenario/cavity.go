package scenario

import (
	"fmt"

	"repro/internal/gas"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// CavityR0 is the radial offset of the cavity grid. The axisymmetric
// kernels keep their 1/r metric terms; placing the unit-square domain
// at r in [R0, R0+1] with R0 >> 1 makes every metric contribution
// O(1/R0) — the planar limit — without touching a single kernel. At
// R0 = 1e4 the curvature terms sit at 1e-4 of the planar fluxes, far
// below the truncation error of any grid this scenario runs on.
const CavityR0 = 1e4

// CavityReynolds is the lid Reynolds number rho*ULid*L/mu implied by
// the pinned configuration (jet.Config's Mu normalizes by the jet
// *diameter* 2, so Reynolds: 200 below yields a unit-cavity Re of 100
// — the classic Ghia, Ghia & Shin (1982) validation point).
const CavityReynolds = 100

// cavityScenario is the lid-driven cavity: four no-slip walls, the top
// one sliding at ULid = cfg.UCenter(). No inflow eigenfunction, no
// outflow — the wall-mirror ghost machinery carries every side.
type cavityScenario struct{}

func (cavityScenario) Name() string { return "cavity" }

func (cavityScenario) Describe() string {
	return "lid-driven square cavity, Re 100 (Ghia et al. reference)"
}

// Config pins the cavity's validated parameter set and ignores base:
// the scenario is a fixed benchmark problem, not a parameter study.
// MachCenter 0.2 keeps the lid comfortably subsonic (compressibility
// O(M^2) = 4% against the incompressible reference data) while leaving
// the acoustic CFL limit workable.
func (cavityScenario) Config(jet.Config) jet.Config {
	return jet.Config{
		MachCenter: 0.2,   // lid Mach number
		TempRatio:  1,     // isothermal walls at ambient temperature
		Theta:      0.125, // unused (no shear-layer profile); kept valid
		Strouhal:   0.125, // unused (no excitation)
		Eps:        0,     // no inflow excitation
		UCoflow:    0,
		Reynolds:   2 * CavityReynolds, // diameter-2 normalization, see CavityReynolds
		Viscous:    true,
	}
}

// Grid is the unit square offset to the planar limit. With staggered
// radial nodes y_j = (j+0.5)*Dr, nr resolves the wall-normal direction
// and the lid plane sits half a cell above row nr-1.
func (cavityScenario) Grid(nx, nr int) (*grid.Grid, error) {
	return grid.NewOffset(nx, nr, 1, 1, CavityR0)
}

func (cavityScenario) Problem(cfg jet.Config, g *grid.Grid) (*solver.Problem, error) {
	if g.R0 == 0 {
		return nil, fmt.Errorf("scenario: cavity requires an offset grid (grid.NewOffset); got R0=0")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ulid := cfg.UCenter()
	return &solver.Problem{
		Name: "cavity",
		Wall: solver.WallSpec{Left: true, Right: true, Bottom: true, Top: true, ULid: ulid},
		// Impulsive start: quiescent ambient fluid, lid already moving.
		Init: func(cfg jet.Config, gm gas.Model, x, r float64) gas.Primitive {
			return gas.Primitive{Rho: 1, U: 0, V: 0, P: gm.AmbientPressure()}
		},
	}, nil
}

// Convergence: the cavity is a closed wall-driven flow — the lid pumps
// work into the energy forever, so the conserved-state residual floors
// at the dissipation rate while the velocity field freezes. Stop on
// velocity steadiness instead (the rule the Ghia validation test used
// inline before the registry owned it).
func (cavityScenario) Convergence() Criterion { return ConvergeSteadiness }

func (cavityScenario) Claims() []string {
	return []string{"CAV-ghia-centerline", "CAV-parity"}
}

func init() { Register(cavityScenario{}) }

// GhiaRe100 is the u-velocity along the vertical centerline x = 0.5 of
// the Re=100 lid-driven cavity from Ghia, Ghia & Shin, "High-Re
// solutions for incompressible flow using the Navier-Stokes equations
// and a multigrid method", J. Comput. Phys. 48 (1982), Table I
// (u normalized by the lid speed, y measured from the stationary
// bottom wall). The scenario validation test interpolates the solver's
// centerline profile onto these stations.
var GhiaRe100 = []struct{ Y, U float64 }{
	{0.0547, -0.03717},
	{0.0625, -0.04192},
	{0.0703, -0.04775},
	{0.1016, -0.06434},
	{0.1719, -0.10150},
	{0.2813, -0.15662},
	{0.4531, -0.21090},
	{0.5000, -0.20581},
	{0.6172, -0.13641},
	{0.7344, 0.00332},
	{0.8516, 0.23151},
	{0.9531, 0.68717},
	{0.9609, 0.73722},
	{0.9688, 0.78871},
	{0.9766, 0.84123},
}
