package scenario

import (
	"sync"
	"testing"
)

// TestConcurrentResolve hammers the global scenario registry from many
// goroutines (run with -race) — the multi-tenant service resolves
// scenarios concurrently, so the table must be lock-guarded. Write
// races are exercised in internal/registry on private instances, to
// keep the global name set other tests pin unpolluted.
func TestConcurrentResolve(t *testing.T) {
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, name := range Names() {
					if _, err := Get(name); err != nil {
						t.Errorf("registered scenario %q unresolvable: %v", name, err)
						return
					}
				}
				if _, err := Get("nonesuch"); err == nil {
					t.Error("unknown scenario resolved")
					return
				}
			}
		}()
	}
	wg.Wait()
}
