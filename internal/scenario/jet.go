package scenario

import (
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// jetScenario is the excited axisymmetric jet of the source paper —
// registration #1. Its Problem is entirely zero-valued, so every
// backend takes exactly the built-in code paths: eigenfunction inflow,
// axis mirror, far-field top, characteristic outflow.
type jetScenario struct{}

func (jetScenario) Name() string { return "jet" }

func (jetScenario) Describe() string {
	return "excited axisymmetric jet (the source paper's flow)"
}

// Config honors the caller's physical parameters unchanged — the jet is
// the one scenario whose physics the flags control.
func (jetScenario) Config(base jet.Config) jet.Config { return base }

// Grid reproduces the paper's 50x5 jet-diameter domain at the requested
// resolution (the 250x100 production grid is Grid(250, 100)).
func (jetScenario) Grid(nx, nr int) (*grid.Grid, error) {
	return grid.New(nx, nr, 50, 5)
}

func (jetScenario) Problem(cfg jet.Config, g *grid.Grid) (*solver.Problem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &solver.Problem{Name: "jet"}, nil
}

// Convergence: the jet is an open flow — the residual controller works.
func (jetScenario) Convergence() Criterion { return ConvergeResidual }

func (jetScenario) Claims() []string {
	return []string{
		"T1-compute-ratio", "F2-mflops", "F13-weighted-balance", "CONV-early-stop",
	}
}

func init() { Register(jetScenario{}) }
