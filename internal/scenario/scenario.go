// Package scenario is the flow-problem registry, mirroring the backend
// registry: each Scenario binds the general numerics substrate
// (flux/scheme/bc/grid/solver) to one physical flow — domain geometry,
// physical configuration, boundary conditions, initial state, and the
// study claims it grounds. The excited jet of the source paper is
// registration #1; the lid-driven cavity and the channel flow exercise
// wall-bounded and inflow–outflow boundary compositions on the same
// kernels. Every registered scenario runs on every registered backend,
// and the backend parity sweep pins each one bitwise against serial.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/registry"
	"repro/internal/solver"
)

// Criterion selects the monitored quantity a convergence-controlled run
// of a scenario stops on. Open flows drive the conserved-state residual
// to zero; closed wall-driven flows never do (the energy keeps absorbing
// wall work at the dissipation rate) and must watch the velocity field
// instead — the distinction PR 7 documented in DESIGN §4a and this
// registry now owns per scenario.
type Criterion int

const (
	// ConvergeResidual stops on the L2 RMS rate of change of the
	// conserved state (solver.Control.StopTol).
	ConvergeResidual Criterion = iota
	// ConvergeSteadiness stops on the maximum pointwise velocity change
	// rate (solver.Control.SteadyTol).
	ConvergeSteadiness
)

// String names the criterion's flag: -tol or -steady-tol.
func (c Criterion) String() string {
	if c == ConvergeSteadiness {
		return "steadiness (-steady-tol)"
	}
	return "residual (-tol)"
}

// Scenario describes one registered flow problem end to end.
type Scenario interface {
	// Name is the registry key (the -scenario flag value).
	Name() string
	// Describe is a one-line summary for listings and docs.
	Describe() string
	// Config adapts the base physical configuration. The jet honors the
	// caller's parameters unchanged; the wall-bounded scenarios pin
	// their own validated parameter sets and ignore base.
	Config(base jet.Config) jet.Config
	// Grid builds the domain for the requested resolution. The returned
	// grid must be immutable after construction: core shares one grid
	// across concurrent runs of the same scenario and resolution.
	Grid(nx, nr int) (*grid.Grid, error)
	// Problem binds the scenario's boundary conditions and initial
	// state to the solver (see solver.Problem); the returned problem's
	// zero fields select the built-in jet treatments.
	Problem(cfg jet.Config, g *grid.Grid) (*solver.Problem, error)
	// Convergence names the stop criterion a convergence-controlled
	// run of this scenario should monitor.
	Convergence() Criterion
	// Claims lists the study-claim or validation identifiers this
	// scenario grounds.
	Claims() []string
}

// scenarios is the registry table — the mutex-guarded registry type,
// not a bare map, because a serving process resolves scenarios from
// concurrently executing runs (see internal/registry).
var scenarios = registry.New[Scenario]()

// Register adds a scenario to the registry; a duplicate name panics
// (registration is init-time wiring, exactly like the backends).
func Register(s Scenario) {
	if !scenarios.Add(s.Name(), s) {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name()))
	}
}

// Get looks a scenario up by name; unknown names list the registry.
func Get(name string) (Scenario, error) {
	if s, ok := scenarios.Get(name); ok {
		return s, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (available: %s)", name, strings.Join(Names(), ", "))
}

// Names returns the sorted registered scenario names.
func Names() []string {
	return scenarios.Names()
}
