package scenario

import (
	"repro/internal/bc"
	"repro/internal/gas"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// channelScenario is laminar developing pipe flow: a steady parabolic
// Poiseuille profile enters on the left, the right boundary keeps the
// jet's characteristic outflow, the bottom is the symmetry axis, and
// the top is a stationary no-slip wall. It exercises the inflow–outflow
// composition with a wall — the one pairing neither the jet (no walls)
// nor the cavity (no inflow) covers.
type channelScenario struct{}

func (channelScenario) Name() string { return "channel" }

func (channelScenario) Describe() string {
	return "inflow-outflow pipe flow with a no-slip outer wall"
}

// Config pins the channel's parameter set and ignores base. MachCenter
// 0.5 keeps the characteristic outflow firmly subsonic; Reynolds 1000
// under jet.Config's diameter-2 normalization gives mu = 1e-3, viscous
// enough that the wall boundary layer grows visibly over the domain.
func (channelScenario) Config(jet.Config) jet.Config {
	return jet.Config{
		MachCenter: 0.5, // centerline (axis) Mach number
		TempRatio:  1,
		Theta:      0.125, // unused (no shear-layer profile); kept valid
		Strouhal:   0.125, // unused (no excitation)
		Eps:        0,
		UCoflow:    0,
		Reynolds:   1000,
		Viscous:    true,
	}
}

// Grid is a pipe of length 10 and radius 1: the axis at r=0, the wall
// plane at r=1 half a cell beyond the last staggered row.
func (channelScenario) Grid(nx, nr int) (*grid.Grid, error) {
	return grid.New(nx, nr, 10, 1)
}

// poiseuille evaluates the inflow profile u(r) = Umax*(1 - (r/Lr)^2).
func poiseuille(cfg jet.Config, gm gas.Model, r, lr float64) gas.Primitive {
	s := r / lr
	return gas.Primitive{
		Rho: 1,
		U:   cfg.UCenter() * (1 - s*s),
		V:   0,
		P:   gm.AmbientPressure(),
	}
}

// channelSource is a time-independent Dirichlet inflow column
// implementing bc.Source.
type channelSource struct{ col []gas.Primitive }

func (s channelSource) Column(_ float64, out []gas.Primitive) { copy(out, s.col) }

func (channelScenario) Problem(cfg jet.Config, g *grid.Grid) (*solver.Problem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lr := g.Lr
	return &solver.Problem{
		Name: "channel",
		Wall: solver.WallSpec{Top: true}, // stationary outer wall (ULid 0)
		Inflow: func(cfg jet.Config, gm gas.Model, r []float64) bc.Source {
			col := make([]gas.Primitive, len(r))
			for j, rj := range r {
				col[j] = poiseuille(cfg, gm, rj, lr)
			}
			return channelSource{col: col}
		},
		// The initial state is the inflow profile swept downstream: close
		// to the viscous steady state, so short runs stay well-behaved.
		Init: func(cfg jet.Config, gm gas.Model, x, r float64) gas.Primitive {
			return poiseuille(cfg, gm, r, lr)
		},
	}, nil
}

// Convergence: open inflow-outflow flow — the residual controller works.
func (channelScenario) Convergence() Criterion { return ConvergeResidual }

func (channelScenario) Claims() []string {
	return []string{"CHAN-parity", "CHAN-mass-flux"}
}

func init() { Register(channelScenario{}) }
