package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func TestRegistryNames(t *testing.T) {
	want := []string{"cavity", "channel", "jet"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		sc, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if sc.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, sc.Name())
		}
		if sc.Describe() == "" {
			t.Errorf("%s: empty description", name)
		}
		if len(sc.Claims()) == 0 {
			t.Errorf("%s: no claims", name)
		}
	}
}

func TestGetUnknownListsAvailable(t *testing.T) {
	_, err := Get("vortex")
	if err == nil {
		t.Fatal("Get(vortex) succeeded")
	}
	for _, name := range append(Names(), "vortex") {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(jetScenario{})
}

// TestJetScenarioIsTransparent pins the jet registration to the
// pre-registry behaviour: caller's physics passed through untouched,
// the paper's 50x5 domain, and a problem whose zero fields select every
// built-in boundary treatment.
func TestJetScenarioIsTransparent(t *testing.T) {
	sc, _ := Get("jet")
	base := jet.Paper()
	if got := sc.Config(base); got != base {
		t.Errorf("jet Config rewrote the base: %+v", got)
	}
	g, err := sc.Grid(64, 24)
	if err != nil {
		t.Fatal(err)
	}
	if g.Lx != 50 || g.Lr != 5 || g.R0 != 0 {
		t.Errorf("jet grid geometry = %gx%g R0=%g, want 50x5 R0=0", g.Lx, g.Lr, g.R0)
	}
	prob, err := sc.Problem(base, g)
	if err != nil {
		t.Fatal(err)
	}
	if prob.Walls().Any() || prob.Inflow != nil || prob.Init != nil {
		t.Errorf("jet problem is not zero-valued: %+v", prob)
	}
}

func TestCavityRequiresOffsetGrid(t *testing.T) {
	sc, _ := Get("cavity")
	cfg := sc.Config(jet.Config{})
	g := grid.MustNew(16, 16, 1, 1) // R0 = 0: not a cavity grid
	if _, err := sc.Problem(cfg, g); err == nil {
		t.Fatal("cavity accepted a grid without the radial offset")
	}
}

// newSerial builds the serial solver for a registered scenario at the
// given resolution.
func newSerial(t *testing.T, name string, nx, nr int) (*solver.Serial, jet.Config, *grid.Grid) {
	t.Helper()
	sc, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(jet.Paper())
	g, err := sc.Grid(nx, nr)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := sc.Problem(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := solver.NewSerialProblem(cfg, prob, g)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfg, g
}

// TestScenarioShortRuns marches each wall-bounded scenario a few dozen
// steps and checks the fields stay finite and physical — the cheap
// guard that the wall ghosts and inflow hooks compose into a stable
// scheme before the expensive validation below.
func TestScenarioShortRuns(t *testing.T) {
	for _, name := range []string{"cavity", "channel"} {
		t.Run(name, func(t *testing.T) {
			s, _, _ := newSerial(t, name, 32, 16)
			s.Run(50)
			d := s.Diagnose()
			if d.HasNaN {
				t.Fatalf("%s: NaN after 50 steps", name)
			}
			if d.MinRho <= 0 || d.MinP <= 0 {
				t.Fatalf("%s: unphysical state rho=%g p=%g", name, d.MinRho, d.MinP)
			}
		})
	}
}

// TestChannelHoldsInflowProfile checks the channel's Dirichlet inflow:
// after marching, the inflow column still carries the parabolic
// profile it was pinned to (claim CHAN-mass-flux: the inflow mass flux
// is an invariant of the run, not a drifting quantity).
func TestChannelHoldsInflowProfile(t *testing.T) {
	s, cfg, g := newSerial(t, "channel", 32, 16)
	s.Run(50)
	uc := cfg.UCenter()
	for j := 0; j < g.Nr; j++ {
		r := g.R[j]
		want := uc * (1 - r*r/(g.Lr*g.Lr))
		rho := s.Q[flux.IRho].At(0, j)
		got := s.Q[flux.IMx].At(0, j) / rho
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("inflow u(%g) = %g, want %g", r, got, want)
		}
	}
}

// centerlineU samples u/ULid along the vertical centerline column ic.
func centerlineU(s *solver.Serial, ic int, ulid float64, out []float64) {
	for j := range out {
		out[j] = s.Q[flux.IMx].At(ic, j) / s.Q[flux.IRho].At(ic, j) / ulid
	}
}

// TestCavityGhiaCenterline is the physics validation of the cavity
// scenario: march the Re=100 lid-driven cavity to steady state and
// compare the u-velocity along the vertical centerline against the
// Ghia, Ghia & Shin (1982) reference (claim CAV-ghia-centerline).
//
// The march is fixed-length with an explicit steadiness check rather
// than residual-controlled: the cavity is a closed adiabatic box, so
// the moving lid does work on the fluid forever and the global L2
// residual floors at the viscous dissipation rate (the energy field
// keeps absorbing heat at a constant rate long after the velocity
// field is steady). Velocity steadiness is the convergence criterion
// that matches what the reference data describes.
//
// The solver is weakly compressible (lid Mach 0.2) on a 48x48-cell
// grid against an incompressible 129x129 multigrid reference, so the
// comparison is tolerance-based, not tight: 0.03 in u/ULid across all
// fifteen stations (observed worst deviation ~0.015).
func TestCavityGhiaCenterline(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state cavity run in -short mode")
	}
	// 49 axial nodes put a node exactly on the centerline x = 0.5.
	s, cfg, g := newSerial(t, "cavity", 49, 48)
	ic := (g.Nx - 1) / 2
	if x := g.X[ic]; math.Abs(x-0.5) > 1e-12 {
		t.Fatalf("centerline column %d sits at x=%g, not 0.5", ic, x)
	}
	ulid := cfg.UCenter()
	u := make([]float64, g.Nr)
	prev := make([]float64, g.Nr)
	s.Run(28000)
	centerlineU(s, ic, ulid, prev)
	s.Run(2000)
	centerlineU(s, ic, ulid, u)
	if d := s.Diagnose(); d.HasNaN {
		t.Fatal("cavity diverged")
	}
	for j := range u {
		if d := math.Abs(u[j] - prev[j]); d > 1e-3 {
			t.Fatalf("centerline not steady: |du/ULid| = %g at row %d after 30000 steps", d, j)
		}
	}
	// y_j = (j+0.5)*Dr: wall-normal coordinate of the staggered rows,
	// measured from the bottom wall like Ghia's y.
	y := make([]float64, g.Nr)
	for j := range y {
		y[j] = (float64(j) + 0.5) * g.Dr
	}
	const tol = 0.03
	worst := 0.0
	for _, ref := range GhiaRe100 {
		// Linear interpolation between the bracketing staggered rows
		// (every station lies strictly inside [y_0, y_{Nr-1}]).
		j := int(ref.Y/g.Dr - 0.5)
		w := (ref.Y - y[j]) / g.Dr
		got := (1-w)*u[j] + w*u[j+1]
		diff := math.Abs(got - ref.U)
		if diff > worst {
			worst = diff
		}
		if diff > tol {
			t.Errorf("u(y=%.4f)/ULid = %+.5f, Ghia %+.5f (|diff| %.4f > %.3f)",
				ref.Y, got, ref.U, diff, tol)
		}
	}
	t.Logf("cavity steady after 30000 steps (t=%.1f); worst centerline deviation %.4f", s.Time, worst)
}

// FuzzScenarioResolution drives every registered scenario through
// arbitrary resolutions: Grid either rejects the resolution or yields a
// grid on which Config validates and Problem builds — no panics, no
// invalid configurations escaping.
func FuzzScenarioResolution(f *testing.F) {
	f.Add(64, 24)
	f.Add(8, 4)
	f.Add(0, 0)
	f.Add(-3, 7)
	f.Add(250, 100)
	for _, seed := range []int{1 << 20, 3, 49} {
		f.Add(seed, seed)
	}
	f.Fuzz(func(t *testing.T, nx, nr int) {
		if nx > 1<<12 || nr > 1<<12 {
			t.Skip("allocation guard")
		}
		for _, name := range Names() {
			sc, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sc.Config(jet.Paper())
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s: invalid pinned config: %v", name, err)
			}
			g, err := sc.Grid(nx, nr)
			if err != nil {
				continue // rejected resolution: the valid outcome
			}
			if g.Nx != nx || g.Nr != nr {
				t.Fatalf("%s: Grid(%d,%d) returned %dx%d", name, nx, nr, g.Nx, g.Nr)
			}
			if _, err := sc.Problem(cfg, g); err != nil {
				t.Fatalf("%s: Problem on accepted grid %dx%d: %v", name, nx, nr, err)
			}
		}
	})
}
