package jet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gas"
)

func TestPaperParameters(t *testing.T) {
	c := Paper()
	if c.MachCenter != 1.5 {
		t.Errorf("Mc = %g", c.MachCenter)
	}
	if c.TempRatio != 0.5 || c.Theta != 0.125 || c.Strouhal != 0.125 || c.Eps != 1e-4 {
		t.Errorf("restored parameters: %+v", c)
	}
	if c.Reynolds != 1.2e6 {
		t.Errorf("Re = %g", c.Reynolds)
	}
	if !c.Viscous || Euler().Viscous {
		t.Error("viscous flags")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.MachCenter = 0 },
		func(c *Config) { c.TempRatio = -1 },
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.Reynolds = 0 },
	} {
		c := Paper()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("want validation error for %+v", c)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Paper()
	// Tc = 1/TempRatio = 2; Uc = Mc*sqrt(Tc) = 1.5*sqrt(2).
	if got := c.TempCenter(); got != 2 {
		t.Errorf("Tc = %g", got)
	}
	if got, want := c.UCenter(), 1.5*math.Sqrt2; math.Abs(got-want) > 1e-14 {
		t.Errorf("Uc = %g, want %g", got, want)
	}
	// omega = pi*St*Uc.
	if got, want := c.Omega(), math.Pi*0.125*1.5*math.Sqrt2; math.Abs(got-want) > 1e-14 {
		t.Errorf("omega = %g, want %g", got, want)
	}
	gm := gas.Air(0)
	if mu := Euler().Mu(gm); mu != 0 {
		t.Errorf("Euler mu = %g", mu)
	}
	mu := c.Mu(gm)
	// mu = rho_c*Uc*D/Re with rho_c = 1/Tc = 0.5, D = 2.
	want := 0.5 * c.UCenter() * 2 / 1.2e6
	if math.Abs(mu-want) > 1e-18 {
		t.Errorf("mu = %g, want %g", mu, want)
	}
}

func TestShapeFunction(t *testing.T) {
	c := Paper()
	if g := c.Shape(0); g < 0.95 {
		t.Errorf("core shape %g, want ~1", g)
	}
	if g := c.Shape(5); g > 0.05 {
		t.Errorf("ambient shape %g, want ~0", g)
	}
	if g := c.Shape(1); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("lip-line shape %g, want 0.5", g)
	}
	// Monotone decreasing in r.
	prev := c.Shape(0)
	for r := 0.1; r <= 5; r += 0.1 {
		g := c.Shape(r)
		if g > prev+1e-12 {
			t.Fatalf("shape not monotone at r=%g", r)
		}
		prev = g
	}
}

func TestMeanProfiles(t *testing.T) {
	c := Paper()
	gamma := 1.4
	if u := c.MeanU(0); math.Abs(u-c.UCenter()) > 0.01 {
		t.Errorf("centerline U = %g", u)
	}
	if u := c.MeanU(5); math.Abs(u-c.UCoflow) > 0.01 {
		t.Errorf("ambient U = %g", u)
	}
	// Temperature: Tc at the axis, T_inf far out, and a Crocco-Busemann
	// bump above the linear interpolation inside the shear layer.
	if T := c.MeanT(gamma, 0); math.Abs(T-2) > 0.02 {
		t.Errorf("centerline T = %g", T)
	}
	if T := c.MeanT(gamma, 5); math.Abs(T-1) > 0.01 {
		t.Errorf("ambient T = %g", T)
	}
	lin := 1 + (2-1)*c.Shape(1)
	if T := c.MeanT(gamma, 1); T <= lin {
		t.Errorf("no Crocco-Busemann bump: T(1) = %g <= %g", T, lin)
	}
	// Density from constant pressure: rho = 1/T.
	if rho := c.MeanRho(gamma, 0); math.Abs(rho-0.5) > 0.01 {
		t.Errorf("centerline rho = %g", rho)
	}
}

func TestEigenfunctionEnvelopeConcentratedAtLip(t *testing.T) {
	c := Paper()
	e := NewEigenfunction(c, 1.4)
	_, duLip, _, _ := e.Perturb(1, 0)
	_, duCore, _, _ := e.Perturb(0, 0)
	_, duFar, _, _ := e.Perturb(4, 0)
	if math.Abs(duLip) <= math.Abs(duCore) || math.Abs(duLip) <= math.Abs(duFar) {
		t.Errorf("excitation not concentrated at the lip: %g vs %g, %g", duLip, duCore, duFar)
	}
}

// Property: perturbations are bounded by eps times the velocity scale,
// and are periodic with period 2*pi/omega.
func TestEigenfunctionBoundedPeriodic(t *testing.T) {
	c := Paper()
	e := NewEigenfunction(c, 1.4)
	period := 2 * math.Pi / c.Omega()
	f := func(rRaw, tRaw float64) bool {
		r := math.Abs(math.Mod(rRaw, 5))
		tt := math.Mod(tRaw, 100)
		if math.IsNaN(r) || math.IsNaN(tt) {
			return true
		}
		drho, du, dv, dp := e.Perturb(r, tt)
		bound := c.Eps * c.UCenter() * 1.01
		if math.Abs(du) > bound || math.Abs(dv) > bound {
			return false
		}
		if math.Abs(dp) > c.Eps || math.Abs(drho) > c.Eps {
			return false
		}
		d2rho, d2u, d2v, d2p := e.Perturb(r, tt+period)
		tol := 1e-9 * c.Eps
		return math.Abs(drho-d2rho) < tol && math.Abs(du-d2u) < tol &&
			math.Abs(dv-d2v) < tol && math.Abs(dp-d2p) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInflowStateIsPhysical(t *testing.T) {
	c := Paper()
	e := NewEigenfunction(c, 1.4)
	for r := 0.05; r < 5; r += 0.23 {
		for tt := 0.0; tt < 30; tt += 1.7 {
			w := e.InflowState(r, tt)
			if w.Rho <= 0 || w.P <= 0 {
				t.Fatalf("nonphysical inflow at r=%g t=%g: %+v", r, tt, w)
			}
		}
	}
}

// TestInflowProfileBitwise pins the cached-profile column evaluation to
// the per-point InflowState path bitwise: the solver's inflow boundary
// runs through the profile, and any drift there would break the
// bit-reproducibility contract of the backends.
func TestInflowProfileBitwise(t *testing.T) {
	for _, cfg := range []Config{Paper(), Euler()} {
		e := NewEigenfunction(cfg, 1.4)
		r := make([]float64, 97)
		for j := range r {
			r[j] = (float64(j) + 0.5) * 0.05
		}
		p := e.Profile(r)
		out := make([]gas.Primitive, len(r))
		for tt := 0.0; tt < 25; tt += 0.93 {
			p.Column(tt, out)
			for j, rj := range r {
				if want := e.InflowState(rj, tt); out[j] != want {
					t.Fatalf("profile differs at r=%g t=%g: got %+v want %+v", rj, tt, out[j], want)
				}
			}
		}
	}
}
