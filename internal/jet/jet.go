// Package jet defines the excited axisymmetric supersonic jet problem of
// the paper's Sections 2-3: the mean inflow profile (tanh shear layer
// with a Crocco-Busemann temperature relation) and the time-periodic
// eigenfunction excitation at a fixed Strouhal number.
//
// The paper takes its eigenfunctions from an external linear-stability
// code (Scott et al., AIAA 93-4366), which is not available. We
// substitute an analytic shear-layer eigenfunction model: disturbances
// Gaussian-concentrated in the shear layer with the phase relations of a
// locally parallel instability wave. At the excitation level eps = 1e-4
// the forcing is linear and the substitution preserves the exercised
// code path (time-dependent inflow driving an unsteady jet).
package jet

import (
	"fmt"
	"math"

	"repro/internal/gas"
)

// Config collects the physical parameters of the jet case. The values in
// Paper() restore the OCR-damaged symbols of the scanned text (see
// DESIGN.md, "Interpreting OCR-damaged parameters").
type Config struct {
	MachCenter float64 // jet centerline Mach number (paper: 1.5)
	TempRatio  float64 // T_inf / T_c (paper: 1/2)
	Theta      float64 // momentum thickness of the shear layer (paper: 1/8)
	Strouhal   float64 // excitation Strouhal number (paper: 1/8)
	Eps        float64 // excitation level (paper: 1e-4)
	UCoflow    float64 // ambient coflow velocity (robustness choice, see DESIGN.md)
	Reynolds   float64 // Reynolds number based on jet diameter (paper: 1.2e6)
	Viscous    bool    // Navier-Stokes when true, Euler when false
}

// Paper returns the configuration of the paper's production case.
func Paper() Config {
	return Config{
		MachCenter: 1.5,
		TempRatio:  0.5,
		Theta:      0.125,
		Strouhal:   0.125,
		Eps:        1e-4,
		UCoflow:    0.1,
		Reynolds:   1.2e6,
		Viscous:    true,
	}
}

// Euler returns the paper's Euler variant of the same case.
func Euler() Config {
	c := Paper()
	c.Viscous = false
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MachCenter <= 0 {
		return fmt.Errorf("jet: MachCenter must be positive, got %g", c.MachCenter)
	}
	if c.TempRatio <= 0 {
		return fmt.Errorf("jet: TempRatio must be positive, got %g", c.TempRatio)
	}
	if c.Theta <= 0 {
		return fmt.Errorf("jet: Theta must be positive, got %g", c.Theta)
	}
	if c.Viscous && c.Reynolds <= 0 {
		return fmt.Errorf("jet: Reynolds must be positive for viscous flow, got %g", c.Reynolds)
	}
	return nil
}

// TempCenter returns the nondimensional centerline temperature Tc/T_inf.
func (c Config) TempCenter() float64 { return 1 / c.TempRatio }

// UCenter returns the nondimensional centerline velocity
// Uc = Mc * c_c = Mc * sqrt(Tc).
func (c Config) UCenter() float64 { return c.MachCenter * math.Sqrt(c.TempCenter()) }

// Omega returns the excitation angular frequency
// omega = 2*pi*St*Uc/D with jet diameter D = 2 (radii units).
func (c Config) Omega() float64 { return math.Pi * c.Strouhal * c.UCenter() }

// Mu returns the constant nondimensional viscosity
// mu = rho_c * Uc * D / Re_D (zero for Euler).
func (c Config) Mu(gm gas.Model) float64 {
	if !c.Viscous {
		return 0
	}
	rhoC := gm.Gamma * gm.AmbientPressure() / c.TempCenter() // p const at inflow
	return rhoC * c.UCenter() * 2 / c.Reynolds
}

// Gas returns the gas model for this configuration.
func (c Config) Gas() gas.Model { return gas.Air(c.Mu(gas.Air(0))) }

// Shape returns the shear-layer shape function
// g(r) = (1 + tanh((1-r)/(2*theta)))/2: g(0) ~ 1 in the core,
// g -> 0 in the ambient stream.
func (c Config) Shape(r float64) float64 {
	return 0.5 * (1 + math.Tanh((1-r)/(2*c.Theta)))
}

// MeanU returns the mean axial velocity profile
// U(r) = U_inf + (Uc - U_inf)*g(r).
func (c Config) MeanU(r float64) float64 {
	return c.UCoflow + (c.UCenter()-c.UCoflow)*c.Shape(r)
}

// MeanT returns the mean temperature profile (Crocco-Busemann):
// T(r) = T_inf + (Tc - T_inf)*g + (gamma-1)/2 * Mc^2 * Tc/c? — the paper's
// form, restored: T = 1 + (Tc-1)*g + (gamma-1)/2 * Uc^2 * (1-g)*g in
// ambient sound-speed units.
func (c Config) MeanT(gamma, r float64) float64 {
	g := c.Shape(r)
	uc := c.UCenter()
	return 1 + (c.TempCenter()-1)*g + 0.5*(gamma-1)*uc*uc*(1-g)*g
}

// MeanRho returns the mean density from constant static pressure
// p = p_inf = 1/gamma: rho = gamma*p/T = 1/T.
func (c Config) MeanRho(gamma, r float64) float64 {
	return 1 / c.MeanT(gamma, r)
}

// Eigenfunction is the analytic substitute for the linear-stability
// eigenfunctions (U^, V^, rho^, P^ in the paper). Each component has a
// radial amplitude profile and a phase; the excitation applied at the
// inflow is eps*Re(A(r)*exp(i(phi(r) - omega*t))).
type Eigenfunction struct {
	cfg   Config
	gamma float64
}

// NewEigenfunction builds the eigenfunction model for a configuration.
func NewEigenfunction(cfg Config, gamma float64) *Eigenfunction {
	return &Eigenfunction{cfg: cfg, gamma: gamma}
}

// envelope is the shear-layer-concentrated amplitude profile: a Gaussian
// centered on the nominal lip line r = 1 with width set by the momentum
// thickness (4*theta), the natural support of the instability wave.
func (e *Eigenfunction) envelope(r float64) float64 {
	s := (r - 1) / (4 * e.cfg.Theta)
	return math.Exp(-s * s)
}

// Perturb returns the primitive perturbations (drho, du, dv, dp) at
// radius r and time t for excitation level eps and frequency omega.
// Phases: u and p in phase; v in quadrature (continuity of a traveling
// wave); rho tied to p isentropically (drho = dp/c^2).
func (e *Eigenfunction) Perturb(r, t float64) (drho, du, dv, dp float64) {
	cfg := e.cfg
	om := cfg.Omega()
	a := e.envelope(r)
	cosw := math.Cos(om * t)
	sinw := math.Sin(om * t)
	uc := cfg.UCenter()
	du = cfg.Eps * uc * a * cosw
	dv = cfg.Eps * uc * 0.5 * a * sinw
	dp = cfg.Eps * a * cosw / e.gamma
	c2 := cfg.MeanT(e.gamma, r) // c^2 = T
	drho = dp / c2              // isentropic: drho = dp/c^2
	return drho, du, dv, dp
}

// InflowState returns the full primitive inflow state at radius r, time t.
func (e *Eigenfunction) InflowState(r, t float64) gas.Primitive {
	cfg := e.cfg
	drho, du, dv, dp := e.Perturb(r, t)
	T := cfg.MeanT(e.gamma, r)
	rho := 1/T + drho
	return gas.Primitive{
		Rho: rho,
		U:   cfg.MeanU(r) + du,
		V:   dv,
		P:   1/e.gamma + dp,
	}
}

// InflowProfile caches the r-dependent factors of InflowState for a
// fixed set of radial nodes, so evaluating an inflow column costs one
// cos/sin pair plus a handful of multiplies per node instead of the
// tanh/exp transcendentals of the mean profile and envelope. Every
// cached factor is the exact float the per-point path computes (same
// expressions, same association order), so Column is bitwise identical
// to calling InflowState per node.
type InflowProfile struct {
	omega, gamma, invGamma float64
	meanU, meanT, invT     []float64 // mean profile per node
	ampU, ampV, ampP       []float64 // eps * envelope amplitude groupings
}

// Profile precomputes the inflow factors at radial nodes r.
func (e *Eigenfunction) Profile(r []float64) *InflowProfile {
	cfg := e.cfg
	uc := cfg.UCenter()
	p := &InflowProfile{
		omega:    cfg.Omega(),
		gamma:    e.gamma,
		invGamma: 1 / e.gamma,
		meanU:    make([]float64, len(r)),
		meanT:    make([]float64, len(r)),
		invT:     make([]float64, len(r)),
		ampU:     make([]float64, len(r)),
		ampV:     make([]float64, len(r)),
		ampP:     make([]float64, len(r)),
	}
	for j, rj := range r {
		a := e.envelope(rj)
		T := cfg.MeanT(e.gamma, rj)
		p.meanU[j] = cfg.MeanU(rj)
		p.meanT[j] = T
		p.invT[j] = 1 / T
		// Grouped exactly as Perturb's left-to-right products so the
		// remaining per-call factor lands on an identical partial.
		p.ampU[j] = cfg.Eps * uc * a
		p.ampV[j] = cfg.Eps * uc * 0.5 * a
		p.ampP[j] = cfg.Eps * a
	}
	return p
}

// Column fills out with the inflow primitive state of every profiled
// node at time t; out must have the profile's length.
func (p *InflowProfile) Column(t float64, out []gas.Primitive) {
	cosw := math.Cos(p.omega * t)
	sinw := math.Sin(p.omega * t)
	for j := range out {
		du := p.ampU[j] * cosw
		dv := p.ampV[j] * sinw
		dp := p.ampP[j] * cosw / p.gamma
		drho := dp / p.meanT[j]
		out[j] = gas.Primitive{
			Rho: p.invT[j] + drho,
			U:   p.meanU[j] + du,
			V:   dv,
			P:   p.invGamma + dp,
		}
	}
}
