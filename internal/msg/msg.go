// Package msg is the message-passing substrate of the reproduction: a
// PVM-like library built on goroutines and channels. It provides eager
// (buffered) sends, tag-matched receives, and the per-rank startup and
// byte accounting the paper reports in Table 1.
//
// The accounting follows the paper's convention: every send and every
// receive initiation is a "startup"; communicated volume is counted on
// the send side.
package msg

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Tag distinguishes message streams between the same pair of ranks. The
// exchange schedule is deterministic, so tags are verified in FIFO
// order; a mismatch indicates a protocol bug and panics.
type Tag int

// message is one in-flight payload.
type message struct {
	tag  Tag
	data []float64
}

// pairCap is the per-directed-pair channel buffer; the solver keeps at
// most a few messages in flight between neighbours.
const pairCap = 16

// freeCap bounds the world's payload free list. In-flight payloads are
// limited by the pair buffers, so a modest cap keeps steady-state sends
// allocation-free without holding memory proportional to world size
// squared.
const freeCap = 1024

// World connects Size ranks with in-process channels.
type World struct {
	size  int
	pipes [][]chan message // pipes[from][to]
	comms []*Comm
	free  chan []float64 // recycled message payloads
}

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("msg: invalid world size %d", n))
	}
	w := &World{size: n, pipes: make([][]chan message, n), free: make(chan []float64, freeCap)}
	for i := range w.pipes {
		w.pipes[i] = make([]chan message, n)
		for j := range w.pipes[i] {
			if i != j {
				w.pipes[i][j] = make(chan message, pairCap)
			}
		}
	}
	w.comms = make([]*Comm, n)
	for r := range w.comms {
		w.comms[r] = &Comm{world: w, rank: r}
	}
	return w
}

// getBuf takes a recycled payload of length n from the free list, or
// allocates one. An undersized recycled slice is dropped rather than
// grown: message sizes per world take only a few distinct values, so
// the list converges to the largest within a step or two.
func (w *World) getBuf(n int) []float64 {
	select {
	case b := <-w.free:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]float64, n)
}

// putBuf returns a delivered payload to the free list (dropped if the
// list is full).
func (w *World) putBuf(b []float64) {
	select {
	case w.free <- b:
	default:
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's endpoint. The endpoint is a singleton per rank
// (like a PVM task): repeated calls return the same *Comm, so counters
// accumulate in one place.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("msg: rank %d out of range [0,%d)", r, w.size))
	}
	return w.comms[r]
}

// Comm is one rank's endpoint. It is not safe for concurrent use by
// multiple goroutines (like a PVM task, each rank is a single process).
type Comm struct {
	world *World
	rank  int

	// Counters accumulates this rank's communication workload.
	Counters trace.Counters
	// WaitTime accumulates wall-clock time blocked in Recv, the
	// "non-overlapped communication time" of the paper's Figures 5-6.
	WaitTime time.Duration
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send transmits data to rank `to` with an eager (buffered) semantic:
// it blocks only if the pair buffer is full. The payload is copied into
// a recycled buffer, so the caller may reuse data immediately (as PVM's
// pack/send does) and steady-state sends allocate nothing.
func (c *Comm) Send(to int, tag Tag, data []float64) {
	if to == c.rank {
		panic("msg: send to self")
	}
	cp := c.world.getBuf(len(data))
	copy(cp, data)
	c.Counters.AddMessage(8 * len(data))
	c.world.pipes[c.rank][to] <- message{tag: tag, data: cp}
}

// Recv blocks until the next message from rank `from` arrives, verifies
// its tag, and copies the payload into buf (lengths must match). The
// receive initiation counts as a startup; bytes are counted at the
// sender.
func (c *Comm) Recv(from int, tag Tag, buf []float64) {
	if from == c.rank {
		panic("msg: recv from self")
	}
	c.Counters.Startups++
	start := time.Now()
	m := <-c.world.pipes[from][c.rank]
	c.WaitTime += time.Since(start)
	if m.tag != tag {
		panic(fmt.Sprintf("msg: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
	}
	if len(m.data) != len(buf) {
		panic(fmt.Sprintf("msg: rank %d tag %d from %d: length %d != buffer %d", c.rank, tag, from, len(m.data), len(buf)))
	}
	copy(buf, m.data)
	c.world.putBuf(m.data)
}

// TryRecvReady reports whether a message from `from` is already waiting
// (used by tests; the solver protocol is deterministic).
func (c *Comm) TryRecvReady(from int) bool {
	return len(c.world.pipes[from][c.rank]) > 0
}
