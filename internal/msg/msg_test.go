package msg

import (
	"sync"
	"testing"
)

func TestSendRecvRoundtrip(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	data := []float64{1, 2, 3}
	a.Send(1, 7, data)
	data[0] = 99 // the payload must have been copied
	buf := make([]float64, 3)
	b.Recv(0, 7, buf)
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("payload corrupted: %v", buf)
	}
}

func TestCountersFollowPaperConvention(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	a.Send(1, 0, make([]float64, 100))
	buf := make([]float64, 100)
	b.Recv(0, 0, buf)
	// Startups: one per send AND one per receive; bytes on the sender.
	if a.Counters.Startups != 1 || a.Counters.Bytes != 800 {
		t.Errorf("sender counters: %+v", a.Counters)
	}
	if b.Counters.Startups != 1 || b.Counters.Bytes != 0 {
		t.Errorf("receiver counters: %+v", b.Counters)
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	for i := 0; i < 5; i++ {
		a.Send(1, Tag(i), []float64{float64(i)})
	}
	buf := make([]float64, 1)
	for i := 0; i < 5; i++ {
		b.Recv(0, Tag(i), buf)
		if buf[0] != float64(i) {
			t.Fatalf("out of order: got %g at %d", buf[0], i)
		}
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 1, []float64{0})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on tag mismatch")
		}
	}()
	w.Comm(1).Recv(0, 2, make([]float64, 1))
}

func TestLengthMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Comm(0).Send(1, 1, []float64{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	w.Comm(1).Recv(0, 1, make([]float64, 3))
}

func TestSelfSendPanics(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on self send")
		}
	}()
	w.Comm(0).Send(0, 0, []float64{1})
}

func TestConcurrentNeighbourExchange(t *testing.T) {
	const n = 8
	const rounds = 200
	w := NewWorld(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			buf := make([]float64, 4)
			for i := 0; i < rounds; i++ {
				if rank > 0 {
					c.Send(rank-1, Tag(i), []float64{float64(rank), 0, 0, 0})
				}
				if rank < n-1 {
					c.Send(rank+1, Tag(i), []float64{float64(rank), 0, 0, 0})
				}
				if rank > 0 {
					c.Recv(rank-1, Tag(i), buf)
					if buf[0] != float64(rank-1) {
						panic("wrong left payload")
					}
				}
				if rank < n-1 {
					c.Recv(rank+1, Tag(i), buf)
					if buf[0] != float64(rank+1) {
						panic("wrong right payload")
					}
				}
			}
		}(r)
	}
	wg.Wait()
	// Interior rank: 2 sends + 2 recvs per round.
	if got := w.Comm(3).Counters.Startups; got != 4*rounds {
		t.Fatalf("interior startups = %d, want %d", got, 4*rounds)
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for empty world")
		}
	}()
	NewWorld(0)
}
