package msg

// ReducePlan computes the message schedule of one rank's participation
// in a recursive-doubling allreduce over a world of `size` ranks. The
// plan is pure topology — which partner to talk to, in which order,
// with which tag — so the same schedule drives the real collective of
// internal/par and the co-simulated collective of internal/machine,
// keeping the modeled cost tied to the code that actually runs.
//
// The algorithm is the classic three-phase reduction tree:
//
//  1. Fold: with size not a power of two, the first 2*rem ranks pair
//     up (rem = size - 2^floor(log2 size)); odd ranks send their value
//     to the even partner and sit out the exchange rounds.
//  2. Exchange: the remaining 2^k participants run k rounds of
//     pairwise exchange (partner = rank XOR 2^round), each combining
//     the received subtree with its own.
//  3. Unfold: the folded ranks receive the finished result.
//
// Every participant combines subtree values in ascending rank order
// (ReduceStep.RecvLower tells the caller whether the received subtree
// precedes its own), so all ranks evaluate the identical reduction
// tree and finish with bitwise-equal results — the property the
// convergence controller's stop decision depends on.
type ReduceStep struct {
	// Partner is the rank to exchange with.
	Partner int
	// Send/Recv select the actions of this step (both for an exchange
	// round, one for the fold/unfold phases).
	Send, Recv bool
	// Combine marks a received value that joins the reduction;
	// without it the received value replaces the local one (unfold).
	Combine bool
	// RecvLower reports that the received subtree covers lower ranks
	// than the local one (combine received-first for a canonical
	// evaluation order).
	RecvLower bool
	// Tag disambiguates the phases on one directed pair: 0 for the
	// fold, 1+round for each exchange round, and a final value for the
	// unfold. Both partners of a step compute the same tag.
	Tag int
}

// ReducePlan returns rank's schedule in a world of size ranks. A
// single-rank world reduces to nothing.
func ReducePlan(size, rank int) []ReduceStep {
	if size < 1 || rank < 0 || rank >= size {
		panic("msg: invalid reduce plan geometry")
	}
	pof2 := 1
	rounds := 0
	for pof2*2 <= size {
		pof2 *= 2
		rounds++
	}
	rem := size - pof2
	unfoldTag := 1 + rounds

	var plan []ReduceStep
	newRank := -1 // rank id within the power-of-two exchange group
	switch {
	case rank < 2*rem && rank%2 == 1:
		// Folded out: contribute, then wait for the finished result.
		return []ReduceStep{
			{Partner: rank - 1, Send: true, Tag: 0},
			{Partner: rank - 1, Recv: true, Tag: unfoldTag},
		}
	case rank < 2*rem:
		plan = append(plan, ReduceStep{Partner: rank + 1, Recv: true, Combine: true, Tag: 0})
		newRank = rank / 2
	default:
		newRank = rank - rem
	}
	old := func(nr int) int {
		if nr < rem {
			return nr * 2
		}
		return nr + rem
	}
	for round, mask := 0, 1; mask < pof2; round, mask = round+1, mask*2 {
		pn := newRank ^ mask
		plan = append(plan, ReduceStep{
			Partner:   old(pn),
			Send:      true,
			Recv:      true,
			Combine:   true,
			RecvLower: pn < newRank,
			Tag:       1 + round,
		})
	}
	if rank < 2*rem {
		plan = append(plan, ReduceStep{Partner: rank + 1, Send: true, Tag: unfoldTag})
	}
	return plan
}

// ReducePlanLeaders returns rank's cross-node schedule of a
// hierarchical allreduce: the world of size ranks is split into
// contiguous nodes of `group` ranks (the last node may be smaller),
// the intra-node combine happens off the message layer (shared
// memory), and only node leaders (rank%group == 0) exchange messages —
// the recursive-doubling ReducePlan over the leader set, with partners
// mapped back to world ranks. Non-leaders get a nil plan: their value
// enters through the node combine and the result comes back the same
// way. Leaders keep ascending-rank combine order on whole-node partial
// results, so the hierarchical tree stays canonical across ranks.
// group <= 1 degenerates to the flat ReducePlan.
func ReducePlanLeaders(size, rank, group int) []ReduceStep {
	if group <= 1 {
		return ReducePlan(size, rank)
	}
	if size < 1 || rank < 0 || rank >= size {
		panic("msg: invalid reduce plan geometry")
	}
	if rank%group != 0 {
		return nil
	}
	leaders := (size + group - 1) / group
	plan := ReducePlan(leaders, rank/group)
	for i := range plan {
		plan[i].Partner *= group
	}
	return plan
}
