package msg

import "testing"

// TestSendRecvSteadyStateAllocs locks in the free-list property: once
// the payload free list is primed, a Send/Recv round-trip allocates
// nothing — the paper's steady exchange schedule runs garbage-free.
func TestSendRecvSteadyStateAllocs(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	data := make([]float64, 800) // two 100-row halo columns x 4 components
	buf := make([]float64, 800)
	roundTrip := func() {
		a.Send(1, 3, data)
		b.Recv(0, 3, buf)
		b.Send(0, 3, buf)
		a.Recv(1, 3, data)
	}
	roundTrip() // prime the free list
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Errorf("steady-state Send/Recv round-trip allocates %.1f times, want 0", n)
	}
}

// TestFreeListRecyclesAcrossSizes: a larger message after a smaller one
// must still be delivered intact (an undersized recycled buffer is
// dropped, not reused).
func TestFreeListRecyclesAcrossSizes(t *testing.T) {
	w := NewWorld(2)
	a, b := w.Comm(0), w.Comm(1)
	small := []float64{1, 2}
	a.Send(1, 0, small)
	got2 := make([]float64, 2)
	b.Recv(0, 0, got2)
	big := make([]float64, 64)
	for i := range big {
		big[i] = float64(i)
	}
	a.Send(1, 1, big)
	got64 := make([]float64, 64)
	b.Recv(0, 1, got64)
	for i := range big {
		if got64[i] != float64(i) {
			t.Fatalf("payload corrupted at %d: %g", i, got64[i])
		}
	}
}
