package msg

import (
	"fmt"
	"testing"
)

// TestReducePlanMatched checks the structural protocol invariant for
// every world size the solver uses: each send in some rank's plan has
// exactly one matching receive (same directed pair, same tag) in the
// partner's plan, so the FIFO-tag-checked message layer can never
// deadlock or misdeliver a collective.
func TestReducePlanMatched(t *testing.T) {
	for size := 1; size <= 9; size++ {
		t.Run(fmt.Sprintf("size%d", size), func(t *testing.T) {
			type edge struct {
				from, to, tag int
			}
			sends := map[edge]int{}
			recvs := map[edge]int{}
			for r := 0; r < size; r++ {
				for _, st := range ReducePlan(size, r) {
					if st.Partner == r || st.Partner < 0 || st.Partner >= size {
						t.Fatalf("rank %d: partner %d out of range", r, st.Partner)
					}
					if st.Send {
						sends[edge{r, st.Partner, st.Tag}]++
					}
					if st.Recv {
						recvs[edge{st.Partner, r, st.Tag}]++
					}
				}
			}
			if len(sends) != len(recvs) {
				t.Fatalf("%d send edges vs %d recv edges", len(sends), len(recvs))
			}
			for e, n := range sends {
				if recvs[e] != n {
					t.Errorf("edge %v: %d sends, %d recvs", e, n, recvs[e])
				}
			}
		})
	}
}

// TestReducePlanShape pins the tree geometry: a single rank reduces to
// nothing, a power-of-two world runs exactly log2(p) exchange rounds
// per rank, and a non-power world folds its remainder ranks in and out
// (two steps each) while the rest pay one extra fold receive.
func TestReducePlanShape(t *testing.T) {
	if got := ReducePlan(1, 0); len(got) != 0 {
		t.Fatalf("size-1 plan has %d steps, want 0", len(got))
	}
	for _, size := range []int{2, 4, 8} {
		rounds := 0
		for p := 1; p < size; p *= 2 {
			rounds++
		}
		for r := 0; r < size; r++ {
			plan := ReducePlan(size, r)
			if len(plan) != rounds {
				t.Errorf("size %d rank %d: %d steps, want %d exchange rounds", size, r, len(plan), rounds)
			}
			for _, st := range plan {
				if !st.Send || !st.Recv || !st.Combine {
					t.Errorf("size %d rank %d: exchange step %+v must send+recv+combine", size, r, st)
				}
			}
		}
	}
	// size 3: rank 1 folds out (send, then final recv), ranks 0 and 2
	// run the 2-rank exchange.
	plan1 := ReducePlan(3, 1)
	if len(plan1) != 2 || !plan1[0].Send || plan1[0].Recv || !plan1[1].Recv || plan1[1].Combine {
		t.Fatalf("size-3 rank-1 fold plan wrong: %+v", plan1)
	}
}

// TestReducePlanCombineOrder checks the canonical evaluation order:
// whenever a rank combines a received subtree, RecvLower is set
// exactly when the partner's subtree covers lower ranks — the property
// that makes every rank evaluate the identical reduction tree.
func TestReducePlanCombineOrder(t *testing.T) {
	for size := 2; size <= 9; size++ {
		for r := 0; r < size; r++ {
			for _, st := range ReducePlan(size, r) {
				if !st.Combine || !st.Send {
					continue // fold-in combines are checked by value tests in internal/par
				}
				if got, want := st.RecvLower, st.Partner < r; got != want {
					t.Errorf("size %d rank %d partner %d: RecvLower %v, want %v", size, r, st.Partner, got, want)
				}
			}
		}
	}
}
