// Package shm is the shared-memory parallelization the paper used on
// the Cray Y-MP: DOALL loop-level parallelism. A persistent worker pool
// executes each of the solver's column loops as a fork-join parallel
// region — the moral equivalent of the Cray compiler's DOALL directive,
// with the goroutine wake-up playing the role of the Y-MP's loop
// dispatch overhead.
//
// The paper partitioned "along the orthogonal direction of the sweep to
// keep the vector lengths large": our radial sweeps are likewise
// partitioned across axial columns, and the axial sweeps keep the inner
// radial loop contiguous (stride-1) within each chunk.
package shm

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// Pool is a fixed set of workers executing fork-join range splits.
type Pool struct {
	workers int
	tasks   chan task
	closed  bool
	// wg is the fork-join barrier, owned by the pool: Split is only ever
	// invoked from the pool's single orchestrating goroutine (each slab
	// drives its own pool), so one reusable WaitGroup replaces the
	// per-call allocation that used to escape through the task channel.
	wg sync.WaitGroup
}

type task struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

// NewPool starts n persistent workers.
func NewPool(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("shm: invalid pool size %d", n))
	}
	p := &Pool{workers: n, tasks: make(chan task)}
	for i := 0; i < n; i++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Split implements solver.ParallelFor: [lo, hi) is divided into one
// contiguous chunk per worker and executed concurrently; Split returns
// when all chunks complete (the DOALL join).
func (p *Pool) Split(lo, hi int, fn func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		fn(lo, hi)
		return
	}
	p.wg.Add(chunks)
	base, rem := n/chunks, n%chunks
	pos := lo
	for c := 0; c < chunks; c++ {
		w := base
		if c < rem {
			w++
		}
		p.tasks <- task{lo: pos, hi: pos + w, fn: fn, wg: &p.wg}
		pos += w
	}
	p.wg.Wait()
}

// Close stops the workers. The pool must not be used afterwards.
func (p *Pool) Close() {
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
}

// Solver is the serial reference solver with DOALL loop parallelism —
// the paper's Y-MP configuration.
type Solver struct {
	*solver.Slab
	pool *Pool
}

// NewSolver builds a shared-memory solver with n workers.
func NewSolver(cfg jet.Config, g *grid.Grid, n int) (*Solver, error) {
	return NewSolverProblem(cfg, nil, g, n)
}

// NewSolverProblem builds a shared-memory solver for a scenario problem
// with n workers; nil prob is the built-in jet.
func NewSolverProblem(cfg jet.Config, prob *solver.Problem, g *grid.Grid, n int) (*Solver, error) {
	ser, err := solver.NewSerialProblem(cfg, prob, g)
	if err != nil {
		return nil, err
	}
	p := NewPool(n)
	ser.Pool = p
	return &Solver{Slab: ser.Slab, pool: p}, nil
}

// Run advances n composite steps.
func (s *Solver) Run(n int) {
	for i := 0; i < n; i++ {
		s.Advance()
	}
}

// RunControlled advances up to n composite steps under residual-driven
// convergence control. The single slab spans the domain (the DOALL
// pool splits loops, not ownership), so its partial sums are already
// global and no cross-rank reduction is needed.
func (s *Solver) RunControlled(n int, ctl solver.Control) solver.ConvergedRun {
	return s.Slab.RunControlled(n, ctl, nil)
}

// Close releases the worker pool.
func (s *Solver) Close() { s.pool.Close() }
