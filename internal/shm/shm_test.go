package shm

import (
	"runtime"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func TestPoolSplitCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 4, 5, 17, 100} {
		hit := make([]int32, n)
		var mu [64]struct{} // padding decoy unused
		_ = mu
		p.Split(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, h)
			}
		}
	}
}

func TestPoolSplitEmptyRange(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.Split(3, 3, func(lo, hi int) { called = true })
	if called {
		t.Error("empty range should not invoke fn")
	}
}

// The DOALL solver must reproduce the serial arithmetic bitwise: every
// parallel region is a fork-join over independent columns.
func TestSharedMemoryMatchesSerialBitwise(t *testing.T) {
	g := grid.MustNew(64, 24, 50, 5)
	for _, cfg := range []jet.Config{jet.Paper(), jet.Euler()} {
		ref, err := solver.NewSerial(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		ref.Run(6)
		for _, workers := range []int{1, 2, 4, 7} {
			s, err := NewSolver(cfg, g, workers)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(6)
			for k := 0; k < flux.NVar; k++ {
				if !s.Q[k].Equal(ref.Q[k]) {
					t.Errorf("viscous=%v workers=%d: component %d differs (max %g)",
						cfg.Viscous, workers, k, s.Q[k].MaxAbsDiff(ref.Q[k]))
				}
			}
			s.Close()
		}
	}
}

func TestSharedMemorySpeedupSmoke(t *testing.T) {
	if runtime.NumCPU() < 2 || testing.Short() {
		t.Skip("needs >= 2 CPUs")
	}
	// Not a strict perf assertion (CI noise); just verify a larger run
	// completes and stays stable with many workers.
	g := grid.MustNew(128, 64, 50, 5)
	s, err := NewSolver(jet.Paper(), g, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run(20)
	if d := s.Diagnose(); d.HasNaN {
		t.Fatal("NaN in shared-memory run")
	}
}

// TestAdvanceSteadyStateAllocs extends the solver's allocation-free
// stepping guarantee to the DOALL pool: once the inflow memoization is
// warm, fork-joining every kernel across persistent workers allocates
// nothing per composite step.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	s, err := NewSolver(jet.Paper(), grid.MustNew(64, 32, 50, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Advance() // warm: inflow memoization for the first time level
	if allocs := testing.AllocsPerRun(20, s.Advance); allocs != 0 {
		t.Errorf("steady-state pooled Advance allocates %.1f times, want 0", allocs)
	}
}
