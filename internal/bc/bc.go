// Package bc implements the boundary treatment of the paper's Section 3:
//
//   - Inflow (x = 0): prescribed mean jet profile plus eigenfunction
//     excitation (Dirichlet; the jet core is supersonic).
//   - Outflow (x = Lx): the characteristic formulation of Hayder &
//     Turkel — solve p_t - rho*c*u_t = 0 (subsonic incoming),
//     p_t + rho*c*u_t = R2, p_t - c^2*rho_t = R3, v_t = R4, with the R_i
//     taken from one-sided spatial derivatives of the governing
//     equations, then convert to conservative-variable rates.
//   - Far field (r = Lr): the same characteristic machinery with the
//     radial velocity as the normal component and the incoming
//     characteristic relaxed toward ambient pressure.
//   - Axis (r = 0): handled by parity mirrors in internal/field.
//
// The characteristic updates are applied per split operator: the
// operator normal to the boundary uses the filtered rates; tangential
// operators apply the interior scheme unchanged.
package bc

import (
	"math"

	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
	"repro/internal/jet"
)

// Source supplies the primitive inflow column at time t. The jet's
// eigenfunction profile (jet.InflowProfile) is the canonical
// implementation; scenarios register their own (e.g. the channel's
// static parabolic profile).
type Source interface {
	Column(t float64, out []gas.Primitive)
}

// Inflow prescribes a Dirichlet state on a column of the state bundle.
// The assembled conserved column is memoized per time value: the split
// operators apply the same boundary state to the predicted and
// corrected bundles (and to both sweeps of a composite step), so only
// the first application per time level evaluates the source.
type Inflow struct {
	prof Source
	gm   gas.Model

	prim  []gas.Primitive        // scratch primitive column
	col   [flux.NVar][]float64   // memoized conserved column
	lastT float64
	valid bool
}

// NewInflow builds the excited-jet inflow condition for radial nodes r.
func NewInflow(cfg jet.Config, gm gas.Model, r []float64) *Inflow {
	return NewInflowSource(jet.NewEigenfunction(cfg, gm.Gamma).Profile(r), gm, len(r))
}

// NewInflowSource builds an inflow condition over n radial nodes fed by
// an arbitrary primitive source.
func NewInflowSource(src Source, gm gas.Model, n int) *Inflow {
	in := &Inflow{
		prof: src,
		gm:   gm,
		prim: make([]gas.Primitive, n),
	}
	for k := range in.col {
		in.col[k] = make([]float64, n)
	}
	return in
}

// Apply writes the inflow state at time t into local column c of q.
func (in *Inflow) Apply(q *flux.State, c int, t float64) {
	if !in.valid || t != in.lastT {
		in.prof.Column(t, in.prim)
		for j, w := range in.prim {
			cq := in.gm.ToConserved(w)
			in.col[flux.IRho][j] = cq.Rho
			in.col[flux.IMx][j] = cq.Mx
			in.col[flux.IMr][j] = cq.Mr
			in.col[flux.IE][j] = cq.E
		}
		in.lastT, in.valid = t, true
	}
	n := len(in.prim)
	for k := 0; k < flux.NVar; k++ {
		copy(q[k].Col(c)[:n], in.col[k])
	}
}

// charRates converts raw conservative time derivatives (drho, dmx, dmr,
// dE) at a point with primitives (rho,u,v,T) into characteristic-
// filtered conservative rates. un selects the boundary-normal velocity
// component: 0 for x-boundaries (normal velocity u), 1 for r-boundaries
// (normal velocity v). rIn is the override for the incoming
// characteristic p_t - rho*c*un_t (0 for the paper's outflow; a pressure
// relaxation for the far field). If the normal velocity is supersonic,
// no filtering is applied.
func charRates(gm gas.Model, rho, u, v, T float64, d [4]float64, normal int, rIn float64, relax bool) [4]float64 {
	gm1 := gm.Gamma - 1
	c := math.Sqrt(T)
	rhot := d[0]
	mt := d[1]
	nt := d[2]
	et := d[3]
	pt := gm1 * (et - u*mt - v*nt + 0.5*(u*u+v*v)*rhot)
	ut := (mt - u*rhot) / rho
	vt := (nt - v*rhot) / rho

	un, utan := u, v
	unt, utant := ut, vt
	if normal == 1 {
		un, utan = v, u
		unt, utant = vt, ut
	}
	if un >= c && !relax {
		// Supersonic outflow: all characteristics leave the domain.
		return d
	}
	rc := rho * c
	r1 := pt - rc*unt
	r2 := pt + rc*unt
	r3 := pt - c*c*rhot
	r4 := utant
	r1 = rIn // incoming characteristic replaced

	pt = 0.5 * (r1 + r2)
	unt = (r2 - r1) / (2 * rc)
	rhot = (pt - r3) / (c * c)
	utant = r4

	if normal == 1 {
		ut, vt = utant, unt
	} else {
		ut, vt = unt, utant
	}
	mt = rho*ut + u*rhot
	nt = rho*vt + v*rhot
	et = pt/gm1 + 0.5*(u*u+v*v)*rhot + rho*(u*ut+v*vt)
	_ = utan
	return [4]float64{rhot, mt, nt, et}
}

// OutflowX integrates the characteristic boundary equations at local
// column c (the global outflow column) over dt and writes the result
// into qn. q and w are the pre-operator state and primitives; f is the
// axial flux of that state, valid at columns c, c-1, c-2.
func OutflowX(gm gas.Model, dx, dt float64, q, w, f, qn *flux.State, c int) {
	h := 0.5 / dx
	for j := 0; j < q[0].Nr; j++ {
		var d [4]float64
		for k := 0; k < flux.NVar; k++ {
			// Second-order one-sided backward difference of f.
			d[k] = -(3*f[k].At(c, j) - 4*f[k].At(c-1, j) + f[k].At(c-2, j)) * h
		}
		rho := w[flux.IRho].At(c, j)
		u := w[flux.IMx].At(c, j)
		v := w[flux.IMr].At(c, j)
		T := w[flux.IE].At(c, j)
		d = charRates(gm, rho, u, v, T, d, 0, 0, false)
		for k := 0; k < flux.NVar; k++ {
			qn[k].Set(c, j, q[k].At(c, j)+dt*d[k])
		}
	}
}

// FarFieldSigma is the relaxation coefficient of the far-field incoming
// characteristic toward ambient pressure.
const FarFieldSigma = 0.25

// FarFieldR integrates the characteristic boundary equations along the
// top row (j = Nr-1) over dt for columns [c0, c1) and writes the result
// into qn. rg is the radial flux r*g of the pre-operator state (valid at
// rows Nr-1, Nr-2, Nr-3), src the source term S/r, r the radial nodes,
// lr the radial extent used as the relaxation length.
func FarFieldR(gm gas.Model, dr, dt, lr float64, r []float64, q, w, rg *flux.State, src *field.Field, qn *flux.State, c0, c1 int) {
	jb := q[0].Nr - 1
	h := 0.5 / dr
	rinv := 1 / r[jb]
	for i := c0; i < c1; i++ {
		var d [4]float64
		for k := 0; k < flux.NVar; k++ {
			d[k] = -(3*rg[k].At(i, jb) - 4*rg[k].At(i, jb-1) + rg[k].At(i, jb-2)) * h * rinv
		}
		d[flux.IMr] += src.At(i, jb)
		rho := w[flux.IRho].At(i, jb)
		u := w[flux.IMx].At(i, jb)
		v := w[flux.IMr].At(i, jb)
		T := w[flux.IE].At(i, jb)
		p := rho * T / gm.Gamma
		c := math.Sqrt(T)
		rIn := FarFieldSigma * c / lr * (gm.AmbientPressure() - p)
		d = charRates(gm, rho, u, v, T, d, 1, rIn, true)
		for k := 0; k < flux.NVar; k++ {
			qn[k].Set(i, jb, q[k].At(i, jb)+dt*d[k])
		}
	}
}

// FLOP accounting constants (per boundary point).
const (
	FlopsCharPoint = 60 // derivative, transform, filter, back-transform
)
