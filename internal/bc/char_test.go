package bc

import (
	"math"
	"testing"

	"repro/internal/gas"
)

func TestCharRatesSupersonicPassthrough(t *testing.T) {
	gm := gas.Air(0)
	d := [4]float64{0.1, -0.2, 0.05, 0.3}
	// u = 2 > c = 1: supersonic outflow, no filtering.
	got := charRates(gm, 1, 2, 0, 1, d, 0, 0, false)
	if got != d {
		t.Fatalf("supersonic outflow should pass rates through: %v vs %v", got, d)
	}
}

func TestCharRatesSubsonicKillsIncoming(t *testing.T) {
	gm := gas.Air(0)
	rho, u, v, T := 1.0, 0.3, 0.0, 1.0
	d := [4]float64{0.2, 0.1, 0.0, 0.4}
	got := charRates(gm, rho, u, v, T, d, 0, 0, false)
	// Reconstruct p_t and u_t from the filtered conservative rates and
	// verify the incoming characteristic p_t - rho*c*u_t is exactly 0.
	gm1 := gm.Gamma - 1
	rhot, mt, nt, et := got[0], got[1], got[2], got[3]
	pt := gm1 * (et - u*mt - v*nt + 0.5*(u*u+v*v)*rhot)
	ut := (mt - u*rhot) / rho
	c := math.Sqrt(T)
	if in := pt - rho*c*ut; math.Abs(in) > 1e-12 {
		t.Fatalf("incoming characteristic not killed: %g", in)
	}
}
