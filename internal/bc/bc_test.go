package bc_test

import (
	"math"
	"repro/internal/bc"
	"testing"

	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func TestInflowAppliesMeanProfilePlusExcitation(t *testing.T) {
	cfg := jet.Paper()
	gm := cfg.Gas()
	g := grid.MustNew(16, 20, 50, 5)
	in := bc.NewInflow(cfg, gm, g.R)
	q := flux.NewState(4, g.Nr)
	in.Apply(q, 0, 0)
	// Centerline (j=0): near jet-core velocity Uc.
	rho := q[flux.IRho].At(0, 0)
	u := q[flux.IMx].At(0, 0) / rho
	if math.Abs(u-cfg.UCenter()) > 0.05*cfg.UCenter() {
		t.Errorf("centerline u = %g, want ~%g", u, cfg.UCenter())
	}
	// Far field (last j): coflow.
	rhoF := q[flux.IRho].At(0, g.Nr-1)
	uF := q[flux.IMx].At(0, g.Nr-1) / rhoF
	if math.Abs(uF-cfg.UCoflow) > 0.02 {
		t.Errorf("far-field u = %g, want ~%g", uF, cfg.UCoflow)
	}
	// Excitation makes the state time dependent.
	q2 := flux.NewState(4, g.Nr)
	in.Apply(q2, 0, 1.0)
	shear := g.Nr / 5 // a point near the lip line r=1
	if q[flux.IMx].At(0, shear) == q2[flux.IMx].At(0, shear) {
		t.Error("inflow not time dependent under excitation")
	}
}

// TestOutflowReflection sends a downstream-moving acoustic pulse through
// the outflow boundary of the full solver and verifies it leaves with
// low reflection — the purpose of the paper's characteristic treatment.
func TestOutflowReflection(t *testing.T) {
	cfg := jet.Paper()
	cfg.Eps = 0       // no excitation
	cfg.UCoflow = 0.3 // uniform subsonic stream
	cfg.MachCenter = 0.3 / math.Sqrt(2)
	// Make the "jet" profile flat by pushing the shear layer far out:
	// use a uniform stream via MachCenter*sqrt(Tc) = UCoflow and
	// TempRatio = 1 so MeanU = UCoflow everywhere.
	cfg.TempRatio = 1
	g := grid.MustNew(100, 12, 50, 5)
	s, err := solver.NewSerial(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	gm := s.Gas
	// Superimpose a rightward simple acoustic pulse near the outflow.
	x0, width, amp := 42.0, 1.5, 1e-3
	for c := 0; c < g.Nx; c++ {
		for j := 0; j < g.Nr; j++ {
			dx := (g.X[c] - x0) / width
			dp := amp * math.Exp(-dx*dx) / gm.Gamma
			rho := s.Q[flux.IRho].At(c, j)
			u := s.Q[flux.IMx].At(c, j) / rho
			T := gm.Temperature(rho, gm.AmbientPressure())
			cs := math.Sqrt(T)
			// Right-moving acoustic wave: dp, du = dp/(rho c), drho = dp/c^2.
			rhoN := rho + dp/(cs*cs)
			uN := u + dp/(rho*cs)
			pN := gm.AmbientPressure() + dp
			s.Q[flux.IRho].Set(c, j, rhoN)
			s.Q[flux.IMx].Set(c, j, rhoN*uN)
			s.Q[flux.IE].Set(c, j, gm.TotalEnergy(rhoN, uN, 0, pN))
		}
	}
	pDevMax := func() float64 {
		m := 0.0
		for c := 0; c < g.Nx; c++ {
			for j := 0; j < g.Nr; j++ {
				p := gm.PressureFromConserved(
					s.Q[flux.IRho].At(c, j), s.Q[flux.IMx].At(c, j),
					s.Q[flux.IMr].At(c, j), s.Q[flux.IE].At(c, j))
				if d := math.Abs(p - gm.AmbientPressure()); d > m {
					m = d
				}
			}
		}
		return m
	}
	before := pDevMax()
	// Pulse speed ~ u+c ~ 1.3; distance to exit ~ 8+3 widths; run long
	// enough for the pulse to leave entirely.
	steps := int(14 / (1.3 * s.Dt))
	s.Run(steps)
	after := pDevMax()
	t.Logf("pulse amplitude %.3g -> residual %.3g (%.1f%%)", before, after, 100*after/before)
	if after > 0.25*before {
		t.Errorf("outflow reflection too large: %.3g of %.3g", after, before)
	}
	if s.Diagnose().HasNaN {
		t.Fatal("NaN")
	}
}

func TestFarFieldRelaxesTowardAmbient(t *testing.T) {
	gm := gas.Air(0)
	nx, nr := 8, 8
	q := flux.NewState(nx, nr)
	w := flux.NewState(nx, nr)
	rg := flux.NewState(nx, nr)
	qn := flux.NewState(nx, nr)
	src := field.New(nx, nr)
	r := make([]float64, nr)
	for j := range r {
		r[j] = (float64(j) + 0.5) * 0.5
	}
	// Overpressured quiescent gas: the far-field characteristic update
	// must push the top row's pressure down toward ambient.
	pHigh := gm.AmbientPressure() * 1.1
	for i := -2; i < nx+2; i++ {
		for j := -2; j < nr+2; j++ {
			rho := 1.0
			q[flux.IRho].Set(i, j, rho)
			q[flux.IE].Set(i, j, pHigh/(gm.Gamma-1))
			w[flux.IRho].Set(i, j, rho)
			w[flux.IE].Set(i, j, gm.Temperature(rho, pHigh))
			// rg constant: no flux divergence; src zero.
		}
	}
	for k := 0; k < flux.NVar; k++ {
		rg[k].FillAll(0)
		qn[k].CopyFrom(q[k])
	}
	bc.FarFieldR(gm, 0.5, 0.05, 4, r, q, w, rg, src, qn, 0, nx)
	jb := nr - 1
	pOld := gm.PressureFromConserved(q[flux.IRho].At(3, jb), q[flux.IMx].At(3, jb), q[flux.IMr].At(3, jb), q[flux.IE].At(3, jb))
	pNew := gm.PressureFromConserved(qn[flux.IRho].At(3, jb), qn[flux.IMx].At(3, jb), qn[flux.IMr].At(3, jb), qn[flux.IE].At(3, jb))
	if !(pNew < pOld) {
		t.Fatalf("far field did not relax: %g -> %g (ambient %g)", pOld, pNew, gm.AmbientPressure())
	}
}
