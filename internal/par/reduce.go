package par

import (
	"repro/internal/msg"
	"repro/internal/trace"
)

// reducer is one rank's allocation-free allreduce endpoint: a
// recursive-doubling reduction (msg.ReducePlan) over the message
// layer. The plan and the staging buffer are built at construction, so
// a steady-state collective allocates nothing; payload buffers recycle
// through the message world's free list exactly as halo exchanges do.
//
// Every rank combines subtree values in the plan's canonical order and
// therefore finishes with the bitwise-identical result — the property
// that lets each rank take the convergence controller's stop decision
// independently without drifting apart.
//
// A reducer implements solver.Reduction.
type reducer struct {
	comm *msg.Comm
	plan []msg.ReduceStep
	val  [1]float64 // operand staging (scalar collectives)
	buf  [1]float64 // receive staging
	// T accumulates this rank's collective traffic, the Reduce class
	// of trace.DirCounters.
	T trace.Counters
}

// reduceTagBase offsets collective tags above the halo tag space
// (solver kinds × message parts stay well below it), so a protocol
// slip between the two schedules panics on the tag check instead of
// silently mixing payloads.
const reduceTagBase = 64

func newReducer(c *msg.Comm) *reducer {
	return &reducer{comm: c, plan: msg.ReducePlan(c.Size(), c.Rank())}
}

// combineFn folds the received subtree value into the local one; lo
// precedes hi in rank order.
type combineFn func(lo, hi float64) float64

func combineSum(lo, hi float64) float64 { return lo + hi }

func combineMax(lo, hi float64) float64 {
	if hi > lo {
		return hi
	}
	return lo
}

// allreduce runs the plan on the scalar in r.val[0].
func (r *reducer) allreduce(f combineFn) {
	for _, st := range r.plan {
		if st.Send {
			r.T.AddMessage(8 * len(r.val))
			r.comm.Send(st.Partner, msg.Tag(reduceTagBase+st.Tag), r.val[:])
		}
		if st.Recv {
			r.T.Startups++
			r.comm.Recv(st.Partner, msg.Tag(reduceTagBase+st.Tag), r.buf[:])
			switch {
			case !st.Combine:
				r.val[0] = r.buf[0] // unfold: the finished result
			case st.RecvLower:
				r.val[0] = f(r.buf[0], r.val[0])
			default:
				r.val[0] = f(r.val[0], r.buf[0])
			}
		}
	}
}

// Sum implements solver.Reduction: the global sum of every rank's x.
func (r *reducer) Sum(x float64) float64 {
	r.val[0] = x
	r.allreduce(combineSum)
	return r.val[0]
}

// Max implements solver.Reduction: the global max of every rank's x.
func (r *reducer) Max(x float64) float64 {
	r.val[0] = x
	r.allreduce(combineMax)
	return r.val[0]
}
