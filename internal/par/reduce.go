package par

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/trace"
)

// reducer is one rank's allocation-free allreduce endpoint: a
// recursive-doubling reduction (msg.ReducePlan) over the message
// layer. The plan and the staging buffer are built at construction, so
// a steady-state collective allocates nothing; payload buffers recycle
// through the message world's free list exactly as halo exchanges do.
//
// Every rank combines subtree values in the plan's canonical order and
// therefore finishes with the bitwise-identical result — the property
// that lets each rank take the convergence controller's stop decision
// independently without drifting apart.
//
// A reducer implements solver.Reduction.
type reducer struct {
	comm *msg.Comm
	plan []msg.ReduceStep
	val  [1]float64 // operand staging (scalar collectives)
	buf  [1]float64 // receive staging
	// comb/slot place this rank in its shared-memory node for the
	// hierarchical collective (nil comb = flat plan).
	comb *combiner
	slot int
	// T accumulates this rank's collective traffic, the Reduce class
	// of trace.DirCounters.
	T trace.Counters
}

// reduceTagBase offsets collective tags above the halo tag space
// (solver kinds × message parts stay well below it), so a protocol
// slip between the two schedules panics on the tag check instead of
// silently mixing payloads.
const reduceTagBase = 64

// combiner is the shared-memory intra-node stage of a hierarchical
// allreduce: the ranks of one contiguous node deposit their values,
// the node leader (slot 0) folds them in ascending-slot order — the
// same ascending-rank canonical order the message plan uses — runs the
// cross-node plan, and hands everyone the finished result. Channel
// operations allocate nothing, so the hierarchical path keeps the
// reducer's 0 allocs/op steady state.
type combiner struct {
	vals   []float64
	result float64
	// arrive signals a deposited value; the leader drains len(vals)-1
	// of them per collective, so back-to-back collectives (the
	// controller's Sum then Max) cannot mix generations.
	arrive chan struct{}
	// done[i] releases the member in slot i+1 after result is set.
	done []chan struct{}
}

func newCombiner(size int) *combiner {
	c := &combiner{
		vals:   make([]float64, size),
		arrive: make(chan struct{}, size),
		done:   make([]chan struct{}, size-1),
	}
	for i := range c.done {
		c.done[i] = make(chan struct{}, 1)
	}
	return c
}

// buildCombiners resolves a ReduceGroup option against the world size
// and allocates one combiner per contiguous node (the last node may be
// smaller). group <= 1 (flat) returns no combiners.
func buildCombiners(group, procs int) (int, []*combiner, error) {
	if group < 0 {
		return 0, nil, fmt.Errorf("par: reduce group must be >= 1, got %d", group)
	}
	if group <= 1 {
		return 1, nil, nil
	}
	if group > procs {
		return 0, nil, fmt.Errorf("par: reduce group %d exceeds the %d ranks of the run", group, procs)
	}
	var combs []*combiner
	for lo := 0; lo < procs; lo += group {
		sz := group
		if procs-lo < sz {
			sz = procs - lo
		}
		combs = append(combs, newCombiner(sz))
	}
	return group, combs, nil
}

// newReducer builds rank's endpoint. Flat worlds (group <= 1, nil
// combs) walk the full recursive-doubling plan; hierarchical worlds
// give leaders the shorter leaders-only plan and members no plan at
// all — their traffic is the node combine.
func newReducer(c *msg.Comm, group int, combs []*combiner, rank int) *reducer {
	r := &reducer{comm: c, plan: msg.ReducePlanLeaders(c.Size(), rank, group)}
	if group > 1 {
		r.comb = combs[rank/group]
		r.slot = rank % group
	}
	return r
}

// combineFn folds the received subtree value into the local one; lo
// precedes hi in rank order.
type combineFn func(lo, hi float64) float64

func combineSum(lo, hi float64) float64 { return lo + hi }

func combineMax(lo, hi float64) float64 {
	if hi > lo {
		return hi
	}
	return lo
}

// allreduce reduces the scalar in r.val[0]: hierarchically through the
// node combiner when one is attached, otherwise by walking the flat
// message plan.
func (r *reducer) allreduce(f combineFn) {
	if r.comb == nil {
		r.runPlan(f)
		return
	}
	c := r.comb
	if r.slot > 0 {
		// Member: deposit, wait for the leader's finished result. The
		// channel send/receive pair gives the happens-before edges for
		// both vals[slot] (written before arrive) and result (written
		// before done).
		c.vals[r.slot] = r.val[0]
		c.arrive <- struct{}{}
		<-c.done[r.slot-1]
		r.val[0] = c.result
		return
	}
	// Leader: fold the node in ascending slot order (slot order is rank
	// order, the canonical combine order of the message plan), reduce
	// across nodes, publish.
	for i := 1; i < len(c.vals); i++ {
		<-c.arrive
	}
	acc := r.val[0]
	for i := 1; i < len(c.vals); i++ {
		acc = f(acc, c.vals[i])
	}
	r.val[0] = acc
	r.runPlan(f)
	c.result = r.val[0]
	for _, d := range c.done {
		d <- struct{}{}
	}
}

// runPlan walks the message plan on the scalar in r.val[0].
func (r *reducer) runPlan(f combineFn) {
	for _, st := range r.plan {
		if st.Send {
			r.T.AddMessage(8 * len(r.val))
			r.comm.Send(st.Partner, msg.Tag(reduceTagBase+st.Tag), r.val[:])
		}
		if st.Recv {
			r.T.Startups++
			r.comm.Recv(st.Partner, msg.Tag(reduceTagBase+st.Tag), r.buf[:])
			switch {
			case !st.Combine:
				r.val[0] = r.buf[0] // unfold: the finished result
			case st.RecvLower:
				r.val[0] = f(r.buf[0], r.val[0])
			default:
				r.val[0] = f(r.val[0], r.buf[0])
			}
		}
	}
}

// Sum implements solver.Reduction: the global sum of every rank's x.
func (r *reducer) Sum(x float64) float64 {
	r.val[0] = x
	r.allreduce(combineSum)
	return r.val[0]
}

// Max implements solver.Reduction: the global max of every rank's x.
func (r *reducer) Max(x float64) float64 {
	r.val[0] = x
	r.allreduce(combineMax)
	return r.val[0]
}
