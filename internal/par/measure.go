package par

import (
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// Measured cost profiles: the optional warm-up source behind the
// "measured" balance mode. A short run on a *uniform* decomposition
// yields per-rank busy times; spreading each rank's busy time evenly
// over its owned indices gives a piecewise-constant per-index cost
// profile that decomp.WeightedAxial/WeightedRadial can re-balance. The
// profile only steers which indices a rank owns — the physics is
// partition-independent — so timer noise can cost efficiency, never
// correctness.

// busyWeights converts per-rank busy times into a per-index profile,
// or nil when the probe carried no usable signal (a rank's busy time
// rounded to zero, or a single-rank probe).
func busyWeights(d *decomp.Decomposition, res *Result) []float64 {
	if d.P < 2 {
		return nil
	}
	w := make([]float64, d.Nx)
	for r := 0; r < d.P; r++ {
		busy := res.Ranks[r].Busy.Seconds()
		if busy <= 0 {
			return nil
		}
		i0, n := d.Range(r)
		per := busy / float64(n)
		for i := i0; i < i0+n; i++ {
			w[i] = per
		}
	}
	return w
}

// MeasuredColWeights runs a steps-long warm-up on a uniform axial
// decomposition of up to procs ranks and returns the per-column cost
// profile its busy times imply. nil (uniform) when the probe cannot
// resolve a profile.
func MeasuredColWeights(cfg jet.Config, g *grid.Grid, procs, steps int) ([]float64, error) {
	probe := procs
	if m := g.Nx / decomp.MinWidth; probe > m {
		probe = m
	}
	if probe < 2 {
		return nil, nil
	}
	if steps < 1 {
		steps = 1
	}
	r, err := NewRunner(cfg, g, Options{Procs: probe, Policy: solver.Lagged})
	if err != nil {
		return nil, err
	}
	return busyWeights(r.Dec, r.Run(steps)), nil
}

// MeasuredRowWeights is the radial analog: a 1-by-pr rank-grid warm-up
// whose per-rank busy times become a per-row cost profile.
func MeasuredRowWeights(cfg jet.Config, g *grid.Grid, procs, steps int) ([]float64, error) {
	probe := procs
	if m := g.Nr / decomp.MinHeight; probe > m {
		probe = m
	}
	if probe < 2 {
		return nil, nil
	}
	if steps < 1 {
		steps = 1
	}
	r, err := NewRunner2D(cfg, g, Options2D{Px: 1, Pr: probe, Policy: solver.Lagged})
	if err != nil {
		return nil, err
	}
	return busyWeights(r.Dec.R, r.Run(steps)), nil
}
