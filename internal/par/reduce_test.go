package par

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/msg"
)

// runAllreduce executes one collective concurrently on every rank of a
// fresh world and returns the per-rank results.
func runAllreduce(p int, in []float64, op func(r *reducer, x float64) float64) []float64 {
	w := msg.NewWorld(p)
	out := make([]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		red := newReducer(w.Comm(r), 1, nil, r)
		wg.Add(1)
		go func(r int, red *reducer) {
			defer wg.Done()
			out[r] = op(red, in[r])
		}(r, red)
	}
	wg.Wait()
	return out
}

// TestAllreduceParity checks the collective against the serial fold on
// every world size the backend sweep uses and beyond (1..9 covers the
// power-of-two, folded-remainder, and singleton topologies). With
// exactly representable inputs the sum is associative, so every world
// size must reproduce the serial left-fold bitwise; Max is exact for
// any input. In all cases every rank must finish with the bitwise-
// identical value — the convergence controller's per-rank stop
// decisions depend on it.
func TestAllreduceParity(t *testing.T) {
	for p := 1; p <= 9; p++ {
		t.Run(fmt.Sprintf("procs%d", p), func(t *testing.T) {
			// Exactly representable values: halves sum without rounding.
			in := make([]float64, p)
			serial := 0.0
			for r := range in {
				in[r] = float64(r+1) + 0.5
				serial += in[r]
			}
			got := runAllreduce(p, in, (*reducer).Sum)
			for r, g := range got {
				if g != serial {
					t.Errorf("sum: rank %d got %g, serial fold %g", r, g, serial)
				}
			}

			// Max is exact for arbitrary floats.
			rng := rand.New(rand.NewSource(int64(p)))
			maxIn := make([]float64, p)
			want := math.Inf(-1)
			for r := range maxIn {
				maxIn[r] = rng.NormFloat64()
				if maxIn[r] > want {
					want = maxIn[r]
				}
			}
			gotMax := runAllreduce(p, maxIn, (*reducer).Max)
			for r, g := range gotMax {
				if g != want {
					t.Errorf("max: rank %d got %g, want %g", r, g, want)
				}
			}

			// Arbitrary floats: the tree association may differ from the
			// serial fold by rounding, but all ranks must agree bitwise
			// and stay within a few ulps of the fold.
			sumIn := make([]float64, p)
			fold := 0.0
			for r := range sumIn {
				sumIn[r] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
				fold += sumIn[r]
			}
			gotSum := runAllreduce(p, sumIn, (*reducer).Sum)
			for r, g := range gotSum {
				if g != gotSum[0] {
					t.Errorf("sum: rank %d got %x, rank 0 got %x — ranks must agree bitwise", r, math.Float64bits(g), math.Float64bits(gotSum[0]))
				}
			}
			if rel := math.Abs(gotSum[0]-fold) / math.Max(math.Abs(fold), 1e-300); rel > 1e-13 {
				t.Errorf("sum: tree result %g vs serial fold %g (rel %g)", gotSum[0], fold, rel)
			}
		})
	}
}

// TestAllreduceCounters checks the collective's traffic accounting:
// the reducer's Reduce-class counters must mirror the message layer's
// own counts (sends as startups+bytes, receives as startups), so
// DirCounters.Total still reconciles with the aggregate Comm counters.
func TestAllreduceCounters(t *testing.T) {
	const p = 4
	w := msg.NewWorld(p)
	reds := make([]*reducer, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		reds[r] = newReducer(w.Comm(r), 1, nil, r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			reds[r].Sum(1)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		c := w.Comm(r).Counters
		if reds[r].T.Startups != c.Startups || reds[r].T.Bytes != c.Bytes {
			t.Errorf("rank %d: reducer counted %v, message layer %v", r, reds[r].T, c)
		}
		// log2(4) = 2 rounds, each one send + one recv: 4 startups.
		if reds[r].T.Startups != 4 {
			t.Errorf("rank %d: %d startups for one 4-rank collective, want 4", r, reds[r].T.Startups)
		}
	}
}
