package par

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/decomp"
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/msg"
	"repro/internal/solver"
	"repro/internal/trace"
)

// Options2D configures a 2-D rank-grid run. Zero Px/Pr picks the
// surface-minimizing shape for Procs ranks.
type Options2D struct {
	Procs  int // total ranks when Px/Pr are zero
	Px, Pr int // explicit rank-grid shape (both or neither)
	// Version selects the communication strategy: V5 (grouped, the
	// default) or V6 (interior computation overlapped with the column
	// and row exchanges). V7's de-burst flux messages are defined for
	// the axial decomposition only and are rejected here.
	Version Version
	Policy  solver.HaloPolicy
	CFL     float64 // 0 means solver.DefaultCFL
	// ColWeights/RowWeights are optional per-column and per-row cost
	// profiles; either direction weighted independently
	// (decomp.WeightedGrid2D), nil keeping that direction's uniform
	// split. Numerics-neutral exactly as par.Options.ColWeights.
	ColWeights []float64
	RowWeights []float64
	// Prob is the scenario problem every block runs (nil = built-in jet).
	Prob *solver.Problem
	// ReduceGroup makes the allreduce hierarchical over the flat rank
	// numbering, exactly as par.Options.ReduceGroup.
	ReduceGroup int
}

// Shape resolves the rank grid: explicit Px×Pr, one explicit factor
// with the other derived from Procs, or the automatic near-square fit.
// A Procs that contradicts an explicit shape is an error, not a silent
// override — a scaling run must use exactly the width it asked for.
func (o Options2D) Shape(g *grid.Grid) (px, pr int, err error) {
	p := o.Procs
	switch {
	case o.Px > 0 && o.Pr > 0:
		if p > 0 && o.Px*o.Pr != p {
			return 0, 0, fmt.Errorf("par: shape %dx%d uses %d ranks, not the requested %d", o.Px, o.Pr, o.Px*o.Pr, p)
		}
		return o.Px, o.Pr, nil
	case o.Px > 0:
		if p < o.Px || p%o.Px != 0 {
			return 0, 0, fmt.Errorf("par: px=%d does not divide %d ranks", o.Px, p)
		}
		return o.Px, p / o.Px, nil
	case o.Pr > 0:
		if p < o.Pr || p%o.Pr != 0 {
			return 0, 0, fmt.Errorf("par: pr=%d does not divide %d ranks", o.Pr, p)
		}
		return p / o.Pr, o.Pr, nil
	}
	if p < 1 {
		p = 1
	}
	return decomp.Shape2D(g.Nx, g.Nr, p)
}

// Runner2D owns the blocks and the message world of a 2-D rank-grid
// solver: px axial blocks crossed with pr radial blocks, each running
// the slab engine on its sub-rectangle and exchanging ghost columns
// axially and ghost rows radially.
type Runner2D struct {
	Cfg   jet.Config
	Grid  *grid.Grid
	Opt   Options2D
	Dec   *decomp.Grid2D
	World *msg.World
	Slabs []*solver.Slab
	comms []*msg.Comm
	halos []*rankHalo
	reds  []*reducer
}

// NewRunner2D decomposes the grid in both directions, builds one slab
// per rank, and computes the global CFL time step.
func NewRunner2D(cfg jet.Config, g *grid.Grid, opt Options2D) (*Runner2D, error) {
	px, pr, err := opt.Shape(g)
	if err != nil {
		return nil, err
	}
	d, err := decomp.WeightedGrid2D(g.Nx, g.Nr, px, pr, opt.ColWeights, opt.RowWeights)
	if err != nil {
		return nil, err
	}
	switch opt.Version {
	case 0:
		opt.Version = V5
	case V5, V6:
	case V7:
		return nil, fmt.Errorf("par: Version 7 (de-burst flux messages) is defined for the axial decomposition only, not the 2-D rank grid")
	default:
		return nil, fmt.Errorf("par: unknown communication version %d", int(opt.Version))
	}
	if opt.CFL == 0 {
		opt.CFL = solver.DefaultCFL
	}
	opt.Px, opt.Pr, opt.Procs = px, pr, px*pr
	ext := trace.WideExtension(cfg.Viscous, opt.Policy.Depth())
	if ext > 0 {
		var widths, heights []int
		for rank := 0; rank < d.Ranks(); rank++ {
			_, nxloc, _, nrloc := d.Block(rank)
			widths = append(widths, nxloc)
			heights = append(heights, nrloc)
		}
		if px > 1 {
			if err := CheckWideFit(cfg.Viscous, opt.Policy.Depth(), widths, "column"); err != nil {
				return nil, err
			}
		}
		if pr > 1 {
			if err := CheckWideFit(cfg.Viscous, opt.Policy.Depth(), heights, "row"); err != nil {
				return nil, err
			}
		}
		if px == 1 && pr == 1 {
			ext = 0 // single rank: no interior sides
		}
	}
	group, combs, err := buildCombiners(opt.ReduceGroup, px*pr)
	if err != nil {
		return nil, err
	}
	gm := cfg.Gas()
	world := msg.NewWorld(d.Ranks())
	r := &Runner2D{Cfg: cfg, Grid: g, Opt: opt, Dec: d, World: world}
	dt := math.Inf(1)
	for rank := 0; rank < d.Ranks(); rank++ {
		i0, nxloc, j0, nrloc := d.Block(rank)
		left, right, down, up := d.Neighbors(rank)
		extL, extR, extB, extT := 0, 0, 0, 0
		if left >= 0 {
			extL = ext
		}
		if right >= 0 {
			extR = ext
		}
		if down >= 0 {
			extB = ext
		}
		if up >= 0 {
			extT = ext
		}
		comm := world.Comm(rank)
		h := newRankHalo2D(comm, d, rank, nxloc+extL+extR, nrloc+extB+extT, opt.Version, ext, opt.Prob.Walls())
		sl, err := solver.NewSlabProblem(cfg, opt.Prob, g, gm, i0-extL, nxloc+extL+extR, j0-extB, nrloc+extB+extT, h, opt.Policy)
		if err != nil {
			return nil, err
		}
		sl.ExtL, sl.ExtR, sl.ExtB, sl.ExtT = extL, extR, extB, extT
		sl.Overlap = opt.Version == V6
		sl.InitParallelFlow()
		if local := sl.StableDt(opt.CFL); local < dt {
			dt = local
		}
		r.Slabs = append(r.Slabs, sl)
		r.comms = append(r.comms, comm)
		r.halos = append(r.halos, h)
		r.reds = append(r.reds, newReducer(comm, group, combs, rank))
	}
	for _, sl := range r.Slabs {
		sl.Dt = dt
	}
	return r, nil
}

// Run advances all ranks by n composite steps concurrently and returns
// the measured profile.
func (r *Runner2D) Run(n int) *Result {
	return r.RunControlled(n, solver.Control{})
}

// RunControlled is Run under residual-driven convergence control; the
// allreduce runs over the flat rank numbering, so the collective is
// identical for every rank-grid shape. A zero Control reproduces the
// plain fixed-step Run exactly.
func (r *Runner2D) RunControlled(n int, ctl solver.Control) *Result {
	if ctl.CFL == 0 {
		ctl.CFL = r.Opt.CFL
	}
	var wg sync.WaitGroup
	totals := make([]time.Duration, len(r.Slabs))
	runs := make([]solver.ConvergedRun, len(r.Slabs))
	start := time.Now()
	for i, sl := range r.Slabs {
		wg.Add(1)
		go func(i int, sl *solver.Slab) {
			defer wg.Done()
			t0 := time.Now()
			runs[i] = sl.RunControlled(n, ctl, r.reds[i])
			totals[i] = time.Since(t0)
		}(i, sl)
	}
	wg.Wait()
	res := &Result{
		Steps:     runs[0].Steps,
		Procs:     r.Opt.Procs,
		Dt:        r.Slabs[0].Dt,
		Elapsed:   time.Since(start),
		Converged: runs[0].Converged,
		Residuals: runs[0].Residuals,
	}
	res.Diag = r.Diagnose()
	for i, sl := range r.Slabs {
		c := r.comms[i]
		dir := r.halos[i].dir
		dir.Reduce = r.reds[i].T
		res.Ranks = append(res.Ranks, RankStats{
			Rank:           i,
			Busy:           totals[i] - c.WaitTime,
			Wait:           c.WaitTime,
			Total:          totals[i],
			Comm:           c.Counters,
			Dir:            dir,
			Flops:          sl.T.Flops,
			RedundantFlops: sl.T.RedundantFlops,
		})
	}
	return res
}

// SeedState loads a full-grid conservative state into every block and
// positions every clock at composite step `step` — the 2-D counterpart
// of Runner.SeedState, making the rank grid a restartable Parareal fine
// propagator.
func (r *Runner2D) SeedState(full *flux.State, step int) {
	for _, sl := range r.Slabs {
		sl.LoadState(full)
		sl.SetClock(step, float64(step)*sl.Dt, sl.Dt)
	}
}

// AdvanceSteps runs n composite steps concurrently at the fixed dt with
// no monitoring.
func (r *Runner2D) AdvanceSteps(n int) {
	var wg sync.WaitGroup
	for _, sl := range r.Slabs {
		wg.Add(1)
		go func(sl *solver.Slab) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				sl.Advance()
			}
		}(sl)
	}
	wg.Wait()
}

// StoreState gathers every block's owned core into a full-grid
// conservative state, tiling the domain exactly.
func (r *Runner2D) StoreState(full *flux.State) {
	for _, sl := range r.Slabs {
		sl.StoreState(full)
	}
}

// Diagnose aggregates the per-block diagnostics.
func (r *Runner2D) Diagnose() solver.Diagnostics {
	var d solver.Diagnostics
	d.MinRho, d.MinP = math.Inf(1), math.Inf(1)
	for _, sl := range r.Slabs {
		sd := sl.Diagnose()
		d.Mass += sd.Mass
		d.Energy += sd.Energy
		d.OwnPoints += sd.OwnPoints
		if sd.MaxV > d.MaxV {
			d.MaxV = sd.MaxV
		}
		if sd.MinRho < d.MinRho {
			d.MinRho = sd.MinRho
		}
		if sd.MinP < d.MinP {
			d.MinP = sd.MinP
		}
		d.HasNaN = d.HasNaN || sd.HasNaN
	}
	return d
}

// GatherState assembles the full-domain conservative state from the
// blocks (core values only — a Wide policy's redundant shell is the
// neighbour's data), for comparison against the serial solver.
func (r *Runner2D) GatherState() *flux.State {
	full := flux.NewState(r.Grid.Nx, r.Grid.Nr)
	for rank, sl := range r.Slabs {
		i0, nxloc, j0, nrloc := r.Dec.Block(rank)
		for k := 0; k < flux.NVar; k++ {
			for c := 0; c < nxloc; c++ {
				copy(full[k].Col(i0+c)[j0:j0+nrloc], sl.Q[k].Col(sl.ExtL+c)[sl.ExtB:sl.ExtB+nrloc])
			}
		}
	}
	return full
}
