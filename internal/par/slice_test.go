package par

import (
	"testing"

	"repro/internal/flux"
	"repro/internal/msg"
)

// TestSliceHandoffRoundTrip checks the packed-state handoff end to end:
// the received state matches the sent one bitwise and the exactness flag
// and defect ride along unchanged.
func TestSliceHandoffRoundTrip(t *testing.T) {
	const nx, nr = 8, 6
	w := msg.NewWorld(2)
	s0 := NewSliceComm(w.Comm(0), nx, nr)
	s1 := NewSliceComm(w.Comm(1), nx, nr)
	src := flux.NewState(nx, nr)
	dst := flux.NewState(nx, nr)
	for k := range src {
		for i := 0; i < nx; i++ {
			col := src[k].Col(i)
			for j := range col {
				col[j] = float64(k*1000 + i*10 + j)
			}
		}
	}
	s0.SendState(1, src, true, 0.25)
	exact, defect := s1.RecvState(0, dst)
	if !exact || defect != 0.25 {
		t.Fatalf("handoff metadata: exact=%v defect=%v", exact, defect)
	}
	for k := range src {
		if d := src[k].MaxAbsDiff(dst[k]); d != 0 {
			t.Fatalf("component %d differs after handoff: max diff %g", k, d)
		}
	}
	s1.SendVerdict(0, 1.5)
	if v := s0.RecvVerdict(1); v != 1.5 {
		t.Fatalf("verdict round trip: %g", v)
	}
}

// TestSliceHandoffSteadyStateAllocs locks in the allocation-free slice
// handoff: with the staging buffer sized at construction and the message
// layer recycling payloads, a full state handoff plus the verdict
// broadcast allocates nothing in steady state — the Parareal coordinator
// repeats this every correction iteration.
func TestSliceHandoffSteadyStateAllocs(t *testing.T) {
	const nx, nr = 16, 12
	w := msg.NewWorld(2)
	s0 := NewSliceComm(w.Comm(0), nx, nr)
	s1 := NewSliceComm(w.Comm(1), nx, nr)
	src := flux.NewState(nx, nr)
	dst := flux.NewState(nx, nr)
	for k := range src {
		src[k].FillAll(float64(k + 1))
	}
	handoff := func() {
		s0.SendState(1, src, false, 0.5)
		s1.RecvState(0, dst)
		s1.SendVerdict(0, 0.5)
		s0.RecvVerdict(1)
	}
	handoff() // prime the message-layer free list
	if allocs := testing.AllocsPerRun(50, handoff); allocs != 0 {
		t.Errorf("steady-state slice handoff allocates %.1f times, want 0", allocs)
	}
}
