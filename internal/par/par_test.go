package par

import (
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func testGrid() *grid.Grid { return grid.MustNew(64, 24, 50, 5) }

// runSerial advances the reference solver and returns its state.
func runSerial(t *testing.T, cfg jet.Config, g *grid.Grid, steps int) *solver.Serial {
	t.Helper()
	s, err := solver.NewSerial(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(steps)
	return s
}

// TestParallelMatchesSerialBitwise is the central correctness property
// of the parallelization: under the Fresh halo policy, every rank count
// and every communication strategy must reproduce the serial arithmetic
// exactly.
func TestParallelMatchesSerialBitwise(t *testing.T) {
	const steps = 8
	for _, cfg := range []jet.Config{jet.Paper(), jet.Euler()} {
		g := testGrid()
		ref := runSerial(t, cfg, g, steps)
		for _, procs := range []int{1, 2, 3, 4, 8} {
			for _, ver := range []Version{V5, V6, V7} {
				r, err := NewRunner(cfg, g, Options{Procs: procs, Version: ver, Policy: solver.Fresh})
				if err != nil {
					t.Fatal(err)
				}
				if r.Slabs[0].Dt != ref.Dt {
					t.Fatalf("P=%d %v: dt %g != serial %g", procs, ver, r.Slabs[0].Dt, ref.Dt)
				}
				r.Run(steps)
				got := r.GatherState()
				for k := 0; k < flux.NVar; k++ {
					if !got[k].Equal(ref.Q[k]) {
						t.Errorf("viscous=%v P=%d %v: component %d differs from serial (max %g)",
							cfg.Viscous, procs, ver, k, got[k].MaxAbsDiff(ref.Q[k]))
					}
				}
			}
		}
	}
}

// Under the Lagged policy (the paper's startup budget) the parallel
// Navier-Stokes run uses one-stage-old halos for viscous
// cross-derivatives in the radial sweep; it must agree with serial to a
// small tolerance, and Euler (no cross-derivatives) must stay exact.
func TestLaggedPolicyAccuracy(t *testing.T) {
	const steps = 10
	g := testGrid()

	eRef := runSerial(t, jet.Euler(), g, steps)
	r, err := NewRunner(jet.Euler(), g, Options{Procs: 4, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(steps)
	got := r.GatherState()
	for k := 0; k < flux.NVar; k++ {
		if !got[k].Equal(eRef.Q[k]) {
			t.Errorf("Euler lagged: component %d differs (max %g)", k, got[k].MaxAbsDiff(eRef.Q[k]))
		}
	}

	nRef := runSerial(t, jet.Paper(), g, steps)
	rn, err := NewRunner(jet.Paper(), g, Options{Procs: 4, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	rn.Run(steps)
	gotN := rn.GatherState()
	for k := 0; k < flux.NVar; k++ {
		// The lagged halo perturbs only viscous cross-derivatives at slab
		// boundaries: O(mu*dt) per step, tiny but nonzero.
		if d := gotN[k].MaxAbsDiff(nRef.Q[k]); d > 5e-6 {
			t.Errorf("N-S lagged: component %d deviates %g from serial", k, d)
		}
	}
}

// TestStartupCountsMatchTable1 verifies the paper's message budget:
// under the Lagged policy an interior rank initiates 16 startups per
// composite step for Navier-Stokes and 12 for Euler (sends plus
// receives, two neighbours).
func TestStartupCountsMatchTable1(t *testing.T) {
	const steps = 5
	cases := []struct {
		cfg  jet.Config
		want int64
	}{
		{jet.Paper(), 16},
		{jet.Euler(), 12},
	}
	for _, c := range cases {
		r, err := NewRunner(c.cfg, testGrid(), Options{Procs: 4, Policy: solver.Lagged})
		if err != nil {
			t.Fatal(err)
		}
		res := r.Run(steps)
		for _, rs := range res.Ranks {
			if rs.Rank == 0 || rs.Rank == res.Procs-1 {
				continue // edge ranks have one neighbour
			}
			perStep := rs.Comm.Startups / int64(steps)
			if perStep != c.want {
				t.Errorf("viscous=%v rank %d: %d startups/step, want %d", c.cfg.Viscous, rs.Rank, perStep, c.want)
			}
		}
		// Edge ranks: half the startups.
		if per := res.Ranks[0].Comm.Startups / int64(steps); per != c.want/2 {
			t.Errorf("viscous=%v edge rank: %d startups/step, want %d", c.cfg.Viscous, per, c.want/2)
		}
	}
}

// TestVolumeMatchesTable1 checks the per-step send volume of an interior
// rank: 16 column-variables per neighbour for N-S (25.6 KB at nr=100),
// 12 for Euler, as derived in DESIGN.md §5.
func TestVolumeMatchesTable1(t *testing.T) {
	const steps = 5
	g := testGrid()
	nr := g.Nr
	cases := []struct {
		cfg        jet.Config
		colVarsPer int // per neighbour per step
	}{
		{jet.Paper(), 16},
		{jet.Euler(), 12},
	}
	for _, c := range cases {
		r, err := NewRunner(c.cfg, g, Options{Procs: 4, Policy: solver.Lagged})
		if err != nil {
			t.Fatal(err)
		}
		res := r.Run(steps)
		rs := res.Ranks[1] // interior: two neighbours
		// colVarsPer counts 4 vars x 4 (or 3) exchanges; each exchange
		// sends 2 columns: bytes = colVars*2cols*nr*8 per neighbour/step.
		wantBytes := int64(c.colVarsPer) * 2 * int64(nr) * 8 * int64(steps) * 2 // two neighbours
		if rs.Comm.Bytes != wantBytes {
			t.Errorf("viscous=%v: interior rank sent %d bytes, want %d", c.cfg.Viscous, rs.Comm.Bytes, wantBytes)
		}
	}
}

// Version 7 doubles the flux-exchange startups without changing volume.
func TestVersion7Startups(t *testing.T) {
	const steps = 4
	g := testGrid()
	r5, err := NewRunner(jet.Paper(), g, Options{Procs: 4, Version: V5, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	r7, err := NewRunner(jet.Paper(), g, Options{Procs: 4, Version: V7, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	res5, res7 := r5.Run(steps), r7.Run(steps)
	s5, s7 := res5.Ranks[1].Comm.Startups, res7.Ranks[1].Comm.Startups
	// N-S: 4 exchanges of which 2 are flux kinds; V7 doubles those:
	// 16 -> 24 startups/step.
	if want := s5 * 24 / 16; s7 != want {
		t.Errorf("V7 startups = %d, want %d (V5 = %d)", s7, want, s5)
	}
	if res5.Ranks[1].Comm.Bytes != res7.Ranks[1].Comm.Bytes {
		t.Errorf("V7 changed volume: %d vs %d", res7.Ranks[1].Comm.Bytes, res5.Ranks[1].Comm.Bytes)
	}
}

func TestRunnerValidation(t *testing.T) {
	g := testGrid()
	if _, err := NewRunner(jet.Paper(), g, Options{Procs: 0}); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := NewRunner(jet.Paper(), g, Options{Procs: 64}); err == nil {
		t.Error("want error for slabs below stencil width")
	}
	if _, err := NewRunner(jet.Paper(), g, Options{Procs: 2, Version: Version(9)}); err == nil {
		t.Error("want error for unknown version")
	}
}

func TestLoadBalanceNearPerfect(t *testing.T) {
	r, err := NewRunner(jet.Paper(), testGrid(), Options{Procs: 8, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	if imb := r.Dec.Imbalance(); imb > 0.15 {
		t.Errorf("decomposition imbalance %g too high", imb)
	}
	res := r.Run(6)
	// FLOP counts should be balanced to within the column imbalance.
	minF, maxF := res.Ranks[0].Flops, res.Ranks[0].Flops
	for _, rs := range res.Ranks {
		if rs.Flops < minF {
			minF = rs.Flops
		}
		if rs.Flops > maxF {
			maxF = rs.Flops
		}
	}
	if (maxF-minF)/maxF > 0.2 {
		t.Errorf("flop imbalance: min %g max %g", minF, maxF)
	}
}
