package par

import (
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/msg"
	"repro/internal/solver"
)

// rankHalo implements solver.Halo over the message layer. Boundary
// columns are grouped into a single send per neighbour per exchange
// (the paper's startup-reduction optimization); Version 7 splits the
// flux exchanges into one-column messages to reduce burstiness. The
// pack and unpack staging buffers are sized for the widest exchange at
// construction, so the steady-state exchange path allocates nothing.
type rankHalo struct {
	comm      *msg.Comm
	left      int // neighbour ranks, -1 at domain edges
	right     int
	n         int // owned columns
	version   Version
	sendBuf   []float64
	recvBuf   []float64
	edgeLeft  solver.EdgeHalo
	edgeRight solver.EdgeHalo
}

func newRankHalo(c *msg.Comm, rank, procs, n, nr int, v Version) *rankHalo {
	h := &rankHalo{comm: c, left: rank - 1, right: rank + 1, n: n, version: v}
	maxMsg := flux.NVar * field.Halo * nr
	h.sendBuf = make([]float64, 0, maxMsg)
	h.recvBuf = make([]float64, 0, maxMsg)
	if rank == 0 {
		h.left = -1
		h.edgeLeft = solver.EdgeHalo{Left: true}
	}
	if rank == procs-1 {
		h.right = -1
		h.edgeRight = solver.EdgeHalo{Right: true}
	}
	return h
}

// tag encodes the exchange kind and the message part (Version 7 splits
// flux exchanges into two parts).
func tag(k solver.Kind, part int) msg.Tag { return msg.Tag(int(k)*4 + part) }

// fluxKind reports whether an exchange carries flux columns (the ones
// Version 7 de-bursts).
func fluxKind(k solver.Kind) bool { return k == solver.KFlux || k == solver.KPredFlux }

// parts returns how many messages one exchange to one neighbour uses.
func (h *rankHalo) parts(k solver.Kind) int {
	if h.version == V7 && fluxKind(k) {
		return 2
	}
	return 1
}

// pack copies ncols columns starting at c0 of every component into buf,
// growing it only if the constructor-sized capacity is exceeded (which
// does not happen on the solver's exchange schedule).
func pack(b *flux.State, c0, ncols int, buf []float64) []float64 {
	nr := b[0].Nr
	need := flux.NVar * ncols * nr
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	buf = buf[:need]
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].PackCols(c0, ncols, buf[o:])
	}
	return buf
}

// unpack scatters buf into ncols columns starting at c0 (ghost columns
// are legal targets).
func unpack(b *flux.State, c0, ncols int, buf []float64) {
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].UnpackCols(c0, ncols, buf[o:])
	}
}

// sendTo groups the boundary columns [c0, c0+2) into parts(k) messages.
func (h *rankHalo) sendTo(to int, k solver.Kind, b *flux.State, c0 int) {
	if h.parts(k) == 1 {
		h.sendBuf = pack(b, c0, field.Halo, h.sendBuf)
		h.comm.Send(to, tag(k, 0), h.sendBuf)
		return
	}
	for p := 0; p < field.Halo; p++ {
		h.sendBuf = pack(b, c0+p, 1, h.sendBuf)
		h.comm.Send(to, tag(k, p), h.sendBuf)
	}
}

// recvFrom receives the neighbour's boundary columns into ghost columns
// starting at c0, staging them through the constructor-sized recvBuf.
func (h *rankHalo) recvFrom(from int, k solver.Kind, b *flux.State, c0 int) {
	nr := b[0].Nr
	if h.parts(k) == 1 {
		need := flux.NVar * field.Halo * nr
		if cap(h.recvBuf) < need {
			h.recvBuf = make([]float64, need)
		}
		h.comm.Recv(from, tag(k, 0), h.recvBuf[:need])
		unpack(b, c0, field.Halo, h.recvBuf[:need])
		return
	}
	need := flux.NVar * nr
	for p := 0; p < field.Halo; p++ {
		h.comm.Recv(from, tag(k, p), h.recvBuf[:need])
		unpack(b, c0+p, 1, h.recvBuf[:need])
	}
}

// Start implements solver.Halo: initiate the sends of one exchange.
// Rank r sends its first two owned columns to its left neighbour and
// its last two to its right neighbour.
func (h *rankHalo) Start(k solver.Kind, b *flux.State) {
	if h.left >= 0 {
		h.sendTo(h.left, k, b, 0)
	}
	if h.right >= 0 {
		h.sendTo(h.right, k, b, h.n-field.Halo)
	}
}

// Finish implements solver.Halo: complete the receives and apply the
// domain-edge extrapolation where there is no neighbour.
func (h *rankHalo) Finish(k solver.Kind, b *flux.State) {
	if h.left >= 0 {
		h.recvFrom(h.left, k, b, -field.Halo)
	} else {
		h.edgeLeft.FillEdges(b)
	}
	if h.right >= 0 {
		h.recvFrom(h.right, k, b, h.n)
	} else {
		h.edgeRight.FillEdges(b)
	}
}

// Fill implements solver.Halo.
func (h *rankHalo) Fill(k solver.Kind, b *flux.State) {
	h.Start(k, b)
	h.Finish(k, b)
}

// FillEdges implements solver.Halo (edge extrapolation only; interior
// halo ghosts keep their previous — lagged — contents).
func (h *rankHalo) FillEdges(b *flux.State) {
	h.edgeLeft.FillEdges(b)
	h.edgeRight.FillEdges(b)
}
