package par

import (
	"repro/internal/decomp"
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/msg"
	"repro/internal/solver"
	"repro/internal/trace"
)

// rankHalo implements solver.Halo over the message layer for a rank of
// either decomposition: the paper's axial-only split (left/right
// neighbours, ghost columns) and the 2-D rank grid (additionally
// down/up neighbours, ghost rows). Boundary columns are grouped into a
// single send per neighbour per exchange (the paper's
// startup-reduction optimization); Version 7 splits the axial flux
// exchanges into one-column messages to reduce burstiness. The pack and
// unpack staging buffers are sized for the widest exchange at
// construction, so the steady-state exchange path — columns and rows
// alike — allocates nothing.
type rankHalo struct {
	comm    *msg.Comm
	left    int // neighbour ranks, -1 at physical sides
	right   int
	down    int
	up      int
	n       int // local columns (core plus any redundant shell)
	nr      int // local rows (core plus any redundant shell)
	version Version
	// ext is the redundant-shell width of a Wide(k) halo policy, in
	// grid points per interior side (0 under Lagged/Fresh). The slab's
	// local rectangle is grown by ext on every interior side, so the
	// per-stage sends shift inward by 2*ext: the columns a neighbour
	// wants in its ghost slots sit just outside its own shell, 2*ext
	// deep into ours. Refresh re-sends the ext-wide shells themselves.
	ext int

	sendBuf    []float64 // axial (column) staging
	recvBuf    []float64
	rowSendBuf []float64 // radial (row) staging
	rowRecvBuf []float64

	edgeLeft   solver.EdgeHalo
	edgeRight  solver.EdgeHalo
	edgeBottom solver.EdgeHalo
	edgeTop    solver.EdgeHalo

	// dir splits this rank's message accounting by exchange direction
	// (the paper's Table 1 budget is purely axial; the 2-D topology adds
	// a radial share).
	dir trace.DirCounters
}

// newRankHalo builds the halo of an axial-only rank: radial sides are
// physical everywhere, so FillR degenerates to the serial
// mirror/extrapolation. wall selects the scenario's solid-wall edge
// treatment (zero value = jet).
func newRankHalo(c *msg.Comm, rank, procs, n, nr int, v Version, ext int, wall solver.WallSpec) *rankHalo {
	h := &rankHalo{comm: c, left: rank - 1, right: rank + 1, down: -1, up: -1, n: n, nr: nr, version: v, ext: ext}
	if rank == 0 {
		h.left = -1
		h.edgeLeft = solver.EdgeHalo{Left: true, Wall: wall}
	}
	if rank == procs-1 {
		h.right = -1
		h.edgeRight = solver.EdgeHalo{Right: true, Wall: wall}
	}
	h.edgeBottom = solver.EdgeHalo{Bottom: true, Wall: wall}
	h.edgeTop = solver.EdgeHalo{Top: true, Wall: wall}
	h.sizeBuffers()
	return h
}

// newRankHalo2D builds the halo of a 2-D rank-grid block: neighbour
// exchange on interior sides in both directions, physical treatment on
// domain edges. Exchanges are grouped in both directions (the Version 5
// message shape, which Version 6 keeps — overlap changes when the
// Start/Finish halves run, not what they carry).
func newRankHalo2D(c *msg.Comm, d *decomp.Grid2D, rank, n, nr int, v Version, ext int, wall solver.WallSpec) *rankHalo {
	h := &rankHalo{comm: c, n: n, nr: nr, version: v, ext: ext}
	h.left, h.right, h.down, h.up = d.Neighbors(rank)
	h.edgeLeft = solver.EdgeHalo{Left: h.left < 0, Wall: wall}
	h.edgeRight = solver.EdgeHalo{Right: h.right < 0, Wall: wall}
	h.edgeBottom = solver.EdgeHalo{Bottom: h.down < 0, Wall: wall}
	h.edgeTop = solver.EdgeHalo{Top: h.up < 0, Wall: wall}
	h.sizeBuffers()
	return h
}

// sizeBuffers allocates the staging buffers for the widest exchange in
// each direction — the per-stage ghost width or the refresh's shell
// width, whichever is larger — the capacity the steady-state path never
// exceeds.
func (h *rankHalo) sizeBuffers() {
	wide := field.Halo
	if h.ext > wide {
		wide = h.ext
	}
	colMsg := flux.NVar * wide * h.nr
	h.sendBuf = make([]float64, 0, colMsg)
	h.recvBuf = make([]float64, 0, colMsg)
	if h.down >= 0 || h.up >= 0 {
		rowMsg := flux.NVar * wide * h.n
		h.rowSendBuf = make([]float64, 0, rowMsg)
		h.rowRecvBuf = make([]float64, 0, rowMsg)
	}
}

// Refresh tags sit above the per-stage kind/part space (kinds use
// int(k)*4+part < 24) and below the reducer's tag base (64).
const (
	refreshRowTag msg.Tag = 40
	refreshColTag msg.Tag = 44
)

// tag encodes the exchange kind and the message part (Version 7 splits
// flux exchanges into two parts). Axial and radial exchanges reuse the
// same tag space: they travel on disjoint directed rank pairs.
func tag(k solver.Kind, part int) msg.Tag { return msg.Tag(int(k)*4 + part) }

// fluxKind reports whether an exchange carries flux columns (the ones
// Version 7 de-bursts).
func fluxKind(k solver.Kind) bool { return k == solver.KFlux || k == solver.KPredFlux }

// parts returns how many messages one exchange to one neighbour uses.
func (h *rankHalo) parts(k solver.Kind) int {
	if h.version == V7 && fluxKind(k) {
		return 2
	}
	return 1
}

// pack copies ncols columns starting at c0 of every component into buf,
// growing it only if the constructor-sized capacity is exceeded (which
// does not happen on the solver's exchange schedule).
func pack(b *flux.State, c0, ncols int, buf []float64) []float64 {
	nr := b[0].Nr
	need := flux.NVar * ncols * nr
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	buf = buf[:need]
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].PackCols(c0, ncols, buf[o:])
	}
	return buf
}

// unpack scatters buf into ncols columns starting at c0 (ghost columns
// are legal targets).
func unpack(b *flux.State, c0, ncols int, buf []float64) {
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].UnpackCols(c0, ncols, buf[o:])
	}
}

// packRows copies nrows rows starting at j0 of every component into
// buf; unpackRows scatters them back (ghost and owned rows are both
// legal targets — the refresh overwrites owned shell rows).
func packRows(b *flux.State, j0, nrows int, buf []float64) []float64 {
	need := flux.NVar * nrows * b[0].Nx
	if cap(buf) < need {
		buf = make([]float64, need)
	}
	buf = buf[:need]
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].PackRows(j0, nrows, buf[o:])
	}
	return buf
}

func unpackRows(b *flux.State, j0, nrows int, buf []float64) {
	o := 0
	for k := 0; k < flux.NVar; k++ {
		o += b[k].UnpackRows(j0, nrows, buf[o:])
	}
}

// sendTo groups the boundary columns [c0, c0+2) into parts(k) messages.
func (h *rankHalo) sendTo(to int, k solver.Kind, b *flux.State, c0 int) {
	if h.parts(k) == 1 {
		h.sendBuf = pack(b, c0, field.Halo, h.sendBuf)
		h.dir.Axial.AddMessage(8 * len(h.sendBuf))
		h.comm.Send(to, tag(k, 0), h.sendBuf)
		return
	}
	for p := 0; p < field.Halo; p++ {
		h.sendBuf = pack(b, c0+p, 1, h.sendBuf)
		h.dir.Axial.AddMessage(8 * len(h.sendBuf))
		h.comm.Send(to, tag(k, p), h.sendBuf)
	}
}

// recvFrom receives the neighbour's boundary columns into ghost columns
// starting at c0, staging them through the constructor-sized recvBuf.
func (h *rankHalo) recvFrom(from int, k solver.Kind, b *flux.State, c0 int) {
	nr := b[0].Nr
	if h.parts(k) == 1 {
		need := flux.NVar * field.Halo * nr
		if cap(h.recvBuf) < need {
			h.recvBuf = make([]float64, need)
		}
		h.dir.Axial.Startups++
		h.comm.Recv(from, tag(k, 0), h.recvBuf[:need])
		unpack(b, c0, field.Halo, h.recvBuf[:need])
		return
	}
	need := flux.NVar * nr
	for p := 0; p < field.Halo; p++ {
		h.dir.Axial.Startups++
		h.comm.Recv(from, tag(k, p), h.recvBuf[:need])
		unpack(b, c0+p, 1, h.recvBuf[:need])
	}
}

// Start implements solver.Halo: initiate the sends of one axial
// exchange. With no redundant shell (ext == 0) rank r sends its first
// two owned columns to its left neighbour and its last two to its
// right neighbour; under a Wide policy the neighbour's ghost slots sit
// just outside its own ext-wide shell, which is 2*ext columns into our
// rectangle (our shell plus theirs).
func (h *rankHalo) Start(k solver.Kind, b *flux.State) {
	if h.left >= 0 {
		h.sendTo(h.left, k, b, 2*h.ext)
	}
	if h.right >= 0 {
		h.sendTo(h.right, k, b, h.n-field.Halo-2*h.ext)
	}
}

// Finish implements solver.Halo: complete the receives and apply the
// physical edge treatment where there is no neighbour. The Kind is
// routed through so wall edges can pick the bundle-appropriate mirror
// (the jet treatment is Kind-independent).
func (h *rankHalo) Finish(k solver.Kind, b *flux.State) {
	if h.left >= 0 {
		h.recvFrom(h.left, k, b, -field.Halo)
	} else {
		h.edgeLeft.FillEdgesKind(k, b)
	}
	if h.right >= 0 {
		h.recvFrom(h.right, k, b, h.n)
	} else {
		h.edgeRight.FillEdgesKind(k, b)
	}
}

// Fill implements solver.Halo.
func (h *rankHalo) Fill(k solver.Kind, b *flux.State) {
	h.Start(k, b)
	h.Finish(k, b)
}

// FillEdges implements solver.Halo (edge extrapolation only; interior
// halo ghosts keep their previous — lagged or decaying — contents).
// On a Wide policy's exchange-free steps this replaces a Fill, so each
// interior neighbour's skipped send+receive pair is booked as saved
// startups — the budget the redundant shell buys.
func (h *rankHalo) FillEdges(k solver.Kind, b *flux.State) {
	if h.ext > 0 {
		saved := int64(2 * h.parts(k))
		if h.left >= 0 {
			h.dir.Axial.SavedStartups += saved
		}
		if h.right >= 0 {
			h.dir.Axial.SavedStartups += saved
		}
	}
	h.edgeLeft.FillEdgesKind(k, b)
	h.edgeRight.FillEdgesKind(k, b)
}

// sendRowsTo groups the two boundary rows starting at j0 into one
// message (row exchanges are always grouped: de-bursting targets the
// axial flux messages the paper measured).
func (h *rankHalo) sendRowsTo(to int, k solver.Kind, b *flux.State, j0 int) {
	h.rowSendBuf = packRows(b, j0, field.Halo, h.rowSendBuf)
	h.dir.Radial.AddMessage(8 * len(h.rowSendBuf))
	h.comm.Send(to, tag(k, 0), h.rowSendBuf)
}

// recvRowsFrom receives the neighbour's boundary rows into ghost rows
// starting at j0.
func (h *rankHalo) recvRowsFrom(from int, k solver.Kind, b *flux.State, j0 int) {
	need := flux.NVar * field.Halo * b[0].Nx
	if cap(h.rowRecvBuf) < need {
		h.rowRecvBuf = make([]float64, need)
	}
	h.dir.Radial.Startups++
	h.comm.Recv(from, tag(k, 0), h.rowRecvBuf[:need])
	unpackRows(b, j0, field.Halo, h.rowRecvBuf[:need])
}

// StartR initiates the sends of one radial exchange: the block's first
// two owned rows go to the down neighbour, its last two to the up
// neighbour (shifted inward past both shells under a Wide policy, as
// in Start). Sends are eager, so both go out before any receive blocks.
func (h *rankHalo) StartR(k solver.Kind, b *flux.State) {
	if h.down >= 0 {
		h.sendRowsTo(h.down, k, b, 2*h.ext)
	}
	if h.up >= 0 {
		h.sendRowsTo(h.up, k, b, h.nr-field.Halo-2*h.ext)
	}
}

// FinishR completes the receives of one radial exchange and applies the
// axis mirror / far-field extrapolation where the block touches the
// physical boundary.
func (h *rankHalo) FinishR(k solver.Kind, b *flux.State) {
	if h.down >= 0 {
		h.recvRowsFrom(h.down, k, b, -field.Halo)
	} else {
		h.edgeBottom.FillREdgesKind(k, b)
	}
	if h.up >= 0 {
		h.recvRowsFrom(h.up, k, b, h.nr)
	} else {
		h.edgeTop.FillREdgesKind(k, b)
	}
}

// ReceiveR implements solver.Halo: complete only the interior-side
// receives of one radial exchange. The overlapped operators pair it
// with an eager FillREdges, whose inputs (owned boundary rows) are
// unchanged by the exchange — so skipping the edge re-application here
// drops duplicated work, not information.
func (h *rankHalo) ReceiveR(k solver.Kind, b *flux.State) {
	if h.down >= 0 {
		h.recvRowsFrom(h.down, k, b, -field.Halo)
	}
	if h.up >= 0 {
		h.recvRowsFrom(h.up, k, b, h.nr)
	}
}

// FillR implements solver.Halo: exchange the two ghost rows with the
// down/up neighbours, physical treatment elsewhere.
func (h *rankHalo) FillR(k solver.Kind, b *flux.State) {
	h.StartR(k, b)
	h.FinishR(k, b)
}

// FillREdges implements solver.Halo (physical radial treatment only;
// interior ghost rows keep their previous — lagged or decaying —
// contents). Saved startups are booked as in FillEdges.
func (h *rankHalo) FillREdges(k solver.Kind, b *flux.State) {
	if h.ext > 0 {
		if h.down >= 0 {
			h.dir.Radial.SavedStartups += 2
		}
		if h.up >= 0 {
			h.dir.Radial.SavedStartups += 2
		}
	}
	h.edgeBottom.FillREdgesKind(k, b)
	h.edgeTop.FillREdgesKind(k, b)
}

// Refresh implements solver.Halo: re-exchange the ext-wide redundant
// shells of a Wide(k) policy, resetting their staleness before an
// exchange step. Two ordered phases keep the shell corners of the 2-D
// decomposition correct: rows first at the full extended width, then
// columns at the full extended height — the column payload's corner
// rows are the just-refreshed down/up shell data, so a diagonal
// neighbour's contribution arrives relayed through the shared row
// neighbour, exactly as the per-stage corner fills do. Within each
// phase all sends go out before any receive blocks (the message layer
// buffers them), so the phase ordering cannot deadlock.
func (h *rankHalo) Refresh(b *flux.State) {
	e := h.ext
	if e == 0 {
		return
	}
	// Phase 1: radial. My down neighbour's shell covers my first e core
	// rows — local rows [e, 2e); symmetrically for up. Their shell data
	// for me lands in my shell rows [0, e) and [nr-e, nr).
	if h.down >= 0 {
		h.rowSendBuf = packRows(b, e, e, h.rowSendBuf)
		h.dir.Radial.AddMessage(8 * len(h.rowSendBuf))
		h.comm.Send(h.down, refreshRowTag, h.rowSendBuf)
	}
	if h.up >= 0 {
		h.rowSendBuf = packRows(b, h.nr-2*e, e, h.rowSendBuf)
		h.dir.Radial.AddMessage(8 * len(h.rowSendBuf))
		h.comm.Send(h.up, refreshRowTag, h.rowSendBuf)
	}
	rowNeed := flux.NVar * e * b[0].Nx
	if h.down >= 0 {
		h.dir.Radial.Startups++
		h.comm.Recv(h.down, refreshRowTag, h.rowRecvBuf[:rowNeed])
		unpackRows(b, 0, e, h.rowRecvBuf[:rowNeed])
	}
	if h.up >= 0 {
		h.dir.Radial.Startups++
		h.comm.Recv(h.up, refreshRowTag, h.rowRecvBuf[:rowNeed])
		unpackRows(b, h.nr-e, e, h.rowRecvBuf[:rowNeed])
	}
	// Phase 2: axial, full extended height (including the rows phase 1
	// just refreshed).
	if h.left >= 0 {
		h.sendBuf = pack(b, e, e, h.sendBuf)
		h.dir.Axial.AddMessage(8 * len(h.sendBuf))
		h.comm.Send(h.left, refreshColTag, h.sendBuf)
	}
	if h.right >= 0 {
		h.sendBuf = pack(b, h.n-2*e, e, h.sendBuf)
		h.dir.Axial.AddMessage(8 * len(h.sendBuf))
		h.comm.Send(h.right, refreshColTag, h.sendBuf)
	}
	colNeed := flux.NVar * e * b[0].Nr
	if h.left >= 0 {
		h.dir.Axial.Startups++
		h.comm.Recv(h.left, refreshColTag, h.recvBuf[:colNeed])
		unpack(b, 0, e, h.recvBuf[:colNeed])
	}
	if h.right >= 0 {
		h.dir.Axial.Startups++
		h.comm.Recv(h.right, refreshColTag, h.recvBuf[:colNeed])
		unpack(b, h.n-e, e, h.recvBuf[:colNeed])
	}
}
