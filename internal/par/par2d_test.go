package par

import (
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// TestRunner2DDegeneratesToAxial: a pr=1 rank grid must reproduce the
// axial Runner (Version 5) bitwise — same blocks, same exchanges, same
// arithmetic.
func TestRunner2DDegeneratesToAxial(t *testing.T) {
	g := grid.MustNew(64, 26, 50, 5)
	cfg := jet.Paper()
	const steps = 4
	r1, err := NewRunner(cfg, g, Options{Procs: 3, Policy: solver.Fresh})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner2D(cfg, g, Options2D{Px: 3, Pr: 1, Policy: solver.Fresh})
	if err != nil {
		t.Fatal(err)
	}
	res1 := r1.Run(steps)
	res2 := r2.Run(steps)
	if res1.Dt != res2.Dt {
		t.Fatalf("dt %g != %g", res2.Dt, res1.Dt)
	}
	s1, s2 := r1.GatherState(), r2.GatherState()
	for k := 0; k < flux.NVar; k++ {
		if !s1[k].Equal(s2[k]) {
			t.Errorf("component %d differs (max %g)", k, s1[k].MaxAbsDiff(s2[k]))
		}
	}
	// With no radial neighbours every message is axial.
	dir := res2.Ranks[1].Dir
	if dir.Radial.Startups != 0 || dir.Axial.Startups == 0 {
		t.Fatalf("pr=1 rank direction split: %+v", dir)
	}
}

// TestRunner2DLaggedRuns: the lagged policy must run the 2-D exchange
// schedule to completion (no deadlock, no divergence) on an uneven
// shape, with both directions active.
func TestRunner2DLaggedRuns(t *testing.T) {
	g := grid.MustNew(48, 26, 50, 5)
	r, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 3, Policy: solver.Lagged})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(6)
	if res.Diag.HasNaN {
		t.Fatal("lagged 2-D run diverged")
	}
	dir := res.TotalDir()
	// Under Lagged each direction runs four exchanges per composite
	// step: axially the paper's Table 1 budget (prims, flux, pred-prims,
	// pred-flux of the axial sweep), radially the radial sweep's prim
	// and flux pairs. Every neighbour pair costs 2 sends + 2 recvs = 4
	// startups per exchange. The 2x3 grid has 3 axial pairs (one per
	// rank row) and 4 radial pairs (two per rank column).
	steps := int64(res.Steps)
	if want := 4 * 3 * 4 * steps; dir.Axial.Startups != want {
		t.Errorf("axial startups %d, want %d", dir.Axial.Startups, want)
	}
	if want := 4 * 4 * 4 * steps; dir.Radial.Startups != want {
		t.Errorf("radial startups %d, want %d", dir.Radial.Startups, want)
	}
	if res.Dt <= 0 {
		t.Fatal("bad dt")
	}
}

// TestRunner2DVersions: the 2-D runner accepts V5 and V6 (defaulting
// V5), rejects V7 (de-burst is axial-only) and unknown strategies, and
// under V6 keeps the exact V5 message budget — the overlap changes when
// the Start/Finish halves run, not what they carry.
func TestRunner2DVersions(t *testing.T) {
	g := grid.MustNew(48, 26, 50, 5)
	if _, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 2, Version: V7}); err == nil {
		t.Error("V7 must be rejected on the 2-D decomposition")
	}
	if _, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 2, Version: Version(9)}); err == nil {
		t.Error("unknown version must be rejected")
	}
	r, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opt.Version != V5 {
		t.Fatalf("default version %v, want V5", r.Opt.Version)
	}
	const steps = 4
	res5 := r.Run(steps)
	r6, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 2, Version: V6})
	if err != nil {
		t.Fatal(err)
	}
	for _, sl := range r6.Slabs {
		if !sl.Overlap {
			t.Fatal("V6 must enable the slab overlap path")
		}
	}
	res6 := r6.Run(steps)
	c5, c6 := res5.TotalComm(), res6.TotalComm()
	if c5.Startups != c6.Startups || c5.Bytes != c6.Bytes {
		t.Errorf("V6 budget %+v != V5 budget %+v", c6, c5)
	}
	d5, d6 := res5.TotalDir(), res6.TotalDir()
	if d5 != d6 {
		t.Errorf("V6 direction split %+v != V5 %+v", d6, d5)
	}
}

// TestRunner2DShapeResolution: explicit, derived, and automatic shapes.
func TestRunner2DShapeResolution(t *testing.T) {
	g := grid.MustNew(64, 26, 50, 5)
	r, err := NewRunner2D(jet.Paper(), g, Options2D{Procs: 6, Px: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opt.Px != 3 || r.Opt.Pr != 2 {
		t.Fatalf("derived shape %dx%d, want 3x2", r.Opt.Px, r.Opt.Pr)
	}
	if _, err := NewRunner2D(jet.Paper(), g, Options2D{Procs: 7, Px: 2}); err == nil {
		t.Fatal("px=2 cannot divide 7 ranks")
	}
	if _, err := NewRunner2D(jet.Paper(), g, Options2D{Procs: 8, Px: 2, Pr: 2}); err == nil {
		t.Fatal("a 2x2 shape must not silently satisfy a request for 8 ranks")
	}
	if _, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2}); err == nil {
		t.Fatal("px without procs cannot derive a shape")
	}
	if r, err := NewRunner2D(jet.Paper(), g, Options2D{Px: 2, Pr: 2}); err != nil || r.Opt.Procs != 4 {
		t.Fatalf("explicit shape alone must run px*pr ranks: %v", err)
	}
	r, err = NewRunner2D(jet.Paper(), g, Options2D{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opt.Px*r.Opt.Pr != 4 {
		t.Fatalf("auto shape %dx%d does not use 4 ranks", r.Opt.Px, r.Opt.Pr)
	}
}
