package par

import (
	"fmt"
	"testing"

	"repro/internal/decomp"
	"repro/internal/flux"
	"repro/internal/msg"
	"repro/internal/solver"
)

// TestHaloExchangeSteadyStateAllocs locks in the allocation-free
// exchange path: with the staging buffers sized at construction and the
// message layer recycling payloads, a full two-rank halo exchange
// allocates nothing in steady state — for the grouped (V5) and the
// de-burst (V7) message shapes alike.
func TestHaloExchangeSteadyStateAllocs(t *testing.T) {
	const n, nr = 8, 16
	for _, v := range []Version{V5, V7} {
		t.Run(fmt.Sprintf("V%d", int(v)), func(t *testing.T) {
			w := msg.NewWorld(2)
			h0 := newRankHalo(w.Comm(0), 0, 2, n, nr, v)
			h1 := newRankHalo(w.Comm(1), 1, 2, n, nr, v)
			b0 := flux.NewState(n, nr)
			b1 := flux.NewState(n, nr)
			for k := range b0 {
				b0[k].FillAll(1)
				b1[k].FillAll(2)
			}
			exchange := func() {
				h0.Start(solver.KPrims, b0)
				h1.Start(solver.KPrims, b1)
				h0.Finish(solver.KPrims, b0)
				h1.Finish(solver.KPrims, b1)
			}
			exchange() // prime the message-layer free list
			if b0[0].At(n, 0) != 2 || b1[0].At(-1, 0) != 1 {
				t.Fatal("halo exchange did not deliver neighbour columns")
			}
			if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
				t.Errorf("steady-state halo exchange allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestRadialExchangeSteadyStateAllocs extends the allocation-free
// guarantee to the 2-D decomposition's row exchanges: two radially
// stacked ranks trading ghost rows allocate nothing in steady state.
func TestRadialExchangeSteadyStateAllocs(t *testing.T) {
	const nx, nrLoc = 8, 8
	d, err := decomp.NewGrid2D(nx, 2*nrLoc, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := msg.NewWorld(2)
	h0 := newRankHalo2D(w.Comm(0), d, 0, nx, nrLoc, V5)
	h1 := newRankHalo2D(w.Comm(1), d, 1, nx, nrLoc, V5)
	b0 := flux.NewState(nx, nrLoc)
	b1 := flux.NewState(nx, nrLoc)
	for k := range b0 {
		b0[k].FillAll(1)
		b1[k].FillAll(2)
	}
	exchange := func() {
		h0.StartR(solver.KPrims, b0)
		h1.StartR(solver.KPrims, b1)
		h0.FinishR(solver.KPrims, b0)
		h1.FinishR(solver.KPrims, b1)
	}
	exchange() // prime the message-layer free list
	if b0[0].At(0, nrLoc) != 2 || b1[0].At(0, -1) != 1 {
		t.Fatal("radial exchange did not deliver neighbour rows")
	}
	if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
		t.Errorf("steady-state radial exchange allocates %.1f times, want 0", allocs)
	}
}

// TestOverlappedExchangeSteadyStateAllocs covers the Version-6 schedule
// on a 2-D block: both directions' sends initiated up front
// (Start/StartR), receives completed later (Finish/FinishR) — the
// split the overlapped operators interleave with the interior core.
// The staging buffers and the message free list must keep this path at
// zero allocations in steady state, exactly like the fused Fill path.
func TestOverlappedExchangeSteadyStateAllocs(t *testing.T) {
	const nx, nrLoc = 8, 8
	d, err := decomp.NewGrid2D(2*nx, 2*nrLoc, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := msg.NewWorld(4)
	halos := make([]*rankHalo, 4)
	bufs := make([]*flux.State, 4)
	for r := 0; r < 4; r++ {
		halos[r] = newRankHalo2D(w.Comm(r), d, r, nx, nrLoc, V6)
		bufs[r] = flux.NewState(nx, nrLoc)
		for k := range bufs[r] {
			bufs[r][k].FillAll(float64(r + 1))
		}
	}
	exchange := func() {
		for r := 0; r < 4; r++ {
			halos[r].Start(solver.KPrims, bufs[r])
			halos[r].StartR(solver.KPrims, bufs[r])
		}
		for r := 0; r < 4; r++ {
			halos[r].Finish(solver.KPrims, bufs[r])
			halos[r].FinishR(solver.KPrims, bufs[r])
		}
	}
	exchange() // prime the message-layer free list
	if bufs[0][0].At(nx, 0) != 2 || bufs[0][0].At(0, nrLoc) != 3 {
		t.Fatal("overlapped exchange did not deliver neighbour columns and rows")
	}
	if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
		t.Errorf("steady-state overlapped 2-D exchange allocates %.1f times, want 0", allocs)
	}
}
