package par

import (
	"fmt"
	"testing"

	"repro/internal/decomp"
	"repro/internal/flux"
	"repro/internal/msg"
	"repro/internal/solver"
)

// TestHaloExchangeSteadyStateAllocs locks in the allocation-free
// exchange path: with the staging buffers sized at construction and the
// message layer recycling payloads, a full two-rank halo exchange
// allocates nothing in steady state — for the grouped (V5) and the
// de-burst (V7) message shapes alike.
func TestHaloExchangeSteadyStateAllocs(t *testing.T) {
	const n, nr = 8, 16
	for _, v := range []Version{V5, V7} {
		t.Run(fmt.Sprintf("V%d", int(v)), func(t *testing.T) {
			w := msg.NewWorld(2)
			h0 := newRankHalo(w.Comm(0), 0, 2, n, nr, v, 0, solver.WallSpec{})
			h1 := newRankHalo(w.Comm(1), 1, 2, n, nr, v, 0, solver.WallSpec{})
			b0 := flux.NewState(n, nr)
			b1 := flux.NewState(n, nr)
			for k := range b0 {
				b0[k].FillAll(1)
				b1[k].FillAll(2)
			}
			exchange := func() {
				h0.Start(solver.KPrims, b0)
				h1.Start(solver.KPrims, b1)
				h0.Finish(solver.KPrims, b0)
				h1.Finish(solver.KPrims, b1)
			}
			exchange() // prime the message-layer free list
			if b0[0].At(n, 0) != 2 || b1[0].At(-1, 0) != 1 {
				t.Fatal("halo exchange did not deliver neighbour columns")
			}
			if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
				t.Errorf("steady-state halo exchange allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestRadialExchangeSteadyStateAllocs extends the allocation-free
// guarantee to the 2-D decomposition's row exchanges: two radially
// stacked ranks trading ghost rows allocate nothing in steady state.
func TestRadialExchangeSteadyStateAllocs(t *testing.T) {
	const nx, nrLoc = 8, 8
	d, err := decomp.NewGrid2D(nx, 2*nrLoc, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := msg.NewWorld(2)
	h0 := newRankHalo2D(w.Comm(0), d, 0, nx, nrLoc, V5, 0, solver.WallSpec{})
	h1 := newRankHalo2D(w.Comm(1), d, 1, nx, nrLoc, V5, 0, solver.WallSpec{})
	b0 := flux.NewState(nx, nrLoc)
	b1 := flux.NewState(nx, nrLoc)
	for k := range b0 {
		b0[k].FillAll(1)
		b1[k].FillAll(2)
	}
	exchange := func() {
		h0.StartR(solver.KPrims, b0)
		h1.StartR(solver.KPrims, b1)
		h0.FinishR(solver.KPrims, b0)
		h1.FinishR(solver.KPrims, b1)
	}
	exchange() // prime the message-layer free list
	if b0[0].At(0, nrLoc) != 2 || b1[0].At(0, -1) != 1 {
		t.Fatal("radial exchange did not deliver neighbour rows")
	}
	if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
		t.Errorf("steady-state radial exchange allocates %.1f times, want 0", allocs)
	}
}

// TestWeightedExchangeSteadyStateAllocs extends the allocation-free
// guarantee to cost-weighted (non-uniform width) slabs on both
// decompositions. The staging buffers are sized per rank at
// construction from that rank's own extent, so unequal neighbours
// exchange without growing anything: axial neighbours share Nr (column
// messages are equal-sized however uneven the widths), and radially
// stacked blocks share Nx (row messages likewise).
func TestWeightedExchangeSteadyStateAllocs(t *testing.T) {
	// Axial: a skewed profile makes rank 0 wide and rank 1 narrow.
	const nx, nr = 16, 12
	ramp := make([]float64, nx)
	for i := range ramp {
		ramp[i] = 1 + 6*float64(i)/float64(nx-1)
	}
	d, err := decomp.WeightedAxial(nx, 2, ramp)
	if err != nil {
		t.Fatal(err)
	}
	w0, w1 := d.Widths()[0], d.Widths()[1]
	if w0 == w1 {
		t.Fatalf("profile did not skew the split: widths %v", d.Widths())
	}
	w := msg.NewWorld(2)
	h0 := newRankHalo(w.Comm(0), 0, 2, w0, nr, V5, 0, solver.WallSpec{})
	h1 := newRankHalo(w.Comm(1), 1, 2, w1, nr, V5, 0, solver.WallSpec{})
	b0 := flux.NewState(w0, nr)
	b1 := flux.NewState(w1, nr)
	for k := range b0 {
		b0[k].FillAll(1)
		b1[k].FillAll(2)
	}
	exchange := func() {
		h0.Start(solver.KPrims, b0)
		h1.Start(solver.KPrims, b1)
		h0.Finish(solver.KPrims, b0)
		h1.Finish(solver.KPrims, b1)
	}
	exchange() // prime the message-layer free list
	if b0[0].At(w0, 0) != 2 || b1[0].At(-1, 0) != 1 {
		t.Fatal("weighted axial exchange did not deliver neighbour columns")
	}
	if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
		t.Errorf("steady-state weighted axial exchange allocates %.1f times, want 0", allocs)
	}

	// Radial: a skewed row profile stacks a tall block under a short one.
	const gnr = 24
	rowRamp := make([]float64, gnr)
	for j := range rowRamp {
		rowRamp[j] = 1 + 6*float64(j)/float64(gnr-1)
	}
	g2, err := decomp.WeightedGrid2D(nx, gnr, 1, 2, nil, rowRamp)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, nr0 := g2.Block(0)
	_, _, _, nr1 := g2.Block(1)
	if nr0 == nr1 {
		t.Fatalf("row profile did not skew the split: heights %d, %d", nr0, nr1)
	}
	w2 := msg.NewWorld(2)
	g0 := newRankHalo2D(w2.Comm(0), g2, 0, nx, nr0, V5, 0, solver.WallSpec{})
	g1 := newRankHalo2D(w2.Comm(1), g2, 1, nx, nr1, V5, 0, solver.WallSpec{})
	c0 := flux.NewState(nx, nr0)
	c1 := flux.NewState(nx, nr1)
	for k := range c0 {
		c0[k].FillAll(1)
		c1[k].FillAll(2)
	}
	rowExchange := func() {
		g0.StartR(solver.KPrims, c0)
		g1.StartR(solver.KPrims, c1)
		g0.FinishR(solver.KPrims, c0)
		g1.FinishR(solver.KPrims, c1)
	}
	rowExchange()
	if c0[0].At(0, nr0) != 2 || c1[0].At(0, -1) != 1 {
		t.Fatal("weighted radial exchange did not deliver neighbour rows")
	}
	if allocs := testing.AllocsPerRun(50, rowExchange); allocs != 0 {
		t.Errorf("steady-state weighted radial exchange allocates %.1f times, want 0", allocs)
	}
}

// TestAllreduceSteadyStateAllocs locks in the allocation-free
// collective: the reduce plan and staging live in the reducer, payload
// buffers recycle through the world's free list, so a steady-state
// allreduce allocates nothing — on the power-of-two topology and the
// folded-remainder one alike. Peer ranks run in background goroutines
// matching collectives forever; AllocsPerRun counts process-wide
// mallocs, so their loops must be (and are) allocation-free too.
func TestAllreduceSteadyStateAllocs(t *testing.T) {
	for _, p := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("procs%d", p), func(t *testing.T) {
			w := msg.NewWorld(p)
			red0 := newReducer(w.Comm(0), 1, nil, 0)
			for r := 1; r < p; r++ {
				red := newReducer(w.Comm(r), 1, nil, r)
				go func(r int) {
					for {
						red.Sum(float64(r))
						red.Max(float64(r))
					}
				}(r)
			}
			collective := func() {
				red0.Sum(1)
				red0.Max(1)
			}
			collective() // prime the message-layer free list
			if allocs := testing.AllocsPerRun(50, collective); allocs != 0 {
				t.Errorf("steady-state allreduce allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestOverlappedExchangeSteadyStateAllocs covers the Version-6 schedule
// on a 2-D block: both directions' sends initiated up front
// (Start/StartR), receives completed later (Finish/FinishR) — the
// split the overlapped operators interleave with the interior core.
// The staging buffers and the message free list must keep this path at
// zero allocations in steady state, exactly like the fused Fill path.
func TestOverlappedExchangeSteadyStateAllocs(t *testing.T) {
	const nx, nrLoc = 8, 8
	d, err := decomp.NewGrid2D(2*nx, 2*nrLoc, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := msg.NewWorld(4)
	halos := make([]*rankHalo, 4)
	bufs := make([]*flux.State, 4)
	for r := 0; r < 4; r++ {
		halos[r] = newRankHalo2D(w.Comm(r), d, r, nx, nrLoc, V6, 0, solver.WallSpec{})
		bufs[r] = flux.NewState(nx, nrLoc)
		for k := range bufs[r] {
			bufs[r][k].FillAll(float64(r + 1))
		}
	}
	exchange := func() {
		for r := 0; r < 4; r++ {
			halos[r].Start(solver.KPrims, bufs[r])
			halos[r].StartR(solver.KPrims, bufs[r])
		}
		for r := 0; r < 4; r++ {
			halos[r].Finish(solver.KPrims, bufs[r])
			halos[r].FinishR(solver.KPrims, bufs[r])
		}
	}
	exchange() // prime the message-layer free list
	if bufs[0][0].At(nx, 0) != 2 || bufs[0][0].At(0, nrLoc) != 3 {
		t.Fatal("overlapped exchange did not deliver neighbour columns and rows")
	}
	if allocs := testing.AllocsPerRun(50, exchange); allocs != 0 {
		t.Errorf("steady-state overlapped 2-D exchange allocates %.1f times, want 0", allocs)
	}
}
