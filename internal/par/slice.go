// Slice-boundary state handoff for the parallel-in-time (Parareal)
// coordinator: time-slice ranks pass whole conservative states — plus an
// exactness flag and a running defect maximum — through the message
// layer on their own tags, and the terminal rank broadcasts the global
// convergence verdict back. Like the halo exchange, the steady-state
// path allocates nothing: the payload is staged in one preallocated
// buffer per endpoint and the message layer recycles its copies.
package par

import (
	"repro/internal/flux"
	"repro/internal/msg"
)

// Slice handoff tags. The free region between the halo machinery
// (kind-indexed exchange tags < 24, shell refresh at 40/44) and the
// allreduce plans (base 64).
const (
	// SliceStateTag carries a packed conservative state from time-slice
	// rank k to k+1 (the Parareal initial-condition handoff).
	SliceStateTag msg.Tag = 56
	// sliceVerdictTag carries the global defect maximum from the
	// terminal slice rank back to every earlier one, so all ranks take
	// the identical stop decision.
	sliceVerdictTag msg.Tag = 57
)

// SliceComm is one time-slice rank's handoff endpoint. Not safe for
// concurrent use, like the msg.Comm it wraps.
type SliceComm struct {
	comm   *msg.Comm
	nx, nr int
	// buf stages one packed state plus the exactness flag and the
	// running defect maximum (the two trailing floats).
	buf  []float64
	vbuf [1]float64
}

// NewSliceComm builds the endpoint for states of the given grid size.
func NewSliceComm(comm *msg.Comm, nx, nr int) *SliceComm {
	return &SliceComm{comm: comm, nx: nx, nr: nr, buf: make([]float64, flux.NVar*nx*nr+2)}
}

// SendState hands a conservative state to time-slice rank `to`, tagged
// with whether the state is exact (already the fine propagator's true
// trajectory, bitwise) and the defect maximum accumulated over slices
// 0..sender.
func (s *SliceComm) SendState(to int, st *flux.State, exact bool, defect float64) {
	k := 0
	for m := 0; m < flux.NVar; m++ {
		k += st[m].PackCols(0, s.nx, s.buf[k:])
	}
	flag := 0.0
	if exact {
		flag = 1
	}
	s.buf[k] = flag
	s.buf[k+1] = defect
	s.comm.Send(to, SliceStateTag, s.buf)
}

// RecvState receives the handoff from time-slice rank `from` into st,
// returning the exactness flag and the running defect maximum.
func (s *SliceComm) RecvState(from int, st *flux.State) (exact bool, defect float64) {
	s.comm.Recv(from, SliceStateTag, s.buf)
	k := 0
	for m := 0; m < flux.NVar; m++ {
		k += st[m].UnpackCols(0, s.nx, s.buf[k:k+s.nx*s.nr])
	}
	return s.buf[k] != 0, s.buf[k+1]
}

// SendVerdict broadcasts the global defect maximum to rank `to`.
func (s *SliceComm) SendVerdict(to int, defect float64) {
	s.vbuf[0] = defect
	s.comm.Send(to, sliceVerdictTag, s.vbuf[:])
}

// RecvVerdict receives the global defect maximum from rank `from`.
func (s *SliceComm) RecvVerdict(from int) float64 {
	s.comm.Recv(from, sliceVerdictTag, s.vbuf[:])
	return s.vbuf[0]
}
