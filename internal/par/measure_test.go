package par

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// TestMeasuredWeights covers the warm-up profile source: a multi-rank
// probe yields a full-length strictly positive profile (or reports
// "no signal" as nil), a single-rank probe always yields nil, and any
// returned profile feeds straight back into a weighted runner.
func TestMeasuredWeights(t *testing.T) {
	cfg := jet.Paper()
	g := grid.MustNew(64, 24, 50, 5)

	col, err := MeasuredColWeights(cfg, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		if len(col) != g.Nx {
			t.Fatalf("col profile length %d, want %d", len(col), g.Nx)
		}
		for i, w := range col {
			if w <= 0 {
				t.Fatalf("col weight %g at %d", w, i)
			}
		}
	}
	row, err := MeasuredRowWeights(cfg, g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row != nil && len(row) != g.Nr {
		t.Fatalf("row profile length %d, want %d", len(row), g.Nr)
	}

	if w, err := MeasuredColWeights(cfg, g, 1, 1); err != nil || w != nil {
		t.Fatalf("single-rank probe: weights %v, err %v — want nil, nil", w, err)
	}

	r, err := NewRunner(cfg, g, Options{Procs: 3, Policy: solver.Fresh, ColWeights: col})
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Run(1); res.Diag.HasNaN {
		t.Fatal("weighted run diverged")
	}
}
