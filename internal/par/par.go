// Package par is the distributed-memory parallelization of the paper's
// Section 5: the domain is decomposed in axial blocks, each rank runs
// the slab engine of internal/solver in its own goroutine, and halo
// exchanges travel through the PVM-like message layer of internal/msg.
//
// The three communication strategies the paper evaluates are all
// implemented:
//
//	Version 5: grouped two-column messages, no overlap (the baseline
//	           the paper settled on).
//	Version 6: interior computation overlapped with halo messages, in
//	           both sweeps; on the 2-D rank grid (Runner2D) the row
//	           exchanges overlap the same way (see DESIGN.md §5b).
//	Version 7: flux columns sent one at a time to reduce burstiness,
//	           at the cost of twice the startups (axial-only: the 2-D
//	           runner rejects it).
package par

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/decomp"
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/msg"
	"repro/internal/solver"
	"repro/internal/trace"
)

// Version selects the paper's communication strategy.
type Version int

const (
	V5 Version = 5
	V6 Version = 6
	V7 Version = 7
)

func (v Version) String() string { return fmt.Sprintf("Version %d", int(v)) }

// Options configures a parallel run.
type Options struct {
	Procs   int
	Version Version
	Policy  solver.HaloPolicy
	CFL     float64 // 0 means solver.DefaultCFL
	// ColWeights is an optional per-column cost profile (len Grid.Nx):
	// the decomposition minimizes the maximum block cost instead of
	// balancing point counts (decomp.WeightedAxial). nil keeps the
	// uniform split. Weighting changes which columns a rank owns, never
	// the arithmetic — under the Fresh policy every profile reproduces
	// the serial fields bitwise.
	ColWeights []float64
	// Prob is the scenario problem every slab runs (nil = built-in jet).
	Prob *solver.Problem
	// ReduceGroup, when > 1, makes the convergence controller's
	// allreduce hierarchical: ranks are grouped into contiguous
	// shared-memory nodes of this size, each node combines through a
	// combiner (no messages), and only node leaders run the cross-node
	// recursive-doubling plan. 0 or 1 keeps the flat plan. Either way
	// every rank finishes with the bitwise-identical result.
	ReduceGroup int
}

// CheckWideFit validates that a Wide(depth) policy's redundant shell
// fits a decomposition axis: with interior neighbours present (two or
// more blocks along the axis), every block must span at least ext+2
// points — ext for the neighbour's shell it hosts, plus the 2-point
// per-stage exchange window beyond it. Returns an actionable error
// naming the deepest feasible policy otherwise. The same check guards
// runner construction and backend validation.
func CheckWideFit(viscous bool, depth int, spans []int, axis string) error {
	ext := trace.WideExtension(viscous, depth)
	if ext == 0 || len(spans) < 2 {
		return nil
	}
	min := spans[0]
	for _, w := range spans[1:] {
		if w < min {
			min = w
		}
	}
	if min >= ext+2 {
		return nil
	}
	maxDepth := (min-2)/trace.WideSpeed(viscous) + 1
	if maxDepth < 1 {
		maxDepth = 1
	}
	return fmt.Errorf("par: halo depth %d needs a %d-point redundant shell plus the 2-point exchange window on each interior %s side, but the narrowest rank owns only %d %ss; the deepest feasible policy for this decomposition is Wide(%d)",
		depth, ext, axis, min, axis, maxDepth)
}

// RankStats reports one rank's measured execution profile.
type RankStats struct {
	Rank  int
	Busy  time.Duration // wall time minus receive-wait time
	Wait  time.Duration // time blocked in receives (non-overlapped comm)
	Total time.Duration
	Comm  trace.Counters
	// Dir splits Comm by exchange direction (Radial is zero for the
	// axial-only decomposition).
	Dir   trace.DirCounters
	Flops float64
	// RedundantFlops is the share of Flops spent advancing a Wide
	// policy's redundant ghost shell (zero under Fresh/Lagged).
	RedundantFlops float64
}

// Result summarizes a parallel run.
type Result struct {
	// Steps is the number of composite steps actually run (fewer than
	// requested when convergence control stopped early).
	Steps   int
	Procs   int
	Dt      float64
	Elapsed time.Duration
	Ranks   []RankStats
	Diag    solver.Diagnostics
	// Converged and Residuals report the convergence controller of
	// RunControlled (empty for a plain fixed-step Run).
	Converged bool
	Residuals []solver.ResidualPoint
}

// TotalComm aggregates the per-rank communication counters.
func (r *Result) TotalComm() trace.Counters {
	var t trace.Counters
	for _, rs := range r.Ranks {
		t.Merge(rs.Comm)
	}
	return t
}

// TotalDir aggregates the per-rank per-direction message counters.
func (r *Result) TotalDir() trace.DirCounters {
	var t trace.DirCounters
	for _, rs := range r.Ranks {
		t.Merge(rs.Dir)
	}
	return t
}

// TotalFlops aggregates the per-rank FLOP counts.
func (r *Result) TotalFlops() float64 {
	f := 0.0
	for _, rs := range r.Ranks {
		f += rs.Flops
	}
	return f
}

// MaxBusy returns the longest per-rank busy time (the load-balance
// metric of the paper's Figure 13).
func (r *Result) MaxBusy() time.Duration {
	m := time.Duration(0)
	for _, rs := range r.Ranks {
		if rs.Busy > m {
			m = rs.Busy
		}
	}
	return m
}

// Runner owns the slabs and the message world of one parallel solver.
type Runner struct {
	Cfg   jet.Config
	Grid  *grid.Grid
	Opt   Options
	Dec   *decomp.Decomposition
	World *msg.World
	Slabs []*solver.Slab
	comms []*msg.Comm
	halos []*rankHalo
	reds  []*reducer
}

// NewRunner decomposes the grid, builds one slab per rank, and computes
// the global CFL time step.
func NewRunner(cfg jet.Config, g *grid.Grid, opt Options) (*Runner, error) {
	if opt.Procs < 1 {
		return nil, fmt.Errorf("par: need at least one rank, got %d", opt.Procs)
	}
	switch opt.Version {
	case 0:
		opt.Version = V5
	case V5, V6, V7:
	default:
		return nil, fmt.Errorf("par: unknown communication version %d", int(opt.Version))
	}
	if opt.CFL == 0 {
		opt.CFL = solver.DefaultCFL
	}
	d, err := decomp.WeightedAxial(g.Nx, opt.Procs, opt.ColWeights)
	if err != nil {
		return nil, err
	}
	ext := trace.WideExtension(cfg.Viscous, opt.Policy.Depth())
	if opt.Procs == 1 {
		ext = 0 // no interior sides: Wide degenerates to Fresh
	}
	if ext > 0 {
		widths := make([]int, opt.Procs)
		for rank := range widths {
			_, widths[rank] = d.Range(rank)
		}
		if err := CheckWideFit(cfg.Viscous, opt.Policy.Depth(), widths, "column"); err != nil {
			return nil, err
		}
	}
	group, combs, err := buildCombiners(opt.ReduceGroup, opt.Procs)
	if err != nil {
		return nil, err
	}
	gm := cfg.Gas()
	world := msg.NewWorld(opt.Procs)
	r := &Runner{Cfg: cfg, Grid: g, Opt: opt, Dec: d, World: world}
	dt := math.Inf(1)
	for rank := 0; rank < opt.Procs; rank++ {
		i0, n := d.Range(rank)
		extL, extR := 0, 0
		if rank > 0 {
			extL = ext
		}
		if rank < opt.Procs-1 {
			extR = ext
		}
		comm := world.Comm(rank)
		h := newRankHalo(comm, rank, opt.Procs, n+extL+extR, g.Nr, opt.Version, ext, opt.Prob.Walls())
		sl, err := solver.NewSlabProblem(cfg, opt.Prob, g, gm, i0-extL, n+extL+extR, 0, g.Nr, h, opt.Policy)
		if err != nil {
			return nil, err
		}
		sl.ExtL, sl.ExtR = extL, extR
		sl.Overlap = opt.Version == V6
		sl.InitParallelFlow()
		if local := sl.StableDt(opt.CFL); local < dt {
			dt = local
		}
		r.Slabs = append(r.Slabs, sl)
		r.comms = append(r.comms, comm)
		r.halos = append(r.halos, h)
		r.reds = append(r.reds, newReducer(comm, group, combs, rank))
	}
	for _, sl := range r.Slabs {
		sl.Dt = dt
	}
	return r, nil
}

// Run advances all ranks by n composite steps concurrently and returns
// the measured profile.
func (r *Runner) Run(n int) *Result {
	return r.RunControlled(n, solver.Control{})
}

// RunControlled is Run under residual-driven convergence control: each
// rank executes the solver's controlled step loop with this runner's
// allreduce as the global reduction, so every rank sees the identical
// residual and refreshed dt and all ranks stop on the same step. A
// zero Control reproduces the plain fixed-step Run exactly.
func (r *Runner) RunControlled(n int, ctl solver.Control) *Result {
	if ctl.CFL == 0 {
		ctl.CFL = r.Opt.CFL
	}
	var wg sync.WaitGroup
	totals := make([]time.Duration, len(r.Slabs))
	runs := make([]solver.ConvergedRun, len(r.Slabs))
	start := time.Now()
	for i, sl := range r.Slabs {
		wg.Add(1)
		go func(i int, sl *solver.Slab) {
			defer wg.Done()
			t0 := time.Now()
			runs[i] = sl.RunControlled(n, ctl, r.reds[i])
			totals[i] = time.Since(t0)
		}(i, sl)
	}
	wg.Wait()
	res := &Result{
		Steps:     runs[0].Steps,
		Procs:     r.Opt.Procs,
		Dt:        r.Slabs[0].Dt,
		Elapsed:   time.Since(start),
		Converged: runs[0].Converged,
		Residuals: runs[0].Residuals,
	}
	res.Diag = r.Diagnose()
	for i, sl := range r.Slabs {
		c := r.comms[i]
		dir := r.halos[i].dir
		dir.Reduce = r.reds[i].T
		res.Ranks = append(res.Ranks, RankStats{
			Rank:           i,
			Busy:           totals[i] - c.WaitTime,
			Wait:           c.WaitTime,
			Total:          totals[i],
			Comm:           c.Counters,
			Dir:            dir,
			Flops:          sl.T.Flops,
			RedundantFlops: sl.T.RedundantFlops,
		})
	}
	return res
}

// SeedState loads a full-grid conservative state into every slab —
// whole rectangle, redundant Wide shell included — and positions every
// clock at composite step `step` (time = step*dt), so the next advance
// behaves exactly as it would mid-way through a continuous run. The
// Parareal coordinator uses this to make the runner a restartable fine
// propagator.
func (r *Runner) SeedState(full *flux.State, step int) {
	for _, sl := range r.Slabs {
		sl.LoadState(full)
		sl.SetClock(step, float64(step)*sl.Dt, sl.Dt)
	}
}

// AdvanceSteps runs n composite steps concurrently at the fixed dt with
// no monitoring — the light-weight step loop of a Parareal fine
// propagation, callable repeatedly between SeedState/StoreState.
func (r *Runner) AdvanceSteps(n int) {
	var wg sync.WaitGroup
	for _, sl := range r.Slabs {
		wg.Add(1)
		go func(sl *solver.Slab) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				sl.Advance()
			}
		}(sl)
	}
	wg.Wait()
}

// StoreState gathers every slab's owned core into a full-grid
// conservative state, tiling the domain exactly (the in-place
// counterpart of GatherState).
func (r *Runner) StoreState(full *flux.State) {
	for _, sl := range r.Slabs {
		sl.StoreState(full)
	}
}

// Diagnose aggregates the per-slab diagnostics.
func (r *Runner) Diagnose() solver.Diagnostics {
	var d solver.Diagnostics
	d.MinRho, d.MinP = math.Inf(1), math.Inf(1)
	for _, sl := range r.Slabs {
		sd := sl.Diagnose()
		d.Mass += sd.Mass
		d.Energy += sd.Energy
		d.OwnPoints += sd.OwnPoints
		if sd.MaxV > d.MaxV {
			d.MaxV = sd.MaxV
		}
		if sd.MinRho < d.MinRho {
			d.MinRho = sd.MinRho
		}
		if sd.MinP < d.MinP {
			d.MinP = sd.MinP
		}
		d.HasNaN = d.HasNaN || sd.HasNaN
	}
	return d
}

// GatherState assembles the full-domain conservative state from the
// slabs (core values only — a Wide policy's redundant shell is the
// neighbour's data), for comparison against the serial solver.
func (r *Runner) GatherState() *flux.State {
	full := flux.NewState(r.Grid.Nx, r.Grid.Nr)
	for rank, sl := range r.Slabs {
		i0, n := r.Dec.Range(rank)
		for k := 0; k < flux.NVar; k++ {
			for c := 0; c < n; c++ {
				copy(full[k].Col(i0+c), sl.Q[k].Col(sl.ExtL+c))
			}
		}
	}
	return full
}
