package par

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/flux"
	"repro/internal/msg"
	"repro/internal/solver"
)

// TestCheckWideFit pins the validation that guards every Wide(k)
// construction: spans below ext+2 on an axis with interior neighbours
// are rejected with the deepest feasible depth named, everything else
// passes silently.
func TestCheckWideFit(t *testing.T) {
	// Viscous shell grows 12 points per skipped step: depth 2 needs 14.
	if err := CheckWideFit(true, 2, []int{14, 20}, "column"); err != nil {
		t.Errorf("14-column spans reject a 12-point shell: %v", err)
	}
	if err := CheckWideFit(true, 2, []int{13}, "column"); err != nil {
		t.Errorf("a single block has no interior sides, want nil, got %v", err)
	}
	if err := CheckWideFit(true, 1, []int{3, 3}, "column"); err != nil {
		t.Errorf("depth 1 has no shell, want nil, got %v", err)
	}
	err := CheckWideFit(true, 2, []int{20, 13}, "column")
	if err == nil {
		t.Fatal("13-column span accepted a 12-point shell")
	}
	if !strings.Contains(err.Error(), "Wide(1)") {
		t.Errorf("error should name the deepest feasible policy Wide(1): %v", err)
	}
	// Inviscid shell grows 4 points per skipped step: depth 3 needs 10,
	// and a 9-point span can still host depth 2 (4+2).
	err = CheckWideFit(false, 3, []int{20, 9}, "row")
	if err == nil {
		t.Fatal("9-row span accepted an 8-point shell")
	}
	if !strings.Contains(err.Error(), "Wide(2)") || !strings.Contains(err.Error(), "row") {
		t.Errorf("error should name Wide(2) and the row axis: %v", err)
	}
}

// TestWideExchangeSteadyStateAllocs extends the allocation-free
// guarantee to the communication-avoiding schedule: the per-stage
// exchange over an extended slab, the shell refresh, and the
// saved-startup bookkeeping of a skipped stage all reuse the staging
// buffers sized at construction. The peer rank runs the matching
// schedule in a background goroutine (its loop must be allocation-free
// too — AllocsPerRun counts process-wide).
func TestWideExchangeSteadyStateAllocs(t *testing.T) {
	const core, nr, ext = 8, 16, 4
	n := core + ext // one interior side each
	w := msg.NewWorld(2)
	h0 := newRankHalo(w.Comm(0), 0, 2, n, nr, V5, ext, solver.WallSpec{})
	h1 := newRankHalo(w.Comm(1), 1, 2, n, nr, V5, ext, solver.WallSpec{})
	b0 := flux.NewState(n, nr)
	b1 := flux.NewState(n, nr)
	for k := range b0 {
		b0[k].FillAll(1)
		b1[k].FillAll(2)
	}
	go func() {
		for {
			h1.Start(solver.KPrims, b1)
			h1.Finish(solver.KPrims, b1)
			h1.Refresh(b1)
			h1.FillEdges(solver.KPrims, b1)
		}
	}()
	step := func() {
		h0.Start(solver.KPrims, b0)
		h0.Finish(solver.KPrims, b0)
		h0.Refresh(b0)
		h0.FillEdges(solver.KPrims, b0)
	}
	step() // prime the message-layer free list
	// The refresh must have landed the neighbour's core data in the
	// right-hand shell columns [n-ext, n).
	if b0[0].At(n-1, 0) != 2 {
		t.Fatal("refresh did not deliver the neighbour's shell columns")
	}
	if h0.dir.Total().SavedStartups == 0 {
		t.Fatal("skipped-stage edge fill booked no saved startups")
	}
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Errorf("steady-state wide exchange allocates %.1f times, want 0", allocs)
	}
}

// runHierAllreduce executes one collective on every rank of a fresh
// world under the given node size and returns the per-rank results.
func runHierAllreduce(p, group int, in []float64, op func(r *reducer, x float64) float64) ([]float64, []*reducer, error) {
	grp, combs, err := buildCombiners(group, p)
	if err != nil {
		return nil, nil, err
	}
	w := msg.NewWorld(p)
	out := make([]float64, p)
	reds := make([]*reducer, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		reds[r] = newReducer(w.Comm(r), grp, combs, r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out[r] = op(reds[r], in[r])
		}(r)
	}
	wg.Wait()
	return out, reds, nil
}

// TestHierarchicalAllreduceParity checks the two-level collective
// against the flat plan across node sizes, including worlds whose last
// node is smaller and the one-node degenerate case. With exactly
// representable inputs the sum must equal the serial fold bitwise on
// every rank whatever the topology; with arbitrary floats all ranks
// must still agree bitwise; Max is exact everywhere.
func TestHierarchicalAllreduceParity(t *testing.T) {
	for _, c := range []struct{ p, group int }{
		{4, 2}, {4, 4}, {5, 2}, {6, 3}, {8, 4}, {9, 4}, {3, 1},
	} {
		t.Run(fmt.Sprintf("procs%d_group%d", c.p, c.group), func(t *testing.T) {
			in := make([]float64, c.p)
			serial := 0.0
			for r := range in {
				in[r] = float64(r+1) + 0.5
				serial += in[r]
			}
			got, _, err := runHierAllreduce(c.p, c.group, in, (*reducer).Sum)
			if err != nil {
				t.Fatal(err)
			}
			for r, g := range got {
				if g != serial {
					t.Errorf("sum: rank %d got %g, serial fold %g", r, g, serial)
				}
			}

			rng := rand.New(rand.NewSource(int64(c.p*100 + c.group)))
			maxIn := make([]float64, c.p)
			want := math.Inf(-1)
			for r := range maxIn {
				maxIn[r] = rng.NormFloat64()
				if maxIn[r] > want {
					want = maxIn[r]
				}
			}
			gotMax, _, err := runHierAllreduce(c.p, c.group, maxIn, (*reducer).Max)
			if err != nil {
				t.Fatal(err)
			}
			for r, g := range gotMax {
				if g != want {
					t.Errorf("max: rank %d got %g, want %g", r, g, want)
				}
			}

			sumIn := make([]float64, c.p)
			for r := range sumIn {
				sumIn[r] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
			}
			gotSum, _, err := runHierAllreduce(c.p, c.group, sumIn, (*reducer).Sum)
			if err != nil {
				t.Fatal(err)
			}
			for r, g := range gotSum {
				if g != gotSum[0] {
					t.Errorf("sum: rank %d got %x, rank 0 got %x — ranks must agree bitwise",
						r, math.Float64bits(g), math.Float64bits(gotSum[0]))
				}
			}
		})
	}
}

// TestHierarchicalAllreduceTraffic: node members must send no messages
// at all — their contribution travels through the shared-memory
// combiner — while leaders walk the shorter leaders-only plan. That is
// the entire point of the hierarchy.
func TestHierarchicalAllreduceTraffic(t *testing.T) {
	const p, group = 8, 4
	in := make([]float64, p)
	for r := range in {
		in[r] = 1
	}
	_, reds, err := runHierAllreduce(p, group, in, (*reducer).Sum)
	if err != nil {
		t.Fatal(err)
	}
	for r, red := range reds {
		if r%group != 0 {
			if red.T.Startups != 0 || red.T.Bytes != 0 {
				t.Errorf("member rank %d sent traffic %+v, want none", r, red.T)
			}
			continue
		}
		// 2 leaders: a single recursive-doubling round = 1 send + 1 recv.
		if red.T.Startups != 2 {
			t.Errorf("leader rank %d counted %d startups, want 2", r, red.T.Startups)
		}
	}
}

// TestHierarchicalAllreduceSteadyStateAllocs: the combiner path must
// keep the reducer's zero-allocation steady state.
func TestHierarchicalAllreduceSteadyStateAllocs(t *testing.T) {
	const p, group = 4, 2
	grp, combs, err := buildCombiners(group, p)
	if err != nil {
		t.Fatal(err)
	}
	w := msg.NewWorld(p)
	red0 := newReducer(w.Comm(0), grp, combs, 0)
	for r := 1; r < p; r++ {
		red := newReducer(w.Comm(r), grp, combs, r)
		go func(r int) {
			for {
				red.Sum(float64(r))
				red.Max(float64(r))
			}
		}(r)
	}
	collective := func() {
		red0.Sum(1)
		red0.Max(1)
	}
	collective() // prime the message-layer free list
	if allocs := testing.AllocsPerRun(50, collective); allocs != 0 {
		t.Errorf("steady-state hierarchical allreduce allocates %.1f times, want 0", allocs)
	}
}

// TestBuildCombinersErrors: group sizes that cannot tile the world are
// construction errors, not silent fallbacks.
func TestBuildCombinersErrors(t *testing.T) {
	if _, _, err := buildCombiners(5, 4); err == nil {
		t.Error("group 5 accepted on a 4-rank world")
	}
	if _, _, err := buildCombiners(-1, 4); err == nil {
		t.Error("negative group accepted")
	}
	if g, combs, err := buildCombiners(0, 4); err != nil || g != 1 || combs != nil {
		t.Errorf("group 0 should resolve to the flat plan, got g=%d combs=%v err=%v", g, combs, err)
	}
}
