package stats

import (
	"math"
	"testing"
)

func seriesOf(name string, pts ...float64) Series {
	s := Series{Name: name}
	for i := 0; i+1 < len(pts); i += 2 {
		s.Add(pts[i], pts[i+1])
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := seriesOf("t", 1, 10, 2, 5, 4, 8)
	if s.Len() != 3 {
		t.Fatal("Len")
	}
	if y, ok := s.YAt(2); !ok || y != 5 {
		t.Fatal("YAt")
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt missing x")
	}
	x, y := s.MinY()
	if x != 2 || y != 5 {
		t.Fatalf("MinY (%g,%g)", x, y)
	}
	if s.Monotone() {
		t.Fatal("not monotone")
	}
	m := seriesOf("m", 1, 9, 2, 9, 3, 4)
	if !m.Monotone() {
		t.Fatal("monotone")
	}
}

func TestSpeedup(t *testing.T) {
	s := seriesOf("t", 1, 100, 2, 50, 4, 25)
	sp := s.Speedup()
	if y, _ := sp.YAt(4); y != 4 {
		t.Fatalf("speedup at 4 = %g", y)
	}
}

func TestCrossover(t *testing.T) {
	a := seriesOf("a", 1, 10, 2, 8, 4, 3)
	b := seriesOf("b", 1, 5, 2, 5, 4, 5)
	if x := Crossover(a, b); x != 4 {
		t.Fatalf("crossover at %g", x)
	}
	if x := Crossover(b, a); x != 1 {
		t.Fatalf("reverse crossover at %g", x)
	}
	c := seriesOf("c", 1, 100, 2, 100, 4, 100)
	if x := Crossover(c, b); x != 0 {
		t.Fatalf("no-cross should give 0, got %g", x)
	}
}

func TestCrossoverPanicsOnMismatchedX(t *testing.T) {
	a := seriesOf("a", 1, 10, 3, 8)
	b := seriesOf("b", 1, 5, 2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Crossover(a, b)
}

func TestScalarStats(t *testing.T) {
	v := []float64{4, 1, 7, 2}
	if Mean(v) != 3.5 || Max(v) != 7 || Min(v) != 1 {
		t.Fatal("mean/max/min")
	}
	if Median(v) != 3 {
		t.Fatalf("median %g", Median(v))
	}
	if Median([]float64{5, 1, 9}) != 5 {
		t.Fatal("odd median")
	}
	if got := RelSpread([]float64{9, 10, 11}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("spread %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Fatal("empty stats should be NaN")
	}
}

// TestSpeedupZeroGuards is the regression test for the +Inf/NaN
// artifacts: a zero baseline or zero sample yields NaN points instead
// of infinities leaking into tables and charts.
func TestSpeedupZeroGuards(t *testing.T) {
	zBase := seriesOf("zb", 1, 0, 2, 5)
	sp := zBase.Speedup()
	if !math.IsNaN(sp.Y[0]) || !math.IsNaN(sp.Y[1]) {
		t.Fatalf("zero baseline should yield NaN points, got %v", sp.Y)
	}
	zSample := seriesOf("zs", 1, 10, 2, 0, 4, 5)
	sp = zSample.Speedup()
	if sp.Y[0] != 1 || !math.IsNaN(sp.Y[1]) || sp.Y[2] != 2 {
		t.Fatalf("zero sample handling wrong: %v", sp.Y)
	}
	if got := (&Series{}).Speedup(); got.Len() != 0 {
		t.Fatalf("empty speedup should be empty, got %v", got)
	}
}

// TestCrossoverEmptySeries: with nothing to compare, Crossover returns
// NaN — distinguishable from the valid "never crossed" zero.
func TestCrossoverEmptySeries(t *testing.T) {
	if got := Crossover(Series{}, Series{}); !math.IsNaN(got) {
		t.Fatalf("empty crossover = %g, want NaN", got)
	}
	a := seriesOf("a", 1, 10)
	if got := Crossover(a, Series{}); !math.IsNaN(got) {
		t.Fatalf("half-empty crossover = %g, want NaN", got)
	}
}
