// Package stats provides the small series utilities used by the
// experiment drivers: named (x, y) series, speedups, and summary
// statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Series is a named sequence of (X, Y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the Y value for the first point with X == x.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MinY returns the minimum Y and its X, or NaNs for an empty series.
func (s *Series) MinY() (x, y float64) {
	if len(s.Y) == 0 {
		return math.NaN(), math.NaN()
	}
	x, y = s.X[0], s.Y[0]
	for i := range s.Y {
		if s.Y[i] < y {
			x, y = s.X[i], s.Y[i]
		}
	}
	return x, y
}

// Speedup returns the series s(1)/s(p) against p, using the first point
// as the baseline. A zero baseline or a zero sample has no meaningful
// speedup; those points carry NaN rather than the +Inf/NaN artifacts a
// raw division would emit into tables and charts.
func (s *Series) Speedup() Series {
	out := Series{Name: s.Name + " speedup"}
	if len(s.Y) == 0 {
		return out
	}
	base := s.Y[0]
	for i := range s.X {
		if base == 0 || s.Y[i] == 0 {
			out.Add(s.X[i], math.NaN())
			continue
		}
		out.Add(s.X[i], base/s.Y[i])
	}
	return out
}

// Monotone reports whether Y is nonincreasing.
func (s *Series) Monotone() bool {
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] > s.Y[i-1] {
			return false
		}
	}
	return true
}

// Crossover returns the smallest X at which a.Y < b.Y given that a
// starts above b, or 0 if they never cross. Both series must share X.
// With either series empty there is no overlap to compare: the result
// is NaN, distinguishable from the valid "never crossed" 0.
func Crossover(a, b Series) float64 {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	if n == 0 {
		return math.NaN()
	}
	for i := 0; i < n; i++ {
		if a.X[i] != b.X[i] {
			panic(fmt.Sprintf("stats: mismatched X: %g vs %g", a.X[i], b.X[i]))
		}
		if a.Y[i] < b.Y[i] {
			return a.X[i]
		}
	}
	return 0
}

// Mean returns the arithmetic mean.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Max returns the maximum value.
func Max(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum value.
func Min(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median value.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// RelSpread returns (max-min)/mean, the load-balance metric of Fig 13.
func RelSpread(v []float64) float64 {
	return (Max(v) - Min(v)) / Mean(v)
}
