package kernels

import (
	"testing"

	"repro/internal/cache"
)

func TestVersionProgression(t *testing.T) {
	vs := Versions()
	if len(vs) != 5 {
		t.Fatalf("%d versions", len(vs))
	}
	// Paper facts: V2 removes exponentiations; V3 adds stride-1; V4
	// reduces divisions 5.5e9 -> 2.0e9; V5 improves register use.
	if vs[0].PowsPerPoint == 0 || vs[1].PowsPerPoint != 0 {
		t.Error("strength reduction should remove exponentiations at V2")
	}
	if vs[1].Stride1 || !vs[2].Stride1 {
		t.Error("loop interchange arrives at V3")
	}
	if vs[2].DivsPerPoint != 44 || vs[3].DivsPerPoint != 16 {
		t.Errorf("division counts: V3 %g V4 %g", vs[2].DivsPerPoint, vs[3].DivsPerPoint)
	}
	if vs[4].LoadFactor >= vs[3].LoadFactor {
		t.Error("COMMON collapse should reduce loads per flop")
	}
}

func TestVAccessor(t *testing.T) {
	if V(3).ID != 3 {
		t.Error("V(3)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for V(9)")
		}
	}()
	V(9)
}

func TestStride1BeatsInterchangedOnCachedChip(t *testing.T) {
	r1 := V(1).SimulateSweep(cache.RS560, 250, 100)
	r3 := V(3).SimulateSweep(cache.RS560, 250, 100)
	if r3.MissRatio >= r1.MissRatio {
		t.Fatalf("stride-1 miss ratio %.3f not below strided %.3f", r3.MissRatio, r1.MissRatio)
	}
	if r1.MissRatio < 0.5 {
		t.Errorf("strided traversal should thrash: %.3f", r1.MissRatio)
	}
	if r3.MissRatio > 0.15 {
		t.Errorf("stride-1 traversal misses too much on 64KB: %.3f", r3.MissRatio)
	}
}

func TestSmallCacheHurtsEvenStride1(t *testing.T) {
	big := V(5).SimulateSweep(cache.RS560, 250, 100)
	small := V(5).SimulateSweep(cache.T3D, 250, 100)
	if small.MissRatio <= 1.5*big.MissRatio {
		t.Fatalf("8KB direct-mapped should miss much more: %.3f vs %.3f", small.MissRatio, big.MissRatio)
	}
}

func TestSweepAccountsAllAccesses(t *testing.T) {
	r := V(5).SimulateSweep(cache.RS370, 100, 50)
	perPoint := traceArrays + 4*stencilComps
	want := uint64((100 - 2) * (50 - 2) * perPoint)
	if r.Accesses != want {
		t.Fatalf("accesses %d, want %d", r.Accesses, want)
	}
	if r.Misses > r.Accesses {
		t.Fatal("misses exceed accesses")
	}
}
