// Package kernels models the paper's single-processor optimization
// study (Section 6, Figure 2) as concrete code-version specifications:
//
//	Version 1: original port — non-unit-stride inner loops, repeated
//	           exponentiations, division-heavy expressions.
//	Version 2: strength reduction (exponentiation -> multiplication).
//	Version 3: loop interchange — stride-1 array access (the paper's
//	           dominant win, ~50% faster than Version 2).
//	Version 4: division replaced by multiplication where feasible
//	           (5.5e9 divisions reduced to 2.0e9 over the run).
//	Version 5: COMMON blocks collapsed — better register usage, fewer
//	           loads per point.
//
// Each version defines (a) an operation mix per grid point per time
// step and (b) a memory access trace generator, which internal/cpu
// combines with a cache simulation to produce the sustained MFLOPS the
// platform simulator uses.
package kernels

import "repro/internal/cache"

// Paper division counts: 5.5e9 (before V4) and 2.0e9 (after) across
// 250x100x5000 point-steps.
const (
	divsPerPointOriginal = 5.5e9 / (250 * 100 * 5000) // = 44
	divsPerPointReduced  = 2.0e9 / (250 * 100 * 5000) // = 16
)

// Spec describes one code version's per-point cost profile.
type Spec struct {
	ID   int
	Name string
	// Stride1 selects the loop-interchanged, cache-friendly traversal.
	Stride1 bool
	// PowsPerPoint counts exponentiation library calls per point-step.
	PowsPerPoint float64
	// DivsPerPoint counts floating divisions per point-step.
	DivsPerPoint float64
	// LoadFactor is memory loads issued per floating-point operation.
	LoadFactor float64
}

// Versions returns the five optimization stages of Figure 2, in order.
func Versions() []Spec {
	return []Spec{
		{ID: 1, Name: "Version 1 (original)", Stride1: false, PowsPerPoint: 4, DivsPerPoint: divsPerPointOriginal, LoadFactor: 0.40},
		{ID: 2, Name: "Version 2 (+strength reduction)", Stride1: false, PowsPerPoint: 0, DivsPerPoint: divsPerPointOriginal, LoadFactor: 0.40},
		{ID: 3, Name: "Version 3 (+stride-1 loops)", Stride1: true, PowsPerPoint: 0, DivsPerPoint: divsPerPointOriginal, LoadFactor: 0.40},
		{ID: 4, Name: "Version 4 (+div->mul)", Stride1: true, PowsPerPoint: 0, DivsPerPoint: divsPerPointReduced, LoadFactor: 0.40},
		{ID: 5, Name: "Version 5 (+COMMON collapse)", Stride1: true, PowsPerPoint: 0, DivsPerPoint: divsPerPointReduced, LoadFactor: 0.35},
	}
}

// V returns version id (1-5).
func V(id int) Spec {
	vs := Versions()
	if id < 1 || id > len(vs) {
		panic("kernels: unknown version")
	}
	return vs[id-1]
}

// Trace parameters: the solver's working state is about two dozen
// scalar fields; the stencil kernels also touch neighbouring columns of
// several of them. These constants shape the trace, not its total
// volume (which scales with LoadFactor).
const (
	traceArrays  = 24 // distinct field arrays touched per point
	stencilComps = 6  // arrays also read at i-1, i+1 (axial stencil)
)

// TraceResult summarizes a cache simulation of one field sweep.
type TraceResult struct {
	Accesses  uint64
	Misses    uint64
	MissRatio float64
}

// SimulateSweep drives the version's access pattern over an nx-by-nr
// field set through cache geometry cfg and returns the steady miss
// ratio. Two passes are simulated; statistics come from the second
// (warm) pass.
func (s Spec) SimulateSweep(cfg cache.Config, nx, nr int) TraceResult {
	c := cache.New(cfg)
	arraySize := uint64(nx*nr) * 8
	base := func(k int) uint64 { return uint64(k) * (arraySize + 4096) } // page-aligned spacing
	idx := func(i, j int) uint64 { return uint64(i*nr+j) * 8 }

	sweep := func() {
		if s.Stride1 {
			for i := 1; i < nx-1; i++ {
				for j := 1; j < nr-1; j++ {
					for k := 0; k < traceArrays; k++ {
						c.Access(base(k) + idx(i, j))
					}
					for k := 0; k < stencilComps; k++ {
						c.Access(base(k) + idx(i-1, j))
						c.Access(base(k) + idx(i+1, j))
						c.Access(base(k) + idx(i, j-1))
						c.Access(base(k) + idx(i, j+1))
					}
				}
			}
			return
		}
		// Interchanged (original) order: inner loop strides by nr*8 bytes.
		for j := 1; j < nr-1; j++ {
			for i := 1; i < nx-1; i++ {
				for k := 0; k < traceArrays; k++ {
					c.Access(base(k) + idx(i, j))
				}
				for k := 0; k < stencilComps; k++ {
					c.Access(base(k) + idx(i-1, j))
					c.Access(base(k) + idx(i+1, j))
					c.Access(base(k) + idx(i, j-1))
					c.Access(base(k) + idx(i, j+1))
				}
			}
		}
	}
	sweep() // warm
	c.Reset()
	sweep() // measure
	h, m := c.Stats()
	return TraceResult{Accesses: h + m, Misses: m, MissRatio: float64(m) / float64(h+m)}
}
