// Package sim is a deterministic discrete-event simulation engine: an
// event heap ordered by (time, sequence) driving callback events. It is
// the substrate under the platform co-simulation (internal/machine) and
// the network models (internal/netsim).
package sim

import (
	"container/heap"
	"fmt"
)

// Engine runs events in nondecreasing time order; ties break by
// scheduling order, making every simulation fully deterministic.
type Engine struct {
	now float64
	seq int64
	pq  eventHeap
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New creates an engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule queues fn to run after delay seconds.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	e.At(e.now+delay, fn)
}

// At queues fn at absolute time t (not before now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{t: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() float64 {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// Pending returns the number of queued events (for tests).
func (e *Engine) Pending() int { return e.pq.Len() }

// Resource is a serially reusable facility modeled as a timeline: a
// request at time t occupies the resource from max(t, nextFree) for the
// given duration. It is the building block for links, buses, and ports.
type Resource struct {
	nextFree float64
	// BusySeconds accumulates total occupied time (utilization metric).
	BusySeconds float64
}

// Acquire reserves the resource for dur starting no earlier than t and
// returns the (start, end) of the reservation.
func (r *Resource) Acquire(t, dur float64) (start, end float64) {
	start = t
	if r.nextFree > start {
		start = r.nextFree
	}
	end = start + dur
	r.nextFree = end
	r.BusySeconds += dur
	return start, end
}

// NextFree returns the earliest time the resource is available.
func (r *Resource) NextFree() float64 { return r.nextFree }

// QueueDelay returns how long a request issued at t would wait.
func (r *Resource) QueueDelay(t float64) float64 {
	if r.nextFree > t {
		return r.nextFree - t
	}
	return 0
}
