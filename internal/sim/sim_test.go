package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time %g", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.Schedule(1, chain)
		}
	}
	e.Schedule(0, chain)
	end := e.Run()
	if count != 5 || end != 4 {
		t.Fatalf("count %d end %g", count, end)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling into the past")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestResourceSerialization(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire: %g-%g", s1, e1)
	}
	// A request at t=5 must queue behind the first.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire: %g-%g", s2, e2)
	}
	// A request after free time starts immediately.
	s3, _ := r.Acquire(30, 1)
	if s3 != 30 {
		t.Fatalf("third acquire start %g", s3)
	}
	if r.BusySeconds != 21 {
		t.Fatalf("busy %g", r.BusySeconds)
	}
}

// Property: resource reservations never overlap and never start before
// the request time.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct{ T, D uint16 }) bool {
		var r Resource
		lastEnd := 0.0
		now := 0.0
		for _, q := range reqs {
			now += float64(q.T % 100)
			dur := float64(q.D%50) + 1
			s, e := r.Acquire(now, dur)
			if s < now || s < lastEnd || e != s+dur {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueDelay(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	if d := r.QueueDelay(4); d != 6 {
		t.Fatalf("delay %g", d)
	}
	if d := r.QueueDelay(12); d != 0 {
		t.Fatalf("delay %g", d)
	}
}
