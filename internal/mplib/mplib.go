// Package mplib models the message-passing libraries of the paper: the
// per-message CPU overheads (packing, copies, context switches between
// the application and the network layers — the overheads the paper's
// conclusion singles out), daemon/stack latency, and eager vs blocking
// (rendezvous) send semantics.
//
// Costs are one-way user-process costs calibrated to mid-1990s
// measurements of each library; see EXPERIMENTS.md for the calibration
// discussion.
package mplib

// Model describes one message-passing library.
type Model struct {
	Name string
	// SendSetupS/SendPerByteS: sender CPU time per message (busy time).
	SendSetupS   float64
	SendPerByteS float64
	// RecvSetupS/RecvPerByteS: receiver CPU time per message.
	RecvSetupS   float64
	RecvPerByteS float64
	// LatencyS: library/daemon transit latency outside the CPU (lands in
	// waiting, not busy, time).
	LatencyS float64
	// PerByteLatencyS: wire-side per-byte forwarding cost of the library
	// path (the PVM daemons' store-and-forward throughput limit). Lands
	// in waiting time.
	PerByteLatencyS float64
	// Rendezvous: blocking send semantics — the sender stalls until the
	// matching receive is posted (the constrained MPL mode the paper was
	// forced to use).
	Rendezvous bool
}

// SendCPU returns the sender busy time for a message of n bytes.
func (m Model) SendCPU(n int) float64 { return m.SendSetupS + float64(n)*m.SendPerByteS }

// RecvCPU returns the receiver busy time for a message of n bytes.
func (m Model) RecvCPU(n int) float64 { return m.RecvSetupS + float64(n)*m.RecvPerByteS }

// The paper's libraries.
var (
	// PVM 3.2.2, off-the-shelf, on LACE: user data funnels through the
	// pvmd daemons over UDP — two extra copies and two context switches
	// per message. This is the dominant cost the paper's conclusion
	// calls out for NOW platforms.
	PVM = Model{
		Name:       "PVM",
		SendSetupS: 1.0e-3, SendPerByteS: 35e-9,
		RecvSetupS: 0.9e-3, RecvPerByteS: 30e-9,
		LatencyS: 2.5e-3, PerByteLatencyS: 1.1e-6,
	}
	// PVMe, IBM's customized PVM for the SP: bypasses UDP but keeps the
	// PVM daemon structure and copy path.
	PVMe = Model{
		Name:       "PVMe",
		SendSetupS: 3.5e-3, SendPerByteS: 300e-9,
		RecvSetupS: 3.0e-3, RecvPerByteS: 300e-9,
		LatencyS: 0.8e-3, PerByteLatencyS: 100e-9,
	}
	// MPL, IBM's native library: user-space access to the switch, but
	// the available send primitive blocks (rendezvous).
	MPL = Model{
		Name:       "MPL",
		SendSetupS: 45e-6, SendPerByteS: 9e-9,
		RecvSetupS: 40e-6, RecvPerByteS: 9e-9,
		LatencyS:   25e-6,
		Rendezvous: true,
	}
	// CrayPVM, Cray's customized PVM for the T3D: thin layer over the
	// torus with small setup cost (the paper: "a relatively small setup
	// cost").
	CrayPVM = Model{
		Name:       "Cray PVM",
		SendSetupS: 30e-6, SendPerByteS: 5e-9,
		RecvSetupS: 25e-6, RecvPerByteS: 5e-9,
		LatencyS: 12e-6,
	}
)
