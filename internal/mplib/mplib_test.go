package mplib

import "testing"

func TestCostFunctions(t *testing.T) {
	m := Model{SendSetupS: 1e-3, SendPerByteS: 1e-6, RecvSetupS: 5e-4, RecvPerByteS: 2e-6}
	if got := m.SendCPU(1000); got != 2e-3 {
		t.Errorf("SendCPU = %g", got)
	}
	if got := m.RecvCPU(1000); got != 2.5e-3 {
		t.Errorf("RecvCPU = %g", got)
	}
}

// TestLibraryOrdering pins the paper's library hierarchy: the native,
// user-space libraries (MPL, Cray PVM) cost far less per message than
// the daemon-based PVM family.
func TestLibraryOrdering(t *testing.T) {
	const msg = 6400
	pvm := PVM.SendCPU(msg) + PVM.RecvCPU(msg) + PVM.LatencyS + float64(msg)*PVM.PerByteLatencyS
	pvme := PVMe.SendCPU(msg) + PVMe.RecvCPU(msg) + PVMe.LatencyS + float64(msg)*PVMe.PerByteLatencyS
	mpl := MPL.SendCPU(msg) + MPL.RecvCPU(msg) + MPL.LatencyS
	cray := CrayPVM.SendCPU(msg) + CrayPVM.RecvCPU(msg) + CrayPVM.LatencyS
	if !(mpl < pvm && mpl < pvme) {
		t.Errorf("MPL (%g) should be cheapest on the SP: pvm %g pvme %g", mpl, pvm, pvme)
	}
	if !(cray < mpl*3) {
		t.Errorf("Cray PVM per-message cost %g out of family", cray)
	}
	if !(pvme > mpl*5) {
		t.Errorf("PVMe (%g) should be far costlier than MPL (%g)", pvme, mpl)
	}
}

func TestSemantics(t *testing.T) {
	if !MPL.Rendezvous {
		t.Error("MPL models the paper's blocking send")
	}
	if PVM.Rendezvous || PVMe.Rendezvous || CrayPVM.Rendezvous {
		t.Error("PVM family is eager")
	}
}
