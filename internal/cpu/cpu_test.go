package cpu

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/trace"
)

// TestFigure2Calibration pins the RS6000/560 to the paper's measured
// endpoints: Version 1 ran at 9.3 MFLOPS and Version 5 at 16.0.
func TestFigure2Calibration(t *testing.T) {
	f := trace.PaperFlopsPerPoint(true)
	v1 := RS560.Evaluate(kernels.V(1), f)
	v5 := RS560.Evaluate(kernels.V(5), f)
	if v1.EffMFLOPS < 8 || v1.EffMFLOPS > 11.5 {
		t.Errorf("560 V1 = %.2f MFLOPS, paper 9.3", v1.EffMFLOPS)
	}
	if v5.EffMFLOPS < 14 || v5.EffMFLOPS > 18 {
		t.Errorf("560 V5 = %.2f MFLOPS, paper 16.0", v5.EffMFLOPS)
	}
	if gain := v5.EffMFLOPS/v1.EffMFLOPS - 1; gain < 0.5 || gain > 1.2 {
		t.Errorf("overall optimization gain %.0f%%, paper ~80%%", gain*100)
	}
}

// TestVersionsMonotone: each successive optimization must not slow the
// code down on any of the paper's processors.
func TestVersionsMonotone(t *testing.T) {
	f := trace.PaperFlopsPerPoint(true)
	for _, ch := range []Chip{RS560, RS590, RS370, AlphaT3D} {
		prev := 0.0
		for _, v := range kernels.Versions() {
			p := ch.Evaluate(v, f)
			if p.EffMFLOPS < prev {
				t.Errorf("%s: V%d (%.2f) slower than V%d (%.2f)", ch.Name, v.ID, p.EffMFLOPS, v.ID-1, prev)
			}
			prev = p.EffMFLOPS
		}
	}
}

// TestNodeOrdering pins the cross-platform single-node story of
// Section 7.2: 590 fastest, then 560, then the SP's 370, with the T3D's
// Alpha behind despite its 150 MHz clock.
func TestNodeOrdering(t *testing.T) {
	f := trace.PaperFlopsPerPoint(true)
	v5 := kernels.V(5)
	e590 := RS590.Evaluate(v5, f).EffMFLOPS
	e560 := RS560.Evaluate(v5, f).EffMFLOPS
	e370 := RS370.Evaluate(v5, f).EffMFLOPS
	et3d := AlphaT3D.Evaluate(v5, f).EffMFLOPS
	if !(e590 > e560 && e560 > e370 && e370 > et3d*0.8) {
		t.Errorf("ordering broken: 590=%.1f 560=%.1f 370=%.1f T3D=%.1f", e590, e560, e370, et3d)
	}
	if et3d > e560 {
		t.Errorf("T3D node (%.1f) should not beat the 560 (%.1f) on this code", et3d, e560)
	}
	// 590 vs 560: the paper attributes ~1.5x to the node.
	if r := e590 / e560; r < 1.3 || r > 1.9 {
		t.Errorf("590/560 = %.2f", r)
	}
}

func TestVectorModel(t *testing.T) {
	e := YMP.EffMFLOPS()
	if e < 150 || e > 260 {
		t.Errorf("Y-MP sustained %.0f MFLOPS, want O(200)", e)
	}
	// Longer vectors help (Hockney n_1/2).
	long := YMP
	long.VectorLen = 1000
	if long.EffMFLOPS() <= e {
		t.Error("longer vectors should raise the rate")
	}
	// A pure-scalar machine is bounded by the scalar rate.
	scalar := YMP
	scalar.ScalarFrac = 1
	if s := scalar.EffMFLOPS(); math.Abs(s-YMP.ScalarMFLOPS) > 1e-9 {
		t.Errorf("all-scalar rate %.1f", s)
	}
}

func TestEvaluateScalesWithClock(t *testing.T) {
	f := trace.PaperFlopsPerPoint(true)
	fast := RS560
	fast.ClockHz *= 2
	a := RS560.Evaluate(kernels.V(5), f)
	b := fast.Evaluate(kernels.V(5), f)
	if math.Abs(b.EffMFLOPS-2*a.EffMFLOPS) > 1e-9 {
		t.Errorf("clock scaling broken: %.2f vs %.2f", b.EffMFLOPS, a.EffMFLOPS)
	}
}

func TestEulerWorkloadEvaluates(t *testing.T) {
	f := trace.PaperFlopsPerPoint(false)
	p := RS560.Evaluate(kernels.V(5), f)
	if p.EffMFLOPS <= 0 || math.IsNaN(p.EffMFLOPS) {
		t.Fatalf("Euler eval: %+v", p)
	}
}
