// Package cpu provides processor timing models for the paper's nodes:
// superscalar RISC chips whose sustained speed is dominated by the cache
// and memory hierarchy (RS6000/560, /590, RS6K/370, T3D's Alpha 21064),
// and the Cray Y-MP vector processor (Hockney r_inf / n_1/2 model).
//
// The RISC model composes a per-point cycle count from the operation mix
// of a kernel version (internal/kernels) and the miss ratio of a cache
// simulation — reproducing the paper's observation that "the bottleneck
// seems to be the performance of the cache and the memory hierarchy".
package cpu

import (
	"repro/internal/cache"
	"repro/internal/kernels"
)

// Chip is a cache-based RISC processor model.
type Chip struct {
	Name              string
	ClockHz           float64
	DCache            cache.Config
	MissPenaltyCycles float64 // average main-memory stall per miss
	CPIFlop           float64 // cycles per ordinary FLOP (issue + ld/st overhead folded in)
	DivCycles         float64 // extra cycles per floating division
	PowCycles         float64 // cycles per exponentiation library call
	// WriteStallCycles models write-through traffic (the T3D's Alpha has
	// no write-allocate and no L2: every store goes to DRAM). Zero for
	// the write-back RS6000 family.
	WriteStallCycles float64
}

// StoreFactor is stores issued per floating-point operation.
const StoreFactor = 0.12

// The paper's processors (Section 4). Clock rates and cache geometries
// are quoted by the paper; penalties and CPIs are calibrated so the
// RS6000/560 reproduces Figure 2's 9.3 -> 16.0 MFLOPS progression (see
// cpu tests and EXPERIMENTS.md).
var (
	RS560 = Chip{
		Name: "RS6000/560", ClockHz: 50e6, DCache: cache.RS560,
		MissPenaltyCycles: 7, CPIFlop: 2.6, DivCycles: 19, PowCycles: 50,
	}
	RS590 = Chip{
		Name: "RS6000/590", ClockHz: 66.5e6, DCache: cache.RS590,
		// 4x wider memory bus than the 560: lower effective miss penalty.
		MissPenaltyCycles: 5, CPIFlop: 2.3, DivCycles: 17, PowCycles: 50,
	}
	RS370 = Chip{
		Name: "RS6K/370", ClockHz: 62.5e6, DCache: cache.RS370,
		// Desktop-class model: narrower issue and a slower memory path
		// than the 560/590 server nodes; with the 32 KB cache this puts
		// the SP node below the 560 on this code, the paper's
		// "surprising" observation in Section 7.2.
		MissPenaltyCycles: 60, CPIFlop: 4.0, DivCycles: 19, PowCycles: 50,
	}
	AlphaT3D = Chip{
		Name: "Alpha 21064 (T3D)", ClockHz: 150e6, DCache: cache.T3D,
		// Fast clock against far DRAM with no L2: a large penalty in
		// cycles; no fused multiply-add (the POWER chips have one),
		// hence the higher CPI; write-through D-cache sends every store
		// to memory. The paper: "we attribute the T3D's poor performance
		// to the small direct-mapped cache"; NAS reported the same [17].
		MissPenaltyCycles: 80, CPIFlop: 3.2, DivCycles: 34, PowCycles: 80,
		WriteStallCycles: 30,
	}
)

// Perf is the outcome of evaluating a kernel version on a chip.
type Perf struct {
	Chip            string
	Version         int
	CyclesPerPoint  float64
	MissesPerPoint  float64
	EffMFLOPS       float64
	SecondsPerPoint float64
}

// Evaluate combines the chip model, the kernel version's operation mix,
// and a cache simulation of its access pattern into a sustained rate
// for an application running flopsPerPoint FLOPs per grid point per
// step (the paper's Table 1 density).
func (c Chip) Evaluate(v kernels.Spec, flopsPerPoint float64) Perf {
	tr := v.SimulateSweep(c.DCache, 250, 100)
	loads := v.LoadFactor * flopsPerPoint
	misses := tr.MissRatio * loads
	cycles := flopsPerPoint*c.CPIFlop +
		v.DivsPerPoint*c.DivCycles +
		v.PowsPerPoint*c.PowCycles +
		misses*c.MissPenaltyCycles +
		StoreFactor*flopsPerPoint*c.WriteStallCycles
	sec := cycles / c.ClockHz
	return Perf{
		Chip:            c.Name,
		Version:         v.ID,
		CyclesPerPoint:  cycles,
		MissesPerPoint:  misses,
		EffMFLOPS:       flopsPerPoint / sec / 1e6,
		SecondsPerPoint: sec,
	}
}

// Vector models a Cray-style vector processor with the Hockney
// parameters r_inf (asymptotic MFLOPS) and n_1/2 (half-performance
// vector length), plus an Amdahl scalar fraction.
type Vector struct {
	Name         string
	RInfMFLOPS   float64
	NHalf        float64
	VectorLen    float64 // sustained vector length (the paper partitioned to keep this large)
	ScalarFrac   float64
	ScalarMFLOPS float64
}

// YMP is one Cray Y-MP processor: 333 MFLOPS peak per CPU (2.7 GFLOPS
// across eight).
var YMP = Vector{
	Name: "Cray Y-MP", RInfMFLOPS: 333, NHalf: 40,
	VectorLen: 100, ScalarFrac: 0.03, ScalarMFLOPS: 25,
}

// EffMFLOPS returns the sustained rate for long-running vectorized code.
func (v Vector) EffMFLOPS() float64 {
	vec := v.RInfMFLOPS * v.VectorLen / (v.VectorLen + v.NHalf)
	return 1 / (v.ScalarFrac/v.ScalarMFLOPS + (1-v.ScalarFrac)/vec)
}
