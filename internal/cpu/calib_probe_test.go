package cpu

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/trace"
)

func TestCalibrationProbe(t *testing.T) {
	fNS := trace.PaperFlopsPerPoint(true)
	for _, ch := range []Chip{RS560, RS590, RS370, AlphaT3D} {
		for _, v := range kernels.Versions() {
			p := ch.Evaluate(v, fNS)
			t.Logf("%-18s V%d: %6.2f MFLOPS  (%.0f cyc/pt, %.1f miss/pt)", ch.Name, v.ID, p.EffMFLOPS, p.CyclesPerPoint, p.MissesPerPoint)
		}
	}
	t.Logf("Y-MP vector eff: %.1f MFLOPS", YMP.EffMFLOPS())
	W := trace.PaperNS().TotalFlops()
	for _, ch := range []Chip{RS560, RS590, RS370, AlphaT3D} {
		p := ch.Evaluate(kernels.V(5), fNS)
		t.Logf("%-18s N-S 1-proc: %6.0f s", ch.Name, W/(p.EffMFLOPS*1e6))
	}
	t.Logf("%-18s N-S 1-proc: %6.0f s", "Y-MP", W/(YMP.EffMFLOPS()*1e6))
}
