// Package cache is a trace-driven cache simulator supporting the
// geometries of the paper's processors: the RS6000/560 (64 KB, 4-way),
// RS6000/590 (256 KB, 4-way), RS6K/370 (32 KB, 4-way), and the Cray
// T3D's Alpha 21064 (8 KB, direct-mapped). Replacement is LRU within a
// set. The paper attributes most single-processor performance
// differences to exactly these parameters.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int // 1 = direct-mapped
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: nonpositive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*ways", c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Cache is a simulated cache. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	sets     [][]uint64 // tag per way, LRU order: index 0 = most recent
	lineBits uint
	setMask  uint64
	hits     uint64
	misses   uint64
}

// New builds a cache; panics on invalid geometry (configurations are
// compile-time constants in this codebase).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, sets: make([][]uint64, nsets), setMask: uint64(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Ways)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access simulates one load/store to addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	tag := addr >> c.lineBits
	set := c.sets[tag&c.setMask]
	for i, t := range set {
		if t == tag {
			// Move to front (LRU update).
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[tag&c.setMask] = set
	return false
}

// Stats returns accumulated hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// MissRatio returns misses/(hits+misses), or 0 before any access.
func (c *Cache) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.hits, c.misses = 0, 0
}

// Paper processor data caches (geometry from the paper's Section 4).
var (
	RS560 = Config{Name: "RS6000/560", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4}
	RS590 = Config{Name: "RS6000/590", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4}
	RS370 = Config{Name: "RS6K/370", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4}
	T3D   = Config{Name: "T3D Alpha 21064", SizeBytes: 8 << 10, LineBytes: 32, Ways: 1}
)
