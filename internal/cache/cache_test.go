package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
	h, m := c.Stats()
	if h != 2 || m != 2 {
		t.Fatalf("stats %d/%d", h, m)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 8 sets of 64 B, direct-mapped: addresses 0 and 512 share set 0.
	c := New(Config{Name: "dm", SizeBytes: 512, LineBytes: 64, Ways: 1})
	c.Access(0)
	c.Access(512)
	if c.Access(0) {
		t.Fatal("conflicting line should have evicted address 0")
	}
	// A 2-way cache of the same size holds both.
	c2 := New(Config{Name: "2w", SizeBytes: 512, LineBytes: 64, Ways: 2})
	c2.Access(0)
	c2.Access(256) // same set in 4-set 2-way
	if !c2.Access(0) {
		t.Fatal("2-way should retain both lines")
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set, 2 ways (fully associative with 2 lines).
	c := New(Config{Name: "lru", SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0)   // miss: {0}
	c.Access(64)  // miss: {64, 0}
	c.Access(0)   // hit:  {0, 64}
	c.Access(128) // miss, evicts LRU = 64: {128, 0}
	if !c.Access(0) {
		t.Fatal("LRU evicted the wrong line")
	}
	if c.Access(64) {
		t.Fatal("64 should have been evicted")
	}
}

func TestCapacitySweep(t *testing.T) {
	// Working set fits: second sweep all hits.
	c := New(Config{Name: "fit", SizeBytes: 4096, LineBytes: 64, Ways: 4})
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a)
		}
	}
	h, m := c.Stats()
	if m != 32 || h != 32 {
		t.Fatalf("fit sweep: %d hits %d misses", h, m)
	}
	// Working set 2x the cache with LRU round-robin: everything misses.
	c2 := New(Config{Name: "thrash", SizeBytes: 1024, LineBytes: 64, Ways: 1})
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c2.Access(a)
		}
	}
	if r := c2.MissRatio(); r != 1 {
		t.Fatalf("thrash miss ratio %g", r)
	}
}

func TestReset(t *testing.T) {
	c := New(RS560)
	c.Access(0)
	c.Reset()
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(0) {
		t.Fatal("contents survived reset")
	}
}

func TestPaperGeometries(t *testing.T) {
	for _, cfg := range []Config{RS560, RS590, RS370, T3D} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if RS560.Sets() != 64<<10/(64*4) {
		t.Errorf("560 sets = %d", RS560.Sets())
	}
	if T3D.Ways != 1 {
		t.Error("T3D must be direct-mapped")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 1024, LineBytes: 60, Ways: 1}, // not power of two
		{SizeBytes: 1000, LineBytes: 64, Ways: 1}, // not divisible
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("want error for %+v", c)
		}
	}
}

// Property: hits + misses equals accesses, and the same trace replayed
// on a fresh cache gives identical statistics (determinism).
func TestDeterminismProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		run := func() (uint64, uint64) {
			c := New(Config{Name: "p", SizeBytes: 1024, LineBytes: 32, Ways: 2})
			for _, a := range addrs {
				c.Access(uint64(a))
			}
			return c.Stats()
		}
		h1, m1 := run()
		h2, m2 := run()
		return h1 == h2 && m1 == m2 && h1+m1 == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
