package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPRunAndStats(t *testing.T) {
	s := New(Options{Slots: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Cold run.
	resp, body := postJSON(t, srv, "/run", `{"id":"a","nx":64,"nr":24,"steps":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cold JobResult
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if !cold.OK || cold.Cached || cold.ID != "a" || cold.MomentumSHA256 == "" {
		t.Fatalf("cold result: %+v", cold)
	}

	// Duplicate must be a cache hit with the same checksum.
	_, body = postJSON(t, srv, "/run", `{"id":"b","nx":64,"nr":24,"steps":4}`)
	var hit JobResult
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.OK || !hit.Cached || hit.Key != cold.Key || hit.MomentumSHA256 != cold.MomentumSHA256 {
		t.Fatalf("hit result: %+v (cold %+v)", hit, cold)
	}

	// Batch: duplicates and one bad job, results in submission order.
	_, body = postJSON(t, srv, "/batch",
		`[{"id":"c","nx":64,"nr":24,"steps":4},{"id":"d","backend":"nonesuch","nx":64,"nr":24,"steps":4},{"id":"e","scenario":"channel","nx":64,"nr":16,"steps":3}]`)
	var batch []JobResult
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 || batch[0].ID != "c" || batch[1].ID != "d" || batch[2].ID != "e" {
		t.Fatalf("batch order: %+v", batch)
	}
	if !batch[0].Cached || !batch[0].OK {
		t.Fatalf("batch duplicate not served from cache: %+v", batch[0])
	}
	if batch[1].OK || batch[1].Error == "" {
		t.Fatalf("bad job not reported: %+v", batch[1])
	}
	if !batch[2].OK || batch[2].Scenario != "channel" {
		t.Fatalf("channel job: %+v", batch[2])
	}

	// Stats reflect the traffic.
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 2 || st.CacheHits != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// Queue depth, shed count, and the per-scenario traffic mix: three
	// jet jobs served (one cold, two cached), one channel job, nothing
	// queued or shed.
	if st.Queued != 0 || st.Running != 0 || st.Rejected != 0 {
		t.Fatalf("occupancy stats: %+v", st)
	}
	if st.PerScenario["jet"] != 3 || st.PerScenario["channel"] != 1 {
		t.Fatalf("per-scenario stats: %+v", st.PerScenario)
	}

	// Malformed JSON is a client error.
	resp, _ = postJSON(t, srv, "/run", `{"nx":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed job: status %d", resp.StatusCode)
	}

	// Liveness.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestHTTPShedding(t *testing.T) {
	s := New(Options{Slots: 1})
	s.Close() // closed scheduler sheds everything with 503
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, body := postJSON(t, srv, "/run", `{"nx":64,"nr":24,"steps":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Error == "" {
		t.Fatalf("shed result: %+v", res)
	}
}
