package serve

import "sync"

// fifoSem is a weighted semaphore with strict FIFO grants: the head
// waiter's width must fit before any later waiter is considered, so a
// wide (many-rank) job is never starved by a stream of narrow ones.
// The cost is head-of-line blocking — slots can idle while the head
// waits — which is the deliberate admission-control trade: predictable
// ordering over maximal packing.
type fifoSem struct {
	mu      sync.Mutex
	free    int
	waiters []*semWaiter
}

type semWaiter struct {
	need  int
	ready chan struct{}
}

func newFifoSem(slots int) *fifoSem { return &fifoSem{free: slots} }

// acquire blocks until n slots are granted. n must not exceed the pool
// size (the scheduler clamps admission widths).
func (s *fifoSem) acquire(n int) {
	s.mu.Lock()
	if len(s.waiters) == 0 && s.free >= n {
		s.free -= n
		s.mu.Unlock()
		return
	}
	w := &semWaiter{need: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	<-w.ready
}

// release returns n slots and grants the longest-waiting jobs that now
// fit, in order.
func (s *fifoSem) release(n int) {
	s.mu.Lock()
	s.free += n
	for len(s.waiters) > 0 && s.waiters[0].need <= s.free {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.free -= w.need
		close(w.ready)
	}
	s.mu.Unlock()
}
