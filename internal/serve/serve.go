// Package serve turns the one-shot core.Config → Run → Result pipeline
// into a multi-tenant service: a queued run scheduler that packs
// concurrently executing solver runs onto the machine, a config-hash
// result cache in front of it, and shared immutable per-scenario data
// behind it. This is the serving layer of the ROADMAP's "millions of
// users" refactor — the first place two solver runs execute
// concurrently inside one process, which is why the registries,
// lifecycle, and parity tests around it are concurrency-hardened.
//
// Request flow of Submit:
//
//  1. the Config is canonicalized (core.Config.Canonical — Mode/Backend
//     aliasing, zero-value defaults, scenario expansion) and hashed, so
//     every alias spelling of the same run shares one cache line;
//  2. the cache is consulted with single-flight semantics: a hit
//     returns the completed result (bitwise-identical to a cold run),
//     a duplicate of an in-flight run waits for that run instead of
//     recomputing;
//  3. a cold run passes admission control — a bounded FIFO wait queue
//     (load beyond it is shed with ErrBusy) feeding a weighted slot
//     pool: each run occupies its parallel width (ranks × per-rank
//     workers) so the summed width of executing runs never exceeds the
//     machine's Slots;
//  4. the run executes through core.NewRun/Execute and its result is
//     published to every waiter.
//
// The admission weight and the per-job cost estimate come from the
// cost-weighted decomposition machinery of internal/solver: the
// analytic per-column FLOP profile (solver.ColCostFlops) integrated
// over the scenario grid prices each job, and the profiles themselves
// are shared immutably across all jobs of a scenario/resolution,
// exactly like the grids core shares underneath.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/scenario"
	"repro/internal/solver"
)

// Submission errors.
var (
	// ErrBusy reports admission-control load shedding: the wait queue
	// is at MaxQueue. The job was not started; resubmit later.
	ErrBusy = errors.New("serve: admission queue full, resubmit later")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Options configures a Scheduler. The zero value picks host defaults.
type Options struct {
	// Slots is the machine width the scheduler packs runs onto: the
	// summed admission width (ranks × per-rank workers, clamped to
	// Slots) of concurrently executing runs never exceeds it. Zero
	// picks runtime.NumCPU().
	Slots int
	// MaxQueue bounds the runs waiting for slots; a cold submission
	// beyond it fails fast with ErrBusy instead of queuing unboundedly
	// (cache hits and coalesced duplicates are never shed — they hold
	// no slots). Zero picks 256.
	MaxQueue int
}

// Stats is a point-in-time snapshot of the scheduler counters.
type Stats struct {
	Slots    int `json:"slots"`
	MaxQueue int `json:"max_queue"`
	// Queued and Running are instantaneous occupancy.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Completed counts cold runs served, Failures cold runs that
	// errored, Rejected submissions shed by admission control.
	Completed uint64 `json:"completed"`
	Failures  uint64 `json:"failures"`
	Rejected  uint64 `json:"rejected"`
	// CacheHits counts results served from the config-hash cache
	// (including duplicates coalesced onto an in-flight run);
	// CacheMisses counts cold runs started.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// PerScenario counts served jobs (cold completions and cache hits)
	// by scenario name — the traffic mix of the service.
	PerScenario map[string]uint64 `json:"per_scenario,omitempty"`
	// SharedProfiles counts the immutable per-(scenario, resolution)
	// data sets (grid reference, physical configuration, cost profile)
	// shared across all jobs touching them.
	SharedProfiles int `json:"shared_profiles"`
	// FlopsServed integrates the analytic cost estimate of completed
	// cold runs (cache hits serve the same physics for free).
	FlopsServed float64       `json:"flops_served"`
	Uptime      time.Duration `json:"uptime_ns"`
	// RunsPerHour is served jobs (cold completions + cache hits) per
	// hour of uptime — the service-throughput headline.
	RunsPerHour float64 `json:"runs_per_hour"`
	// HitRate is CacheHits over all served jobs.
	HitRate float64 `json:"hit_rate"`
}

// Scheduler is the multi-tenant run service. Safe for concurrent use;
// construct with New.
type Scheduler struct {
	slots    int
	maxQueue int
	sem      *fifoSem
	start    time.Time
	closed   atomic.Bool

	mu          sync.Mutex
	results     map[string]*entry
	shared      map[sharedKey]*sharedData
	queued      int
	running     int
	flops       float64
	perScenario map[string]uint64

	hits, misses, completed, failures, rejected atomic.Uint64
}

// entry is one cache line with single-flight semantics: the first
// submitter of a key computes, everyone else waits on done. Successful
// entries stay forever (the result cache); failed ones are removed so
// a retry recomputes.
type entry struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// sharedKey identifies the immutable data of one scenario resolution.
type sharedKey struct {
	scenario string
	nx, nr   int
}

// sharedData is built once per (scenario, resolution) and read by every
// job that touches it: the grid (the same immutable grid core shares
// across concurrent runs), the scenario-pinned physical configuration,
// and the analytic per-column cost profile that prices admission.
type sharedData struct {
	g            *grid.Grid
	phys         jet.Config
	colCost      []float64
	flopsPerStep float64
}

// New builds a scheduler.
func New(o Options) *Scheduler {
	if o.Slots <= 0 {
		o.Slots = runtime.NumCPU()
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	return &Scheduler{
		slots:       o.Slots,
		maxQueue:    o.MaxQueue,
		sem:         newFifoSem(o.Slots),
		start:       time.Now(),
		results:     map[string]*entry{},
		shared:      map[sharedKey]*sharedData{},
		perScenario: map[string]uint64{},
	}
}

// Reply is one served job.
type Reply struct {
	// Result is a private copy — mutating it cannot corrupt the cache.
	Result *core.Result
	// Cached reports a config-hash cache hit (including coalescing onto
	// an in-flight duplicate). The physics fields of a cached Result
	// are bitwise-identical to what a cold run of the same canonical
	// config produces; Elapsed is the cold run's solver time.
	Cached bool
	// Key is the canonical config hash, the cache identity of the job.
	Key string
}

// Submit serves one configuration, blocking until the result is
// available: from the cache, from an in-flight duplicate, or from a
// cold run admitted through the slot pool. Safe to call from any number
// of goroutines; FIFO admission means no cold job is starved.
func (s *Scheduler) Submit(cfg core.Config) (*Reply, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	cc, err := cfg.Canonical()
	if err != nil {
		return nil, err
	}
	key := keyOf(cc)
	sd, err := s.sharedFor(cc)
	if err != nil {
		return nil, err
	}
	width := s.widthOf(cc)

	s.mu.Lock()
	if e, ok := s.results[key]; ok {
		s.mu.Unlock()
		<-e.done
		if e.err != nil {
			// The coalesced leader failed; surface its error without
			// counting a hit (nothing was served).
			return nil, e.err
		}
		s.hits.Add(1)
		s.mu.Lock()
		s.perScenario[cc.Scenario]++
		s.mu.Unlock()
		return &Reply{Result: copyResult(e.res), Cached: true, Key: key}, nil
	}
	if s.queued >= s.maxQueue {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrBusy
	}
	e := &entry{done: make(chan struct{})}
	s.results[key] = e
	s.queued++
	s.mu.Unlock()
	s.misses.Add(1)

	s.sem.acquire(width)
	s.mu.Lock()
	s.queued--
	s.running++
	s.mu.Unlock()

	res, err := runCold(cc)

	s.sem.release(width)
	s.mu.Lock()
	s.running--
	if err != nil {
		delete(s.results, key)
	} else {
		s.flops += sd.flopsPerStep * float64(res.Steps)
		s.perScenario[cc.Scenario]++
	}
	s.mu.Unlock()
	e.res, e.err = res, err
	close(e.done)
	if err != nil {
		s.failures.Add(1)
		return nil, err
	}
	s.completed.Add(1)
	return &Reply{Result: copyResult(res), Cached: false, Key: key}, nil
}

// runCold executes the canonical configuration once.
func runCold(cc core.Config) (*core.Result, error) {
	run, err := core.NewRun(cc)
	if err != nil {
		return nil, err
	}
	defer run.Close()
	return run.Execute()
}

// widthOf is the admission width of a canonical config: the parallel
// width the run occupies on the machine, clamped to the slot pool so an
// oversubscribed job degenerates to "the whole machine" instead of
// never being admitted.
func (s *Scheduler) widthOf(cc core.Config) int {
	w := cc.Procs
	if cc.Backend == "hybrid" {
		per := cc.Workers
		if per <= 0 {
			// The hybrid backend's host default: NumCPU spread over the
			// ranks, at least one worker each.
			per = runtime.NumCPU() / cc.Procs
			if per < 1 {
				per = 1
			}
		}
		w = cc.Procs * per
	}
	if w < 1 {
		w = 1
	}
	if w > s.slots {
		w = s.slots
	}
	return w
}

// sharedFor resolves (building on first use) the immutable shared data
// of the job's scenario resolution.
func (s *Scheduler) sharedFor(cc core.Config) (*sharedData, error) {
	k := sharedKey{scenario: cc.Scenario, nx: cc.Nx, nr: cc.Nr}
	s.mu.Lock()
	sd, ok := s.shared[k]
	s.mu.Unlock()
	if ok {
		return sd, nil
	}
	sc, err := scenario.Get(cc.Scenario)
	if err != nil {
		return nil, err
	}
	g, err := sc.Grid(cc.Nx, cc.Nr)
	if err != nil {
		return nil, err
	}
	phys := sc.Config(*cc.Jet) // canonical configs always carry Jet
	col := solver.ColCostFlops(phys, g)
	total := 0.0
	for _, w := range col {
		total += w
	}
	sd = &sharedData{g: g, phys: phys, colCost: col, flopsPerStep: total}
	s.mu.Lock()
	if prior, ok := s.shared[k]; ok {
		sd = prior // a racing builder won; share its copy
	} else {
		s.shared[k] = sd
	}
	s.mu.Unlock()
	return sd, nil
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	queued, running := s.queued, s.running
	entries := len(s.results)
	profiles := len(s.shared)
	flops := s.flops
	var perScenario map[string]uint64
	if len(s.perScenario) > 0 {
		perScenario = make(map[string]uint64, len(s.perScenario))
		for k, v := range s.perScenario {
			perScenario[k] = v
		}
	}
	s.mu.Unlock()
	st := Stats{
		Slots:          s.slots,
		MaxQueue:       s.maxQueue,
		Queued:         queued,
		Running:        running,
		Completed:      s.completed.Load(),
		Failures:       s.failures.Load(),
		Rejected:       s.rejected.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		CacheEntries:   entries,
		PerScenario:    perScenario,
		SharedProfiles: profiles,
		FlopsServed:    flops,
		Uptime:         time.Since(s.start),
	}
	served := st.Completed + st.CacheHits
	if h := st.Uptime.Hours(); h > 0 {
		st.RunsPerHour = float64(served) / h
	}
	if served > 0 {
		st.HitRate = float64(st.CacheHits) / float64(served)
	}
	return st
}

// Close marks the scheduler closed: later Submits fail with ErrClosed.
// Submissions already inside Submit run to completion.
func (s *Scheduler) Close() { s.closed.Store(true) }

// String summarizes the stats (CLI status lines).
func (st Stats) String() string {
	return fmt.Sprintf("served=%d (cold=%d cached=%d, hit-rate %.0f%%) failures=%d rejected=%d queued=%d running=%d cache=%d entries shared=%d profiles %.3g flops",
		st.Completed+st.CacheHits, st.Completed, st.CacheHits, 100*st.HitRate,
		st.Failures, st.Rejected, st.Queued, st.Running, st.CacheEntries, st.SharedProfiles, st.FlopsServed)
}
