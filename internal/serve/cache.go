package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/solver"
)

// Key returns the cache identity of a configuration: the SHA-256 of its
// canonical form. Two configs that Canonical maps onto the same
// normalized run share a key — and therefore a cache line — however
// they were spelled (legacy Mode vs registry name, implied defaults,
// scenario-pinned physics).
func Key(c core.Config) (string, error) {
	cc, err := c.Canonical()
	if err != nil {
		return "", err
	}
	return keyOf(cc), nil
}

// keyOf hashes an already-canonical config. Floats are keyed by their
// IEEE-754 bits: the cache promises bitwise-identical results, so two
// tolerances that differ in the last ulp are two different runs.
func keyOf(c core.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s|backend=%s|nx=%d|nr=%d|steps=%d|procs=%d|workers=%d|px=%d|pr=%d|version=%d|balance=%s|fresh=%t|halo=%d|group=%d|tol=%x|every=%d",
		c.Scenario, c.Backend, c.Nx, c.Nr, c.Steps, c.Procs, c.Workers, c.Px, c.Pr,
		c.Version, c.Balance, c.FreshHalos, c.HaloDepth, c.ReduceGroup,
		math.Float64bits(c.StopTol), c.ReduceEvery)
	j := *c.Jet // canonical configs always carry the resolved physics
	fmt.Fprintf(&b, "|jet=%x,%x,%x,%x,%x,%x,%x,%t",
		math.Float64bits(j.MachCenter), math.Float64bits(j.TempRatio),
		math.Float64bits(j.Theta), math.Float64bits(j.Strouhal),
		math.Float64bits(j.Eps), math.Float64bits(j.UCoflow),
		math.Float64bits(j.Reynolds), j.Viscous)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// copyResult returns a private deep copy of r: replies hand callers
// state they may mutate freely without corrupting the cached original.
func copyResult(r *core.Result) *core.Result {
	out := *r
	out.Residuals = append([]solver.ResidualPoint(nil), r.Residuals...)
	out.PerRank = append([]par.RankStats(nil), r.PerRank...)
	if r.Momentum != nil {
		m := make([][]float64, len(r.Momentum))
		for i := range m {
			m[i] = append([]float64(nil), r.Momentum[i]...)
		}
		out.Momentum = m
	}
	return &out
}
