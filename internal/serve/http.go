package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
)

// Handler returns the HTTP face of the scheduler — the jetsimd server:
//
//	POST /run     one Job body            → one JobResult
//	POST /batch   a JSON array of Jobs    → an array of JobResults,
//	              served concurrently, responded in submission order
//	GET  /stats   scheduler counters as JSON
//	GET  /healthz liveness probe
//
// Job-level failures (a config the registry rejects, a diverged run)
// come back 200 with ok=false and the error in the body — the service
// worked, the job didn't. Admission shedding (ErrBusy/ErrClosed) is 503
// so load balancers and clients back off; malformed JSON is 400.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		var job Job
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			http.Error(w, "bad job: "+err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := s.Submit(job.Config())
		status := http.StatusOK
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, ResultOf(job.ID, rep, err))
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var jobs []Job
		if err := json.NewDecoder(r.Body).Decode(&jobs); err != nil {
			http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]JobResult, len(jobs))
		var wg sync.WaitGroup
		for i, job := range jobs {
			wg.Add(1)
			go func(i int, job Job) {
				defer wg.Done()
				rep, err := s.Submit(job.Config())
				results[i] = ResultOf(job.ID, rep, err)
			}(i, job)
		}
		wg.Wait()
		writeJSON(w, http.StatusOK, results)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
