package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/core"
	"repro/internal/jet"
)

// Job is the wire form of one run request — the jetsimd job protocol
// (stdin-JSON batch mode and the HTTP body of POST /run). Zero-valued
// fields mean the same defaults as the corresponding core.Config
// fields, so `{"nx":64,"nr":24,"steps":50}` is a valid job.
type Job struct {
	// ID is an opaque client tag echoed on the result.
	ID       string `json:"id,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Euler    bool   `json:"euler,omitempty"`
	Nx       int    `json:"nx,omitempty"`
	Nr       int    `json:"nr,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Procs    int    `json:"procs,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Px       int    `json:"px,omitempty"`
	Pr       int    `json:"pr,omitempty"`
	Version  int    `json:"version,omitempty"`
	Balance  string `json:"balance,omitempty"`
	Fresh    bool   `json:"fresh,omitempty"`
	// HaloDepth/ReduceGroup/Tol/ReduceEvery mirror the CLI flags.
	HaloDepth   int     `json:"halo_depth,omitempty"`
	ReduceGroup int     `json:"reduce_group,omitempty"`
	Tol         float64 `json:"tol,omitempty"`
	ReduceEvery int     `json:"reduce_every,omitempty"`
	// SteadyTol is the velocity-steadiness stopping tolerance (the
	// cavity criterion), mutually exclusive with Tol.
	SteadyTol float64 `json:"steady_tol,omitempty"`
	// TimeSlices/PararealIters/CoarseFactor/DefectTol/Fine mirror the
	// parallel-in-time CLI flags (core.Config fields of the same names).
	TimeSlices    int     `json:"time_slices,omitempty"`
	PararealIters int     `json:"parareal_iters,omitempty"`
	CoarseFactor  int     `json:"coarse_factor,omitempty"`
	DefectTol     float64 `json:"defect_tol,omitempty"`
	Fine          string  `json:"fine,omitempty"`
	// Reynolds and Eps override the jet's parameters for parameter
	// sweeps (Eps is a pointer so an explicit 0 — unexcited — is
	// distinguishable from "unset"). Jet scenario only; the
	// wall-bounded scenarios pin their own physics.
	Reynolds float64  `json:"reynolds,omitempty"`
	Eps      *float64 `json:"eps,omitempty"`
}

// Config maps the wire job onto a core configuration.
func (j Job) Config() core.Config {
	c := core.Config{
		Scenario: j.Scenario,
		Backend:  j.Backend,
		Euler:    j.Euler,
		Nx:       j.Nx, Nr: j.Nr, Steps: j.Steps,
		Procs: j.Procs, Workers: j.Workers, Px: j.Px, Pr: j.Pr,
		Version:     j.Version,
		Balance:     j.Balance,
		FreshHalos:  j.Fresh,
		HaloDepth:   j.HaloDepth,
		ReduceGroup: j.ReduceGroup,
		StopTol:     j.Tol,
		ReduceEvery: j.ReduceEvery,
		SteadyTol:   j.SteadyTol,

		TimeSlices:    j.TimeSlices,
		PararealIters: j.PararealIters,
		CoarseFactor:  j.CoarseFactor,
		DefectTol:     j.DefectTol,
		FineBackend:   j.Fine,
	}
	if j.Reynolds > 0 || j.Eps != nil {
		jc := jet.Paper()
		if j.Euler {
			jc = jet.Euler()
		}
		if j.Reynolds > 0 {
			jc.Reynolds = j.Reynolds
		}
		if j.Eps != nil {
			jc.Eps = *j.Eps
		}
		c.Jet = &jc
	}
	return c
}

// JobResult is the wire form of one served job.
type JobResult struct {
	ID     string `json:"id,omitempty"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Cached bool   `json:"cached"`
	// Key is the canonical config hash — two results with equal keys
	// are the same cached physics.
	Key       string  `json:"key,omitempty"`
	Backend   string  `json:"backend,omitempty"`
	Scenario  string  `json:"scenario,omitempty"`
	Procs     int     `json:"procs,omitempty"`
	Steps     int     `json:"steps,omitempty"`
	Dt        float64 `json:"dt,omitempty"`
	Converged bool    `json:"converged,omitempty"`
	// TimeSlices/Iterations/Defect report a parareal run (zero for
	// spatial runs): slice count, correction iterations actually run,
	// and the final slice-boundary L2 defect.
	TimeSlices int     `json:"time_slices,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Defect     float64 `json:"defect,omitempty"`
	Mass       float64 `json:"mass,omitempty"`
	Energy     float64 `json:"energy,omitempty"`
	// MomentumSHA256 fingerprints the full axial-momentum field bit for
	// bit: a cached result carries the checksum of the cold run it
	// replays, so clients can verify bitwise identity end to end.
	MomentumSHA256 string `json:"momentum_sha256,omitempty"`
	// ElapsedMS is the solver wall time of the cold run that produced
	// the physics (a cache hit reports the original's, not ~0).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// ResultOf builds the wire result for a served (or failed) job.
func ResultOf(id string, rep *Reply, err error) JobResult {
	if err != nil {
		return JobResult{ID: id, OK: false, Error: err.Error()}
	}
	r := rep.Result
	return JobResult{
		ID:             id,
		OK:             true,
		Cached:         rep.Cached,
		Key:            rep.Key,
		Backend:        r.Backend,
		Scenario:       r.Scenario,
		Procs:          r.Procs,
		Steps:          r.Steps,
		Dt:             r.Dt,
		Converged:      r.Converged,
		TimeSlices:     r.TimeSlices,
		Iterations:     r.Iterations,
		Defect:         r.Defect,
		Mass:           r.Diag.Mass,
		Energy:         r.Diag.Energy,
		MomentumSHA256: MomentumChecksum(r.Momentum),
		ElapsedMS:      float64(r.Elapsed.Microseconds()) / 1e3,
	}
}

// MomentumChecksum fingerprints a momentum field by the IEEE-754 bits
// of every value: equal checksums mean bitwise-equal fields.
func MomentumChecksum(m [][]float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, col := range m {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
