package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func smallJet() core.Config {
	return core.Config{Nx: 64, Nr: 24, Steps: 5}
}

// soloRun executes cfg outside the service — the cold reference the
// cache must reproduce bitwise.
func soloRun(t *testing.T, cfg core.Config) *core.Result {
	t.Helper()
	run, err := core.NewRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameMomentum(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCachedResultBitwiseIdentical is the acceptance criterion: a
// config-hash hit returns physics bitwise-identical to a cold run of
// the same config — including a cold run outside the service, and a
// hit reached through an alias spelling of the configuration.
func TestCachedResultBitwiseIdentical(t *testing.T) {
	s := New(Options{Slots: 2})
	defer s.Close()

	cfg := smallJet()
	cold, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first submission reported cached")
	}
	hit, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second submission missed the cache")
	}
	if hit.Key != cold.Key {
		t.Fatalf("keys differ: %s vs %s", hit.Key, cold.Key)
	}
	if !sameMomentum(hit.Result.Momentum, cold.Result.Momentum) {
		t.Fatal("cached momentum differs from the cold run")
	}
	if hit.Result.Dt != cold.Result.Dt || hit.Result.Steps != cold.Result.Steps || hit.Result.Diag != cold.Result.Diag {
		t.Fatalf("cached scalars differ: %+v vs %+v", hit.Result, cold.Result)
	}

	solo := soloRun(t, cfg)
	if !sameMomentum(hit.Result.Momentum, solo.Momentum) {
		t.Fatal("cached momentum differs from a solo run outside the service")
	}

	// An alias spelling — explicit backend name and spelled-out
	// defaults instead of the zero values — must land on the same line.
	alias := core.Config{Backend: "serial", Scenario: "jet", Nx: 64, Nr: 24, Steps: 5, Procs: 3}
	rep, err := s.Submit(alias)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cached || rep.Key != cold.Key {
		t.Fatalf("alias spelling missed the cache: cached=%v key=%s want %s", rep.Cached, rep.Key, cold.Key)
	}
}

// TestReplyIsPrivateCopy: mutating a reply must not corrupt the cache.
func TestReplyIsPrivateCopy(t *testing.T) {
	s := New(Options{Slots: 1})
	defer s.Close()
	cfg := smallJet()
	first, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Result.Momentum[0][0] = 12345
	second, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Result.Momentum[0][0] == 12345 {
		t.Fatal("reply mutation reached the cache")
	}
}

// TestSingleFlight: concurrent duplicates of one config coalesce onto
// one cold run.
func TestSingleFlight(t *testing.T) {
	s := New(Options{Slots: 2})
	defer s.Close()
	const dup = 8
	var wg sync.WaitGroup
	replies := make([]*Reply, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := s.Submit(smallJet())
			if err != nil {
				t.Error(err)
				return
			}
			replies[i] = rep
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != 1 {
		t.Fatalf("%d cold runs for %d duplicate submissions", st.Completed, dup)
	}
	if st.CacheHits != dup-1 {
		t.Fatalf("%d hits, want %d", st.CacheHits, dup-1)
	}
	for i := 1; i < dup; i++ {
		if !sameMomentum(replies[i].Result.Momentum, replies[0].Result.Momentum) {
			t.Fatal("coalesced replies disagree")
		}
	}
}

// mixedJobs builds the smoke/bench workload: a parameter sweep over
// scenarios, backends, Reynolds number, excitation, grid, and
// tolerance, with deliberate duplicates.
func mixedJobs(n int) []Job {
	eps0 := 0.0
	unique := []Job{
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 4},
		{Scenario: "jet", Backend: "shm", Procs: 2, Nx: 64, Nr: 24, Steps: 4, Fresh: true},
		{Scenario: "jet", Backend: "mp:v5", Procs: 2, Nx: 64, Nr: 24, Steps: 4, Fresh: true},
		{Scenario: "jet", Backend: "mp2d", Px: 2, Pr: 2, Procs: 4, Nx: 64, Nr: 24, Steps: 4, Fresh: true},
		{Scenario: "jet", Backend: "hybrid", Procs: 2, Workers: 1, Nx: 64, Nr: 24, Steps: 4, Fresh: true},
		{Scenario: "cavity", Backend: "serial", Nx: 33, Nr: 32, Steps: 4},
		{Scenario: "cavity", Backend: "mp:v5", Procs: 2, Nx: 33, Nr: 32, Steps: 4, Fresh: true},
		{Scenario: "channel", Backend: "serial", Nx: 64, Nr: 16, Steps: 4},
		{Scenario: "channel", Backend: "shm", Procs: 2, Nx: 64, Nr: 16, Steps: 4, Fresh: true},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 4, Reynolds: 500},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 4, Reynolds: 2000},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 4, Eps: &eps0},
		{Scenario: "jet", Backend: "serial", Nx: 96, Nr: 32, Steps: 3},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 200, Tol: 1e-1, ReduceEvery: 5},
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 4, Euler: true},
		{Scenario: "jet", Backend: "mp:v5", Procs: 2, Nx: 64, Nr: 24, Steps: 4, HaloDepth: 2},
	}
	jobs := make([]Job, 0, n)
	for len(jobs) < n {
		j := unique[len(jobs)%len(unique)]
		j.ID = fmt.Sprintf("job-%d", len(jobs))
		jobs = append(jobs, j)
	}
	return jobs
}

// TestServiceSmoke is the CI service smoke: ~50 mixed requests with
// duplicates submitted concurrently must all complete, with a nonzero
// cache hit-rate, consistent counters, and (under -race) a clean run.
func TestServiceSmoke(t *testing.T) {
	s := New(Options{Slots: 4})
	defer s.Close()
	jobs := mixedJobs(50)
	results := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			rep, err := s.Submit(job.Config())
			results[i] = ResultOf(job.ID, rep, err)
		}(i, job)
	}
	wg.Wait()

	for i, res := range results {
		if !res.OK {
			t.Fatalf("job %d (%s) failed: %s", i, jobs[i].ID, res.Error)
		}
		if res.MomentumSHA256 == "" {
			t.Fatalf("job %d: no momentum checksum", i)
		}
	}
	st := s.Stats()
	if got := st.Completed + st.CacheHits; got != uint64(len(jobs)) {
		t.Fatalf("served %d jobs, want %d (stats: %v)", got, len(jobs), st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("duplicate-laden workload produced no cache hits: %v", st)
	}
	if st.Failures != 0 || st.Rejected != 0 {
		t.Fatalf("smoke shed or failed jobs: %v", st)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("occupancy nonzero after drain: %v", st)
	}
	// Identical keys must carry identical physics fingerprints.
	byKey := map[string]string{}
	for _, res := range results {
		if prev, ok := byKey[res.Key]; ok && prev != res.MomentumSHA256 {
			t.Fatalf("key %s served two different fields", res.Key)
		}
		byKey[res.Key] = res.MomentumSHA256
	}
	if st.SharedProfiles == 0 || st.SharedProfiles >= len(jobs) {
		t.Fatalf("shared profiles not shared: %d for %d jobs", st.SharedProfiles, len(jobs))
	}
}

// TestAdmissionControl: with one slot and a one-deep queue, a third
// concurrent cold job is shed with ErrBusy while the first two are
// served.
func TestAdmissionControl(t *testing.T) {
	s := New(Options{Slots: 1, MaxQueue: 1})
	defer s.Close()

	long := core.Config{Nx: 96, Nr: 40, Steps: 60}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(long); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { st := s.Stats(); return st.Running == 1 })

	second := core.Config{Nx: 96, Nr: 40, Steps: 61}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(second); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool { st := s.Stats(); return st.Queued == 1 })

	if _, err := s.Submit(core.Config{Nx: 96, Nr: 40, Steps: 62}); !errors.Is(err, ErrBusy) {
		t.Fatalf("third job: err = %v, want ErrBusy", err)
	}
	wg.Wait()
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("stats after shed: %v", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitAfterClose: the scheduler refuses new work once closed.
func TestSubmitAfterClose(t *testing.T) {
	s := New(Options{Slots: 1})
	s.Close()
	if _, err := s.Submit(smallJet()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestBadConfigNotCached: a config the registry rejects fails every
// time (no error caching) and a diverging config's error reaches every
// coalesced waiter.
func TestBadConfigFails(t *testing.T) {
	s := New(Options{Slots: 1})
	defer s.Close()
	bad := core.Config{Nx: 64, Nr: 24, Steps: 2, Backend: "nonesuch"}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(bad); err == nil {
			t.Fatal("unknown backend accepted")
		}
	}
	if st := s.Stats(); st.Completed != 0 || st.CacheHits != 0 {
		t.Fatalf("failed submissions counted as served: %v", st)
	}
}

// TestKeyAliasing pins the canonicalization equivalences the cache
// keys on — and a pair that must NOT alias.
func TestKeyAliasing(t *testing.T) {
	// Each pair must produce one key.
	same := [][2]core.Config{
		{{Mode: core.MessagePassing, Version: 7, Procs: 2, Nx: 64, Nr: 24, Steps: 5},
			{Backend: "mp:v7", Procs: 2, Nx: 64, Nr: 24, Steps: 5}},
		{{Backend: "mp2d", Version: 6, Procs: 4, Nx: 64, Nr: 24, Steps: 5},
			{Backend: "mp2d:v6", Procs: 4, Nx: 64, Nr: 24, Steps: 5}},
		{{Scenario: "cavity", Euler: true, Nx: 33, Nr: 32, Steps: 5},
			{Scenario: "cavity", Nx: 33, Nr: 32, Steps: 5}},
		{{Backend: "mp:v5", Procs: 2, HaloDepth: 1, Nx: 64, Nr: 24, Steps: 5},
			{Backend: "mp:v5", Procs: 2, FreshHalos: true, Nx: 64, Nr: 24, Steps: 5}},
		{{Nx: 64, Nr: 24, Steps: 5},
			{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 5, Balance: "uniform"}},
	}
	for i, pair := range same {
		a, err := Key(pair[0])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		b, err := Key(pair[1])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if a != b {
			t.Errorf("pair %d: keys differ\n  %+v\n  %+v", i, pair[0], pair[1])
		}
	}
	differ := [][2]core.Config{
		{{Nx: 64, Nr: 24, Steps: 5}, {Nx: 64, Nr: 24, Steps: 6}},
		{{Nx: 64, Nr: 24, Steps: 5}, {Nx: 64, Nr: 24, Steps: 5, Euler: true}},
		{{Nx: 64, Nr: 24, Steps: 5, StopTol: 1e-4}, {Nx: 64, Nr: 24, Steps: 5, StopTol: 2e-4}},
		{{Nx: 64, Nr: 24, Steps: 5, Backend: "mp:v5", Procs: 2}, {Nx: 64, Nr: 24, Steps: 5, Backend: "mp:v5", Procs: 2, FreshHalos: true}},
	}
	for i, pair := range differ {
		a, _ := Key(pair[0])
		b, _ := Key(pair[1])
		if a == b {
			t.Errorf("distinct pair %d produced one key", i)
		}
	}
	// Contradictions canonicalize to errors, not keys.
	if _, err := Key(core.Config{Nx: 64, Nr: 24, FreshHalos: true, HaloDepth: 2}); err == nil {
		t.Error("contradictory halo spec produced a key")
	}
}

// TestJobConfig pins the wire → core.Config mapping, including the
// sweep overrides.
func TestJobConfig(t *testing.T) {
	eps := 0.0
	j := Job{Scenario: "jet", Backend: "mp:v5", Procs: 2, Nx: 64, Nr: 24, Steps: 5,
		Reynolds: 500, Eps: &eps, Fresh: true, Tol: 1e-4, ReduceEvery: 5}
	c := j.Config()
	if c.Jet == nil || c.Jet.Reynolds != 500 || c.Jet.Eps != 0 {
		t.Fatalf("sweep overrides lost: %+v", c.Jet)
	}
	if !c.FreshHalos || c.StopTol != 1e-4 || c.ReduceEvery != 5 {
		t.Fatalf("flags lost: %+v", c)
	}
	plain := Job{Nx: 64, Nr: 24, Steps: 5}.Config()
	if plain.Jet != nil {
		t.Fatal("no overrides must leave Jet nil (scenario default physics)")
	}
}
