// Package vis renders 2-D scalar fields as ASCII contour maps and
// binary PGM images — the reproduction of the paper's Figure 1 contour
// plot of axial momentum.
package vis

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ramp is the character ramp from low to high values.
const ramp = " .:-=+*#%@"

// ASCIIContour renders field (indexed [i][j], i axial, j radial) as an
// ASCII map with the axis at the bottom, downsampled to at most width x
// height characters.
func ASCIIContour(w io.Writer, title string, field [][]float64, width, height int) {
	nx := len(field)
	if nx == 0 {
		fmt.Fprintln(w, title+" (empty)")
		return
	}
	nr := len(field[0])
	if width <= 0 || width > nx {
		width = nx
	}
	if height <= 0 || height > nr {
		height = nr
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, col := range field {
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, "%s   [min %.4g, max %.4g]\n", title, lo, hi)
	// Radial index decreasing: jet axis at the bottom of the plot.
	for row := height - 1; row >= 0; row-- {
		j := row * nr / height
		var b strings.Builder
		for col := 0; col < width; col++ {
			i := col * nx / width
			v := (field[i][j] - lo) / (hi - lo)
			idx := int(v * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		fmt.Fprintln(w, b.String())
	}
	fmt.Fprintln(w, strings.Repeat("-", width)+"  (axis; x ->)")
}

// WritePGM writes the field as a portable graymap (P2, ASCII) with the
// axis at the bottom row.
func WritePGM(w io.Writer, field [][]float64) error {
	nx := len(field)
	if nx == 0 {
		return fmt.Errorf("vis: empty field")
	}
	nr := len(field[0])
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, col := range field {
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", nx, nr); err != nil {
		return err
	}
	for row := nr - 1; row >= 0; row-- {
		for i := 0; i < nx; i++ {
			g := int((field[i][row] - lo) / (hi - lo) * 255)
			if _, err := fmt.Fprintf(w, "%d ", g); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ContourLevels returns n evenly spaced contour level values.
func ContourLevels(field [][]float64, n int) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, col := range field {
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i+1)/float64(n+1)
	}
	return out
}
