package vis

import (
	"strings"
	"testing"
)

func gradient(nx, nr int) [][]float64 {
	f := make([][]float64, nx)
	for i := range f {
		f[i] = make([]float64, nr)
		for j := range f[i] {
			f[i][j] = float64(i + j)
		}
	}
	return f
}

func TestASCIIContourShape(t *testing.T) {
	var sb strings.Builder
	ASCIIContour(&sb, "field", gradient(40, 20), 40, 10)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// title + 10 rows + axis line.
	if len(lines) != 12 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[0], "min 0") {
		t.Errorf("header: %s", lines[0])
	}
	// Low values (top-left of the bottom rows) should use light ramp
	// characters, high values dark ones.
	if !strings.ContainsAny(lines[1], "%@#") {
		t.Errorf("high row has no dark marks: %q", lines[1])
	}
}

func TestASCIIContourEmpty(t *testing.T) {
	var sb strings.Builder
	ASCIIContour(&sb, "x", nil, 10, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty field should be reported")
	}
}

func TestWritePGM(t *testing.T) {
	var sb strings.Builder
	if err := WritePGM(&sb, gradient(8, 4)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n8 4\n255\n") {
		t.Fatalf("header: %q", out[:20])
	}
	if !strings.Contains(out, "255") {
		t.Error("no max gray value")
	}
	if err := WritePGM(&sb, nil); err == nil {
		t.Error("want error for empty field")
	}
}

func TestContourLevels(t *testing.T) {
	lv := ContourLevels(gradient(10, 10), 4)
	if len(lv) != 4 {
		t.Fatalf("%d levels", len(lv))
	}
	for i := 1; i < len(lv); i++ {
		if lv[i] <= lv[i-1] {
			t.Fatal("levels not increasing")
		}
	}
	if lv[0] <= 0 || lv[3] >= 18 {
		t.Fatalf("levels %v outside open range", lv)
	}
}
