package machine

import (
	"repro/internal/decomp"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// opKind enumerates the primitive operations of a rank's program.
type opKind int

const (
	opCompute opKind = iota
	opSend
	opRecv
)

// op is one step-program entry.
type op struct {
	kind  opKind
	peer  int
	bytes int
	dur   float64 // compute seconds
}

// rank is one simulated processor's state machine.
type rank struct {
	id    int
	prog  []op // one exchange step's program, repeated
	skip  []op // one exchange-free step's program (Wide policies only)
	depth int  // exchange cadence: 1 = every step (Fresh)
	rprog []op // global-reduction collectives, appended on monitored steps
	// inReduce marks that pc indexes rprog instead of prog.
	inReduce bool
	pc       int
	step     int
	busy     float64
	wait     float64
}

// cur returns the program pc currently indexes: the collective when one
// is in progress, the compute-only program on a Wide policy's
// exchange-free steps, and the exchange program otherwise.
func (r *rank) cur() []op {
	if r.inReduce {
		return r.rprog
	}
	if r.depth > 1 && r.step%r.depth != 0 {
		return r.skip
	}
	return r.prog
}

// pendingRecv is a posted receive waiting for data.
type pendingRecv struct {
	postedAt float64
	dstRank  *rank
}

// inFlight is an eager message delivered (or in transit) to a mailbox.
type inFlight struct {
	arrival float64
	bytes   int
}

// pair is a directed (from, to) channel key.
type pair struct{ from, to int }

// cosim is the discrete-event co-simulation of one run.
type cosim struct {
	p     Platform
	ch    trace.Characterization
	eng   *sim.Engine
	net   netsim.Network
	ranks []*rank
	steps int
	hostF float64
	// daemons serializes each host's library forwarding work (the PVM
	// daemon store-and-forward path): split messages do not pipeline in
	// parallel, which is why Version 7 costs startups on fast switches.
	daemons []sim.Resource
	// Mailboxes of messages sent or in flight, FIFO per directed pair.
	mail map[pair][]inFlight
	// Posted receives blocked on empty mailboxes.
	recvs map[pair][]pendingRecv
}

// v6BusyPenalty is the paper's observed Version 6 cost: split loops and
// lost temporal locality offset the overlap gain.
const v6BusyPenalty = 1.04

// newCosim builds rank programs from the decomposition and the exchange
// schedule of internal/par. The decomposition may be cost-weighted:
// each rank's compute time scales with its owned share of the
// characterization's per-column cost profile (uniform when nil), so
// the co-simulated busy times reproduce the Figure 13 skew — and its
// cure when the same profile feeds decomp.WeightedAxial.
func newCosim(p Platform, ch trace.Characterization, d *decomp.Decomposition, commVersion, steps int) *cosim {
	hostF := p.LibHostFactor
	if hostF == 0 {
		hostF = 1
	}
	cs := &cosim{
		p: p, ch: ch,
		eng:     sim.New(),
		net:     p.NewNetwork(d.P),
		steps:   steps,
		hostF:   hostF,
		daemons: make([]sim.Resource, d.P),
		mail:    make(map[pair][]inFlight),
		recvs:   make(map[pair][]pendingRecv),
	}
	eff := p.EffMFLOPS(ch) * 1e6
	msgBytes := ch.MessageBytes()
	depth := ch.HaloDepth
	if depth < 1 {
		depth = 1
	}
	ext := trace.WideExtension(ch.Viscous, depth)
	if d.P == 1 {
		ext, depth = 0, 1 // no interior sides: Wide degenerates to Fresh
	}
	for r := 0; r < d.P; r++ {
		i0, ncols := d.Range(r)
		left, right := r-1, r+1
		if right == d.P {
			right = -1
		}
		// A Wide policy's redundant shell inflates the rank's compute to
		// the extended rectangle (ext extra columns per interior side).
		extL, extR := 0, 0
		if left >= 0 {
			extL = ext
		}
		if right >= 0 {
			extR = ext
		}
		flopsPerStep := ch.FlopsPerPoint * ch.BlockCost(i0-extL, ncols+extL+extR) * float64(ch.Nr)
		computeSec := flopsPerStep / eff
		exCompute := computeSec
		if commVersion == 6 {
			// The split-loop penalty applies to exchange steps only — the
			// solver runs the overlapped operators only when an exchange
			// is actually in flight.
			exCompute *= v6BusyPenalty
		}
		var prog []op
		if ext > 0 {
			// Exchange steps open with the redundant-shell refresh: ext
			// ghost columns per interior neighbour, one message each way.
			rb := ch.RefreshBytes(ext)
			prog = appendSends(prog, left, right, rb, 1)
			prog = appendRecvs(prog, left, right, rb, 1)
		}
		chunk := exCompute / float64(ch.ExchangesPerStep)
		for e := 0; e < ch.ExchangesPerStep; e++ {
			// The non-initial exchanges carry flux columns; Version 7
			// splits those into one-column messages (DESIGN.md §5).
			parts := 1
			if commVersion == 7 && e >= 1 {
				parts = 2
			}
			if commVersion == 6 && e == 0 {
				// Version 6 overlaps only the velocity/temperature
				// exchange: "computing the stress and flux components of
				// the interior part of each subdomain while the processor
				// is waiting for the velocity and temperature vectors".
				prog = appendSends(prog, left, right, msgBytes, parts)
				prog = append(prog, op{kind: opCompute, dur: chunk})
				prog = appendRecvs(prog, left, right, msgBytes, parts)
			} else {
				prog = append(prog, op{kind: opCompute, dur: chunk})
				prog = appendSends(prog, left, right, msgBytes, parts)
				prog = appendRecvs(prog, left, right, msgBytes, parts)
			}
		}
		var skip []op
		if depth > 1 {
			skip = []op{{kind: opCompute, dur: computeSec}}
		}
		cs.ranks = append(cs.ranks, &rank{id: r, prog: prog, skip: skip, depth: depth, rprog: reduceProg(ch, d.P, r)})
	}
	return cs
}

// reduceProg builds the collective program one monitored step appends:
// trace.ReducesPerMonitor recursive-doubling allreduces, each following
// the identical msg.ReducePlan schedule the real collective of
// internal/par runs, with trace.ReduceBytes scalar payloads. The
// messages ride the same library and network models as the halo
// exchanges, so the co-simulated platforms pay the collective-latency
// term — log2(P) serialized small-message rounds — that dominates the
// reduction cost on high-latency interconnects. A ReduceGroup > 1
// prices the hierarchical collective: only node leaders walk the
// (shorter) leaders-only plan, members' intra-node combine being
// memory-speed and therefore free at this model's resolution.
func reduceProg(ch trace.Characterization, procs, rank int) []op {
	if ch.ReduceEvery <= 0 || procs < 2 {
		return nil
	}
	group := ch.ReduceGroup
	if group < 1 {
		group = 1
	}
	plan := msg.ReducePlanLeaders(procs, rank, group)
	var prog []op
	for i := 0; i < trace.ReducesPerMonitor; i++ {
		for _, st := range plan {
			if st.Send {
				prog = append(prog, op{kind: opSend, peer: st.Partner, bytes: trace.ReduceBytes})
			}
			if st.Recv {
				prog = append(prog, op{kind: opRecv, peer: st.Partner, bytes: trace.ReduceBytes})
			}
		}
	}
	return prog
}

// monitored reports whether the collective runs after the given step.
func (cs *cosim) monitored(step int) bool {
	return cs.ch.ReduceEvery > 0 && (step+1)%cs.ch.ReduceEvery == 0
}

func appendSends(prog []op, left, right, bytes, parts int) []op {
	for p := 0; p < parts; p++ {
		if left >= 0 {
			prog = append(prog, op{kind: opSend, peer: left, bytes: bytes / parts})
		}
		if right >= 0 {
			prog = append(prog, op{kind: opSend, peer: right, bytes: bytes / parts})
		}
	}
	return prog
}

func appendRecvs(prog []op, left, right, bytes, parts int) []op {
	for p := 0; p < parts; p++ {
		if left >= 0 {
			prog = append(prog, op{kind: opRecv, peer: left, bytes: bytes / parts})
		}
		if right >= 0 {
			prog = append(prog, op{kind: opRecv, peer: right, bytes: bytes / parts})
		}
	}
	return prog
}

// Library cost helpers, scaled by the host speed factor (daemon and
// copy work executes on the node CPU).
func (cs *cosim) sendCPU(bytes int) float64 { return cs.p.Lib.SendCPU(bytes) / cs.hostF }
func (cs *cosim) recvCPU(bytes int) float64 { return cs.p.Lib.RecvCPU(bytes) / cs.hostF }

// throughDaemon routes a message through the sender's serialized
// library forwarding path starting at t, returning when it reaches the
// network.
func (cs *cosim) throughDaemon(t float64, from, bytes int) float64 {
	fwd := float64(bytes) * cs.p.Lib.PerByteLatencyS / cs.hostF
	if fwd == 0 {
		return t
	}
	_, end := cs.daemons[from].Acquire(t, fwd)
	return end
}

// run executes the co-simulation to completion.
func (cs *cosim) run() {
	for _, r := range cs.ranks {
		r := r
		cs.eng.At(0, func() { cs.advance(r) })
	}
	cs.eng.Run()
}

// advance interprets r's program until it blocks or finishes. Each
// step runs the per-step program, then — on monitored steps — the
// collective program, before the step counter advances.
func (cs *cosim) advance(r *rank) {
	for {
		if r.pc == len(r.cur()) {
			if !r.inReduce && len(r.rprog) > 0 && cs.monitored(r.step) {
				r.inReduce = true
				r.pc = 0
				continue
			}
			r.inReduce = false
			r.pc = 0
			r.step++
			if r.step == cs.steps {
				return
			}
		}
		o := r.cur()[r.pc]
		switch o.kind {
		case opCompute:
			r.pc++
			r.busy += o.dur
			cs.eng.Schedule(o.dur, func() { cs.advance(r) })
			return
		case opSend:
			cs.send(r, o)
			return
		case opRecv:
			cs.recv(r, o)
			return
		}
	}
}

// send processes a send op. The rank always resumes via an event.
// Eager libraries (PVM family) hand the message to the library and
// continue after the CPU overhead; the blocking send of MPL stalls the
// sender through the wire transfer (no communication/computation
// overlap on the send side — the constraint the paper was forced into).
func (cs *cosim) send(r *rank, o op) {
	now := cs.eng.Now()
	cpu := cs.sendCPU(o.bytes)
	r.busy += cpu
	ready := now + cpu
	k := pair{from: r.id, to: o.peer}
	r.pc++
	cs.eng.At(ready, func() {
		injected := cs.throughDaemon(cs.eng.Now(), k.from, o.bytes)
		arrival := cs.net.Transfer(injected, k.from, k.to, o.bytes) + cs.p.Lib.LatencyS/cs.hostF
		cs.deliver(k, inFlight{arrival: arrival, bytes: o.bytes})
		if cs.p.Lib.Rendezvous {
			// Blocking send: resume the sender only when the transfer
			// has drained.
			r.wait += arrival - ready
			cs.eng.At(arrival, func() { cs.advance(r) })
		}
	})
	if !cs.p.Lib.Rendezvous {
		cs.eng.At(ready, func() { cs.advance(r) })
	}
}

// deliver places an eager message in the mailbox and wakes a blocked
// receiver if one is waiting.
func (cs *cosim) deliver(k pair, m inFlight) {
	cs.mail[k] = append(cs.mail[k], m)
	if q := cs.recvs[k]; len(q) > 0 {
		pr := q[0]
		cs.recvs[k] = q[1:]
		wake := m.arrival
		if pr.postedAt > wake {
			wake = pr.postedAt
		}
		dst := pr.dstRank
		cs.eng.At(wake, func() { cs.completeRecv(dst, k, pr.postedAt) })
	}
}

// recv processes a receive op. The rank resumes via an event.
func (cs *cosim) recv(r *rank, o op) {
	now := cs.eng.Now()
	k := pair{from: o.peer, to: r.id}
	// Consume from the mailbox, waiting if the message is still in
	// flight (or not yet sent).
	if q := cs.mail[k]; len(q) > 0 {
		m := q[0]
		cs.mail[k] = q[1:]
		if m.arrival > now {
			r.wait += m.arrival - now
		}
		rcpu := cs.recvCPU(m.bytes)
		r.busy += rcpu
		r.pc++
		at := m.arrival
		if now > at {
			at = now
		}
		cs.eng.At(at+rcpu, func() { cs.advance(r) })
		return
	}
	cs.recvs[k] = append(cs.recvs[k], pendingRecv{postedAt: now, dstRank: r})
}

// completeRecv finishes an eager receive that was blocked at postedAt.
func (cs *cosim) completeRecv(r *rank, k pair, postedAt float64) {
	now := cs.eng.Now()
	q := cs.mail[k]
	m := q[0]
	cs.mail[k] = q[1:]
	r.wait += now - postedAt
	rcpu := cs.recvCPU(m.bytes)
	r.busy += rcpu
	r.pc++
	cs.eng.Schedule(rcpu, func() { cs.advance(r) })
}
