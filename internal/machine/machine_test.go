package machine

import (
	"math"
	"testing"

	"repro/internal/decomp"
	"repro/internal/trace"
)

func TestSingleProcessorNoCommunication(t *testing.T) {
	ch := trace.PaperNS()
	o, err := LACE560AllnodeS.Simulate(ch, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o.WaitSeconds != 0 {
		t.Errorf("P=1 wait = %g", o.WaitSeconds)
	}
	// Time = workload / node rate.
	want := ch.TotalFlops() / (LACE560AllnodeS.EffMFLOPS(ch) * 1e6)
	if math.Abs(o.Seconds-want) > 1e-9*want {
		t.Errorf("P=1 time %g, want %g", o.Seconds, want)
	}
}

func TestDeterminism(t *testing.T) {
	ch := trace.PaperNS()
	a, err := LACE560Ethernet.Simulate(ch, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LACE560Ethernet.Simulate(ch, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.BusySeconds != b.BusySeconds || a.WaitSeconds != b.WaitSeconds {
		t.Fatalf("co-simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestBusyPlusWaitBoundsSeconds(t *testing.T) {
	ch := trace.PaperEuler()
	for _, p := range []Platform{LACE560Ethernet, SPMPL, T3D} {
		o, err := p.Simulate(ch, 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range o.PerRank {
			if r.Busy < 0 || r.Wait < 0 {
				t.Fatalf("%s rank %d: negative components %+v", p.Name, i, r)
			}
			if r.Busy+r.Wait > o.Seconds*1.0001 {
				t.Fatalf("%s rank %d exceeds total: %g+%g > %g", p.Name, i, r.Busy, r.Wait, o.Seconds)
			}
		}
		if o.Seconds <= 0 {
			t.Fatalf("%s: nonpositive time", p.Name)
		}
	}
}

func TestValidation(t *testing.T) {
	ch := trace.PaperNS()
	if _, err := YMP.Simulate(ch, 16, 5); err == nil {
		t.Error("Y-MP beyond 8 processors must error")
	}
	if _, err := T3D.Simulate(ch, 0, 5); err == nil {
		t.Error("zero processors must error")
	}
	if _, err := T3D.Simulate(ch, 4, 9); err == nil {
		t.Error("unknown communication version must error")
	}
	bad := ch
	bad.ColCost = trace.RampCost(128, 4) // wrong length for Nx=250
	if _, err := T3D.Simulate(bad, 4, 5); err == nil {
		t.Error("cost profile shorter than the grid must error, not panic downstream")
	}
	d, err := decomp.Axial(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := T3D.SimulateDecomp(ch, d, 5, 10); err == nil {
		t.Error("decomposition narrower than the characterization must error")
	}
}

// TestSimulateDecompWeighted: a cost-weighted decomposition over the
// characterization's own skewed profile must flatten the co-simulated
// busy times relative to the uniform split.
func TestSimulateDecompWeighted(t *testing.T) {
	ch := trace.PaperNS()
	ch.ColCost = trace.RampCost(ch.Nx, 4)
	du, err := decomp.Axial(ch.Nx, 8)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := decomp.WeightedAxial(ch.Nx, 8, ch.ColCost)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(d *decomp.Decomposition) float64 {
		o, err := SPMPL.SimulateDecomp(ch, d, 5, 50)
		if err != nil {
			t.Fatal(err)
		}
		mn, mx := o.PerRank[0].Busy, o.PerRank[0].Busy
		for _, r := range o.PerRank {
			if r.Busy < mn {
				mn = r.Busy
			}
			if r.Busy > mx {
				mx = r.Busy
			}
		}
		return (mx - mn) / mx
	}
	if su, sw := spread(du), spread(dw); sw >= su {
		t.Errorf("weighted spread %g not below uniform %g", sw, su)
	}
}

func TestYMPScalesNearLinearly(t *testing.T) {
	ch := trace.PaperNS()
	o1, _ := YMP.Simulate(ch, 1, 5)
	o8, _ := YMP.Simulate(ch, 8, 5)
	speedup := o1.Seconds / o8.Seconds
	// The paper: the Y-MP "scales quite well"; the fixed connect-time
	// overhead (inseparable I/O) caps the 8-way speedup below ideal.
	if speedup < 6 || speedup > 8.01 {
		t.Errorf("Y-MP 8-way speedup %.2f", speedup)
	}
}

func TestSimStepsScaleInvariance(t *testing.T) {
	// The schedule is periodic: simulating more steps must not change
	// the scaled result materially.
	ch := trace.PaperNS()
	a, err := LACE560AllnodeS.SimulateSteps(ch, 8, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LACE560AllnodeS.SimulateSteps(ch, 8, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.Seconds-b.Seconds) / b.Seconds; rel > 0.02 {
		t.Errorf("scaled results differ %.2f%% between 100 and 400 sim steps", rel*100)
	}
}

func TestEulerFasterThanNS(t *testing.T) {
	for _, p := range []Platform{LACE560AllnodeS, SPMPL, T3D, YMP} {
		maxP := 8
		ons, err := p.Simulate(trace.PaperNS(), maxP, 5)
		if err != nil {
			t.Fatal(err)
		}
		oeu, err := p.Simulate(trace.PaperEuler(), maxP, 5)
		if err != nil {
			t.Fatal(err)
		}
		if oeu.Seconds >= ons.Seconds {
			t.Errorf("%s: Euler (%g) not faster than N-S (%g)", p.Name, oeu.Seconds, ons.Seconds)
		}
	}
}

func TestPerRankCount(t *testing.T) {
	o, err := SPMPL.Simulate(trace.PaperNS(), 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.PerRank) != 12 {
		t.Fatalf("%d per-rank outcomes", len(o.PerRank))
	}
}

// TestReduceCollectiveCosting: a characterization with a reduction
// cadence must cost more than the collective-free schedule, a finer
// cadence more than a coarser one, and the whole term must scale with
// the interconnect's small-message latency (Ethernet pays more for
// log2(P) serialized rounds than the SP switch).
func TestReduceCollectiveCosting(t *testing.T) {
	base := trace.PaperNS()
	every := func(k int) trace.Characterization {
		ch := base
		ch.ReduceEvery = k
		return ch
	}
	for _, p := range []Platform{LACE560Ethernet, SPMPL} {
		none, err := p.Simulate(base, 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		coarse, err := p.Simulate(every(10), 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		fine, err := p.Simulate(every(1), 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !(fine.Seconds > coarse.Seconds && coarse.Seconds > none.Seconds) {
			t.Errorf("%s: cadence cost not ordered: none %.4g, every10 %.4g, every1 %.4g",
				p.Name, none.Seconds, coarse.Seconds, fine.Seconds)
		}
	}
	// Relative collective overhead at cadence 1: the shared Ethernet
	// must pay a larger share than the SP's scalable switch.
	ethNone, _ := LACE560Ethernet.Simulate(base, 8, 5)
	ethFine, _ := LACE560Ethernet.Simulate(every(1), 8, 5)
	spNone, _ := SPMPL.Simulate(base, 8, 5)
	spFine, _ := SPMPL.Simulate(every(1), 8, 5)
	ethShare := ethFine.Seconds/ethNone.Seconds - 1
	spShare := spFine.Seconds/spNone.Seconds - 1
	if ethShare <= spShare {
		t.Errorf("Ethernet collective share %.3f not above SP share %.3f", ethShare, spShare)
	}
}

// TestReduceCostingSingleProc: one processor has no collective to pay
// for; the schedule must be unaffected by the cadence.
func TestReduceCostingSingleProc(t *testing.T) {
	ch := trace.PaperNS()
	a, err := SPMPL.Simulate(ch, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ch.ReduceEvery = 1
	b, err := SPMPL.Simulate(ch, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatalf("single-proc seconds moved with the cadence: %g vs %g", a.Seconds, b.Seconds)
	}
}
