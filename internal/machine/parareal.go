package machine

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/trace"
)

// SimulateParareal prices a parallel-in-time run: the processor pool
// splits into ch.TimeSlices groups of procs/TimeSlices ranks, each
// owning one slice of [0, Steps]. The schedule follows the coordinator
// of internal/backend exactly:
//
//	total = init coarse sweep
//	      + iters x ( fine slice, parallel across groups
//	               + correction coarse sweep, serial across slices
//	               + (K-1) slice-boundary state handoffs )
//
// The fine slice is the platform's own co-simulated spatial run of the
// longest slice on procs/K ranks (same decomposition, library, and
// network models as Simulate). The coarse sweep is a serial
// CoarseFactor-coarsened MacCormack propagation of one slice, repeated
// K times because the sweep is inherently sequential. Handoffs carry
// the full conservative state (trace.PararealHandoffBytes) through the
// same message-passing library and interconnect as the halo exchanges.
// The Y-MP prices handoffs and sweeps at memory speed (free at this
// model's resolution), keeping only the compute terms.
func (p Platform) SimulateParareal(ch trace.Characterization, procs, commVersion int) (Outcome, error) {
	k := ch.TimeSlices
	if k < 2 {
		return Outcome{}, fmt.Errorf("machine: parareal needs at least 2 time slices, got %d", k)
	}
	if procs < k || procs%k != 0 {
		return Outcome{}, fmt.Errorf("machine: %d processors do not split evenly over %d time slices", procs, k)
	}
	if procs > p.MaxProcs {
		return Outcome{}, fmt.Errorf("machine: %s supports 1..%d processors, got %d", p.Name, p.MaxProcs, procs)
	}
	slices, err := decomp.TimeSlices(ch.Steps, k)
	if err != nil {
		return Outcome{}, err
	}
	iters := ch.PararealIters
	if iters < 1 || iters > k {
		iters = k
	}
	c := ch.CoarseFactor
	if c < 1 {
		c = 2
	}
	ps := procs / k

	// The critical path runs through the widest slice.
	sliceSteps := 0
	for s := 0; s < slices.P; s++ {
		if _, n := slices.Range(s); n > sliceSteps {
			sliceSteps = n
		}
	}

	// Fine propagation of one slice on ps ranks: the ordinary spatial
	// co-simulation, stripped of the parallel-in-time fields.
	chF := ch
	chF.Steps = sliceSteps
	chF.TimeSlices, chF.PararealIters, chF.CoarseFactor = 0, 0, 0
	simSteps := DefaultSimSteps
	if sliceSteps < simSteps {
		simSteps = sliceSteps
	}
	fine, err := p.SimulateSteps(chF, ps, commVersion, simSteps)
	if err != nil {
		return Outcome{}, err
	}

	// Coarse propagation of one slice: serial, on a grid coarsened by c
	// in both directions, stepping c-fold larger time steps.
	nxc, nrc := ch.Nx/c, ch.Nr/c
	if nxc < 1 {
		nxc = 1
	}
	if nrc < 1 {
		nrc = 1
	}
	m := (sliceSteps + c - 1) / c
	coarse := ch.FlopsPerPoint * float64(nxc*nrc*m) / (p.EffMFLOPS(ch) * 1e6)

	// One slice-boundary handoff: full state through the library and
	// the wire. The Y-MP moves it through shared memory — free here.
	handoff := 0.0
	if p.Vec == nil {
		hostF := p.LibHostFactor
		if hostF == 0 {
			hostF = 1
		}
		bytes := ch.PararealHandoffBytes()
		net := p.NewNetwork(procs)
		wire := net.Transfer(0, 0, 1, bytes)
		handoff = (p.Lib.SendCPU(bytes)+p.Lib.RecvCPU(bytes)+p.Lib.LatencyS)/hostF +
			wire + float64(bytes)*p.Lib.PerByteLatencyS/hostF
	}

	// The pipelined init sweep and each correction sweep serialize K
	// coarse evaluations and K-1 handoffs end to end.
	sweep := float64(k)*coarse + float64(k-1)*handoff
	total := sweep + float64(iters)*(fine.Seconds+sweep)
	busy := float64(iters)*fine.BusySeconds + float64(1+iters)*coarse

	out := Outcome{
		Platform:    p.Name,
		Procs:       procs,
		Seconds:     total,
		BusySeconds: busy,
		WaitSeconds: total - busy,
	}
	// Per-rank view: every rank computes iters fine slices plus its own
	// coarse evaluations; the rest of the critical path is wait.
	for r := 0; r < procs; r++ {
		fr := fine.PerRank[r%ps]
		b := float64(iters)*fr.Busy + float64(1+iters)*coarse
		w := total - b
		if w < 0 {
			w = 0
		}
		out.PerRank = append(out.PerRank, RankOutcome{Busy: b, Wait: w})
	}
	return out, nil
}
