package machine

import (
	"testing"

	"repro/internal/trace"
)

// TestWideCosimCadence pins the communication-avoiding pricing: the
// depth-2 cadence must charge for its redundant shell (slower at small
// P, where compute dominates) and cash in its halved startup schedule
// where contention dominates (faster on Ethernet at P=8), while depth 1
// and an unset depth price identically to the per-stage schedule.
func TestWideCosimCadence(t *testing.T) {
	ch := trace.PaperEuler()
	base, err := LACE560Ethernet.Simulate(ch, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	d1 := ch
	d1.HaloDepth = 1
	o1, err := LACE560Ethernet.Simulate(d1, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Seconds != base.Seconds {
		t.Errorf("depth 1 prices %g, per-stage schedule %g — must be identical", o1.Seconds, base.Seconds)
	}
	d2 := ch
	d2.HaloDepth = 2
	o2, err := LACE560Ethernet.Simulate(d2, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Seconds >= base.Seconds {
		t.Errorf("depth 2 on Ethernet at P=8 prices %g, per-stage %g — startup saving must win", o2.Seconds, base.Seconds)
	}
	small, err := LACE560Ethernet.Simulate(d2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	smallBase, err := LACE560Ethernet.Simulate(ch, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if small.Seconds <= smallBase.Seconds {
		t.Errorf("depth 2 at P=2 prices %g, per-stage %g — the redundant shell must cost something", small.Seconds, smallBase.Seconds)
	}
	// A single processor has no interior sides: the shell degenerates
	// away and the depth must not change the price.
	one, err := LACE560Ethernet.Simulate(d2, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	oneBase, err := LACE560Ethernet.Simulate(ch, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if one.Seconds != oneBase.Seconds {
		t.Errorf("depth 2 at P=1 prices %g, per-stage %g — must be identical", one.Seconds, oneBase.Seconds)
	}
}

// TestWideCosimValidation: a shell the decomposition cannot host and a
// reduce group wider than the world are simulation errors, not silent
// mispricing.
func TestWideCosimValidation(t *testing.T) {
	ch := trace.PaperNS()
	ch.HaloDepth = 4 // 36-point viscous shell; 16 ranks own ~15 columns
	if _, err := LACE560Ethernet.Simulate(ch, 16, 5); err == nil {
		t.Error("36-point shell on 15-column ranks must error")
	}
	bad := trace.PaperNS()
	bad.ReduceGroup = 8
	bad.ReduceEvery = 10
	if _, err := LACE560Ethernet.Simulate(bad, 4, 5); err == nil {
		t.Error("reduce group 8 on a 4-rank run must error")
	}
}

// TestHierReduceCosim: with a per-step collective, grouping ranks into
// 4-wide nodes (leaders-only cross-node plan) must undercut the flat
// recursive doubling on a contended network, and group 1 must price
// identically to the flat plan.
func TestHierReduceCosim(t *testing.T) {
	ch := trace.PaperNS()
	ch.ReduceEvery = 1
	flat, err := LACE560Ethernet.Simulate(ch, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	g1 := ch
	g1.ReduceGroup = 1
	o1, err := LACE560Ethernet.Simulate(g1, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Seconds != flat.Seconds {
		t.Errorf("group 1 prices %g, flat plan %g — must be identical", o1.Seconds, flat.Seconds)
	}
	g4 := ch
	g4.ReduceGroup = 4
	o4, err := LACE560Ethernet.Simulate(g4, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if o4.Seconds >= flat.Seconds {
		t.Errorf("hierarchical reduce prices %g, flat %g — leaders-only plan must be cheaper", o4.Seconds, flat.Seconds)
	}
}
