// Package machine assembles the substrate models — processors
// (internal/cpu + internal/cache), interconnects (internal/netsim), and
// message-passing libraries (internal/mplib) — into the paper's five
// platform families, and co-simulates the solver's communication
// schedule on them with a discrete-event engine.
//
// The workload driving the co-simulation is the application
// characterization of Table 1 (internal/trace): per-rank FLOPs per step
// and the exact exchange schedule of internal/par. Execution time
// splits into the paper's two additive components: processor busy time
// (compute plus library CPU overheads) and non-overlapped communication
// time (receive/rendezvous blocking).
package machine

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decomp"
	"repro/internal/kernels"
	"repro/internal/mplib"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// Platform is one hardware/software configuration from the paper.
type Platform struct {
	Name     string
	MaxProcs int
	// Chip is the scalar node model (nil for the vector Y-MP).
	Chip *cpu.Chip
	// Vec is the vector processor model (Y-MP only).
	Vec *cpu.Vector
	// NewNetwork builds a fresh network state for one run.
	NewNetwork func(procs int) netsim.Network
	Lib        mplib.Model
	// LibHostFactor scales library costs down on faster hosts (the PVM
	// daemons are CPU work on the node itself). Zero means 1.
	LibHostFactor float64
	// DOALLForkS is the per-parallel-region fork/join cost (Y-MP).
	DOALLForkS float64
	// FixedOverheadS models constant run overhead (the Y-MP connect
	// time includes I/O the authors could not separate).
	FixedOverheadS float64
}

// The paper's platforms.
var (
	LACE560Ethernet = Platform{Name: "LACE/560 Ethernet", MaxProcs: 16, Chip: &cpu.RS560, NewNetwork: netsim.NewEthernet, Lib: mplib.PVM}
	LACE560AllnodeS = Platform{Name: "LACE/560 ALLNODE-S", MaxProcs: 16, Chip: &cpu.RS560, NewNetwork: netsim.NewAllnodeS, Lib: mplib.PVM}
	LACE560FDDI     = Platform{Name: "LACE/560 FDDI", MaxProcs: 16, Chip: &cpu.RS560, NewNetwork: netsim.NewFDDI, Lib: mplib.PVM}
	LACE590AllnodeF = Platform{Name: "LACE/590 ALLNODE-F", MaxProcs: 16, Chip: &cpu.RS590, NewNetwork: netsim.NewAllnodeF, Lib: mplib.PVM, LibHostFactor: 1.55}
	LACE590ATM      = Platform{Name: "LACE/590 ATM", MaxProcs: 16, Chip: &cpu.RS590, NewNetwork: netsim.NewATM, Lib: mplib.PVM, LibHostFactor: 1.55}
	SPMPL           = Platform{Name: "IBM SP (MPL)", MaxProcs: 16, Chip: &cpu.RS370, NewNetwork: netsim.NewSPSwitch, Lib: mplib.MPL}
	SPPVMe          = Platform{Name: "IBM SP (PVMe)", MaxProcs: 16, Chip: &cpu.RS370, NewNetwork: netsim.NewSPSwitch, Lib: mplib.PVMe}
	T3D             = Platform{Name: "Cray T3D", MaxProcs: 16, Chip: &cpu.AlphaT3D, NewNetwork: netsim.NewT3DTorus, Lib: mplib.CrayPVM}
	YMP             = Platform{Name: "Cray Y-MP", MaxProcs: 8, Vec: &cpu.YMP, DOALLForkS: 25e-6, FixedOverheadS: 25}
)

// RankOutcome is one simulated rank's profile, in seconds of the full
// (Char.Steps) run.
type RankOutcome struct {
	Busy float64
	Wait float64
}

// Outcome summarizes a platform co-simulation.
type Outcome struct {
	Platform string
	Procs    int
	// Seconds is the execution time: max over ranks of busy+wait.
	Seconds float64
	// BusySeconds is the max per-rank busy time (compute + library CPU).
	BusySeconds float64
	// WaitSeconds is the max per-rank non-overlapped communication time.
	WaitSeconds float64
	PerRank     []RankOutcome
}

// DefaultSimSteps is the number of time steps actually event-simulated;
// results scale linearly to the full run (the schedule is periodic).
const DefaultSimSteps = 200

// EffMFLOPS returns the platform's sustained per-processor rate on the
// given workload (kernel Version 5, the version all parallel runs use).
func (p Platform) EffMFLOPS(ch trace.Characterization) float64 {
	if p.Vec != nil {
		return p.Vec.EffMFLOPS()
	}
	return p.Chip.Evaluate(kernels.V(5), ch.FlopsPerPoint).EffMFLOPS
}

// Simulate runs the application characterization on procs processors
// with the given communication version (5, 6, or 7). A TimeSlices > 1
// characterization routes to the Parareal schedule.
func (p Platform) Simulate(ch trace.Characterization, procs, commVersion int) (Outcome, error) {
	if ch.TimeSlices > 1 {
		return p.SimulateParareal(ch, procs, commVersion)
	}
	return p.SimulateSteps(ch, procs, commVersion, DefaultSimSteps)
}

// SimulateSteps is Simulate with explicit event-simulated step count.
// It runs the paper's uniform axial decomposition; SimulateDecomp
// accepts a caller-built (possibly cost-weighted) decomposition.
func (p Platform) SimulateSteps(ch trace.Characterization, procs, commVersion, simSteps int) (Outcome, error) {
	if procs < 1 {
		return Outcome{}, fmt.Errorf("machine: %s supports 1..%d processors, got %d", p.Name, p.MaxProcs, procs)
	}
	d, err := decomp.Axial(ch.Nx, procs)
	if err != nil {
		return Outcome{}, err
	}
	return p.SimulateDecomp(ch, d, commVersion, simSteps)
}

// SimulateDecomp co-simulates the characterization on an explicit
// axial decomposition — typically decomp.WeightedAxial over the same
// per-column cost profile as ch.ColCost, the predicted counterpart of
// a measured load-balanced run.
func (p Platform) SimulateDecomp(ch trace.Characterization, d *decomp.Decomposition, commVersion, simSteps int) (Outcome, error) {
	procs := d.P
	if procs < 1 || procs > p.MaxProcs {
		return Outcome{}, fmt.Errorf("machine: %s supports 1..%d processors, got %d", p.Name, p.MaxProcs, procs)
	}
	if d.Nx != ch.Nx {
		return Outcome{}, fmt.Errorf("machine: decomposition covers %d columns, characterization has %d", d.Nx, ch.Nx)
	}
	if ch.ColCost != nil && len(ch.ColCost) != ch.Nx {
		return Outcome{}, fmt.Errorf("machine: %d-entry cost profile for %d columns", len(ch.ColCost), ch.Nx)
	}
	if ch.HaloDepth > 1 && procs > 1 {
		ext := trace.WideExtension(ch.Viscous, ch.HaloDepth)
		for r := 0; r < procs; r++ {
			if _, n := d.Range(r); n < ext+2 {
				return Outcome{}, fmt.Errorf("machine: halo depth %d needs a %d-point redundant shell plus the 2-point exchange window, but rank %d owns only %d columns", ch.HaloDepth, ext, r, n)
			}
		}
	}
	if ch.ReduceGroup > procs {
		return Outcome{}, fmt.Errorf("machine: reduce group %d exceeds the %d ranks of the run", ch.ReduceGroup, procs)
	}
	if p.Vec != nil {
		return p.simulateVector(ch, procs), nil
	}
	switch commVersion {
	case 5, 6, 7:
	default:
		return Outcome{}, fmt.Errorf("machine: unknown communication version %d", commVersion)
	}
	if simSteps < 1 {
		simSteps = DefaultSimSteps
	}
	if procs == 1 {
		// No communication: pure single-processor execution.
		sec := ch.TotalFlops() / (p.EffMFLOPS(ch) * 1e6)
		return Outcome{Platform: p.Name, Procs: 1, Seconds: sec, BusySeconds: sec,
			PerRank: []RankOutcome{{Busy: sec}}}, nil
	}
	cs := newCosim(p, ch, d, commVersion, simSteps)
	cs.run()
	scale := float64(ch.Steps) / float64(simSteps)
	out := Outcome{Platform: p.Name, Procs: procs}
	for _, r := range cs.ranks {
		ro := RankOutcome{Busy: r.busy * scale, Wait: r.wait * scale}
		out.PerRank = append(out.PerRank, ro)
		if ro.Busy > out.BusySeconds {
			out.BusySeconds = ro.Busy
		}
		if ro.Wait > out.WaitSeconds {
			out.WaitSeconds = ro.Wait
		}
		if t := ro.Busy + ro.Wait; t > out.Seconds {
			out.Seconds = t
		}
	}
	return out, nil
}

// simulateVector models the Y-MP DOALL execution: near-perfect loop
// parallelism with a small fork/join cost per parallel region and the
// paper's inseparable I/O constant.
func (p Platform) simulateVector(ch trace.Characterization, procs int) Outcome {
	w := ch.TotalFlops()
	busy := w / (float64(procs) * p.Vec.EffMFLOPS() * 1e6)
	// ~12 DOALL regions per composite step (see internal/solver).
	sync := float64(ch.Steps) * 12 * p.DOALLForkS * float64(procs-1) / float64(max(procs, 1))
	sec := busy + sync + p.FixedOverheadS
	per := make([]RankOutcome, procs)
	for i := range per {
		per[i] = RankOutcome{Busy: busy, Wait: sync}
	}
	return Outcome{Platform: p.Name, Procs: procs, Seconds: sec, BusySeconds: busy + p.FixedOverheadS, WaitSeconds: sync, PerRank: per}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
