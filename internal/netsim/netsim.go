// Package netsim models the interconnects of the paper's Section 4 as
// stateful contention networks over resource timelines:
//
//	Ethernet   — 10 Mb/s shared bus, CSMA inefficiency under load
//	FDDI       — 100 Mb/s token ring (shared medium, token latency)
//	ATM        — 155 Mb/s switched, per-port serialization
//	ALLNODE-F  — 64 Mb/s links, multistage with contention-free multipath
//	ALLNODE-S  — 32 Mb/s prototype of the same switch
//	SP switch  — Omega network, 40 MB/s links
//	T3D torus  — 3-D torus, 150 MB/s links, dimension-order routing
//
// A Network owns its state; create a fresh instance per simulation run.
package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Network computes message delivery times under contention.
type Network interface {
	Name() string
	// Transfer injects a message of the given payload at time t (seconds)
	// and returns its arrival time at dst.
	Transfer(t float64, from, to int, bytes int) float64
}

func mbps(v float64) float64 { return v * 1e6 / 8 } // megabit/s -> bytes/s

// SharedBus is a single shared medium (Ethernet, and FDDI with a token
// latency). All transfers serialize on the bus; saturation emerges when
// the offered load approaches the medium rate.
type SharedBus struct {
	name string
	// RateBps is the medium bandwidth in bytes/second.
	RateBps float64
	// PerFrameS is medium access overhead per message (preamble, token
	// rotation, inter-frame gaps aggregated).
	PerFrameS float64
	// CSMAFactor inflates occupancy under contention: when a transfer
	// finds the bus busy, its occupancy is multiplied by this factor
	// (collision/backoff inefficiency). 1 = no inflation.
	CSMAFactor float64
	// BurstBytes is the adapter buffer: a message larger than this that
	// meets a busy medium overflows and pays OverflowPenaltyS
	// (retransmission). This is the paper's "bursty communication could
	// overwhelm the network's throughput capacity temporarily" — and
	// why Version 7's one-column sends help Ethernet.
	BurstBytes       int
	OverflowPenaltyS float64
	// LatencyS is the propagation/adapter latency added after the bus.
	LatencyS float64
	bus      sim.Resource
}

// NewEthernet returns the LACE 10 Mb/s shared Ethernet.
func NewEthernet(procs int) Network {
	return &SharedBus{name: "Ethernet", RateBps: mbps(10), PerFrameS: 120e-6, CSMAFactor: 1.25,
		BurstBytes: 4096, OverflowPenaltyS: 3e-3, LatencyS: 150e-6}
}

// NewFDDI returns the LACE 100 Mb/s FDDI ring.
func NewFDDI(procs int) Network {
	return &SharedBus{name: "FDDI", RateBps: mbps(100), PerFrameS: 250e-6, CSMAFactor: 1.0, LatencyS: 100e-6}
}

// Name implements Network.
func (s *SharedBus) Name() string { return s.name }

// Transfer implements Network.
func (s *SharedBus) Transfer(t float64, from, to, bytes int) float64 {
	dur := float64(bytes)/s.RateBps + s.PerFrameS
	if s.bus.QueueDelay(t) > 0 {
		if s.CSMAFactor > 1 {
			dur *= s.CSMAFactor
		}
		if s.BurstBytes > 0 && bytes > s.BurstBytes {
			dur += s.OverflowPenaltyS
		}
	}
	_, end := s.bus.Acquire(t, dur)
	return end + s.LatencyS
}

// Switched models a switch with per-node input and output ports at the
// link rate and an optional shared internal stage of aggregate capacity
// StageLinks*link rate. The ALLNODE switch configures multiple
// contention-free paths (large StageLinks); the shared stage lets
// saturation appear only at high node counts.
type Switched struct {
	name       string
	LinkBps    float64
	LatencyS   float64
	StageLinks float64 // 0 = unlimited internal capacity
	out        []sim.Resource
	in         []sim.Resource
	stage      sim.Resource
}

// NewATM returns the LACE 155 Mb/s ATM network.
func NewATM(procs int) Network {
	return &Switched{name: "ATM", LinkBps: mbps(155), LatencyS: 120e-6, StageLinks: 0,
		out: make([]sim.Resource, procs), in: make([]sim.Resource, procs)}
}

// NewAllnodeF returns IBM's ALLNODE switch, fast version (64 Mb/s links).
func NewAllnodeF(procs int) Network {
	return &Switched{name: "ALLNODE-F", LinkBps: mbps(64), LatencyS: 80e-6, StageLinks: 8,
		out: make([]sim.Resource, procs), in: make([]sim.Resource, procs)}
}

// NewAllnodeS returns the ALLNODE prototype (32 Mb/s links).
func NewAllnodeS(procs int) Network {
	return &Switched{name: "ALLNODE-S", LinkBps: mbps(32), LatencyS: 90e-6, StageLinks: 8,
		out: make([]sim.Resource, procs), in: make([]sim.Resource, procs)}
}

// NewSPSwitch returns the SP's Omega-topology switch (40 MB/s links).
func NewSPSwitch(procs int) Network {
	return &Switched{name: "SP switch", LinkBps: 40e6, LatencyS: 30e-6, StageLinks: 16,
		out: make([]sim.Resource, procs), in: make([]sim.Resource, procs)}
}

// Name implements Network.
func (s *Switched) Name() string { return s.name }

// Transfer implements Network.
func (s *Switched) Transfer(t float64, from, to, bytes int) float64 {
	dur := float64(bytes) / s.LinkBps
	start := t
	if f := s.out[from].NextFree(); f > start {
		start = f
	}
	if f := s.in[to].NextFree(); f > start {
		start = f
	}
	_, e1 := s.out[from].Acquire(start, dur)
	_, e2 := s.in[to].Acquire(start, dur)
	end := e1
	if e2 > end {
		end = e2
	}
	if s.StageLinks > 0 {
		// The shared internal stage carries every byte at aggregate
		// capacity StageLinks x link rate.
		_, es := s.stage.Acquire(start, float64(bytes)/(s.LinkBps*s.StageLinks))
		if es > end {
			end = es
		}
	}
	return end + s.LatencyS
}

// Torus is the T3D's 3-D torus with dimension-order routing and
// per-direction links between adjacent nodes.
type Torus struct {
	name     string
	Dims     [3]int
	LinkBps  float64
	HopS     float64
	LatencyS float64
	links    map[[2]int]*sim.Resource
}

// NewT3DTorus returns the paper's 64-node torus (8x4x2) restricted to
// the first `procs` nodes (the 16 available in single-user mode).
func NewT3DTorus(procs int) Network {
	return &Torus{
		name: "T3D torus", Dims: [3]int{8, 4, 2},
		LinkBps: 150e6, HopS: 1e-6, LatencyS: 2e-6,
		links: make(map[[2]int]*sim.Resource),
	}
}

// Name implements Network.
func (t *Torus) Name() string { return t.name }

// coords maps a rank to torus coordinates, x-major (matching the axial
// decomposition so neighbouring ranks are usually adjacent nodes).
func (t *Torus) coords(rank int) [3]int {
	x := rank % t.Dims[0]
	y := (rank / t.Dims[0]) % t.Dims[1]
	z := rank / (t.Dims[0] * t.Dims[1])
	return [3]int{x, y, z}
}

// node converts coordinates back to a node id.
func (t *Torus) node(c [3]int) int {
	return c[0] + t.Dims[0]*(c[1]+t.Dims[1]*c[2])
}

// route returns the node sequence of the dimension-order path.
func (t *Torus) route(from, to int) []int {
	path := []int{from}
	c := t.coords(from)
	d := t.coords(to)
	for dim := 0; dim < 3; dim++ {
		for c[dim] != d[dim] {
			n := t.Dims[dim]
			fwd := ((d[dim]-c[dim])%n + n) % n
			if fwd <= n-fwd {
				c[dim] = (c[dim] + 1) % n
			} else {
				c[dim] = (c[dim] - 1 + n) % n
			}
			path = append(path, t.node(c))
		}
	}
	return path
}

// link returns the resource for a directed link.
func (t *Torus) link(a, b int) *sim.Resource {
	k := [2]int{a, b}
	r, ok := t.links[k]
	if !ok {
		r = &sim.Resource{}
		t.links[k] = r
	}
	return r
}

// Transfer implements Network with wormhole-style pipelining: the
// message occupies every link of its path for bytes/rate, starting when
// all are free (an approximation that is exact for the solver's
// single-hop neighbour traffic).
func (t *Torus) Transfer(tm float64, from, to, bytes int) float64 {
	if from == to {
		panic(fmt.Sprintf("netsim: self transfer at node %d", from))
	}
	path := t.route(from, to)
	dur := float64(bytes) / t.LinkBps
	start := tm
	for i := 0; i+1 < len(path); i++ {
		if f := t.link(path[i], path[i+1]).NextFree(); f > start {
			start = f
		}
	}
	end := start + dur
	for i := 0; i+1 < len(path); i++ {
		t.link(path[i], path[i+1]).Acquire(start, dur)
	}
	hops := float64(len(path) - 1)
	return end + hops*t.HopS + t.LatencyS
}
