package netsim

import (
	"math"
	"testing"
)

func TestEthernetSerializes(t *testing.T) {
	n := NewEthernet(4)
	a1 := n.Transfer(0, 0, 1, 12500) // 12.5 kB at 1.25 MB/s = 10 ms
	if a1 < 0.010 {
		t.Fatalf("first transfer arrives at %g", a1)
	}
	// A simultaneous transfer between a DIFFERENT pair still queues on
	// the shared medium.
	a2 := n.Transfer(0, 2, 3, 12500)
	if a2 <= a1 {
		t.Fatalf("shared medium did not serialize: %g <= %g", a2, a1)
	}
}

func TestEthernetBurstPenalty(t *testing.T) {
	// A large message meeting a busy medium pays the overflow penalty;
	// two half-size messages do not.
	big := NewEthernet(4)
	big.Transfer(0, 0, 1, 6400)
	aBig := big.Transfer(0, 2, 3, 6400)

	small := NewEthernet(4)
	small.Transfer(0, 0, 1, 6400) // same first occupancy
	b1 := small.Transfer(0, 2, 3, 3200)
	b2 := small.Transfer(0, 2, 3, 3200)
	last := math.Max(b1, b2)
	if aBig <= last {
		t.Fatalf("burst penalty missing: big %g <= split %g", aBig, last)
	}
}

func TestSwitchedPairsIndependent(t *testing.T) {
	n := NewATM(4)
	a1 := n.Transfer(0, 0, 1, 100000)
	a2 := n.Transfer(0, 2, 3, 100000)
	if math.Abs(a1-a2) > 1e-12 {
		t.Fatalf("disjoint pairs should not contend on a switch: %g vs %g", a1, a2)
	}
	// Same source port serializes.
	a3 := n.Transfer(0, 0, 2, 100000)
	if a3 <= a1 {
		t.Fatalf("output port contention missing: %g <= %g", a3, a1)
	}
}

func TestAllnodeFasterThanPrototype(t *testing.T) {
	f := NewAllnodeF(8)
	s := NewAllnodeS(8)
	af := f.Transfer(0, 0, 1, 6400)
	as := s.Transfer(0, 0, 1, 6400)
	if af >= as {
		t.Fatalf("ALLNODE-F (%g) should beat ALLNODE-S (%g)", af, as)
	}
	// Roughly 2x the link rate.
	if r := (as - 90e-6) / (af - 80e-6); r < 1.6 || r > 2.4 {
		t.Errorf("link-rate ratio %.2f, want ~2", r)
	}
}

func TestTorusRouting(t *testing.T) {
	tor := NewT3DTorus(16).(*Torus)
	// Adjacent ranks in x: single hop.
	if p := tor.route(3, 4); len(p) != 2 {
		t.Fatalf("adjacent route %v", p)
	}
	// Wraparound: 0 -> 7 in a ring of 8 is one hop backwards.
	if p := tor.route(0, 7); len(p) != 2 {
		t.Fatalf("wraparound route %v", p)
	}
	// 0 -> 8+1: one y hop + one x hop = 2 hops.
	if p := tor.route(0, 9); len(p) != 3 {
		t.Fatalf("xy route %v", p)
	}
	// Dimension order: x is resolved before y.
	p := tor.route(0, 9)
	if p[1] != 1 {
		t.Fatalf("not dimension-ordered: %v", p)
	}
}

func TestTorusNeighbourTransfersParallel(t *testing.T) {
	tor := NewT3DTorus(16)
	a1 := tor.Transfer(0, 0, 1, 6400)
	a2 := tor.Transfer(0, 2, 3, 6400)
	if math.Abs(a1-a2) > 1e-12 {
		t.Fatalf("disjoint torus links should not contend: %g vs %g", a1, a2)
	}
	// Same link used twice serializes.
	b := tor.Transfer(0, 0, 1, 6400)
	if b <= a1 {
		t.Fatalf("link contention missing: %g <= %g", b, a1)
	}
	// The torus is far faster than any LACE network for the same bytes.
	eth := NewEthernet(16).Transfer(0, 0, 1, 6400)
	if a1*10 > eth {
		t.Fatalf("torus %g not much faster than Ethernet %g", a1, eth)
	}
}

func TestTorusSelfTransferPanics(t *testing.T) {
	tor := NewT3DTorus(16)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	tor.Transfer(0, 2, 2, 100)
}

func TestFDDITokenLatency(t *testing.T) {
	f := NewFDDI(8)
	// 100 Mb/s = 12.5 MB/s: 12500 B takes 1 ms + token overhead.
	a := f.Transfer(0, 0, 1, 12500)
	if a < 0.001 || a > 0.01 {
		t.Fatalf("FDDI transfer time %g", a)
	}
}

func TestNames(t *testing.T) {
	for _, n := range []Network{NewEthernet(4), NewFDDI(4), NewATM(4), NewAllnodeF(4), NewAllnodeS(4), NewSPSwitch(4), NewT3DTorus(4)} {
		if n.Name() == "" {
			t.Error("empty network name")
		}
	}
}
