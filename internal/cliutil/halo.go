// Package cliutil holds flag validation shared by the command-line
// front ends, so jetsim and platforms reject contradictory halo
// specifications identically — at parse time, before any solver state
// is built.
package cliutil

import "fmt"

// ValidateHaloFlags checks the -fresh / -halo-depth flag pair.
// haloSet reports whether -halo-depth was given explicitly (flag.Visit
// saw it): an explicit depth must be >= 1, since 0 only means "default
// per-stage policy" when it is the untouched default. A depth k > 1
// thins the exchange schedule to every k-th step, which contradicts
// -fresh's per-stage exact exchange — the pair is rejected rather than
// silently letting one flag win.
func ValidateHaloFlags(fresh bool, haloDepth int, haloSet bool) error {
	if haloSet && haloDepth < 1 {
		return fmt.Errorf("-halo-depth must be >= 1 (1 = fresh per-stage exchange, k > 1 = exchange every k-th step), got %d", haloDepth)
	}
	if haloDepth > 1 && fresh {
		return fmt.Errorf("-halo-depth %d (exchange every %d-th step) contradicts -fresh (per-stage exact exchange); set one of them", haloDepth, haloDepth)
	}
	return nil
}
