package cliutil

import (
	"strings"
	"testing"
)

func TestValidateHaloFlags(t *testing.T) {
	cases := []struct {
		name    string
		fresh   bool
		depth   int
		set     bool
		wantErr string
	}{
		{name: "defaults", fresh: false, depth: 0, set: false},
		{name: "fresh only", fresh: true, depth: 0, set: false},
		{name: "depth one is fresh", fresh: false, depth: 1, set: true},
		{name: "fresh plus depth one agree", fresh: true, depth: 1, set: true},
		{name: "wide depth", fresh: false, depth: 3, set: true},
		{name: "explicit zero depth", depth: 0, set: true, wantErr: "must be >= 1"},
		{name: "negative depth", depth: -2, set: true, wantErr: "must be >= 1"},
		{name: "fresh contradicts wide depth", fresh: true, depth: 2, set: true, wantErr: "contradicts -fresh"},
		{name: "contradiction without visit", fresh: true, depth: 4, set: false, wantErr: "contradicts -fresh"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateHaloFlags(tc.fresh, tc.depth, tc.set)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
