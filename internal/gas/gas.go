// Package gas implements the perfect-gas thermodynamics of the paper in
// nondimensional form.
//
// Reference scales: ambient density rho_inf, ambient sound speed c_inf,
// ambient temperature T_inf, jet radius r0. With these,
//
//	p = rho*T/gamma,   c^2 = T,   E = p/(gamma-1) + rho*(u^2+v^2)/2,
//	H = (E+p)/rho,     q = -mu/((gamma-1) Pr) * grad(T).
//
// Ambient state: rho=1, T=1, p=1/gamma, c=1.
package gas

import "math"

// Model collects the gas constants used by every kernel.
type Model struct {
	Gamma float64 // ratio of specific heats
	Pr    float64 // Prandtl number
	Mu    float64 // constant nondimensional dynamic viscosity (0 for Euler)
}

// Air returns the standard model used in the paper's computations
// (gamma = 1.4, Pr = 0.72) with viscosity mu.
func Air(mu float64) Model { return Model{Gamma: 1.4, Pr: 0.72, Mu: mu} }

// Pressure returns p from density and temperature.
func (m Model) Pressure(rho, T float64) float64 { return rho * T / m.Gamma }

// Temperature returns T from density and pressure.
func (m Model) Temperature(rho, p float64) float64 { return m.Gamma * p / rho }

// SoundSpeed returns c from temperature.
func (m Model) SoundSpeed(T float64) float64 { return math.Sqrt(T) }

// TotalEnergy returns E from primitives.
func (m Model) TotalEnergy(rho, u, v, p float64) float64 {
	return p/(m.Gamma-1) + 0.5*rho*(u*u+v*v)
}

// PressureFromConserved returns p from conservative variables.
func (m Model) PressureFromConserved(rho, mx, mr, E float64) float64 {
	return (m.Gamma - 1) * (E - 0.5*(mx*mx+mr*mr)/rho)
}

// Enthalpy returns total specific enthalpy H = (E+p)/rho.
func (m Model) Enthalpy(rho, E, p float64) float64 { return (E + p) / rho }

// HeatConductivity returns the coefficient k such that q = -k grad(T).
func (m Model) HeatConductivity() float64 { return m.Mu / ((m.Gamma - 1) * m.Pr) }

// AmbientPressure returns the nondimensional ambient pressure 1/gamma.
func (m Model) AmbientPressure() float64 { return 1 / m.Gamma }

// Primitive holds a pointwise primitive state.
type Primitive struct {
	Rho, U, V, P float64
}

// Conserved holds a pointwise conservative state (without the metric
// factor r; the solver multiplies by r where the paper's Q requires it).
type Conserved struct {
	Rho, Mx, Mr, E float64
}

// ToConserved converts primitives to conservative variables.
func (m Model) ToConserved(w Primitive) Conserved {
	return Conserved{
		Rho: w.Rho,
		Mx:  w.Rho * w.U,
		Mr:  w.Rho * w.V,
		E:   m.TotalEnergy(w.Rho, w.U, w.V, w.P),
	}
}

// ToPrimitive converts conservative variables to primitives.
func (m Model) ToPrimitive(q Conserved) Primitive {
	u := q.Mx / q.Rho
	v := q.Mr / q.Rho
	return Primitive{
		Rho: q.Rho,
		U:   u,
		V:   v,
		P:   (m.Gamma - 1) * (q.E - 0.5*q.Rho*(u*u+v*v)),
	}
}
