package gas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAmbientState(t *testing.T) {
	m := Air(0)
	if m.Gamma != 1.4 || m.Pr != 0.72 {
		t.Fatalf("Air constants: %+v", m)
	}
	// Ambient: rho=1, T=1 -> p = 1/gamma, c = 1.
	if p := m.Pressure(1, 1); math.Abs(p-1/1.4) > 1e-15 {
		t.Errorf("ambient pressure %g", p)
	}
	if c := m.SoundSpeed(1); c != 1 {
		t.Errorf("ambient sound speed %g", c)
	}
	if p := m.AmbientPressure(); math.Abs(p-1/1.4) > 1e-15 {
		t.Errorf("AmbientPressure %g", p)
	}
}

func TestPressureTemperatureInverse(t *testing.T) {
	m := Air(0)
	f := func(rhoRaw, tRaw float64) bool {
		rho := 0.1 + math.Abs(math.Mod(rhoRaw, 10))
		T := 0.1 + math.Abs(math.Mod(tRaw, 10))
		p := m.Pressure(rho, T)
		return math.Abs(m.Temperature(rho, p)-T) < 1e-12*T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: primitive -> conserved -> primitive is the identity.
func TestConversionRoundtrip(t *testing.T) {
	m := Air(1e-6)
	f := func(rhoRaw, uRaw, vRaw, pRaw float64) bool {
		w := Primitive{
			Rho: 0.1 + math.Abs(math.Mod(rhoRaw, 5)),
			U:   math.Mod(uRaw, 4),
			V:   math.Mod(vRaw, 4),
			P:   0.1 + math.Abs(math.Mod(pRaw, 5)),
		}
		if math.IsNaN(w.Rho + w.U + w.V + w.P) {
			return true
		}
		got := m.ToPrimitive(m.ToConserved(w))
		tol := 1e-10
		return math.Abs(got.Rho-w.Rho) < tol && math.Abs(got.U-w.U) < tol &&
			math.Abs(got.V-w.V) < tol && math.Abs(got.P-w.P) < tol*(1+w.P)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalEnergyConsistent(t *testing.T) {
	m := Air(0)
	w := Primitive{Rho: 0.5, U: 2.1, V: 0.3, P: 0.714}
	e := m.TotalEnergy(w.Rho, w.U, w.V, w.P)
	q := m.ToConserved(w)
	if math.Abs(q.E-e) > 1e-14 {
		t.Fatalf("E mismatch: %g vs %g", q.E, e)
	}
	if p := m.PressureFromConserved(q.Rho, q.Mx, q.Mr, q.E); math.Abs(p-w.P) > 1e-12 {
		t.Fatalf("pressure recovery: %g vs %g", p, w.P)
	}
}

func TestEnthalpy(t *testing.T) {
	m := Air(0)
	// H = (E+p)/rho.
	if h := m.Enthalpy(2, 10, 4); h != 7 {
		t.Fatalf("H = %g", h)
	}
}

func TestHeatConductivity(t *testing.T) {
	m := Air(2e-6)
	want := 2e-6 / ((1.4 - 1) * 0.72)
	if k := m.HeatConductivity(); math.Abs(k-want) > 1e-20 {
		t.Fatalf("k = %g, want %g", k, want)
	}
	if k := Air(0).HeatConductivity(); k != 0 {
		t.Fatalf("inviscid k = %g", k)
	}
}
