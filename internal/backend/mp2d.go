package backend

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
)

func init() {
	register(mp2dBackend{})
	register(mp2dBackend{pin: par.V6})
}

// mp2dBackend is the 2-D (axial × radial) rank-grid decomposition: the
// domain is split into px*pr sub-rectangles, each running the slab
// engine and exchanging ghost columns with left/right neighbours and
// ghost rows with down/up neighbours through the message layer. The
// paper's axial-only split (Section 5) caps out at Nx/MinWidth ranks
// with 2*Nr halo surface per rank; the rank grid raises the ceiling to
// (Nx/MinWidth)*(Nr/MinHeight) and cuts the surface to
// 2*(Nr/pr + Nx/px). Exchanges are grouped in both directions (the
// Version 5 message shape); "mp2d" takes Options.Version 5 or 6, and
// "mp2d:v6" pins the overlapped strategy, which runs each sweep's
// interior core while the column and row messages fly. The physics
// stays bitwise-identical to serial under the Fresh halo policy for
// every rank-grid shape and either version.
type mp2dBackend struct {
	// pin, when nonzero, is the version the registry name hard-wires
	// ("mp2d:v6"); zero is the version-agnostic "mp2d" (default V5).
	pin par.Version
}

func (b mp2dBackend) Name() string {
	if b.pin != 0 {
		return fmt.Sprintf("mp2d:v%d", int(b.pin))
	}
	return "mp2d"
}

// version resolves the communication strategy: the pinned one for
// mp2d:v6, Options.Version (default V5) for plain mp2d. V7's de-burst
// axial flux messages are not defined for the rank grid.
func (b mp2dBackend) version(opts Options) (par.Version, error) {
	return resolveVersion(b.Name(), opts, par.V5, b.pin, par.V5, par.V6)
}

// options2D maps the registry options onto the 2-D runner's. Procs
// passes through raw: zero means "derive from the shape" (or one rank
// when no shape is given either), while an explicit value that
// contradicts an explicit shape must reach the runner's error check.
// The balance request resolves into per-column and per-row profiles —
// the 2-D decomposition weights both directions, and the measured
// warm-up probes each at the resolved rank-grid resolution (px axial
// ranks, pr radial ranks), so a shape given as Px/Pr alone still
// measures at its real width.
func (b mp2dBackend) options2D(cfg jet.Config, g *grid.Grid, opts Options) (par.Options2D, error) {
	v, err := b.version(opts)
	if err != nil {
		return par.Options2D{}, err
	}
	px, pr, err := par.Options2D{Procs: opts.Procs, Px: opts.Px, Pr: opts.Pr}.Shape(g)
	if err != nil {
		return par.Options2D{}, err
	}
	colw, roww, err := resolveWeights(b.Name(), cfg, g, opts, px, pr)
	if err != nil {
		return par.Options2D{}, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	return par.Options2D{
		Procs:       opts.Procs,
		Px:          opts.Px,
		Pr:          opts.Pr,
		Version:     v,
		Policy:      opts.Policy,
		CFL:         opts.CFL,
		ColWeights:  colw,
		RowWeights:  roww,
		Prob:        prob,
		ReduceGroup: opts.ReduceGroup,
	}, err
}

// Validate checks the version request, the balance mode, the rank-grid
// shape, and both block decompositions without building the ranks (and
// without running the measured warm-up probe).
func (b mp2dBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	if _, err := b.version(opts); err != nil {
		return err
	}
	if err := validateBalance(b.Name(), opts, true); err != nil {
		return err
	}
	if _, err := resolveProblem(cfg, g, opts); err != nil {
		return err
	}
	if _, err := resolveControl(b.Name(), opts); err != nil {
		return err
	}
	o := par.Options2D{Procs: opts.Procs, Px: opts.Px, Pr: opts.Pr}
	px, pr, err := o.Shape(g)
	if err != nil {
		return err
	}
	if err := validateGroup(b.Name(), opts.ReduceGroup, px*pr); err != nil {
		return err
	}
	d, err := decomp.NewGrid2D(g.Nx, g.Nr, px, pr)
	if err != nil {
		return err
	}
	// A Wide policy's redundant shell must fit every block along each
	// decomposed axis (uniform split; the runner checks the weighted one).
	var widths, heights []int
	for r := 0; r < d.Ranks(); r++ {
		_, nxloc, _, nrloc := d.Block(r)
		widths = append(widths, nxloc)
		heights = append(heights, nrloc)
	}
	if px > 1 {
		if err := par.CheckWideFit(cfg.Viscous, opts.Policy.Depth(), widths, "column"); err != nil {
			return err
		}
	}
	if pr > 1 {
		if err := par.CheckWideFit(cfg.Viscous, opts.Policy.Depth(), heights, "row"); err != nil {
			return err
		}
	}
	return nil
}

func (b mp2dBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	o, err := b.options2D(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ctl, err := resolveControl(b.Name(), opts)
	if err != nil {
		return Result{}, err
	}
	r, err := par.NewRunner2D(cfg, g, o)
	if err != nil {
		return Result{}, err
	}
	pr := r.RunControlled(steps, ctl)
	res := Result{
		Backend:   b.Name(),
		Scenario:  opts.scenario(),
		Procs:     pr.Procs,
		Px:        r.Opt.Px,
		Pr:        r.Opt.Pr,
		Steps:     pr.Steps,
		Dt:        pr.Dt,
		Converged: pr.Converged,
		Residuals: pr.Residuals,
		Elapsed:   pr.Elapsed,
		Diag:      pr.Diag,
		Comm:      pr.TotalComm(),
		CommDir:   pr.TotalDir(),
		PerRank:   pr.Ranks,
		Fields:    r.GatherState(),
	}
	return res, nil
}
