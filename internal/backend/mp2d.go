package backend

import (
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
)

func init() { register(mp2dBackend{}) }

// mp2dBackend is the 2-D (axial × radial) rank-grid decomposition: the
// domain is split into px*pr sub-rectangles, each running the slab
// engine and exchanging ghost columns with left/right neighbours and
// ghost rows with down/up neighbours through the message layer. The
// paper's axial-only split (Section 5) caps out at Nx/MinWidth ranks
// with 2*Nr halo surface per rank; the rank grid raises the ceiling to
// (Nx/MinWidth)*(Nr/MinHeight) and cuts the surface to
// 2*(Nr/pr + Nx/px). Exchanges are grouped (the Version 5 shape) and
// the physics stays bitwise-identical to serial under the Fresh halo
// policy for every rank-grid shape.
type mp2dBackend struct{}

func (mp2dBackend) Name() string { return "mp2d" }

// options2D maps the registry options onto the 2-D runner's. Procs
// passes through raw: zero means "derive from the shape" (or one rank
// when no shape is given either), while an explicit value that
// contradicts an explicit shape must reach the runner's error check.
func options2D(opts Options) par.Options2D {
	return par.Options2D{
		Procs:  opts.Procs,
		Px:     opts.Px,
		Pr:     opts.Pr,
		Policy: opts.Policy,
		CFL:    opts.CFL,
	}
}

// Validate checks the rank-grid shape and both block decompositions
// without building the ranks.
func (mp2dBackend) Validate(_ jet.Config, g *grid.Grid, opts Options) error {
	px, pr, err := options2D(opts).Shape(g)
	if err != nil {
		return err
	}
	_, err = decomp.NewGrid2D(g.Nx, g.Nr, px, pr)
	return err
}

func (b mp2dBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	r, err := par.NewRunner2D(cfg, g, options2D(opts))
	if err != nil {
		return Result{}, err
	}
	pr := r.Run(steps)
	res := Result{
		Backend: b.Name(),
		Procs:   pr.Procs,
		Px:      r.Opt.Px,
		Pr:      r.Opt.Pr,
		Steps:   steps,
		Dt:      pr.Dt,
		Elapsed: pr.Elapsed,
		Diag:    pr.Diag,
		Comm:    pr.TotalComm(),
		CommDir: pr.TotalDir(),
		PerRank: pr.Ranks,
		Fields:  r.GatherState(),
	}
	return res, nil
}
