package backend

import (
	"sync"
	"testing"
)

// TestConcurrentResolve hammers the global registry from many
// goroutines (run with -race): the service resolves backends while
// other packages' init-time registrations may still be publishing, so
// the table must be lock-guarded, not a bare map. Registration races
// themselves are exercised in internal/registry, on private instances —
// registering here would pollute the global name set other tests pin.
func TestConcurrentResolve(t *testing.T) {
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, name := range Names() {
					if _, err := Get(name); err != nil {
						t.Errorf("registered backend %q unresolvable: %v", name, err)
						return
					}
				}
				if _, err := Get("nonesuch"); err == nil {
					t.Error("unknown backend resolved")
					return
				}
			}
		}()
	}
	wg.Wait()
}
