package backend

import (
	"math"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// TestConvergedStopParity is the convergence controller's central
// guarantee: under the Fresh halo policy a tolerance-stopped run
// terminates at the same step count on every registered backend — each
// rank takes the stop decision from its own copy of the allreduced
// residual — with bitwise-identical fields vs the serial stop. The
// sweep covers every backend, widths 1..4, both decompositions
// (including a remainder-block rank grid), and the overlapped
// schedules.
func TestConvergedStopParity(t *testing.T) {
	const (
		maxSteps = 400
		tol      = 9e-3
		every    = 5
	)
	g := grid.MustNew(64, 26, 50, 5)
	// The converging-jet scenario (study.ConvergedConfig, inlined here
	// so the study package is free to drive this registry without an
	// import cycle through the test binary).
	cfg := jet.Paper()
	cfg.Eps = 0
	cfg.Reynolds = 500

	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ser.Run(cfg, g, Options{StopTol: tol, ReduceEvery: every}, maxSteps)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.Steps == maxSteps {
		t.Fatalf("serial reference did not stop early: steps=%d converged=%v", ref.Steps, ref.Converged)
	}
	refRes := ref.Residuals[len(ref.Residuals)-1].Residual

	cases := []struct {
		name string
		o    Options
	}{
		{"shm", Options{Procs: 3}},
		{"mp:v5", Options{Procs: 1}},
		{"mp:v5", Options{Procs: 2}},
		{"mp:v5", Options{Procs: 3}},
		{"mp:v5", Options{Procs: 4}},
		{"mp:v6", Options{Procs: 3}},
		{"mp:v7", Options{Procs: 2}},
		{"mp2d", Options{Px: 2, Pr: 2}},
		{"mp2d", Options{Px: 3, Pr: 1}},
		{"mp2d:v6", Options{Px: 2, Pr: 2}},
		{"hybrid", Options{Procs: 2, Workers: 2}},
	}
	for _, c := range cases {
		t.Run(c.name+"/"+optionsLabel(c.o), func(t *testing.T) {
			b, err := Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			o := c.o
			o.Policy = solver.Fresh
			o.StopTol = tol
			o.ReduceEvery = every
			res, err := b.Run(cfg, g, o, maxSteps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != ref.Steps || !res.Converged {
				t.Fatalf("stopped at step %d (converged=%v), serial stopped at %d", res.Steps, res.Converged, ref.Steps)
			}
			if len(res.Residuals) != len(ref.Residuals) {
				t.Fatalf("%d residual samples, serial has %d", len(res.Residuals), len(ref.Residuals))
			}
			last := res.Residuals[len(res.Residuals)-1].Residual
			if rel := math.Abs(last-refRes) / refRes; rel > 1e-12 {
				t.Errorf("final residual %g vs serial %g (rel %g)", last, refRes, rel)
			}
			for k := 0; k < flux.NVar; k++ {
				if !res.Fields[k].Equal(ref.Fields[k]) {
					t.Errorf("component %d differs from serial (max %g)",
						k, res.Fields[k].MaxAbsDiff(ref.Fields[k]))
				}
			}
		})
	}
}

// TestConvergenceControlValidation: nonsense control values must be
// rejected by Validate and Run alike, on backends with and without a
// message layer.
func TestConvergenceControlValidation(t *testing.T) {
	g := grid.MustNew(64, 24, 50, 5)
	cfg := jet.Paper()
	bad := []Options{
		{StopTol: -1},
		{Procs: 2, ReduceEvery: -3},
	}
	for _, name := range []string{"serial", "mp:v5"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range bad {
			if err := Validate(b, cfg, g, o); err == nil {
				t.Errorf("%s: Validate accepted %+v", name, o)
			}
			if _, err := b.Run(cfg, g, o, 1); err == nil {
				t.Errorf("%s: Run accepted %+v", name, o)
			}
		}
	}
}

// TestMonitorWithoutStop: ReduceEvery alone monitors (history, reduce
// traffic) without stopping, and the fixed-step count is preserved.
func TestMonitorWithoutStop(t *testing.T) {
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	g := grid.MustNew(64, 24, 50, 5)
	res, err := b.Run(jet.Paper(), g, Options{Procs: 4, ReduceEvery: 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 || res.Converged {
		t.Fatalf("monitoring must not stop the run: steps=%d converged=%v", res.Steps, res.Converged)
	}
	if len(res.Residuals) != 3 {
		t.Fatalf("%d residual samples over 10 steps at cadence 3, want 3", len(res.Residuals))
	}
	if res.CommDir.Reduce.Startups == 0 {
		t.Fatal("monitored run recorded no reduce-class traffic")
	}
	tot := res.CommDir.Total()
	if tot.Startups != res.Comm.Startups || tot.Bytes != res.Comm.Bytes {
		t.Fatalf("class split %v does not sum to aggregate %v", res.CommDir, res.Comm)
	}
	// Collective budget: 2 allreduces per monitored step, log2(4)=2
	// rounds each, one send+recv per rank per round -> per-rank
	// startups = monitors * 2 * 2 * 2 (send and recv both count).
	wantPerRank := int64(3 * 2 * 2 * 2)
	if got := res.CommDir.Reduce.Startups; got != wantPerRank*4 {
		t.Errorf("reduce startups %d, want %d", got, wantPerRank*4)
	}
}

// TestUncontrolledRunUnchanged: a zero control is the plain fixed-step
// run — same steps, no history, no reduce traffic, bitwise fields.
func TestUncontrolledRunUnchanged(t *testing.T) {
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	g := grid.MustNew(64, 24, 50, 5)
	res, err := b.Run(jet.Paper(), g, Options{Procs: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 || res.Converged || len(res.Residuals) != 0 {
		t.Fatalf("uncontrolled run reports control artifacts: %+v", res)
	}
	if res.CommDir.Reduce.Startups != 0 {
		t.Fatalf("uncontrolled run sent %d reduce startups", res.CommDir.Reduce.Startups)
	}
}
