package backend

import (
	"time"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func init() { register(serialBackend{}) }

// serialBackend is the single-processor reference: one slab spanning
// the whole domain, the configuration the paper measures in Figure 2.
type serialBackend struct{}

func (serialBackend) Name() string { return "serial" }

// Validate rejects a communication-version or balance request: there
// is nothing to communicate and nothing to decompose.
func (serialBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	if err := rejectVersion("serial", opts); err != nil {
		return err
	}
	if err := rejectBalance("serial", opts); err != nil {
		return err
	}
	if err := rejectWide("serial", opts); err != nil {
		return err
	}
	if _, err := resolveProblem(cfg, g, opts); err != nil {
		return err
	}
	_, err := resolveControl("serial", opts)
	return err
}

func (serialBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	if err := rejectVersion("serial", opts); err != nil {
		return Result{}, err
	}
	if err := rejectBalance("serial", opts); err != nil {
		return Result{}, err
	}
	if err := rejectWide("serial", opts); err != nil {
		return Result{}, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ctl, err := resolveControl("serial", opts)
	if err != nil {
		return Result{}, err
	}
	s, err := solver.NewSerialProblemCFL(cfg, prob, g, opts.cfl())
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	cr := s.RunControlled(steps, ctl)
	elapsed := time.Since(start)
	return Result{
		Backend:   "serial",
		Scenario:  opts.scenario(),
		Procs:     1,
		Steps:     cr.Steps,
		Dt:        s.Dt,
		Converged: cr.Converged,
		Residuals: cr.Residuals,
		Elapsed:   elapsed,
		Diag:      s.Diagnose(),
		Fields:    gatherSlab(g, s.Q),
	}, nil
}
