package backend

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
)

func init() {
	register(mpBackend{version: par.V5})
	register(mpBackend{version: par.V6})
	register(mpBackend{version: par.V7})
}

// mpBackend is the distributed-memory parallelization of the paper's
// Section 5: one goroutine per rank, halo exchanges through the
// PVM-like message layer. The version field selects the paper's
// communication strategy (grouped, overlapped, or de-burst).
type mpBackend struct {
	version par.Version
}

func (b mpBackend) Name() string { return fmt.Sprintf("mp:v%d", int(b.version)) }

// Validate checks the axial decomposition, the version request (the
// name pins the strategy; a contradicting Options.Version is an
// error), and the balance mode without building the ranks.
func (b mpBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	if _, err := resolveVersion(b.Name(), opts, b.version, b.version, b.version); err != nil {
		return err
	}
	if err := validateBalance(b.Name(), opts, false); err != nil {
		return err
	}
	if _, err := resolveProblem(cfg, g, opts); err != nil {
		return err
	}
	if _, err := resolveControl(b.Name(), opts); err != nil {
		return err
	}
	if err := validateGroup(b.Name(), opts.ReduceGroup, opts.procs()); err != nil {
		return err
	}
	d, err := decomp.Axial(g.Nx, opts.procs())
	if err != nil {
		return err
	}
	// A Wide policy's redundant shell must fit every rank; Validate
	// checks the uniform split (the cheap, probe-free approximation),
	// the runner the actual weighted one.
	widths := make([]int, opts.procs())
	for r := range widths {
		_, widths[r] = d.Range(r)
	}
	return par.CheckWideFit(cfg.Viscous, opts.Policy.Depth(), widths, "column")
}

func (b mpBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	v, err := resolveVersion(b.Name(), opts, b.version, b.version, b.version)
	if err != nil {
		return Result{}, err
	}
	colw, _, err := resolveWeights(b.Name(), cfg, g, opts, opts.procs(), 0)
	if err != nil {
		return Result{}, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ctl, err := resolveControl(b.Name(), opts)
	if err != nil {
		return Result{}, err
	}
	r, err := par.NewRunner(cfg, g, par.Options{
		Procs:       opts.procs(),
		Version:     v,
		Policy:      opts.Policy,
		CFL:         opts.CFL,
		ColWeights:  colw,
		Prob:        prob,
		ReduceGroup: opts.ReduceGroup,
	})
	if err != nil {
		return Result{}, err
	}
	pr := r.RunControlled(steps, ctl)
	res := Result{
		Backend:   b.Name(),
		Scenario:  opts.scenario(),
		Procs:     pr.Procs,
		Steps:     pr.Steps,
		Dt:        pr.Dt,
		Converged: pr.Converged,
		Residuals: pr.Residuals,
		Elapsed:   pr.Elapsed,
		Diag:      pr.Diag,
		Comm:      pr.TotalComm(),
		CommDir:   pr.TotalDir(),
		PerRank:   pr.Ranks,
		Fields:    r.GatherState(),
	}
	return res, nil
}
