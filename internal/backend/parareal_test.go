package backend

import (
	"testing"

	"repro/internal/solver"
)

// TestGoldenPararealVariants extends the checksum net to the parallel-
// in-time axis. At PararealIters = TimeSlices the corrected trajectory
// is the fine trajectory bitwise — the exactness frontier has crossed
// every slice — whatever the coarse propagator's quality, and with
// CoarseFactor 1 the coarse sweep is the fine operator itself, so the
// adaptive run converges with defect exactly zero and the same bitwise
// result. The fine propagator composes with the spatial backends
// through the registry, so the axial and 2-D rank runners are pinned
// here too.
func TestGoldenPararealVariants(t *testing.T) {
	assertGoldenVariants(t, func(goldenCase) []goldenVariant {
		return []goldenVariant{
			{"parareal", Options{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2}},
			{"parareal", Options{TimeSlices: 4, PararealIters: 4, CoarseFactor: 2}},
			{"parareal", Options{TimeSlices: 2, CoarseFactor: 1}},
			{"parareal", Options{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2, Fine: "mp:v5", Procs: 2, Policy: solver.Fresh}},
			{"parareal", Options{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2, Fine: "mp2d", Procs: 2, Policy: solver.Fresh}},
			// The default Lagged policy is promoted to Fresh for the fine
			// propagators (restart transparency), so the zero policy is
			// bitwise too.
			{"parareal", Options{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2, Fine: "mp:v5", Procs: 2}},
		}
	})
}

// TestPararealParity pins the defect-tolerance parity contract on every
// registered scenario: an adaptive run either converges — and then its
// terminal state matches the fine-propagator (serial) trajectory to the
// scale of the final defect — or caps at TimeSlices iterations, where
// the result is the fine trajectory bitwise.
func TestPararealParity(t *testing.T) {
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Get("parareal")
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	for name, c := range goldenCases() {
		cfg, g, baseOpts := goldenSetup(t, c)
		ref, err := ser.Run(cfg, g, baseOpts, c.Steps)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		opts := Options{Scenario: c.Scenario, TimeSlices: k, CoarseFactor: 2, DefectTol: 1e-2}
		res, err := par.Run(cfg, g, opts, c.Steps)
		if err != nil {
			t.Fatalf("%s: parareal: %v", name, err)
		}
		if res.TimeSlices != k || res.Iterations < 1 || res.Iterations > k {
			t.Fatalf("%s: result shape: slices=%d iters=%d", name, res.TimeSlices, res.Iterations)
		}
		if len(res.Residuals) != res.Iterations {
			t.Errorf("%s: %d defect-history points for %d iterations", name, len(res.Residuals), res.Iterations)
		}
		dist := defectL2(res.Fields, ref.Fields, g)
		switch {
		case res.Converged:
			if res.Defect > opts.DefectTol {
				t.Errorf("%s: converged with defect %g > tol %g", name, res.Defect, opts.DefectTol)
			}
			// The parity contract: the converged iterate tracks the fine
			// trajectory at the defect's own scale (2x covers the defect
			// measuring successive iterates, not the fine solution).
			if limit := 2 * res.Defect; dist > limit {
				t.Errorf("%s: converged at iter %d but L2 distance to serial %g > %g (defect %g)",
					name, res.Iterations, dist, limit, res.Defect)
			}
		default:
			if res.Iterations != k {
				t.Fatalf("%s: unconverged after %d < %d iterations", name, res.Iterations, k)
			}
			// Capped at K: every slice has absorbed an exact handoff, so
			// the trajectory is the fine run bitwise.
			if dist != 0 {
				t.Errorf("%s: iters=K result differs from serial: L2 %g", name, dist)
			}
		}
	}
}

// TestPararealRejections walks the validation surface: the
// parallel-in-time options are rejected on spatial backends (one
// shared gate in resolveControl), and the coordinator rejects
// convergence control, self-nesting, and slice counts the step budget
// cannot fill.
func TestPararealRejections(t *testing.T) {
	c := goldenCases()["ns-64x24"]
	cfg, g, _ := goldenSetup(t, c)
	cases := []struct {
		name    string
		backend string
		opts    Options
	}{
		{"spatial-time-slices", "serial", Options{TimeSlices: 4}},
		{"spatial-iters", "mp:v5", Options{Procs: 2, PararealIters: 2}},
		{"spatial-coarse", "shm", Options{Procs: 2, CoarseFactor: 2}},
		{"spatial-fine", "mp2d", Options{Procs: 2, Fine: "serial"}},
		{"spatial-defect-tol", "serial", Options{DefectTol: 1e-6}},
		{"one-slice", "parareal", Options{TimeSlices: 1}},
		{"self-nesting", "parareal", Options{TimeSlices: 2, Fine: "parareal"}},
		{"stop-tol", "parareal", Options{TimeSlices: 2, StopTol: 1e-4}},
		{"steady-tol", "parareal", Options{TimeSlices: 2, SteadyTol: 1e-4}},
		{"bad-iters", "parareal", Options{TimeSlices: 2, PararealIters: 3}},
		{"both-tols", "serial", Options{StopTol: 1e-4, SteadyTol: 1e-4}},
	}
	for _, tc := range cases {
		b, err := Get(tc.backend)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, tc.opts); err == nil {
			t.Errorf("%s: %s accepted %+v", tc.name, tc.backend, tc.opts)
		}
	}

	// More slices than steps only surfaces at Run time — the step budget
	// is a Run argument, not an option.
	par, err := Get("parareal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := par.Run(cfg, g, Options{TimeSlices: c.Steps + 1}, c.Steps); err == nil {
		t.Errorf("parareal accepted %d slices over %d steps", c.Steps+1, c.Steps)
	}
}
