// Package backend is the unified solver-backend layer: one interface
// over every execution style of the reproduction, selected by name
// through a registry. The paper's whole point is running the *same*
// Navier-Stokes computation across a variety of architectural
// platforms; this package makes that literal — callers pick a backend
// by name and get bitwise-identical physics however the sweeps are
// scheduled.
//
// Registered backends:
//
//	serial   single processor, one slab spanning the domain
//	shm      shared-memory DOALL loop parallelism (Cray Y-MP style)
//	mp:v5    message passing, grouped two-column halo messages
//	mp:v6    message passing, communication/computation overlap
//	mp:v7    message passing, de-burst one-column flux messages
//	mp2d     message passing over a 2-D (axial × radial) rank grid:
//	         ghost columns left/right plus ghost rows down/up
//	mp2d:v6  the rank grid with communication/computation overlap in
//	         both directions (interior core while messages fly)
//	hybrid   ranks × DOALL: axial rank decomposition with each rank's
//	         sweeps additionally split over a per-rank worker pool
//
// Distributed backends additionally take Options.Version: mp2d and
// hybrid accept the strategies they implement, the version-pinned
// names (mp:v5/v6/v7, mp2d:v6) reject a contradicting request. They
// also take Options.Balance — the decomposition cost model (uniform
// point counts, the analytic flops profile, or a measured warm-up) —
// which changes block shapes, never numerics.
//
// All backends run the identical slab engine of internal/solver, so
// under the Fresh halo policy every backend reproduces the serial
// arithmetic bitwise (asserted by TestBackendParity).
package backend

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/solver"
	"repro/internal/trace"
)

// Options configures a backend run. The zero value selects one rank /
// worker, the Lagged halo policy (the paper's message budget), and the
// default CFL number.
type Options struct {
	// Scenario names the registered flow problem (internal/scenario)
	// whose boundary conditions and initial state the slabs run. Empty
	// and "jet" both select the built-in excited jet. The caller is
	// responsible for passing a cfg and grid consistent with the
	// scenario (core.NewRun resolves both through the same registry);
	// scenarios validate what they can (the cavity rejects a grid
	// without its radial offset).
	Scenario string
	// Procs is the number of ranks (mp, hybrid) or DOALL workers (shm).
	// The serial backend ignores it. Zero means 1.
	Procs int
	// Workers is the per-rank DOALL pool size of the hybrid backend.
	// Zero picks a host-derived default (NumCPU/Procs, at least 1).
	Workers int
	// Px, Pr select the rank-grid shape of the mp2d backend (axial ×
	// radial). Both zero picks the surface-minimizing near-square shape
	// for Procs ranks; one of them set derives the other from Procs.
	// Other backends ignore them.
	Px, Pr int
	// Version requests a communication strategy (par.V5, V6, V7) from a
	// distributed backend. Zero means the backend's default. A backend
	// whose registry name pins a version (mp:v5, mp:v6, mp:v7, mp2d:v6)
	// rejects a contradicting request, and every backend rejects a
	// version it does not implement — never a silent downgrade.
	Version par.Version
	// Policy selects the halo treatment of the distributed backends:
	// Lagged matches the paper's Table 1 message budget, Fresh
	// reproduces the serial arithmetic bitwise.
	Policy solver.HaloPolicy
	// CFL overrides the Courant number (0 = solver.DefaultCFL).
	CFL float64
	// Balance selects the decomposition cost model of the distributed
	// backends: BalanceUniform (default) balances point counts,
	// BalanceFlops the analytic per-column/per-row FLOP profile
	// (boundary work included), BalanceMeasured a one-step warm-up run
	// whose busy times become the profile. Whatever the mode, blocks
	// change shape only — the physics stays bitwise-identical to serial
	// under the Fresh policy. serial and shm have no decomposition and
	// reject any non-uniform request.
	Balance string
	// ColWeights/RowWeights inject an explicit cost profile directly
	// (library callers and tests); they require Balance to be empty —
	// naming a mode and injecting a profile at the same time is an
	// error, never a silent pick. RowWeights applies only to the
	// row-decomposing mp2d backends; the axial-only backends reject it
	// rather than ignore it.
	ColWeights []float64
	RowWeights []float64
	// StopTol, when positive, turns the run into a convergence-
	// controlled one: it stops at the first monitored step whose
	// global L2 residual (RMS rate of change of the conserved state)
	// is at or below the tolerance, instead of marching the full step
	// count. Every backend honors it — distributed backends combine
	// per-slab partials through the allocation-free allreduce of
	// internal/par — and under the Fresh policy every backend stops on
	// the same step with bitwise-identical fields. (One caveat: the
	// residual is a tree sum whose grouping follows the decomposition,
	// so decompositions can disagree by ~1 ulp; a tolerance placed
	// within that margin of a monitored residual could stop one
	// backend a cadence later than another.)
	StopTol float64
	// ReduceEvery is the monitoring cadence in composite steps: the
	// residual sum and the global-dt max-reduction run every
	// ReduceEvery-th step, amortizing the collective. Zero means every
	// step when StopTol is set, and no monitoring at all otherwise.
	// Monitored runs also refresh the global CFL-stable dt from the
	// max-reduction at the same cadence.
	ReduceEvery int
	// ReduceGroup, when > 1, makes the distributed backends' allreduce
	// hierarchical: ranks combine within contiguous shared-memory nodes
	// of this size first, and only node leaders run the cross-node
	// recursive-doubling plan. The result stays bitwise-identical on
	// every rank. 0 or 1 keeps the flat plan; serial and shm have no
	// rank collectives and reject any hierarchical request.
	ReduceGroup int
	// SteadyTol, when positive, stops a monitored run on the velocity-
	// steadiness rate (max pointwise |du|,|dv| per unit time) instead of
	// the L2 residual — the criterion closed wall-driven scenarios need
	// (scenario.ConvergeSteadiness). Mutually exclusive with StopTol.
	SteadyTol float64
	// TimeSlices, when > 1, is the parallel-in-time width K of the
	// parareal backend: the step range is partitioned into K time
	// slices advanced concurrently by fine propagators and stitched by
	// Parareal corrections. Spatial backends reject values above 1
	// (core.Config.Canonical routes such configs here).
	TimeSlices int
	// PararealIters, when > 0, fixes the Parareal correction iteration
	// count (TimeSlices iterations reproduce the fine trajectory
	// bitwise). Zero iterates adaptively until the defect reaches
	// DefectTol, capped at TimeSlices.
	PararealIters int
	// CoarseFactor is the coarsening ratio of the parareal coarse
	// propagator: the coarse sweep runs on an (Nx/c)×(Nr/c) companion
	// grid with restriction/interpolation between grids, taking time
	// steps up to c× longer. 0 resolves to 2; 1 keeps the fine grid
	// (the coarse propagator then equals the fine one — useful for
	// pinning the machinery, pointless for speed).
	CoarseFactor int
	// DefectTol is the adaptive-mode convergence tolerance on the
	// Parareal defect: the maximum over time slices of the L2 delta
	// between successive slice initial states (plus the terminal-state
	// delta). 0 resolves to DefaultDefectTol; ignored when
	// PararealIters fixes the count.
	DefectTol float64
	// Fine names the registered spatial backend the parareal backend
	// runs inside each time slice ("" = serial). Procs/Workers/Px/Pr/
	// Version/Policy/Balance configure each slice's fine propagator.
	Fine string
}

// Balance modes of Options.Balance.
const (
	BalanceUniform  = "uniform"
	BalanceFlops    = "flops"
	BalanceMeasured = "measured"
)

// measuredProbeSteps is the warm-up length of the measured balance
// mode: one composite step resolves the per-rank busy skew without
// noticeably delaying the run it balances.
const measuredProbeSteps = 1

// resolveWeights maps the balance request onto per-column (and, for
// row-decomposing backends, per-row) cost profiles. nil profiles mean
// the uniform split. colProbe/rowProbe are the rank counts of the
// measured warm-up in each direction — the backend's resolved
// parallel widths, not the raw Procs field, so a shape given as Px/Pr
// probes at its real resolution. rowProbe zero marks a backend with no
// radial decomposition, for which an explicit row profile is an error.
func resolveWeights(name string, cfg jet.Config, g *grid.Grid, o Options, colProbe, rowProbe int) (col, row []float64, err error) {
	if err := validateBalance(name, o, rowProbe > 0); err != nil {
		return nil, nil, err
	}
	needRows := rowProbe > 0
	switch {
	case o.ColWeights != nil || o.RowWeights != nil:
		return o.ColWeights, o.RowWeights, nil
	case o.Balance == "" || o.Balance == BalanceUniform:
		return nil, nil, nil
	case o.Balance == BalanceFlops:
		col = solver.ColCostFlops(cfg, g)
		if needRows {
			row = solver.RowCostFlops(cfg, g)
		}
		return col, row, nil
	default: // BalanceMeasured; validateBalance excluded everything else
		col, err = par.MeasuredColWeights(cfg, g, colProbe, measuredProbeSteps)
		if err != nil {
			return nil, nil, err
		}
		if needRows {
			row, err = par.MeasuredRowWeights(cfg, g, rowProbe, measuredProbeSteps)
			if err != nil {
				return nil, nil, err
			}
		}
		return col, row, nil
	}
}

// validateBalance is the probe-free subset of resolveWeights used by
// Validate: it checks the mode name, the explicit-profile conflict,
// and that a row profile only reaches a backend that decomposes rows —
// all without running the measured warm-up.
func validateBalance(name string, o Options, needRows bool) error {
	switch o.Balance {
	case "", BalanceUniform, BalanceFlops, BalanceMeasured:
	default:
		return fmt.Errorf("backend: unknown balance mode %q (have %q, %q, %q)",
			o.Balance, BalanceUniform, BalanceFlops, BalanceMeasured)
	}
	if (o.ColWeights != nil || o.RowWeights != nil) && o.Balance != "" {
		return fmt.Errorf("backend: %s: explicit ColWeights/RowWeights contradict Balance %q", name, o.Balance)
	}
	if o.RowWeights != nil && !needRows {
		return fmt.Errorf("backend: %s decomposes columns only, a RowWeights profile does not apply", name)
	}
	return nil
}

// rejectBalance is validateBalance for backends with no decomposition:
// any non-uniform request is an error, mirroring rejectVersion.
func rejectBalance(name string, o Options) error {
	if o.Balance != "" && o.Balance != BalanceUniform {
		return fmt.Errorf("backend: %s has no decomposition, balance mode %q does not apply", name, o.Balance)
	}
	if o.ColWeights != nil || o.RowWeights != nil {
		return fmt.Errorf("backend: %s has no decomposition, explicit cost profiles do not apply", name)
	}
	return nil
}

// resolveControl maps the convergence-control request onto the
// solver's Control, rejecting nonsense values. Every backend supports
// convergence control (a serial slab's partial sums are already
// global), so unlike versions and balance modes there is nothing to
// reject per backend — only to validate.
func resolveControl(name string, o Options) (solver.Control, error) {
	if o.TimeSlices > 1 || o.PararealIters != 0 || o.CoarseFactor > 1 || o.DefectTol != 0 || o.Fine != "" {
		return solver.Control{}, fmt.Errorf("backend: %s is a spatial backend; the parallel-in-time options (TimeSlices/PararealIters/CoarseFactor/DefectTol/Fine) require the parareal backend", name)
	}
	if o.StopTol < 0 {
		return solver.Control{}, fmt.Errorf("backend: %s: negative stop tolerance %g", name, o.StopTol)
	}
	if o.SteadyTol < 0 {
		return solver.Control{}, fmt.Errorf("backend: %s: negative steadiness tolerance %g", name, o.SteadyTol)
	}
	if o.StopTol > 0 && o.SteadyTol > 0 {
		return solver.Control{}, fmt.Errorf("backend: %s: StopTol and SteadyTol are exclusive convergence criteria; set one", name)
	}
	if o.ReduceEvery < 0 {
		return solver.Control{}, fmt.Errorf("backend: %s: negative reduction cadence %d", name, o.ReduceEvery)
	}
	return solver.Control{StopTol: o.StopTol, SteadyTol: o.SteadyTol, ReduceEvery: o.ReduceEvery, CFL: o.cfl()}, nil
}

// scenario resolves the scenario tag ("" means the built-in jet).
func (o Options) scenario() string {
	if o.Scenario == "" {
		return "jet"
	}
	return o.Scenario
}

// resolveProblem maps Options.Scenario onto the solver problem every
// slab runs. The empty string short-circuits to nil — byte-for-byte
// the pre-registry jet path — while named scenarios (including "jet")
// resolve through the registry, so an unknown name surfaces the
// available list and a scenario can validate cfg and grid.
func resolveProblem(cfg jet.Config, g *grid.Grid, o Options) (*solver.Problem, error) {
	if o.Scenario == "" {
		return nil, nil
	}
	sc, err := scenario.Get(o.Scenario)
	if err != nil {
		return nil, err
	}
	return sc.Problem(cfg, g)
}

// cfl resolves the Courant number.
func (o Options) cfl() float64 {
	if o.CFL == 0 {
		return solver.DefaultCFL
	}
	return o.CFL
}

// procs resolves the parallel width.
func (o Options) procs() int {
	if o.Procs < 1 {
		return 1
	}
	return o.Procs
}

// resolveVersion reconciles the registry-level version request with a
// backend. def is the backend's default (used when the request is
// zero); supported lists what the backend implements; pinned, when
// nonzero, is the version the backend's registry name hard-wires (a
// contradicting request is an error, not a downgrade).
func resolveVersion(name string, o Options, def, pinned par.Version, supported ...par.Version) (par.Version, error) {
	v := o.Version
	if v == 0 {
		if pinned != 0 {
			return pinned, nil
		}
		return def, nil
	}
	if pinned != 0 && v != pinned {
		// Point at the registry name that does implement the request:
		// the version-suffixed sibling (mp:v6) or, where the requested
		// version is the unsuffixed default, the base name (mp2d). A
		// request no registered name implements gets no suggestion.
		base := strings.SplitN(name, ":", 2)[0]
		suggest := ""
		for _, cand := range []string{fmt.Sprintf("%s:v%d", base, int(v)), base} {
			if _, ok := backends.Get(cand); ok {
				suggest = fmt.Sprintf(" (select %s instead)", cand)
				break
			}
		}
		return 0, fmt.Errorf("backend: %s pins communication Version %d, contradicting the requested Version %d%s",
			name, int(pinned), int(v), suggest)
	}
	for _, s := range supported {
		if v == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("backend: %s does not implement communication Version %d", name, int(v))
}

// rejectVersion is resolveVersion for backends with no message layer:
// any explicit version request is an error.
func rejectVersion(name string, o Options) error {
	if o.Version != 0 {
		return fmt.Errorf("backend: %s has no message layer, communication Version %d does not apply", name, int(o.Version))
	}
	return nil
}

// rejectWide is the communication-avoiding counterpart of
// rejectVersion: a backend running a single slab has no rank halos to
// widen and no rank collectives to group, so a Wide halo policy or a
// hierarchical-reduce request is an error, never a silent ignore.
func rejectWide(name string, o Options) error {
	if o.Policy.Depth() > 1 {
		return fmt.Errorf("backend: %s runs a single slab with no rank halos; the %v policy requires a distributed backend", name, o.Policy)
	}
	if o.ReduceGroup > 1 {
		return fmt.Errorf("backend: %s has no rank collectives, reduce group %d does not apply", name, o.ReduceGroup)
	}
	return nil
}

// validateGroup is the early (probe-free) check of a hierarchical-
// reduce request against the resolved rank count; the runner's
// combiner construction repeats it authoritatively.
func validateGroup(name string, group, procs int) error {
	if group < 0 {
		return fmt.Errorf("backend: %s: reduce group must be >= 1, got %d", name, group)
	}
	if group > procs {
		return fmt.Errorf("backend: %s: reduce group %d exceeds the %d ranks of the run", name, group, procs)
	}
	return nil
}

// Result reports a completed backend run.
type Result struct {
	Backend string
	// Scenario is the flow problem the run solved ("jet" when Options
	// left it unset).
	Scenario string
	Procs   int // ranks (mp, hybrid) or workers (shm), 1 for serial
	Workers int // per-rank DOALL workers (hybrid), 0 otherwise
	// Steps is the number of composite steps actually run — fewer
	// than requested when StopTol stopped the run early.
	Steps int
	Dt    float64
	// Converged reports that the run stopped on StopTol; Residuals is
	// the monitored convergence history (empty without monitoring).
	Converged bool
	Residuals []solver.ResidualPoint
	Elapsed   time.Duration
	Diag      solver.Diagnostics
	// Px, Pr is the rank-grid shape (mp2d), 0 otherwise.
	Px, Pr int
	// TimeSlices and Iterations report a parareal run's composition:
	// the time-slice count K and the correction iterations actually
	// run. Defect is the final global Parareal defect (max over slices
	// of the L2 delta between successive iterates); all zero for
	// spatial backends.
	TimeSlices int
	Iterations int
	Defect     float64
	// Comm aggregates the message-layer counters (mp, mp2d, hybrid).
	Comm trace.Counters
	// CommDir splits Comm by exchange direction; Radial is nonzero only
	// for the 2-D decomposition.
	CommDir trace.DirCounters
	// PerRank is the per-rank execution profile (mp, hybrid).
	PerRank []par.RankStats
	// Fields is the gathered full-domain conserved state (interior
	// values), the basis for cross-backend parity checks.
	Fields *flux.State
}

// Momentum extracts the axial momentum field rho*u (the quantity
// contoured in the paper's Figure 1) from the gathered state.
func (r *Result) Momentum() [][]float64 {
	nx := r.Fields[flux.IMx].Nx
	nr := r.Fields[flux.IMx].Nr
	flat := make([]float64, nx*nr)
	out := make([][]float64, nx)
	for i := 0; i < nx; i++ {
		col := flat[i*nr : (i+1)*nr]
		copy(col, r.Fields[flux.IMx].Col(i))
		out[i] = col
	}
	return out
}

// Backend is one execution style of the solver. Run is one-shot: it
// builds the solver configuration, advances the given number of
// composite steps, releases any worker pools, and reports.
type Backend interface {
	Name() string
	Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error)
}

// validator is an optional Backend extension: a cheap configuration
// check without building the solver (used by core.NewRun to fail early
// on, e.g., a decomposition with slabs below the stencil width).
type validator interface {
	Validate(cfg jet.Config, g *grid.Grid, opts Options) error
}

// Validate checks opts against b without running it. Backends that do
// not implement the optional validator accept everything here and
// report errors from Run instead.
func Validate(b Backend, cfg jet.Config, g *grid.Grid, opts Options) error {
	if v, ok := b.(validator); ok {
		return v.Validate(cfg, g, opts)
	}
	return nil
}

// backends maps backend names to implementations. Registration happens
// in package init functions, but a serving process resolves names from
// concurrently executing runs, so the table is the mutex-guarded
// registry type — bare map reads beside a late Register (tests, future
// plug-in backends) would be a data race.
var backends = registry.New[Backend]()

// register adds b under its name; duplicate names are a programming
// error.
func register(b Backend) {
	if !backends.Add(b.Name(), b) {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
}

// Get resolves a backend by name. The error lists the registered names
// so callers can surface it directly as CLI help text.
func Get(name string) (Backend, error) {
	b, ok := backends.Get(name)
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	return backends.Names()
}

// gatherSlab copies the interior of a full-domain slab's state.
func gatherSlab(g *grid.Grid, q *flux.State) *flux.State {
	full := flux.NewState(g.Nx, g.Nr)
	for k := 0; k < flux.NVar; k++ {
		for c := 0; c < g.Nx; c++ {
			copy(full[k].Col(c), q[k].Col(c))
		}
	}
	return full
}
