package backend

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

// TestGoldenWideVariants extends the checksum net to the
// communication-avoiding Wide(k) halo policy: ranks carry a redundant
// ghost shell and exchange every k-th step, yet must reproduce the
// serial field bits exactly — on both decompositions, the overlapped
// and de-burst strategies, the hybrid composition, and a weighted
// split. Wide(1) rides along to pin that it is literally Fresh.
func TestGoldenWideVariants(t *testing.T) {
	assertGoldenVariants(t, func(c goldenCase) []goldenVariant {
		// Depth-k feasibility on these small grids depends on the shell
		// growth rate: the viscous stencil corrupts 12 points per skipped
		// step, the inviscid one 4, and every rank must keep ext+2 points.
		viscous := !c.Euler
		vs := []goldenVariant{
			{"mp:v5", Options{Procs: 3, Policy: solver.Wide(1)}},
			{"mp:v5", Options{Procs: 2, Policy: solver.Wide(2)}},
			{"mp:v5", Options{Procs: 3, Policy: solver.Wide(2)}},
			{"mp:v6", Options{Procs: 2, Policy: solver.Wide(2)}},
			{"mp:v7", Options{Procs: 2, Policy: solver.Wide(2)}},
			{"hybrid", Options{Procs: 2, Workers: 2, Policy: solver.Wide(2)}},
		}
		if viscous {
			// The 12-point viscous shell exceeds the 24-row goldens'
			// half-height, so the rank grid stays one block tall.
			vs = append(vs,
				goldenVariant{"mp2d", Options{Px: 2, Pr: 1, Policy: solver.Wide(2)}},
				goldenVariant{"mp2d:v6", Options{Px: 2, Pr: 1, Policy: solver.Wide(2)}},
			)
		} else {
			vs = append(vs,
				goldenVariant{"mp2d", Options{Px: 2, Pr: 2, Policy: solver.Wide(2)}},
				goldenVariant{"mp2d:v6", Options{Px: 2, Pr: 2, Policy: solver.Wide(2)}},
				goldenVariant{"mp:v5", Options{Procs: 3, Policy: solver.Wide(4)}},
				goldenVariant{"mp2d", Options{Px: 2, Pr: 1, Policy: solver.Wide(4)}},
				goldenVariant{"hybrid", Options{Procs: 2, Workers: 2, Policy: solver.Wide(4)}},
				goldenVariant{"mp:v5", Options{Procs: 2, Policy: solver.Wide(2), ColWeights: testRamp(c.Nx)}},
			)
		}
		return vs
	})
}

// TestWideDeepViscousParity covers the viscous Wide(4) depth the golden
// grids are too small for: a 36-point shell on a 96-column grid, checked
// bitwise against serial through the grouped and de-burst strategies.
func TestWideDeepViscousParity(t *testing.T) {
	const steps = 8
	cfg := jet.Paper()
	g := grid.MustNew(96, 32, 50, 5)
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ser.Run(cfg, g, Options{}, steps)
	if err != nil {
		t.Fatal(err)
	}
	refSum := fieldChecksum(ref.Fields)
	for _, name := range []string{"mp:v5", "mp:v7"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(cfg, g, Options{Procs: 2, Policy: solver.Wide(4)}, steps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sum := fieldChecksum(res.Fields); sum != refSum {
			t.Errorf("%s wide(4) checksum %016x != serial %016x", name, sum, refSum)
		}
	}
}

// TestWideMessageBudget pins the communication-avoiding arithmetic on a
// two-rank Navier-Stokes run: 8 steps exchange on steps 0,2,4,6 only,
// with a shell refresh before each exchange step after the first. The
// per-direction counters must show exactly the halved exchange budget
// plus the refresh traffic, book the skipped stages as saved startups,
// and break the shell's extra work out as redundant flops — while the
// physics stays bitwise-identical to the per-stage schedule.
func TestWideMessageBudget(t *testing.T) {
	const steps = 8
	cfg := jet.Paper()
	g := testGrid(t)
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := b.Run(cfg, g, Options{Procs: 2, Policy: solver.Fresh}, steps)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := b.Run(cfg, g, Options{Procs: 2, Policy: solver.Wide(2)}, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Identical physics first: the budget is only interesting if the
	// cadence changed nothing about the answer.
	if math.Float64bits(wide.Diag.Mass) != math.Float64bits(fresh.Diag.Mass) ||
		math.Float64bits(wide.Diag.Energy) != math.Float64bits(fresh.Diag.Energy) {
		t.Fatalf("wide(2) diagnostics %+v != fresh %+v", wide.Diag, fresh.Diag)
	}
	// Fresh: 6 exchanges per composite step, each costing both ranks a
	// send and a receive — 24 startups per step, 192 over 8 steps.
	if fresh.Comm.Startups != 192 {
		t.Fatalf("fresh startups %d, want 192", fresh.Comm.Startups)
	}
	// Wide(2): the 4 exchange steps keep the full 24, the 3 refreshes
	// (every exchange step but the first) cost one send + one receive per
	// rank: 4*24 + 3*4 = 108.
	if wide.Comm.Startups != 108 {
		t.Errorf("wide(2) startups %d, want 108", wide.Comm.Startups)
	}
	// The 4 skipped steps' 24 startups each are booked as saved.
	if saved := wide.CommDir.Total().SavedStartups; saved != 96 {
		t.Errorf("wide(2) saved startups %d, want 96", saved)
	}
	if fresh.CommDir.Total().SavedStartups != 0 {
		t.Errorf("fresh booked %d saved startups, want 0", fresh.CommDir.Total().SavedStartups)
	}
	var freshRed, wideRed float64
	for _, rs := range fresh.PerRank {
		freshRed += rs.RedundantFlops
	}
	for _, rs := range wide.PerRank {
		wideRed += rs.RedundantFlops
	}
	if freshRed != 0 {
		t.Errorf("fresh booked %g redundant flops, want 0", freshRed)
	}
	if wideRed <= 0 {
		t.Errorf("wide(2) booked %g redundant flops, want > 0", wideRed)
	}
}

// TestWideRejectedBySingleSlabBackends: the single-slab backends have no
// rank halos and no collectives, so a Wide policy or a reduce group must
// fail Validate and Run with an actionable error, never run degenerately.
func TestWideRejectedBySingleSlabBackends(t *testing.T) {
	cfg := jet.Paper()
	g := testGrid(t)
	for _, name := range []string{"serial", "shm"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []Options{
			{Procs: 1, Policy: solver.Wide(2)},
			{Procs: 1, ReduceGroup: 2},
		} {
			if name == "shm" {
				o.Procs = 2
			}
			if err := Validate(b, cfg, g, o); err == nil {
				t.Errorf("%s: Validate accepted %+v", name, o)
			}
			if _, err := b.Run(cfg, g, o, 1); err == nil {
				t.Errorf("%s: Run accepted %+v", name, o)
			}
		}
	}
}

// TestWideValidateCatchesNarrowSlabs: a shell deeper than the narrowest
// rank's span must fail validation before any rank is built, naming the
// deepest feasible depth.
func TestWideValidateCatchesNarrowSlabs(t *testing.T) {
	cfg := jet.Paper()
	g := testGrid(t)
	// 8 viscous ranks own 8 columns each; Wide(2) needs 12+2.
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(b, cfg, g, Options{Procs: 8, Policy: solver.Wide(2)}); err == nil {
		t.Error("mp:v5: 8 ranks on 64 columns accepted a 12-point shell")
	}
	// The radial direction is checked too: 12-row blocks cannot host it.
	m2, err := Get("mp2d")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m2, cfg, g, Options{Px: 1, Pr: 2, Policy: solver.Wide(2)}); err == nil {
		t.Error("mp2d: 12-row blocks accepted a 12-point radial shell")
	}
	// Group sizes beyond the world are caught at the same layer.
	if err := Validate(b, cfg, g, Options{Procs: 2, ReduceGroup: 4}); err == nil {
		t.Error("mp:v5: reduce group 4 accepted on a 2-rank world")
	}
	if err := Validate(b, cfg, g, Options{Procs: 2, ReduceGroup: -1}); err == nil {
		t.Error("mp:v5: negative reduce group accepted")
	}
}

// FuzzWideHalo drives the Wide(k) machinery across arbitrary small
// grids, rank counts (both decompositions), depths, and step counts:
// whenever validation admits the configuration it must reproduce the
// serial field bits exactly — non-divisible splits included.
func FuzzWideHalo(f *testing.F) {
	f.Add(24, 12, 2, 2, 3, false)
	f.Add(33, 14, 3, 2, 2, false) // non-divisible axial split
	f.Add(46, 18, 3, 4, 2, false) // deep shell
	f.Add(25, 13, 2, 3, 2, false)
	f.Add(24, 14, 4, 2, 2, true) // 2x2 rank grid
	f.Add(27, 15, 3, 2, 3, true) // 3x1 or 1x3 auto shape, odd spans
	f.Fuzz(func(t *testing.T, nx, nr, procs, depth, steps int, twoD bool) {
		nx = 12 + abs(nx)%37   // 12..48
		nr = 8 + abs(nr)%17    // 8..24
		procs = 1 + abs(procs)%4
		depth = 1 + abs(depth)%5
		steps = 1 + abs(steps)%4
		cfg := jet.Euler()
		g, err := grid.New(nx, nr, 50, 5)
		if err != nil {
			t.Skip()
		}
		name := "mp:v5"
		if twoD {
			name = "mp2d"
		}
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Procs: procs, Policy: solver.Wide(depth)}
		if err := Validate(b, cfg, g, o); err != nil {
			t.Skip() // shell does not fit this decomposition
		}
		ser, err := Get("serial")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ser.Run(cfg, g, Options{}, steps)
		if err != nil {
			t.Skip() // configuration the serial solver itself rejects
		}
		res, err := b.Run(cfg, g, o, steps)
		if err != nil {
			t.Fatalf("%s %dx%d procs=%d wide(%d): %v", name, nx, nr, procs, depth, err)
		}
		if sum, want := fieldChecksum(res.Fields), fieldChecksum(ref.Fields); sum != want {
			t.Errorf("%s %dx%d procs=%d wide(%d) steps=%d: checksum %016x != serial %016x",
				name, nx, nr, procs, depth, steps, sum, want)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
