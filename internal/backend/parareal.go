package backend

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/decomp"
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/msg"
	"repro/internal/par"
	"repro/internal/solver"
)

func init() { register(pararealBackend{}) }

// DefaultDefectTol is the adaptive-mode convergence tolerance on the
// Parareal defect when Options.DefectTol is unset. The conserved state
// is O(1) in the nondimensionalization, so 1e-6 is a ~six-digit match
// between successive iterates.
const DefaultDefectTol = 1e-6

// pararealBackend composes ranks × threads × time-slices: the step
// range [0, steps) is partitioned into K time slices, a cheap coarse
// propagator (big-dt MacCormack on a coarsened companion grid, with
// bilinear restriction/interpolation between grids) sweeps the slices
// serially to seed initial states, and Parareal correction iterations
//
//	U_{k+1} <- G(U_k^new) + F(U_k^old) - G(U_k^old)
//
// stitch the slices together, where each slice's fine propagator F is
// any registered spatial backend resolved through the registry
// (Options.Fine). The slice ranks run as goroutines over the message
// layer, handing whole states along SliceStateTag; convergence is the
// defect — the max over slices of the L2 delta between successive
// iterates — reduced on the handoff itself and broadcast back by the
// terminal rank.
//
// Exactness rides the handoff as a flag: slice 0's initial state is the
// true initial condition, and a slice whose F ran from an exact state
// hands F's output onward exact, skipping the correction arithmetic
// (in floating point G(u)+(F(u)-G(u)) != F(u), so the flag — not the
// formula — is what makes the frontier bitwise). The frontier advances
// one slice per iteration, so after K iterations the terminal state is
// bitwise-identical to the fine backend run serially in time; adaptive
// runs (PararealIters 0) therefore cap at K iterations.
type pararealBackend struct{}

func (pararealBackend) Name() string { return "parareal" }

// pararealPlan is the resolved parareal configuration.
type pararealPlan struct {
	k        int     // time slices
	iters    int     // fixed correction iterations; 0 = adaptive
	tol      float64 // adaptive defect tolerance
	c        int     // coarsening factor (1 = fine grid)
	fineName string
	fine     Backend
	fineOpts Options
	gc       *grid.Grid // coarse companion grid; nil when c == 1
}

// resolve validates the parallel-in-time options and the fine backend's
// spatial options (steps-dependent checks live in Run: Validate has no
// step count).
func (b pararealBackend) resolve(cfg jet.Config, g *grid.Grid, opts Options) (pararealPlan, error) {
	var p pararealPlan
	p.k = opts.TimeSlices
	if p.k < 2 {
		return p, fmt.Errorf("backend: parareal needs TimeSlices >= 2, got %d (a single slice is the fine backend run directly)", opts.TimeSlices)
	}
	if opts.StopTol != 0 || opts.SteadyTol != 0 || opts.ReduceEvery != 0 {
		return p, fmt.Errorf("backend: parareal: convergence control (StopTol/SteadyTol/ReduceEvery) does not compose with the fixed time-slice partitioning; run the fine backend directly for a controlled march")
	}
	p.iters = opts.PararealIters
	if p.iters < 0 {
		return p, fmt.Errorf("backend: parareal: negative iteration count %d", p.iters)
	}
	if p.iters > p.k {
		return p, fmt.Errorf("backend: parareal: %d iterations exceed the %d time slices; the terminal state is exact after TimeSlices iterations, more are no-ops", p.iters, p.k)
	}
	p.tol = opts.DefectTol
	if p.tol < 0 {
		return p, fmt.Errorf("backend: parareal: negative defect tolerance %g", p.tol)
	}
	if p.tol == 0 {
		p.tol = DefaultDefectTol
	}
	p.c = opts.CoarseFactor
	if p.c < 0 {
		return p, fmt.Errorf("backend: parareal: negative coarse factor %d", p.c)
	}
	if p.c == 0 {
		p.c = 2
	}
	if p.c > 1 {
		gc, err := grid.NewOffset(g.Nx/p.c, g.Nr/p.c, g.Lx, g.Lr, g.R0)
		if err != nil {
			return p, fmt.Errorf("backend: parareal: coarse factor %d leaves no valid %dx%d coarse grid (%v); use CoarseFactor 1 to keep the fine grid", p.c, g.Nx/p.c, g.Nr/p.c, err)
		}
		if _, err := resolveProblem(cfg, gc, opts); err != nil {
			return p, fmt.Errorf("backend: parareal: coarse grid: %w", err)
		}
		p.gc = gc
	}
	p.fineName = opts.Fine
	if p.fineName == "" {
		p.fineName = "serial"
	}
	if p.fineName == b.Name() {
		return p, fmt.Errorf("backend: parareal cannot nest itself as the fine propagator")
	}
	fine, err := Get(p.fineName)
	if err != nil {
		return p, err
	}
	if _, ok := fine.(propagatorProvider); !ok {
		return p, fmt.Errorf("backend: %s cannot serve as a parareal fine propagator", p.fineName)
	}
	p.fine = fine
	fo := opts
	fo.TimeSlices, fo.PararealIters, fo.CoarseFactor, fo.DefectTol, fo.Fine = 0, 0, 0, 0, ""
	fo.StopTol, fo.SteadyTol, fo.ReduceEvery = 0, 0, 0
	// The Lagged policy reuses the previous composite step's ghost
	// columns in the radial sweep, so it is not restart-transparent —
	// a reseeded slice would diverge from the continuous trajectory.
	// Promote the default to Fresh; Wide(k) shells reload exactly and
	// pass through.
	if fo.Policy == solver.Lagged {
		fo.Policy = solver.Fresh
	}
	if err := Validate(fine, cfg, g, fo); err != nil {
		return p, fmt.Errorf("backend: parareal fine propagator %s: %w", p.fineName, err)
	}
	p.fineOpts = fo
	return p, nil
}

// Validate implements the optional validator extension.
func (b pararealBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	_, err := b.resolve(cfg, g, opts)
	return err
}

// coarseProp is one slice's coarse propagator G: restrict the fine
// state onto the companion grid, run m big-dt MacCormack steps on a
// serial slab, and interpolate back. Reseeding the clock every
// evaluation makes G a pure function of its input — the property the
// correction formula needs (G(U_k^old) must mean the same thing in both
// iterations it appears in).
type coarseProp struct {
	sl        *solver.Slab
	gf, gc    *grid.Grid
	qc        *flux.State // coarse-grid scratch; nil when gc == gf
	m         int         // coarse steps per evaluation
	dtc       float64
	startStep int
	t0        float64
}

// newCoarse builds the coarse propagator of the slice [s0, s0+n). With
// a 1:1 factor the fine grid object itself is reused and the coarse
// step equals dtF exactly, so G reproduces the serial fine propagator
// bitwise (the machinery-pinning configuration). Otherwise the slice's
// n fine steps become ceil(n/c) coarse steps, stretched back only if
// the coarse grid's own t=0 stability limit demands more.
func newCoarse(cfg jet.Config, g *grid.Grid, plan pararealPlan, opts Options, s0, n int, dtF float64) (*coarseProp, error) {
	cp := &coarseProp{gf: g, gc: plan.gc, startStep: s0, t0: float64(s0) * dtF}
	if cp.gc == nil {
		cp.gc = g
	} else {
		cp.qc = flux.NewState(cp.gc.Nx, cp.gc.Nr)
	}
	prob, err := resolveProblem(cfg, cp.gc, opts)
	if err != nil {
		return nil, err
	}
	s, err := solver.NewSerialProblemCFL(cfg, prob, cp.gc, opts.cfl())
	if err != nil {
		return nil, err
	}
	cp.sl = s.Slab
	if plan.c == 1 {
		cp.m, cp.dtc = n, dtF
		return cp, nil
	}
	m := (n + plan.c - 1) / plan.c
	if stable := s.Dt; stable > 0 {
		if need := int(math.Ceil(float64(n) * dtF / stable)); need > m {
			m = need
		}
	}
	cp.m = m
	cp.dtc = float64(n) * dtF / float64(m)
	return cp, nil
}

// eval computes out = G(in), both on the fine grid.
func (cp *coarseProp) eval(in, out *flux.State) {
	if cp.qc == nil {
		cp.sl.LoadState(in)
	} else {
		solver.Resample(cp.qc, cp.gc, in, cp.gf)
		cp.sl.LoadState(cp.qc)
	}
	cp.sl.SetClock(cp.startStep, cp.t0, cp.dtc)
	for i := 0; i < cp.m; i++ {
		cp.sl.Advance()
	}
	if cp.qc == nil {
		cp.sl.StoreState(out)
	} else {
		cp.sl.StoreState(cp.qc)
		solver.Resample(out, cp.gf, cp.qc, cp.gc)
	}
}

// defectL2 is the L2 norm of the interior delta between two states
// with a fixed summation order (column-major, components innermost), so
// a given slice partition reproduces its defect bitwise on every run.
func defectL2(a, b *flux.State, g *grid.Grid) float64 {
	sum := 0.0
	for c := 0; c < g.Nx; c++ {
		var ca, cb [flux.NVar][]float64
		for k := 0; k < flux.NVar; k++ {
			ca[k], cb[k] = a[k].Col(c), b[k].Col(c)
		}
		for j := 0; j < g.Nr; j++ {
			for k := 0; k < flux.NVar; k++ {
				d := ca[k][j] - cb[k][j]
				sum += d * d
			}
		}
	}
	return math.Sqrt(sum / float64(g.Nx*g.Nr*flux.NVar))
}

// correct applies the Parareal update out = gNew + f - gOld pointwise
// over the interior.
func correct(out, gNew, f, gOld *flux.State, g *grid.Grid) {
	for c := 0; c < g.Nx; c++ {
		for k := 0; k < flux.NVar; k++ {
			o, gn, ff, og := out[k].Col(c), gNew[k].Col(c), f[k].Col(c), gOld[k].Col(c)
			for j := range o {
				o[j] = gn[j] + ff[j] - og[j]
			}
		}
	}
}

// copyState deep-copies a conservative state.
func copyState(dst, src *flux.State) {
	for k := 0; k < flux.NVar; k++ {
		dst[k].CopyFrom(src[k])
	}
}

// pararealStop is the shared stop rule every slice rank evaluates on
// the identical broadcast defect, so all ranks exit on the same
// iteration.
func pararealStop(defect float64, iter, maxIters int, adaptive bool, tol float64) bool {
	if adaptive && defect <= tol {
		return true
	}
	return iter >= maxIters
}

func (b pararealBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	plan, err := b.resolve(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	dec, err := decomp.WeightedTimeSlices(steps, plan.k, nil)
	if err != nil {
		return Result{}, fmt.Errorf("backend: parareal: %w", err)
	}
	K := plan.k
	props := make([]Propagator, K)
	defer func() {
		for _, p := range props {
			if p != nil {
				p.Close()
			}
		}
	}()
	for k := range props {
		if props[k], err = NewPropagator(plan.fine, cfg, g, plan.fineOpts); err != nil {
			return Result{}, err
		}
	}
	dtF := props[0].Dt()
	for k := 1; k < K; k++ {
		if props[k].Dt() != dtF {
			return Result{}, fmt.Errorf("backend: parareal: fine propagators disagree on dt (%g vs %g)", props[k].Dt(), dtF)
		}
	}
	coarse := make([]*coarseProp, K)
	for k := range coarse {
		s0, n := dec.Range(k)
		if coarse[k], err = newCoarse(cfg, g, plan, opts, s0, n, dtF); err != nil {
			return Result{}, err
		}
	}
	maxIters := plan.iters
	adaptive := maxIters == 0
	if adaptive {
		maxIters = K
	}
	world := msg.NewWorld(K)
	scs := make([]*par.SliceComm, K)
	for k := range scs {
		scs[k] = par.NewSliceComm(world.Comm(k), g.Nx, g.Nr)
	}

	// Written only by the terminal slice rank, read after the join.
	terminal := flux.NewState(g.Nx, g.Nr)
	var history []solver.ResidualPoint
	var finalDefect float64
	var itersRun int

	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < K; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sc := scs[k]
			s0, n := dec.Range(k)
			u := flux.NewState(g.Nx, g.Nr)
			f := flux.NewState(g.Nx, g.Nr)
			gOld := flux.NewState(g.Nx, g.Nr)
			gNew := flux.NewState(g.Nx, g.Nr)
			out := flux.NewState(g.Nx, g.Nr)
			var uNew, outPrev *flux.State
			if k > 0 {
				uNew = flux.NewState(g.Nx, g.Nr)
			}
			if k == K-1 {
				outPrev = flux.NewState(g.Nx, g.Nr)
			}

			// Iteration 0: the pipelined coarse init sweep. Slice 0's
			// initial state is the true t=0 condition (read from its
			// freshly-built fine propagator); each later slice receives
			// the coarse prediction and hands its own G onward. The G
			// each rank computes here is exactly the G(U_k^old) the
			// first correction needs — the gOld cache falls out of the
			// sweep for free.
			exact := k == 0
			if k == 0 {
				props[0].State(u)
			} else {
				exact, _ = sc.RecvState(k-1, u)
			}
			coarse[k].eval(u, gOld)
			if k < K-1 {
				sc.SendState(k+1, gOld, false, 0)
			}

			fExact, sentExact := false, false
			for iter := 1; ; iter++ {
				// Fine propagation of this slice from its current
				// initial state — all slices in parallel. Once this
				// rank has handed an exact state onward its output can
				// never change again; skip the recompute and resend.
				if !sentExact {
					props[k].Seed(u, s0)
					props[k].Advance(n)
					props[k].State(f)
					fExact = exact
				}
				// Sequential correction sweep, rank k-1 -> k, carrying
				// the running defect maximum.
				var defect float64
				var send *flux.State
				sendExact := false
				if k == 0 {
					// The first slice's initial state never changes, so
					// F(U_0) is the true trajectory: hand it on exact.
					send, sendExact = f, true
				} else {
					inExact, dIn := sc.RecvState(k-1, uNew)
					defect = math.Max(dIn, defectL2(uNew, u, g))
					if inExact && fExact {
						// The state F ran from was already exact and the
						// incoming exact state is bitwise the same one:
						// F's output is the true trajectory.
						send, sendExact = f, true
					} else {
						coarse[k].eval(uNew, gNew)
						correct(out, gNew, f, gOld, g)
						gOld, gNew = gNew, gOld
						copyState(u, uNew)
						exact = inExact
						send = out
					}
				}
				sentExact = sentExact || sendExact
				if k < K-1 {
					sc.SendState(k+1, send, sendExact, defect)
					gd := sc.RecvVerdict(K - 1)
					if pararealStop(gd, iter, maxIters, adaptive, plan.tol) {
						return
					}
				} else {
					// Terminal slice: `send` is the run's result. Fold
					// in the terminal-state delta (undefined on the
					// first iteration — no previous iterate), broadcast
					// the verdict, and stop in lockstep with the rest.
					dTerm := math.Inf(1)
					if iter > 1 {
						dTerm = defectL2(send, outPrev, g)
					}
					defect = math.Max(defect, dTerm)
					copyState(outPrev, send)
					history = append(history, solver.ResidualPoint{Step: iter, Residual: defect})
					for r := 0; r < K-1; r++ {
						sc.SendVerdict(r, defect)
					}
					if pararealStop(defect, iter, maxIters, adaptive, plan.tol) {
						copyState(terminal, send)
						finalDefect, itersRun = defect, iter
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Diagnostics of the terminal state, through a plain serial slab on
	// the fine grid.
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ds, err := solver.NewSerialProblemCFL(cfg, prob, g, opts.cfl())
	if err != nil {
		return Result{}, err
	}
	ds.LoadState(terminal)

	res := Result{
		Backend:    b.Name(),
		Scenario:   opts.scenario(),
		Procs:      opts.procs(),
		Steps:      steps,
		Dt:         dtF,
		Converged:  adaptive && finalDefect <= plan.tol,
		Residuals:  history,
		Elapsed:    elapsed,
		Diag:       ds.Diagnose(),
		TimeSlices: K,
		Iterations: itersRun,
		Defect:     finalDefect,
		Fields:     terminal,
	}
	for k := 0; k < K; k++ {
		c := world.Comm(k)
		res.Comm.Merge(c.Counters)
		res.PerRank = append(res.PerRank, par.RankStats{Rank: k, Comm: c.Counters, Wait: c.WaitTime})
	}
	return res, nil
}
