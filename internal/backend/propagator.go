package backend

import (
	"fmt"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/shm"
	"repro/internal/solver"
)

// Propagator is the Parareal view of a spatial backend: a solver that
// can be seeded with an arbitrary mid-trajectory state, advanced a
// fixed number of composite steps at its fixed dt, and read back — all
// repeatably, so one propagator serves every correction iteration of
// its time slice. Construction fixes the time step from the t=0 initial
// condition (every backend computes the identical global CFL dt, the
// parity invariant the backend sweep pins), so a restarted propagation
// is bitwise-identical to the corresponding span of a continuous run.
type Propagator interface {
	// Seed loads the global conservative state and positions the clock
	// at composite step `step` (time = step*Dt()).
	Seed(state *flux.State, step int)
	// Advance runs n composite steps at the fixed dt, no monitoring.
	Advance(n int)
	// State gathers the current global conservative state into dst.
	State(dst *flux.State)
	// Dt returns the fixed composite time step.
	Dt() float64
	// Close releases worker pools; the propagator is dead afterwards.
	Close()
}

// propagatorProvider is an optional Backend extension (like validator):
// backends that can serve as Parareal fine propagators construct one
// here. The options arrive with parallel-in-time and convergence-control
// fields already cleared by the coordinator.
type propagatorProvider interface {
	NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error)
}

// NewPropagator builds a fine propagator from a registered backend, or
// reports that the backend cannot serve as one.
func NewPropagator(b Backend, cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	p, ok := b.(propagatorProvider)
	if !ok {
		return nil, fmt.Errorf("backend: %s cannot serve as a parareal fine propagator", b.Name())
	}
	return p.NewPropagator(cfg, g, opts)
}

// slabProp adapts the single-slab solvers (serial, shm) — the slab's
// own state surface is already the global grid.
type slabProp struct {
	sl     *solver.Slab
	closer func()
}

func (p slabProp) Seed(state *flux.State, step int) {
	p.sl.LoadState(state)
	p.sl.SetClock(step, float64(step)*p.sl.Dt, p.sl.Dt)
}

func (p slabProp) Advance(n int) {
	for i := 0; i < n; i++ {
		p.sl.Advance()
	}
}

func (p slabProp) State(dst *flux.State) { p.sl.StoreState(dst) }
func (p slabProp) Dt() float64           { return p.sl.Dt }
func (p slabProp) Close() {
	if p.closer != nil {
		p.closer()
	}
}

// runnerProp adapts the axial rank runner (mp, hybrid).
type runnerProp struct {
	r      *par.Runner
	closer func()
}

func (p runnerProp) Seed(state *flux.State, step int) { p.r.SeedState(state, step) }
func (p runnerProp) Advance(n int)                    { p.r.AdvanceSteps(n) }
func (p runnerProp) State(dst *flux.State)            { p.r.StoreState(dst) }
func (p runnerProp) Dt() float64                      { return p.r.Slabs[0].Dt }
func (p runnerProp) Close() {
	if p.closer != nil {
		p.closer()
	}
}

// runner2dProp adapts the 2-D rank grid (mp2d).
type runner2dProp struct {
	r *par.Runner2D
}

func (p runner2dProp) Seed(state *flux.State, step int) { p.r.SeedState(state, step) }
func (p runner2dProp) Advance(n int)                    { p.r.AdvanceSteps(n) }
func (p runner2dProp) State(dst *flux.State)            { p.r.StoreState(dst) }
func (p runner2dProp) Dt() float64                      { return p.r.Slabs[0].Dt }
func (p runner2dProp) Close()                           {}

// NewPropagator implements propagatorProvider for the serial backend.
func (serialBackend) NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return nil, err
	}
	s, err := solver.NewSerialProblemCFL(cfg, prob, g, opts.cfl())
	if err != nil {
		return nil, err
	}
	return slabProp{sl: s.Slab}, nil
}

// NewPropagator implements propagatorProvider for the shm backend.
func (shmBackend) NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return nil, err
	}
	s, err := shm.NewSolverProblem(cfg, prob, g, opts.procs())
	if err != nil {
		return nil, err
	}
	if opts.CFL != 0 {
		s.Dt = s.StableDt(opts.CFL)
	}
	return slabProp{sl: s.Slab, closer: s.Close}, nil
}

// newAxialRunner is the shared runner construction of the mp and hybrid
// propagators (mirroring their Run paths).
func newAxialRunner(name string, cfg jet.Config, g *grid.Grid, opts Options, v par.Version) (*par.Runner, error) {
	colw, _, err := resolveWeights(name, cfg, g, opts, opts.procs(), 0)
	if err != nil {
		return nil, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return nil, err
	}
	return par.NewRunner(cfg, g, par.Options{
		Procs:       opts.procs(),
		Version:     v,
		Policy:      opts.Policy,
		CFL:         opts.CFL,
		ColWeights:  colw,
		Prob:        prob,
		ReduceGroup: opts.ReduceGroup,
	})
}

// NewPropagator implements propagatorProvider for the mp backends.
func (b mpBackend) NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	v, err := resolveVersion(b.Name(), opts, b.version, b.version, b.version)
	if err != nil {
		return nil, err
	}
	r, err := newAxialRunner(b.Name(), cfg, g, opts, v)
	if err != nil {
		return nil, err
	}
	return runnerProp{r: r}, nil
}

// NewPropagator implements propagatorProvider for the hybrid backend.
func (b hybridBackend) NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	v, err := b.version(opts)
	if err != nil {
		return nil, err
	}
	r, err := newAxialRunner("hybrid", cfg, g, opts, v)
	if err != nil {
		return nil, err
	}
	workers := b.workers(opts)
	pools := make([]*shm.Pool, len(r.Slabs))
	for i, sl := range r.Slabs {
		pools[i] = shm.NewPool(workers)
		sl.Pool = pools[i]
	}
	return runnerProp{r: r, closer: func() {
		for _, p := range pools {
			p.Close()
		}
	}}, nil
}

// NewPropagator implements propagatorProvider for the mp2d backends.
func (b mp2dBackend) NewPropagator(cfg jet.Config, g *grid.Grid, opts Options) (Propagator, error) {
	o, err := b.options2D(cfg, g, opts)
	if err != nil {
		return nil, err
	}
	r, err := par.NewRunner2D(cfg, g, o)
	if err != nil {
		return nil, err
	}
	return runner2dProp{r: r}, nil
}
