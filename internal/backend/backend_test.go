package backend

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/solver"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	return grid.MustNew(64, 24, 50, 5)
}

// testRamp is the skewed cost profile of the weighted parity sweep: a
// steep linear ramp that forces visibly uneven block widths.
func testRamp(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + 7*float64(i)/float64(n-1)
	}
	return w
}

// parityOptions returns the Options sweep TestBackendParity runs for
// one backend: every parallel width 1..4, plus — for both mp2d
// variants — a set of explicit rank-grid shapes that includes
// non-divisible splits of both nx and nr, plus — for hybrid — the
// overlapped rank layer (Version 6) on top of the DOALL pool, plus —
// for every distributed backend — cost-weighted decompositions
// (explicit skewed profiles and the flops/measured balance modes):
// load balancing must be numerics-neutral, whatever blocks it picks.
func parityOptions(name string, g *grid.Grid) []Options {
	if name == "parareal" {
		// The time axis has its own width sweep: the coordinator is
		// bitwise-identical to the serial trajectory whenever the
		// correction sweep runs to completion (PararealIters =
		// TimeSlices), so the registry parity test pins that contract
		// over the default serial fine propagator, an uneven slice
		// partition, and a distributed fine propagator. The adaptive
		// (tolerance-stopped) paths live in parareal_test.go.
		return []Options{
			{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2},
			{TimeSlices: 4, PararealIters: 4, CoarseFactor: 2},
			{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2, Fine: "mp:v5", Procs: 2, Policy: solver.Fresh},
		}
	}
	var opts []Options
	for p := 1; p <= 4; p++ {
		o := Options{Procs: p, Policy: solver.Fresh}
		if name == "hybrid" {
			o.Workers = 2
		}
		opts = append(opts, o)
	}
	distributed := name != "serial" && name != "shm"
	if name == "hybrid" {
		opts = append(opts, Options{Procs: 3, Workers: 2, Version: par.V6, Policy: solver.Fresh})
		opts = append(opts, Options{Procs: 3, Workers: 2, Version: par.V6, Policy: solver.Fresh, ColWeights: testRamp(g.Nx)})
	}
	if name == "mp2d" || name == "mp2d:v6" {
		// The parity grid is 64x26: px=3 leaves columns 22+21+21 and
		// pr=3 leaves rows 9+9+8, so both directions cover the
		// remainder-block paths; 4x3 = 12 ranks exceeds anything the
		// width sweep reaches. mp2d:v6 runs the identical sweep through
		// the overlapped operators.
		for _, sh := range [][2]int{{2, 2}, {3, 2}, {2, 3}, {1, 4}, {4, 1}, {3, 3}, {4, 3}} {
			opts = append(opts, Options{Px: sh[0], Pr: sh[1], Policy: solver.Fresh})
		}
		// Weighted rank grids: both directions skewed at once, on a
		// shape with remainder blocks in each.
		opts = append(opts, Options{Px: 3, Pr: 2, Policy: solver.Fresh,
			ColWeights: testRamp(g.Nx), RowWeights: testRamp(g.Nr)})
		opts = append(opts, Options{Px: 2, Pr: 3, Policy: solver.Fresh,
			ColWeights: testRamp(g.Nx), RowWeights: testRamp(g.Nr)})
	}
	if distributed {
		o := Options{Procs: 3, Policy: solver.Fresh, ColWeights: testRamp(g.Nx)}
		if name == "hybrid" {
			o.Workers = 2
		}
		if name != "mp2d" && name != "mp2d:v6" {
			opts = append(opts, o)
		}
		for _, balance := range []string{BalanceFlops, BalanceMeasured} {
			b := Options{Procs: 4, Policy: solver.Fresh, Balance: balance}
			if name == "hybrid" {
				b.Workers = 2
			}
			opts = append(opts, b)
		}
	}
	return opts
}

// optionsLabel names one sweep point for the subtest tree.
func optionsLabel(o Options) string {
	v := ""
	if o.Version != 0 {
		v = fmt.Sprintf("v%d", int(o.Version))
	}
	switch {
	case o.Balance != "":
		v += "-" + o.Balance
	case o.ColWeights != nil || o.RowWeights != nil:
		v += "-weighted"
	}
	if o.TimeSlices > 0 {
		fine := o.Fine
		if fine == "" {
			fine = "serial"
		}
		return fmt.Sprintf("k%d-%s%s", o.TimeSlices, fine, v)
	}
	if o.Px > 0 || o.Pr > 0 {
		return fmt.Sprintf("px%dxpr%d%s", o.Px, o.Pr, v)
	}
	if o.Workers > 0 {
		return fmt.Sprintf("procs%dx%d%s", o.Procs, o.Workers, v)
	}
	return fmt.Sprintf("procs%d%s", o.Procs, v)
}

// scenarioParityOptions is the reduced sweep the wall-bounded scenarios
// run per backend: the jet already walks every decomposition corner of
// the engine, so cavity and channel concentrate on what their boundary
// conditions change — single-rank and remainder-width multi-rank runs
// on every backend, rank grids that cut both the walls and the
// interior (mp2d and its overlapped variant), and the overlapped axial
// strategy over a worker pool (hybrid V6).
func scenarioParityOptions(name string) []Options {
	if name == "parareal" {
		// One completed-sweep point per wall-bounded scenario: the jet
		// sweep above already walks the slice-count and fine-backend
		// corners.
		return []Options{{TimeSlices: 2, PararealIters: 2, CoarseFactor: 2}}
	}
	var opts []Options
	for _, p := range []int{1, 3} {
		o := Options{Procs: p, Policy: solver.Fresh}
		if name == "hybrid" {
			o.Workers = 2
		}
		opts = append(opts, o)
	}
	if name == "hybrid" {
		opts = append(opts, Options{Procs: 3, Workers: 2, Version: par.V6, Policy: solver.Fresh})
	}
	if name == "mp2d" || name == "mp2d:v6" {
		// {3,2} puts remainder blocks in both directions and wall-owning
		// ranks on every side of the rank grid.
		for _, sh := range [][2]int{{2, 2}, {3, 2}} {
			opts = append(opts, Options{Px: sh[0], Pr: sh[1], Policy: solver.Fresh})
		}
	}
	return opts
}

// TestBackendParity is the layer's central guarantee: under the Fresh
// halo policy every registered backend produces bitwise-identical
// fields after N composite steps — the same-arithmetic-everywhere
// property the solver package doc claims — asserted registry-wide for
// every registered scenario. The jet runs the full decomposition sweep
// (every parallel width 1..4; for the 2-D decomposition, a set of
// rank-grid shapes including non-divisible nx/nr splits; for every
// distributed backend, cost-weighted decompositions — explicit skewed
// profiles, the analytic flops mode, and the timing-driven measured
// mode, whose nondeterministic blocks must be just as
// numerics-neutral). The wall-bounded scenarios run the reduced sweep
// of scenarioParityOptions over the identical backends.
//
// The jet's serial reference runs with Options.Scenario empty — the
// pre-registry code path — while its sweep points name "jet"
// explicitly, so the sweep also pins that the registry's jet
// registration is bitwise-transparent.
func TestBackendParity(t *testing.T) {
	const steps = 6
	for _, scen := range scenario.Names() {
		sc, err := scenario.Get(scen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sc.Config(jet.Paper())
		g, err := sc.Grid(64, 26)
		if err != nil {
			t.Fatal(err)
		}

		ser, err := Get("serial")
		if err != nil {
			t.Fatal(err)
		}
		refOpts := Options{}
		if scen != "jet" {
			refOpts.Scenario = scen
		}
		ref, err := ser.Run(cfg, g, refOpts, steps)
		if err != nil {
			t.Fatal(err)
		}

		for _, name := range Names() {
			b, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			var sweep []Options
			if scen == "jet" {
				sweep = parityOptions(name, g)
			} else {
				sweep = scenarioParityOptions(name)
			}
			for _, o := range sweep {
				o.Scenario = scen
				t.Run(scen+"/"+name+"/"+optionsLabel(o), func(t *testing.T) {
					res, err := b.Run(cfg, g, o, steps)
					if err != nil {
						t.Fatal(err)
					}
					if res.Scenario != scen {
						t.Fatalf("result tagged %q, want %q", res.Scenario, scen)
					}
					if res.Dt != ref.Dt {
						t.Fatalf("dt %g != serial %g", res.Dt, ref.Dt)
					}
					for k := 0; k < flux.NVar; k++ {
						if !res.Fields[k].Equal(ref.Fields[k]) {
							t.Errorf("component %d differs from serial (max %g)",
								k, res.Fields[k].MaxAbsDiff(ref.Fields[k]))
						}
					}
				})
			}
		}
	}
}

// TestMp2dReportsShapeAndDirections: the 2-D backend must expose its
// resolved rank-grid shape and a per-direction message split whose sum
// matches the aggregate counters.
func TestMp2dReportsShapeAndDirections(t *testing.T) {
	b, err := Get("mp2d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(jet.Paper(), grid.MustNew(64, 26, 50, 5), Options{Px: 2, Pr: 2, Policy: solver.Fresh}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Px != 2 || res.Pr != 2 || res.Procs != 4 {
		t.Fatalf("shape: px=%d pr=%d procs=%d", res.Px, res.Pr, res.Procs)
	}
	if res.CommDir.Axial.Startups == 0 || res.CommDir.Radial.Startups == 0 {
		t.Fatalf("2x2 run must communicate in both directions: %v", res.CommDir)
	}
	tot := res.CommDir.Total()
	if tot.Startups != res.Comm.Startups || tot.Bytes != res.Comm.Bytes {
		t.Fatalf("direction split %v does not sum to aggregate %v", res.CommDir, res.Comm)
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("%d rank stats", len(res.PerRank))
	}
}

// TestHybridComposesBothStyles: the hybrid backend must actually
// communicate (ranks exchange halos) while reporting its DOALL width.
func TestHybridComposesBothStyles(t *testing.T) {
	b, err := Get("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(jet.Paper(), testGrid(t), Options{Procs: 3, Workers: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Startups == 0 || res.Comm.Bytes == 0 {
		t.Fatalf("hybrid ran without rank communication: %+v", res.Comm)
	}
	if res.Procs != 3 || res.Workers != 2 {
		t.Fatalf("hybrid shape: procs=%d workers=%d", res.Procs, res.Workers)
	}
	if len(res.PerRank) != 3 {
		t.Fatalf("%d rank stats", len(res.PerRank))
	}
}

// TestRegistry covers lookup, the sorted name list, and the error text
// that doubles as CLI help.
func TestRegistry(t *testing.T) {
	want := []string{"hybrid", "mp2d", "mp2d:v6", "mp:v5", "mp:v6", "mp:v7", "parareal", "serial", "shm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry: %v, want %v", got, want)
		}
	}
	for _, n := range want {
		b, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != n {
			t.Errorf("backend %q reports name %q", n, b.Name())
		}
	}
	if _, err := Get("vector"); err == nil || !strings.Contains(err.Error(), "hybrid") {
		t.Errorf("unknown-backend error should list registered names, got %v", err)
	}
}

// TestVersionSelection pins the registry-level version semantics:
// version-agnostic backends honor Options.Version, pinned names reject
// contradictions, and no backend silently downgrades an unimplemented
// strategy.
func TestVersionSelection(t *testing.T) {
	g := testGrid(t)
	cfg := jet.Paper()
	ok := []struct {
		name string
		o    Options
	}{
		{"mp2d", Options{Procs: 2, Version: par.V6}},
		{"mp2d:v6", Options{Procs: 2}},
		{"mp2d:v6", Options{Procs: 2, Version: par.V6}},
		{"hybrid", Options{Procs: 2, Workers: 2, Version: par.V6}},
		{"hybrid", Options{Procs: 2, Workers: 2, Version: par.V7}},
		{"mp:v6", Options{Procs: 2, Version: par.V6}},
	}
	for _, c := range ok {
		b, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, c.o); err != nil {
			t.Errorf("%s %s: unexpected validate error: %v", c.name, optionsLabel(c.o), err)
			continue
		}
		if _, err := b.Run(cfg, g, c.o, 1); err != nil {
			t.Errorf("%s %s: unexpected run error: %v", c.name, optionsLabel(c.o), err)
		}
	}
	bad := []struct {
		name string
		o    Options
	}{
		{"mp:v5", Options{Procs: 2, Version: par.V6}},
		{"mp:v6", Options{Procs: 2, Version: par.V5}},
		{"mp2d:v6", Options{Procs: 2, Version: par.V5}},
		{"mp2d", Options{Procs: 2, Version: par.V7}}, // de-burst is axial-only
		{"mp2d:v6", Options{Procs: 2, Version: par.V7}},
		{"mp2d", Options{Procs: 2, Version: par.Version(9)}},
		{"serial", Options{Version: par.V6}},
		{"shm", Options{Procs: 2, Version: par.V6}},
	}
	for _, c := range bad {
		b, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, c.o); err == nil {
			t.Errorf("%s %s: Validate accepted an unsupported/contradicting version", c.name, optionsLabel(c.o))
		}
		if _, err := b.Run(cfg, g, c.o, 1); err == nil {
			t.Errorf("%s %s: Run accepted an unsupported/contradicting version", c.name, optionsLabel(c.o))
		}
	}
}

// TestBalanceSelection pins the registry-level balance semantics:
// distributed backends honor Options.Balance and explicit profiles,
// backends without a decomposition reject them, unknown modes and
// profile/mode conflicts are errors — never a silent uniform split.
func TestBalanceSelection(t *testing.T) {
	g := testGrid(t)
	cfg := jet.Paper()
	ok := []struct {
		name string
		o    Options
	}{
		{"mp:v5", Options{Procs: 3, Balance: BalanceFlops}},
		{"mp:v5", Options{Procs: 3, Balance: BalanceMeasured}},
		{"mp:v6", Options{Procs: 3, Balance: BalanceFlops}},
		{"mp2d", Options{Px: 2, Pr: 2, Balance: BalanceFlops}},
		{"mp2d:v6", Options{Px: 2, Pr: 2, Balance: BalanceMeasured}},
		{"hybrid", Options{Procs: 2, Workers: 2, Balance: BalanceMeasured}},
		{"serial", Options{Balance: BalanceUniform}}, // explicit uniform is a no-op anywhere
		{"mp:v5", Options{Procs: 3, ColWeights: testRamp(g.Nx)}},
	}
	for _, c := range ok {
		b, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, c.o); err != nil {
			t.Errorf("%s %s: unexpected validate error: %v", c.name, optionsLabel(c.o), err)
			continue
		}
		if _, err := b.Run(cfg, g, c.o, 1); err != nil {
			t.Errorf("%s %s: unexpected run error: %v", c.name, optionsLabel(c.o), err)
		}
	}
	bad := []struct {
		name string
		o    Options
	}{
		{"serial", Options{Balance: BalanceFlops}},
		{"shm", Options{Procs: 2, Balance: BalanceMeasured}},
		{"serial", Options{ColWeights: testRamp(g.Nx)}},
		{"mp:v5", Options{Procs: 2, Balance: "bogus"}},
		{"mp:v5", Options{Procs: 2, Balance: BalanceFlops, ColWeights: testRamp(g.Nx)}},
		{"mp2d", Options{Px: 2, Pr: 2, Balance: "point-count"}},
		// A row profile on a column-only decomposition must be
		// rejected, not silently dropped.
		{"mp:v5", Options{Procs: 2, RowWeights: testRamp(g.Nr)}},
		{"hybrid", Options{Procs: 2, Workers: 2, RowWeights: testRamp(g.Nr)}},
	}
	for _, c := range bad {
		b, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, c.o); err == nil {
			t.Errorf("%s %s: Validate accepted an unsupported balance request", c.name, optionsLabel(c.o))
		}
		if _, err := b.Run(cfg, g, c.o, 1); err == nil {
			t.Errorf("%s %s: Run accepted an unsupported balance request", c.name, optionsLabel(c.o))
		}
	}
	// A profile of the wrong length passes the cheap Validate (which
	// never materializes weights) but must fail in Run.
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(cfg, g, Options{Procs: 2, ColWeights: []float64{1, 2, 3}}, 1); err == nil {
		t.Error("mp:v5 accepted a 3-entry profile on a 64-column grid")
	}
}

// TestMeasuredBalanceProbesResolvedShape guards the warm-up probe
// resolution: a rank grid given only as Px/Pr (Procs zero) must probe
// at px axial and pr radial ranks — probing at the unset Procs would
// silently degrade measured balance to the uniform split.
func TestMeasuredBalanceProbesResolvedShape(t *testing.T) {
	g := grid.MustNew(64, 26, 50, 5)
	o, err := mp2dBackend{}.options2D(jet.Paper(), g, Options{Px: 2, Pr: 2, Balance: BalanceMeasured})
	if err != nil {
		t.Fatal(err)
	}
	if o.ColWeights == nil {
		t.Error("measured balance with Px=2 produced no column profile (probe ran at 1 rank?)")
	}
	if o.RowWeights == nil {
		t.Error("measured balance with Pr=2 produced no row profile (probe ran at 1 rank?)")
	}
}

// TestWeightedRunShiftsWork: an explicit increasing cost profile must
// actually move columns — the cheap end gets wider blocks, visible as
// monotonically more per-rank flops on rank 0 than on the last rank.
func TestWeightedRunShiftsWork(t *testing.T) {
	b, err := Get("mp:v5")
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	uni, err := b.Run(jet.Paper(), g, Options{Procs: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wgt, err := b.Run(jet.Paper(), g, Options{Procs: 4, ColWeights: testRamp(g.Nx)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wgt.PerRank[0].Flops <= uni.PerRank[0].Flops {
		t.Errorf("rank 0 should own more columns under an increasing profile: %g <= %g",
			wgt.PerRank[0].Flops, uni.PerRank[0].Flops)
	}
	last := len(wgt.PerRank) - 1
	if wgt.PerRank[last].Flops >= uni.PerRank[last].Flops {
		t.Errorf("last rank should own fewer columns under an increasing profile: %g >= %g",
			wgt.PerRank[last].Flops, uni.PerRank[last].Flops)
	}
}

// TestMp2dV6Overlaps: the overlapped 2-D backend must keep the exact
// Version-5 message budget (overlap changes when the halves run, not
// what they carry) while reporting the same shape/direction split.
func TestMp2dV6Overlaps(t *testing.T) {
	g := grid.MustNew(64, 26, 50, 5)
	o := Options{Px: 2, Pr: 2, Policy: solver.Fresh}
	b5, _ := Get("mp2d")
	b6, _ := Get("mp2d:v6")
	r5, err := b5.Run(jet.Paper(), g, o, 4)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := b6.Run(jet.Paper(), g, o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r6.Comm.Startups != r5.Comm.Startups || r6.Comm.Bytes != r5.Comm.Bytes {
		t.Errorf("v6 budget %+v != v5 budget %+v", r6.Comm, r5.Comm)
	}
	if r6.CommDir.Radial.Startups != r5.CommDir.Radial.Startups {
		t.Errorf("v6 radial startups %d != v5 %d",
			r6.CommDir.Radial.Startups, r5.CommDir.Radial.Startups)
	}
	if r6.Px != 2 || r6.Pr != 2 {
		t.Errorf("v6 shape %dx%d, want 2x2", r6.Px, r6.Pr)
	}
}

// TestValidateCatchesBadDecomposition: the optional validator must
// reject slabs below the stencil width without building ranks.
func TestValidateCatchesBadDecomposition(t *testing.T) {
	g := testGrid(t)
	cfg := jet.Paper()
	for _, name := range []string{"mp:v5", "hybrid"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, Options{Procs: 32}); err == nil {
			t.Errorf("%s: want decomposition error for 32 ranks on 64 columns", name)
		}
		if err := Validate(b, cfg, g, Options{Procs: 4}); err != nil {
			t.Errorf("%s: valid decomposition rejected: %v", name, err)
		}
	}
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ser, cfg, g, Options{Procs: 99}); err != nil {
		t.Errorf("serial ignores Procs, want nil, got %v", err)
	}

	// The 2-D decomposition scales past the axial rank ceiling: 32
	// ranks on 64 columns is impossible axially but fits as an 8x4
	// grid — while a degenerate 32x1 shape still fails the width check.
	m2, err := Get("mp2d")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m2, cfg, g, Options{Procs: 32}); err != nil {
		t.Errorf("mp2d: 32 ranks on 64x24 should fit as 8x4, got %v", err)
	}
	if err := Validate(m2, cfg, g, Options{Px: 32, Pr: 1}); err == nil {
		t.Error("mp2d: want width error for a 32x1 shape on 64 columns")
	}
	if err := Validate(m2, cfg, g, Options{Px: 1, Pr: 12}); err == nil {
		t.Error("mp2d: want height error for a 1x12 shape on 24 rows")
	}
	if err := Validate(m2, cfg, g, Options{Procs: 6, Px: 4}); err == nil {
		t.Error("mp2d: want error when px does not divide procs")
	}
}

// TestResultMomentum: the gathered state must expose the Figure 1
// quantity with the interior shape and independent storage.
func TestResultMomentum(t *testing.T) {
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ser.Run(jet.Paper(), testGrid(t), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Momentum()
	if len(m) != 64 || len(m[0]) != 24 {
		t.Fatalf("momentum shape %dx%d", len(m), len(m[0]))
	}
	m[0][0] = 12345
	if res.Fields[flux.IMx].At(0, 0) == 12345 {
		t.Fatal("Momentum must copy, not alias, the gathered state")
	}
}
