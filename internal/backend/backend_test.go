package backend

import (
	"strings"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/solver"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	return grid.MustNew(64, 24, 50, 5)
}

// TestBackendParity is the layer's central guarantee: under the Fresh
// halo policy every registered backend produces bitwise-identical
// fields after N composite steps — the same-arithmetic-everywhere
// property the solver package doc claims, asserted across the whole
// registry at once.
func TestBackendParity(t *testing.T) {
	const steps = 6
	g := testGrid(t)
	cfg := jet.Paper()

	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ser.Run(cfg, g, Options{}, steps)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		opts Options
	}{
		{"serial", Options{}},
		{"shm", Options{Procs: 4}},
		{"mp:v5", Options{Procs: 4, Policy: solver.Fresh}},
		{"mp:v6", Options{Procs: 4, Policy: solver.Fresh}},
		{"mp:v7", Options{Procs: 4, Policy: solver.Fresh}},
		{"hybrid", Options{Procs: 4, Workers: 2, Policy: solver.Fresh}},
	}
	if len(cases) != len(Names()) {
		t.Fatalf("parity cases cover %d backends, registry has %v", len(cases), Names())
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b, err := Get(c.name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := b.Run(cfg, g, c.opts, steps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Dt != ref.Dt {
				t.Fatalf("dt %g != serial %g", res.Dt, ref.Dt)
			}
			for k := 0; k < flux.NVar; k++ {
				if !res.Fields[k].Equal(ref.Fields[k]) {
					t.Errorf("component %d differs from serial (max %g)",
						k, res.Fields[k].MaxAbsDiff(ref.Fields[k]))
				}
			}
		})
	}
}

// TestHybridComposesBothStyles: the hybrid backend must actually
// communicate (ranks exchange halos) while reporting its DOALL width.
func TestHybridComposesBothStyles(t *testing.T) {
	b, err := Get("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(jet.Paper(), testGrid(t), Options{Procs: 3, Workers: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Startups == 0 || res.Comm.Bytes == 0 {
		t.Fatalf("hybrid ran without rank communication: %+v", res.Comm)
	}
	if res.Procs != 3 || res.Workers != 2 {
		t.Fatalf("hybrid shape: procs=%d workers=%d", res.Procs, res.Workers)
	}
	if len(res.PerRank) != 3 {
		t.Fatalf("%d rank stats", len(res.PerRank))
	}
}

// TestRegistry covers lookup, the sorted name list, and the error text
// that doubles as CLI help.
func TestRegistry(t *testing.T) {
	want := []string{"hybrid", "mp:v5", "mp:v6", "mp:v7", "serial", "shm"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry: %v, want %v", got, want)
		}
	}
	for _, n := range want {
		b, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != n {
			t.Errorf("backend %q reports name %q", n, b.Name())
		}
	}
	if _, err := Get("vector"); err == nil || !strings.Contains(err.Error(), "hybrid") {
		t.Errorf("unknown-backend error should list registered names, got %v", err)
	}
}

// TestValidateCatchesBadDecomposition: the optional validator must
// reject slabs below the stencil width without building ranks.
func TestValidateCatchesBadDecomposition(t *testing.T) {
	g := testGrid(t)
	cfg := jet.Paper()
	for _, name := range []string{"mp:v5", "hybrid"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(b, cfg, g, Options{Procs: 32}); err == nil {
			t.Errorf("%s: want decomposition error for 32 ranks on 64 columns", name)
		}
		if err := Validate(b, cfg, g, Options{Procs: 4}); err != nil {
			t.Errorf("%s: valid decomposition rejected: %v", name, err)
		}
	}
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ser, cfg, g, Options{Procs: 99}); err != nil {
		t.Errorf("serial has no validator, want nil, got %v", err)
	}
}

// TestResultMomentum: the gathered state must expose the Figure 1
// quantity with the interior shape and independent storage.
func TestResultMomentum(t *testing.T) {
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ser.Run(jet.Paper(), testGrid(t), Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Momentum()
	if len(m) != 64 || len(m[0]) != 24 {
		t.Fatalf("momentum shape %dx%d", len(m), len(m[0]))
	}
	m[0][0] = 12345
	if res.Fields[flux.IMx].At(0, 0) == 12345 {
		t.Fatal("Momentum must copy, not alias, the gathered state")
	}
}
