package backend

import (
	"runtime"

	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/shm"
)

func init() { register(hybridBackend{}) }

// hybridBackend composes the paper's two parallelization styles in one
// run — the ranks-within-node × threads-per-rank layout modern CFD
// scaling studies treat as the baseline. The domain is decomposed into
// axial rank slabs exchanging halos through the message layer (the
// iPSC/860 style), and each rank's column sweeps are additionally
// fork-joined over a private DOALL pool (the Cray Y-MP style). Every
// kernel region is a loop over independent columns, so the composition
// keeps the solver's bitwise-reproducibility guarantee: under the Fresh
// halo policy the result is identical to the serial run regardless of
// rank and worker counts.
type hybridBackend struct{}

func (hybridBackend) Name() string { return "hybrid" }

// workers resolves the per-rank pool size: explicit, or one worker per
// remaining host CPU spread evenly over the ranks.
func (hybridBackend) workers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	w := runtime.NumCPU() / opts.procs()
	if w < 1 {
		w = 1
	}
	return w
}

// version resolves the communication strategy of the rank layer:
// hybrid is version-agnostic (default V5) and composes with any of the
// axial strategies — under V6 each rank's interior core and edge frame
// are themselves fork-joined over the pool.
func (b hybridBackend) version(opts Options) (par.Version, error) {
	return resolveVersion("hybrid", opts, par.V5, 0, par.V5, par.V6, par.V7)
}

// Validate checks the version request, the balance mode, and the axial
// decomposition without building the ranks.
func (b hybridBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	if _, err := b.version(opts); err != nil {
		return err
	}
	if err := validateBalance("hybrid", opts, false); err != nil {
		return err
	}
	if _, err := resolveProblem(cfg, g, opts); err != nil {
		return err
	}
	if _, err := resolveControl("hybrid", opts); err != nil {
		return err
	}
	if err := validateGroup("hybrid", opts.ReduceGroup, opts.procs()); err != nil {
		return err
	}
	d, err := decomp.Axial(g.Nx, opts.procs())
	if err != nil {
		return err
	}
	widths := make([]int, opts.procs())
	for r := range widths {
		_, widths[r] = d.Range(r)
	}
	return par.CheckWideFit(cfg.Viscous, opts.Policy.Depth(), widths, "column")
}

func (b hybridBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	v, err := b.version(opts)
	if err != nil {
		return Result{}, err
	}
	colw, _, err := resolveWeights("hybrid", cfg, g, opts, opts.procs(), 0)
	if err != nil {
		return Result{}, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ctl, err := resolveControl("hybrid", opts)
	if err != nil {
		return Result{}, err
	}
	r, err := par.NewRunner(cfg, g, par.Options{
		Procs:       opts.procs(),
		Version:     v,
		Policy:      opts.Policy,
		CFL:         opts.CFL,
		ColWeights:  colw,
		Prob:        prob,
		ReduceGroup: opts.ReduceGroup,
	})
	if err != nil {
		return Result{}, err
	}
	workers := b.workers(opts)
	pools := make([]*shm.Pool, len(r.Slabs))
	for i, sl := range r.Slabs {
		pools[i] = shm.NewPool(workers)
		sl.Pool = pools[i]
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()
	pr := r.RunControlled(steps, ctl)
	res := Result{
		Backend:   "hybrid",
		Scenario:  opts.scenario(),
		Procs:     pr.Procs,
		Workers:   workers,
		Steps:     pr.Steps,
		Dt:        pr.Dt,
		Converged: pr.Converged,
		Residuals: pr.Residuals,
		Elapsed:   pr.Elapsed,
		Diag:      pr.Diag,
		Comm:      pr.TotalComm(),
		CommDir:   pr.TotalDir(),
		PerRank:   pr.Ranks,
		Fields:    r.GatherState(),
	}
	return res, nil
}
