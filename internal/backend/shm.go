package backend

import (
	"time"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/shm"
)

func init() { register(shmBackend{}) }

// shmBackend is the shared-memory DOALL parallelization the paper used
// on the Cray Y-MP: one slab spanning the domain, every column loop
// fork-joined across a persistent worker pool.
type shmBackend struct{}

func (shmBackend) Name() string { return "shm" }

// Validate rejects a communication-version or balance request: the
// DOALL pool has no message layer and no rank decomposition.
func (shmBackend) Validate(cfg jet.Config, g *grid.Grid, opts Options) error {
	if err := rejectVersion("shm", opts); err != nil {
		return err
	}
	if err := rejectBalance("shm", opts); err != nil {
		return err
	}
	if err := rejectWide("shm", opts); err != nil {
		return err
	}
	if _, err := resolveProblem(cfg, g, opts); err != nil {
		return err
	}
	_, err := resolveControl("shm", opts)
	return err
}

func (shmBackend) Run(cfg jet.Config, g *grid.Grid, opts Options, steps int) (Result, error) {
	if err := rejectVersion("shm", opts); err != nil {
		return Result{}, err
	}
	if err := rejectBalance("shm", opts); err != nil {
		return Result{}, err
	}
	if err := rejectWide("shm", opts); err != nil {
		return Result{}, err
	}
	prob, err := resolveProblem(cfg, g, opts)
	if err != nil {
		return Result{}, err
	}
	ctl, err := resolveControl("shm", opts)
	if err != nil {
		return Result{}, err
	}
	workers := opts.procs()
	s, err := shm.NewSolverProblem(cfg, prob, g, workers)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	if opts.CFL != 0 {
		s.Dt = s.StableDt(opts.CFL)
	}
	start := time.Now()
	cr := s.RunControlled(steps, ctl)
	elapsed := time.Since(start)
	return Result{
		Backend:   "shm",
		Scenario:  opts.scenario(),
		Procs:     workers,
		Steps:     cr.Steps,
		Dt:        s.Dt,
		Converged: cr.Converged,
		Residuals: cr.Residuals,
		Elapsed:   elapsed,
		Diag:      s.Diagnose(),
		Fields:    gatherSlab(g, s.Q),
	}, nil
}
