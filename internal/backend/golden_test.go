package backend

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/solver"
)

// update regenerates the committed goldens instead of comparing:
//
//	go test ./internal/backend -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/goldens.json from the current serial solver")

// goldenCase pins the serial solver on one small configuration.
type goldenCase struct {
	Nx       int     `json:"nx"`
	Nr       int     `json:"nr"`
	Steps    int     `json:"steps"`
	Euler    bool    `json:"euler"`
	Scenario string  `json:"scenario,omitempty"` // registry name; empty = pre-registry jet path
	DtBits   uint64  `json:"dt_bits"`            // IEEE-754 bits of the stable time step
	SumBits  uint64  `json:"sum_bits"`           // FNV-1a 64 over the final field bits
	Mass     float64 `json:"mass"`               // human-readable drift indicator
}

// goldenCases are the pinned configurations: the jet viscous and
// inviscid on different grids, plus one golden per wall-bounded
// scenario so the wall-mirror and inflow-hook arithmetic is locked
// against drift just like the jet kernels.
func goldenCases() map[string]goldenCase {
	return map[string]goldenCase{
		"ns-64x24":      {Nx: 64, Nr: 24, Steps: 8},
		"euler-48x16":   {Nx: 48, Nr: 16, Steps: 10, Euler: true},
		"cavity-64x24":  {Nx: 64, Nr: 24, Steps: 8, Scenario: "cavity"},
		"channel-64x24": {Nx: 64, Nr: 24, Steps: 8, Scenario: "channel"},
	}
}

// goldenSetup resolves one golden case's physics, grid, and baseline
// options. Scenario-less cases keep the original literal construction
// (jet config on the paper's 50x5 geometry) so their checksums are
// untouched by the registry's existence.
func goldenSetup(t *testing.T, c goldenCase) (jet.Config, *grid.Grid, Options) {
	t.Helper()
	if c.Scenario == "" {
		cfg := jet.Paper()
		if c.Euler {
			cfg = jet.Euler()
		}
		return cfg, grid.MustNew(c.Nx, c.Nr, 50, 5), Options{}
	}
	sc, err := scenario.Get(c.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(jet.Paper())
	g, err := sc.Grid(c.Nx, c.Nr)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, g, Options{Scenario: c.Scenario}
}

// fieldChecksum hashes the interior of every component, column-major,
// as raw IEEE-754 bits — any single-ulp drift anywhere changes it.
func fieldChecksum(s *flux.State) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for k := 0; k < flux.NVar; k++ {
		for i := 0; i < s[k].Nx; i++ {
			for _, v := range s[k].Col(i) {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	return h.Sum64()
}

// TestGoldenFields locks the serial physics against bitwise drift:
// kernel or backend refactors that change any arithmetic — even in the
// last ulp — fail this test, so deliberate changes must regenerate the
// goldens with -update (and say so in review). The checksums pin the
// amd64 arithmetic; other architectures may legally fuse multiply-adds
// into different (equally valid) results, so the comparison is skipped
// there.
func TestGoldenFields(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		if *update {
			t.Fatalf("refusing to regenerate the goldens on GOARCH=%s: they pin amd64 arithmetic and CI would then fail on a physics change that never happened", runtime.GOARCH)
		}
		t.Skipf("goldens pin amd64 float arithmetic; GOARCH=%s may fuse FMAs", runtime.GOARCH)
	}
	path := filepath.Join("testdata", "goldens.json")
	got := map[string]goldenCase{}
	for name, c := range goldenCases() {
		cfg, g, opts := goldenSetup(t, c)
		b, err := Get("serial")
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(cfg, g, opts, c.Steps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c.DtBits = math.Float64bits(res.Dt)
		c.SumBits = fieldChecksum(res.Fields)
		c.Mass = res.Diag.Mass
		got[name] = c
	}

	if *update {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (regenerate with -update): %v", err)
	}
	want := map[string]goldenCase{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no committed golden (regenerate with -update)", name)
			continue
		}
		if g.SumBits != w.SumBits || g.DtBits != w.DtBits {
			t.Errorf("%s: fields drifted from golden:\n  dt   %016x want %016x\n  sum  %016x want %016x\n  mass %.15g want %.15g\nIf the physics change is intentional, regenerate with -update.",
				name, g.DtBits, w.DtBits, g.SumBits, w.SumBits, g.Mass, w.Mass)
		}
	}
	// Keys present in the file but no longer generated indicate a stale
	// golden set.
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("stale golden %q (regenerate with -update)", name)
		}
	}
}

// goldenVariant is one backend/options pair checked against the live
// serial reference by assertGoldenVariants.
type goldenVariant struct {
	backend string
	opts    Options
}

// assertGoldenVariants runs every variant on every golden
// configuration and asserts its gathered fields and time step match
// the live serial reference bitwise. Unlike the committed amd64
// goldens this holds on any architecture: both runs are the same
// binary doing the same arithmetic.
func assertGoldenVariants(t *testing.T, variants func(c goldenCase) []goldenVariant) {
	t.Helper()
	ser, err := Get("serial")
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range goldenCases() {
		cfg, g, baseOpts := goldenSetup(t, c)
		ref, err := ser.Run(cfg, g, baseOpts, c.Steps)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		refSum := fieldChecksum(ref.Fields)
		for _, v := range variants(c) {
			b, err := Get(v.backend)
			if err != nil {
				t.Fatal(err)
			}
			v.opts.Scenario = c.Scenario
			res, err := b.Run(cfg, g, v.opts, c.Steps)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, v.backend, err)
			}
			if sum := fieldChecksum(res.Fields); sum != refSum {
				t.Errorf("%s: %s %s checksum %016x != serial %016x",
					name, v.backend, optionsLabel(v.opts), sum, refSum)
			}
			if math.Float64bits(res.Dt) != math.Float64bits(ref.Dt) {
				t.Errorf("%s: %s dt %g != serial %g", name, v.backend, res.Dt, ref.Dt)
			}
		}
	}
}

// TestGoldenWeightedVariants extends the checksum net to cost-weighted
// decompositions: skewed explicit profiles (both decompositions,
// grouped and overlapped exchanges) and the analytic flops mode must
// reproduce the serial field bits exactly under the Fresh policy —
// load balancing moves block edges, never arithmetic.
func TestGoldenWeightedVariants(t *testing.T) {
	assertGoldenVariants(t, func(c goldenCase) []goldenVariant {
		return []goldenVariant{
			{"mp:v5", Options{Procs: 3, Policy: solver.Fresh, ColWeights: testRamp(c.Nx)}},
			{"mp:v6", Options{Procs: 3, Policy: solver.Fresh, ColWeights: testRamp(c.Nx)}},
			{"mp2d", Options{Px: 2, Pr: 2, Policy: solver.Fresh, ColWeights: testRamp(c.Nx), RowWeights: testRamp(c.Nr)}},
			{"mp2d:v6", Options{Px: 2, Pr: 2, Policy: solver.Fresh, ColWeights: testRamp(c.Nx), RowWeights: testRamp(c.Nr)}},
			{"hybrid", Options{Procs: 3, Workers: 2, Policy: solver.Fresh, ColWeights: testRamp(c.Nx)}},
			{"mp:v5", Options{Procs: 4, Policy: solver.Fresh, Balance: BalanceFlops}},
			{"mp2d", Options{Px: 2, Pr: 2, Policy: solver.Fresh, Balance: BalanceFlops}},
		}
	})
}

// TestGoldenOverlappedVariants extends the checksum net to the
// Version-6 overlap: the overlapped 2-D backend (across rank-grid
// shapes) and the overlapped hybrid backend must reproduce the serial
// field bits exactly under the Fresh policy.
func TestGoldenOverlappedVariants(t *testing.T) {
	assertGoldenVariants(t, func(goldenCase) []goldenVariant {
		return []goldenVariant{
			{"mp2d:v6", Options{Px: 2, Pr: 2, Policy: solver.Fresh}},
			{"mp2d:v6", Options{Px: 1, Pr: 3, Policy: solver.Fresh}},
			{"mp2d:v6", Options{Px: 3, Pr: 2, Policy: solver.Fresh}},
			{"hybrid", Options{Procs: 3, Workers: 2, Version: par.V6, Policy: solver.Fresh}},
		}
	})
}
