// Package report renders experiment results as aligned text tables,
// CSV, and log-scale ASCII charts — the textual equivalents of the
// paper's tables and log-log figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w. Rows may be ragged: a row with more
// cells than headers gets unlabeled columns sized to its cells rather
// than an index panic, and a short row leaves its tail columns empty.
func (t *Table) Render(w io.Writer) {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SeriesTable renders a family of series sharing X values (processor
// counts) as one table: the textual form of the paper's figures.
func SeriesTable(title, xlabel string, series []stats.Series) Table {
	t := Table{Title: title, Headers: []string{xlabel}}
	for _, s := range series {
		t.Headers = append(t.Headers, s.Name)
	}
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%.4g", y))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// LogChart draws a log-y ASCII chart of the series family (the visual
// analogue of the paper's log-log execution-time plots).
func LogChart(w io.Writer, title string, series []stats.Series, height int) {
	if height < 4 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxN := 0
	for _, s := range series {
		for _, y := range s.Y {
			if y > 0 {
				lo = math.Min(lo, y)
				hi = math.Max(hi, y)
			}
		}
		if s.Len() > maxN {
			maxN = s.Len()
		}
	}
	if maxN == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(w, title+" (no data)")
		return
	}
	if lo == hi {
		hi = lo * 1.01
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	colW := 7
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxN*colW+2))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		for i, y := range s.Y {
			if y <= 0 {
				continue
			}
			frac := (math.Log10(y) - logLo) / (logHi - logLo)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			grid[row][i*colW+colW/2] = marks[si%len(marks)]
		}
	}
	fmt.Fprintln(w, title)
	for r, rowBytes := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.3g ", lo)
		}
		fmt.Fprintln(w, label+"|"+string(rowBytes))
	}
	// X axis labels.
	axis := strings.Repeat("-", maxN*colW+2)
	fmt.Fprintln(w, "          +"+axis)
	xrow := make([]byte, maxN*colW+2)
	for i := range xrow {
		xrow[i] = ' '
	}
	if len(series) > 0 {
		for i, x := range series[0].X {
			lbl := trimFloat(x)
			copy(xrow[i*colW+colW/2:], lbl)
		}
	}
	fmt.Fprintln(w, "           "+string(xrow))
	for si, s := range series {
		fmt.Fprintf(w, "           %c = %s\n", marks[si%len(marks)], s.Name)
	}
}
