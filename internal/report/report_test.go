package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T", "a", "bb", "333", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"x", "y"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.RenderCSV(&sb)
	if sb.String() != "x,y\n1,2\n" {
		t.Fatalf("csv %q", sb.String())
	}
}

func TestSeriesTableUnionOfX(t *testing.T) {
	a := stats.Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := stats.Series{Name: "b"}
	b.Add(2, 5)
	b.Add(8, 9)
	tb := SeriesTable("title", "P", []stats.Series{a, b})
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "-") {
		t.Error("missing placeholder for absent point")
	}
}

func TestLogChartRendersAllSeries(t *testing.T) {
	a := stats.Series{Name: "alpha"}
	a.Add(1, 100)
	a.Add(2, 50)
	b := stats.Series{Name: "beta"}
	b.Add(1, 10)
	b.Add(2, 5)
	var sb strings.Builder
	LogChart(&sb, "chart", []stats.Series{a, b}, 10)
	out := sb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestLogChartEmpty(t *testing.T) {
	var sb strings.Builder
	LogChart(&sb, "empty", nil, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

// TestRenderRaggedRows is the regression test for the widths panic: a
// row with more cells than headers used to index widths out of range
// in Render. Extra cells get unlabeled columns; short rows are legal
// too.
func TestRenderRaggedRows(t *testing.T) {
	tb := Table{
		Title:   "ragged",
		Headers: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "extra-wide-cell"},
			{"only"},
			{"x", "y"},
		},
	}
	var sb strings.Builder
	tb.Render(&sb) // must not panic
	out := sb.String()
	if !strings.Contains(out, "extra-wide-cell") || !strings.Contains(out, "only") {
		t.Fatalf("ragged cells missing from output:\n%s", out)
	}
	var csv strings.Builder
	tb.RenderCSV(&csv) // must not panic either
	if !strings.Contains(csv.String(), "extra-wide-cell") {
		t.Fatalf("ragged cell missing from CSV:\n%s", csv.String())
	}
}
