package solver

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/jet"
)

// convergingConfig is the unexcited viscous jet, which relaxes to a
// steady state instead of shedding instability waves (the paper's
// production case is deliberately unsteady).
func convergingConfig() jet.Config {
	cfg := jet.Paper()
	cfg.Eps = 0
	cfg.Reynolds = 500
	return cfg
}

func TestControlDefaults(t *testing.T) {
	if (Control{}).Enabled() {
		t.Fatal("zero control must be disabled")
	}
	c := Control{StopTol: 1e-4}.withDefaults()
	if c.ReduceEvery != 1 || c.CFL != DefaultCFL {
		t.Fatalf("defaults: %+v", c)
	}
	if !(Control{ReduceEvery: 7}).Enabled() {
		t.Fatal("monitor-only control must be enabled")
	}
}

// TestRunControlledZeroIsRun: a zero control reproduces the plain
// fixed-step run bitwise — the monitoring machinery must be pay-only-
// if-used.
func TestRunControlledZeroIsRun(t *testing.T) {
	g := grid.MustNew(64, 24, 50, 5)
	a, err := NewSerial(jet.Paper(), g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSerial(jet.Paper(), g)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(8)
	cr := b.RunControlled(8, Control{})
	if cr.Steps != 8 || cr.Converged || len(cr.Residuals) != 0 {
		t.Fatalf("zero control produced %+v", cr)
	}
	for k := range a.Q {
		if !a.Q[k].Equal(b.Q[k]) {
			t.Fatalf("component %d differs between Run and zero-control RunControlled", k)
		}
	}
}

// TestRunControlledStops: the controller stops at the first monitored
// step at or below tolerance and reports the history up to it.
func TestRunControlledStops(t *testing.T) {
	g := grid.MustNew(64, 32, 50, 5)
	s, err := NewSerial(convergingConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	cr := s.RunControlled(2000, Control{StopTol: 9e-3, ReduceEvery: 10})
	if !cr.Converged || cr.Steps == 2000 {
		t.Fatalf("did not converge: %+v", cr)
	}
	if cr.Steps%10 != 0 {
		t.Fatalf("stop step %d not on the cadence", cr.Steps)
	}
	last := cr.Residuals[len(cr.Residuals)-1]
	if last.Step != cr.Steps || last.Residual > 9e-3 {
		t.Fatalf("last sample %+v vs stop step %d", last, cr.Steps)
	}
	for _, p := range cr.Residuals[:len(cr.Residuals)-1] {
		if p.Residual <= 9e-3 {
			t.Fatalf("sample %+v was already below tolerance but the run went on", p)
		}
	}
}

// TestDtRefresh: monitored runs refresh the global CFL-stable dt from
// the max-reduction; on a relaxing flow the stability rate changes, so
// dt must move away from the construction-time value, and StableDt
// must agree with cfl/MaxRate by construction.
func TestDtRefresh(t *testing.T) {
	g := grid.MustNew(64, 32, 50, 5)
	s, err := NewSerial(convergingConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.StableDt(0.4), 0.4/s.MaxRate(); got != want {
		t.Fatalf("StableDt %g != cfl/MaxRate %g", got, want)
	}
	dt0 := s.Dt
	s.RunControlled(200, Control{ReduceEvery: 50})
	if s.Dt == dt0 {
		t.Fatalf("dt %g unchanged after 4 monitored refreshes", s.Dt)
	}
	if s.Dt <= 0 || s.Dt > 2*dt0 {
		t.Fatalf("refreshed dt %g implausible vs initial %g", s.Dt, dt0)
	}
}

// TestResidualMonotoneDecay pins the physics the convergence
// controller exists for, on the paper's own 250x100 grid: past the
// initial acoustic transient the unexcited viscous jet's residual
// decays monotonically toward the steady state. The first 300 steps
// carry startup waves bouncing through the fine grid and are skipped.
func TestResidualMonotoneDecay(t *testing.T) {
	g := grid.MustNew(250, 100, 50, 5)
	s, err := NewSerial(convergingConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	cr := s.RunControlled(600, Control{ReduceEvery: 50})
	if s.Diagnose().HasNaN {
		t.Fatal("paper-grid run produced NaN")
	}
	var tail []ResidualPoint
	for _, p := range cr.Residuals {
		if p.Step >= 300 {
			tail = append(tail, p)
		}
	}
	if len(tail) < 5 {
		t.Fatalf("only %d post-transient samples", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Residual >= tail[i-1].Residual {
			t.Errorf("residual rose from %g (step %d) to %g (step %d)",
				tail[i-1].Residual, tail[i-1].Step, tail[i].Residual, tail[i].Step)
		}
	}
}
