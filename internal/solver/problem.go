package solver

import (
	"repro/internal/bc"
	"repro/internal/flux"
	"repro/internal/gas"
	"repro/internal/jet"
)

// WallSpec marks which physical domain sides are solid no-slip walls.
// Non-wall sides keep the jet's boundary treatment: eigenfunction
// inflow (left), characteristic outflow (right), axis mirror (bottom),
// far-field characteristics (top). The zero value is therefore the
// built-in jet configuration.
type WallSpec struct {
	Left, Right, Bottom, Top bool
	// ULid is the tangential (+x) speed of the Top wall — the moving
	// lid of the cavity scenario. Ignored unless Top is set.
	ULid float64
}

// Any reports whether any side is a wall.
func (w WallSpec) Any() bool { return w.Left || w.Right || w.Bottom || w.Top }

// Problem binds a flow scenario's boundary conditions and initial state
// to the slab engine. A nil *Problem (and the zero value) reproduces
// the built-in excited jet bitwise — every existing call path passes
// nil and is untouched.
type Problem struct {
	Name string
	// Inflow builds the left-boundary Dirichlet source. nil with
	// Wall.Left unset selects the jet eigenfunction profile.
	Inflow func(cfg jet.Config, gm gas.Model, r []float64) bc.Source
	// Init gives the initial primitive state at a grid point (x, r);
	// nil selects the jet's parallel mean flow.
	Init func(cfg jet.Config, gm gas.Model, x, r float64) gas.Primitive
	Wall WallSpec
}

// Walls returns the wall specification; safe on a nil receiver.
func (p *Problem) Walls() WallSpec {
	if p == nil {
		return WallSpec{}
	}
	return p.Wall
}

// wallColumn pins the no-slip wall state on local column c of q: both
// momentum components are zeroed while density and internal energy keep
// the values the interior scheme produced, so the wall pressure evolves
// with the flow (the mirror ghosts make the normal pressure gradient
// vanish discretely).
func (s *Slab) wallColumn(q *flux.State, c int) {
	rho := q[flux.IRho].Col(c)
	n := len(rho)
	mx, mr, e := q[flux.IMx].Col(c)[:n], q[flux.IMr].Col(c)[:n], q[flux.IE].Col(c)[:n]
	for j := range rho {
		e[j] -= 0.5 * (mx[j]*mx[j] + mr[j]*mr[j]) / rho[j]
		mx[j] = 0
		mr[j] = 0
	}
}
