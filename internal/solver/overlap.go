package solver

import (
	"repro/internal/bc"
	"repro/internal/scheme"
)

// This file implements the paper's Version 6: halo sends are initiated
// first, the interior portion of each loop (which needs no ghost data)
// runs while messages are in flight, then the exchange is completed and
// the edges are finished. The paper found the gain mostly offset by the
// extra loop setup and the loss of temporal locality from splitting
// each sweep — behaviour this implementation shares, since every kernel
// is invoked twice per stage.
//
// The restructuring is defined for any sub-rectangle slab: each sweep
// splits into a 2-D interior core plus an edge frame. Columns touching
// axial ghost data wait for Finish, rows touching in-flight radial
// ghost rows wait for FinishR; physical radial sides are filled eagerly
// (the mirror/extrapolation is local), so their edge rows join the
// core, and the axial-only decomposition degenerates to the paper's
// full-height column split. All loops — core and frame alike — are
// dispatched through s.pfor so the overlap composes with the hybrid
// backend's per-rank DOALL pool, and every region runs one of the
// prebuilt loop bodies (see bindKernels): the operators re-point the
// stage context between fork-joins instead of building closures, so
// the overlapped path is allocation-free too.

// coreRows returns the rows of the stress/flux interior core — the
// rows whose radial ghost dependencies are satisfied before FinishR.
// A physical side's mirror/extrapolation is applied eagerly (it is
// local), so its edge row joins the core; an interior side's ghost
// rows are in flight while the core runs, so its edge row waits in
// the frame — unless this sweep skips the exchange (exchanging=false,
// the lagged case), in which case the ghost rows already hold their
// lagged contents and every row is core.
func (s *Slab) coreRows(exchanging bool) (lo, hi int) {
	lo, hi = 0, s.NrLoc
	if exchanging && !s.Bottom {
		lo = 1
	}
	if exchanging && !s.Top {
		hi = s.NrLoc - 1
	}
	return lo, hi
}

// frameX finishes the axial stress/flux sweep outside the core: the
// edge columns at full height and, on interior radial sides under
// Fresh, the edge rows of the interior columns. The stress/flux bundle
// triple is whatever ctx currently points at; ctx.j0/j1 are clobbered.
func (s *Slab) frameX(s1lo, s1hi, rlo, rhi int) {
	c := &s.ctx
	nr := s.NrLoc
	c.j0, c.j1 = 0, nr
	s.pfor(0, s1lo, s.fnStressFluxX)
	s.pfor(s1hi, s.NxLoc, s.fnStressFluxX)
	if rlo > 0 {
		c.j0, c.j1 = 0, rlo
		s.pfor(s1lo, s1hi, s.fnStressFluxX)
	}
	if rhi < nr {
		c.j0, c.j1 = rhi, nr
		s.pfor(s1lo, s1hi, s.fnStressFluxX)
	}
}

// opXOverlap is the Version-6 axial operator. Communication pattern and
// ghost-fill order match opX exactly (sends are merely initiated
// earlier, and packing reads interior values only), so the result is
// bitwise identical to the non-overlapped operator.
func (s *Slab) opXOverlap(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	visc := s.Cfg.Viscous
	n, nr := s.NxLoc, s.NrLoc
	fresh := s.Policy != Lagged // Wide steps reaching here are exchange steps
	c := &s.ctx
	c.v, c.lam, c.visc = v, s.Dt/(6*g.Dx), visc

	// Interior column ranges that touch no ghost data: the stress tensor
	// reaches one column out, the scheme stencil two.
	s1lo, s1hi := 1, n-1
	p2lo, p2hi := 2, n-2
	// The axial sweep exchanges radial ghost rows only under the Fresh
	// policy; lagged rows are already in place and keep every row core.
	rlo, rhi := s.coreRows(fresh)

	// Stage A: predictor with overlapped prim and flux exchanges.
	c.q, c.w = s.Q, s.W
	if !s.wReady {
		s.pfor(0, n, s.fnPrims)
	}
	s.wReady = false
	s.Halo.FillREdges(KPrims, s.W) // physical radial ghosts: local, filled eagerly
	s.Halo.Start(KPrims, s.W)
	if fresh {
		s.Halo.StartR(KPrims, s.W)
	}
	c.f = s.F
	c.j0, c.j1 = rlo, rhi
	s.pfor(s1lo, s1hi, s.fnStressFluxX)
	s.Halo.Finish(KPrims, s.W)
	if fresh {
		s.Halo.ReceiveR(KPrims, s.W) // physical sides were filled eagerly
	}
	s.frameX(s1lo, s1hi, rlo, rhi)
	s.Halo.Start(KFlux, s.F)
	s.pfor(p2lo, p2hi, s.fnPredictX)
	s.Halo.Finish(KFlux, s.F)
	s.pfor(0, p2lo, s.fnPredictX)
	s.pfor(p2hi, n, s.fnPredictX)
	// Boundary columns (no primitive fixups here: the overlapped stages
	// recompute the full primitive pass at the start of stage B).
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QP, 0)
		} else {
			s.In.Apply(s.QP, 0, s.Time+s.Dt)
		}
	}
	if s.rightWall {
		s.wallColumn(s.QP, n-1)
	}

	// Stage B: corrector, same structure. As in the non-overlapped
	// operator, Euler skips the predicted-prims exchange (and with it
	// the stress tensor, so the flux runs unsplit).
	c.q, c.w = s.QP, s.WP
	s.pfor(0, n, s.fnPrims)
	c.f = s.FP
	if visc {
		s.Halo.FillREdges(KPredPrims, s.WP)
		s.Halo.Start(KPredPrims, s.WP)
		if fresh {
			s.Halo.StartR(KPredPrims, s.WP)
		}
		c.j0, c.j1 = rlo, rhi
		s.pfor(s1lo, s1hi, s.fnStressFluxX)
		s.Halo.Finish(KPredPrims, s.WP)
		if fresh {
			s.Halo.ReceiveR(KPredPrims, s.WP) // physical sides were filled eagerly
		}
		s.frameX(s1lo, s1hi, rlo, rhi)
	} else {
		c.j0, c.j1 = 0, nr
		s.pfor(0, n, s.fnStressFluxX)
	}
	s.Halo.Start(KPredFlux, s.FP)
	s.pfor(p2lo, p2hi, s.fnCorrectX)
	s.Halo.Finish(KPredFlux, s.FP)
	s.pfor(0, p2lo, s.fnCorrectX)
	s.pfor(p2hi, n, s.fnCorrectX)

	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QN, 0)
		} else {
			s.In.Apply(s.QN, 0, s.Time+s.Dt)
		}
	}
	if s.Right {
		if s.rightWall {
			s.wallColumn(s.QN, n-1)
		} else {
			bc.OutflowX(gm, g.Dx, s.Dt, s.Q, s.W, s.F, s.QN, n-1)
		}
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountX(visc, n)
}

// frameR finishes the radial stress/flux/source sweep outside the core;
// the bundle triple is whatever ctx points at, ctx.j0/j1 are clobbered.
func (s *Slab) frameR(c1lo, c1hi, rlo, rhi int) {
	c := &s.ctx
	nr := s.NrLoc
	if c1lo > 0 {
		c.j0, c.j1 = 0, nr
		s.pfor(0, c1lo, s.fnStressFluxR)
		s.pfor(c1hi, s.NxLoc, s.fnStressFluxR)
	}
	if rlo > 0 {
		c.j0, c.j1 = 0, rlo
		s.pfor(c1lo, c1hi, s.fnStressFluxR)
	}
	if rhi < nr {
		c.j0, c.j1 = rhi, nr
		s.pfor(c1lo, c1hi, s.fnStressFluxR)
	}
}

// opROverlap is the Version-6 radial operator. The radial direction is
// the sweep direction, so its prim and flux row exchanges run under
// either policy and overlap with the interior rows; the axial prim
// exchanges (Fresh only) overlap with the interior columns. On a
// full-height slab the row exchanges carry no messages and only the
// axial overlap remains — the sweep the original Version 6 left fully
// serialized.
func (s *Slab) opROverlap(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	visc := s.Cfg.Viscous
	n, nr := s.NxLoc, s.NrLoc
	fresh := s.Policy != Lagged // Wide steps reaching here are exchange steps
	c := &s.ctx
	c.v, c.lam, c.visc = v, s.Dt/(6*g.Dr), visc

	// Column core: axial prim exchanges happen only under Fresh; under
	// Lagged the physical extrapolation is applied eagerly and every
	// column joins the core.
	c1lo, c1hi := 0, n
	if fresh {
		c1lo, c1hi = 1, n-1
	}
	// Row core for the stress/flux loops (ghost rows one out) and for
	// the scheme loops (radial stencil two out).
	rlo, rhi := s.coreRows(true)
	p2lo, p2hi := 2, nr-2

	// Stage A: predictor.
	c.q, c.w = s.Q, s.W
	if !s.wReady {
		s.pfor(0, n, s.fnPrims)
	}
	s.wReady = false
	if fresh {
		s.Halo.Start(KPrimsR, s.W)
	} else {
		s.Halo.FillEdges(KPrimsR, s.W)
	}
	s.Halo.FillREdges(KPrimsR, s.W) // physical radial ghosts: local, filled eagerly
	s.Halo.StartR(KPrimsR, s.W)
	c.f, c.src = s.F, s.Src
	c.j0, c.j1 = rlo, rhi
	s.pfor(c1lo, c1hi, s.fnStressFluxR)
	if fresh {
		s.Halo.Finish(KPrimsR, s.W)
	}
	s.Halo.ReceiveR(KPrimsR, s.W) // physical sides were filled eagerly
	s.frameR(c1lo, c1hi, rlo, rhi)
	s.Halo.StartR(KFlux, s.F)
	c.j0, c.j1 = p2lo, p2hi
	s.pfor(0, n, s.fnPredictRRows)
	s.Halo.FinishR(KFlux, s.F)
	s.pfor(0, n, s.fnPredictREdges)
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QP, 0)
		} else {
			s.In.Apply(s.QP, 0, s.Time+s.Dt)
		}
	}
	if s.rightWall {
		s.wallColumn(s.QP, n-1)
	}

	// Stage B: corrector, same structure.
	c.q, c.w = s.QP, s.WP
	s.pfor(0, n, s.fnPrims)
	if fresh {
		s.Halo.Start(KPredPrimsR, s.WP)
	} else {
		s.Halo.FillEdges(KPredPrimsR, s.WP)
	}
	s.Halo.FillREdges(KPredPrimsR, s.WP)
	s.Halo.StartR(KPredPrimsR, s.WP)
	c.f, c.src = s.FP, s.SrcP
	c.j0, c.j1 = rlo, rhi
	s.pfor(c1lo, c1hi, s.fnStressFluxR)
	if fresh {
		s.Halo.Finish(KPredPrimsR, s.WP)
	}
	s.Halo.ReceiveR(KPredPrimsR, s.WP) // physical sides were filled eagerly
	s.frameR(c1lo, c1hi, rlo, rhi)
	s.Halo.StartR(KPredFlux, s.FP)
	c.j0, c.j1 = p2lo, p2hi
	s.pfor(0, n, s.fnCorrectRRows)
	s.Halo.FinishR(KPredFlux, s.FP)
	s.pfor(0, n, s.fnCorrectREdges)

	if s.Top && !s.topWall {
		bc.FarFieldR(gm, g.Dr, s.Dt, g.Lr, s.R, s.Q, s.W, s.F, s.Src, s.QN, 0, n)
	}
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QN, 0)
		} else {
			s.In.Apply(s.QN, 0, s.Time+s.Dt)
		}
	}
	if s.rightWall {
		s.wallColumn(s.QN, n-1)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountR(visc, n)
}
