package solver

import (
	"repro/internal/bc"
	"repro/internal/flux"
	"repro/internal/scheme"
)

// opXOverlap is the paper's Version 6 axial operator: halo sends are
// initiated first, the interior portion of each loop (which needs no
// ghost data) runs while messages are in flight, then the exchange is
// completed and the edge columns are finished. The paper found the gain
// mostly offset by the extra loop setup and the loss of temporal
// locality from splitting each sweep — behaviour this implementation
// shares, since every kernel is invoked twice per stage.
//
// The overlap restructuring is defined for full-height slabs (the
// paper's axial-only decomposition): radial ghosts are the physical
// mirror/extrapolation, applied inline. The 2-D decomposition uses the
// non-overlapped operators.
func (s *Slab) opXOverlap(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	lam := s.Dt / (6 * g.Dx)
	visc := s.Cfg.Viscous
	n := s.NxLoc

	// Interior column ranges that touch no ghost data: the stress tensor
	// reaches one column out, the scheme stencil two.
	s1lo, s1hi := 1, n-1
	p2lo, p2hi := 2, n-2

	// Stage A: predictor with overlapped prim and flux exchanges.
	flux.Primitives(gm, s.Q, s.W, 0, n)
	radialGhosts(s.W)
	s.Halo.Start(KPrims, s.W)
	flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.W, s.S, s1lo, s1hi)
	flux.FluxX(gm, s.Q, s.W, s.S, s.F, s1lo, s1hi, visc)
	s.Halo.Finish(KPrims, s.W)
	flux.AxisMirrorPrims(s.W)
	flux.TopExtrapolatePrims(s.W)
	flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.W, s.S, 0, s1lo)
	flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.W, s.S, s1hi, n)
	flux.FluxX(gm, s.Q, s.W, s.S, s.F, 0, s1lo, visc)
	flux.FluxX(gm, s.Q, s.W, s.S, s.F, s1hi, n, visc)
	s.Halo.Start(KFlux, s.F)
	scheme.PredictX(v, lam, s.Q, s.F, s.QP, p2lo, p2hi)
	s.Halo.Finish(KFlux, s.F)
	scheme.PredictX(v, lam, s.Q, s.F, s.QP, 0, p2lo)
	scheme.PredictX(v, lam, s.Q, s.F, s.QP, p2hi, n)
	if s.Left {
		s.In.Apply(s.QP, 0, s.Time+s.Dt)
	}

	// Stage B: corrector, same structure. As in the non-overlapped
	// operator, Euler skips the predicted-prims exchange.
	flux.Primitives(gm, s.QP, s.WP, 0, n)
	radialGhosts(s.WP)
	if visc {
		s.Halo.Start(KPredPrims, s.WP)
		flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.WP, s.S, s1lo, s1hi)
		flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, s1lo, s1hi, visc)
		s.Halo.Finish(KPredPrims, s.WP)
		flux.AxisMirrorPrims(s.WP)
		flux.TopExtrapolatePrims(s.WP)
		flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.WP, s.S, 0, s1lo)
		flux.ComputeStress(gm, g.Dx, g.Dr, s.R, s.WP, s.S, s1hi, n)
		flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, 0, s1lo, visc)
		flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, s1hi, n, visc)
	} else {
		flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, 0, n, visc)
	}
	s.Halo.Start(KPredFlux, s.FP)
	scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, p2lo, p2hi)
	s.Halo.Finish(KPredFlux, s.FP)
	scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, 0, p2lo)
	scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, p2hi, n)

	if s.Left {
		s.In.Apply(s.QN, 0, s.Time+s.Dt)
	}
	if s.Right {
		bc.OutflowX(gm, g.Dx, s.Dt, s.Q, s.W, s.F, s.QN, n-1)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountX(visc, n)
}
