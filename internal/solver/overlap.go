package solver

import (
	"repro/internal/bc"
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/scheme"
)

// This file implements the paper's Version 6: halo sends are initiated
// first, the interior portion of each loop (which needs no ghost data)
// runs while messages are in flight, then the exchange is completed and
// the edges are finished. The paper found the gain mostly offset by the
// extra loop setup and the loss of temporal locality from splitting
// each sweep — behaviour this implementation shares, since every kernel
// is invoked twice per stage.
//
// The restructuring is defined for any sub-rectangle slab: each sweep
// splits into a 2-D interior core plus an edge frame. Columns touching
// axial ghost data wait for Finish, rows touching in-flight radial
// ghost rows wait for FinishR; physical radial sides are filled eagerly
// (the mirror/extrapolation is local), so their edge rows join the
// core, and the axial-only decomposition degenerates to the paper's
// full-height column split. All loops — core and frame alike — are
// dispatched through s.pfor so the overlap composes with the hybrid
// backend's per-rank DOALL pool.

// coreRows returns the rows of the stress/flux interior core — the
// rows whose radial ghost dependencies are satisfied before FinishR.
// A physical side's mirror/extrapolation is applied eagerly (it is
// local), so its edge row joins the core; an interior side's ghost
// rows are in flight while the core runs, so its edge row waits in
// the frame — unless this sweep skips the exchange (exchanging=false,
// the lagged case), in which case the ghost rows already hold their
// lagged contents and every row is core.
func (s *Slab) coreRows(exchanging bool) (lo, hi int) {
	lo, hi = 0, s.NrLoc
	if exchanging && !s.Bottom {
		lo = 1
	}
	if exchanging && !s.Top {
		hi = s.NrLoc - 1
	}
	return lo, hi
}

// opXOverlap is the Version-6 axial operator. Communication pattern and
// ghost-fill order match opX exactly (sends are merely initiated
// earlier, and packing reads interior values only), so the result is
// bitwise identical to the non-overlapped operator.
func (s *Slab) opXOverlap(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	lam := s.Dt / (6 * g.Dx)
	visc := s.Cfg.Viscous
	n, nr := s.NxLoc, s.NrLoc
	fresh := s.Policy == Fresh

	// Interior column ranges that touch no ghost data: the stress tensor
	// reaches one column out, the scheme stencil two.
	s1lo, s1hi := 1, n-1
	p2lo, p2hi := 2, n-2
	// The axial sweep exchanges radial ghost rows only under the Fresh
	// policy; lagged rows are already in place and keep every row core.
	rlo, rhi := s.coreRows(fresh)

	stressFluxX := func(q, w, f *flux.State, c0, c1, j0, j1 int) {
		flux.ComputeStressRows(gm, g.Dx, g.Dr, s.R, w, s.S, c0, c1, j0, j1)
		flux.FluxXRows(gm, q, w, s.S, f, c0, c1, j0, j1, visc)
	}
	// frame finishes the edge columns (full height) and, on interior
	// radial sides under Fresh, the edge rows of the interior columns.
	frame := func(q, w, f *flux.State) {
		s.pfor(0, s1lo, func(a, b int) { stressFluxX(q, w, f, a, b, 0, nr) })
		s.pfor(s1hi, n, func(a, b int) { stressFluxX(q, w, f, a, b, 0, nr) })
		if rlo > 0 {
			s.pfor(s1lo, s1hi, func(a, b int) { stressFluxX(q, w, f, a, b, 0, rlo) })
		}
		if rhi < nr {
			s.pfor(s1lo, s1hi, func(a, b int) { stressFluxX(q, w, f, a, b, rhi, nr) })
		}
	}

	// Stage A: predictor with overlapped prim and flux exchanges.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.Q, s.W, a, b) })
	s.Halo.FillREdges(s.W) // physical radial ghosts: local, filled eagerly
	s.Halo.Start(KPrims, s.W)
	if fresh {
		s.Halo.StartR(KPrims, s.W)
	}
	s.pfor(s1lo, s1hi, func(a, b int) { stressFluxX(s.Q, s.W, s.F, a, b, rlo, rhi) })
	s.Halo.Finish(KPrims, s.W)
	if fresh {
		s.Halo.ReceiveR(KPrims, s.W) // physical sides were filled eagerly
	}
	frame(s.Q, s.W, s.F)
	s.Halo.Start(KFlux, s.F)
	s.pfor(p2lo, p2hi, func(a, b int) { scheme.PredictX(v, lam, s.Q, s.F, s.QP, a, b) })
	s.Halo.Finish(KFlux, s.F)
	s.pfor(0, p2lo, func(a, b int) { scheme.PredictX(v, lam, s.Q, s.F, s.QP, a, b) })
	s.pfor(p2hi, n, func(a, b int) { scheme.PredictX(v, lam, s.Q, s.F, s.QP, a, b) })
	if s.Left {
		s.In.Apply(s.QP, 0, s.Time+s.Dt)
	}

	// Stage B: corrector, same structure. As in the non-overlapped
	// operator, Euler skips the predicted-prims exchange (and with it
	// the stress tensor, so the flux runs unsplit).
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.QP, s.WP, a, b) })
	if visc {
		s.Halo.FillREdges(s.WP)
		s.Halo.Start(KPredPrims, s.WP)
		if fresh {
			s.Halo.StartR(KPredPrims, s.WP)
		}
		s.pfor(s1lo, s1hi, func(a, b int) { stressFluxX(s.QP, s.WP, s.FP, a, b, rlo, rhi) })
		s.Halo.Finish(KPredPrims, s.WP)
		if fresh {
			s.Halo.ReceiveR(KPredPrims, s.WP) // physical sides were filled eagerly
		}
		frame(s.QP, s.WP, s.FP)
	} else {
		s.pfor(0, n, func(a, b int) { flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, a, b, visc) })
	}
	s.Halo.Start(KPredFlux, s.FP)
	s.pfor(p2lo, p2hi, func(a, b int) { scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, a, b) })
	s.Halo.Finish(KPredFlux, s.FP)
	s.pfor(0, p2lo, func(a, b int) { scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, a, b) })
	s.pfor(p2hi, n, func(a, b int) { scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, a, b) })

	if s.Left {
		s.In.Apply(s.QN, 0, s.Time+s.Dt)
	}
	if s.Right {
		bc.OutflowX(gm, g.Dx, s.Dt, s.Q, s.W, s.F, s.QN, n-1)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountX(visc, n)
}

// opROverlap is the Version-6 radial operator. The radial direction is
// the sweep direction, so its prim and flux row exchanges run under
// either policy and overlap with the interior rows; the axial prim
// exchanges (Fresh only) overlap with the interior columns. On a
// full-height slab the row exchanges carry no messages and only the
// axial overlap remains — the sweep the original Version 6 left fully
// serialized.
func (s *Slab) opROverlap(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	lam := s.Dt / (6 * g.Dr)
	visc := s.Cfg.Viscous
	n, nr := s.NxLoc, s.NrLoc
	fresh := s.Policy == Fresh

	// Column core: axial prim exchanges happen only under Fresh; under
	// Lagged the physical extrapolation is applied eagerly and every
	// column joins the core.
	c1lo, c1hi := 0, n
	if fresh {
		c1lo, c1hi = 1, n-1
	}
	// Row core for the stress/flux loops (ghost rows one out) and for
	// the scheme loops (radial stencil two out).
	rlo, rhi := s.coreRows(true)
	p2lo, p2hi := 2, nr-2

	stressFluxR := func(q, w, f *flux.State, src *field.Field, c0, c1, j0, j1 int) {
		flux.ComputeStressRows(gm, g.Dx, g.Dr, s.R, w, s.S, c0, c1, j0, j1)
		flux.FluxRRows(gm, s.R, q, w, s.S, f, c0, c1, j0, j1, visc)
		flux.SourceRows(gm, s.R, w, s.S, src, c0, c1, j0, j1, visc)
	}
	frame := func(q, w, f *flux.State, src *field.Field) {
		if c1lo > 0 {
			s.pfor(0, c1lo, func(a, b int) { stressFluxR(q, w, f, src, a, b, 0, nr) })
			s.pfor(c1hi, n, func(a, b int) { stressFluxR(q, w, f, src, a, b, 0, nr) })
		}
		if rlo > 0 {
			s.pfor(c1lo, c1hi, func(a, b int) { stressFluxR(q, w, f, src, a, b, 0, rlo) })
		}
		if rhi < nr {
			s.pfor(c1lo, c1hi, func(a, b int) { stressFluxR(q, w, f, src, a, b, rhi, nr) })
		}
	}

	// Stage A: predictor.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.Q, s.W, a, b) })
	if fresh {
		s.Halo.Start(KPrimsR, s.W)
	} else {
		s.Halo.FillEdges(s.W)
	}
	s.Halo.FillREdges(s.W) // physical radial ghosts: local, filled eagerly
	s.Halo.StartR(KPrimsR, s.W)
	s.pfor(c1lo, c1hi, func(a, b int) { stressFluxR(s.Q, s.W, s.F, s.Src, a, b, rlo, rhi) })
	if fresh {
		s.Halo.Finish(KPrimsR, s.W)
	}
	s.Halo.ReceiveR(KPrimsR, s.W) // physical sides were filled eagerly
	frame(s.Q, s.W, s.F, s.Src)
	s.Halo.StartR(KFlux, s.F)
	s.pfor(0, n, func(a, b int) { scheme.PredictRRows(v, lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, a, b, p2lo, p2hi) })
	s.Halo.FinishR(KFlux, s.F)
	s.pfor(0, n, func(a, b int) {
		scheme.PredictRRows(v, lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, a, b, 0, p2lo)
		scheme.PredictRRows(v, lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, a, b, p2hi, nr)
	})
	if s.Left {
		s.In.Apply(s.QP, 0, s.Time+s.Dt)
	}

	// Stage B: corrector, same structure.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.QP, s.WP, a, b) })
	if fresh {
		s.Halo.Start(KPredPrimsR, s.WP)
	} else {
		s.Halo.FillEdges(s.WP)
	}
	s.Halo.FillREdges(s.WP)
	s.Halo.StartR(KPredPrimsR, s.WP)
	s.pfor(c1lo, c1hi, func(a, b int) { stressFluxR(s.QP, s.WP, s.FP, s.SrcP, a, b, rlo, rhi) })
	if fresh {
		s.Halo.Finish(KPredPrimsR, s.WP)
	}
	s.Halo.ReceiveR(KPredPrimsR, s.WP) // physical sides were filled eagerly
	frame(s.QP, s.WP, s.FP, s.SrcP)
	s.Halo.StartR(KPredFlux, s.FP)
	s.pfor(0, n, func(a, b int) { scheme.CorrectRRows(v, lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, a, b, p2lo, p2hi) })
	s.Halo.FinishR(KPredFlux, s.FP)
	s.pfor(0, n, func(a, b int) {
		scheme.CorrectRRows(v, lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, a, b, 0, p2lo)
		scheme.CorrectRRows(v, lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, a, b, p2hi, nr)
	})

	if s.Top {
		bc.FarFieldR(gm, g.Dr, s.Dt, g.Lr, s.R, s.Q, s.W, s.F, s.Src, s.QN, 0, n)
	}
	if s.Left {
		s.In.Apply(s.QN, 0, s.Time+s.Dt)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountR(visc, n)
}
