// Propagator state surface: clock reseeding plus whole-state load/store
// between a slab and a global-grid conservative bundle, and bilinear
// resampling between grids of different resolution. Together these let a
// Parareal coordinator treat any slab-backed solver as a propagator: seed
// an initial condition mid-trajectory, advance, and read the result back
// on the global grid (or a coarse companion of it).
package solver

import (
	"repro/internal/flux"
	"repro/internal/grid"
)

// SetClock reseeds the solver's time integration state so the next
// Advance behaves exactly as it would mid-way through a longer serial
// run: Step selects the operator-splitting variant (L1 on even steps, L2
// on odd) and the wide-halo refresh phase, Time positions the
// time-dependent inflow excitation, and dt is the fixed step size. The
// cached primitive bundle is invalidated because it describes whatever
// state the slab held before.
func (s *Slab) SetClock(step int, time, dt float64) {
	s.Step = step
	s.Time = time
	s.Dt = dt
	s.wReady = false
}

// LoadState scatters a global-grid conservative state into the slab's
// entire local rectangle — redundant Wide shell included, since the
// incoming state is exact everywhere and an exactly-filled shell is a
// superset of the partially-decayed shell a continuous run carries (the
// core therefore reads only valid points and the trajectory matches the
// serial one bitwise). Radial ghost rows are rebuilt by the boundary
// conditions of the next Advance; the primitive cache is invalidated.
func (s *Slab) LoadState(full *flux.State) {
	for k := 0; k < flux.NVar; k++ {
		for c := 0; c < s.NxLoc; c++ {
			src := full[k].Col(s.I0 + c)
			copy(s.Q[k].Col(c), src[s.J0:s.J0+s.NrLoc])
		}
	}
	s.wReady = false
}

// StoreState gathers the slab's owned core — columns [ExtL, NxLoc-ExtR)
// by rows [ExtB, NrLoc-ExtT), the region every report path trusts — into
// the matching rectangle of a global-grid conservative state. Writing
// cores from every slab of a decomposition tiles the full grid exactly.
func (s *Slab) StoreState(full *flux.State) {
	c0, c1 := s.ExtL, s.NxLoc-s.ExtR
	r0, r1 := s.ExtB, s.NrLoc-s.ExtT
	for k := 0; k < flux.NVar; k++ {
		for c := c0; c < c1; c++ {
			dst := full[k].Col(s.I0 + c)
			copy(dst[s.J0+r0:s.J0+r1], s.Q[k].Col(c)[r0:r1])
		}
	}
}

// Resample maps a conservative state between two grids of the same
// physical domain by bilinear interpolation on the node coordinates.
// It serves both directions of the Parareal coarse propagator: restrict
// (fine -> coarse) and prolong (coarse -> fine). Identical resolutions
// short-circuit to a direct copy, so a 1:1 "coarse" grid is bitwise
// transparent. Points outside the source node hull (the half-cell bands
// a finer radial stagger reaches past a coarser one) clamp to constant
// extrapolation. Interiors only; ghosts are left for the destination
// solver's boundary conditions.
func Resample(dst *flux.State, dg *grid.Grid, src *flux.State, sg *grid.Grid) {
	if dg.Nx == sg.Nx && dg.Nr == sg.Nr {
		for k := 0; k < flux.NVar; k++ {
			dst[k].CopyFrom(src[k])
		}
		return
	}
	for i := 0; i < dg.Nx; i++ {
		// X spans [0, Lx] at every resolution with X[i] = i*Dx, so the
		// fractional source column is a single division.
		fx := dg.X[i] / sg.Dx
		i0, tx := clampFrac(fx, sg.Nx)
		for k := 0; k < flux.NVar; k++ {
			a := src[k].Col(i0)
			b := src[k].Col(i0 + 1)
			out := dst[k].Col(i)
			for j := 0; j < dg.Nr; j++ {
				// R[j] = R0 + (j+0.5)*Dr, so index distance from the
				// first source node is (r - R[0])/Dr exactly.
				fr := (dg.R[j] - sg.R[0]) / sg.Dr
				j0, tr := clampFrac(fr, sg.Nr)
				lo := a[j0] + tx*(b[j0]-a[j0])
				hi := a[j0+1] + tx*(b[j0+1]-a[j0+1])
				out[j] = lo + tr*(hi-lo)
			}
		}
	}
}

// clampFrac splits a fractional index into a base cell i0 in [0, n-2]
// and a weight t in [0, 1], clamping out-of-hull points to the boundary
// cell with constant extrapolation.
func clampFrac(f float64, n int) (i0 int, t float64) {
	if f <= 0 {
		return 0, 0
	}
	if f >= float64(n-1) {
		return n - 2, 1
	}
	i0 = int(f)
	if i0 > n-2 {
		i0 = n - 2
	}
	return i0, f - float64(i0)
}
