// Package solver implements the time integration of the paper's
// numerical model on a slab of axial columns. The same engine serves
// the serial reference solver (one slab spanning the domain) and every
// rank of the distributed-memory solver (internal/par), which guarantees
// that the parallel code computes exactly the serial arithmetic.
//
// A composite time step alternates the split one-dimensional operators
// exactly as the paper's Section 3:
//
//	Q^{n+1} = L1x L1r Q^n        (radial sweep first)
//	Q^{n+2} = L2r L2x Q^{n+1}    (axial sweep first)
package solver

import (
	"fmt"
	"math"

	"repro/internal/bc"
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// Kind tags the purpose of a halo fill so the message layer can group
// and account for each of the paper's exchanges.
type Kind int

const (
	KPrims      Kind = iota // E1: rho,u,v,T of the current state
	KFlux                   // E2: axial flux F
	KPredPrims              // E3: rho,u,v,T of the predicted state
	KPredFlux               // E4: axial flux Fbar
	KPrimsR                 // Fresh policy only: prims before the radial sweep
	KPredPrimsR             // Fresh policy only: predicted prims in the radial sweep
	NKinds
)

func (k Kind) String() string {
	switch k {
	case KPrims:
		return "prims"
	case KFlux:
		return "flux"
	case KPredPrims:
		return "pred-prims"
	case KPredFlux:
		return "pred-flux"
	case KPrimsR:
		return "prims-r"
	case KPredPrimsR:
		return "pred-prims-r"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Halo supplies ghost columns for a slab: neighbour exchange on interior
// sides and cubic edge extrapolation on physical-domain sides.
type Halo interface {
	// Fill exchanges the two ghost columns on interior sides and
	// extrapolates on domain-edge sides.
	Fill(k Kind, b *flux.State)
	// FillEdges performs only the domain-edge extrapolation (used by the
	// Lagged halo policy, which skips the radial-sweep exchanges).
	FillEdges(b *flux.State)
	// Start initiates the sends of an exchange without waiting for the
	// incoming halo; Finish completes it. Fill is equivalent to Start
	// followed by Finish. Used by the paper's Version 6 overlap of
	// communication and computation.
	Start(k Kind, b *flux.State)
	Finish(k Kind, b *flux.State)
}

// HaloPolicy selects the radial-sweep halo treatment (see DESIGN.md §5).
type HaloPolicy int

const (
	// Lagged reuses the newest already-exchanged halo for viscous
	// cross-derivatives in the radial sweep. This matches the paper's
	// Table 1 message budget exactly (16 startups/step for N-S).
	Lagged HaloPolicy = iota
	// Fresh adds two radial-sweep prim exchanges so that every stencil
	// sees current data; the parallel run then reproduces the serial
	// arithmetic bitwise.
	Fresh
)

func (p HaloPolicy) String() string {
	if p == Fresh {
		return "fresh"
	}
	return "lagged"
}

// Slab owns a contiguous range of axial columns and advances them in
// time. All fields are sized to the local width plus ghost columns.
type Slab struct {
	Grid *grid.Grid
	Gas  gas.Model
	Cfg  jet.Config

	I0    int // first owned global column
	NxLoc int // number of owned columns
	Left  bool
	Right bool

	Q, QP, QN *flux.State // state, predicted state, next state
	W, WP     *flux.State // primitives of Q and QP
	F, FP     *flux.State // flux scratch (axial f or radial r*g)
	S         *flux.Stress
	Src, SrcP *field.Field

	In     *bc.Inflow
	Halo   Halo
	Policy HaloPolicy
	// Overlap enables the paper's Version 6: interior stress/flux/update
	// loops run while halo messages are in flight, at the cost of split
	// loops (higher setup overhead, reduced temporal locality).
	Overlap bool
	// Pool, when non-nil, parallelizes each column loop across workers —
	// the shared-memory DOALL model the paper used on the Cray Y-MP.
	// Every kernel region is a fork-join loop over independent columns,
	// so the result is bitwise identical to the serial execution.
	Pool ParallelFor

	Dt   float64
	Time float64
	Step int

	RInv []float64
	T    *trace.Counters

	// momBuf backs AxialMomentum's returned columns, allocated once and
	// reused across calls.
	momBuf []float64
}

// NewSlab builds a slab owning global columns [i0, i0+nxloc) of g.
func NewSlab(cfg jet.Config, g *grid.Grid, gm gas.Model, i0, nxloc int, halo Halo, policy HaloPolicy) (*Slab, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nxloc < 4 {
		return nil, fmt.Errorf("solver: slab needs >= 4 columns for the 2-4 stencil and cubic extrapolation, got %d", nxloc)
	}
	if i0 < 0 || i0+nxloc > g.Nx {
		return nil, fmt.Errorf("solver: slab [%d,%d) outside grid of %d columns", i0, i0+nxloc, g.Nx)
	}
	s := &Slab{
		Grid: g, Gas: gm, Cfg: cfg,
		I0: i0, NxLoc: nxloc,
		Left: i0 == 0, Right: i0+nxloc == g.Nx,
		Q: flux.NewState(nxloc, g.Nr), QP: flux.NewState(nxloc, g.Nr), QN: flux.NewState(nxloc, g.Nr),
		W: flux.NewState(nxloc, g.Nr), WP: flux.NewState(nxloc, g.Nr),
		F: flux.NewState(nxloc, g.Nr), FP: flux.NewState(nxloc, g.Nr),
		S:   flux.NewStress(nxloc, g.Nr),
		Src: field.New(nxloc, g.Nr), SrcP: field.New(nxloc, g.Nr),
		Halo: halo, Policy: policy,
		RInv: make([]float64, g.Nr),
		T:    &trace.Counters{},
	}
	for j, r := range g.R {
		s.RInv[j] = 1 / r
	}
	s.In = bc.NewInflow(cfg, gm, g.R)
	return s, nil
}

// InitParallelFlow sets the initial condition: the mean inflow profile
// extended downstream (parallel flow), v = 0, constant static pressure.
func (s *Slab) InitParallelFlow() {
	gm := s.Gas
	for c := 0; c < s.NxLoc; c++ {
		for j, r := range s.Grid.R {
			T := s.Cfg.MeanT(gm.Gamma, r)
			w := gas.Primitive{Rho: 1 / T, U: s.Cfg.MeanU(r), V: 0, P: gm.AmbientPressure()}
			q := gm.ToConserved(w)
			s.Q[flux.IRho].Set(c, j, q.Rho)
			s.Q[flux.IMx].Set(c, j, q.Mx)
			s.Q[flux.IMr].Set(c, j, q.Mr)
			s.Q[flux.IE].Set(c, j, q.E)
		}
	}
}

// StableDt returns the slab-local CFL-stable time step.
func (s *Slab) StableDt(cfl float64) float64 {
	gm := s.Gas
	g := s.Grid
	nuFac := gm.Mu * math.Max(4.0/3.0, gm.Gamma/gm.Pr)
	invD2 := 1/(g.Dx*g.Dx) + 1/(g.Dr*g.Dr)
	maxRate := 0.0
	flux.Primitives(gm, s.Q, s.W, 0, s.NxLoc)
	for c := 0; c < s.NxLoc; c++ {
		rho, u, v, T := s.W[flux.IRho].Col(c), s.W[flux.IMx].Col(c), s.W[flux.IMr].Col(c), s.W[flux.IE].Col(c)
		for j := range rho {
			cs := math.Sqrt(T[j])
			rate := (math.Abs(u[j])+cs)/g.Dx + (math.Abs(v[j])+cs)/g.Dr + 2*nuFac/rho[j]*invD2
			if rate > maxRate {
				maxRate = rate
			}
		}
	}
	return cfl / maxRate
}

// variantFor returns the operator variant for a composite step index
// (L1 on even steps, L2 on odd) and whether the radial sweep runs first.
func variantFor(step int) (scheme.Variant, bool) {
	if step%2 == 0 {
		return scheme.L1, true // Q^{n+1} = L1x L1r Q^n
	}
	return scheme.L2, false // Q^{n+2} = L2r L2x Q^{n+1}
}

// Advance performs one composite time step (one Lx and one Lr sweep).
func (s *Slab) Advance() {
	v, rFirst := variantFor(s.Step)
	if rFirst {
		s.opR(v)
		s.opX(v)
	} else {
		s.opX(v)
		s.opR(v)
	}
	s.Step++
	s.Time += s.Dt
}

// ParallelFor runs fn over subranges of [lo, hi) on a worker pool; see
// internal/shm for the implementation. A DOALL directive in the paper's
// Cray terms.
type ParallelFor interface {
	Split(lo, hi int, fn func(lo, hi int))
}

// pfor dispatches a column loop to the pool, or runs it inline.
func (s *Slab) pfor(lo, hi int, fn func(lo, hi int)) {
	if s.Pool == nil {
		fn(lo, hi)
		return
	}
	s.Pool.Split(lo, hi, fn)
}

// radialGhosts applies axis mirror and far-field extrapolation to a
// primitive bundle (all columns including axial ghosts).
func radialGhosts(w *flux.State) {
	flux.AxisMirrorPrims(w)
	flux.TopExtrapolatePrims(w)
}

// opX applies the axial operator (predictor + corrector) with the given
// variant. Communication pattern: E1 prims, E2 flux, E3 predicted
// prims, E4 predicted flux — the paper's four grouped N-S exchanges.
func (s *Slab) opX(v scheme.Variant) {
	if s.Overlap {
		s.opXOverlap(v)
		return
	}
	gm, g := s.Gas, s.Grid
	lam := s.Dt / (6 * g.Dx)
	visc := s.Cfg.Viscous
	n := s.NxLoc

	// Stage A: predictor.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.Q, s.W, a, b) })
	s.Halo.Fill(KPrims, s.W)
	radialGhosts(s.W)
	s.pfor(0, n, func(a, b int) {
		flux.ComputeStress(gm, g.Dx, g.Dr, g.R, s.W, s.S, a, b)
		flux.FluxX(gm, s.Q, s.W, s.S, s.F, a, b, visc)
	})
	s.Halo.Fill(KFlux, s.F)
	s.pfor(0, n, func(a, b int) { scheme.PredictX(v, lam, s.Q, s.F, s.QP, a, b) })
	if s.Left {
		s.In.Apply(s.QP, 0, s.Time+s.Dt)
	}

	// Stage B: corrector. The predicted-prims exchange feeds the
	// predicted stress tensor; Euler needs no stresses, which is why the
	// paper's Euler budget is three exchanges per step, not four.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.QP, s.WP, a, b) })
	if visc {
		s.Halo.Fill(KPredPrims, s.WP)
		radialGhosts(s.WP)
	}
	s.pfor(0, n, func(a, b int) {
		flux.ComputeStress(gm, g.Dx, g.Dr, g.R, s.WP, s.S, a, b)
		flux.FluxX(gm, s.QP, s.WP, s.S, s.FP, a, b, visc)
	})
	s.Halo.Fill(KPredFlux, s.FP)
	s.pfor(0, n, func(a, b int) { scheme.CorrectX(v, lam, s.Q, s.QP, s.FP, s.QN, a, b) })

	if s.Left {
		s.In.Apply(s.QN, 0, s.Time+s.Dt)
	}
	if s.Right {
		bc.OutflowX(gm, g.Dx, s.Dt, s.Q, s.W, s.F, s.QN, n-1)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountX(visc, n)
}

// opR applies the radial operator. No flux communication is required
// (the decomposition is axial); under the Fresh policy two extra prim
// exchanges keep viscous cross-derivatives exact at slab boundaries.
func (s *Slab) opR(v scheme.Variant) {
	gm, g := s.Gas, s.Grid
	lam := s.Dt / (6 * g.Dr)
	visc := s.Cfg.Viscous
	n := s.NxLoc

	// Stage A: predictor.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.Q, s.W, a, b) })
	if s.Policy == Fresh {
		s.Halo.Fill(KPrimsR, s.W)
	} else {
		s.Halo.FillEdges(s.W)
	}
	radialGhosts(s.W)
	s.pfor(0, n, func(a, b int) {
		flux.ComputeStress(gm, g.Dx, g.Dr, g.R, s.W, s.S, a, b)
		flux.FluxR(gm, g.R, s.Q, s.W, s.S, s.F, a, b, visc)
		flux.Source(gm, g.R, s.W, s.S, s.Src, a, b, visc)
	})
	flux.MirrorFluxR(s.F)
	for k := range s.F {
		s.F[k].ExtrapolateTop()
	}
	s.pfor(0, n, func(a, b int) { scheme.PredictR(v, lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, a, b) })
	if s.Left {
		s.In.Apply(s.QP, 0, s.Time+s.Dt)
	}

	// Stage B: corrector.
	s.pfor(0, n, func(a, b int) { flux.Primitives(gm, s.QP, s.WP, a, b) })
	if s.Policy == Fresh {
		s.Halo.Fill(KPredPrimsR, s.WP)
	} else {
		s.Halo.FillEdges(s.WP)
	}
	radialGhosts(s.WP)
	s.pfor(0, n, func(a, b int) {
		flux.ComputeStress(gm, g.Dx, g.Dr, g.R, s.WP, s.S, a, b)
		flux.FluxR(gm, g.R, s.QP, s.WP, s.S, s.FP, a, b, visc)
		flux.Source(gm, g.R, s.WP, s.S, s.SrcP, a, b, visc)
	})
	flux.MirrorFluxR(s.FP)
	for k := range s.FP {
		s.FP[k].ExtrapolateTop()
	}
	s.pfor(0, n, func(a, b int) { scheme.CorrectR(v, lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, a, b) })

	bc.FarFieldR(gm, g.Dr, s.Dt, g.Lr, g.R, s.Q, s.W, s.F, s.Src, s.QN, 0, n)
	if s.Left {
		s.In.Apply(s.QN, 0, s.Time+s.Dt)
	}
	s.Q, s.QN = s.QN, s.Q
	s.accountR(visc, n)
}

// accountX accumulates the analytic FLOP count of one axial operator.
func (s *Slab) accountX(visc bool, n int) {
	pts := float64(n * s.Grid.Nr)
	fl := 2 * float64(flux.FlopsPrims)
	if visc {
		fl += 2 * float64(flux.FlopsStress+flux.FlopsFluxXVisc)
	} else {
		fl += 2 * float64(flux.FlopsFluxXInvisc)
	}
	fl += float64(scheme.FlopsPredictX + scheme.FlopsCorrectX)
	s.T.AddFlops(fl * pts)
	if s.Right {
		s.T.AddFlops(float64(bc.FlopsCharPoint) * float64(s.Grid.Nr))
	}
}

// accountR accumulates the analytic FLOP count of one radial operator.
func (s *Slab) accountR(visc bool, n int) {
	pts := float64(n * s.Grid.Nr)
	fl := 2 * float64(flux.FlopsPrims+flux.FlopsSource)
	if visc {
		fl += 2 * float64(flux.FlopsStress+flux.FlopsFluxRVisc)
	} else {
		fl += 2 * float64(flux.FlopsFluxRInvisc)
	}
	fl += float64(scheme.FlopsPredictR + scheme.FlopsCorrectR)
	s.T.AddFlops(fl * pts)
	s.T.AddFlops(float64(bc.FlopsCharPoint) * float64(n)) // far-field row
}

// Diagnostics summarizes the slab state for validation and reporting.
type Diagnostics struct {
	Mass      float64 // integral of rho r dr dx over owned columns
	Energy    float64 // integral of E r dr dx
	MaxV      float64 // max |v| (excitation growth indicator)
	MinRho    float64
	MinP      float64
	HasNaN    bool
	OwnPoints int
}

// Diagnose computes conserved integrals and sanity indicators.
func (s *Slab) Diagnose() Diagnostics {
	g := s.Grid
	gm := s.Gas
	d := Diagnostics{MinRho: math.Inf(1), MinP: math.Inf(1), OwnPoints: s.NxLoc * g.Nr}
	vol := g.Dx * g.Dr
	for c := 0; c < s.NxLoc; c++ {
		rho, mx, mr, e := s.Q[flux.IRho].Col(c), s.Q[flux.IMx].Col(c), s.Q[flux.IMr].Col(c), s.Q[flux.IE].Col(c)
		for j := range rho {
			r := g.R[j]
			d.Mass += rho[j] * r * vol
			d.Energy += e[j] * r * vol
			v := mr[j] / rho[j]
			if a := math.Abs(v); a > d.MaxV {
				d.MaxV = a
			}
			p := gm.PressureFromConserved(rho[j], mx[j], mr[j], e[j])
			if rho[j] < d.MinRho {
				d.MinRho = rho[j]
			}
			if p < d.MinP {
				d.MinP = p
			}
			if math.IsNaN(rho[j]) || math.IsNaN(e[j]) || math.IsNaN(mx[j]) || math.IsNaN(mr[j]) {
				d.HasNaN = true
			}
		}
	}
	return d
}

// AxialMomentum extracts the rho*u field (the quantity contoured in the
// paper's Figure 1) for the owned columns. The column storage is a
// slab-owned buffer reused by subsequent calls: callers that need the
// snapshot to survive the next call must copy it.
func (s *Slab) AxialMomentum() [][]float64 {
	nr := s.Grid.Nr
	if cap(s.momBuf) < s.NxLoc*nr {
		s.momBuf = make([]float64, s.NxLoc*nr)
	}
	out := make([][]float64, s.NxLoc)
	for c := 0; c < s.NxLoc; c++ {
		col := s.momBuf[c*nr : (c+1)*nr]
		copy(col, s.Q[flux.IMx].Col(c))
		out[c] = col
	}
	return out
}
