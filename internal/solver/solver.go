// Package solver implements the time integration of the paper's
// numerical model on a slab of axial columns. The same engine serves
// the serial reference solver (one slab spanning the domain) and every
// rank of the distributed-memory solver (internal/par), which guarantees
// that the parallel code computes exactly the serial arithmetic.
//
// A composite time step alternates the split one-dimensional operators
// exactly as the paper's Section 3:
//
//	Q^{n+1} = L1x L1r Q^n        (radial sweep first)
//	Q^{n+2} = L2r L2x Q^{n+1}    (axial sweep first)
package solver

import (
	"fmt"
	"math"

	"repro/internal/bc"
	"repro/internal/field"
	"repro/internal/flux"
	"repro/internal/gas"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/scheme"
	"repro/internal/trace"
)

// Kind tags the purpose of a halo fill so the message layer can group
// and account for each of the paper's exchanges. A Kind names what a
// fill carries; the direction comes from the method it is passed to
// (Fill exchanges axial ghost columns, FillR radial ghost rows), so the
// 2-D decomposition reuses the same tags on its row exchanges — KFlux
// on a FillR call carries radial-flux rows, the sweep-direction flux
// exchange of the radial operator.
type Kind int

const (
	KPrims      Kind = iota // E1: rho,u,v,T of the current state
	KFlux                   // E2: sweep-direction flux (axial F, or radial r*g rows)
	KPredPrims              // E3: rho,u,v,T of the predicted state
	KPredFlux               // E4: predicted sweep-direction flux
	KPrimsR                 // prims of the radial sweep (axial: Fresh policy only)
	KPredPrimsR             // predicted prims of the radial sweep (axial: Fresh only)
	NKinds
)

func (k Kind) String() string {
	switch k {
	case KPrims:
		return "prims"
	case KFlux:
		return "flux"
	case KPredPrims:
		return "pred-prims"
	case KPredFlux:
		return "pred-flux"
	case KPrimsR:
		return "prims-r"
	case KPredPrimsR:
		return "pred-prims-r"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Halo supplies ghost values for a slab in both grid directions:
// neighbour exchange on interior sides and the physical boundary
// treatment on domain-edge sides (cubic extrapolation axially, axis
// mirror / far-field extrapolation radially). Slabs of the axial-only
// decomposition have physical radial sides everywhere, so their FillR
// degenerates to the serial mirror/extrapolation; 2-D slabs exchange
// ghost rows with their down/up neighbours instead.
type Halo interface {
	// Fill exchanges the two ghost columns on interior sides and
	// extrapolates on domain-edge sides.
	Fill(k Kind, b *flux.State)
	// FillEdges performs only the domain-edge extrapolation, leaving
	// interior ghost columns untouched (the Lagged policy's radial-sweep
	// fills, and every fill of a Wide(k) policy's exchange-free steps).
	FillEdges(k Kind, b *flux.State)
	// FillR fills the two ghost rows on each radial side: neighbour
	// exchange on interior sides, axis parity mirror at the bottom edge
	// and cubic far-field extrapolation at the top edge. The parity and
	// extrapolation treatment is shared by the primitive and radial-flux
	// bundles (component IMr odd, the rest even).
	FillR(k Kind, b *flux.State)
	// FillREdges performs only the physical radial treatment; interior
	// ghost rows keep their previous — lagged or decaying — contents.
	FillREdges(k Kind, b *flux.State)
	// Refresh re-exchanges the redundant shell of a Wide(k) policy: on
	// each interior side the neighbour's freshly-owned copy of the
	// shell's ExtL/ExtR columns (and ExtB/ExtT rows) replaces the
	// decayed local one, resetting the staleness clock. A no-op for
	// halos without a redundant shell (serial edges, depth-1 policies).
	Refresh(b *flux.State)
	// Start initiates the sends of an exchange without waiting for the
	// incoming halo; Finish completes it. Fill is equivalent to Start
	// followed by Finish. Used by the paper's Version 6 overlap of
	// communication and computation.
	Start(k Kind, b *flux.State)
	Finish(k Kind, b *flux.State)
	// StartR and FinishR split FillR the same way for the radial (row)
	// exchanges of the 2-D decomposition; FinishR applies the physical
	// treatment on domain-edge sides. On a full-height slab both sides
	// are physical, so StartR sends nothing and FinishR degenerates to
	// FillREdges.
	StartR(k Kind, b *flux.State)
	FinishR(k Kind, b *flux.State)
	// ReceiveR completes only the interior-side receives of StartR,
	// skipping the physical edge treatment. The overlapped operators
	// use it: they fill physical radial ghosts eagerly (so those rows
	// can join the interior core), and the owned rows the treatment
	// reads have not changed since, so re-applying it in the finish
	// would be pure duplicated work.
	ReceiveR(k Kind, b *flux.State)
}

// HaloPolicy selects the halo treatment (see DESIGN.md §5): the
// Lagged/Fresh pair of the paper's message-budget study, or the
// communication-avoiding Wide(k) family. The numeric value of a
// Wide(k) policy is k itself, so Fresh is literally Wide(1) — the
// depth-1 member whose exchange cadence is every stage of every step.
type HaloPolicy int

const (
	// Lagged reuses the newest already-exchanged halo for viscous
	// cross-derivatives in the radial sweep. This matches the paper's
	// Table 1 message budget exactly (16 startups/step for N-S).
	Lagged HaloPolicy = iota
	// Fresh adds two radial-sweep prim exchanges so that every stencil
	// sees current data; the parallel run then reproduces the serial
	// arithmetic bitwise.
	Fresh
)

// Wide returns the depth-k communication-avoiding policy: each rank
// carries a redundant shell of trace.WideExtension points per interior
// side and advances it alongside its core, so interior neighbours
// exchange (per-stage, exactly as Fresh) only on every k-th step,
// preceded by a shell refresh. Between exchanges the stale shell decays
// from the outside in, never reaching the core, so owned points stay
// bitwise-identical to the serial run. Wide(1) is Fresh itself.
func Wide(k int) HaloPolicy {
	if k < 1 {
		panic("solver: Wide halo depth must be >= 1")
	}
	return HaloPolicy(k)
}

// Depth returns the exchange cadence of the policy in composite steps:
// 1 for Lagged and Fresh (exchange every step), k for Wide(k).
func (p HaloPolicy) Depth() int {
	if p <= Fresh {
		return 1
	}
	return int(p)
}

func (p HaloPolicy) String() string {
	switch {
	case p == Fresh:
		return "fresh"
	case p > Fresh:
		return fmt.Sprintf("wide(%d)", int(p))
	}
	return "lagged"
}

// Slab owns a contiguous sub-rectangle of the domain — a range of axial
// columns crossed with a range of radial rows — and advances it in
// time. All fields are sized to the local extent plus ghost layers.
// The axial-only decomposition is the special case NrLoc == Grid.Nr
// with both radial sides physical.
type Slab struct {
	Grid *grid.Grid
	Gas  gas.Model
	Cfg  jet.Config

	I0    int // first owned global column
	NxLoc int // number of owned columns
	Left  bool
	Right bool

	J0     int       // first owned global row
	NrLoc  int       // number of owned rows
	Bottom bool      // owns the axis boundary (j0 == 0)
	Top    bool      // owns the far-field boundary (j0+nrloc == Grid.Nr)
	R      []float64 // radii of the owned rows (Grid.R[J0 : J0+NrLoc])

	// ExtL/ExtR/ExtB/ExtT are the widths of the redundant ghost shell a
	// Wide(k) halo policy carries on each interior side: the slab's
	// rectangle (I0/NxLoc/J0/NrLoc and every field) is EXTENDED by these
	// amounts, the shell is advanced redundantly alongside the core, and
	// only the core — columns [ExtL, NxLoc-ExtR) by rows [ExtB,
	// NrLoc-ExtT) — is ever reported (residuals, diagnostics, gathers).
	// All zero under Lagged/Fresh and on serial slabs.
	ExtL, ExtR, ExtB, ExtT int

	Q, QP, QN *flux.State // state, predicted state, next state
	W, WP     *flux.State // primitives of Q and QP
	F, FP     *flux.State // flux scratch (axial f or radial r*g)
	Src, SrcP *field.Field

	In *bc.Inflow
	// Prob is the scenario problem (nil = built-in excited jet). The
	// wall flags below cache Prob.Wall masked to the physical sides
	// this slab owns; they gate the wall branches of the operators so
	// the jet path is untouched.
	Prob      *Problem
	leftWall  bool
	rightWall bool
	topWall   bool

	Halo   Halo
	Policy HaloPolicy
	// Overlap enables the paper's Version 6 in both sweeps: interior
	// stress/flux/update loops run while halo messages are in flight, at
	// the cost of split loops (higher setup overhead, reduced temporal
	// locality). Defined for any sub-rectangle slab — 2-D blocks overlap
	// the axial and the radial exchanges alike (see overlap.go).
	Overlap bool
	// Pool, when non-nil, parallelizes each column loop across workers —
	// the shared-memory DOALL model the paper used on the Cray Y-MP.
	// Every kernel region is a fork-join loop over independent columns,
	// so the result is bitwise identical to the serial execution.
	Pool ParallelFor

	Dt   float64
	Time float64
	Step int

	RInv []float64
	T    *trace.Counters

	// momBuf backs AxialMomentum's returned columns and momOut its
	// column-header slice, both allocated once and reused across calls.
	momBuf []float64
	momOut [][]float64

	// q0 is the residual snapshot of the convergence monitor (see
	// converge.go), allocated lazily on the first monitored step.
	q0 *flux.State

	// ctx carries the per-stage kernel parameters to the prebuilt loop
	// bodies below. The bodies are bound once at construction so that
	// dispatching a parallel region allocates nothing: a fresh closure
	// per pfor call escapes through the ParallelFor interface and was
	// the solver's last steady-state allocation. The operators mutate
	// ctx only between fork-joins (Split returns after all workers
	// finish), so the workers always observe a settled ctx.
	ctx stageCtx

	fnPrims         func(lo, hi int)
	fnStressFluxX   func(lo, hi int)
	fnPredictXPrims func(lo, hi int)
	fnPredictX      func(lo, hi int)
	fnCorrectX      func(lo, hi int)
	fnStressFluxR   func(lo, hi int)
	fnPredictRPrims func(lo, hi int)
	fnPredictRRows  func(lo, hi int)
	fnPredictREdges func(lo, hi int)
	fnCorrectRRows  func(lo, hi int)
	fnCorrectREdges func(lo, hi int)

	fnCorrectXPrims     func(lo, hi int)
	fnCorrectRRowsPrims func(lo, hi int)

	// wReady records that W already holds the primitives of Q on every
	// interior point — established by the fused corrector+primitives
	// sweep (plus its boundary fixups) of the previous operator, so the
	// next operator's full stage-A primitive pass can be skipped. The
	// overlapped operators do not fuse (their correctors are split into
	// core and frame fork-joins) and leave it false.
	wReady bool

	// exch records whether the current composite step exchanges with
	// interior neighbours (true on every step under Lagged/Fresh; every
	// Depth()-th step under Wide). Set by Advance, consumed by the
	// fill/fillR dispatch below.
	exch bool
}

// fill dispatches a stage's axial ghost-column fill: a real exchange on
// exchange steps, physical-edge treatment only on the exchange-free
// steps of a Wide policy (the interior ghosts then hold decaying shell
// data, which the redundant shell keeps away from the core).
func (s *Slab) fill(k Kind, b *flux.State) {
	if s.exch {
		s.Halo.Fill(k, b)
		return
	}
	s.Halo.FillEdges(k, b)
}

// fillR is fill for the radial (ghost-row) direction.
func (s *Slab) fillR(k Kind, b *flux.State) {
	if s.exch {
		s.Halo.FillR(k, b)
		return
	}
	s.Halo.FillREdges(k, b)
}

// stageCtx parameterizes the prebuilt loop bodies of a Slab. q/w/f/src
// select the bundle triple a stage operates on (current state in the
// predictor, predicted state in the corrector); j0/j1 restrict the
// fused stress/flux kernels and the radial scheme kernels to a row
// range (the Version-6 overlap's core/frame split).
type stageCtx struct {
	v      scheme.Variant
	lam    float64
	visc   bool
	q, w   *flux.State
	f      *flux.State
	src    *field.Field
	j0, j1 int
}

// bindKernels builds the reusable loop bodies. Buffers with fixed roles
// (Q, QP, QN, F, FP, ...) are referenced directly; only the
// stage-dependent choices go through ctx.
func (s *Slab) bindKernels() {
	gm, g := s.Gas, s.Grid
	c := &s.ctx
	s.fnPrims = func(lo, hi int) { flux.Primitives(gm, c.q, c.w, lo, hi) }
	s.fnStressFluxX = func(lo, hi int) {
		flux.StressFluxX(gm, g.Dx, g.Dr, s.R, c.q, c.w, c.f, lo, hi, c.j0, c.j1, c.visc)
	}
	s.fnPredictXPrims = func(lo, hi int) {
		scheme.PredictXPrims(c.v, c.lam, gm, s.Q, s.F, s.QP, s.WP, lo, hi)
	}
	s.fnPredictX = func(lo, hi int) { scheme.PredictX(c.v, c.lam, s.Q, s.F, s.QP, lo, hi) }
	s.fnCorrectX = func(lo, hi int) { scheme.CorrectXFast(c.v, c.lam, s.Q, s.QP, s.FP, s.QN, lo, hi) }
	s.fnStressFluxR = func(lo, hi int) {
		flux.StressFluxRSource(gm, g.Dx, g.Dr, s.R, c.q, c.w, c.f, c.src, lo, hi, c.j0, c.j1, c.visc)
	}
	s.fnPredictRPrims = func(lo, hi int) {
		scheme.PredictRPrims(c.v, c.lam, s.Dt, gm, s.RInv, s.Q, s.F, s.QP, s.WP, s.Src, lo, hi)
	}
	s.fnPredictRRows = func(lo, hi int) {
		scheme.PredictRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, lo, hi, c.j0, c.j1)
	}
	s.fnPredictREdges = func(lo, hi int) {
		scheme.PredictRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, lo, hi, 0, c.j0)
		scheme.PredictRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.F, s.QP, s.Src, lo, hi, c.j1, s.NrLoc)
	}
	s.fnCorrectRRows = func(lo, hi int) {
		scheme.CorrectRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, lo, hi, c.j0, c.j1)
	}
	s.fnCorrectREdges = func(lo, hi int) {
		scheme.CorrectRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, lo, hi, 0, c.j0)
		scheme.CorrectRRowsFast(c.v, c.lam, s.Dt, s.RInv, s.Q, s.QP, s.FP, s.QN, s.SrcP, lo, hi, c.j1, s.NrLoc)
	}
	// The fused corrector+primitives bodies additionally leave W holding
	// the primitives of QN (the next operator's Q), skipping the columns
	// a boundary condition will rewrite — the operator fixes those up
	// after applying the boundary (and OutflowX/FarFieldR still need the
	// pre-operator primitives there, so they must not be clobbered).
	s.fnCorrectXPrims = func(lo, hi int) {
		p0, p1 := lo, hi
		if s.Left && p0 == 0 {
			p0 = 1
		}
		if s.Right && p1 == s.NxLoc {
			p1 = s.NxLoc - 1
		}
		scheme.CorrectXPrims(c.v, c.lam, gm, s.Q, s.QP, s.FP, s.QN, s.W, lo, hi, p0, p1)
	}
	s.fnCorrectRRowsPrims = func(lo, hi int) {
		p0 := lo
		if s.Left && p0 == 0 {
			p0 = 1
		}
		jt := s.NrLoc
		if s.Top && !s.topWall {
			jt-- // FarFieldR reads the old top-row primitives, then rewrites QN there
		}
		scheme.CorrectRRowsPrims(c.v, c.lam, s.Dt, gm, s.RInv, s.Q, s.QP, s.FP, s.QN, s.W, s.SrcP, lo, hi, c.j0, c.j1, p0, jt)
	}
}

// NewSlab builds a slab owning global columns [i0, i0+nxloc) of g,
// spanning the full radial extent.
func NewSlab(cfg jet.Config, g *grid.Grid, gm gas.Model, i0, nxloc int, halo Halo, policy HaloPolicy) (*Slab, error) {
	return NewSlabRect(cfg, g, gm, i0, nxloc, 0, g.Nr, halo, policy)
}

// NewSlabRect builds a slab owning the sub-rectangle of global columns
// [i0, i0+nxloc) by global rows [j0, j0+nrloc) of g. Radial sides that
// do not coincide with the physical boundary are interior: their ghost
// rows must be supplied by the halo's FillR exchange.
func NewSlabRect(cfg jet.Config, g *grid.Grid, gm gas.Model, i0, nxloc, j0, nrloc int, halo Halo, policy HaloPolicy) (*Slab, error) {
	return NewSlabProblem(cfg, nil, g, gm, i0, nxloc, j0, nrloc, halo, policy)
}

// NewSlabProblem is NewSlabRect for an explicit scenario problem. The
// halo's physical-edge treatment must agree with prob.Walls() (see
// EdgeHalo.Wall); nil prob is the built-in jet.
func NewSlabProblem(cfg jet.Config, prob *Problem, g *grid.Grid, gm gas.Model, i0, nxloc, j0, nrloc int, halo Halo, policy HaloPolicy) (*Slab, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nxloc < 4 {
		return nil, fmt.Errorf("solver: slab needs >= 4 columns for the 2-4 stencil and cubic extrapolation, got %d", nxloc)
	}
	if nrloc < 4 {
		return nil, fmt.Errorf("solver: slab needs >= 4 rows for the 2-4 stencil and boundary treatment, got %d", nrloc)
	}
	if i0 < 0 || i0+nxloc > g.Nx {
		return nil, fmt.Errorf("solver: slab [%d,%d) outside grid of %d columns", i0, i0+nxloc, g.Nx)
	}
	if j0 < 0 || j0+nrloc > g.Nr {
		return nil, fmt.Errorf("solver: slab rows [%d,%d) outside grid of %d rows", j0, j0+nrloc, g.Nr)
	}
	s := &Slab{
		Grid: g, Gas: gm, Cfg: cfg,
		I0: i0, NxLoc: nxloc,
		Left: i0 == 0, Right: i0+nxloc == g.Nx,
		J0: j0, NrLoc: nrloc,
		Bottom: j0 == 0, Top: j0+nrloc == g.Nr,
		R: g.R[j0 : j0+nrloc],
		Q: flux.NewState(nxloc, nrloc), QP: flux.NewState(nxloc, nrloc), QN: flux.NewState(nxloc, nrloc),
		W: flux.NewState(nxloc, nrloc), WP: flux.NewState(nxloc, nrloc),
		F: flux.NewState(nxloc, nrloc), FP: flux.NewState(nxloc, nrloc),
		Src: field.New(nxloc, nrloc), SrcP: field.New(nxloc, nrloc),
		Halo: halo, Policy: policy,
		RInv: make([]float64, nrloc),
		T:    &trace.Counters{},
	}
	for j, r := range s.R {
		s.RInv[j] = 1 / r
	}
	wall := prob.Walls()
	s.Prob = prob
	s.leftWall = s.Left && wall.Left
	s.rightWall = s.Right && wall.Right
	s.topWall = s.Top && wall.Top
	switch {
	case wall.Left:
		// Wall on the inflow side: no Dirichlet source needed.
	case prob != nil && prob.Inflow != nil:
		s.In = bc.NewInflowSource(prob.Inflow(cfg, gm, s.R), gm, len(s.R))
	default:
		s.In = bc.NewInflow(cfg, gm, s.R)
	}
	s.bindKernels()
	return s, nil
}

// InitParallelFlow sets the initial condition. The built-in jet uses
// the mean inflow profile extended downstream (parallel flow), v = 0,
// constant static pressure; a scenario problem with an Init hook
// supplies its own pointwise state instead.
func (s *Slab) InitParallelFlow() {
	gm := s.Gas
	if s.Prob != nil && s.Prob.Init != nil {
		for c := 0; c < s.NxLoc; c++ {
			x := s.Grid.X[s.I0+c]
			for j, r := range s.R {
				w := s.Prob.Init(s.Cfg, gm, x, r)
				q := gm.ToConserved(w)
				s.Q[flux.IRho].Set(c, j, q.Rho)
				s.Q[flux.IMx].Set(c, j, q.Mx)
				s.Q[flux.IMr].Set(c, j, q.Mr)
				s.Q[flux.IE].Set(c, j, q.E)
			}
		}
		return
	}
	for c := 0; c < s.NxLoc; c++ {
		for j, r := range s.R {
			T := s.Cfg.MeanT(gm.Gamma, r)
			w := gas.Primitive{Rho: 1 / T, U: s.Cfg.MeanU(r), V: 0, P: gm.AmbientPressure()}
			q := gm.ToConserved(w)
			s.Q[flux.IRho].Set(c, j, q.Rho)
			s.Q[flux.IMx].Set(c, j, q.Mx)
			s.Q[flux.IMr].Set(c, j, q.Mr)
			s.Q[flux.IE].Set(c, j, q.E)
		}
	}
}

// StableDt returns the slab-local CFL-stable time step, cfl over the
// maximum stability rate of the owned points (see MaxRate).
func (s *Slab) StableDt(cfl float64) float64 {
	return cfl / s.MaxRate()
}

// variantFor returns the operator variant for a composite step index
// (L1 on even steps, L2 on odd) and whether the radial sweep runs first.
func variantFor(step int) (scheme.Variant, bool) {
	if step%2 == 0 {
		return scheme.L1, true // Q^{n+1} = L1x L1r Q^n
	}
	return scheme.L2, false // Q^{n+2} = L2r L2x Q^{n+1}
}

// Advance performs one composite time step (one Lx and one Lr sweep).
// Under a Wide(k) policy only every k-th step exchanges with interior
// neighbours: those steps first refresh the redundant shell (except
// step 0, whose initial condition is analytic and exact everywhere),
// then run the per-stage exchanges exactly as Fresh would; the k-1
// steps in between communicate nothing and let the shell decay.
func (s *Slab) Advance() {
	depth := s.Policy.Depth()
	s.exch = depth <= 1 || s.Step%depth == 0
	if s.exch && depth > 1 && s.Step > 0 {
		s.Halo.Refresh(s.Q)
		s.wReady = false // W's shell region is stale relative to the refreshed Q
	}
	v, rFirst := variantFor(s.Step)
	if rFirst {
		s.opR(v)
		s.opX(v)
	} else {
		s.opX(v)
		s.opR(v)
	}
	s.Step++
	s.Time += s.Dt
}

// ParallelFor runs fn over subranges of [lo, hi) on a worker pool; see
// internal/shm for the implementation. A DOALL directive in the paper's
// Cray terms.
type ParallelFor interface {
	Split(lo, hi int, fn func(lo, hi int))
}

// pfor dispatches a column loop to the pool, or runs it inline.
func (s *Slab) pfor(lo, hi int, fn func(lo, hi int)) {
	if s.Pool == nil {
		fn(lo, hi)
		return
	}
	s.Pool.Split(lo, hi, fn)
}

// opX applies the axial operator (predictor + corrector) with the given
// variant. Communication pattern: E1 prims, E2 flux, E3 predicted
// prims, E4 predicted flux — the paper's four grouped N-S exchanges.
func (s *Slab) opX(v scheme.Variant) {
	// The overlapped schedule only makes sense when messages are in
	// flight; a Wide policy's exchange-free steps take the plain path
	// (which is bitwise-identical to the overlapped one).
	if s.Overlap && s.exch {
		s.opXOverlap(v)
		return
	}
	gm, g := s.Gas, s.Grid
	visc := s.Cfg.Viscous
	n := s.NxLoc
	c := &s.ctx
	c.v, c.lam, c.visc = v, s.Dt/(6*g.Dx), visc
	c.j0, c.j1 = 0, s.NrLoc

	// Stage A: predictor. The radial ghost rows feed the stress tensor's
	// cross-derivatives: interior radial sides exchange fresh rows under
	// the Fresh policy and reuse lagged ones otherwise; physical sides
	// always recompute the (communication-free) mirror/extrapolation.
	c.q, c.w = s.Q, s.W
	if !s.wReady {
		s.pfor(0, n, s.fnPrims)
	}
	s.wReady = false
	s.fill(KPrims, s.W)
	if s.Policy != Lagged {
		s.fillR(KPrims, s.W)
	} else {
		s.Halo.FillREdges(KPrims, s.W)
	}
	c.f = s.F
	s.pfor(0, n, s.fnStressFluxX)
	s.fill(KFlux, s.F)
	// The fused predictor also recovers the predicted primitives (the
	// first pass of stage B); the boundary columns are recomputed after
	// their conditions overwrite them.
	s.pfor(0, n, s.fnPredictXPrims)
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QP, 0)
		} else {
			s.In.Apply(s.QP, 0, s.Time+s.Dt)
		}
		flux.Primitives(gm, s.QP, s.WP, 0, 1)
	}
	if s.rightWall {
		s.wallColumn(s.QP, n-1)
		flux.Primitives(gm, s.QP, s.WP, n-1, n)
	}

	// Stage B: corrector. The predicted-prims exchange feeds the
	// predicted stress tensor; Euler needs no stresses, which is why the
	// paper's Euler budget is three exchanges per step, not four.
	if visc {
		s.fill(KPredPrims, s.WP)
		if s.Policy != Lagged {
			s.fillR(KPredPrims, s.WP)
		} else {
			s.Halo.FillREdges(KPredPrims, s.WP)
		}
	}
	c.q, c.w, c.f = s.QP, s.WP, s.FP
	s.pfor(0, n, s.fnStressFluxX)
	s.fill(KPredFlux, s.FP)
	// The corrector also recovers the primitives of QN into W, so the
	// next operator starts with its stage-A pass already done; the
	// boundary columns are recomputed after their conditions apply.
	s.pfor(0, n, s.fnCorrectXPrims)

	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QN, 0)
		} else {
			s.In.Apply(s.QN, 0, s.Time+s.Dt)
		}
		flux.Primitives(gm, s.QN, s.W, 0, 1)
	}
	if s.Right {
		if s.rightWall {
			s.wallColumn(s.QN, n-1)
		} else {
			bc.OutflowX(gm, g.Dx, s.Dt, s.Q, s.W, s.F, s.QN, n-1)
		}
		flux.Primitives(gm, s.QN, s.W, n-1, n)
	}
	s.Q, s.QN = s.QN, s.Q
	s.wReady = true
	s.accountX(visc, n)
}

// opR applies the radial operator. The axial-only decomposition needs
// no flux communication here (under the Fresh policy two extra axial
// prim exchanges keep viscous cross-derivatives exact at slab
// boundaries); a 2-D slab additionally exchanges prim and radial-flux
// ghost rows with its down/up neighbours — the radial direction is the
// sweep direction, so its exchanges happen under either policy, exactly
// as the axial exchanges of opX do.
func (s *Slab) opR(v scheme.Variant) {
	if s.Overlap && s.exch {
		s.opROverlap(v)
		return
	}
	gm, g := s.Gas, s.Grid
	visc := s.Cfg.Viscous
	n := s.NxLoc
	c := &s.ctx
	c.v, c.lam, c.visc = v, s.Dt/(6*g.Dr), visc
	c.j0, c.j1 = 0, s.NrLoc

	// Stage A: predictor.
	c.q, c.w = s.Q, s.W
	if !s.wReady {
		s.pfor(0, n, s.fnPrims)
	}
	s.wReady = false
	if s.Policy != Lagged {
		s.fill(KPrimsR, s.W)
	} else {
		s.Halo.FillEdges(KPrimsR, s.W)
	}
	s.fillR(KPrimsR, s.W)
	c.f, c.src = s.F, s.Src
	s.pfor(0, n, s.fnStressFluxR)
	s.fillR(KFlux, s.F)
	// Fused predictor + predicted-primitives sweep; the boundary columns
	// are recomputed after their conditions overwrite them. Wall columns
	// are pinned in the radial sweep too — the viscous cross-derivatives
	// would otherwise shear momentum into the wall nodes.
	s.pfor(0, n, s.fnPredictRPrims)
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QP, 0)
		} else {
			s.In.Apply(s.QP, 0, s.Time+s.Dt)
		}
		flux.Primitives(gm, s.QP, s.WP, 0, 1)
	}
	if s.rightWall {
		s.wallColumn(s.QP, n-1)
		flux.Primitives(gm, s.QP, s.WP, n-1, n)
	}

	// Stage B: corrector.
	if s.Policy != Lagged {
		s.fill(KPredPrimsR, s.WP)
	} else {
		s.Halo.FillEdges(KPredPrimsR, s.WP)
	}
	s.fillR(KPredPrimsR, s.WP)
	c.q, c.w, c.f, c.src = s.QP, s.WP, s.FP, s.SrcP
	s.pfor(0, n, s.fnStressFluxR)
	s.fillR(KPredFlux, s.FP)
	// Fused corrector + primitives recovery; the far-field row and the
	// inflow column are recomputed after their conditions apply.
	s.pfor(0, n, s.fnCorrectRRowsPrims)

	if s.Top && !s.topWall {
		bc.FarFieldR(gm, g.Dr, s.Dt, g.Lr, s.R, s.Q, s.W, s.F, s.Src, s.QN, 0, n)
		flux.PrimitivesRect(gm, s.QN, s.W, 0, n, s.NrLoc-1, s.NrLoc)
	}
	if s.Left {
		if s.leftWall {
			s.wallColumn(s.QN, 0)
		} else {
			s.In.Apply(s.QN, 0, s.Time+s.Dt)
		}
		flux.Primitives(gm, s.QN, s.W, 0, 1)
	}
	if s.rightWall {
		s.wallColumn(s.QN, n-1)
		flux.Primitives(gm, s.QN, s.W, n-1, n)
	}
	s.Q, s.QN = s.QN, s.Q
	s.wReady = true
	s.accountR(visc, n)
}

// redundantPoints returns how many of the slab's points belong to the
// Wide policy's redundant shell rather than the core.
func (s *Slab) redundantPoints() float64 {
	core := (s.NxLoc - s.ExtL - s.ExtR) * (s.NrLoc - s.ExtB - s.ExtT)
	return float64(s.NxLoc*s.NrLoc - core)
}

// accountX accumulates the analytic FLOP count of one axial operator.
// Shell points are included in Flops (the rank really does the work)
// and broken out in RedundantFlops — the compute price of the Wide
// policy's saved startups.
func (s *Slab) accountX(visc bool, n int) {
	pts := float64(n * s.NrLoc)
	fl := 2 * float64(flux.FlopsPrims)
	if visc {
		fl += 2 * float64(flux.FlopsStress+flux.FlopsFluxXVisc)
	} else {
		fl += 2 * float64(flux.FlopsFluxXInvisc)
	}
	fl += float64(scheme.FlopsPredictX + scheme.FlopsCorrectX)
	s.T.AddFlops(fl * pts)
	s.T.RedundantFlops += fl * s.redundantPoints()
	if s.Right {
		s.T.AddFlops(float64(bc.FlopsCharPoint) * float64(s.NrLoc))
		s.T.RedundantFlops += float64(bc.FlopsCharPoint) * float64(s.ExtB+s.ExtT)
	}
}

// accountR accumulates the analytic FLOP count of one radial operator.
func (s *Slab) accountR(visc bool, n int) {
	pts := float64(n * s.NrLoc)
	fl := 2 * float64(flux.FlopsPrims+flux.FlopsSource)
	if visc {
		fl += 2 * float64(flux.FlopsStress+flux.FlopsFluxRVisc)
	} else {
		fl += 2 * float64(flux.FlopsFluxRInvisc)
	}
	fl += float64(scheme.FlopsPredictR + scheme.FlopsCorrectR)
	s.T.AddFlops(fl * pts)
	s.T.RedundantFlops += fl * s.redundantPoints()
	if s.Top {
		s.T.AddFlops(float64(bc.FlopsCharPoint) * float64(n)) // far-field row
		s.T.RedundantFlops += float64(bc.FlopsCharPoint) * float64(s.ExtL+s.ExtR)
	}
}

// Diagnostics summarizes the slab state for validation and reporting.
type Diagnostics struct {
	Mass      float64 // integral of rho r dr dx over owned columns
	Energy    float64 // integral of E r dr dx
	MaxV      float64 // max |v| (excitation growth indicator)
	MinRho    float64
	MinP      float64
	HasNaN    bool
	OwnPoints int
}

// Diagnose computes conserved integrals and sanity indicators over the
// core points (a Wide policy's redundant shell is the neighbour's data,
// possibly decayed — it must not enter integrals or NaN checks).
func (s *Slab) Diagnose() Diagnostics {
	g := s.Grid
	gm := s.Gas
	c0, c1 := s.ExtL, s.NxLoc-s.ExtR
	j0, j1 := s.ExtB, s.NrLoc-s.ExtT
	d := Diagnostics{MinRho: math.Inf(1), MinP: math.Inf(1), OwnPoints: (c1 - c0) * (j1 - j0)}
	vol := g.Dx * g.Dr
	for c := c0; c < c1; c++ {
		rho, mx, mr, e := s.Q[flux.IRho].Col(c), s.Q[flux.IMx].Col(c), s.Q[flux.IMr].Col(c), s.Q[flux.IE].Col(c)
		for j := j0; j < j1; j++ {
			r := s.R[j]
			d.Mass += rho[j] * r * vol
			d.Energy += e[j] * r * vol
			v := mr[j] / rho[j]
			if a := math.Abs(v); a > d.MaxV {
				d.MaxV = a
			}
			p := gm.PressureFromConserved(rho[j], mx[j], mr[j], e[j])
			if rho[j] < d.MinRho {
				d.MinRho = rho[j]
			}
			if p < d.MinP {
				d.MinP = p
			}
			if math.IsNaN(rho[j]) || math.IsNaN(e[j]) || math.IsNaN(mx[j]) || math.IsNaN(mr[j]) {
				d.HasNaN = true
			}
		}
	}
	return d
}

// AxialMomentum extracts the rho*u field (the quantity contoured in the
// paper's Figure 1) for the owned columns. The column storage is a
// slab-owned buffer reused by subsequent calls: callers that need the
// snapshot to survive the next call must copy it.
func (s *Slab) AxialMomentum() [][]float64 {
	nx := s.NxLoc - s.ExtL - s.ExtR
	nr := s.NrLoc - s.ExtB - s.ExtT
	if cap(s.momBuf) < nx*nr {
		s.momBuf = make([]float64, nx*nr)
	}
	if cap(s.momOut) < nx {
		s.momOut = make([][]float64, nx)
	}
	out := s.momOut[:nx]
	for c := 0; c < nx; c++ {
		col := s.momBuf[c*nr : (c+1)*nr]
		copy(col, s.Q[flux.IMx].Col(s.ExtL+c)[s.ExtB:s.ExtB+nr])
		out[c] = col
	}
	return out
}
