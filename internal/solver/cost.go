package solver

import (
	"repro/internal/bc"
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/scheme"
)

// Analytic cost profiles for the cost-weighted decompositions of
// internal/decomp: flops per composite step attributed per column and
// per row, from the same kernel counts accountX/accountR accumulate.
// Interior points all cost the same; the skew comes from the boundary
// work — the characteristic outflow column on the right edge and the
// far-field row at the top — which the paper's Figure 13 busy times
// fold into whichever rank owns those points.

// pointFlops returns the per-point flops of one composite step (one
// axial plus one radial operator), mirroring accountX + accountR.
func pointFlops(visc bool) float64 {
	fx := 2 * float64(flux.FlopsPrims)
	if visc {
		fx += 2 * float64(flux.FlopsStress+flux.FlopsFluxXVisc)
	} else {
		fx += 2 * float64(flux.FlopsFluxXInvisc)
	}
	fx += float64(scheme.FlopsPredictX + scheme.FlopsCorrectX)
	fr := 2 * float64(flux.FlopsPrims+flux.FlopsSource)
	if visc {
		fr += 2 * float64(flux.FlopsStress+flux.FlopsFluxRVisc)
	} else {
		fr += 2 * float64(flux.FlopsFluxRInvisc)
	}
	fr += float64(scheme.FlopsPredictR + scheme.FlopsCorrectR)
	return fx + fr
}

// ColCostFlops returns the analytic per-column cost profile of one
// composite step on g: interior columns cost pointFlops per row plus
// the far-field characteristic point at the top; the rightmost column
// additionally carries the outflow characteristic treatment of every
// row.
func ColCostFlops(cfg jet.Config, g *grid.Grid) []float64 {
	base := pointFlops(cfg.Viscous) * float64(g.Nr)
	w := make([]float64, g.Nx)
	for i := range w {
		w[i] = base + float64(bc.FlopsCharPoint) // top far-field point
	}
	w[g.Nx-1] += float64(bc.FlopsCharPoint) * float64(g.Nr)
	return w
}

// RowCostFlops returns the analytic per-row cost profile of one
// composite step on g: every row carries the outflow characteristic
// point of the right edge, and the top row the far-field treatment of
// every column.
func RowCostFlops(cfg jet.Config, g *grid.Grid) []float64 {
	base := pointFlops(cfg.Viscous) * float64(g.Nx)
	w := make([]float64, g.Nr)
	for j := range w {
		w[j] = base + float64(bc.FlopsCharPoint) // right outflow point
	}
	w[g.Nr-1] += float64(bc.FlopsCharPoint) * float64(g.Nx)
	return w
}
