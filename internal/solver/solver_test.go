package solver

import (
	"math"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
)

func smallGrid(t *testing.T) *grid.Grid {
	t.Helper()
	return grid.MustNew(64, 32, 50, 5)
}

func TestSerialRunsStableNavierStokes(t *testing.T) {
	s, err := NewSerial(jet.Paper(), smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	d0 := s.Diagnose()
	s.Run(50)
	d := s.Diagnose()
	if d.HasNaN {
		t.Fatal("NaN after 50 steps")
	}
	if d.MinRho <= 0 || d.MinP <= 0 {
		t.Fatalf("nonphysical state: minRho=%g minP=%g", d.MinRho, d.MinP)
	}
	if rel := math.Abs(d.Mass-d0.Mass) / d0.Mass; rel > 0.05 {
		t.Errorf("mass drifted %.2f%% in 50 steps", rel*100)
	}
}

func TestSerialRunsStableEuler(t *testing.T) {
	s, err := NewSerial(jet.Euler(), smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	d := s.Diagnose()
	if d.HasNaN {
		t.Fatal("NaN after 50 steps")
	}
	if d.MinRho <= 0 || d.MinP <= 0 {
		t.Fatalf("nonphysical state: minRho=%g minP=%g", d.MinRho, d.MinP)
	}
}

// An unexcited jet initialized with the parallel mean flow should stay
// close to steady over a short horizon: the profile is not an exact
// steady solution (it diffuses), but no instability should blow up.
func TestUnexcitedJetNearSteady(t *testing.T) {
	cfg := jet.Paper()
	cfg.Eps = 0
	s, err := NewSerial(cfg, smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	before := s.Q[flux.IMx].Clone()
	s.Run(20)
	if s.Diagnose().HasNaN {
		t.Fatal("NaN")
	}
	// rho*u should not change by more than a few percent of the jet
	// momentum scale over 20 short steps.
	diff := s.Q[flux.IMx].MaxAbsDiff(before)
	scale := cfg.UCenter() * 0.5 // rho_c * Uc
	if diff > 0.15*scale {
		t.Errorf("unexcited jet drifted: max|d(rho u)| = %g (scale %g)", diff, scale)
	}
}

func TestExcitationGrowsFromZero(t *testing.T) {
	cfg := jet.Paper()
	s, err := NewSerial(cfg, smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Diagnose().MaxV; v != 0 {
		t.Fatalf("initial radial velocity should be zero, got %g", v)
	}
	s.Run(30)
	d := s.Diagnose()
	if d.MaxV == 0 {
		t.Error("excitation produced no radial velocity")
	}
	if d.MaxV > 0.5 {
		t.Errorf("radial velocity unreasonably large: %g", d.MaxV)
	}
}

func TestStableDtPositiveAndSmall(t *testing.T) {
	s, err := NewSerial(jet.Paper(), smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Dt <= 0 {
		t.Fatalf("dt = %g", s.Dt)
	}
	// dx/(u+c) with u ~ 2.12, c ~ 1.41 and dx ~ 0.79: dt must be below that.
	g := s.Grid
	limit := g.Dx / (s.Cfg.UCenter() + 1)
	if s.Dt > limit {
		t.Errorf("dt %g exceeds advective limit %g", s.Dt, limit)
	}
}

func TestSlabValidation(t *testing.T) {
	g := smallGrid(t)
	gm := jet.Paper().Gas()
	if _, err := NewSlab(jet.Paper(), g, gm, 0, 3, EdgeHalo{}, Fresh); err == nil {
		t.Error("want error for slab narrower than stencil")
	}
	if _, err := NewSlab(jet.Paper(), g, gm, 60, 10, EdgeHalo{}, Fresh); err == nil {
		t.Error("want error for slab outside grid")
	}
	bad := jet.Paper()
	bad.MachCenter = -1
	if _, err := NewSlab(bad, g, gm, 0, g.Nx, EdgeHalo{}, Fresh); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestSlabRectValidation(t *testing.T) {
	g := smallGrid(t)
	gm := jet.Paper().Gas()
	if _, err := NewSlabRect(jet.Paper(), g, gm, 0, g.Nx, 0, 3, EdgeHalo{}, Fresh); err == nil {
		t.Error("want error for block shorter than stencil")
	}
	if _, err := NewSlabRect(jet.Paper(), g, gm, 0, g.Nx, g.Nr-2, 6, EdgeHalo{}, Fresh); err == nil {
		t.Error("want error for rows outside grid")
	}
	s, err := NewSlabRect(jet.Paper(), g, gm, 4, 8, 4, g.Nr-4, EdgeHalo{Right: false}, Fresh)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bottom || !s.Top || s.Left || s.Right {
		t.Fatalf("edge flags wrong: bottom=%v top=%v left=%v right=%v", s.Bottom, s.Top, s.Left, s.Right)
	}
	if len(s.R) != g.Nr-4 || s.R[0] != g.R[4] {
		t.Fatalf("local radii window wrong: len=%d r0=%g", len(s.R), s.R[0])
	}
	if s.NrLoc != g.Nr-4 || s.J0 != 4 {
		t.Fatalf("rect extent wrong: j0=%d nrloc=%d", s.J0, s.NrLoc)
	}
}

func TestFlopAccountingAccumulates(t *testing.T) {
	s, err := NewSerial(jet.Paper(), smallGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	if s.T.Flops <= 0 {
		t.Fatal("no flops accounted")
	}
	perPointStep := s.T.Flops / float64(s.Grid.NPoints()*2)
	if perPointStep < 100 || perPointStep > 3000 {
		t.Errorf("flops per point per step = %g, out of plausible range", perPointStep)
	}
}
