package solver

import (
	"math"
	"testing"

	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
)

// TestAxisRegularity: the axisymmetric formulation must keep the radial
// velocity small at the first node off the axis — the mirror-ghost axis
// treatment must not generate spurious inflow/outflow at r ~ 0.
func TestAxisRegularity(t *testing.T) {
	s, err := NewSerial(jet.Paper(), grid.MustNew(64, 32, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	maxAxisV, maxV := 0.0, 0.0
	for c := 0; c < s.NxLoc; c++ {
		rho0 := s.Q[flux.IRho].At(c, 0)
		if v := math.Abs(s.Q[flux.IMr].At(c, 0) / rho0); v > maxAxisV {
			maxAxisV = v
		}
		for j := 0; j < s.Grid.Nr; j++ {
			rho := s.Q[flux.IRho].At(c, j)
			if v := math.Abs(s.Q[flux.IMr].At(c, j) / rho); v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		t.Fatal("no radial motion at all — excitation inactive?")
	}
	if maxAxisV > maxV {
		t.Errorf("radial velocity peaks on the axis (%g vs field max %g)", maxAxisV, maxV)
	}
}

// TestEnergyBounded: over a moderate run the total energy stays within
// a few percent of its initial value (the excited jet is statistically
// steady; unbounded growth would mean a boundary instability).
func TestEnergyBounded(t *testing.T) {
	s, err := NewSerial(jet.Paper(), grid.MustNew(64, 32, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.Diagnose().Energy
	for i := 0; i < 5; i++ {
		s.Run(60)
		e := s.Diagnose().Energy
		if rel := math.Abs(e-e0) / e0; rel > 0.05 {
			t.Fatalf("energy drifted %.2f%% after %d steps", rel*100, s.Step)
		}
	}
}

// TestOperatorAlternation: the composite step must alternate both the
// L1/L2 variant and the sweep order, per the paper's arrangement
// Q^{n+1} = L1x L1r Q^n, Q^{n+2} = L2r L2x Q^{n+1}.
func TestOperatorAlternation(t *testing.T) {
	v0, r0 := variantFor(0)
	v1, r1 := variantFor(1)
	v2, r2 := variantFor(2)
	if v0 != v2 || v0 == v1 {
		t.Error("variant must alternate with period 2")
	}
	if !r0 || r1 {
		t.Error("sweep order: radial first on even steps, axial first on odd")
	}
	if !r2 {
		t.Error("period 2 in sweep order")
	}
}

// TestPressurePositivityUnderStrongExcitation: a 100x larger forcing
// must still give a physical state over a short horizon (the scheme's
// intrinsic dissipation handles the steeper waves).
func TestPressurePositivityUnderStrongExcitation(t *testing.T) {
	cfg := jet.Paper()
	cfg.Eps = 1e-2
	s, err := NewSerial(cfg, grid.MustNew(64, 32, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	d := s.Diagnose()
	if d.HasNaN || d.MinP <= 0 || d.MinRho <= 0 {
		t.Fatalf("strong excitation broke positivity: %+v", d)
	}
	if d.MaxV < 1e-3 {
		t.Errorf("strong forcing produced weak response: %g", d.MaxV)
	}
}

// TestViscousDiffusionSpreadsShearLayer: at a low Reynolds number the
// shear layer must diffuse — the peak radial gradient of the axial
// velocity at mid-domain decreases — while the Euler run keeps the
// layer essentially sharp over the same horizon. This distinguishes the
// real viscous terms from numerical dissipation.
func TestViscousDiffusionSpreadsShearLayer(t *testing.T) {
	g := grid.MustNew(64, 32, 50, 5)
	peakGrad := func(s *Serial) float64 {
		c := s.NxLoc / 2
		m := 0.0
		for j := 1; j < g.Nr-1; j++ {
			u1 := s.Q[flux.IMx].At(c, j+1) / s.Q[flux.IRho].At(c, j+1)
			u0 := s.Q[flux.IMx].At(c, j-1) / s.Q[flux.IRho].At(c, j-1)
			if d := math.Abs(u1-u0) / (2 * g.Dr); d > m {
				m = d
			}
		}
		return m
	}
	thick := jet.Paper()
	thick.Reynolds = 500 // very viscous
	thick.Eps = 0
	inv := jet.Euler()
	inv.Eps = 0
	sV, err := NewSerial(thick, g)
	if err != nil {
		t.Fatal(err)
	}
	sI, err := NewSerial(inv, g)
	if err != nil {
		t.Fatal(err)
	}
	g0V, g0I := peakGrad(sV), peakGrad(sI)
	sV.Run(150)
	sI.Run(150)
	dropV := 1 - peakGrad(sV)/g0V
	dropI := 1 - peakGrad(sI)/g0I
	t.Logf("peak shear drop: viscous %.1f%%, Euler %.1f%%", dropV*100, dropI*100)
	if dropV < 0.10 {
		t.Errorf("Re=500 shear layer did not diffuse (drop %.1f%%)", dropV*100)
	}
	if dropV < 2*dropI {
		t.Errorf("viscous spreading (%.1f%%) not clearly above inviscid numerical spreading (%.1f%%)", dropV*100, dropI*100)
	}
}

// TestDtScalesWithGrid: halving the grid spacing must roughly halve the
// stable time step (advective CFL).
func TestDtScalesWithGrid(t *testing.T) {
	s1, err := NewSerial(jet.Paper(), grid.MustNew(64, 32, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSerial(jet.Paper(), grid.MustNew(127, 64, 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	r := s1.Dt / s2.Dt
	if r < 1.8 || r > 2.3 {
		t.Errorf("dt ratio %g for 2x refinement, want ~2", r)
	}
}

// TestKindStrings covers the halo-kind labels used in diagnostics.
func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NKinds; k++ {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
	}
	if Lagged.String() != "lagged" || Fresh.String() != "fresh" {
		t.Error("policy strings")
	}
}
