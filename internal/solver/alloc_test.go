package solver_test

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/scenario"
	"repro/internal/solver"
)

// TestAdvanceSteadyStateAllocs locks in the allocation-free stepping
// path: with the field arena, the bound kernel closures, the stack
// stress tiles and the memoized inflow column in place, a composite
// step allocates nothing once warm — for the viscous paper
// configuration and the inviscid (Euler) one alike, and equally for
// every registered scenario (the wall-mirror edge fills and the
// scenario inflow hooks must stay allocation-free too). The test lives
// in package solver_test so it can build scenario problems without an
// import cycle.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	type tc struct {
		name string
		mk   func(t *testing.T) *solver.Serial
	}
	jetCase := func(name string, cfg jet.Config) tc {
		return tc{name, func(t *testing.T) *solver.Serial {
			s, err := solver.NewSerial(cfg, grid.MustNew(64, 32, 50, 5))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}}
	}
	scenCase := func(name string) tc {
		return tc{name, func(t *testing.T) *solver.Serial {
			sc, err := scenario.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sc.Config(jet.Paper())
			g, err := sc.Grid(64, 32)
			if err != nil {
				t.Fatal(err)
			}
			prob, err := sc.Problem(cfg, g)
			if err != nil {
				t.Fatal(err)
			}
			s, err := solver.NewSerialProblem(cfg, prob, g)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}}
	}
	for _, c := range []tc{
		jetCase("paper", jet.Paper()),
		jetCase("euler", jet.Euler()),
		scenCase("cavity"),
		scenCase("channel"),
	} {
		t.Run(c.name, func(t *testing.T) {
			s := c.mk(t)
			s.Advance() // warm: inflow memoization for the first time level
			if allocs := testing.AllocsPerRun(20, s.Advance); allocs != 0 {
				t.Errorf("steady-state Advance allocates %.1f times, want 0", allocs)
			}
		})
	}
}
