package solver

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/jet"
)

// TestAdvanceSteadyStateAllocs locks in the allocation-free stepping
// path: with the field arena, the bound kernel closures, the stack
// stress tiles and the memoized inflow column in place, a composite
// step allocates nothing once warm — for the viscous paper
// configuration and the inviscid (Euler) one alike.
func TestAdvanceSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  jet.Config
	}{
		{"paper", jet.Paper()},
		{"euler", jet.Euler()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSerial(tc.cfg, grid.MustNew(64, 32, 50, 5))
			if err != nil {
				t.Fatal(err)
			}
			s.Advance() // warm: inflow memoization for the first time level
			if allocs := testing.AllocsPerRun(20, s.Advance); allocs != 0 {
				t.Errorf("steady-state Advance allocates %.1f times, want 0", allocs)
			}
		})
	}
}
