package solver

import (
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
)

// EdgeHalo implements Halo for a slab whose side(s) coincide with the
// physical domain boundary: ghost columns are cubically extrapolated,
// matching the paper's artificial-point treatment, ghost rows get the
// axis parity mirror (Bottom) and the far-field cubic extrapolation
// (Top). Interior sides (when a side is not an edge) must be handled by
// a wrapping exchanger; the zero value fills nothing.
type EdgeHalo struct {
	Left, Right bool
	Bottom, Top bool
}

// FullDomain is the EdgeHalo of a slab spanning the whole domain: every
// side is a physical boundary.
func FullDomain() EdgeHalo { return EdgeHalo{Left: true, Right: true, Bottom: true, Top: true} }

// Fill implements Halo.
func (h EdgeHalo) Fill(_ Kind, b *flux.State) { h.FillEdges(b) }

// Start implements Halo; there is nothing to send.
func (h EdgeHalo) Start(_ Kind, _ *flux.State) {}

// Finish implements Halo by extrapolating the edges.
func (h EdgeHalo) Finish(_ Kind, b *flux.State) { h.FillEdges(b) }

// FillEdges implements Halo.
func (h EdgeHalo) FillEdges(b *flux.State) {
	for k := range b {
		if h.Left {
			b[k].ExtrapolateLeft()
		}
		if h.Right {
			b[k].ExtrapolateRight()
		}
	}
}

// FillR implements Halo: with no radial neighbours, the exchange
// degenerates to the physical treatment.
func (h EdgeHalo) FillR(_ Kind, b *flux.State) { h.FillREdges(b) }

// StartR implements Halo; there is nothing to send.
func (h EdgeHalo) StartR(_ Kind, _ *flux.State) {}

// FinishR implements Halo by applying the physical radial treatment.
func (h EdgeHalo) FinishR(_ Kind, b *flux.State) { h.FillREdges(b) }

// ReceiveR implements Halo; with no radial neighbours there is nothing
// to receive.
func (h EdgeHalo) ReceiveR(_ Kind, _ *flux.State) {}

// FillREdges implements Halo. The axis parity pattern (component IMr
// odd, the rest even) and the cubic top extrapolation are shared by the
// primitive and radial-flux bundles, so one treatment serves both (cf.
// flux.AxisMirrorPrims and flux.MirrorFluxR, which are the same map).
func (h EdgeHalo) FillREdges(b *flux.State) {
	if h.Bottom {
		flux.AxisMirrorPrims(b)
	}
	if h.Top {
		flux.TopExtrapolatePrims(b)
	}
}

// Serial is the single-processor reference solver: one slab spanning the
// whole grid, the configuration the paper measures in Figure 2.
type Serial struct {
	*Slab
}

// NewSerial builds the serial solver with the default CFL number.
func NewSerial(cfg jet.Config, g *grid.Grid) (*Serial, error) {
	return NewSerialCFL(cfg, g, DefaultCFL)
}

// DefaultCFL is the Courant number used throughout; the 2-4 MacCormack
// scheme is stable to about 2/3 in one dimension.
const DefaultCFL = 0.4

// NewSerialCFL builds the serial solver with an explicit CFL number.
func NewSerialCFL(cfg jet.Config, g *grid.Grid, cfl float64) (*Serial, error) {
	gm := cfg.Gas()
	s, err := NewSlab(cfg, g, gm, 0, g.Nx, FullDomain(), Fresh)
	if err != nil {
		return nil, err
	}
	s.InitParallelFlow()
	s.Dt = s.StableDt(cfl)
	return &Serial{Slab: s}, nil
}

// Run advances n composite time steps.
func (s *Serial) Run(n int) {
	for i := 0; i < n; i++ {
		s.Advance()
	}
}

// RunControlled advances up to n composite steps under residual-driven
// convergence control. The single slab spans the domain, so its
// partial sums are already the global reduction (nil Reduction).
func (s *Serial) RunControlled(n int, ctl Control) ConvergedRun {
	return s.Slab.RunControlled(n, ctl, nil)
}
