package solver

import (
	"repro/internal/flux"
	"repro/internal/grid"
	"repro/internal/jet"
)

// EdgeHalo implements Halo for a slab whose side(s) coincide with the
// physical domain boundary. The default (zero Wall) treatment is the
// jet's: ghost columns are cubically extrapolated, matching the paper's
// artificial-point treatment, ghost rows get the axis parity mirror
// (Bottom) and the far-field cubic extrapolation (Top). Sides flagged
// in Wall get the solid-wall mirror treatment instead, which differs
// between the primitive and flux bundles — wall fills are therefore
// Kind-sensitive (see FillEdgesKind), while the jet treatment ignores
// the Kind. Interior sides (when a side is not an edge) must be handled
// by a wrapping exchanger; the zero value fills nothing.
type EdgeHalo struct {
	Left, Right bool
	Bottom, Top bool
	// Wall selects the solid-wall ghost treatment per physical side
	// (scenario problems); consulted only for sides whose edge flag
	// above is set.
	Wall WallSpec
}

// FullDomain is the EdgeHalo of a slab spanning the whole domain: every
// side is a physical boundary.
func FullDomain() EdgeHalo { return EdgeHalo{Left: true, Right: true, Bottom: true, Top: true} }

// fluxKind reports whether k tags a sweep-direction flux bundle, whose
// wall ghosts take the flux parity map rather than the primitive one.
func fluxKind(k Kind) bool { return k == KFlux || k == KPredFlux }

// Fill implements Halo.
func (h EdgeHalo) Fill(k Kind, b *flux.State) { h.FillEdgesKind(k, b) }

// Start implements Halo; there is nothing to send.
func (h EdgeHalo) Start(_ Kind, _ *flux.State) {}

// Finish implements Halo by applying the physical edge treatment.
func (h EdgeHalo) Finish(k Kind, b *flux.State) { h.FillEdgesKind(k, b) }

// FillEdges implements Halo.
func (h EdgeHalo) FillEdges(k Kind, b *flux.State) { h.FillEdgesKind(k, b) }

// Refresh implements Halo; an edge halo carries no redundant shell.
func (h EdgeHalo) Refresh(_ *flux.State) {}

// FillEdgesKind fills the axial ghost columns of the owned physical
// sides: cubic extrapolation on jet sides (Kind-independent), the
// bundle-appropriate wall mirror on wall sides.
func (h EdgeHalo) FillEdgesKind(k Kind, b *flux.State) {
	if h.Left {
		if h.Wall.Left {
			flux.WallMirrorColsLeft(b, fluxKind(k))
		} else {
			for m := range b {
				b[m].ExtrapolateLeft()
			}
		}
	}
	if h.Right {
		if h.Wall.Right {
			flux.WallMirrorColsRight(b, fluxKind(k))
		} else {
			for m := range b {
				b[m].ExtrapolateRight()
			}
		}
	}
}

// FillR implements Halo: with no radial neighbours, the exchange
// degenerates to the physical treatment.
func (h EdgeHalo) FillR(k Kind, b *flux.State) { h.FillREdgesKind(k, b) }

// StartR implements Halo; there is nothing to send.
func (h EdgeHalo) StartR(_ Kind, _ *flux.State) {}

// FinishR implements Halo by applying the physical radial treatment.
func (h EdgeHalo) FinishR(k Kind, b *flux.State) { h.FillREdgesKind(k, b) }

// ReceiveR implements Halo; with no radial neighbours there is nothing
// to receive.
func (h EdgeHalo) ReceiveR(_ Kind, _ *flux.State) {}

// FillREdges implements Halo.
func (h EdgeHalo) FillREdges(k Kind, b *flux.State) { h.FillREdgesKind(k, b) }

// FillREdgesKind fills the radial ghost rows of the owned physical
// sides. On jet sides the axis parity pattern (component IMr odd, the
// rest even) and the cubic top extrapolation are shared by the
// primitive and radial-flux bundles, so one Kind-independent treatment
// serves both (cf. flux.AxisMirrorPrims and flux.MirrorFluxR, which are
// the same map); wall sides distinguish the bundles.
func (h EdgeHalo) FillREdgesKind(k Kind, b *flux.State) {
	if h.Bottom {
		if h.Wall.Bottom {
			flux.WallMirrorRowsBottom(b, fluxKind(k))
		} else {
			flux.AxisMirrorPrims(b)
		}
	}
	if h.Top {
		if h.Wall.Top {
			flux.WallMirrorRowsTop(b, h.Wall.ULid, fluxKind(k))
		} else {
			flux.TopExtrapolatePrims(b)
		}
	}
}

// Serial is the single-processor reference solver: one slab spanning the
// whole grid, the configuration the paper measures in Figure 2.
type Serial struct {
	*Slab
}

// NewSerial builds the serial solver with the default CFL number.
func NewSerial(cfg jet.Config, g *grid.Grid) (*Serial, error) {
	return NewSerialCFL(cfg, g, DefaultCFL)
}

// DefaultCFL is the Courant number used throughout; the 2-4 MacCormack
// scheme is stable to about 2/3 in one dimension.
const DefaultCFL = 0.4

// NewSerialCFL builds the serial solver with an explicit CFL number.
func NewSerialCFL(cfg jet.Config, g *grid.Grid, cfl float64) (*Serial, error) {
	return NewSerialProblemCFL(cfg, nil, g, cfl)
}

// NewSerialProblem builds the serial solver for a scenario problem with
// the default CFL number; nil prob is the built-in jet.
func NewSerialProblem(cfg jet.Config, prob *Problem, g *grid.Grid) (*Serial, error) {
	return NewSerialProblemCFL(cfg, prob, g, DefaultCFL)
}

// NewSerialProblemCFL builds the serial solver for a scenario problem
// with an explicit CFL number.
func NewSerialProblemCFL(cfg jet.Config, prob *Problem, g *grid.Grid, cfl float64) (*Serial, error) {
	gm := cfg.Gas()
	h := FullDomain()
	h.Wall = prob.Walls()
	s, err := NewSlabProblem(cfg, prob, g, gm, 0, g.Nx, 0, g.Nr, h, Fresh)
	if err != nil {
		return nil, err
	}
	s.InitParallelFlow()
	s.Dt = s.StableDt(cfl)
	return &Serial{Slab: s}, nil
}

// Run advances n composite time steps.
func (s *Serial) Run(n int) {
	for i := 0; i < n; i++ {
		s.Advance()
	}
}

// RunControlled advances up to n composite steps under residual-driven
// convergence control. The single slab spans the domain, so its
// partial sums are already the global reduction (nil Reduction).
func (s *Serial) RunControlled(n int, ctl Control) ConvergedRun {
	return s.Slab.RunControlled(n, ctl, nil)
}
