package solver

import (
	"math"

	"repro/internal/flux"
)

// Control configures residual-driven convergence control: monitor the
// global L2 residual every ReduceEvery composite steps (amortizing the
// collective, the low-communication-overhead cadence of Xie et al.),
// refresh the CFL-stable global time step from a max-reduction at the
// same cadence, and stop once the residual drops to StopTol.
type Control struct {
	// StopTol, when positive, stops the run at the first monitored
	// step whose residual is at or below it. Zero monitors without
	// stopping (when ReduceEvery is set) or disables monitoring
	// entirely (when it is not).
	StopTol float64
	// SteadyTol, when positive, switches the monitored quantity from
	// the L2 residual to the velocity-steadiness rate — the maximum
	// over core points of |du| and |dv| across the monitored step,
	// divided by dt — and stops once that rate is at or below it.
	// Closed wall-driven flows (the lid-driven cavity) need this:
	// their energy never stops absorbing lid work, so the conserved-
	// state residual stays on a floor set by dissipation while the
	// velocity field has long since frozen. Mutually exclusive with
	// StopTol; max-reduced across slabs, so the stop step is bitwise-
	// identical however the domain is decomposed.
	SteadyTol float64
	// ReduceEvery is the monitoring cadence in composite steps. Zero
	// with a positive StopTol or SteadyTol means every step; zero
	// without either disables monitoring.
	ReduceEvery int
	// CFL is the Courant number of the time-step refresh (0 =
	// DefaultCFL). It should match the number the run was built with.
	CFL float64
}

// withDefaults resolves the zero values.
func (c Control) withDefaults() Control {
	if (c.StopTol > 0 || c.SteadyTol > 0) && c.ReduceEvery == 0 {
		c.ReduceEvery = 1
	}
	if c.CFL == 0 {
		c.CFL = DefaultCFL
	}
	return c
}

// Enabled reports whether the control monitors anything.
func (c Control) Enabled() bool { return c.withDefaults().ReduceEvery > 0 }

// ResidualPoint is one monitored sample of the convergence history.
type ResidualPoint struct {
	// Step is the composite step the sample was taken after (1-based).
	Step int
	// Residual is sqrt(sum (dq)^2 / (points*NVar)) / dt over that
	// step: the RMS rate of change of the conserved state, the L2
	// norm a steady state drives to zero. Under a steadiness control
	// (Control.SteadyTol) it instead holds max(|du|,|dv|)/dt, the
	// velocity-steadiness rate.
	Residual float64
}

// ConvergedRun reports a convergence-controlled run.
type ConvergedRun struct {
	// Steps is the number of composite steps actually run (== the
	// request unless the residual hit the tolerance first).
	Steps int
	// Converged reports that StopTol stopped the run early.
	Converged bool
	// Residuals is the monitored history, one point per reduced step.
	Residuals []ResidualPoint
}

// Reduction is the global-reduction hook of a convergence-controlled
// run: Sum combines the per-slab partial residuals, Max the per-slab
// stability rates. A serial (single-slab) run passes nil — its partial
// sums are already global. Parallel ranks pass their allreduce, whose
// result must be identical on every rank: the stop decision is taken
// independently per rank and all ranks must agree.
type Reduction interface {
	Sum(x float64) float64
	Max(x float64) float64
}

// snapshotState copies Q into the residual snapshot buffer, allocated
// lazily on the first monitored step and reused afterwards.
func (s *Slab) snapshotState() {
	if s.q0 == nil {
		s.q0 = flux.NewState(s.NxLoc, s.NrLoc)
	}
	for k := 0; k < flux.NVar; k++ {
		s.q0[k].CopyFrom(s.Q[k])
	}
}

// residualPartial returns the sum over core points of the squared
// state delta since the last snapshot, all components. The summation
// order is fixed (column-major, components innermost) so a given
// decomposition reproduces the same partial bitwise on every run. A
// Wide policy's redundant shell is excluded: those points are the
// neighbour's core, already in the neighbour's partial (and possibly
// decayed here) — the restriction keeps the global sum covering each
// point exactly once, in the same per-rank order as Fresh.
func (s *Slab) residualPartial() float64 {
	sum := 0.0
	for c := s.ExtL; c < s.NxLoc-s.ExtR; c++ {
		var cols, cols0 [flux.NVar][]float64
		for k := 0; k < flux.NVar; k++ {
			cols[k] = s.Q[k].Col(c)
			cols0[k] = s.q0[k].Col(c)
		}
		for j := s.ExtB; j < s.NrLoc-s.ExtT; j++ {
			for k := 0; k < flux.NVar; k++ {
				d := cols[k][j] - cols0[k][j]
				sum += d * d
			}
		}
	}
	return sum
}

// steadyPartial returns the slab-local maximum over core points of the
// absolute velocity change since the last snapshot, both components.
// Max is order-independent in floating point, so the reduced global
// value — and the stop decision built on it — is bitwise-identical
// however the domain is decomposed.
func (s *Slab) steadyPartial() float64 {
	m := 0.0
	for c := s.ExtL; c < s.NxLoc-s.ExtR; c++ {
		rho := s.Q[flux.IRho].Col(c)
		mx := s.Q[flux.IMx].Col(c)
		mr := s.Q[flux.IMr].Col(c)
		rho0 := s.q0[flux.IRho].Col(c)
		mx0 := s.q0[flux.IMx].Col(c)
		mr0 := s.q0[flux.IMr].Col(c)
		for j := s.ExtB; j < s.NrLoc-s.ExtT; j++ {
			du := math.Abs(mx[j]/rho[j] - mx0[j]/rho0[j])
			if du > m {
				m = du
			}
			dv := math.Abs(mr[j]/rho[j] - mr0[j]/rho0[j])
			if dv > m {
				m = dv
			}
		}
	}
	return m
}

// MaxRate returns the slab-local maximum stability rate (advective
// plus viscous), the quantity the CFL-stable time step divides:
// StableDt(cfl) == cfl / MaxRate(). Max-reducing it across slabs gives
// the global rate exactly — max is associative and commutative in
// floating point — so a refreshed global dt is bitwise-identical
// however the domain is decomposed.
func (s *Slab) MaxRate() float64 {
	gm := s.Gas
	g := s.Grid
	nuFac := gm.Mu * math.Max(4.0/3.0, gm.Gamma/gm.Pr)
	invD2 := 1/(g.Dx*g.Dx) + 1/(g.Dr*g.Dr)
	maxRate := 0.0
	// Scan core points only: a Wide policy's decayed shell must not
	// poison the stability rate, and max over the union of cores is the
	// global max exactly — same dt bitwise as the Fresh decomposition.
	c0, c1 := s.ExtL, s.NxLoc-s.ExtR
	j0, j1 := s.ExtB, s.NrLoc-s.ExtT
	flux.Primitives(gm, s.Q, s.W, c0, c1)
	for c := c0; c < c1; c++ {
		rho, u, v, T := s.W[flux.IRho].Col(c), s.W[flux.IMx].Col(c), s.W[flux.IMr].Col(c), s.W[flux.IE].Col(c)
		for j := j0; j < j1; j++ {
			cs := math.Sqrt(T[j])
			rate := (math.Abs(u[j])+cs)/g.Dx + (math.Abs(v[j])+cs)/g.Dr + 2*nuFac/rho[j]*invD2
			if rate > maxRate {
				maxRate = rate
			}
		}
	}
	return maxRate
}

// RunControlled advances up to n composite steps under the given
// convergence control. Every ReduceEvery-th step it computes the
// global L2 residual of that step's state delta (partial sums combined
// through red) and refreshes the global CFL-stable dt from a
// max-reduction, then stops once the residual reaches StopTol. With a
// zero Control it is exactly n plain Advance calls.
//
// All ranks of a parallel run execute this loop independently; the
// reduction hands every rank the bitwise-identical residual and rate,
// so they take the same stop decision on the same step.
func (s *Slab) RunControlled(n int, ctl Control, red Reduction) ConvergedRun {
	ctl = ctl.withDefaults()
	var out ConvergedRun
	if ctl.ReduceEvery > 0 {
		out.Residuals = make([]ResidualPoint, 0, n/ctl.ReduceEvery+1)
	}
	points := s.Grid.Nx * s.Grid.Nr
	for i := 0; i < n; i++ {
		monitor := ctl.ReduceEvery > 0 && (i+1)%ctl.ReduceEvery == 0
		if monitor {
			s.snapshotState()
		}
		dt := s.Dt
		s.Advance()
		out.Steps++
		if !monitor {
			continue
		}
		var res float64
		if ctl.SteadyTol > 0 {
			m := s.steadyPartial()
			if red != nil {
				m = red.Max(m)
			}
			res = m / dt
		} else {
			sum := s.residualPartial()
			if red != nil {
				sum = red.Sum(sum)
			}
			res = math.Sqrt(sum/float64(points*flux.NVar)) / dt
		}
		out.Residuals = append(out.Residuals, ResidualPoint{Step: out.Steps, Residual: res})
		if (ctl.StopTol > 0 && res <= ctl.StopTol) || (ctl.SteadyTol > 0 && res <= ctl.SteadyTol) {
			out.Converged = true
			break
		}
		rate := s.MaxRate()
		if red != nil {
			rate = red.Max(rate)
		}
		s.Dt = ctl.CFL / rate
	}
	return out
}
