package decomp

import "fmt"

// Grid2D is a two-dimensional rank-grid decomposition: px balanced
// axial blocks crossed with pr balanced radial blocks. Rank numbering
// is row-major over the axial index, rank = ir*Px + ix, so an axial
// neighbour is rank±1 and a radial neighbour is rank±Px.
//
// Compared with the paper's axial-only split, each interior rank trades
// two full-height column halos for two part-height column halos plus
// two part-width row halos: per-rank halo surface drops from 2*Nr to
// 2*(Nr/pr + Nx/px), and the rank ceiling rises from Nx/MinWidth to
// (Nx/MinWidth)*(Nr/MinHeight).
type Grid2D struct {
	Nx, Nr int
	Px, Pr int
	X, R   *Decomposition
}

// NewGrid2D builds a px-by-pr rank grid over an nx-by-nr domain.
func NewGrid2D(nx, nr, px, pr int) (*Grid2D, error) {
	dx, err := Axial(nx, px)
	if err != nil {
		return nil, err
	}
	dr, err := Radial(nr, pr)
	if err != nil {
		return nil, err
	}
	return &Grid2D{Nx: nx, Nr: nr, Px: px, Pr: pr, X: dx, R: dr}, nil
}

// Shape2D picks the rank-grid shape for p ranks on an nx-by-nr domain:
// among all feasible factorizations px*pr = p it minimizes the
// per-rank halo perimeter 2*(nx/px + nr/pr), the surface-minimizing
// near-square choice. Axial-leaning shapes win ties, matching the
// paper's preference for long stride-1 radial runs.
func Shape2D(nx, nr, p int) (px, pr int, err error) {
	if p < 1 {
		return 0, 0, fmt.Errorf("decomp: need at least one rank, got %d", p)
	}
	best := -1.0
	for cx := p; cx >= 1; cx-- {
		if p%cx != 0 {
			continue
		}
		cr := p / cx
		if nx/cx < MinWidth || nr/cr < MinHeight {
			continue
		}
		cost := float64(nx)/float64(cx) + float64(nr)/float64(cr)
		if best < 0 || cost < best {
			best, px, pr = cost, cx, cr
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("decomp: no %d-rank shape fits %dx%d (blocks need >= %dx%d)", p, nx, nr, MinWidth, MinHeight)
	}
	return px, pr, nil
}

// Ranks returns the total rank count px*pr.
func (d *Grid2D) Ranks() int { return d.Px * d.Pr }

// Rank maps grid coordinates (ix, ir) to the linear rank id.
func (d *Grid2D) Rank(ix, ir int) int {
	if ix < 0 || ix >= d.Px || ir < 0 || ir >= d.Pr {
		panic(fmt.Sprintf("decomp: rank coordinates (%d,%d) outside %dx%d", ix, ir, d.Px, d.Pr))
	}
	return ir*d.Px + ix
}

// Coords maps a linear rank id to its grid coordinates.
func (d *Grid2D) Coords(rank int) (ix, ir int) {
	if rank < 0 || rank >= d.Ranks() {
		panic(fmt.Sprintf("decomp: rank %d outside [0,%d)", rank, d.Ranks()))
	}
	return rank % d.Px, rank / d.Px
}

// Block returns the owned sub-rectangle of rank: columns [i0, i0+nx)
// by rows [j0, j0+nr).
func (d *Grid2D) Block(rank int) (i0, nx, j0, nr int) {
	ix, ir := d.Coords(rank)
	i0, nx = d.X.Range(ix)
	j0, nr = d.R.Range(ir)
	return i0, nx, j0, nr
}

// Neighbors returns the four neighbour ranks of rank, -1 where the
// block touches the physical domain boundary (left/right axially,
// down toward the axis, up toward the far field).
func (d *Grid2D) Neighbors(rank int) (left, right, down, up int) {
	ix, ir := d.Coords(rank)
	left, right, down, up = -1, -1, -1, -1
	if ix > 0 {
		left = d.Rank(ix-1, ir)
	}
	if ix < d.Px-1 {
		right = d.Rank(ix+1, ir)
	}
	if ir > 0 {
		down = d.Rank(ix, ir-1)
	}
	if ir < d.Pr-1 {
		up = d.Rank(ix, ir+1)
	}
	return left, right, down, up
}

// Imbalance returns (max-min)/mean of the per-rank point counts.
func (d *Grid2D) Imbalance() float64 {
	mn, mx, sum := -1, -1, 0
	for r := 0; r < d.Ranks(); r++ {
		_, nx, _, nr := d.Block(r)
		pts := nx * nr
		if mn < 0 || pts < mn {
			mn = pts
		}
		if pts > mx {
			mx = pts
		}
		sum += pts
	}
	mean := float64(sum) / float64(d.Ranks())
	return float64(mx-mn) / mean
}

func (d *Grid2D) String() string {
	return fmt.Sprintf("%dx%d ranks over %dx%d points", d.Px, d.Pr, d.Nx, d.Nr)
}
