// Package decomp implements the domain decomposition. The paper's
// scheme is blocks along the axial direction only (Section 5), balanced
// to within one column; Grid2D extends it to a px-by-pr rank grid that
// also partitions the radial direction, which cuts per-rank halo
// surface and scales past the Nx/MinWidth rank ceiling of the axial
// split.
package decomp

import "fmt"

// MinWidth is the narrowest legal slab: the 2-4 stencil plus cubic
// boundary extrapolation need four columns.
const MinWidth = 4

// MinHeight is the shortest legal radial block: the 2-4 stencil reaches
// two ghost rows, the axis mirror reads the first two interior rows, and
// the top cubic extrapolation (physical or re-applied after a future
// regrid) reads the four outermost interior rows.
const MinHeight = 4

// Decomposition maps a contiguous global index range to ranks. It is
// direction-agnostic: Axial builds one over columns, Radial over rows.
type Decomposition struct {
	Nx, P  int
	starts []int // len P+1; rank r owns [starts[r], starts[r+1])
}

// split builds balanced contiguous blocks of n indices over p ranks,
// rejecting blocks shorter than min.
func split(n, p, min int, what string) (*Decomposition, error) {
	if p < 1 {
		return nil, fmt.Errorf("decomp: need at least one rank, got %d", p)
	}
	if n/p < min {
		return nil, fmt.Errorf("decomp: %d %s over %d ranks leaves blocks shorter than %d", n, what, p, min)
	}
	d := &Decomposition{Nx: n, P: p, starts: make([]int, p+1)}
	base, rem := n/p, n%p
	pos := 0
	for r := 0; r < p; r++ {
		d.starts[r] = pos
		pos += base
		if r < rem {
			pos++
		}
	}
	d.starts[p] = pos
	return d, nil
}

// Axial splits nx columns over p ranks in contiguous balanced blocks.
func Axial(nx, p int) (*Decomposition, error) {
	return split(nx, p, MinWidth, "columns")
}

// Radial splits nr rows over p ranks in contiguous balanced blocks.
func Radial(nr, p int) (*Decomposition, error) {
	return split(nr, p, MinHeight, "rows")
}

// TimeSlices splits a step range [0, steps) over k time slices in
// contiguous balanced blocks — the parallel-in-time (Parareal) analogue
// of Axial. A slice must hold at least one step; there is no stencil
// along the time axis, so no wider minimum applies.
func TimeSlices(steps, k int) (*Decomposition, error) {
	return split(steps, k, 1, "steps")
}

// WeightedTimeSlices splits steps over k time slices minimizing the
// maximum slice cost under a per-step cost profile — the same min-max
// machinery the cost-weighted spatial decomposition uses, for schedules
// whose per-step cost varies (e.g. a reduction cadence or adaptive
// refinement). nil or uniform weights reproduce TimeSlices exactly.
func WeightedTimeSlices(steps, k int, weights []float64) (*Decomposition, error) {
	return weightedSplit(steps, k, 1, weights, "steps")
}

// Range returns the owned column range [i0, i0+n) of rank r.
func (d *Decomposition) Range(r int) (i0, n int) {
	return d.starts[r], d.starts[r+1] - d.starts[r]
}

// Owner returns the rank owning global column i.
func (d *Decomposition) Owner(i int) int {
	if i < 0 || i >= d.Nx {
		panic(fmt.Sprintf("decomp: column %d outside [0,%d)", i, d.Nx))
	}
	lo, hi := 0, d.P-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.starts[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Widths returns the per-rank column counts.
func (d *Decomposition) Widths() []int {
	w := make([]int, d.P)
	for r := range w {
		_, w[r] = d.Range(r)
	}
	return w
}

// Imbalance returns (max-min)/mean of the per-rank widths; the paper's
// Figure 13 shows this is essentially zero for the axial decomposition.
func (d *Decomposition) Imbalance() float64 {
	ws := d.Widths()
	mn, mx, sum := ws[0], ws[0], 0
	for _, w := range ws {
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
		sum += w
	}
	mean := float64(sum) / float64(len(ws))
	return float64(mx-mn) / mean
}
