// Package decomp implements the paper's domain decomposition: blocks
// along the axial direction only (Section 5), balanced to within one
// column.
package decomp

import "fmt"

// MinWidth is the narrowest legal slab: the 2-4 stencil plus cubic
// boundary extrapolation need four columns.
const MinWidth = 4

// Decomposition maps global axial columns to ranks.
type Decomposition struct {
	Nx, P  int
	starts []int // len P+1; rank r owns [starts[r], starts[r+1])
}

// Axial splits nx columns over p ranks in contiguous balanced blocks.
func Axial(nx, p int) (*Decomposition, error) {
	if p < 1 {
		return nil, fmt.Errorf("decomp: need at least one rank, got %d", p)
	}
	if nx/p < MinWidth {
		return nil, fmt.Errorf("decomp: %d columns over %d ranks leaves slabs narrower than %d", nx, p, MinWidth)
	}
	d := &Decomposition{Nx: nx, P: p, starts: make([]int, p+1)}
	base, rem := nx/p, nx%p
	pos := 0
	for r := 0; r < p; r++ {
		d.starts[r] = pos
		pos += base
		if r < rem {
			pos++
		}
	}
	d.starts[p] = pos
	return d, nil
}

// Range returns the owned column range [i0, i0+n) of rank r.
func (d *Decomposition) Range(r int) (i0, n int) {
	return d.starts[r], d.starts[r+1] - d.starts[r]
}

// Owner returns the rank owning global column i.
func (d *Decomposition) Owner(i int) int {
	if i < 0 || i >= d.Nx {
		panic(fmt.Sprintf("decomp: column %d outside [0,%d)", i, d.Nx))
	}
	lo, hi := 0, d.P-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.starts[mid+1] <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Widths returns the per-rank column counts.
func (d *Decomposition) Widths() []int {
	w := make([]int, d.P)
	for r := range w {
		_, w[r] = d.Range(r)
	}
	return w
}

// Imbalance returns (max-min)/mean of the per-rank widths; the paper's
// Figure 13 shows this is essentially zero for the axial decomposition.
func (d *Decomposition) Imbalance() float64 {
	ws := d.Widths()
	mn, mx, sum := ws[0], ws[0], 0
	for _, w := range ws {
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
		sum += w
	}
	mean := float64(sum) / float64(len(ws))
	return float64(mx-mn) / mean
}
