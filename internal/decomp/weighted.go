package decomp

import (
	"fmt"
	"math"
)

// This file implements cost-weighted decompositions. The paper's
// Figure 13 metric is per-processor *busy time*, not point count: when
// per-point cost varies across the grid (boundary columns, measured
// per-column rates), equal-width blocks leave the heaviest rank gating
// every step. WeightedAxial/WeightedRadial take a per-index cost
// profile and return contiguous blocks that minimize the maximum block
// cost, subject to the same minimum block widths as the uniform split.
// A uniform (or nil) profile reproduces split exactly, and the weighted
// optimum is never worse than the uniform split's maximum cost —
// properties the fuzzers in weighted_test.go pin.

// validWeights rejects profiles the min-max search cannot order:
// negative, NaN, or infinite entries, and totals that overflow.
func validWeights(n int, weights []float64, what string) error {
	if len(weights) != n {
		return fmt.Errorf("decomp: %d weights for %d %s", len(weights), n, what)
	}
	total := 0.0
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("decomp: weight %g at %s %d (weights must be finite and nonnegative)", w, what, i)
		}
		total += w
	}
	if math.IsInf(total, 0) {
		return fmt.Errorf("decomp: %s weights overflow when summed", what)
	}
	return nil
}

// uniformWeights reports whether every entry equals the first — the
// degenerate profile on which the balanced point-count split is already
// cost-optimal.
func uniformWeights(weights []float64) bool {
	for _, w := range weights[1:] {
		if w != weights[0] {
			return false
		}
	}
	return true
}

// feasible reports whether n indices can be cut into p contiguous
// blocks, each at least min wide and each with summed weight at most c.
// pre is the weight prefix-sum array (len n+1). Dynamic program over
// block counts: a sliding window of reachable cut positions, O(n) per
// block level (greedy maximal extension is wrong here — the minimum
// width can force an overweight block that a shorter earlier cut would
// have avoided).
func feasible(pre []float64, n, p, min int, c float64) bool {
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	cnt := make([]int, n+2)
	prev[0] = true
	for r := 1; r <= p; r++ {
		for i := 0; i <= n; i++ {
			cnt[i+1] = cnt[i]
			if prev[i] {
				cnt[i+1]++
			}
		}
		lb := 0
		for j := 0; j <= n; j++ {
			cur[j] = false
			if j < min {
				continue
			}
			for pre[lb] < pre[j]-c {
				lb++
			}
			if hi := j - min; hi >= lb && cnt[hi+1]-cnt[lb] > 0 {
				cur[j] = true
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// reconstruct builds the starts array of one feasible partition at cost
// bound c, walking the reachability levels backward and giving each
// block, back to front, the widest extent the bound allows — which
// keeps near-uniform profiles near-uniformly wide.
func reconstruct(pre []float64, n, p, min int, c float64) []int {
	reach := make([][]bool, p+1)
	reach[0] = make([]bool, n+1)
	reach[0][0] = true
	cnt := make([]int, n+2)
	for r := 1; r <= p; r++ {
		prev := reach[r-1]
		cur := make([]bool, n+1)
		for i := 0; i <= n; i++ {
			cnt[i+1] = cnt[i]
			if prev[i] {
				cnt[i+1]++
			}
		}
		lb := 0
		for j := min; j <= n; j++ {
			for pre[lb] < pre[j]-c {
				lb++
			}
			if hi := j - min; hi >= lb && cnt[hi+1]-cnt[lb] > 0 {
				cur[j] = true
			}
		}
		reach[r] = cur
	}
	starts := make([]int, p+1)
	starts[p] = n
	j := n
	for r := p; r >= 1; r-- {
		for i := 0; i <= j-min; i++ {
			if reach[r-1][i] && pre[j]-pre[i] <= c {
				j = i
				break
			}
		}
		starts[r-1] = j
	}
	return starts
}

// weightedSplit builds contiguous blocks of n indices over p ranks
// minimizing the maximum block cost under weights, each block at least
// min wide. nil or uniform weights delegate to the balanced split.
func weightedSplit(n, p, min int, weights []float64, what string) (*Decomposition, error) {
	if weights == nil {
		return split(n, p, min, what)
	}
	if p < 1 {
		return nil, fmt.Errorf("decomp: need at least one rank, got %d", p)
	}
	if err := validWeights(n, weights, what); err != nil {
		return nil, err
	}
	if n/p < min {
		return nil, fmt.Errorf("decomp: %d %s over %d ranks leaves blocks shorter than %d", n, what, p, min)
	}
	if uniformWeights(weights) {
		return split(n, p, min, what)
	}
	pre := make([]float64, n+1)
	for i, w := range weights {
		pre[i+1] = pre[i] + w
	}
	// The uniform split is a feasible witness, so its maximum block
	// cost is both the search ceiling and the guarantee that weighting
	// never balances worse than point counts.
	uni, err := split(n, p, min, what)
	if err != nil {
		return nil, err
	}
	uniMax := 0.0
	for r := 0; r < p; r++ {
		if c := pre[uni.starts[r+1]] - pre[uni.starts[r]]; c > uniMax {
			uniMax = c
		}
	}
	lo, hi := 0.0, uniMax
	if feasible(pre, n, p, min, lo) {
		hi = lo
	}
	eps := 1e-12 * (1 + pre[n])
	for it := 0; it < 64 && hi-lo > eps; it++ {
		mid := lo + (hi-lo)/2
		if feasible(pre, n, p, min, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return &Decomposition{Nx: n, P: p, starts: reconstruct(pre, n, p, min, hi)}, nil
}

// WeightedAxial splits nx columns over p ranks into contiguous blocks
// that minimize the maximum block cost under the per-column profile.
// nil or uniform weights reproduce Axial exactly; any profile balances
// at least as well (by maximum block cost) as the uniform split.
func WeightedAxial(nx, p int, weights []float64) (*Decomposition, error) {
	return weightedSplit(nx, p, MinWidth, weights, "columns")
}

// WeightedRadial splits nr rows over p ranks the same way under a
// per-row profile.
func WeightedRadial(nr, p int, weights []float64) (*Decomposition, error) {
	return weightedSplit(nr, p, MinHeight, weights, "rows")
}

// WeightedGrid2D builds a px-by-pr rank grid whose axial and radial
// cuts are cost-weighted. The per-point cost model is separable —
// colWeights[i]*rowWeights[j] — so the two directions balance
// independently: the maximum block cost is (max axial block cost) ×
// (max radial block cost), each minimized by its 1-D weighted split.
// nil profiles fall back to the uniform split in that direction.
func WeightedGrid2D(nx, nr, px, pr int, colWeights, rowWeights []float64) (*Grid2D, error) {
	dx, err := WeightedAxial(nx, px, colWeights)
	if err != nil {
		return nil, err
	}
	dr, err := WeightedRadial(nr, pr, rowWeights)
	if err != nil {
		return nil, err
	}
	return &Grid2D{Nx: nx, Nr: nr, Px: px, Pr: pr, X: dx, R: dr}, nil
}

// BlockCosts returns the per-rank summed weights; nil weights mean unit
// cost per index, reproducing Widths.
func (d *Decomposition) BlockCosts(weights []float64) []float64 {
	costs := make([]float64, d.P)
	for r := 0; r < d.P; r++ {
		i0, w := d.Range(r)
		if weights == nil {
			costs[r] = float64(w)
			continue
		}
		for i := i0; i < i0+w; i++ {
			costs[r] += weights[i]
		}
	}
	return costs
}

// CostImbalance returns (max-min)/mean of the per-rank block costs
// under the given profile. Imbalance is the special case of a uniform
// profile: point counts stand in for cost only when every point costs
// the same, which is exactly what Figure 13's busy times refute on
// real grids.
func (d *Decomposition) CostImbalance(weights []float64) float64 {
	return relSpread(d.BlockCosts(weights))
}

// CostImbalance returns (max-min)/mean of the per-rank block costs
// under the separable profile colWeights[i]*rowWeights[j] (nil = unit
// cost in that direction).
func (d *Grid2D) CostImbalance(colWeights, rowWeights []float64) float64 {
	cx := d.X.BlockCosts(colWeights)
	cr := d.R.BlockCosts(rowWeights)
	costs := make([]float64, 0, d.Ranks())
	for _, rc := range cr {
		for _, xc := range cx {
			costs = append(costs, xc*rc)
		}
	}
	return relSpread(costs)
}

// relSpread is (max-min)/mean, the load-balance metric of Figure 13
// (duplicated from internal/stats to keep decomp dependency-free).
func relSpread(v []float64) float64 {
	mn, mx, sum := v[0], v[0], 0.0
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
		sum += x
	}
	return (mx - mn) / (sum / float64(len(v)))
}
