package decomp

import (
	"math"
	"testing"
)

// checkWeighted asserts the invariants every accepted weighted split
// must satisfy: monotone contiguous starts, full coverage, no overlap,
// minimum block width, and Owner/Range agreement. Unlike the uniform
// checkDecomposition it does not bound the width spread — trading
// width balance for cost balance is the point.
func checkWeighted(t *testing.T, d *Decomposition, n, p, min int) {
	t.Helper()
	pos := 0
	for r := 0; r < p; r++ {
		i0, w := d.Range(r)
		if i0 != pos {
			t.Fatalf("rank %d starts at %d, want %d (gap or overlap)", r, i0, pos)
		}
		if w < min {
			t.Fatalf("rank %d block length %d below minimum %d", r, w, min)
		}
		if d.Owner(i0) != r || d.Owner(i0+w-1) != r {
			t.Fatalf("rank %d: Owner disagrees with Range", r)
		}
		pos += w
	}
	if pos != n {
		t.Fatalf("blocks cover %d indices, want %d", pos, n)
	}
}

// maxBlockCost evaluates a partition's maximum block cost through the
// same prefix sums the optimizer uses, so comparisons against its
// guarantee are exact (direct per-block summation can differ in the
// last ulp).
func maxBlockCost(d *Decomposition, weights []float64) float64 {
	pre := make([]float64, len(weights)+1)
	for i, w := range weights {
		pre[i+1] = pre[i] + w
	}
	mx := 0.0
	for r := 0; r < d.P; r++ {
		i0, w := d.Range(r)
		if c := pre[i0+w] - pre[i0]; c > mx {
			mx = c
		}
	}
	return mx
}

// ramp builds a linearly increasing profile from 1 to ratio.
func ramp(n int, ratio float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 + (ratio-1)*float64(i)/float64(n-1)
	}
	return w
}

func TestWeightedAxialRamp(t *testing.T) {
	const n, p = 64, 4
	w := ramp(n, 8)
	d, err := WeightedAxial(n, p, w)
	if err != nil {
		t.Fatal(err)
	}
	checkWeighted(t, d, n, p, MinWidth)
	u, err := Axial(n, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, uni := maxBlockCost(d, w), maxBlockCost(u, w); got > uni {
		t.Errorf("weighted max cost %g exceeds uniform %g", got, uni)
	}
	widths := d.Widths()
	if widths[0] <= widths[p-1] {
		t.Errorf("increasing profile should give the cheap end wider blocks: widths %v", widths)
	}
	if d.CostImbalance(w) >= u.CostImbalance(w) {
		t.Errorf("weighted cost imbalance %g not below uniform %g", d.CostImbalance(w), u.CostImbalance(w))
	}
	// The point metric and the cost metric must stay distinct: the
	// weighted split trades one for the other.
	if d.Imbalance() <= u.Imbalance() {
		t.Errorf("weighted split should be less point-balanced than uniform: %g vs %g", d.Imbalance(), u.Imbalance())
	}
}

// TestWeightedAxialBeatsGreedy pins the case where maximal greedy
// extension fails: overextending the first block forces a later
// minimum-width block to straddle two heavy runs. The dynamic program
// must find the partition with maximum cost 10.
func TestWeightedAxialBeatsGreedy(t *testing.T) {
	w := []float64{0, 0, 0, 0, 0, 0, 5, 5, 5, 5, 0, 0, 0, 0}
	d, err := WeightedAxial(len(w), 3, w)
	if err != nil {
		t.Fatal(err)
	}
	checkWeighted(t, d, len(w), 3, MinWidth)
	if mx := maxBlockCost(d, w); mx > 10 {
		t.Errorf("max block cost %g, want <= 10 (e.g. blocks [0,4) [4,8) [8,14))", mx)
	}
}

func TestWeightedUniformReproducesSplit(t *testing.T) {
	for _, c := range []struct{ n, p int }{{250, 16}, {17, 4}, {64, 15}, {16, 4}} {
		u, err := Axial(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		flat := make([]float64, c.n)
		for i := range flat {
			flat[i] = 2.5
		}
		for _, weights := range [][]float64{nil, flat} {
			d, err := WeightedAxial(c.n, c.p, weights)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < c.p; r++ {
				ui, uw := u.Range(r)
				di, dw := d.Range(r)
				if ui != di || uw != dw {
					t.Fatalf("n=%d p=%d rank %d: weighted (%d,%d) != uniform (%d,%d)", c.n, c.p, r, di, dw, ui, uw)
				}
			}
		}
	}
}

func TestWeightedAxialRejects(t *testing.T) {
	cases := []struct {
		name string
		n, p int
		w    []float64
	}{
		{"short-profile", 16, 2, []float64{1, 2}},
		{"negative", 16, 2, append(make([]float64, 15), -1)},
		{"nan", 16, 2, append(make([]float64, 15), math.NaN())},
		{"inf", 16, 2, append(make([]float64, 15), math.Inf(1))},
		{"too-many-ranks", 16, 5, make([]float64, 16)},
		{"no-ranks", 16, 0, make([]float64, 16)},
	}
	for _, c := range cases {
		if _, err := WeightedAxial(c.n, c.p, c.w); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	huge := make([]float64, 16)
	for i := range huge {
		huge[i] = math.MaxFloat64
	}
	huge[0] = 1 // non-uniform, so the sum is actually taken
	if _, err := WeightedAxial(16, 2, huge); err == nil {
		t.Error("overflowing profile accepted")
	}
}

func TestWeightedGrid2DSkewed(t *testing.T) {
	const nx, nr, px, pr = 64, 32, 4, 2
	cw, rw := ramp(nx, 6), ramp(nr, 3)
	d, err := WeightedGrid2D(nx, nr, px, pr, cw, rw)
	if err != nil {
		t.Fatal(err)
	}
	checkWeighted(t, d.X, nx, px, MinWidth)
	checkWeighted(t, d.R, nr, pr, MinHeight)
	u, err := NewGrid2D(nx, nr, px, pr)
	if err != nil {
		t.Fatal(err)
	}
	if dc, uc := d.CostImbalance(cw, rw), u.CostImbalance(cw, rw); dc >= uc {
		t.Errorf("weighted grid cost imbalance %g not below uniform %g", dc, uc)
	}
	area := 0
	for r := 0; r < d.Ranks(); r++ {
		_, w, _, h := d.Block(r)
		area += w * h
	}
	if area != nx*nr {
		t.Fatalf("blocks cover %d points, want %d", area, nx*nr)
	}
}

func TestCostImbalanceUniformMatchesImbalance(t *testing.T) {
	d, err := Axial(250, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.CostImbalance(nil), d.Imbalance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CostImbalance(nil) = %g, Imbalance = %g", got, want)
	}
	g, err := NewGrid2D(64, 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.CostImbalance(nil, nil), g.Imbalance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("grid CostImbalance(nil,nil) = %g, Imbalance = %g", got, want)
	}
}

// fuzzWeights derives a nonnegative profile from fuzz bytes; empty data
// yields nil (the delegation path).
func fuzzWeights(n int, data []byte) []float64 {
	if len(data) == 0 {
		return nil
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(data[i%len(data)])
	}
	return w
}

// FuzzWeightedAxial fuzzes the weighted 1-D splits of both directions:
// any accepted (n, p, profile) must produce contiguous nonempty blocks
// covering [0,n) above the minimum width, a degenerate (nil or uniform)
// profile must reproduce today's split exactly, and the weighted
// maximum block cost must never exceed the uniform split's.
func FuzzWeightedAxial(f *testing.F) {
	f.Add(250, 16, []byte{1, 9, 1, 9, 200})
	f.Add(64, 4, []byte{0, 0, 0, 0, 0, 0, 255})
	f.Add(17, 4, []byte{7})                                        // uniform: must delegate
	f.Add(16, 4, []byte{})                                         // nil profile
	f.Add(14, 3, []byte{0, 0, 0, 0, 0, 0, 5, 5, 5, 5, 0, 0, 0, 0}) // greedy trap
	f.Add(0, 0, []byte{1})
	f.Add(-3, 2, []byte{1, 2})
	f.Fuzz(func(t *testing.T, n, p int, data []byte) {
		if n > 1024 || p > 128 || len(data) > 1024 {
			t.Skip("bounded: the feasibility DP is O(n*p) per probe")
		}
		for _, dir := range []struct {
			min   int
			build func(int, int, []float64) (*Decomposition, error)
		}{{MinWidth, WeightedAxial}, {MinHeight, WeightedRadial}} {
			var w []float64
			if n >= 0 {
				w = fuzzWeights(n, data)
			}
			d, err := dir.build(n, p, w)
			u, uerr := split(n, p, dir.min, "indices")
			if err != nil {
				if w != nil && uerr == nil {
					t.Fatalf("(%d,%d) rejected with a valid profile but accepted uniform: %v", n, p, err)
				}
				continue
			}
			if uerr != nil {
				t.Fatalf("(%d,%d) accepted weighted but rejected uniform: %v", n, p, uerr)
			}
			checkWeighted(t, d, n, p, dir.min)
			if w == nil || uniformWeights(w) {
				for r := 0; r < p; r++ {
					ui, uw := u.Range(r)
					di, dw := d.Range(r)
					if ui != di || uw != dw {
						t.Fatalf("degenerate profile: rank %d (%d,%d) != split (%d,%d)", r, di, dw, ui, uw)
					}
				}
				continue
			}
			if got, uni := maxBlockCost(d, w), maxBlockCost(u, w); got > uni {
				t.Fatalf("weighted max cost %g exceeds uniform %g", got, uni)
			}
		}
	})
}

// FuzzWeightedGrid2D fuzzes the weighted rank grid: both directions'
// splits must satisfy the 1-D invariants, the blocks must tile the
// domain exactly, and each direction must balance at least as well as
// its uniform split.
func FuzzWeightedGrid2D(f *testing.F) {
	f.Add(250, 100, 4, 2, []byte{3, 1, 4, 1, 5, 9})
	f.Add(64, 26, 3, 3, []byte{0, 255})
	f.Add(16, 16, 4, 4, []byte{8}) // uniform both ways
	f.Add(64, 32, 2, 2, []byte{})
	f.Add(0, 0, 0, 0, []byte{1})
	f.Fuzz(func(t *testing.T, nx, nr, px, pr int, data []byte) {
		if nx > 512 || nr > 512 || px > 64 || pr > 64 || len(data) > 1024 {
			t.Skip("bounded")
		}
		var cw, rw []float64
		if nx >= 0 {
			cw = fuzzWeights(nx, data)
		}
		if nr >= 0 {
			rev := make([]byte, len(data))
			for i, b := range data {
				rev[len(data)-1-i] = b
			}
			rw = fuzzWeights(nr, rev)
		}
		d, err := WeightedGrid2D(nx, nr, px, pr, cw, rw)
		if err != nil {
			return
		}
		checkWeighted(t, d.X, nx, px, MinWidth)
		checkWeighted(t, d.R, nr, pr, MinHeight)
		area := 0
		for r := 0; r < d.Ranks(); r++ {
			_, w, _, h := d.Block(r)
			area += w * h
		}
		if area != nx*nr {
			t.Fatalf("blocks cover %d points, want %d", area, nx*nr)
		}
		if cw != nil && !uniformWeights(cw) {
			u, err := Axial(nx, px)
			if err != nil {
				t.Fatalf("weighted grid accepted but uniform axial split rejected: %v", err)
			}
			if got, uni := maxBlockCost(d.X, cw), maxBlockCost(u, cw); got > uni {
				t.Fatalf("axial weighted max cost %g exceeds uniform %g", got, uni)
			}
		}
		if rw != nil && !uniformWeights(rw) {
			u, err := Radial(nr, pr)
			if err != nil {
				t.Fatalf("weighted grid accepted but uniform radial split rejected: %v", err)
			}
			if got, uni := maxBlockCost(d.R, rw), maxBlockCost(u, rw); got > uni {
				t.Fatalf("radial weighted max cost %g exceeds uniform %g", got, uni)
			}
		}
	})
}
