package decomp

import "testing"

// checkDecomposition asserts the 1-D invariants: monotone contiguous
// starts, full coverage, no overlap, minimum block length, balance to
// within one, and Owner/Range agreement.
func checkDecomposition(t *testing.T, d *Decomposition, n, p, min int) {
	t.Helper()
	pos := 0
	mn, mx := n+1, -1
	for r := 0; r < p; r++ {
		i0, w := d.Range(r)
		if i0 != pos {
			t.Fatalf("rank %d starts at %d, want %d (gap or overlap)", r, i0, pos)
		}
		if w < min {
			t.Fatalf("rank %d block length %d below minimum %d", r, w, min)
		}
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
		if d.Owner(i0) != r || d.Owner(i0+w-1) != r {
			t.Fatalf("rank %d: Owner disagrees with Range", r)
		}
		pos += w
	}
	if pos != n {
		t.Fatalf("blocks cover %d indices, want %d", pos, n)
	}
	if mx-mn > 1 {
		t.Fatalf("imbalance: widths span [%d,%d]", mn, mx)
	}
}

// FuzzAxial fuzzes the 1-D splits of both directions: any (n, p) must
// either fail validation or satisfy every invariant. The seed corpus
// holds the edge cases found while developing Grid2D: exact-minimum
// blocks, remainder one short of p, single rank, huge rank counts.
func FuzzAxial(f *testing.F) {
	f.Add(250, 16)
	f.Add(8, 2)
	f.Add(4, 1)
	f.Add(16, 4)   // exactly MinWidth everywhere
	f.Add(17, 4)   // remainder 1
	f.Add(23, 4)   // remainder p-1
	f.Add(64, 15)  // 64/15 = 4 with remainder 4
	f.Add(0, 0)    // both invalid
	f.Add(-3, 2)   // negative extent
	f.Add(100, -1) // negative ranks
	f.Fuzz(func(t *testing.T, n, p int) {
		if n > 1<<20 || p > 1<<20 {
			t.Skip("bounded: the solver never sees million-wide decompositions")
		}
		for _, dir := range []struct {
			min   int
			build func(int, int) (*Decomposition, error)
		}{{MinWidth, Axial}, {MinHeight, Radial}} {
			d, err := dir.build(n, p)
			if err != nil {
				continue // rejected inputs need no invariants
			}
			if p < 1 || n/p < dir.min {
				t.Fatalf("(%d,%d) accepted but violates validation", n, p)
			}
			checkDecomposition(t, d, n, p, dir.min)
		}
	})
}

// FuzzGrid2D fuzzes the rank grid: any accepted (nx, nr, px, pr) must
// tile the domain exactly, respect both block minima, and have
// symmetric neighbour relations.
func FuzzGrid2D(f *testing.F) {
	f.Add(250, 100, 4, 2)
	f.Add(64, 26, 3, 3) // both directions non-divisible
	f.Add(64, 24, 16, 6)
	f.Add(16, 16, 4, 4) // exact minima both ways
	f.Add(8, 8, 1, 1)
	f.Add(0, 0, 0, 0)
	f.Add(64, 26, -1, 2)
	f.Fuzz(func(t *testing.T, nx, nr, px, pr int) {
		if nx > 1<<12 || nr > 1<<12 || px > 1<<10 || pr > 1<<10 {
			t.Skip("bounded")
		}
		d, err := NewGrid2D(nx, nr, px, pr)
		if err != nil {
			return
		}
		checkDecomposition(t, d.X, nx, px, MinWidth)
		checkDecomposition(t, d.R, nr, pr, MinHeight)
		area := 0
		for r := 0; r < d.Ranks(); r++ {
			ix, ir := d.Coords(r)
			if d.Rank(ix, ir) != r {
				t.Fatalf("rank %d: Coords/Rank roundtrip broken", r)
			}
			_, w, _, h := d.Block(r)
			area += w * h
			l, rt, dn, up := d.Neighbors(r)
			for _, nb := range [][2]int{{l, 1}, {rt, 0}, {dn, 3}, {up, 2}} {
				if nb[0] < 0 {
					continue
				}
				back := [4]int{}
				back[0], back[1], back[2], back[3] = d.Neighbors(nb[0])
				if back[nb[1]] != r {
					t.Fatalf("rank %d: neighbour %d does not point back", r, nb[0])
				}
			}
		}
		if area != nx*nr {
			t.Fatalf("blocks cover %d points, want %d", area, nx*nr)
		}
	})
}

// FuzzShape2D fuzzes the automatic shape fit: any accepted shape must
// multiply out to p and itself build a valid grid.
func FuzzShape2D(f *testing.F) {
	f.Add(250, 100, 8)
	f.Add(64, 26, 6)
	f.Add(16, 16, 1)
	f.Add(64, 24, 32) // past the axial-only ceiling
	f.Add(0, 0, 0)
	f.Fuzz(func(t *testing.T, nx, nr, p int) {
		if nx > 1<<12 || nr > 1<<12 || p > 1<<10 {
			t.Skip("bounded")
		}
		px, pr, err := Shape2D(nx, nr, p)
		if err != nil {
			return
		}
		if px*pr != p {
			t.Fatalf("shape %dx%d does not multiply to %d ranks", px, pr, p)
		}
		if _, err := NewGrid2D(nx, nr, px, pr); err != nil {
			t.Fatalf("accepted shape %dx%d fails to build: %v", px, pr, err)
		}
	})
}
