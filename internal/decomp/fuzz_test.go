package decomp

import "testing"

// checkDecomposition asserts the 1-D invariants: monotone contiguous
// starts, full coverage, no overlap, minimum block length, balance to
// within one, and Owner/Range agreement.
func checkDecomposition(t *testing.T, d *Decomposition, n, p, min int) {
	t.Helper()
	pos := 0
	mn, mx := n+1, -1
	for r := 0; r < p; r++ {
		i0, w := d.Range(r)
		if i0 != pos {
			t.Fatalf("rank %d starts at %d, want %d (gap or overlap)", r, i0, pos)
		}
		if w < min {
			t.Fatalf("rank %d block length %d below minimum %d", r, w, min)
		}
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
		if d.Owner(i0) != r || d.Owner(i0+w-1) != r {
			t.Fatalf("rank %d: Owner disagrees with Range", r)
		}
		pos += w
	}
	if pos != n {
		t.Fatalf("blocks cover %d indices, want %d", pos, n)
	}
	if mx-mn > 1 {
		t.Fatalf("imbalance: widths span [%d,%d]", mn, mx)
	}
}

// FuzzAxial fuzzes the 1-D splits of both directions: any (n, p) must
// either fail validation or satisfy every invariant. The seed corpus
// holds the edge cases found while developing Grid2D: exact-minimum
// blocks, remainder one short of p, single rank, huge rank counts.
func FuzzAxial(f *testing.F) {
	f.Add(250, 16)
	f.Add(8, 2)
	f.Add(4, 1)
	f.Add(16, 4)   // exactly MinWidth everywhere
	f.Add(17, 4)   // remainder 1
	f.Add(23, 4)   // remainder p-1
	f.Add(64, 15)  // 64/15 = 4 with remainder 4
	f.Add(0, 0)    // both invalid
	f.Add(-3, 2)   // negative extent
	f.Add(100, -1) // negative ranks
	f.Fuzz(func(t *testing.T, n, p int) {
		if n > 1<<20 || p > 1<<20 {
			t.Skip("bounded: the solver never sees million-wide decompositions")
		}
		for _, dir := range []struct {
			min   int
			build func(int, int) (*Decomposition, error)
		}{{MinWidth, Axial}, {MinHeight, Radial}} {
			d, err := dir.build(n, p)
			if err != nil {
				continue // rejected inputs need no invariants
			}
			if p < 1 || n/p < dir.min {
				t.Fatalf("(%d,%d) accepted but violates validation", n, p)
			}
			checkDecomposition(t, d, n, p, dir.min)
		}
	})
}

// FuzzTimeSlices fuzzes the parallel-in-time step partitioning: any
// accepted (steps, k) must satisfy the 1-D invariants with the time
// axis's minimum of one step per slice, and the weighted variant under
// a ramp profile must cover the same range with the same slice count.
func FuzzTimeSlices(f *testing.F) {
	f.Add(5000, 4)
	f.Add(8, 2) // the golden-case shape
	f.Add(7, 3) // remainder k-1
	f.Add(4, 4) // one step per slice
	f.Add(3, 4) // more slices than steps: rejected
	f.Add(1, 1)
	f.Add(0, 0)  // both invalid
	f.Add(-5, 2) // negative extent
	f.Add(100, -1)
	f.Fuzz(func(t *testing.T, steps, k int) {
		if steps > 1<<20 || k > 1<<20 {
			t.Skip("bounded: runs never see million-step schedules")
		}
		d, err := TimeSlices(steps, k)
		if err == nil {
			if k < 1 || steps/k < 1 {
				t.Fatalf("(%d,%d) accepted but violates validation", steps, k)
			}
			checkDecomposition(t, d, steps, k, 1)
		}
		if steps < 1 || steps > 1<<12 {
			return
		}
		ramp := make([]float64, steps)
		for i := range ramp {
			ramp[i] = 1 + float64(i)/float64(steps)
		}
		w, werr := WeightedTimeSlices(steps, k, ramp)
		if (err == nil) != (werr == nil) {
			t.Fatalf("(%d,%d): uniform err=%v but weighted err=%v", steps, k, err, werr)
		}
		if werr != nil {
			return
		}
		pos := 0
		for r := 0; r < k; r++ {
			s0, n := w.Range(r)
			if s0 != pos || n < 1 {
				t.Fatalf("weighted slice %d: range [%d,+%d) breaks coverage at %d", r, s0, n, pos)
			}
			pos += n
		}
		if pos != steps {
			t.Fatalf("weighted slices cover %d steps, want %d", pos, steps)
		}
	})
}

// FuzzGrid2D fuzzes the rank grid: any accepted (nx, nr, px, pr) must
// tile the domain exactly, respect both block minima, and have
// symmetric neighbour relations.
func FuzzGrid2D(f *testing.F) {
	f.Add(250, 100, 4, 2)
	f.Add(64, 26, 3, 3) // both directions non-divisible
	f.Add(64, 24, 16, 6)
	f.Add(16, 16, 4, 4) // exact minima both ways
	f.Add(8, 8, 1, 1)
	f.Add(0, 0, 0, 0)
	f.Add(64, 26, -1, 2)
	f.Fuzz(func(t *testing.T, nx, nr, px, pr int) {
		if nx > 1<<12 || nr > 1<<12 || px > 1<<10 || pr > 1<<10 {
			t.Skip("bounded")
		}
		d, err := NewGrid2D(nx, nr, px, pr)
		if err != nil {
			return
		}
		checkDecomposition(t, d.X, nx, px, MinWidth)
		checkDecomposition(t, d.R, nr, pr, MinHeight)
		area := 0
		for r := 0; r < d.Ranks(); r++ {
			ix, ir := d.Coords(r)
			if d.Rank(ix, ir) != r {
				t.Fatalf("rank %d: Coords/Rank roundtrip broken", r)
			}
			_, w, _, h := d.Block(r)
			area += w * h
			l, rt, dn, up := d.Neighbors(r)
			for _, nb := range [][2]int{{l, 1}, {rt, 0}, {dn, 3}, {up, 2}} {
				if nb[0] < 0 {
					continue
				}
				back := [4]int{}
				back[0], back[1], back[2], back[3] = d.Neighbors(nb[0])
				if back[nb[1]] != r {
					t.Fatalf("rank %d: neighbour %d does not point back", r, nb[0])
				}
			}
		}
		if area != nx*nr {
			t.Fatalf("blocks cover %d points, want %d", area, nx*nr)
		}
	})
}

// FuzzShape2D fuzzes the automatic shape fit: any accepted shape must
// multiply out to p and itself build a valid grid.
func FuzzShape2D(f *testing.F) {
	f.Add(250, 100, 8)
	f.Add(64, 26, 6)
	f.Add(16, 16, 1)
	f.Add(64, 24, 32) // past the axial-only ceiling
	f.Add(0, 0, 0)
	f.Fuzz(func(t *testing.T, nx, nr, p int) {
		if nx > 1<<12 || nr > 1<<12 || p > 1<<10 {
			t.Skip("bounded")
		}
		px, pr, err := Shape2D(nx, nr, p)
		if err != nil {
			return
		}
		if px*pr != p {
			t.Fatalf("shape %dx%d does not multiply to %d ranks", px, pr, p)
		}
		if _, err := NewGrid2D(nx, nr, px, pr); err != nil {
			t.Fatalf("accepted shape %dx%d fails to build: %v", px, pr, err)
		}
	})
}
