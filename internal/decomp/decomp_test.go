package decomp

import (
	"testing"
	"testing/quick"
)

func TestPaperDecomposition(t *testing.T) {
	d, err := Axial(250, 16)
	if err != nil {
		t.Fatal(err)
	}
	ws := d.Widths()
	// 250 = 10*16 + 10: ten ranks of 16 columns, six of 15.
	sum := 0
	for _, w := range ws {
		if w != 15 && w != 16 {
			t.Fatalf("width %d", w)
		}
		sum += w
	}
	if sum != 250 {
		t.Fatalf("widths sum to %d", sum)
	}
	if imb := d.Imbalance(); imb > 0.07 {
		t.Fatalf("imbalance %g", imb)
	}
}

// Property: every column is owned by exactly one rank, ranges are
// contiguous and ordered, and Owner agrees with Range.
func TestCoverageProperty(t *testing.T) {
	f := func(nxRaw, pRaw uint16) bool {
		nx := int(nxRaw%500) + 16
		p := int(pRaw%8) + 1
		if nx/p < MinWidth {
			return true
		}
		d, err := Axial(nx, p)
		if err != nil {
			return false
		}
		pos := 0
		for r := 0; r < p; r++ {
			i0, n := d.Range(r)
			if i0 != pos || n < MinWidth {
				return false
			}
			for i := i0; i < i0+n; i++ {
				if d.Owner(i) != r {
					return false
				}
			}
			pos += n
		}
		return pos == nx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Axial(100, 0); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := Axial(12, 4); err == nil {
		t.Error("want error for sub-stencil slabs")
	}
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	d, _ := Axial(100, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	d.Owner(100)
}
