package decomp

import (
	"testing"
	"testing/quick"
)

func TestPaperDecomposition(t *testing.T) {
	d, err := Axial(250, 16)
	if err != nil {
		t.Fatal(err)
	}
	ws := d.Widths()
	// 250 = 10*16 + 10: ten ranks of 16 columns, six of 15.
	sum := 0
	for _, w := range ws {
		if w != 15 && w != 16 {
			t.Fatalf("width %d", w)
		}
		sum += w
	}
	if sum != 250 {
		t.Fatalf("widths sum to %d", sum)
	}
	if imb := d.Imbalance(); imb > 0.07 {
		t.Fatalf("imbalance %g", imb)
	}
}

// Property: every column is owned by exactly one rank, ranges are
// contiguous and ordered, and Owner agrees with Range.
func TestCoverageProperty(t *testing.T) {
	f := func(nxRaw, pRaw uint16) bool {
		nx := int(nxRaw%500) + 16
		p := int(pRaw%8) + 1
		if nx/p < MinWidth {
			return true
		}
		d, err := Axial(nx, p)
		if err != nil {
			return false
		}
		pos := 0
		for r := 0; r < p; r++ {
			i0, n := d.Range(r)
			if i0 != pos || n < MinWidth {
				return false
			}
			for i := i0; i < i0+n; i++ {
				if d.Owner(i) != r {
					return false
				}
			}
			pos += n
		}
		return pos == nx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Axial(100, 0); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := Axial(12, 4); err == nil {
		t.Error("want error for sub-stencil slabs")
	}
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	d, _ := Axial(100, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	d.Owner(100)
}

func TestRadialValidation(t *testing.T) {
	if _, err := Radial(100, 0); err == nil {
		t.Error("want error for zero ranks")
	}
	if _, err := Radial(12, 4); err == nil {
		t.Error("want error for sub-stencil blocks")
	}
	d, err := Radial(26, 3)
	if err != nil {
		t.Fatal(err)
	}
	ws := d.Widths()
	if ws[0] != 9 || ws[1] != 9 || ws[2] != 8 {
		t.Fatalf("26 rows over 3 ranks: %v", ws)
	}
}

func TestGrid2DBlocksAndNeighbors(t *testing.T) {
	// 3x2 ranks on 64x26: columns 22+21+21, rows 13+13.
	d, err := NewGrid2D(64, 26, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks() != 6 {
		t.Fatalf("ranks %d", d.Ranks())
	}
	area := 0
	for r := 0; r < d.Ranks(); r++ {
		ix, ir := d.Coords(r)
		if d.Rank(ix, ir) != r {
			t.Fatalf("rank %d: Coords/Rank disagree", r)
		}
		i0, nx, j0, nr := d.Block(r)
		if nx < MinWidth || nr < MinHeight {
			t.Fatalf("rank %d block %dx%d below minima", r, nx, nr)
		}
		area += nx * nr
		l, rt, dn, up := d.Neighbors(r)
		if (l < 0) != (ix == 0) || (rt < 0) != (ix == d.Px-1) ||
			(dn < 0) != (ir == 0) || (up < 0) != (ir == d.Pr-1) {
			t.Fatalf("rank %d edge flags wrong: %d %d %d %d", r, l, rt, dn, up)
		}
		// Neighbour relations are symmetric.
		if l >= 0 {
			if _, r2, _, _ := d.Neighbors(l); r2 != r {
				t.Fatalf("rank %d left neighbour asymmetric", r)
			}
		}
		if dn >= 0 {
			if _, _, _, u2 := d.Neighbors(dn); u2 != r {
				t.Fatalf("rank %d down neighbour asymmetric", r)
			}
		}
		// Rank i0/j0 must agree with the 1-D decompositions.
		wi, wn := d.X.Range(ix)
		hj, hn := d.R.Range(ir)
		if i0 != wi || nx != wn || j0 != hj || nr != hn {
			t.Fatalf("rank %d block disagrees with 1-D ranges", r)
		}
	}
	if area != 64*26 {
		t.Fatalf("blocks cover %d points, want %d", area, 64*26)
	}
	if imb := d.Imbalance(); imb > 0.15 {
		t.Fatalf("imbalance %g", imb)
	}
}

func TestShape2D(t *testing.T) {
	cases := []struct {
		nx, nr, p    int
		wantX, wantR int
	}{
		// The paper's grid: 8 ranks minimize surface as 4x2
		// (250/4 + 100/2 = 112.5 beats 8x1's 131.25).
		{250, 100, 8, 4, 2},
		// Wide domain: the axial-only split stays optimal.
		{96, 32, 4, 4, 1},
		// A square domain ties 2x1 against 1x2; the axial-leaning
		// shape wins (the paper's long stride-1 radial runs).
		{64, 64, 2, 2, 1},
		{64, 64, 4, 2, 2},
		{64, 26, 1, 1, 1},
	}
	for _, c := range cases {
		px, pr, err := Shape2D(c.nx, c.nr, c.p)
		if err != nil {
			t.Fatalf("Shape2D(%d,%d,%d): %v", c.nx, c.nr, c.p, err)
		}
		if px != c.wantX || pr != c.wantR {
			t.Errorf("Shape2D(%d,%d,%d) = %dx%d, want %dx%d", c.nx, c.nr, c.p, px, pr, c.wantX, c.wantR)
		}
	}
	if _, _, err := Shape2D(16, 16, 32); err == nil {
		t.Error("want error when no shape fits")
	}
	if _, _, err := Shape2D(16, 16, 0); err == nil {
		t.Error("want error for zero ranks")
	}
}
