package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperGrid(t *testing.T) {
	g := Paper()
	if g.Nx != 250 || g.Nr != 100 {
		t.Fatalf("paper grid is 250x100, got %dx%d", g.Nx, g.Nr)
	}
	if g.Lx != 50 || g.Lr != 5 {
		t.Fatalf("paper domain is 50x5 radii, got %gx%g", g.Lx, g.Lr)
	}
	if g.NPoints() != 25000 {
		t.Fatalf("NPoints = %d", g.NPoints())
	}
}

func TestCoordinates(t *testing.T) {
	g := MustNew(11, 10, 10, 5)
	if g.X[0] != 0 {
		t.Errorf("X[0] = %g, want 0", g.X[0])
	}
	if g.X[10] != 10 {
		t.Errorf("X[last] = %g, want 10", g.X[10])
	}
	// Radial nodes are staggered half a cell off the axis.
	if g.R[0] != 0.25 {
		t.Errorf("R[0] = %g, want dr/2 = 0.25", g.R[0])
	}
	if got, want := g.R[9], 5.0-0.25; math.Abs(got-want) > 1e-14 {
		t.Errorf("R[last] = %g, want %g", got, want)
	}
	for _, r := range g.R {
		if r <= 0 {
			t.Fatalf("radial node on or below the axis: %g", r)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		nx, nr int
		lx, lr float64
	}{
		{4, 10, 10, 5}, // nx too small
		{10, 2, 10, 5}, // nr too small
		{10, 10, 0, 5}, // zero extent
		{10, 10, 10, -1},
	}
	for _, c := range cases {
		if _, err := New(c.nx, c.nr, c.lx, c.lr); err == nil {
			t.Errorf("New(%d,%d,%g,%g): want error", c.nx, c.nr, c.lx, c.lr)
		}
	}
}

// Property: node spacing is uniform and spans the domain for any valid
// geometry.
func TestSpacingProperty(t *testing.T) {
	f := func(nxRaw, nrRaw uint8) bool {
		nx := int(nxRaw%120) + 8
		nr := int(nrRaw%120) + 4
		g := MustNew(nx, nr, 50, 5)
		for i := 1; i < nx; i++ {
			if math.Abs((g.X[i]-g.X[i-1])-g.Dx) > 1e-12 {
				return false
			}
		}
		for j := 1; j < nr; j++ {
			if math.Abs((g.R[j]-g.R[j-1])-g.Dr) > 1e-12 {
				return false
			}
		}
		return math.Abs(g.X[nx-1]-g.Lx) < 1e-9 && g.R[nr-1] < g.Lr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	if s := Paper().String(); s == "" {
		t.Error("empty String()")
	}
}
