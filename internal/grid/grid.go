// Package grid defines the structured two-dimensional axisymmetric grid
// used by the jet solver.
//
// The axial coordinate x runs from 0 to Lx over Nx nodes (x_i = i*Dx).
// The radial coordinate r is staggered half a cell off the axis
// (r_j = (j+0.5)*Dr) so that no grid point sits on the r = 0 singularity
// of the cylindrical-coordinate equations; axis symmetry is applied
// through mirrored ghost values instead.
package grid

import "fmt"

// Grid is an immutable description of the computational domain.
type Grid struct {
	Nx, Nr int     // number of nodes in the axial and radial directions
	Lx, Lr float64 // domain extent in jet radii
	Dx, Dr float64 // node spacings
	X      []float64
	R      []float64
}

// New builds a grid with nx axial nodes spanning [0, lx] and nr radial
// half-cell nodes spanning (0, lr).
func New(nx, nr int, lx, lr float64) (*Grid, error) {
	if nx < 8 || nr < 4 {
		return nil, fmt.Errorf("grid: need nx >= 8 and nr >= 4, got %dx%d", nx, nr)
	}
	if lx <= 0 || lr <= 0 {
		return nil, fmt.Errorf("grid: domain extents must be positive, got %gx%g", lx, lr)
	}
	g := &Grid{
		Nx: nx, Nr: nr,
		Lx: lx, Lr: lr,
		Dx: lx / float64(nx-1),
		Dr: lr / float64(nr),
		X:  make([]float64, nx),
		R:  make([]float64, nr),
	}
	for i := range g.X {
		g.X[i] = float64(i) * g.Dx
	}
	for j := range g.R {
		g.R[j] = (float64(j) + 0.5) * g.Dr
	}
	return g, nil
}

// MustNew is New that panics on error; for tests and fixed configs.
func MustNew(nx, nr int, lx, lr float64) *Grid {
	g, err := New(nx, nr, lx, lr)
	if err != nil {
		panic(err)
	}
	return g
}

// Paper returns the grid used throughout the paper's evaluation:
// 250x100 nodes over 50x5 jet radii.
func Paper() *Grid { return MustNew(250, 100, 50, 5) }

// NPoints returns the total number of grid nodes.
func (g *Grid) NPoints() int { return g.Nx * g.Nr }

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%d over %gx%g radii (dx=%.4g, dr=%.4g)", g.Nx, g.Nr, g.Lx, g.Lr, g.Dx, g.Dr)
}
