// Package grid defines the structured two-dimensional axisymmetric grid
// used by the jet solver.
//
// The axial coordinate x runs from 0 to Lx over Nx nodes (x_i = i*Dx).
// The radial coordinate r is staggered half a cell off the axis
// (r_j = (j+0.5)*Dr) so that no grid point sits on the r = 0 singularity
// of the cylindrical-coordinate equations; axis symmetry is applied
// through mirrored ghost values instead.
package grid

import "fmt"

// Grid is an immutable description of the computational domain.
type Grid struct {
	Nx, Nr int     // number of nodes in the axial and radial directions
	Lx, Lr float64 // domain extent in jet radii
	Dx, Dr float64 // node spacings
	// R0 is the radial offset of the domain: radial nodes span
	// (R0, R0+Lr). Zero for the jet's axis-anchored grid; a large R0
	// (relative to Lr) makes the metric terms of the axisymmetric
	// equations uniformly small, which planar scenarios (the lid-driven
	// cavity) use to recover Cartesian dynamics to O(Lr/R0) without any
	// kernel changes (see grid.NewOffset).
	R0     float64
	X      []float64
	R      []float64
}

// New builds a grid with nx axial nodes spanning [0, lx] and nr radial
// half-cell nodes spanning (0, lr).
func New(nx, nr int, lx, lr float64) (*Grid, error) {
	if nx < 8 || nr < 4 {
		return nil, fmt.Errorf("grid: need nx >= 8 and nr >= 4, got %dx%d", nx, nr)
	}
	if lx <= 0 || lr <= 0 {
		return nil, fmt.Errorf("grid: domain extents must be positive, got %gx%g", lx, lr)
	}
	g := &Grid{
		Nx: nx, Nr: nr,
		Lx: lx, Lr: lr,
		Dx: lx / float64(nx-1),
		Dr: lr / float64(nr),
		X:  make([]float64, nx),
		R:  make([]float64, nr),
	}
	for i := range g.X {
		g.X[i] = float64(i) * g.Dx
	}
	for j := range g.R {
		g.R[j] = (float64(j) + 0.5) * g.Dr
	}
	return g, nil
}

// NewOffset builds a grid whose radial nodes span (r0, r0+lr) instead
// of starting at the axis: r_j = r0 + (j+0.5)*dr, keeping the half-cell
// stagger so the boundary planes r = r0 and r = r0+lr fall exactly
// between a ghost row and row 0 / Nr-1. With r0 >> lr the axisymmetric
// metric terms (1/r factors, the r-weighting of the radial flux) are
// uniformly O(lr/r0), so planar Cartesian scenarios run on the
// unchanged cylindrical kernels with a controlled geometry error.
func NewOffset(nx, nr int, lx, lr, r0 float64) (*Grid, error) {
	if r0 < 0 {
		return nil, fmt.Errorf("grid: radial offset must be non-negative, got %g", r0)
	}
	g, err := New(nx, nr, lx, lr)
	if err != nil {
		return nil, err
	}
	g.R0 = r0
	for j := range g.R {
		g.R[j] = r0 + (float64(j)+0.5)*g.Dr
	}
	return g, nil
}

// MustNew is New that panics on error; for tests and fixed configs.
func MustNew(nx, nr int, lx, lr float64) *Grid {
	g, err := New(nx, nr, lx, lr)
	if err != nil {
		panic(err)
	}
	return g
}

// Paper returns the grid used throughout the paper's evaluation:
// 250x100 nodes over 50x5 jet radii.
func Paper() *Grid { return MustNew(250, 100, 50, 5) }

// NPoints returns the total number of grid nodes.
func (g *Grid) NPoints() int { return g.Nx * g.Nr }

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%d over %gx%g radii (dx=%.4g, dr=%.4g)", g.Nx, g.Nr, g.Lx, g.Lr, g.Dx, g.Dr)
}
