// Package field provides dense scalar fields on the structured grid with
// halo (ghost) columns in the axial direction and ghost rows in the
// radial direction.
//
// Storage is x-major with the radial index contiguous (stride-1 in r),
// which is the cache-friendly "stride-1" layout the paper's Version 3
// optimization introduced. Halo width is fixed at 2 on every side: the
// fourth-order MacCormack stencil reaches two points past each boundary.
package field

import "fmt"

// Halo is the ghost-layer width required by the 2-4 MacCormack stencil.
const Halo = 2

// Field is a scalar field of size Nx x Nr plus Halo ghosts on all sides.
// The interior point (i, j), 0 <= i < Nx, 0 <= j < Nr, is addressable
// directly; ghost points use indices in [-Halo, Nx+Halo) x [-Halo, Nr+Halo).
type Field struct {
	Nx, Nr int
	// rowLen is the allocated length of one x-column (Nr + 2*Halo).
	rowLen int
	data   []float64
}

// New allocates a zeroed field for an nx-by-nr interior.
func New(nx, nr int) *Field {
	if nx <= 0 || nr <= 0 {
		panic(fmt.Sprintf("field: invalid size %dx%d", nx, nr))
	}
	rl := nr + 2*Halo
	return &Field{Nx: nx, Nr: nr, rowLen: rl, data: make([]float64, (nx+2*Halo)*rl)}
}

// idx maps (possibly ghost) coordinates to the flat slice index.
func (f *Field) idx(i, j int) int {
	return (i+Halo)*f.rowLen + (j + Halo)
}

// At returns the value at (i, j). Ghost indices are legal within Halo.
func (f *Field) At(i, j int) float64 { return f.data[f.idx(i, j)] }

// Set stores v at (i, j). Ghost indices are legal within Halo.
func (f *Field) Set(i, j int, v float64) { f.data[f.idx(i, j)] = v }

// Add adds v to the value at (i, j).
func (f *Field) Add(i, j int, v float64) { f.data[f.idx(i, j)] += v }

// Col returns the mutable slice backing interior column i (j = 0..Nr-1).
func (f *Field) Col(i int) []float64 {
	base := f.idx(i, 0)
	return f.data[base : base+f.Nr]
}

// ColGhost returns the full storage column i including the radial ghost
// rows: index j+Halo addresses interior row j, so indices 0..Halo-1 are
// the below-axis ghosts and len-Halo..len-1 the far-field ghosts. Ghost
// columns are legal. The hot-path kernels use it to walk radial stencils
// over one flat slice instead of per-point idx() arithmetic.
func (f *Field) ColGhost(i int) []float64 {
	base := (i + Halo) * f.rowLen
	return f.data[base : base+f.rowLen : base+f.rowLen]
}

// Fill sets every interior point to v (ghosts untouched).
func (f *Field) Fill(v float64) {
	for i := 0; i < f.Nx; i++ {
		col := f.Col(i)
		for j := range col {
			col[j] = v
		}
	}
}

// FillAll sets every point including ghosts to v.
func (f *Field) FillAll(v float64) {
	for k := range f.data {
		f.data[k] = v
	}
}

// CopyFrom copies the full contents (including ghosts) of src, which must
// have identical dimensions.
func (f *Field) CopyFrom(src *Field) {
	if f.Nx != src.Nx || f.Nr != src.Nr {
		panic("field: CopyFrom size mismatch")
	}
	copy(f.data, src.data)
}

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	g := New(f.Nx, f.Nr)
	copy(g.data, f.data)
	return g
}

// Equal reports whether the interiors of f and g match exactly.
func (f *Field) Equal(g *Field) bool {
	if f.Nx != g.Nx || f.Nr != g.Nr {
		return false
	}
	for i := 0; i < f.Nx; i++ {
		a, b := f.Col(i), g.Col(i)
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the max interior |f-g|.
func (f *Field) MaxAbsDiff(g *Field) float64 {
	if f.Nx != g.Nx || f.Nr != g.Nr {
		panic("field: MaxAbsDiff size mismatch")
	}
	m := 0.0
	for i := 0; i < f.Nx; i++ {
		a, b := f.Col(i), g.Col(i)
		for j := range a {
			d := a[j] - b[j]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}

// PackCols copies columns [i0, i0+n) (interior rows only) into dst,
// column-major, returning the number of values written. dst must hold
// n*Nr values. Used to assemble halo-exchange messages.
func (f *Field) PackCols(i0, n int, dst []float64) int {
	k := 0
	for c := 0; c < n; c++ {
		k += copy(dst[k:k+f.Nr], f.Col(i0+c))
	}
	return k
}

// UnpackCols copies src (as produced by PackCols) into columns
// [i0, i0+n), interior rows only. Ghost columns are legal targets.
func (f *Field) UnpackCols(i0, n int, src []float64) int {
	k := 0
	for c := 0; c < n; c++ {
		base := f.idx(i0+c, 0)
		k += copy(f.data[base:base+f.Nr], src[k:k+f.Nr])
	}
	return k
}

// PackRows copies rows [j0, j0+n) across all interior columns into dst,
// x-major (the storage order, so each column contributes one contiguous
// n-value run), returning the number of values written. dst must hold
// Nx*n values. Ghost rows are legal sources. Used to assemble the
// radial (row) halo-exchange messages of the 2-D decomposition.
func (f *Field) PackRows(j0, n int, dst []float64) int {
	k := 0
	for i := 0; i < f.Nx; i++ {
		base := f.idx(i, j0)
		k += copy(dst[k:k+n], f.data[base:base+n])
	}
	return k
}

// UnpackRows copies src (as produced by PackRows) into rows [j0, j0+n)
// of all interior columns. Ghost rows are legal targets.
func (f *Field) UnpackRows(j0, n int, src []float64) int {
	k := 0
	for i := 0; i < f.Nx; i++ {
		base := f.idx(i, j0)
		k += copy(f.data[base:base+n], src[k:k+n])
	}
	return k
}

// MirrorAxis fills the two ghost rows below j=0 with the mirror image of
// rows 0 and 1 (r_j = (j+1/2)Dr implies ghost j=-1 mirrors j=0, j=-2
// mirrors j=1). sign is +1 for even symmetry (rho, u, p, T, E) and -1
// for odd symmetry (radial velocity v).
func (f *Field) MirrorAxis(sign float64) {
	for i := -Halo; i < f.Nx+Halo; i++ {
		f.Set(i, -1, sign*f.At(i, 0))
		f.Set(i, -2, sign*f.At(i, 1))
	}
}

// MirrorTop fills the two ghost rows above j=Nr-1 with the mirror image
// of rows Nr-1 and Nr-2: the staggered radial layout puts the upper
// boundary plane half a cell above the last node, so ghost j=Nr mirrors
// j=Nr-1 and j=Nr+1 mirrors j=Nr-2. sign is +1 for even symmetry about
// the plane and -1 for odd symmetry. Wall scenarios use it for the
// no-slip upper boundary.
func (f *Field) MirrorTop(sign float64) {
	n := f.Nr
	for i := -Halo; i < f.Nx+Halo; i++ {
		f.Set(i, n, sign*f.At(i, n-1))
		f.Set(i, n+1, sign*f.At(i, n-2))
	}
}

// MirrorLeft fills ghost columns i=-1,-2 with the mirror image of
// columns 1 and 2 about the boundary node column i=0 (the axial grid is
// node-centered: x_0 lies on the boundary). sign is +1 for even and -1
// for odd symmetry about the boundary plane.
func (f *Field) MirrorLeft(sign float64) {
	for j := -Halo; j < f.Nr+Halo; j++ {
		f.Set(-1, j, sign*f.At(1, j))
		f.Set(-2, j, sign*f.At(2, j))
	}
}

// MirrorRight fills ghost columns i=Nx, Nx+1 with the mirror image of
// columns Nx-2 and Nx-3 about the boundary node column i=Nx-1.
func (f *Field) MirrorRight(sign float64) {
	n := f.Nx
	for j := -Halo; j < f.Nr+Halo; j++ {
		f.Set(n, j, sign*f.At(n-2, j))
		f.Set(n+1, j, sign*f.At(n-3, j))
	}
}

// ExtrapolateTop fills the two ghost rows above j=Nr-1 by cubic
// extrapolation through the four outermost interior rows, matching the
// paper's "fluxes are extrapolated outside the domain to artificial
// points using a cubic extrapolation".
func (f *Field) ExtrapolateTop() {
	n := f.Nr
	for i := -Halo; i < f.Nx+Halo; i++ {
		a, b, c, d := f.At(i, n-4), f.At(i, n-3), f.At(i, n-2), f.At(i, n-1)
		g1 := 4*d - 6*c + 4*b - a
		g2 := 4*g1 - 6*d + 4*c - b
		f.Set(i, n, g1)
		f.Set(i, n+1, g2)
	}
}

// ExtrapolateLeft fills ghost columns i=-1,-2 by cubic extrapolation
// through interior columns 0..3 (all rows including radial ghosts).
func (f *Field) ExtrapolateLeft() {
	for j := -Halo; j < f.Nr+Halo; j++ {
		a, b, c, d := f.At(3, j), f.At(2, j), f.At(1, j), f.At(0, j)
		g1 := 4*d - 6*c + 4*b - a
		g2 := 4*g1 - 6*d + 4*c - b
		f.Set(-1, j, g1)
		f.Set(-2, j, g2)
	}
}

// ExtrapolateRight fills ghost columns i=Nx, Nx+1 by cubic extrapolation
// through the four rightmost interior columns.
func (f *Field) ExtrapolateRight() {
	n := f.Nx
	for j := -Halo; j < f.Nr+Halo; j++ {
		a, b, c, d := f.At(n-4, j), f.At(n-3, j), f.At(n-2, j), f.At(n-1, j)
		g1 := 4*d - 6*c + 4*b - a
		g2 := 4*g1 - 6*d + 4*c - b
		f.Set(n, j, g1)
		f.Set(n+1, j, g2)
	}
}
