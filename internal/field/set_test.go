package field

import "testing"

func TestSetContiguousLayout(t *testing.T) {
	const n, nx, nr = 4, 6, 5
	s := NewSet(n, nx, nr)
	if got := len(s.Arena()); got != n*s.Stride() {
		t.Fatalf("arena length %d, want %d", got, n*s.Stride())
	}
	for k := 0; k < n; k++ {
		f := s.Field(k)
		if f.Nx != nx || f.Nr != nr {
			t.Fatalf("field %d geometry %dx%d", k, f.Nx, f.Nr)
		}
		f.Set(0, 0, float64(k+1))
	}
	// The interior origin of component k lands at the arena offset of
	// that component's slice: one arena, no independent allocations.
	for k := 0; k < n; k++ {
		off := k*s.Stride() + Halo*(nr+2*Halo) + Halo
		if s.Arena()[off] != float64(k+1) {
			t.Errorf("component %d origin not at arena offset %d", k, off)
		}
	}
	// Writes through one component must not leak into its neighbour.
	s.Field(1).FillAll(7)
	if s.Field(0).At(nx+Halo-1, nr+Halo-1) == 7 || s.Field(2).At(-Halo, -Halo) == 7 {
		t.Error("FillAll leaked across component boundary")
	}
}

func TestColGhostMatchesAt(t *testing.T) {
	f := New(5, 4)
	v := 0.0
	for i := -Halo; i < f.Nx+Halo; i++ {
		for j := -Halo; j < f.Nr+Halo; j++ {
			v++
			f.Set(i, j, v)
		}
	}
	for i := -Halo; i < f.Nx+Halo; i++ {
		col := f.ColGhost(i)
		if len(col) != f.Nr+2*Halo {
			t.Fatalf("ColGhost(%d) length %d", i, len(col))
		}
		for j := -Halo; j < f.Nr+Halo; j++ {
			if col[j+Halo] != f.At(i, j) {
				t.Fatalf("ColGhost(%d)[%d] = %g, At = %g", i, j+Halo, col[j+Halo], f.At(i, j))
			}
		}
	}
	// Appending to a ghost column must not clobber the next column.
	before := f.At(1, -Halo)
	_ = append(f.ColGhost(0), 99)
	if f.At(1, -Halo) != before {
		t.Error("ColGhost capacity leaks into the next column")
	}
}
