package field

import "fmt"

// Set is a structure-of-arrays bundle: n same-geometry fields backed by
// one contiguous arena allocation. The paper's Version 5 collapsed
// COMMON blocks so the working set of a sweep sits in as few distinct
// memory regions as possible; Set is the same idea for the solver's
// variable bundles — the conserved state, the primitive state, and the
// stress tensor each become a single arena instead of a handful of
// independently-allocated fields scattered across the heap. Component k
// occupies arena[k*Stride() : (k+1)*Stride()), so adjacent components
// of a bundle are adjacent in memory and a multi-million-point slab
// costs one allocation per bundle instead of one per field.
type Set struct {
	N      int // number of fields
	Nx, Nr int // interior geometry shared by every field

	stride int // allocated float64s per field
	arena  []float64
	fields []Field
}

// NewSet allocates a zeroed arena holding n fields of an nx-by-nr
// interior (plus the usual Halo ghosts on all sides).
func NewSet(n, nx, nr int) *Set {
	if n <= 0 {
		panic(fmt.Sprintf("field: invalid set size %d", n))
	}
	if nx <= 0 || nr <= 0 {
		panic(fmt.Sprintf("field: invalid size %dx%d", nx, nr))
	}
	rl := nr + 2*Halo
	stride := (nx + 2*Halo) * rl
	s := &Set{
		N: n, Nx: nx, Nr: nr,
		stride: stride,
		arena:  make([]float64, n*stride),
		fields: make([]Field, n),
	}
	for k := range s.fields {
		s.fields[k] = Field{
			Nx: nx, Nr: nr, rowLen: rl,
			// Full-slice bounds so no field can grow into its neighbour.
			data: s.arena[k*stride : (k+1)*stride : (k+1)*stride],
		}
	}
	return s
}

// Field returns component k. The pointer is stable for the lifetime of
// the set and its data aliases the shared arena.
func (s *Set) Field(k int) *Field { return &s.fields[k] }

// Stride returns the number of float64s each component occupies in the
// arena (interior plus ghosts).
func (s *Set) Stride() int { return s.stride }

// Arena returns the backing storage of all components, ghosts included.
// Component k is Arena()[k*Stride() : (k+1)*Stride()].
func (s *Set) Arena() []float64 { return s.arena }
