package field

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAtSetGhosts(t *testing.T) {
	f := New(6, 4)
	f.Set(-2, -2, 1)
	f.Set(7, 5, 2)
	f.Set(3, 2, 3)
	if f.At(-2, -2) != 1 || f.At(7, 5) != 2 || f.At(3, 2) != 3 {
		t.Fatal("ghost/interior addressing broken")
	}
}

func TestColIsInterior(t *testing.T) {
	f := New(5, 7)
	col := f.Col(2)
	if len(col) != 7 {
		t.Fatalf("Col length %d, want 7", len(col))
	}
	col[3] = 42
	if f.At(2, 3) != 42 {
		t.Fatal("Col is not a live view")
	}
}

func TestFillAndEqual(t *testing.T) {
	a, b := New(4, 4), New(4, 4)
	a.Fill(2.5)
	b.Fill(2.5)
	if !a.Equal(b) {
		t.Fatal("equal fields reported unequal")
	}
	b.Set(1, 1, 2.50001)
	if a.Equal(b) {
		t.Fatal("unequal fields reported equal")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-1e-5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %g", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(4, 4)
	a.Fill(1)
	c := a.Clone()
	a.Set(0, 0, 9)
	if c.At(0, 0) == 9 {
		t.Fatal("clone shares storage")
	}
}

// Property: PackCols followed by UnpackCols into a fresh field is the
// identity on the packed columns.
func TestPackUnpackRoundtrip(t *testing.T) {
	f := func(vals []float64, seed uint8) bool {
		nx, nr := 6, 5
		a := New(nx, nr)
		k := 0
		for i := 0; i < nx; i++ {
			for j := 0; j < nr; j++ {
				v := float64(i*nr+j) + 0.5
				if k < len(vals) {
					v = vals[k]
					k++
				}
				a.Set(i, j, v)
			}
		}
		c0 := int(seed % 4)
		n := int(seed%2) + 1
		buf := make([]float64, n*nr)
		if got := a.PackCols(c0, n, buf); got != n*nr {
			return false
		}
		b := New(nx, nr)
		if got := b.UnpackCols(c0, n, buf); got != n*nr {
			return false
		}
		for c := 0; c < n; c++ {
			for j := 0; j < nr; j++ {
				av, bv := a.At(c0+c, j), b.At(c0+c, j)
				if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnpackIntoGhostColumns(t *testing.T) {
	f := New(6, 3)
	src := []float64{1, 2, 3, 4, 5, 6}
	f.UnpackCols(-2, 2, src)
	if f.At(-2, 0) != 1 || f.At(-2, 2) != 3 || f.At(-1, 1) != 5 {
		t.Fatal("ghost unpack wrong")
	}
}

func TestMirrorAxisParity(t *testing.T) {
	f := New(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			f.Set(i, j, float64(10*i+j+1))
		}
	}
	f.MirrorAxis(-1)
	for i := 0; i < 4; i++ {
		if f.At(i, -1) != -f.At(i, 0) {
			t.Fatalf("odd mirror at (%d,-1): %g vs %g", i, f.At(i, -1), f.At(i, 0))
		}
		if f.At(i, -2) != -f.At(i, 1) {
			t.Fatalf("odd mirror at (%d,-2)", i)
		}
	}
	f.MirrorAxis(1)
	if f.At(2, -1) != f.At(2, 0) {
		t.Fatal("even mirror broken")
	}
}

// Property: cubic extrapolation is exact for cubic polynomials — the
// defining property of the paper's artificial-point treatment.
func TestCubicExtrapolationExact(t *testing.T) {
	f := func(a3, a2, a1, a0 float64) bool {
		// Keep coefficients bounded to avoid float blow-up.
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.3
			}
			return math.Mod(x, 3)
		}
		a3, a2, a1, a0 = clamp(a3), clamp(a2), clamp(a1), clamp(a0)
		p := func(x float64) float64 { return a3*x*x*x + a2*x*x + a1*x + a0 }
		g := New(8, 6)
		for i := -Halo; i < 8+Halo; i++ {
			for j := -Halo; j < 6+Halo; j++ {
				g.Set(i, j, 0)
			}
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 6; j++ {
				g.Set(i, j, p(float64(i)))
			}
		}
		g.ExtrapolateLeft()
		g.ExtrapolateRight()
		tol := 1e-8 * (1 + math.Abs(a3) + math.Abs(a2))
		return math.Abs(g.At(-1, 2)-p(-1)) < tol &&
			math.Abs(g.At(-2, 2)-p(-2)) < tol &&
			math.Abs(g.At(8, 2)-p(8)) < tol &&
			math.Abs(g.At(9, 2)-p(9)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExtrapolateTopExactForCubic(t *testing.T) {
	g := New(5, 8)
	p := func(y float64) float64 { return 2*y*y*y - y + 4 }
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			g.Set(i, j, p(float64(j)))
		}
	}
	g.ExtrapolateTop()
	for i := 0; i < 5; i++ {
		if math.Abs(g.At(i, 8)-p(8)) > 1e-9 || math.Abs(g.At(i, 9)-p(9)) > 1e-9 {
			t.Fatalf("top extrapolation inexact at i=%d", i)
		}
	}
}

func TestPackUnpackRowsRoundtrip(t *testing.T) {
	src := New(6, 9)
	dst := New(6, 9)
	for i := 0; i < 6; i++ {
		for j := -Halo; j < 9+Halo; j++ {
			src.Set(i, j, float64(100*i+j))
		}
	}
	buf := make([]float64, 6*Halo)
	// The two bottom boundary rows land in the neighbour's top ghost
	// rows, exactly as the radial halo exchange uses them.
	if n := src.PackRows(0, Halo, buf); n != len(buf) {
		t.Fatalf("packed %d values, want %d", n, len(buf))
	}
	if n := dst.UnpackRows(9, Halo, buf); n != len(buf) {
		t.Fatalf("unpacked %d values, want %d", n, len(buf))
	}
	for i := 0; i < 6; i++ {
		if dst.At(i, 9) != src.At(i, 0) || dst.At(i, 10) != src.At(i, 1) {
			t.Fatalf("ghost rows wrong at column %d: %g %g", i, dst.At(i, 9), dst.At(i, 10))
		}
	}
	// And the top boundary rows into bottom ghosts.
	src.PackRows(7, Halo, buf)
	dst.UnpackRows(-Halo, Halo, buf)
	for i := 0; i < 6; i++ {
		if dst.At(i, -2) != src.At(i, 7) || dst.At(i, -1) != src.At(i, 8) {
			t.Fatalf("bottom ghost rows wrong at column %d", i)
		}
	}
}

func TestCopyFromSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on size mismatch")
		}
	}()
	New(4, 4).CopyFrom(New(5, 4))
}
