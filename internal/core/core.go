// Package core is the public face of the reproduction: one entry point
// to (a) the parallel Navier-Stokes/Euler jet solver — the paper's
// application — on any execution backend of internal/backend, and (b)
// the architectural study that replays the paper's evaluation on
// simulated 1995 platforms.
//
// Quick start:
//
//	run, err := core.NewRun(core.Config{Nx: 125, Nr: 50, Steps: 200})
//	res, err := run.Execute()
//
// Backends are selected by name through the registry ("serial", "shm",
// "mp:v5", "mp:v6", "mp:v7", "mp2d", "mp2d:v6", "hybrid"); the legacy Mode field maps onto
// the same registry. See examples/ for complete programs and DESIGN.md
// for the system inventory.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/solver"
	"repro/internal/trace"
)

// Mode selects the execution configuration (legacy alternative to the
// Backend name).
type Mode int

const (
	// Serial runs the reference single-processor solver.
	Serial Mode = iota
	// MessagePassing runs one goroutine per rank with halo exchanges
	// through the PVM-like message layer (the paper's distributed-memory
	// parallelization).
	MessagePassing
	// SharedMemory runs DOALL loop parallelism (the paper's Cray Y-MP
	// parallelization).
	SharedMemory
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case MessagePassing:
		return "message-passing"
	case SharedMemory:
		return "shared-memory"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config describes one solver run. Zero values select the paper's
// defaults (Navier-Stokes, grid 250x100, Version 5, Lagged halos).
type Config struct {
	// Scenario names the flow problem in the internal/scenario registry
	// ("jet", "cavity", "channel"). Empty selects the jet. The scenario
	// supplies the domain geometry (so Nx/Nr keep their meaning as
	// resolution, but the physical extents are the scenario's) and, for
	// the wall-bounded scenarios, pins the physical configuration —
	// Euler and Jet apply to the jet scenario only.
	Scenario string
	// Euler selects the inviscid equations (default: Navier-Stokes).
	Euler bool
	// Nx, Nr: grid size (default 250x100, the paper's grid).
	Nx, Nr int
	// Steps: composite time steps (default 5000, the paper's runs).
	Steps int
	// Backend names the execution backend in the internal/backend
	// registry ("serial", "shm", "mp:v5", "mp:v6", "mp:v7", "mp2d",
	// "mp2d:v6", "hybrid").
	// When set it takes precedence over Mode/Version.
	Backend string
	// Mode: Serial, MessagePassing, or SharedMemory (legacy selector,
	// used when Backend is empty).
	Mode Mode
	// Procs: ranks (MessagePassing, mp2d, hybrid) or workers
	// (SharedMemory).
	Procs int
	// Workers: per-rank DOALL pool size (hybrid backend only; 0 picks a
	// host-derived default).
	Workers int
	// Px, Pr: rank-grid shape of the mp2d backend (axial × radial).
	// Zero picks the surface-minimizing shape for Procs ranks.
	Px, Pr int
	// Version: communication strategy 5, 6 or 7. Zero means the
	// backend's default. With the legacy MessagePassing mode it selects
	// the mp:vN backend; with an explicit Backend it is passed to the
	// registry, which rejects contradictions (e.g. Backend "mp:v5" with
	// Version 6) and unimplemented strategies instead of ignoring it.
	Version int
	// Balance selects the decomposition cost model of the distributed
	// backends: "uniform" (default, balanced point counts), "flops"
	// (analytic per-column/per-row FLOP profile), or "measured" (a
	// one-step warm-up run whose busy times become the profile). Load
	// balancing changes which points a rank owns, never the numerics.
	Balance string
	// FreshHalos selects the exact-halo policy (bitwise serial
	// equivalence) instead of the paper's lagged message budget.
	FreshHalos bool
	// HaloDepth, when >= 1, selects the communication-avoiding
	// Wide(HaloDepth) halo policy: ranks carry a redundant ghost shell
	// and exchange every HaloDepth-th step instead of every stage,
	// trading redundant compute for message startups while staying
	// bitwise-identical to serial. HaloDepth 1 is exactly the Fresh
	// policy, so it composes with FreshHalos; HaloDepth > 1 together
	// with FreshHalos is a contradiction (the wide cadence is not the
	// per-stage exact policy) and NewRun rejects it, mirroring the
	// CLIs' parse-time check. Zero leaves the FreshHalos choice in
	// force; negative values are an error. Distributed backends only.
	HaloDepth int
	// ReduceGroup, when > 1, makes the distributed backends' allreduce
	// hierarchical (intra-node combine, leaders-only cross-node plan).
	// 0 or 1 keeps the flat plan.
	ReduceGroup int
	// StopTol, when positive, makes the run convergence-controlled:
	// it stops at the first monitored step whose global L2 residual
	// (RMS rate of change of the conserved state) falls to the
	// tolerance, instead of marching the fixed Steps count — the
	// paper's runs march to a converged state, not to a step budget.
	// Result.Steps then reports the steps actually run.
	StopTol float64
	// ReduceEvery is the residual-monitoring cadence in composite
	// steps: the global reduction (residual sum + CFL-stable dt max)
	// runs every ReduceEvery-th step, amortizing the collective. Zero
	// means every step when StopTol is set, no monitoring otherwise.
	ReduceEvery int
	// SteadyTol, when positive, makes the run convergence-controlled on
	// velocity steadiness instead of the L2 residual: it stops at the
	// first monitored step where the global max of |Δu|/dt, |Δv|/dt
	// over core points falls to the tolerance — the closed-flow
	// criterion of the cavity scenario, where the residual never
	// vanishes. Mutually exclusive with StopTol.
	SteadyTol float64
	// TimeSlices, when > 1, selects the Parareal parallel-in-time run:
	// [0, Steps] splits into TimeSlices slices, each propagated by the
	// spatial backend named in Backend (which moves to FineBackend) or
	// FineBackend, stitched by a serial coarse sweep and corrected
	// iteratively. 0 or 1 means the pure spatial run, and the other
	// parallel-in-time fields are inert.
	TimeSlices int
	// PararealIters fixes the Parareal correction-iteration count:
	// 0 means adaptive (stop when the defect falls to DefectTol, capped
	// at TimeSlices); TimeSlices is the exact schedule, bitwise equal
	// to the fine propagator run end to end.
	PararealIters int
	// CoarseFactor coarsens the Parareal coarse propagator's grid and
	// time step in both directions (0 means the backend default of 2;
	// 1 reuses the fine operator itself, making every sweep exact).
	CoarseFactor int
	// DefectTol is the adaptive Parareal stopping tolerance on the
	// slice-boundary L2 defect between successive iterates (0 means the
	// backend default).
	DefectTol float64
	// FineBackend names the spatial backend Parareal runs as the fine
	// propagator of each slice ("" means "serial"; any registry name
	// except "parareal" itself). Spelling a spatial Backend together
	// with TimeSlices > 1 is the same run: the name moves here.
	FineBackend string
	// Jet overrides the physical configuration (default jet.Paper()).
	Jet *jet.Config
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Nx == 0 {
		c.Nx = 250
	}
	if c.Nr == 0 {
		c.Nr = 100
	}
	if c.Steps == 0 {
		c.Steps = 5000
	}
	if c.Procs == 0 && c.Px > 0 && c.Pr > 0 {
		// An explicit rank-grid shape defines the width; an explicit
		// Procs that contradicts it is rejected downstream.
		c.Procs = c.Px * c.Pr
	}
	if c.Procs == 0 {
		c.Procs = 1
	}
	return c
}

// backendName resolves the registry name: the explicit Backend field,
// or the legacy Mode/Version pair.
func (c Config) backendName() (string, error) {
	if c.Backend != "" {
		return c.Backend, nil
	}
	switch c.Mode {
	case Serial:
		return "serial", nil
	case MessagePassing:
		v := c.Version
		if v == 0 {
			v = 5
		}
		return fmt.Sprintf("mp:v%d", v), nil
	case SharedMemory:
		return "shm", nil
	}
	return "", fmt.Errorf("core: unknown mode %v", c.Mode)
}

// jetConfig resolves the base physical configuration. The scenario has
// the final word: the jet honors this unchanged, the wall-bounded
// scenarios replace it with their pinned parameter sets.
func (c Config) jetConfig() jet.Config {
	if c.Jet != nil {
		return *c.Jet
	}
	if c.Euler {
		return jet.Euler()
	}
	return jet.Paper()
}

// scenarioName resolves the registry name (empty means the jet).
func (c Config) scenarioName() string {
	if c.Scenario == "" {
		return "jet"
	}
	return c.Scenario
}

// pinnedVersion parses the communication version a registry name
// hard-wires ("mp:v5" → 5); ok is false for unsuffixed names.
func pinnedVersion(name string) (int, bool) {
	_, suffix, ok := strings.Cut(name, ":v")
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(suffix)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Canonical returns the normalized form of c: every alias spelling of
// the same run maps onto one configuration, which is what a config-hash
// result cache (internal/serve) keys on. Normalized here:
//
//   - zero-value defaults (grid, steps, procs) are filled in;
//   - Mode/Backend aliasing: the resolved registry name is canonical
//     and Mode is re-derived from it ({Mode: MessagePassing, Version: 7}
//     becomes {Backend: "mp:v7"});
//   - version aliasing: a version-pinned name implies its Version, and
//     an explicit Version with a pinned sibling name moves onto it
//     ({Backend: "mp2d", Version: 6} becomes {Backend: "mp2d:v6"});
//   - scenario expansion: the default scenario is named, and Jet is
//     resolved to the physical configuration the scenario actually runs
//     (the wall-bounded scenarios pin their own physics, so a cavity
//     run spelled with -euler is the same cavity run);
//   - policy aliasing: HaloDepth 1 is exactly FreshHalos, ReduceGroup 1
//     is the flat plan, empty Balance is "uniform", and a tolerance
//     (StopTol or SteadyTol) with no cadence monitors every step;
//   - parareal aliasing: a spatial Backend with TimeSlices > 1 is the
//     "parareal" backend with that name as FineBackend (empty fine is
//     "serial"); TimeSlices <= 1 clears the inert parallel-in-time
//     fields, so a spatial run spelled with them hashes identically to
//     the plain spelling; the default Lagged policy folds to Fresh
//     under parareal (the coordinator promotes it for restart
//     transparency);
//   - serial runs one slab whatever width was requested.
//
// The normalization is deliberately syntactic: equivalences it cannot
// see (an explicit Version equal to a backend's unstated default, a
// zero Workers resolving to the host default) stay distinct keys, which
// costs a cache hit but never aliases two different runs together.
// Contradictory configurations (the same ones NewRun rejects at
// construction) are errors.
func (c Config) Canonical() (Config, error) {
	if c.Procs == 0 && (c.Px > 0) != (c.Pr > 0) {
		return Config{}, fmt.Errorf("core: half-specified rank grid (Px=%d, Pr=%d) with Procs unset; set both axes, or one axis plus Procs", c.Px, c.Pr)
	}
	c = c.withDefaults()
	name, err := c.backendName()
	if err != nil {
		return Config{}, err
	}
	c.Backend = name
	c.Mode = modeOf(name)
	if v, ok := pinnedVersion(name); ok {
		c.Version = v
	} else if c.Version != 0 {
		alias := fmt.Sprintf("%s:v%d", name, c.Version)
		if _, ok := backendRegistered(alias); ok {
			c.Backend = alias
		}
	}
	c.Scenario = c.scenarioName()
	sc, err := scenario.Get(c.Scenario)
	if err != nil {
		return Config{}, err
	}
	phys := sc.Config(c.jetConfig())
	c.Jet = &phys
	c.Euler = !phys.Viscous
	if c.Backend == "serial" && c.TimeSlices <= 1 {
		// Under TimeSlices the serial name may only be the default
		// resolution of an empty spelling; the fold below decides
		// whether the fine propagator is really serial before any
		// width clamp applies.
		c.Procs, c.Workers = 1, 0
	}
	if c.TimeSlices < 0 {
		return Config{}, fmt.Errorf("core: time slices must be >= 2 for a parareal run, got %d", c.TimeSlices)
	}
	if c.Backend == "parareal" && c.TimeSlices <= 1 {
		return Config{}, fmt.Errorf("core: the parareal backend needs TimeSlices >= 2, got %d", c.TimeSlices)
	}
	if c.TimeSlices > 1 {
		if c.Backend != "parareal" {
			// A spatial spelling with time slices is the parareal run
			// using that backend as the fine propagator. An explicit
			// FineBackend wins over the default serial resolution of an
			// empty spelling, but contradicting a non-serial spatial
			// name is an error, not a silent pick.
			if c.FineBackend != "" && c.Backend != "serial" && c.FineBackend != c.Backend {
				return Config{}, fmt.Errorf("core: FineBackend %q contradicts spatial backend %q under TimeSlices; name one of them (or Backend \"parareal\")", c.FineBackend, c.Backend)
			}
			if c.FineBackend == "" {
				c.FineBackend = c.Backend
			}
			c.Backend = "parareal"
			c.Mode = modeOf(c.Backend)
		}
		if c.FineBackend == "" {
			c.FineBackend = "serial"
		}
		if v, ok := pinnedVersion(c.FineBackend); ok {
			c.Version = v
		} else if c.Version != 0 {
			alias := fmt.Sprintf("%s:v%d", c.FineBackend, c.Version)
			if _, ok := backendRegistered(alias); ok {
				c.FineBackend = alias
			}
		}
		if c.FineBackend == "serial" {
			c.Procs, c.Workers = 1, 0
		}
		if c.StopTol > 0 || c.SteadyTol > 0 || c.ReduceEvery > 0 {
			return Config{}, fmt.Errorf("core: parareal runs fixed time slices; convergence control (StopTol/SteadyTol/ReduceEvery) does not compose with TimeSlices")
		}
		if !c.FreshHalos && c.HaloDepth <= 1 {
			// The coordinator promotes the default Lagged policy to
			// Fresh (restart transparency); name the canonical policy.
			c.FreshHalos = true
		}
	} else {
		// A spatial run: the parallel-in-time fields are inert, so a
		// run spelled with them is the same run without them.
		c.TimeSlices, c.PararealIters, c.CoarseFactor, c.DefectTol, c.FineBackend = 0, 0, 0, 0, ""
	}
	if c.HaloDepth < 0 {
		return Config{}, fmt.Errorf("core: halo depth must be >= 1, got %d", c.HaloDepth)
	}
	if c.HaloDepth > 1 && c.FreshHalos {
		return Config{}, fmt.Errorf("core: HaloDepth %d (exchange every %d-th step) contradicts FreshHalos (per-stage exact exchange); set one of them", c.HaloDepth, c.HaloDepth)
	}
	if c.HaloDepth == 1 {
		c.HaloDepth, c.FreshHalos = 0, true
	}
	if c.ReduceGroup == 1 {
		c.ReduceGroup = 0
	}
	if c.Balance == "" {
		c.Balance = backend.BalanceUniform
	}
	if c.StopTol > 0 && c.SteadyTol > 0 {
		return Config{}, fmt.Errorf("core: StopTol and SteadyTol are mutually exclusive convergence criteria; set one")
	}
	if (c.StopTol > 0 || c.SteadyTol > 0) && c.ReduceEvery == 0 {
		c.ReduceEvery = 1
	}
	return c, nil
}

// backendRegistered reports whether name resolves in the backend
// registry (without surfacing the unknown-name error).
func backendRegistered(name string) (backend.Backend, bool) {
	b, err := backend.Get(name)
	return b, err == nil
}

// Result reports a completed run.
type Result struct {
	Backend string
	// Scenario is the flow problem that ran ("jet" by default).
	Scenario string
	// Mode is the execution style of the backend that actually ran —
	// derived from the resolved registry name, so an explicit Backend
	// like "mp2d" reports MessagePassing even though the legacy Mode
	// field was never set.
	Mode   Mode
	Procs  int
	Px, Pr int // rank-grid shape (mp2d), 0 otherwise
	// Steps is the number of composite steps actually run — fewer
	// than Config.Steps when StopTol stopped the run early.
	Steps int
	Dt    float64
	// Converged reports an early stop on StopTol/SteadyTol (or, for a
	// parareal run, an adaptive defect-tolerance stop); Residuals is
	// the monitored convergence history (step, L2 residual — or
	// iteration, L2 defect for parareal).
	Converged bool
	Residuals []solver.ResidualPoint
	// TimeSlices, Iterations, and Defect report a parareal run: the
	// slice count, the correction iterations actually run, and the
	// final slice-boundary L2 defect. Zero for spatial runs.
	TimeSlices int
	Iterations int
	Defect     float64
	Elapsed    time.Duration
	Diag       solver.Diagnostics
	Comm       trace.Counters    // aggregate communication (mp, mp2d, hybrid)
	CommDir    trace.DirCounters // Comm split by exchange class (mp2d, reductions)
	PerRank    []par.RankStats   // per-rank profile (mp, mp2d, hybrid)
	Momentum   [][]float64       // axial momentum field rho*u
}

// modeOf derives the reported execution mode from a resolved registry
// name: the serial slab, the DOALL pool, or anything that exchanges
// messages (mp, mp2d, and the hybrid ranks × DOALL composition).
func modeOf(backendName string) Mode {
	switch backendName {
	case "serial":
		return Serial
	case "shm":
		return SharedMemory
	}
	return MessagePassing
}

// Run lifecycle states (Run.state).
const (
	runReady = iota
	runExecuted
	runClosed
)

// Lifecycle errors of Run.Execute. Both satisfy errors.Is.
var (
	// ErrRunConsumed reports a second Execute on the same Run: a Run is
	// one-shot, build a fresh one with NewRun (construction is cheap —
	// the heavy state lives inside Execute).
	ErrRunConsumed = errors.New("core: run already executed; a Run is one-shot, build a new one with NewRun")
	// ErrRunClosed reports Execute after Close.
	ErrRunClosed = errors.New("core: run closed")
)

// Run is a configured solver run bound to a registry backend. A Run is
// one-shot: the first Execute performs the run, any later (or
// concurrently racing) Execute fails with ErrRunConsumed — re-running
// silently on the same options was never defined behavior, and a
// serving process must be able to treat a Run as a consumable job.
type Run struct {
	cfg Config
	// phys is the scenario-resolved physical configuration the backend
	// actually runs (the scenario may override Config.Jet/Euler).
	phys jet.Config
	grid *grid.Grid
	be   backend.Backend
	opts backend.Options
	// state is the lifecycle latch (runReady → runExecuted/runClosed);
	// atomic so exactly one of concurrently racing Execute calls wins.
	state atomic.Uint32
}

// NewRun validates the configuration, resolves the backend from the
// registry, and checks the decomposition.
func NewRun(c Config) (*Run, error) {
	if c.Procs == 0 && (c.Px > 0) != (c.Pr > 0) {
		// A half-specified rank grid with no total width has no
		// defensible resolution: refusing beats silently collapsing
		// the run to one rank.
		return nil, fmt.Errorf("core: half-specified rank grid (Px=%d, Pr=%d) with Procs unset; set both axes, or one axis plus Procs", c.Px, c.Pr)
	}
	c = c.withDefaults()
	// The scenario resolves first: it owns the domain geometry and (for
	// the pinned scenarios) the physical configuration the backend runs.
	sc, err := scenario.Get(c.scenarioName())
	if err != nil {
		return nil, err
	}
	phys := sc.Config(c.jetConfig())
	g, err := sharedGrid(sc, c.scenarioName(), c.Nx, c.Nr)
	if err != nil {
		return nil, err
	}
	name, err := c.backendName()
	if err != nil {
		return nil, err
	}
	fine := c.FineBackend
	if c.TimeSlices > 1 && name != "parareal" {
		// A spatial backend name with time slices means: run the
		// parareal coordinator with that backend as the fine propagator.
		// An explicit FineBackend wins over the default serial
		// resolution of an empty spelling, but contradicting a
		// non-serial spatial name is an error, not a silent pick.
		if fine != "" && name != "serial" && fine != name {
			return nil, fmt.Errorf("core: FineBackend %q contradicts spatial backend %q under TimeSlices; name one of them (or Backend \"parareal\")", fine, name)
		}
		if fine == "" {
			fine = name
		}
		name = "parareal"
	}
	be, err := backend.Get(name)
	if err != nil {
		return nil, err
	}
	policy := solver.Lagged
	if c.FreshHalos {
		policy = solver.Fresh
	}
	if c.HaloDepth < 0 {
		return nil, fmt.Errorf("core: halo depth must be >= 1, got %d", c.HaloDepth)
	}
	if c.HaloDepth > 1 && c.FreshHalos {
		return nil, fmt.Errorf("core: HaloDepth %d (exchange every %d-th step) contradicts FreshHalos (per-stage exact exchange); set one of them", c.HaloDepth, c.HaloDepth)
	}
	if c.HaloDepth >= 1 {
		policy = solver.Wide(c.HaloDepth)
	}
	opts := backend.Options{
		Scenario:    c.Scenario,
		Procs:       c.Procs,
		Workers:     c.Workers,
		Px:          c.Px,
		Pr:          c.Pr,
		Version:     par.Version(c.Version),
		Policy:      policy,
		Balance:     c.Balance,
		StopTol:     c.StopTol,
		SteadyTol:   c.SteadyTol,
		ReduceEvery: c.ReduceEvery,
		ReduceGroup: c.ReduceGroup,

		TimeSlices:    c.TimeSlices,
		PararealIters: c.PararealIters,
		CoarseFactor:  c.CoarseFactor,
		DefectTol:     c.DefectTol,
		Fine:          fine,
	}
	if err := backend.Validate(be, phys, g, opts); err != nil {
		return nil, err
	}
	return &Run{cfg: c, phys: phys, grid: g, be: be, opts: opts}, nil
}

// gridCache shares one immutable *grid.Grid per (scenario, nx, nr)
// across all Runs: grid.Grid is read-only after construction (the
// package documents it as "an immutable description"), so concurrent
// runs of the same scenario and resolution can — and in a serving
// process with thousands of queued sweep points, should — read the
// same metric arrays instead of each holding a private copy.
var gridCache = struct {
	sync.RWMutex
	m map[gridKey]*grid.Grid
}{m: map[gridKey]*grid.Grid{}}

type gridKey struct {
	scenario string
	nx, nr   int
}

// sharedGrid resolves the scenario's grid through the cache. Errors are
// not cached: a resolution the scenario rejects is rejected again on
// the next request (cheap, and keeps the cache all-valid).
func sharedGrid(sc scenario.Scenario, name string, nx, nr int) (*grid.Grid, error) {
	k := gridKey{scenario: name, nx: nx, nr: nr}
	gridCache.RLock()
	g, ok := gridCache.m[k]
	gridCache.RUnlock()
	if ok {
		return g, nil
	}
	g, err := sc.Grid(nx, nr)
	if err != nil {
		return nil, err
	}
	gridCache.Lock()
	defer gridCache.Unlock()
	if cached, ok := gridCache.m[k]; ok {
		// A racing builder won; every Run of this resolution must see
		// the same pointer, so prefer the cached one.
		return cached, nil
	}
	gridCache.m[k] = g
	return g, nil
}

// Grid returns the computational grid. Grids are shared across Runs of
// the same scenario and resolution — treat them as immutable.
func (r *Run) Grid() *grid.Grid { return r.grid }

// Backend returns the resolved execution backend.
func (r *Run) Backend() backend.Backend { return r.be }

// Execute advances the configured number of steps and reports. It
// consumes the Run: a second call — sequential or concurrently racing —
// fails with ErrRunConsumed (ErrRunClosed after Close) instead of
// silently re-running on the same options. Distinct Runs execute
// concurrently and independently; their shared inputs (backend and
// scenario registry entries, the grid cache) are immutable or
// lock-guarded.
func (r *Run) Execute() (*Result, error) {
	if !r.state.CompareAndSwap(runReady, runExecuted) {
		if r.state.Load() == runClosed {
			return nil, ErrRunClosed
		}
		return nil, ErrRunConsumed
	}
	c := r.cfg
	br, err := r.be.Run(r.phys, r.grid, r.opts, c.Steps)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Backend:    br.Backend,
		Scenario:   br.Scenario,
		Mode:       modeOf(br.Backend),
		Procs:      br.Procs,
		Px:         br.Px,
		Pr:         br.Pr,
		Steps:      br.Steps,
		Dt:         br.Dt,
		Converged:  br.Converged,
		Residuals:  br.Residuals,
		TimeSlices: br.TimeSlices,
		Iterations: br.Iterations,
		Defect:     br.Defect,
		Elapsed:    br.Elapsed,
		Diag:       br.Diag,
		Comm:       br.Comm,
		CommDir:    br.CommDir,
		PerRank:    br.PerRank,
		Momentum:   br.Momentum(),
	}
	if res.Diag.HasNaN {
		return res, fmt.Errorf("core: run diverged (NaN after %d steps)", br.Steps)
	}
	return res, nil
}

// Close marks the run finished. Backends release their worker pools at
// the end of Run, so there is nothing to free — but Close latches the
// lifecycle: a later Execute fails with ErrRunClosed instead of
// starting a solver on a run the caller already abandoned. Closing an
// executed (or already closed) run is a harmless no-op.
func (r *Run) Close() { r.state.Store(runClosed) }
