// Package core is the public face of the reproduction: one entry point
// to (a) the parallel Navier-Stokes/Euler jet solver — the paper's
// application — in serial, message-passing, and shared-memory (DOALL)
// configurations, and (b) the architectural study that replays the
// paper's evaluation on simulated 1995 platforms.
//
// Quick start:
//
//	run, err := core.NewRun(core.Config{Nx: 125, Nr: 50, Steps: 200})
//	res, err := run.Execute()
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package core

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/jet"
	"repro/internal/par"
	"repro/internal/shm"
	"repro/internal/solver"
	"repro/internal/trace"
)

// Mode selects the execution configuration.
type Mode int

const (
	// Serial runs the reference single-processor solver.
	Serial Mode = iota
	// MessagePassing runs one goroutine per rank with halo exchanges
	// through the PVM-like message layer (the paper's distributed-memory
	// parallelization).
	MessagePassing
	// SharedMemory runs DOALL loop parallelism (the paper's Cray Y-MP
	// parallelization).
	SharedMemory
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case MessagePassing:
		return "message-passing"
	case SharedMemory:
		return "shared-memory"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config describes one solver run. Zero values select the paper's
// defaults (Navier-Stokes, grid 250x100, Version 5, Lagged halos).
type Config struct {
	// Euler selects the inviscid equations (default: Navier-Stokes).
	Euler bool
	// Nx, Nr: grid size (default 250x100, the paper's grid).
	Nx, Nr int
	// Steps: composite time steps (default 5000, the paper's runs).
	Steps int
	// Mode: Serial, MessagePassing, or SharedMemory.
	Mode Mode
	// Procs: ranks (MessagePassing) or workers (SharedMemory).
	Procs int
	// Version: communication strategy 5, 6 or 7 (MessagePassing only).
	Version int
	// FreshHalos selects the exact-halo policy (bitwise serial
	// equivalence) instead of the paper's lagged message budget.
	FreshHalos bool
	// Jet overrides the physical configuration (default jet.Paper()).
	Jet *jet.Config
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Nx == 0 {
		c.Nx = 250
	}
	if c.Nr == 0 {
		c.Nr = 100
	}
	if c.Steps == 0 {
		c.Steps = 5000
	}
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.Version == 0 {
		c.Version = 5
	}
	return c
}

// jetConfig resolves the physical problem.
func (c Config) jetConfig() jet.Config {
	if c.Jet != nil {
		return *c.Jet
	}
	if c.Euler {
		return jet.Euler()
	}
	return jet.Paper()
}

// Result reports a completed run.
type Result struct {
	Mode     Mode
	Procs    int
	Steps    int
	Dt       float64
	Elapsed  time.Duration
	Diag     solver.Diagnostics
	Comm     trace.Counters  // aggregate communication (MessagePassing)
	PerRank  []par.RankStats // per-rank profile (MessagePassing)
	Momentum [][]float64     // axial momentum field rho*u
}

// Run is a configured, reusable solver instance.
type Run struct {
	cfg    Config
	grid   *grid.Grid
	serial *solver.Serial
	mp     *par.Runner
	shmS   *shm.Solver
}

// NewRun validates the configuration and allocates the solver.
func NewRun(c Config) (*Run, error) {
	c = c.withDefaults()
	g, err := grid.New(c.Nx, c.Nr, 50, 5)
	if err != nil {
		return nil, err
	}
	r := &Run{cfg: c, grid: g}
	jc := c.jetConfig()
	switch c.Mode {
	case Serial:
		r.serial, err = solver.NewSerial(jc, g)
	case MessagePassing:
		policy := solver.Lagged
		if c.FreshHalos {
			policy = solver.Fresh
		}
		r.mp, err = par.NewRunner(jc, g, par.Options{
			Procs:   c.Procs,
			Version: par.Version(c.Version),
			Policy:  policy,
		})
	case SharedMemory:
		r.shmS, err = shm.NewSolver(jc, g, c.Procs)
	default:
		err = fmt.Errorf("core: unknown mode %v", c.Mode)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Grid returns the computational grid.
func (r *Run) Grid() *grid.Grid { return r.grid }

// Execute advances the configured number of steps and reports.
func (r *Run) Execute() (*Result, error) {
	c := r.cfg
	res := &Result{Mode: c.Mode, Procs: c.Procs, Steps: c.Steps}
	start := time.Now()
	switch c.Mode {
	case Serial:
		r.serial.Run(c.Steps)
		res.Dt = r.serial.Dt
		res.Diag = r.serial.Diagnose()
		res.Momentum = r.serial.AxialMomentum()
	case MessagePassing:
		pr := r.mp.Run(c.Steps)
		res.Dt = pr.Dt
		res.Diag = pr.Diag
		res.Comm = pr.TotalComm()
		res.PerRank = pr.Ranks
		res.Momentum = momentumFromState(r.mp)
	case SharedMemory:
		r.shmS.Run(c.Steps)
		res.Dt = r.shmS.Dt
		res.Diag = r.shmS.Diagnose()
		res.Momentum = r.shmS.AxialMomentum()
	}
	res.Elapsed = time.Since(start)
	if res.Diag.HasNaN {
		return res, fmt.Errorf("core: run diverged (NaN after %d steps)", c.Steps)
	}
	return res, nil
}

// Close releases worker pools (SharedMemory mode).
func (r *Run) Close() {
	if r.shmS != nil {
		r.shmS.Close()
	}
}

// momentumFromState assembles rho*u from the distributed slabs.
func momentumFromState(runner *par.Runner) [][]float64 {
	full := runner.GatherState()
	nx, nr := runner.Grid.Nx, runner.Grid.Nr
	out := make([][]float64, nx)
	for i := 0; i < nx; i++ {
		col := make([]float64, nr)
		copy(col, full[1].Col(i)) // component IMx = rho*u
		out[i] = col
	}
	return out
}
