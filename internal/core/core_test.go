package core

import (
	"math"
	"testing"

	"repro/internal/jet"
	"repro/internal/study"
)

func small() Config {
	return Config{Nx: 64, Nr: 24, Steps: 10}
}

func TestSerialRun(t *testing.T) {
	run, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != Serial || res.Steps != 10 || res.Dt <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Momentum) != 64 || len(res.Momentum[0]) != 24 {
		t.Fatal("momentum field shape")
	}
}

// All three modes must agree on the physics (bitwise for Fresh halos).
func TestModesAgree(t *testing.T) {
	ref, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{MessagePassing, SharedMemory} {
		c := small()
		c.Mode = mode
		c.Procs = 4
		c.FreshHalos = true
		run, err := NewRun(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Execute()
		run.Close()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Diag.Mass-refRes.Diag.Mass) > 1e-12 {
			t.Errorf("%v: mass %.15g vs serial %.15g", mode, res.Diag.Mass, refRes.Diag.Mass)
		}
		for i := range res.Momentum {
			for j := range res.Momentum[i] {
				if res.Momentum[i][j] != refRes.Momentum[i][j] {
					t.Fatalf("%v: momentum differs at (%d,%d)", mode, i, j)
				}
			}
		}
	}
}

func TestMessagePassingReportsComm(t *testing.T) {
	c := small()
	c.Mode = MessagePassing
	c.Procs = 4
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Startups == 0 || res.Comm.Bytes == 0 {
		t.Fatalf("no communication recorded: %+v", res.Comm)
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("%d rank stats", len(res.PerRank))
	}
}

func TestEulerConfig(t *testing.T) {
	c := small()
	c.Euler = true
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomJetOverride(t *testing.T) {
	c := small()
	jc := jet.Paper()
	jc.Eps = 0
	c.Jet = &jc
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// The mean profile is not an exact steady solution (it diffuses and
	// adjusts radially), but without excitation any radial motion stays
	// tiny; with excitation it is ~1e-4 (see solver tests).
	if res.Diag.MaxV > 1e-5 {
		t.Errorf("unexcited jet grew radial velocity %g", res.Diag.MaxV)
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	c := Config{}.withDefaults()
	// Version stays 0 — "the backend's default" — so that an explicit
	// Backend like "mp:v6" is not contradicted by a default of 5.
	if c.Nx != 250 || c.Nr != 100 || c.Steps != 5000 || c.Procs != 1 || c.Version != 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if _, err := NewRun(Config{Nx: 4, Nr: 4}); err == nil {
		t.Error("want error for tiny grid")
	}
	if _, err := NewRun(Config{Nx: 64, Nr: 24, Mode: Mode(9)}); err == nil {
		t.Error("want error for unknown mode")
	}
	if _, err := NewRun(Config{Nx: 64, Nr: 24, Mode: MessagePassing, Procs: 32}); err == nil {
		t.Error("want error for too many ranks")
	}
}

// TestVersionReachesRegistry: Config.Version must feed the backend
// registry with any Backend name — not only through the legacy
// MessagePassing mode — and contradictions must be rejected at NewRun
// time, not silently downgraded.
func TestVersionReachesRegistry(t *testing.T) {
	base := Config{Nx: 64, Nr: 24, Steps: 2, Procs: 2}
	for _, name := range []string{"mp2d", "hybrid"} {
		c := base
		c.Backend = name
		c.Version = 6
		if _, err := NewRun(c); err != nil {
			t.Errorf("%s with Version 6: %v", name, err)
		}
	}
	bad := []Config{
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp:v5", Version: 6},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp2d:v6", Version: 5},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp2d", Version: 7},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "serial", Version: 6},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "shm", Version: 6},
	}
	for _, c := range bad {
		if _, err := NewRun(c); err == nil {
			t.Errorf("%s with Version %d: want contradiction error", c.Backend, c.Version)
		}
	}
	// Legacy path: MessagePassing + Version still selects mp:vN without
	// tripping the pin check.
	c := base
	c.Mode = MessagePassing
	c.Version = 6
	run, err := NewRun(c)
	if err != nil {
		t.Fatalf("legacy MessagePassing Version 6: %v", err)
	}
	if got := run.Backend().Name(); got != "mp:v6" {
		t.Errorf("legacy mode resolved %q, want mp:v6", got)
	}
}

// TestModeReportsResolvedBackend is the regression test for the Mode
// reporting bug: Execute used to echo Config.Mode (zero = Serial) even
// when Config.Backend named a parallel backend. The reported mode must
// derive from the backend that actually ran.
func TestModeReportsResolvedBackend(t *testing.T) {
	cases := []struct {
		cfg  Config
		want Mode
	}{
		{Config{Nx: 64, Nr: 24, Steps: 2, Backend: "mp2d", Procs: 4}, MessagePassing},
		{Config{Nx: 64, Nr: 24, Steps: 2, Backend: "hybrid", Procs: 2, Workers: 2}, MessagePassing},
		{Config{Nx: 64, Nr: 24, Steps: 2, Backend: "shm", Procs: 2}, SharedMemory},
		{Config{Nx: 64, Nr: 24, Steps: 2, Backend: "serial"}, Serial},
		{Config{Nx: 64, Nr: 24, Steps: 2, Mode: SharedMemory, Procs: 2}, SharedMemory},
	}
	for _, c := range cases {
		run, err := NewRun(c.cfg)
		if err != nil {
			t.Fatalf("%+v: %v", c.cfg, err)
		}
		res, err := run.Execute()
		if err != nil {
			t.Fatalf("%+v: %v", c.cfg, err)
		}
		if res.Mode != c.want {
			t.Errorf("backend %q reported mode %v, want %v", res.Backend, res.Mode, c.want)
		}
	}
}

// TestHalfSpecifiedRankGrid is the regression test for the silent
// 1-rank collapse: one rank-grid axis without the other and without
// Procs must be an error, not a serial run in disguise.
func TestHalfSpecifiedRankGrid(t *testing.T) {
	for _, cfg := range []Config{
		{Nx: 64, Nr: 24, Backend: "mp2d", Px: 2},
		{Nx: 64, Nr: 24, Backend: "mp2d", Px: 1},
		{Nx: 64, Nr: 24, Backend: "mp2d", Pr: 2},
	} {
		if _, err := NewRun(cfg); err == nil {
			t.Errorf("Px=%d Pr=%d Procs=0: want half-specified-grid error", cfg.Px, cfg.Pr)
		}
	}
	// One axis plus an explicit total stays valid (the other axis is
	// derived), as does a full shape with no total.
	for _, cfg := range []Config{
		{Nx: 64, Nr: 24, Steps: 1, Backend: "mp2d", Px: 2, Procs: 4},
		{Nx: 64, Nr: 24, Steps: 1, Backend: "mp2d", Px: 2, Pr: 2},
	} {
		if _, err := NewRun(cfg); err != nil {
			t.Errorf("Px=%d Pr=%d Procs=%d: unexpected error %v", cfg.Px, cfg.Pr, cfg.Procs, err)
		}
	}
}

// TestConvergedRunReportsActualSteps: with a tolerance, Result.Steps
// must be the steps actually run, with the residual history attached —
// the other half of the reporting-bug satellite.
func TestConvergedRunReportsActualSteps(t *testing.T) {
	jc := study.ConvergedConfig()
	c := Config{Nx: 64, Nr: 26, Steps: 400, Backend: "mp:v5", Procs: 3,
		StopTol: 9e-3, ReduceEvery: 5, Jet: &jc}
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Steps >= 400 || res.Steps == 0 {
		t.Fatalf("converged run reported steps=%d converged=%v", res.Steps, res.Converged)
	}
	if len(res.Residuals) == 0 || res.Residuals[len(res.Residuals)-1].Step != res.Steps {
		t.Fatalf("residual history %v does not end at the stop step %d", res.Residuals, res.Steps)
	}
	if res.CommDir.Reduce.Startups == 0 {
		t.Fatal("no reduce-class traffic recorded")
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || MessagePassing.String() != "message-passing" || SharedMemory.String() != "shared-memory" {
		t.Fatal("mode strings")
	}
}

// TestBackendNameSelectsRegistry: the Backend field must route through
// the internal/backend registry, take precedence over Mode, and
// surface registry errors at NewRun.
func TestBackendNameSelectsRegistry(t *testing.T) {
	c := small()
	c.Backend = "hybrid"
	c.Mode = SharedMemory // must be overridden by Backend
	c.Procs = 4
	c.Workers = 2
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Backend().Name() != "hybrid" {
		t.Fatalf("resolved %q, want hybrid", run.Backend().Name())
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "hybrid" || res.Comm.Startups == 0 {
		t.Fatalf("hybrid result: backend=%q comm=%+v", res.Backend, res.Comm)
	}

	c.Backend = "nonesuch"
	if _, err := NewRun(c); err == nil {
		t.Error("want error for unknown backend name")
	}
	c.Backend = "hybrid"
	c.Procs = 32 // 64 columns / 32 ranks is below the stencil width
	if _, err := NewRun(c); err == nil {
		t.Error("want early decomposition error from backend.Validate")
	}
}
