package core

import (
	"math"
	"testing"

	"repro/internal/jet"
)

func small() Config {
	return Config{Nx: 64, Nr: 24, Steps: 10}
}

func TestSerialRun(t *testing.T) {
	run, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != Serial || res.Steps != 10 || res.Dt <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Momentum) != 64 || len(res.Momentum[0]) != 24 {
		t.Fatal("momentum field shape")
	}
}

// All three modes must agree on the physics (bitwise for Fresh halos).
func TestModesAgree(t *testing.T) {
	ref, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{MessagePassing, SharedMemory} {
		c := small()
		c.Mode = mode
		c.Procs = 4
		c.FreshHalos = true
		run, err := NewRun(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := run.Execute()
		run.Close()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Diag.Mass-refRes.Diag.Mass) > 1e-12 {
			t.Errorf("%v: mass %.15g vs serial %.15g", mode, res.Diag.Mass, refRes.Diag.Mass)
		}
		for i := range res.Momentum {
			for j := range res.Momentum[i] {
				if res.Momentum[i][j] != refRes.Momentum[i][j] {
					t.Fatalf("%v: momentum differs at (%d,%d)", mode, i, j)
				}
			}
		}
	}
}

func TestMessagePassingReportsComm(t *testing.T) {
	c := small()
	c.Mode = MessagePassing
	c.Procs = 4
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm.Startups == 0 || res.Comm.Bytes == 0 {
		t.Fatalf("no communication recorded: %+v", res.Comm)
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("%d rank stats", len(res.PerRank))
	}
}

func TestEulerConfig(t *testing.T) {
	c := small()
	c.Euler = true
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomJetOverride(t *testing.T) {
	c := small()
	jc := jet.Paper()
	jc.Eps = 0
	c.Jet = &jc
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// The mean profile is not an exact steady solution (it diffuses and
	// adjusts radially), but without excitation any radial motion stays
	// tiny; with excitation it is ~1e-4 (see solver tests).
	if res.Diag.MaxV > 1e-5 {
		t.Errorf("unexcited jet grew radial velocity %g", res.Diag.MaxV)
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	c := Config{}.withDefaults()
	// Version stays 0 — "the backend's default" — so that an explicit
	// Backend like "mp:v6" is not contradicted by a default of 5.
	if c.Nx != 250 || c.Nr != 100 || c.Steps != 5000 || c.Procs != 1 || c.Version != 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if _, err := NewRun(Config{Nx: 4, Nr: 4}); err == nil {
		t.Error("want error for tiny grid")
	}
	if _, err := NewRun(Config{Nx: 64, Nr: 24, Mode: Mode(9)}); err == nil {
		t.Error("want error for unknown mode")
	}
	if _, err := NewRun(Config{Nx: 64, Nr: 24, Mode: MessagePassing, Procs: 32}); err == nil {
		t.Error("want error for too many ranks")
	}
}

// TestVersionReachesRegistry: Config.Version must feed the backend
// registry with any Backend name — not only through the legacy
// MessagePassing mode — and contradictions must be rejected at NewRun
// time, not silently downgraded.
func TestVersionReachesRegistry(t *testing.T) {
	base := Config{Nx: 64, Nr: 24, Steps: 2, Procs: 2}
	for _, name := range []string{"mp2d", "hybrid"} {
		c := base
		c.Backend = name
		c.Version = 6
		if _, err := NewRun(c); err != nil {
			t.Errorf("%s with Version 6: %v", name, err)
		}
	}
	bad := []Config{
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp:v5", Version: 6},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp2d:v6", Version: 5},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "mp2d", Version: 7},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "serial", Version: 6},
		{Nx: 64, Nr: 24, Steps: 2, Procs: 2, Backend: "shm", Version: 6},
	}
	for _, c := range bad {
		if _, err := NewRun(c); err == nil {
			t.Errorf("%s with Version %d: want contradiction error", c.Backend, c.Version)
		}
	}
	// Legacy path: MessagePassing + Version still selects mp:vN without
	// tripping the pin check.
	c := base
	c.Mode = MessagePassing
	c.Version = 6
	run, err := NewRun(c)
	if err != nil {
		t.Fatalf("legacy MessagePassing Version 6: %v", err)
	}
	if got := run.Backend().Name(); got != "mp:v6" {
		t.Errorf("legacy mode resolved %q, want mp:v6", got)
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || MessagePassing.String() != "message-passing" || SharedMemory.String() != "shared-memory" {
		t.Fatal("mode strings")
	}
}

// TestBackendNameSelectsRegistry: the Backend field must route through
// the internal/backend registry, take precedence over Mode, and
// surface registry errors at NewRun.
func TestBackendNameSelectsRegistry(t *testing.T) {
	c := small()
	c.Backend = "hybrid"
	c.Mode = SharedMemory // must be overridden by Backend
	c.Procs = 4
	c.Workers = 2
	run, err := NewRun(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Backend().Name() != "hybrid" {
		t.Fatalf("resolved %q, want hybrid", run.Backend().Name())
	}
	res, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "hybrid" || res.Comm.Startups == 0 {
		t.Fatalf("hybrid result: backend=%q comm=%+v", res.Backend, res.Comm)
	}

	c.Backend = "nonesuch"
	if _, err := NewRun(c); err == nil {
		t.Error("want error for unknown backend name")
	}
	c.Backend = "hybrid"
	c.Procs = 32 // 64 columns / 32 ranks is below the stencil width
	if _, err := NewRun(c); err == nil {
		t.Error("want early decomposition error from backend.Validate")
	}
}
