package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunIsOneShot pins the Execute reuse semantics: a Run is consumed
// by its first Execute, and every later attempt fails loudly instead of
// silently re-marching a stale field.
func TestRunIsOneShot(t *testing.T) {
	run, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); !errors.Is(err, ErrRunConsumed) {
		t.Fatalf("second Execute: err = %v, want ErrRunConsumed", err)
	}
}

func TestClosedRunRefusesExecute(t *testing.T) {
	run, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	if _, err := run.Execute(); !errors.Is(err, ErrRunClosed) {
		t.Fatalf("Execute after Close: err = %v, want ErrRunClosed", err)
	}
	// Close after Execute is a no-op used by defers.
	run2, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run2.Execute(); err != nil {
		t.Fatal(err)
	}
	run2.Close()
}

// TestConcurrentExecuteOneRun races many Execute calls on ONE Run:
// exactly one must win, the rest must fail with ErrRunConsumed (run
// with -race).
func TestConcurrentExecuteOneRun(t *testing.T) {
	run, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	var wins, consumed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch _, err := run.Execute(); {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrRunConsumed):
				consumed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || consumed.Load() != callers-1 {
		t.Fatalf("wins=%d consumed=%d, want 1 and %d", wins.Load(), consumed.Load(), callers-1)
	}
}

// TestConcurrentExecuteDistinctRuns is the multi-tenant core guarantee:
// distinct Runs over mixed backends execute concurrently (sharing the
// cached grid) and each reproduces its solo result bitwise (run with
// -race).
func TestConcurrentExecuteDistinctRuns(t *testing.T) {
	configs := []Config{
		small(),
		{Backend: "shm", Procs: 2, Nx: 64, Nr: 24, Steps: 10},
		{Backend: "mp:v5", Procs: 2, FreshHalos: true, Nx: 64, Nr: 24, Steps: 10},
		{Backend: "mp2d", Px: 2, Pr: 2, Procs: 4, FreshHalos: true, Nx: 64, Nr: 24, Steps: 10},
	}
	want := make([]*Result, len(configs))
	for i, c := range configs {
		run, err := NewRun(c)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = run.Execute(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*Result, len(configs))
	var wg sync.WaitGroup
	for i, c := range configs {
		wg.Add(1)
		go func(i int, c Config) {
			defer wg.Done()
			run, err := NewRun(c)
			if err != nil {
				t.Error(err)
				return
			}
			defer run.Close()
			if got[i], err = run.Execute(); err != nil {
				t.Error(err)
			}
		}(i, c)
	}
	wg.Wait()
	for i := range configs {
		if got[i] == nil {
			t.Fatalf("config %d produced no result", i)
		}
		for x := range want[i].Momentum {
			for r := range want[i].Momentum[x] {
				if got[i].Momentum[x][r] != want[i].Momentum[x][r] {
					t.Fatalf("config %d: momentum[%d][%d] differs under concurrency: %g vs %g",
						i, x, r, got[i].Momentum[x][r], want[i].Momentum[x][r])
				}
			}
		}
	}
}

// TestSharedGridCache: concurrent NewRuns of one scenario resolution
// share a single grid instance.
func TestSharedGridCache(t *testing.T) {
	a, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRun(small())
	if err != nil {
		t.Fatal(err)
	}
	if a.grid != b.grid {
		t.Fatal("two runs of one scenario resolution built distinct grids")
	}
}

func TestHaloContradictionRejected(t *testing.T) {
	c := small()
	c.Backend = "mp:v5"
	c.Procs = 2
	c.FreshHalos = true
	c.HaloDepth = 2
	if _, err := NewRun(c); err == nil {
		t.Fatal("HaloDepth > 1 with FreshHalos accepted")
	}
	if _, err := c.Canonical(); err == nil {
		t.Fatal("Canonical accepted the contradiction")
	}
	c.HaloDepth = 1 // depth 1 IS the fresh policy; no contradiction
	if _, err := NewRun(c); err != nil {
		t.Fatal(err)
	}
}

// TestCanonical pins the normalizations the service cache keys on.
func TestCanonical(t *testing.T) {
	cc, err := small().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cc.Backend != "serial" || cc.Mode != Serial || cc.Scenario != "jet" {
		t.Fatalf("zero config canonicalized to %+v", cc)
	}
	if cc.Procs != 1 || cc.Workers != 0 {
		t.Fatalf("serial width not normalized: procs=%d workers=%d", cc.Procs, cc.Workers)
	}
	if cc.Jet == nil || !cc.Jet.Viscous || cc.Euler {
		t.Fatalf("physics not expanded: jet=%+v euler=%v", cc.Jet, cc.Euler)
	}
	if cc.Balance == "" {
		t.Fatal("balance not defaulted")
	}

	// Legacy Mode spelling and version-pinned names converge.
	m := Config{Mode: MessagePassing, Version: 7, Procs: 2, Nx: 64, Nr: 24, Steps: 10}
	cm, err := m.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	n := Config{Backend: "mp:v7", Procs: 2, Nx: 64, Nr: 24, Steps: 10}
	cn, err := n.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Backend != cn.Backend || cm.Version != cn.Version || cm.Mode != cn.Mode {
		t.Fatalf("mode and pinned-name spellings diverge: %+v vs %+v", cm, cn)
	}

	// Explicit version folds onto the registered alias name.
	v := Config{Backend: "mp2d", Version: 6, Procs: 4, Nx: 64, Nr: 24, Steps: 10}
	cv, err := v.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cv.Backend != "mp2d:v6" {
		t.Fatalf("mp2d + Version 6 canonicalized to %q", cv.Backend)
	}

	// HaloDepth 1 is the fresh policy; StopTol implies a cadence.
	h := Config{Backend: "mp:v5", Procs: 2, HaloDepth: 1, StopTol: 1e-4, Nx: 64, Nr: 24, Steps: 10}
	ch, err := h.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if ch.HaloDepth != 0 || !ch.FreshHalos {
		t.Fatalf("HaloDepth 1 not folded: %+v", ch)
	}
	if ch.ReduceEvery != 1 {
		t.Fatalf("StopTol cadence not defaulted: %d", ch.ReduceEvery)
	}

	// Canonicalization must be idempotent.
	again, err := ch.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if again.Backend != ch.Backend || again.FreshHalos != ch.FreshHalos || *again.Jet != *ch.Jet {
		t.Fatalf("not idempotent: %+v vs %+v", again, ch)
	}
}

// TestCanonicalParareal pins the parallel-in-time normalizations the
// service cache keys on: a spatial config spelled with TimeSlices 1 and
// stray parareal knobs canonicalizes — and therefore config-hashes —
// identically to the plain spatial spelling, a spatial backend name
// with TimeSlices > 1 moves onto the parareal backend as its fine
// propagator, and the contradictions NewRun rejects are errors here
// too.
func TestCanonicalParareal(t *testing.T) {
	plain, err := small().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	spelled := small()
	spelled.TimeSlices = 1
	spelled.PararealIters = 3
	spelled.CoarseFactor = 4
	spelled.DefectTol = 1e-3
	spelled.FineBackend = "mp:v5"
	cs, err := spelled.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if *cs.Jet != *plain.Jet {
		t.Fatalf("physics diverged: %+v vs %+v", cs.Jet, plain.Jet)
	}
	cs.Jet, plain.Jet = nil, nil
	if cs != plain {
		t.Fatalf("TimeSlices 1 spelling not cleared to the spatial config:\n  %+v\nvs\n  %+v", cs, plain)
	}

	// A spatial name with slices becomes the parareal backend, the name
	// moving onto the fine propagator (version folding included), and
	// the default Lagged policy folds to Fresh — the coordinator's
	// restart-transparency promotion.
	p := small()
	p.Backend = "mp"
	p.Version = 5
	p.Procs = 2
	p.TimeSlices = 4
	cp, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Backend != "parareal" || cp.FineBackend != "mp:v5" || cp.TimeSlices != 4 {
		t.Fatalf("parareal rewrite: %+v", cp)
	}
	if !cp.FreshHalos {
		t.Fatalf("Lagged not folded to Fresh under parareal: %+v", cp)
	}
	cp2, err := cp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Backend != cp.Backend || cp2.FineBackend != cp.FineBackend {
		t.Fatalf("parareal canonicalization not idempotent: %+v vs %+v", cp2, cp)
	}

	// An explicit FineBackend wins over the default serial resolution
	// of an empty Backend — the fine propagator and its width survive —
	// while contradicting a non-serial spatial name is an error.
	f := small()
	f.TimeSlices = 2
	f.FineBackend = "mp2d"
	f.Procs = 2
	cf, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cf.Backend != "parareal" || cf.FineBackend != "mp2d" || cf.Procs != 2 {
		t.Fatalf("explicit fine propagator clobbered by the serial default: %+v", cf)
	}
	bad := small()
	bad.Backend = "mp2d"
	bad.TimeSlices = 2
	bad.FineBackend = "hybrid"
	if _, err := bad.Canonical(); err == nil {
		t.Fatal("contradictory spatial/fine backend pair accepted")
	}

	// The contradictions NewRun rejects are Canonical errors too.
	bad = small()
	bad.Backend = "parareal"
	if _, err := bad.Canonical(); err == nil {
		t.Fatal("parareal backend without TimeSlices accepted")
	}
	bad = small()
	bad.TimeSlices = 4
	bad.StopTol = 1e-4
	if _, err := bad.Canonical(); err == nil {
		t.Fatal("parareal with convergence control accepted")
	}
	bad = small()
	bad.StopTol = 1e-4
	bad.SteadyTol = 1e-4
	if _, err := bad.Canonical(); err == nil {
		t.Fatal("StopTol with SteadyTol accepted")
	}
}
