// Package registry is the mutex-guarded name→value table behind the
// backend and scenario registries. Registration is init-time wiring in
// a one-shot CLI, but a long-running serving process resolves names
// from many goroutines at once (and tests register fixtures at
// runtime), so every operation takes the lock: bare map reads beside a
// concurrent Register are a data race even when the map "never changes
// after init".
package registry

import (
	"sort"
	"sync"
)

// Registry is a concurrency-safe name→value table. The zero value is
// not usable; construct with New.
type Registry[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// New returns an empty registry.
func New[T any]() *Registry[T] {
	return &Registry[T]{m: map[string]T{}}
}

// Add stores v under name and reports whether it was added; false
// means the name was already taken (the caller decides whether a
// duplicate is a panic, as in init-time wiring, or an error).
func (r *Registry[T]) Add(name string, v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return false
	}
	r.m[name] = v
	return true
}

// Get looks name up.
func (r *Registry[T]) Get(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.m[name]
	return v, ok
}

// Names returns the registered names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
