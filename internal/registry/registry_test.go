package registry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestAddGetNames(t *testing.T) {
	r := New[int]()
	if !r.Add("b", 2) || !r.Add("a", 1) {
		t.Fatal("fresh names refused")
	}
	if r.Add("a", 3) {
		t.Fatal("duplicate accepted")
	}
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if _, ok := r.Get("nonesuch"); ok {
		t.Fatal("unknown name resolved")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v", got)
	}
}

// TestConcurrentRegisterResolve is the -race test of the serving-process
// access pattern: registrations and lookups from many goroutines at
// once. Correctness beyond race-cleanliness: every Add of a unique name
// succeeds and is resolvable afterwards.
func TestConcurrentRegisterResolve(t *testing.T) {
	r := New[int]()
	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("g%d-%d", g, i)
				if !r.Add(name, g*perG+i) {
					t.Errorf("unique name %q refused", name)
				}
				if _, ok := r.Get(name); !ok {
					t.Errorf("just-registered %q not resolvable", name)
				}
				r.Get("g0-0")
				if len(r.Names()) == 0 {
					t.Error("Names() empty during registration")
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Names()); got != goroutines*perG {
		t.Fatalf("%d names registered, want %d", got, goroutines*perG)
	}
}
