// Concurrent-runs parity: the multi-tenant guarantee that runs
// executing side by side in one process are bitwise-identical to the
// same runs executed solo. This is the service-layer analogue of the
// backend parity sweep — exercised here across mixed scenarios and
// backends, and wired into the CI race job.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// parityMix is the workload: every scenario, a spread of backends, all
// under exact halo policies so bitwise identity is the contract, not a
// coincidence.
func parityMix() []core.Config {
	return []core.Config{
		{Scenario: "jet", Backend: "serial", Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "shm", Procs: 3, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "mp:v5", Procs: 2, FreshHalos: true, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "mp:v7", Procs: 4, FreshHalos: true, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "mp2d", Px: 2, Pr: 2, Procs: 4, FreshHalos: true, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "hybrid", Procs: 2, Workers: 2, FreshHalos: true, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "jet", Backend: "mp:v5", Procs: 2, HaloDepth: 2, Nx: 64, Nr: 24, Steps: 8},
		{Scenario: "cavity", Backend: "serial", Nx: 33, Nr: 32, Steps: 8},
		{Scenario: "cavity", Backend: "mp:v6", Procs: 2, FreshHalos: true, Nx: 33, Nr: 32, Steps: 8},
		{Scenario: "channel", Backend: "serial", Nx: 64, Nr: 16, Steps: 8},
		{Scenario: "channel", Backend: "mp2d:v6", Px: 2, Pr: 2, Procs: 4, FreshHalos: true, Nx: 64, Nr: 16, Steps: 8},
		{Scenario: "channel", Backend: "shm", Procs: 2, Nx: 64, Nr: 16, Steps: 8},
	}
}

// TestConcurrentRunsParity executes the mixed workload with N
// goroutines per config, all in flight at once, and requires every
// concurrent result to match its solo reference bit for bit (run under
// -race in CI).
func TestConcurrentRunsParity(t *testing.T) {
	configs := parityMix()
	solo := make([]string, len(configs))
	for i, c := range configs {
		run, err := core.NewRun(c)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		res, err := run.Execute()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		solo[i] = serve.MomentumChecksum(res.Momentum)
	}

	const repeats = 3 // N concurrent executions of every config
	var wg sync.WaitGroup
	errs := make(chan error, len(configs)*repeats)
	for i, c := range configs {
		for r := 0; r < repeats; r++ {
			wg.Add(1)
			go func(i int, c core.Config) {
				defer wg.Done()
				run, err := core.NewRun(c)
				if err != nil {
					errs <- fmt.Errorf("config %d: %v", i, err)
					return
				}
				defer run.Close()
				res, err := run.Execute()
				if err != nil {
					errs <- fmt.Errorf("config %d: %v", i, err)
					return
				}
				if sum := serve.MomentumChecksum(res.Momentum); sum != solo[i] {
					errs <- fmt.Errorf("config %d (%s/%s): concurrent run diverged from solo: %s vs %s",
						i, c.Scenario, c.Backend, sum, solo[i])
				}
			}(i, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
