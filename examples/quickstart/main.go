// Quickstart: build a small excited jet, advance it 200 steps with the
// serial solver, and print the conserved-quantity diagnostics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	run, err := core.NewRun(core.Config{
		Nx:    100, // 100x40 grid over 50x5 jet radii
		Nr:    40,
		Steps: 200,
		Mode:  core.Serial,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advanced %d steps of the excited Mach-1.5 jet in %s (dt = %.4g)\n",
		res.Steps, res.Elapsed.Round(1e6), res.Dt)
	fmt.Printf("mass integral:   %.6f\n", res.Diag.Mass)
	fmt.Printf("energy integral: %.6f\n", res.Diag.Energy)
	fmt.Printf("max |v| (instability wave amplitude): %.3g\n", res.Diag.MaxV)
	fmt.Println("\nThe inflow excitation (eps = 1e-4 at Strouhal 1/8) seeds a")
	fmt.Println("shear-layer instability wave that convects and amplifies —")
	fmt.Println("run examples/jetnoise for the Figure 1 flow field.")
}
