// Platformcompare reproduces the four-platform comparison (the paper's
// Figures 9-10 scenario): Cray Y-MP, IBM SP, Cray T3D, and the LACE
// cluster on both ALLNODE switches, for Navier-Stokes and Euler — then
// replays the same comparison for real on this host, running the
// identical workload on every execution backend in the registry.
//
//	go run ./examples/platformcompare
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
)

func main() {
	for _, viscous := range []bool{true, false} {
		name := "Navier-Stokes"
		figure := "Figure 9"
		if !viscous {
			name = "Euler"
			figure = "Figure 10"
		}
		ss, err := study.FigPlatforms(viscous)
		if err != nil {
			log.Fatal(err)
		}
		t := report.SeriesTable(
			fmt.Sprintf("%s execution time (s) across platforms (cf. paper %s)", name, figure),
			"Procs", ss)
		t.Render(os.Stdout)
		fmt.Println()
		report.LogChart(os.Stdout, name+" [log scale]", ss, 14)
		fmt.Println()
	}

	ss, err := study.FigPlatforms(true)
	if err != nil {
		log.Fatal(err)
	}
	var t3d, allnodeS stats.Series
	for _, s := range ss {
		switch s.Name {
		case "Cray T3D":
			t3d = s
		case "LACE/560 ALLNODE-S":
			allnodeS = s
		}
	}
	cross := stats.Crossover(t3d, allnodeS)
	fmt.Printf("The T3D's fast torus overtakes the ALLNODE-S cluster at P=%.0f\n", cross)
	fmt.Println("(the paper places this crossover beyond 8 processors), while its")
	fmt.Println("8 KB direct-mapped cache keeps it behind ALLNODE-F throughout —")
	fmt.Println("the paper's central single-processor-performance lesson.")

	// The same comparison for real: every backend in the registry runs
	// the identical workload on this host. With Fresh halos the physics
	// is bitwise-identical across backends, so only the time differs —
	// the paper's variety-of-platforms premise on one machine.
	fmt.Println("\nMeasured on this host (same workload, every registered backend):")
	const nx, nr, steps, procs = 96, 32, 40, 4
	// The registry sweep covers every named backend (mp2d:v6 included);
	// the extra row exercises the registry-level version option — the
	// overlapped (Version 6) rank layer under the hybrid pool — which
	// has no dedicated name of its own.
	type row struct {
		label string
		cfg   core.Config
	}
	var rows []row
	for _, name := range backend.Names() {
		// Px/Pr pin the mp2d rank grid to 2x2 so the radial exchange
		// path is exercised (its surface-minimizing default for this
		// wide domain is the axial-only 4x1); other backends ignore it.
		cfg := core.Config{
			Nx: nx, Nr: nr, Steps: steps,
			Backend: name, Procs: procs, Px: 2, Pr: 2, FreshHalos: true,
		}
		if name == "parareal" {
			// The time axis: four slices over the 2x2 mp2d fine
			// propagator, the completed correction sweep keeping the
			// row bitwise with the spatial backends.
			cfg.TimeSlices = 4
			cfg.PararealIters = 4
			cfg.FineBackend = "mp2d"
		}
		rows = append(rows, row{name, cfg})
	}
	rows = append(rows, row{"hybrid -version 6", core.Config{
		Nx: nx, Nr: nr, Steps: steps,
		Backend: "hybrid", Procs: procs, Version: 6, FreshHalos: true,
	}})
	var refMass float64
	for i, row := range rows {
		run, err := core.NewRun(row.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := run.Execute()
		if err != nil {
			log.Fatal(err)
		}
		// The fields are bitwise-identical across backends; the mass
		// integral may differ in the last ulp because slabs accumulate
		// their partial sums in a different order than the serial sweep.
		agree := " "
		if i == 0 {
			refMass = res.Diag.Mass
		} else if math.Abs(res.Diag.Mass-refMass) > 1e-9*math.Abs(refMass) {
			agree = "!"
		}
		fmt.Printf("  %-17s %10s  mass=%.9f %s\n", row.label, res.Elapsed.Round(1e5), res.Diag.Mass, agree)
	}
}
