// Platformcompare reproduces the four-platform comparison (the paper's
// Figures 9-10 scenario): Cray Y-MP, IBM SP, Cray T3D, and the LACE
// cluster on both ALLNODE switches, for Navier-Stokes and Euler.
//
//	go run ./examples/platformcompare
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
)

func main() {
	for _, viscous := range []bool{true, false} {
		name := "Navier-Stokes"
		figure := "Figure 9"
		if !viscous {
			name = "Euler"
			figure = "Figure 10"
		}
		ss, err := study.FigPlatforms(viscous)
		if err != nil {
			log.Fatal(err)
		}
		t := report.SeriesTable(
			fmt.Sprintf("%s execution time (s) across platforms (cf. paper %s)", name, figure),
			"Procs", ss)
		t.Render(os.Stdout)
		fmt.Println()
		report.LogChart(os.Stdout, name+" [log scale]", ss, 14)
		fmt.Println()
	}

	ss, err := study.FigPlatforms(true)
	if err != nil {
		log.Fatal(err)
	}
	var t3d, allnodeS stats.Series
	for _, s := range ss {
		switch s.Name {
		case "Cray T3D":
			t3d = s
		case "LACE/560 ALLNODE-S":
			allnodeS = s
		}
	}
	cross := stats.Crossover(t3d, allnodeS)
	fmt.Printf("The T3D's fast torus overtakes the ALLNODE-S cluster at P=%.0f\n", cross)
	fmt.Println("(the paper places this crossover beyond 8 processors), while its")
	fmt.Println("8 KB direct-mapped cache keeps it behind ALLNODE-F throughout —")
	fmt.Println("the paper's central single-processor-performance lesson.")
}
