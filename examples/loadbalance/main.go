// Loadbalance reproduces the paper's Figure 13 scenario twice over:
// the per-processor busy times of the co-simulated IBM SP at 16
// processors, and a real measurement from the goroutine-parallel solver
// on the host (FLOP-balanced axial decomposition).
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/study"
)

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	return strings.Repeat("#", n)
}

func main() {
	// Simulated SP, the paper's configuration.
	busy, err := study.Fig13()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Simulated IBM SP, Navier-Stokes, 16 processors (cf. paper Figure 13):")
	max := stats.Max(busy)
	for i, b := range busy {
		fmt.Printf("  proc %2d  %7.1f s  %s\n", i, b, bar(b, max, 40))
	}
	fmt.Printf("  spread (max-min)/mean = %.2f%% — almost perfect load balance\n\n", stats.RelSpread(busy)*100)

	// Real run on the host: per-rank arithmetic work (exact FLOP counts).
	procs := 8
	if runtime.NumCPU() < 4 {
		procs = 4
	}
	run, err := core.NewRun(core.Config{
		Nx: 128, Nr: 48, Steps: 50,
		Mode: core.MessagePassing, Procs: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Real goroutine run on this host (%d ranks, %d steps):\n", procs, res.Steps)
	flops := make([]float64, len(res.PerRank))
	for i, r := range res.PerRank {
		flops[i] = r.Flops
	}
	maxF := stats.Max(flops)
	for _, r := range res.PerRank {
		fmt.Printf("  rank %2d  %10.3g flops  busy %-10s  %s\n",
			r.Rank, r.Flops, r.Busy.Round(1e6), bar(r.Flops, maxF, 40))
	}
	fmt.Printf("  flop spread (max-min)/mean = %.2f%%\n", stats.RelSpread(flops)*100)
}
