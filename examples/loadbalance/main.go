// Loadbalance reproduces the paper's Figure 13 scenario three times
// over: the per-processor busy times of the co-simulated IBM SP at 16
// processors, the same co-simulation on a skewed per-column cost
// profile before and after cost-weighted decomposition, and a real
// measurement from the goroutine-parallel solver on the host.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/trace"
)

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	return strings.Repeat("#", n)
}

func main() {
	// Simulated SP, the paper's configuration.
	busy, err := study.Fig13()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Simulated IBM SP, Navier-Stokes, 16 processors (cf. paper Figure 13):")
	max := stats.Max(busy)
	for i, b := range busy {
		fmt.Printf("  proc %2d  %7.1f s  %s\n", i, b, bar(b, max, 40))
	}
	d16, err := decomp.Axial(trace.PaperNS().Nx, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  spread (max-min)/mean = %.2f%% — almost perfect load balance\n", stats.RelSpread(busy)*100)
	fmt.Printf("  point imbalance %.2f%%, cost imbalance (uniform profile) %.2f%% — the\n",
		d16.Imbalance()*100, d16.CostImbalance(nil)*100)
	fmt.Println("  two metrics agree only because the paper's per-point cost is flat")
	fmt.Println()

	// The same co-simulation on a skewed profile: balanced point counts
	// stop balancing busy times, and the cost-weighted decomposition
	// (decomp.WeightedAxial over the identical profile) restores it.
	uniform, weighted, err := study.Fig13Skewed(16)
	if err != nil {
		log.Fatal(err)
	}
	skew := trace.RampCost(trace.PaperNS().Nx, study.Fig13SkewRatio)
	dw, err := decomp.WeightedAxial(trace.PaperNS().Nx, 16, skew)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Same SP with a %gx per-column cost ramp (-balance in cmd/jetsim):\n", study.Fig13SkewRatio)
	max = stats.Max(uniform)
	for i := range uniform {
		fmt.Printf("  proc %2d  uniform %7.1f s %-22s weighted %7.1f s %s\n",
			i, uniform[i], bar(uniform[i], max, 20), weighted[i], bar(weighted[i], max, 20))
	}
	fmt.Printf("  busy-time spread: %.1f%% uniform -> %.1f%% weighted\n",
		stats.RelSpread(uniform)*100, stats.RelSpread(weighted)*100)
	fmt.Printf("  weighted split: point imbalance %.1f%% (deliberately uneven widths),\n", dw.Imbalance()*100)
	fmt.Printf("  cost imbalance %.1f%% (what gates the step)\n\n", dw.CostImbalance(skew)*100)

	// Real run on the host: per-rank arithmetic work (exact FLOP
	// counts) under the analytic flops balance mode.
	procs := 8
	if runtime.NumCPU() < 4 {
		procs = 4
	}
	run, err := core.NewRun(core.Config{
		Nx: 128, Nr: 48, Steps: 50,
		Mode: core.MessagePassing, Procs: procs,
		Balance: "flops",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := run.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Real goroutine run on this host (%d ranks, %d steps, -balance flops):\n", procs, res.Steps)
	flops := make([]float64, len(res.PerRank))
	for i, r := range res.PerRank {
		flops[i] = r.Flops
	}
	maxF := stats.Max(flops)
	for _, r := range res.PerRank {
		fmt.Printf("  rank %2d  %10.3g flops  busy %-10s  %s\n",
			r.Rank, r.Flops, r.Busy.Round(1e6), bar(r.Flops, maxF, 40))
	}
	fmt.Printf("  flop spread (max-min)/mean = %.2f%%\n", stats.RelSpread(flops)*100)
}
