// Networkstudy reproduces the LACE network comparison (the paper's
// Figures 3-8 scenario): the same application co-simulated over
// Ethernet, FDDI, ATM, and both ALLNODE switches, with the three
// communication strategies.
//
//	go run ./examples/networkstudy
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/trace"
)

func main() {
	ch := trace.PaperNS()
	nets := []machine.Platform{
		machine.LACE560Ethernet, machine.LACE560FDDI, machine.LACE560AllnodeS,
		machine.LACE590ATM, machine.LACE590AllnodeF,
	}

	var total, wait []stats.Series
	for _, p := range nets {
		ts := stats.Series{Name: p.Name}
		ws := stats.Series{Name: p.Name}
		for _, np := range study.ProcCounts(p.MaxProcs) {
			o, err := p.Simulate(ch, np, 5)
			if err != nil {
				log.Fatal(err)
			}
			ts.Add(float64(np), o.Seconds)
			ws.Add(float64(np), o.WaitSeconds)
		}
		total = append(total, ts)
		wait = append(wait, ws)
	}

	t := report.SeriesTable("Navier-Stokes on the LACE networks: execution time (s)", "Procs", total)
	t.Render(os.Stdout)
	fmt.Println()
	report.LogChart(os.Stdout, "Execution time [log scale] (cf. paper Figure 3)", total, 14)

	fmt.Println()
	w := report.SeriesTable("Non-overlapped communication time (s) (cf. paper Figure 5)", "Procs", wait)
	w.Render(os.Stdout)

	// The Ethernet knee: the paper's back-of-envelope argument is that
	// beyond ~8 processors the per-second communication demand exceeds
	// the 10 Mb/s medium.
	eth := total[0]
	kneeX, kneeY := eth.MinY()
	fmt.Printf("\nEthernet minimum at P=%.0f (%.0f s): beyond this the medium saturates,\n", kneeX, kneeY)
	fmt.Println("matching the paper's Section 7.1 analysis.")

	fmt.Println("\nCommunication strategies at P=12 (cf. paper Figures 7-8):")
	vt := report.Table{Headers: []string{"Strategy", "Ethernet (s)", "ALLNODE-S (s)"}}
	for _, v := range []int{5, 6, 7} {
		e, err := machine.LACE560Ethernet.Simulate(ch, 12, v)
		if err != nil {
			log.Fatal(err)
		}
		a, err := machine.LACE560AllnodeS.Simulate(ch, 12, v)
		if err != nil {
			log.Fatal(err)
		}
		vt.AddRow(fmt.Sprintf("Version %d", v), fmt.Sprintf("%.0f", e.Seconds), fmt.Sprintf("%.0f", a.Seconds))
	}
	vt.Render(os.Stdout)
	fmt.Println("De-bursting (V7) helps the shared medium and hurts the switch.")
}
