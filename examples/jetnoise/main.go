// Jetnoise reproduces the paper's Figure 1 scenario: the time-accurate
// near field of an excited Mach 1.5 axisymmetric jet, rendered as an
// axial-momentum contour map. The paper ran 16,000 steps on a 250x100
// grid; this example defaults to a reduced configuration (increase
// -steps/-nx/-nr for full fidelity).
//
//	go run ./examples/jetnoise
//	go run ./examples/jetnoise -nx 250 -nr 100 -steps 16000 -pgm fig1.pgm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/vis"
)

func main() {
	nx := flag.Int("nx", 125, "axial nodes (paper: 250)")
	nr := flag.Int("nr", 50, "radial nodes (paper: 100)")
	steps := flag.Int("steps", 2000, "time steps (paper: 16000)")
	pgm := flag.String("pgm", "", "also write a PGM image")
	flag.Parse()

	run, err := core.NewRun(core.Config{Nx: *nx, Nr: *nr, Steps: *steps, Mode: core.Serial})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running the excited jet on %dx%d for %d steps...\n", *nx, *nr, *steps)
	res, err := run.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s; max |v| = %.3g\n\n", res.Elapsed.Round(1e6), res.Diag.MaxV)
	vis.ASCIIContour(os.Stdout, "Axial momentum rho*u (cf. paper Figure 1)", res.Momentum, 110, 26)
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := vis.WritePGM(f, res.Momentum); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *pgm)
	}
}
