// Command jetsim runs the excited axisymmetric jet of the paper on a
// named execution backend and prints diagnostics, optionally writing
// the axial momentum field (Figure 1's quantity) as PGM or ASCII
// contours.
//
// Examples:
//
//	jetsim -nx 125 -nr 50 -steps 500
//	jetsim -backend mp:v7 -procs 8 -steps 200
//	jetsim -backend shm -procs 4 -euler
//	jetsim -backend hybrid -procs 4 -workers 2 -fresh
//	jetsim -backend mp2d -procs 8 -steps 200       # auto near-square rank grid
//	jetsim -backend mp2d -px 4 -pr 2 -steps 200    # explicit 4x2 rank grid
//	jetsim -backend mp2d:v6 -procs 8 -steps 200    # overlapped 2-D exchanges
//	jetsim -backend mp2d -version 6 -procs 8       # same, via the version flag
//	jetsim -backend hybrid -version 6 -procs 4     # overlapped ranks x DOALL
//	jetsim -backend mp:v5 -procs 8 -balance flops  # cost-weighted decomposition
//	jetsim -backend mp2d -procs 8 -balance measured # warm-up-measured weights
//	jetsim -tol 1e-4 -steps 5000                   # stop when converged
//	jetsim -backend mp2d -procs 8 -tol 1e-4 -reduce-every 10  # amortized collective
//	jetsim -backend mp:v5 -procs 4 -halo-depth 2   # wide halos: exchange every 2nd step
//	jetsim -backend mp:v5 -procs 8 -tol 1e-4 -reduce-group 4  # hierarchical allreduce
//	jetsim -scenario cavity -nx 49 -nr 48 -steps 2000  # lid-driven cavity
//	jetsim -scenario cavity -steady-tol 1e-6 -steps 5000  # stop on velocity steadiness
//	jetsim -scenario channel -backend mp2d -procs 4    # wall-bounded pipe flow
//	jetsim -time-slices 4 -steps 200                   # parareal over 4 time slices
//	jetsim -backend mp:v5 -procs 2 -time-slices 4      # 4 slices x 2 ranks each
//	jetsim -time-slices 4 -parareal-iters 4            # exact schedule (bitwise = fine run)
//	jetsim -time-slices 4 -coarse-factor 1 -defect-tol 1e-8  # exact coarse sweep
//	jetsim -contour -pgm out/jet.pgm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jetsim: ")
	var (
		nx        = flag.Int("nx", 125, "axial grid nodes")
		nr        = flag.Int("nr", 50, "radial grid nodes")
		steps     = flag.Int("steps", 500, "composite time steps")
		euler     = flag.Bool("euler", false, "solve the Euler equations instead of Navier-Stokes")
		name      = flag.String("backend", "serial", "execution backend: "+strings.Join(backend.Names(), ", "))
		scen      = flag.String("scenario", "", "flow scenario: "+strings.Join(scenario.Names(), ", ")+" (empty = jet; cavity/channel pin their own physics, so -euler applies to the jet only)")
		mode      = flag.String("mode", "", "deprecated alias for -backend: serial, mp, shm")
		procs     = flag.Int("procs", 4, "ranks (mp, mp2d, hybrid) or workers (shm)")
		workers   = flag.Int("workers", 0, "per-rank DOALL workers (hybrid; 0 = host default)")
		px        = flag.Int("px", 0, "axial rank-grid width (mp2d; 0 = auto near-square)")
		pr        = flag.Int("pr", 0, "radial rank-grid height (mp2d; 0 = auto near-square)")
		version   = flag.Int("version", 0, "communication strategy 5, 6, or 7 (0 = backend default); contradicting a version-pinned backend name is an error")
		balance   = flag.String("balance", "", "decomposition cost model: uniform, flops, or measured (distributed backends; empty = uniform)")
		tol       = flag.Float64("tol", 0, "stop tolerance on the global L2 residual (0 = march -steps fixed)")
		reduce    = flag.Int("reduce-every", 0, "residual-reduction cadence in steps (0 = every step when -tol is set)")
		fresh     = flag.Bool("fresh", false, "exact halo policy (bitwise serial equivalence)")
		haloDepth = flag.Int("halo-depth", 0, "communication-avoiding halo depth k: exchange every k-th step over a redundant ghost shell, bitwise-identical to serial (distributed backends; 0 = per-stage policy, 1 = fresh)")
		reduceGrp = flag.Int("reduce-group", 0, "hierarchical allreduce node size: intra-node combine, leaders-only cross-node plan (distributed backends; 0 or 1 = flat)")
		steadyTol = flag.Float64("steady-tol", 0, "stop tolerance on velocity steadiness max(|du|,|dv|)/dt — the closed-flow criterion (e.g. cavity); mutually exclusive with -tol (0 = march -steps fixed)")
		slices    = flag.Int("time-slices", 0, "parareal time slices K: [0,-steps] splits into K slices propagated in parallel over time, -backend becoming the fine propagator of each (0 or 1 = pure spatial run)")
		pIters    = flag.Int("parareal-iters", 0, "parareal correction iterations: 0 = adaptive on -defect-tol capped at K, K = exact schedule, bitwise equal to the fine run end to end")
		coarseF   = flag.Int("coarse-factor", 0, "parareal coarse-propagator grid/time-step coarsening (0 = default 2; 1 = the fine operator itself, every sweep exact)")
		defectTol = flag.Float64("defect-tol", 0, "adaptive parareal stopping tolerance on the slice-boundary L2 defect between successive iterates (0 = default 1e-6)")
		fine      = flag.String("fine", "", "parareal fine-propagator backend (empty = the spatial -backend, or serial)")
		contour   = flag.Bool("contour", false, "print an ASCII contour of axial momentum")
		pgm       = flag.String("pgm", "", "write axial momentum as a PGM image to this path")
	)
	flag.Parse()

	explicitBackend := false
	explicitProcs := false
	explicitHalo := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "backend":
			explicitBackend = true
		case "procs":
			explicitProcs = true
		case "reduce-every":
			if *reduce <= 0 {
				log.Fatalf("-reduce-every must be a positive cadence in steps, got %d", *reduce)
			}
		case "halo-depth":
			explicitHalo = true
		case "reduce-group":
			if *reduceGrp < 1 {
				log.Fatalf("-reduce-group must be >= 1 (1 = flat allreduce), got %d", *reduceGrp)
			}
		}
	})
	if *mode != "" && explicitBackend {
		log.Fatalf("-mode %q conflicts with -backend %q; -mode is a deprecated alias, drop it", *mode, *name)
	}
	if err := cliutil.ValidateHaloFlags(*fresh, *haloDepth, explicitHalo); err != nil {
		log.Fatal(err)
	}
	// -version feeds the registry options with every backend, not only
	// the deprecated -mode mp alias: "-backend mp2d -version 6" selects
	// the overlapped strategy, and a contradiction like "-backend mp:v5
	// -version 6" is rejected by the registry instead of ignored.
	cfg := core.Config{
		Scenario: *scen,
		Euler:    *euler, Nx: *nx, Nr: *nr, Steps: *steps,
		Backend: *name, Procs: *procs, Workers: *workers, Px: *px, Pr: *pr,
		Version:     *version,
		Balance:     *balance,
		FreshHalos:  *fresh,
		HaloDepth:   *haloDepth,
		ReduceGroup: *reduceGrp,
		StopTol:     *tol,
		ReduceEvery: *reduce,
		SteadyTol:   *steadyTol,

		TimeSlices:    *slices,
		PararealIters: *pIters,
		CoarseFactor:  *coarseF,
		DefectTol:     *defectTol,
		FineBackend:   *fine,
	}
	// The deprecated -mode alias maps onto the legacy Mode selector,
	// whose resolution (including "mp" + -version → mp:vN) lives in one
	// place: core.Config.backendName.
	switch *mode {
	case "":
	case "serial":
		cfg.Backend, cfg.Mode = "", core.Serial
	case "mp":
		cfg.Backend, cfg.Mode = "", core.MessagePassing
	case "shm":
		cfg.Backend, cfg.Mode = "", core.SharedMemory
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if *px > 0 && *pr > 0 && !explicitProcs {
		// An explicit rank-grid shape defines the width; only an
		// explicitly contradicting -procs should error downstream.
		cfg.Procs = 0
	}
	if (cfg.Backend == "serial" || (cfg.Backend == "" && cfg.Mode == core.Serial)) && cfg.FineBackend == "" {
		// With -fine set the default-serial spelling names only the
		// coordinator; the fine propagator keeps its -procs width.
		cfg.Procs = 1
	}

	run, err := core.NewRun(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()
	res, err := run.Execute()
	if err != nil {
		log.Fatal(err)
	}

	shape := ""
	if res.Px > 0 {
		shape = fmt.Sprintf(" ranks=%dx%d", res.Px, res.Pr)
	}
	fmt.Printf("scenario=%s backend=%s procs=%d%s grid=%dx%d steps=%d dt=%.4g elapsed=%s\n",
		res.Scenario, res.Backend, res.Procs, shape, *nx, *nr, res.Steps, res.Dt, res.Elapsed.Round(1e6))
	d := res.Diag
	fmt.Printf("mass=%.6f energy=%.6f max|v|=%.4g minRho=%.4g minP=%.4g\n",
		d.Mass, d.Energy, d.MaxV, d.MinRho, d.MinP)
	if res.TimeSlices > 0 {
		// A parareal run: Residuals carry (iteration, defect) pairs and
		// Converged reports an adaptive defect-tolerance stop.
		state := "exact schedule"
		if res.Converged {
			state = "converged on defect tolerance"
		} else if res.Iterations < res.TimeSlices {
			state = "iteration cap"
		}
		fmt.Printf("parareal: %d time slices, %d iterations, final defect %.4g (%s)\n",
			res.TimeSlices, res.Iterations, res.Defect, state)
	} else if n := len(res.Residuals); n > 0 {
		last := res.Residuals[n-1]
		crit, lim := "residual", *tol
		if *steadyTol > 0 {
			crit, lim = "steadiness", *steadyTol
		}
		if res.Converged {
			fmt.Printf("converged at step %d: %s %.4g <= tol %.4g\n", res.Steps, crit, last.Residual, lim)
		} else {
			every := *reduce
			if every == 0 {
				every = 1 // the controller's default when only a tolerance is set
			}
			fmt.Printf("%s %.4g after %d steps (monitored every %d)\n", crit, last.Residual, res.Steps, every)
		}
	}
	if res.Comm.Startups > 0 {
		fmt.Printf("comm: %d startups, %.2f MB sent\n", res.Comm.Startups, float64(res.Comm.Bytes)/1e6)
		if saved := res.CommDir.Total().SavedStartups; saved > 0 {
			red := 0.0
			for _, rs := range res.PerRank {
				red += rs.RedundantFlops
			}
			fmt.Printf("  wide:   %8d startups saved for %.3g redundant flops\n", saved, red)
		}
		if dir := res.CommDir; dir.Radial.Startups > 0 || dir.Reduce.Startups > 0 {
			fmt.Printf("  axial:  %8d startups %8.2f MB\n", dir.Axial.Startups, float64(dir.Axial.Bytes)/1e6)
			fmt.Printf("  radial: %8d startups %8.2f MB\n", dir.Radial.Startups, float64(dir.Radial.Bytes)/1e6)
			fmt.Printf("  reduce: %8d startups %8.2f MB\n", dir.Reduce.Startups, float64(dir.Reduce.Bytes)/1e6)
		}
		for _, rs := range res.PerRank {
			fmt.Printf("  rank %2d: busy=%-10s wait=%-10s %8d startups %8.2f MB %12.3g flops\n",
				rs.Rank, rs.Busy.Round(1e6), rs.Wait.Round(1e6), rs.Comm.Startups, float64(rs.Comm.Bytes)/1e6, rs.Flops)
		}
	}
	if *contour {
		vis.ASCIIContour(os.Stdout, "axial momentum rho*u", res.Momentum, 100, 24)
	}
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := vis.WritePGM(f, res.Momentum); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *pgm)
	}
}
