// Command cachestudy reports the single-processor performance model:
// the paper's code versions 1-5 evaluated on each processor's cache
// geometry (Figure 2 and the Section 7.2 cache discussion), plus
// cache-geometry ablations.
//
// Examples:
//
//	cachestudy
//	cachestudy -ablate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachestudy: ")
	ablate := flag.Bool("ablate", false, "sweep cache geometries on the T3D node")
	euler := flag.Bool("euler", false, "Euler workload")
	flag.Parse()

	f := trace.PaperFlopsPerPoint(!*euler)
	chips := []cpu.Chip{cpu.RS560, cpu.RS590, cpu.RS370, cpu.AlphaT3D}

	t := report.Table{
		Title:   "Sustained MFLOPS by code version (trace-driven cache simulation)",
		Headers: []string{"Processor", "V1", "V2", "V3", "V4", "V5"},
	}
	for _, ch := range chips {
		row := []string{ch.Name}
		for _, v := range kernels.Versions() {
			p := ch.Evaluate(v, f)
			row = append(row, fmt.Sprintf("%.1f", p.EffMFLOPS))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	fmt.Printf("\nCray Y-MP vector model: %.0f MFLOPS sustained\n", cpu.YMP.EffMFLOPS())

	if *ablate {
		fmt.Println()
		a := report.Table{
			Title:   "Ablation: the T3D node with alternative data caches (Version 5)",
			Headers: []string{"Cache", "Miss ratio", "MFLOPS"},
		}
		geoms := []cache.Config{
			cache.T3D,
			{Name: "8 KB 4-way", SizeBytes: 8 << 10, LineBytes: 32, Ways: 4},
			{Name: "64 KB direct", SizeBytes: 64 << 10, LineBytes: 64, Ways: 1},
			{Name: "64 KB 4-way (560-like)", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4},
			{Name: "256 KB 4-way (590-like)", SizeBytes: 256 << 10, LineBytes: 128, Ways: 4},
		}
		v5 := kernels.V(5)
		for _, g := range geoms {
			chip := cpu.AlphaT3D
			chip.DCache = g
			p := chip.Evaluate(v5, f)
			tr := v5.SimulateSweep(g, 250, 100)
			a.AddRow(g.Name, fmt.Sprintf("%.3f", tr.MissRatio), fmt.Sprintf("%.1f", p.EffMFLOPS))
		}
		a.Render(os.Stdout)
		fmt.Println("\nThe paper: \"we attribute the T3D's poor performance to the small, direct-mapped cache.\"")
	}
}
