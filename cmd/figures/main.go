// Command figures regenerates every table and figure of the paper's
// evaluation into text reports (and a PGM for Figure 1), plus a
// verification pass over the paper's checkable claims.
//
// Examples:
//
//	figures -exp all -out out/
//	figures -exp fig9
//	figures -exp verify
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig1..fig13, verify, all")
		outDir  = flag.String("out", "", "also write each experiment to <out>/<exp>.txt")
		fig1nx  = flag.Int("fig1-nx", 125, "Figure 1 grid nx (paper: 250)")
		fig1nr  = flag.Int("fig1-nr", 50, "Figure 1 grid nr (paper: 100)")
		fig1stp = flag.Int("fig1-steps", 1000, "Figure 1 steps (paper: 16000)")
	)
	flag.Parse()

	runOne := func(name string, f func(w io.Writer) error) {
		var w io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			var err error
			file, err = os.Create(filepath.Join(*outDir, name+".txt"))
			if err != nil {
				log.Fatal(err)
			}
			w = io.MultiWriter(os.Stdout, file)
		}
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := f(w); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(w)
		if file != nil {
			file.Close()
		}
	}

	seriesExp := func(title string, get func() ([]stats.Series, error)) func(io.Writer) error {
		return func(w io.Writer) error {
			ss, err := get()
			if err != nil {
				return err
			}
			t := report.SeriesTable(title, "Procs", ss)
			t.Render(w)
			fmt.Fprintln(w)
			report.LogChart(w, title+" [log scale]", ss, 14)
			return nil
		}
	}

	experiments := []struct {
		name string
		run  func(io.Writer) error
	}{
		{"table1", func(w io.Writer) error {
			t, err := study.Table1Report()
			if err != nil {
				return err
			}
			t.Render(w)
			return nil
		}},
		{"table2", func(w io.Writer) error {
			t := study.Table2Report()
			t.Render(w)
			return nil
		}},
		{"fig1", func(w io.Writer) error {
			field, err := study.Fig1(*fig1nx, *fig1nr, *fig1stp)
			if err != nil {
				return err
			}
			vis.ASCIIContour(w, "Figure 1: axial momentum in an excited axisymmetric jet", field, 110, 26)
			if *outDir != "" {
				f, err := os.Create(filepath.Join(*outDir, "fig1.pgm"))
				if err != nil {
					return err
				}
				defer f.Close()
				return vis.WritePGM(f, field)
			}
			return nil
		}},
		{"fig2", func(w io.Writer) error {
			ss := study.Fig2()
			t := report.SeriesTable("Figure 2: single-processor execution time (s) by code version (RS6000/560)", "Version", ss)
			t.Render(w)
			return nil
		}},
		{"fig3", seriesExp("Figure 3: Navier-Stokes on LACE networks (s)", func() ([]stats.Series, error) { return study.FigLACE(true) })},
		{"fig4", seriesExp("Figure 4: Euler on LACE networks (s)", func() ([]stats.Series, error) { return study.FigLACE(false) })},
		{"fig5", seriesExp("Figure 5: components of execution time (Navier-Stokes; LACE)", func() ([]stats.Series, error) { return study.FigLACEComponents(true) })},
		{"fig6", seriesExp("Figure 6: components of execution time (Euler; LACE)", func() ([]stats.Series, error) { return study.FigLACEComponents(false) })},
		{"fig7", seriesExp("Figure 7: communication optimization (Navier-Stokes; LACE)", func() ([]stats.Series, error) { return study.FigCommVersions(true) })},
		{"fig8", seriesExp("Figure 8: communication optimization (Euler; LACE)", func() ([]stats.Series, error) { return study.FigCommVersions(false) })},
		{"fig9", seriesExp("Figure 9: Navier-Stokes on all platforms (s)", func() ([]stats.Series, error) { return study.FigPlatforms(true) })},
		{"fig10", seriesExp("Figure 10: Euler on all platforms (s)", func() ([]stats.Series, error) { return study.FigPlatforms(false) })},
		{"fig11", seriesExp("Figure 11: MPL vs PVMe (Navier-Stokes; IBM SP)", func() ([]stats.Series, error) { return study.FigLibraries(true) })},
		{"fig12", seriesExp("Figure 12: MPL vs PVMe (Euler; IBM SP)", func() ([]stats.Series, error) { return study.FigLibraries(false) })},
		{"fig13", func(w io.Writer) error {
			busy, err := study.Fig13()
			if err != nil {
				return err
			}
			t := report.Table{
				Title:   "Figure 13: processor busy times (Navier-Stokes; IBM SP; 16 procs)",
				Headers: []string{"Processor", "Busy time (s)"},
			}
			for i, b := range busy {
				t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.1f", b))
			}
			t.Render(w)
			fmt.Fprintf(w, "load imbalance (max-min)/mean = %.2f%%\n", stats.RelSpread(busy)*100)
			return nil
		}},
		{"verify", func(w io.Writer) error {
			pass := 0
			claims := study.Claims()
			for _, c := range claims {
				got, ok, err := c.Check()
				if err != nil {
					return fmt.Errorf("%s: %w", c.ID, err)
				}
				status := "PASS"
				if ok {
					pass++
				} else {
					status = "FAIL"
				}
				fmt.Fprintf(w, "[%s] %-22s %s\n       paper: %s\n       ours:  %s\n", status, c.ID, "", c.Statement, got)
			}
			fmt.Fprintf(w, "%d/%d claims reproduced\n", pass, len(claims))
			return nil
		}},
	}

	ran := false
	for _, e := range experiments {
		if *exp == "all" || *exp == e.name {
			runOne(e.name, e.run)
			ran = true
		}
	}
	if !ran {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
