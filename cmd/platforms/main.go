// Command platforms co-simulates the paper's platforms on the
// application workload and prints execution-time curves. With -backend
// it additionally measures the real workload on this host through the
// solver-backend registry, appending the measured curve to the
// simulated ones — the paper's same-computation-everywhere premise made
// literal.
//
// Examples:
//
//	platforms                      # all platforms, Navier-Stokes
//	platforms -euler -version 7    # Euler with de-burst messages
//	platforms -platform "Cray T3D" -procs 16
//	platforms -backend hybrid      # add a measured host curve
//	platforms -backend mp2d        # measured 2-D rank-grid curve
//	platforms -backend mp2d:v6     # measured overlapped rank-grid curve
//	platforms -backend hybrid -version 6   # overlap on the measured ranks too
//	platforms -backend mp:v5 -balance flops # cost-weighted host decomposition
//	platforms -reduce-every 10              # cost the convergence collective
//	platforms -backend mp2d -tol 1e-4 -reduce-every 10  # converged host run
//	platforms -halo-depth 2                 # price the communication-avoiding cadence
//	platforms -reduce-every 10 -reduce-group 4  # price the hierarchical collective
//	platforms -time-slices 4                # price the parareal parallel-in-time schedule
//	platforms -time-slices 4 -parareal-iters 2 -coarse-factor 4  # converged-early pricing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/trace"
)

func allPlatforms() []machine.Platform {
	return []machine.Platform{
		machine.LACE560Ethernet, machine.LACE560FDDI, machine.LACE560AllnodeS,
		machine.LACE590AllnodeF, machine.LACE590ATM,
		machine.SPMPL, machine.SPPVMe, machine.T3D, machine.YMP,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("platforms: ")
	var (
		euler     = flag.Bool("euler", false, "Euler workload instead of Navier-Stokes")
		version   = flag.Int("version", 0, "communication strategy: 5, 6, or 7 (0 = Version 5 for the co-simulation, backend default for the measured host run)")
		name      = flag.String("platform", "", "run a single platform by name")
		procs     = flag.Int("procs", 0, "run a single processor count (0 = sweep)")
		chart     = flag.Bool("chart", true, "draw log-scale ASCII chart")
		real      = flag.String("backend", "", "also measure a real host run through the backend registry: "+strings.Join(backend.Names(), ", "))
		scen      = flag.String("scenario", "", "flow scenario of the measured host run: "+strings.Join(scenario.Names(), ", ")+" (empty = jet; the co-simulation always replays the paper's jet traces)")
		balance   = flag.String("balance", "", "decomposition cost model of the measured host run: uniform, flops, or measured")
		tol       = flag.Float64("tol", 0, "stop tolerance of the measured host run (0 = fixed -steps)")
		reduce    = flag.Int("reduce-every", 0, "global-reduction cadence in steps: costs the collective on the co-simulated platforms and monitors the measured host run")
		fresh     = flag.Bool("fresh", false, "exact per-stage halo policy for the measured host run (bitwise serial equivalence); contradicts -halo-depth k > 1")
		haloDepth = flag.Int("halo-depth", 0, "communication-avoiding halo depth k: the co-simulated ranks exchange every k-th step over a redundant shell, and the measured host run uses the Wide(k) policy (0 = per-stage exchange)")
		reduceGrp = flag.Int("reduce-group", 0, "hierarchical allreduce node size: leaders-only cross-node plan on the co-simulated platforms and the measured host run (0 or 1 = flat)")
		slices    = flag.Int("time-slices", 0, "parareal time slices K: price the parallel-in-time schedule on the co-simulated platforms (procs splitting into K slice groups) and run it on the measured host (0 or 1 = pure spatial)")
		pIters    = flag.Int("parareal-iters", 0, "parareal correction iterations the schedule pays for (0 = the worst-case K)")
		coarseF   = flag.Int("coarse-factor", 0, "parareal coarse-propagator coarsening (0 = default 2)")
		nx        = flag.Int("nx", 125, "grid for the measured host run (with -backend)")
		nr        = flag.Int("nr", 50, "grid for the measured host run (with -backend)")
		steps     = flag.Int("steps", 100, "composite steps for the measured host run (with -backend)")
	)
	flag.Parse()

	explicitHalo := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "reduce-every":
			if *reduce <= 0 {
				log.Fatalf("-reduce-every must be a positive cadence in steps, got %d", *reduce)
			}
		case "halo-depth":
			explicitHalo = true
		case "reduce-group":
			if *reduceGrp < 1 {
				log.Fatalf("-reduce-group must be >= 1 (1 = flat allreduce), got %d", *reduceGrp)
			}
		}
	})
	if err := cliutil.ValidateHaloFlags(*fresh, *haloDepth, explicitHalo); err != nil {
		log.Fatal(err)
	}

	ch := trace.PaperNS()
	if *euler {
		ch = trace.PaperEuler()
	}
	// The co-simulated platforms pay for the reduction cadence (the
	// collective-latency term of a convergence-controlled run); the
	// tolerance itself only applies to the measured host run, since the
	// co-simulation replays a schedule, not physics.
	ch.ReduceEvery = *reduce
	// The communication-avoiding knobs price the same cadence the
	// measured host run executes: wide halos thin the exchange schedule
	// (and inflate per-rank compute by the redundant shell), the
	// hierarchical reduce thins the collective to node leaders.
	ch.HaloDepth = *haloDepth
	ch.ReduceGroup = *reduceGrp
	// The parareal knobs reroute the co-simulation to the
	// parallel-in-time schedule (machine.SimulateParareal) and the
	// measured host run to the parareal backend with -backend as the
	// fine propagator.
	ch.TimeSlices = *slices
	ch.PararealIters = *pIters
	ch.CoarseFactor = *coarseF
	// The co-simulation needs a concrete strategy; the measured host run
	// passes the raw flag through so 0 stays "backend default" (and a
	// pinned backend name like mp:v6 is not contradicted).
	simVersion := *version
	if simVersion == 0 {
		simVersion = 5
	}
	plats := allPlatforms()
	if *name != "" {
		plats = nil
		for _, p := range allPlatforms() {
			if p.Name == *name {
				plats = []machine.Platform{p}
			}
		}
		if len(plats) == 0 {
			log.Fatalf("unknown platform %q", *name)
		}
	}

	var series []stats.Series
	for _, p := range plats {
		s := stats.Series{Name: p.Name}
		counts := study.ProcCounts(p.MaxProcs)
		if *procs > 0 {
			counts = []int{*procs}
		}
		for _, np := range counts {
			if np > p.MaxProcs {
				continue
			}
			if ch.TimeSlices > 1 && (np < ch.TimeSlices || np%ch.TimeSlices != 0) {
				// Parareal needs the pool to split evenly over the slices.
				continue
			}
			o, err := p.Simulate(ch, np, simVersion)
			if err != nil {
				log.Fatal(err)
			}
			s.Add(float64(np), o.Seconds)
		}
		series = append(series, s)
	}

	if *real != "" {
		if _, err := backend.Get(*real); err != nil {
			log.Fatal(err)
		}
		s := stats.Series{Name: fmt.Sprintf("host %s (measured)", *real)}
		if *scen != "" {
			s.Name = fmt.Sprintf("host %s %s (measured)", *real, *scen)
		}
		counts := []int{1, 2, 4, 8}
		switch {
		case *real == "serial":
			// A single-processor backend is always a P=1 data point,
			// whatever -procs says about the simulated sweep — except
			// under parareal, where the serial fine propagator still
			// fans out into K one-rank slice groups.
			counts = []int{1}
			if *slices > 1 {
				counts = []int{*slices}
			}
		case *procs > 0:
			counts = []int{*procs}
		}
		// A distributed measured curve honors -version too: the registry
		// applies the same strategy selection (and contradiction
		// checking) to the host run that the co-simulation applies to
		// the 1995 platforms. serial and shm have no message layer, so
		// for them -version stays what it always was — a co-simulation
		// parameter — instead of failing the host baseline.
		// -balance has no co-simulation meaning, so it always reaches
		// the registry, which rejects it on serial/shm instead of
		// silently measuring a uniform curve the user did not ask for.
		hostVersion := *version
		if *real == "serial" || *real == "shm" {
			hostVersion = 0
		}
		for _, np := range counts {
			hostProcs := np
			if *slices > 1 {
				// Match the co-simulation's accounting: np is the total
				// pool, split evenly over the slices into fine-propagator
				// groups of np/K ranks each.
				if np < *slices || np%*slices != 0 {
					continue
				}
				hostProcs = np / *slices
			}
			run, err := core.NewRun(core.Config{
				Scenario: *scen,
				Euler:    *euler, Nx: *nx, Nr: *nr, Steps: *steps,
				Backend: *real, Procs: hostProcs, Version: hostVersion, Balance: *balance,
				StopTol: *tol, ReduceEvery: *reduce,
				FreshHalos: *fresh, HaloDepth: *haloDepth, ReduceGroup: *reduceGrp,
				TimeSlices: *slices, PararealIters: *pIters, CoarseFactor: *coarseF,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := run.Execute()
			if err != nil {
				log.Fatal(err)
			}
			s.Add(float64(np), res.Elapsed.Seconds())
		}
		series = append(series, s)
	}

	title := fmt.Sprintf("%s execution time (s), Version %d", ch.Name, simVersion)
	t := report.SeriesTable(title, "Procs", series)
	t.Render(os.Stdout)
	if *chart {
		fmt.Println()
		report.LogChart(os.Stdout, title+" [log scale]", series, 14)
	}
}
