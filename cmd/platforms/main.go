// Command platforms co-simulates the paper's platforms on the
// application workload and prints execution-time curves. With -backend
// it additionally measures the real workload on this host through the
// solver-backend registry, appending the measured curve to the
// simulated ones — the paper's same-computation-everywhere premise made
// literal.
//
// Examples:
//
//	platforms                      # all platforms, Navier-Stokes
//	platforms -euler -version 7    # Euler with de-burst messages
//	platforms -platform "Cray T3D" -procs 16
//	platforms -backend hybrid      # add a measured host curve
//	platforms -backend mp2d        # measured 2-D rank-grid curve
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/trace"
)

func allPlatforms() []machine.Platform {
	return []machine.Platform{
		machine.LACE560Ethernet, machine.LACE560FDDI, machine.LACE560AllnodeS,
		machine.LACE590AllnodeF, machine.LACE590ATM,
		machine.SPMPL, machine.SPPVMe, machine.T3D, machine.YMP,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("platforms: ")
	var (
		euler   = flag.Bool("euler", false, "Euler workload instead of Navier-Stokes")
		version = flag.Int("version", 5, "communication strategy: 5, 6, or 7")
		name    = flag.String("platform", "", "run a single platform by name")
		procs   = flag.Int("procs", 0, "run a single processor count (0 = sweep)")
		chart   = flag.Bool("chart", true, "draw log-scale ASCII chart")
		real    = flag.String("backend", "", "also measure a real host run through the backend registry: "+strings.Join(backend.Names(), ", "))
		nx      = flag.Int("nx", 125, "grid for the measured host run (with -backend)")
		nr      = flag.Int("nr", 50, "grid for the measured host run (with -backend)")
		steps   = flag.Int("steps", 100, "composite steps for the measured host run (with -backend)")
	)
	flag.Parse()

	ch := trace.PaperNS()
	if *euler {
		ch = trace.PaperEuler()
	}
	plats := allPlatforms()
	if *name != "" {
		plats = nil
		for _, p := range allPlatforms() {
			if p.Name == *name {
				plats = []machine.Platform{p}
			}
		}
		if len(plats) == 0 {
			log.Fatalf("unknown platform %q", *name)
		}
	}

	var series []stats.Series
	for _, p := range plats {
		s := stats.Series{Name: p.Name}
		counts := study.ProcCounts(p.MaxProcs)
		if *procs > 0 {
			counts = []int{*procs}
		}
		for _, np := range counts {
			if np > p.MaxProcs {
				continue
			}
			o, err := p.Simulate(ch, np, *version)
			if err != nil {
				log.Fatal(err)
			}
			s.Add(float64(np), o.Seconds)
		}
		series = append(series, s)
	}

	if *real != "" {
		if _, err := backend.Get(*real); err != nil {
			log.Fatal(err)
		}
		s := stats.Series{Name: fmt.Sprintf("host %s (measured)", *real)}
		counts := []int{1, 2, 4, 8}
		switch {
		case *real == "serial":
			// A single-processor backend is always a P=1 data point,
			// whatever -procs says about the simulated sweep.
			counts = []int{1}
		case *procs > 0:
			counts = []int{*procs}
		}
		for _, np := range counts {
			run, err := core.NewRun(core.Config{
				Euler: *euler, Nx: *nx, Nr: *nr, Steps: *steps,
				Backend: *real, Procs: np,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := run.Execute()
			if err != nil {
				log.Fatal(err)
			}
			s.Add(float64(np), res.Elapsed.Seconds())
		}
		series = append(series, s)
	}

	title := fmt.Sprintf("%s execution time (s), Version %d", ch.Name, *version)
	t := report.SeriesTable(title, "Procs", series)
	t.Render(os.Stdout)
	if *chart {
		fmt.Println()
		report.LogChart(os.Stdout, title+" [log scale]", series, 14)
	}
}
