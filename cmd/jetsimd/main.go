// Command jetsimd is the long-running multi-tenant jet-simulation
// service: a queued run scheduler with a config-hash result cache in
// front of the solver backends, serving many users' runs concurrently
// on one machine.
//
// Three modes:
//
//	jetsimd -addr :8080            HTTP server (POST /run, POST /batch,
//	                               GET /stats, GET /healthz)
//	jetsimd -batch < jobs.json     serve a stdin job stream locally and
//	                               print results to stdout
//	jetsimd -submit URL < jobs.json  client: POST the stdin jobs to a
//	                               running server's /batch
//
// Jobs are JSON objects mirroring the solver configuration, either as
// one array or streamed back to back (NDJSON works):
//
//	{"id":"a","scenario":"jet","backend":"mp:v5","procs":4,
//	 "nx":125,"nr":50,"steps":500,"reynolds":500}
//
// Results echo the job id, report whether the config-hash cache served
// the run, and fingerprint the momentum field (momentum_sha256) so
// clients can verify that cached replies are bitwise-identical to cold
// runs. Admission control sheds load beyond -queue with HTTP 503 (or
// ok=false in batch mode); duplicate in-flight jobs coalesce onto one
// solver run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jetsimd: ")
	var (
		addr   = flag.String("addr", "", "HTTP listen address, e.g. :8080 (server mode)")
		batch  = flag.Bool("batch", false, "serve a JSON job stream from stdin locally, print results to stdout")
		submit = flag.String("submit", "", "client mode: POST the stdin jobs to this server's /batch endpoint")
		slots  = flag.Int("slots", 0, "machine width the scheduler packs runs onto (0 = NumCPU)")
		queue  = flag.Int("queue", 0, "admission queue bound; load beyond it is shed (0 = 256)")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*addr != "", *batch, *submit != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("pick exactly one mode: -addr (server), -batch (local stdin), or -submit URL (client)")
	}

	switch {
	case *submit != "":
		if err := submitJobs(*submit, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *batch:
		s := serve.New(serve.Options{Slots: *slots, MaxQueue: *queue})
		defer s.Close()
		if err := runBatch(s, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		log.Print(s.Stats())
	default:
		s := serve.New(serve.Options{Slots: *slots, MaxQueue: *queue})
		defer s.Close()
		log.Printf("serving on %s (%d slots, queue %d)", *addr, s.Stats().Slots, s.Stats().MaxQueue)
		if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
			log.Fatal(err)
		}
	}
}

// readJobs decodes the stdin job stream: one JSON array, or JSON
// objects back to back (NDJSON included).
func readJobs(r io.Reader) ([]serve.Job, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if errors.Is(err, io.EOF) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading jobs: %w", err)
	}
	var jobs []serve.Job
	if d, ok := tok.(json.Delim); ok && d == '[' {
		for dec.More() {
			var j serve.Job
			if err := dec.Decode(&j); err != nil {
				return nil, fmt.Errorf("job %d: %w", len(jobs), err)
			}
			jobs = append(jobs, j)
		}
		_, err := dec.Token() // closing ]
		return jobs, err
	}
	// Object stream: re-decode from the start. The first token was '{';
	// a fresh decoder over the buffered remainder keeps it simple.
	rest, err := io.ReadAll(io.MultiReader(strings.NewReader("{"), dec.Buffered(), r))
	if err != nil {
		return nil, err
	}
	dec = json.NewDecoder(strings.NewReader(string(rest)))
	for {
		var j serve.Job
		if err := dec.Decode(&j); errors.Is(err, io.EOF) {
			return jobs, nil
		} else if err != nil {
			return nil, fmt.Errorf("job %d: %w", len(jobs), err)
		}
		jobs = append(jobs, j)
	}
}

// runBatch serves the stdin jobs through the local scheduler
// concurrently and writes results to w in submission order.
func runBatch(s *serve.Scheduler, r io.Reader, w io.Writer) error {
	jobs, err := readJobs(r)
	if err != nil {
		return err
	}
	results := make([]serve.JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job serve.Job) {
			defer wg.Done()
			rep, err := s.Submit(job.Config())
			results[i] = serve.ResultOf(job.ID, rep, err)
		}(i, job)
	}
	wg.Wait()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// submitJobs POSTs the stdin jobs to a running jetsimd's /batch
// endpoint and copies the response to w.
func submitJobs(url string, r io.Reader, w io.Writer) error {
	jobs, err := readJobs(r)
	if err != nil {
		return err
	}
	body, err := json.Marshal(jobs)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(url, "/")+"/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
