package repro_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/study"
	"repro/internal/vis"
)

// TestEndToEnd exercises the public API as a downstream user would:
// build a jet, run it in all three legacy modes plus the 2-D rank-grid
// backend, render the field, and check the fast subset of the paper's
// claims.
func TestEndToEnd(t *testing.T) {
	configs := []core.Config{
		{Nx: 64, Nr: 24, Steps: 6, Mode: core.Serial, Procs: 4},
		{Nx: 64, Nr: 24, Steps: 6, Mode: core.MessagePassing, Procs: 4},
		{Nx: 64, Nr: 24, Steps: 6, Mode: core.SharedMemory, Procs: 4},
		{Nx: 64, Nr: 24, Steps: 6, Backend: "mp2d", Px: 2, Pr: 2},
	}
	for _, cfg := range configs {
		name := cfg.Backend
		if name == "" {
			name = cfg.Mode.String()
		}
		run, err := core.NewRun(cfg)
		if err != nil {
			t.Fatalf("%v: %v", name, err)
		}
		res, err := run.Execute()
		run.Close()
		if err != nil {
			t.Fatalf("%v: %v", name, err)
		}
		if res.Diag.HasNaN || res.Diag.MinP <= 0 {
			t.Fatalf("%v: nonphysical result %+v", name, res.Diag)
		}
		var sb strings.Builder
		vis.ASCIIContour(&sb, "rho*u", res.Momentum, 60, 12)
		if !strings.Contains(sb.String(), "max") {
			t.Fatalf("%v: contour rendering failed", name)
		}
	}
}

// TestFastClaims runs the paper-claim checks that need no platform
// sweep (the full set runs in internal/study).
func TestFastClaims(t *testing.T) {
	fast := map[string]bool{
		"T1-compute-ratio": true,
		"T1-comm-ratio":    true,
		"T1-startups":      true,
		"T1-volume":        true,
		"F2-mflops":        true,
		"F2-stride":        true,
	}
	for _, c := range study.Claims() {
		if !fast[c.ID] {
			continue
		}
		got, ok, err := c.Check()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if !ok {
			t.Errorf("%s: %s (got %s)", c.ID, c.Statement, got)
		}
	}
}
