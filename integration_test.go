package repro_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/study"
	"repro/internal/vis"
)

// TestEndToEnd exercises the public API as a downstream user would:
// build a jet, run it in all three modes, render the field, and check
// the fast subset of the paper's claims.
func TestEndToEnd(t *testing.T) {
	for _, mode := range []core.Mode{core.Serial, core.MessagePassing, core.SharedMemory} {
		run, err := core.NewRun(core.Config{Nx: 64, Nr: 24, Steps: 6, Mode: mode, Procs: 4})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := run.Execute()
		run.Close()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Diag.HasNaN || res.Diag.MinP <= 0 {
			t.Fatalf("%v: nonphysical result %+v", mode, res.Diag)
		}
		var sb strings.Builder
		vis.ASCIIContour(&sb, "rho*u", res.Momentum, 60, 12)
		if !strings.Contains(sb.String(), "max") {
			t.Fatalf("%v: contour rendering failed", mode)
		}
	}
}

// TestFastClaims runs the paper-claim checks that need no platform
// sweep (the full set runs in internal/study).
func TestFastClaims(t *testing.T) {
	fast := map[string]bool{
		"T1-compute-ratio": true,
		"T1-comm-ratio":    true,
		"T1-startups":      true,
		"T1-volume":        true,
		"F2-mflops":        true,
		"F2-stride":        true,
	}
	for _, c := range study.Claims() {
		if !fast[c.ID] {
			continue
		}
		got, ok, err := c.Check()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if !ok {
			t.Errorf("%s: %s (got %s)", c.ID, c.Statement, got)
		}
	}
}
